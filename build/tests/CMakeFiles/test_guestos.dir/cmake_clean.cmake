file(REMOVE_RECURSE
  "CMakeFiles/test_guestos.dir/test_guestos.cc.o"
  "CMakeFiles/test_guestos.dir/test_guestos.cc.o.d"
  "test_guestos"
  "test_guestos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_guestos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
