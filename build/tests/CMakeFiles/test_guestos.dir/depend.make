# Empty dependencies file for test_guestos.
# This may be replaced when dependencies are built.
