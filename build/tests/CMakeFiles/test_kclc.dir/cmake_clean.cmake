file(REMOVE_RECURSE
  "CMakeFiles/test_kclc.dir/test_kclc.cc.o"
  "CMakeFiles/test_kclc.dir/test_kclc.cc.o.d"
  "test_kclc"
  "test_kclc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kclc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
