# Empty compiler generated dependencies file for test_kclc.
# This may be replaced when dependencies are built.
