# Empty compiler generated dependencies file for test_kclc_fuzz.
# This may be replaced when dependencies are built.
