file(REMOVE_RECURSE
  "CMakeFiles/test_kclc_fuzz.dir/test_kclc_fuzz.cc.o"
  "CMakeFiles/test_kclc_fuzz.dir/test_kclc_fuzz.cc.o.d"
  "test_kclc_fuzz"
  "test_kclc_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kclc_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
