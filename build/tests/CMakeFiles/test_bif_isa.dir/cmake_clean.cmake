file(REMOVE_RECURSE
  "CMakeFiles/test_bif_isa.dir/test_bif_isa.cc.o"
  "CMakeFiles/test_bif_isa.dir/test_bif_isa.cc.o.d"
  "test_bif_isa"
  "test_bif_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bif_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
