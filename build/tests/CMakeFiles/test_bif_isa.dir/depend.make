# Empty dependencies file for test_bif_isa.
# This may be replaced when dependencies are built.
