file(REMOVE_RECURSE
  "CMakeFiles/test_cpu_mmu.dir/test_cpu_mmu.cc.o"
  "CMakeFiles/test_cpu_mmu.dir/test_cpu_mmu.cc.o.d"
  "test_cpu_mmu"
  "test_cpu_mmu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpu_mmu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
