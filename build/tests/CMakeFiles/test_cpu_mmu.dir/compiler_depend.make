# Empty compiler generated dependencies file for test_cpu_mmu.
# This may be replaced when dependencies are built.
