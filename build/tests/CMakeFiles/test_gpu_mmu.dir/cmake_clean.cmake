file(REMOVE_RECURSE
  "CMakeFiles/test_gpu_mmu.dir/test_gpu_mmu.cc.o"
  "CMakeFiles/test_gpu_mmu.dir/test_gpu_mmu.cc.o.d"
  "test_gpu_mmu"
  "test_gpu_mmu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gpu_mmu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
