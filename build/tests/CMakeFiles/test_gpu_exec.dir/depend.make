# Empty dependencies file for test_gpu_exec.
# This may be replaced when dependencies are built.
