file(REMOVE_RECURSE
  "CMakeFiles/test_gpu_exec.dir/test_gpu_exec.cc.o"
  "CMakeFiles/test_gpu_exec.dir/test_gpu_exec.cc.o.d"
  "test_gpu_exec"
  "test_gpu_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gpu_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
