file(REMOVE_RECURSE
  "CMakeFiles/kclc_tool.dir/kclc_tool.cpp.o"
  "CMakeFiles/kclc_tool.dir/kclc_tool.cpp.o.d"
  "kclc_tool"
  "kclc_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kclc_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
