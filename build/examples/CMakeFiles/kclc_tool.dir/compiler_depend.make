# Empty compiler generated dependencies file for kclc_tool.
# This may be replaced when dependencies are built.
