# Empty compiler generated dependencies file for divergence_cfg.
# This may be replaced when dependencies are built.
