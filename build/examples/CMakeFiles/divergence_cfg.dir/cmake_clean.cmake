file(REMOVE_RECURSE
  "CMakeFiles/divergence_cfg.dir/divergence_cfg.cpp.o"
  "CMakeFiles/divergence_cfg.dir/divergence_cfg.cpp.o.d"
  "divergence_cfg"
  "divergence_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/divergence_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
