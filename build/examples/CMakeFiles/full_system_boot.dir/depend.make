# Empty dependencies file for full_system_boot.
# This may be replaced when dependencies are built.
