file(REMOVE_RECURSE
  "CMakeFiles/full_system_boot.dir/full_system_boot.cpp.o"
  "CMakeFiles/full_system_boot.dir/full_system_boot.cpp.o.d"
  "full_system_boot"
  "full_system_boot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_system_boot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
