# Empty dependencies file for slambench.
# This may be replaced when dependencies are built.
