file(REMOVE_RECURSE
  "CMakeFiles/slambench.dir/slambench.cpp.o"
  "CMakeFiles/slambench.dir/slambench.cpp.o.d"
  "slambench"
  "slambench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slambench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
