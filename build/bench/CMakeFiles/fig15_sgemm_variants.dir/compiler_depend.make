# Empty compiler generated dependencies file for fig15_sgemm_variants.
# This may be replaced when dependencies are built.
