file(REMOVE_RECURSE
  "CMakeFiles/fig15_sgemm_variants.dir/fig15_sgemm_variants.cpp.o"
  "CMakeFiles/fig15_sgemm_variants.dir/fig15_sgemm_variants.cpp.o.d"
  "fig15_sgemm_variants"
  "fig15_sgemm_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_sgemm_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
