# Empty compiler generated dependencies file for fig13_clause_sizes.
# This may be replaced when dependencies are built.
