file(REMOVE_RECURSE
  "CMakeFiles/fig13_clause_sizes.dir/fig13_clause_sizes.cpp.o"
  "CMakeFiles/fig13_clause_sizes.dir/fig13_clause_sizes.cpp.o.d"
  "fig13_clause_sizes"
  "fig13_clause_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_clause_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
