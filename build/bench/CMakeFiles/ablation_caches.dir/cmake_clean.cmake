file(REMOVE_RECURSE
  "CMakeFiles/ablation_caches.dir/ablation_caches.cpp.o"
  "CMakeFiles/ablation_caches.dir/ablation_caches.cpp.o.d"
  "ablation_caches"
  "ablation_caches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_caches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
