# Empty dependencies file for fig09_driver_scaling.
# This may be replaced when dependencies are built.
