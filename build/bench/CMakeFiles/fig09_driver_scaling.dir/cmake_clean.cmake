file(REMOVE_RECURSE
  "CMakeFiles/fig09_driver_scaling.dir/fig09_driver_scaling.cpp.o"
  "CMakeFiles/fig09_driver_scaling.dir/fig09_driver_scaling.cpp.o.d"
  "fig09_driver_scaling"
  "fig09_driver_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_driver_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
