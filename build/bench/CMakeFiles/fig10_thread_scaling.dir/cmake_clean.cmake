file(REMOVE_RECURSE
  "CMakeFiles/fig10_thread_scaling.dir/fig10_thread_scaling.cpp.o"
  "CMakeFiles/fig10_thread_scaling.dir/fig10_thread_scaling.cpp.o.d"
  "fig10_thread_scaling"
  "fig10_thread_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_thread_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
