# Empty compiler generated dependencies file for fig11_instruction_mix.
# This may be replaced when dependencies are built.
