file(REMOVE_RECURSE
  "CMakeFiles/fig11_instruction_mix.dir/fig11_instruction_mix.cpp.o"
  "CMakeFiles/fig11_instruction_mix.dir/fig11_instruction_mix.cpp.o.d"
  "fig11_instruction_mix"
  "fig11_instruction_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_instruction_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
