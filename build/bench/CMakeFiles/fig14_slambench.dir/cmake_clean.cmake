file(REMOVE_RECURSE
  "CMakeFiles/fig14_slambench.dir/fig14_slambench.cpp.o"
  "CMakeFiles/fig14_slambench.dir/fig14_slambench.cpp.o.d"
  "fig14_slambench"
  "fig14_slambench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_slambench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
