# Empty dependencies file for fig14_slambench.
# This may be replaced when dependencies are built.
