file(REMOVE_RECURSE
  "CMakeFiles/fig08_vs_baseline.dir/fig08_vs_baseline.cpp.o"
  "CMakeFiles/fig08_vs_baseline.dir/fig08_vs_baseline.cpp.o.d"
  "fig08_vs_baseline"
  "fig08_vs_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_vs_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
