# Empty compiler generated dependencies file for fig08_vs_baseline.
# This may be replaced when dependencies are built.
