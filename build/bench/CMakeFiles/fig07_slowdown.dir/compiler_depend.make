# Empty compiler generated dependencies file for fig07_slowdown.
# This may be replaced when dependencies are built.
