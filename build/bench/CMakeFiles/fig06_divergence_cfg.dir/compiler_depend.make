# Empty compiler generated dependencies file for fig06_divergence_cfg.
# This may be replaced when dependencies are built.
