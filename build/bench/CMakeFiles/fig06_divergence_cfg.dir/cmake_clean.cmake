file(REMOVE_RECURSE
  "CMakeFiles/fig06_divergence_cfg.dir/fig06_divergence_cfg.cpp.o"
  "CMakeFiles/fig06_divergence_cfg.dir/fig06_divergence_cfg.cpp.o.d"
  "fig06_divergence_cfg"
  "fig06_divergence_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_divergence_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
