# Empty dependencies file for fig01_compiler_versions.
# This may be replaced when dependencies are built.
