file(REMOVE_RECURSE
  "CMakeFiles/fig01_compiler_versions.dir/fig01_compiler_versions.cpp.o"
  "CMakeFiles/fig01_compiler_versions.dir/fig01_compiler_versions.cpp.o.d"
  "fig01_compiler_versions"
  "fig01_compiler_versions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_compiler_versions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
