file(REMOVE_RECURSE
  "libbifsim.a"
)
