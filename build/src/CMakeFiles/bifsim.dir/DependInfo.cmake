
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/m2ssim.cc" "src/CMakeFiles/bifsim.dir/baseline/m2ssim.cc.o" "gcc" "src/CMakeFiles/bifsim.dir/baseline/m2ssim.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/bifsim.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/bifsim.dir/common/logging.cc.o.d"
  "/root/repo/src/cpu/asm/assembler.cc" "src/CMakeFiles/bifsim.dir/cpu/asm/assembler.cc.o" "gcc" "src/CMakeFiles/bifsim.dir/cpu/asm/assembler.cc.o.d"
  "/root/repo/src/cpu/core.cc" "src/CMakeFiles/bifsim.dir/cpu/core.cc.o" "gcc" "src/CMakeFiles/bifsim.dir/cpu/core.cc.o.d"
  "/root/repo/src/cpu/decoder.cc" "src/CMakeFiles/bifsim.dir/cpu/decoder.cc.o" "gcc" "src/CMakeFiles/bifsim.dir/cpu/decoder.cc.o.d"
  "/root/repo/src/cpu/mmu.cc" "src/CMakeFiles/bifsim.dir/cpu/mmu.cc.o" "gcc" "src/CMakeFiles/bifsim.dir/cpu/mmu.cc.o.d"
  "/root/repo/src/gpu/gmmu.cc" "src/CMakeFiles/bifsim.dir/gpu/gmmu.cc.o" "gcc" "src/CMakeFiles/bifsim.dir/gpu/gmmu.cc.o.d"
  "/root/repo/src/gpu/gpu.cc" "src/CMakeFiles/bifsim.dir/gpu/gpu.cc.o" "gcc" "src/CMakeFiles/bifsim.dir/gpu/gpu.cc.o.d"
  "/root/repo/src/gpu/isa/bif.cc" "src/CMakeFiles/bifsim.dir/gpu/isa/bif.cc.o" "gcc" "src/CMakeFiles/bifsim.dir/gpu/isa/bif.cc.o.d"
  "/root/repo/src/gpu/ref/ref_interp.cc" "src/CMakeFiles/bifsim.dir/gpu/ref/ref_interp.cc.o" "gcc" "src/CMakeFiles/bifsim.dir/gpu/ref/ref_interp.cc.o.d"
  "/root/repo/src/gpu/shader_core.cc" "src/CMakeFiles/bifsim.dir/gpu/shader_core.cc.o" "gcc" "src/CMakeFiles/bifsim.dir/gpu/shader_core.cc.o.d"
  "/root/repo/src/guestos/guest_os.cc" "src/CMakeFiles/bifsim.dir/guestos/guest_os.cc.o" "gcc" "src/CMakeFiles/bifsim.dir/guestos/guest_os.cc.o.d"
  "/root/repo/src/instrument/cfg.cc" "src/CMakeFiles/bifsim.dir/instrument/cfg.cc.o" "gcc" "src/CMakeFiles/bifsim.dir/instrument/cfg.cc.o.d"
  "/root/repo/src/instrument/report.cc" "src/CMakeFiles/bifsim.dir/instrument/report.cc.o" "gcc" "src/CMakeFiles/bifsim.dir/instrument/report.cc.o.d"
  "/root/repo/src/instrument/stats.cc" "src/CMakeFiles/bifsim.dir/instrument/stats.cc.o" "gcc" "src/CMakeFiles/bifsim.dir/instrument/stats.cc.o.d"
  "/root/repo/src/kclc/compiler.cc" "src/CMakeFiles/bifsim.dir/kclc/compiler.cc.o" "gcc" "src/CMakeFiles/bifsim.dir/kclc/compiler.cc.o.d"
  "/root/repo/src/kclc/lexer.cc" "src/CMakeFiles/bifsim.dir/kclc/lexer.cc.o" "gcc" "src/CMakeFiles/bifsim.dir/kclc/lexer.cc.o.d"
  "/root/repo/src/kclc/lower.cc" "src/CMakeFiles/bifsim.dir/kclc/lower.cc.o" "gcc" "src/CMakeFiles/bifsim.dir/kclc/lower.cc.o.d"
  "/root/repo/src/kclc/parser.cc" "src/CMakeFiles/bifsim.dir/kclc/parser.cc.o" "gcc" "src/CMakeFiles/bifsim.dir/kclc/parser.cc.o.d"
  "/root/repo/src/kclc/passes.cc" "src/CMakeFiles/bifsim.dir/kclc/passes.cc.o" "gcc" "src/CMakeFiles/bifsim.dir/kclc/passes.cc.o.d"
  "/root/repo/src/kclc/regalloc.cc" "src/CMakeFiles/bifsim.dir/kclc/regalloc.cc.o" "gcc" "src/CMakeFiles/bifsim.dir/kclc/regalloc.cc.o.d"
  "/root/repo/src/kclc/schedule.cc" "src/CMakeFiles/bifsim.dir/kclc/schedule.cc.o" "gcc" "src/CMakeFiles/bifsim.dir/kclc/schedule.cc.o.d"
  "/root/repo/src/mem/bus.cc" "src/CMakeFiles/bifsim.dir/mem/bus.cc.o" "gcc" "src/CMakeFiles/bifsim.dir/mem/bus.cc.o.d"
  "/root/repo/src/runtime/session.cc" "src/CMakeFiles/bifsim.dir/runtime/session.cc.o" "gcc" "src/CMakeFiles/bifsim.dir/runtime/session.cc.o.d"
  "/root/repo/src/runtime/system.cc" "src/CMakeFiles/bifsim.dir/runtime/system.cc.o" "gcc" "src/CMakeFiles/bifsim.dir/runtime/system.cc.o.d"
  "/root/repo/src/soc/devices.cc" "src/CMakeFiles/bifsim.dir/soc/devices.cc.o" "gcc" "src/CMakeFiles/bifsim.dir/soc/devices.cc.o.d"
  "/root/repo/src/workloads/device.cc" "src/CMakeFiles/bifsim.dir/workloads/device.cc.o" "gcc" "src/CMakeFiles/bifsim.dir/workloads/device.cc.o.d"
  "/root/repo/src/workloads/kernels_amdapp.cc" "src/CMakeFiles/bifsim.dir/workloads/kernels_amdapp.cc.o" "gcc" "src/CMakeFiles/bifsim.dir/workloads/kernels_amdapp.cc.o.d"
  "/root/repo/src/workloads/kernels_parboil.cc" "src/CMakeFiles/bifsim.dir/workloads/kernels_parboil.cc.o" "gcc" "src/CMakeFiles/bifsim.dir/workloads/kernels_parboil.cc.o.d"
  "/root/repo/src/workloads/kfusion.cc" "src/CMakeFiles/bifsim.dir/workloads/kfusion.cc.o" "gcc" "src/CMakeFiles/bifsim.dir/workloads/kfusion.cc.o.d"
  "/root/repo/src/workloads/sgemm_variants.cc" "src/CMakeFiles/bifsim.dir/workloads/sgemm_variants.cc.o" "gcc" "src/CMakeFiles/bifsim.dir/workloads/sgemm_variants.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/CMakeFiles/bifsim.dir/workloads/workload.cc.o" "gcc" "src/CMakeFiles/bifsim.dir/workloads/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
