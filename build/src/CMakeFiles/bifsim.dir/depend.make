# Empty dependencies file for bifsim.
# This may be replaced when dependencies are built.
