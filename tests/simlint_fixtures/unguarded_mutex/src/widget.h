// Seeded-violation fixture (simlint check: mutex-coverage).
// Line 9: raw standard mutex member (banned in src/).  Line 11: a
// sim::Mutex member no annotation in this file ever references.
// Line 14's busy_ is properly guarded, so guarded_ must NOT be
// flagged.
class Widget
{
  private:
    std::mutex raw_;

    sim::Mutex lonely_;

    sim::Mutex guarded_;
    int busy_ GUARDED_BY(guarded_) = 0;
};
