// Seeded-violation fixture (simlint check: tlv-tag).
// Line 6 re-claims "DUPE" (first defined in serial_a.h) — the exact
// file:line the test asserts.  Read-side uses (line 8) are legal.
#include <cstdint>

constexpr uint32_t kTagDupeAgain = makeTag("DUPE");

inline uint32_t readSide() { return makeTag("DUPE"); }
