// Seeded-violation fixture (simlint check: tlv-tag).
// "DUPE" is claimed here first; the duplicate lives in serial_b.h.
#include <cstdint>

constexpr uint32_t makeTag(const char (&n)[5])
{
    return n[0] | n[1] << 8 | n[2] << 16 | n[3] << 24;
}

constexpr uint32_t kTagAlpha = makeTag("ALPH");
constexpr uint32_t kTagDupe = makeTag("DUPE");
