// Seeded-violation fixture (simlint check: dbt-parity).
// The op list names Add, Sub and Foo; Foo (line 8) has no HANDLER
// body, and Ghost (line 12) has a handler but no list entry — both
// file:line pairs are asserted exactly by the test.

#define DBT_OPS(X) \
    X(Add) X(Sub) \
    X(Foo)

#define HANDLER(name) L_##name:

HANDLER(Ghost) { }
HANDLER(Add) { }
HANDLER(Sub) { }
