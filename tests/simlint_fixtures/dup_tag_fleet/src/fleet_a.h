// Seeded-violation fixture (simlint check: tlv-tag): fleet frame
// kinds share the snapshot tag namespace, so a duplicated FLT* 4CC
// must be caught too.  "FLTZ" is claimed here first.
#include <cstdint>

constexpr uint32_t makeTag(const char (&n)[5])
{
    return n[0] | n[1] << 8 | n[2] << 16 | n[3] << 24;
}

constexpr uint32_t kMsgExtension = makeTag("FLTZ");
