// Seeded-violation fixture (simlint check: tlv-tag).
// Line 6 re-claims "FLTZ" (first defined in fleet_a.h) — the exact
// file:line the test asserts.  Read-side uses (line 8) are legal.
#include <cstdint>

constexpr uint32_t kMsgExtensionDupe = makeTag("FLTZ");

inline uint32_t frameKind() { return makeTag("FLTZ"); }
