// Seeded-violation fixture (simlint check: counters).
// Line 8: orphan (emitted, never documented).  Line 9: duplicate of
// line 7.  Line 10: breaks the prefix.lower_snake grammar.
#include <string>
void appendCounters()
{
    out.push_back({"sched.slices_run", 1});
    out.push_back({"sched.bogus_counter", 2});
    out.push_back({"sched.slices_run", 3});
    out.push_back({"sched.CamelCase", 4});
}
