/** @file Always-on metrics registry (DESIGN.md §5k): slot interning
 *  and table exhaustion, seqlock batch consistency under a concurrent
 *  publisher (the TSan job runs this), sampled-vs-exact totals across
 *  threads, gauge store-latest semantics, ring wraparound and
 *  windowed rates, HUD rendering, and the sweep differ's flatten /
 *  classify / tolerance fixtures that simsweep's CI gate rides on. */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/logging.h"
#include "instrument/stats.h"
#include "metrics/hud.h"
#include "metrics/metrics.h"
#include "metrics/sweep.h"

namespace bifsim {
namespace {

using gpu::NamedCounter;
using metrics::kInvalidSlot;
using metrics::kMaxSlots;
using metrics::Registry;

/** Interned names must have static storage duration; tests that need
 *  many distinct names draw them from this leaked pool.  A deque, not
 *  a vector: growth must never move the strings, or SSO'd name bytes
 *  would dangle behind the pointers already handed out.  Each test
 *  uses its own prefix: the publish fast path caches name->slot per
 *  (thread, registry *address*), and heap reuse across tests could
 *  otherwise resurrect a stale cache entry for a recycled name. */
const char *
pooledName(const std::string &s)
{
    static std::deque<std::string> *pool = new std::deque<std::string>();
    pool->push_back(s);
    return pool->back().c_str();
}

// ------------------------------------------------------ Slot table

TEST(MetricsRegistry, SlotInterningIsStable)
{
    Registry reg;
    uint16_t a = reg.slot("t1.alpha");
    uint16_t b = reg.slot("t1.beta");
    EXPECT_NE(a, b);
    EXPECT_EQ(a, reg.slot("t1.alpha"));   // Same name, same slot.
    EXPECT_STREQ("t1.alpha", reg.slotName(a));
    EXPECT_STREQ("t1.beta", reg.slotName(b));
    EXPECT_EQ(2u, reg.slotCount());
    EXPECT_EQ(nullptr, reg.slotName(kMaxSlots - 1));
}

TEST(MetricsRegistry, FullTableDropsNotGrows)
{
    Registry reg;
    std::vector<const char *> names;
    for (size_t i = 0; i < kMaxSlots; ++i)
        names.push_back(pooledName("t2.c" + std::to_string(i)));
    for (const char *n : names)
        EXPECT_NE(kInvalidSlot, reg.slot(n));
    EXPECT_EQ(kMaxSlots, reg.slotCount());

    const char *extra = pooledName("t2.one_too_many");
    EXPECT_EQ(kInvalidSlot, reg.slot(extra));
    EXPECT_GE(reg.stats().slotsDropped, 1u);

    // A publish naming the dropped counter must not crash or corrupt
    // a live slot.
    reg.publish({{extra, 7}, {names[0], 3}});
    EXPECT_EQ(3u, reg.totals()[reg.slot(names[0])]);
}

// ---------------------------------------------------- Publish paths

TEST(MetricsRegistry, PublishAccumulatesDeltas)
{
    Registry reg;
    reg.publish({{"t3.x", 5}, {"t3.y", 2}});
    reg.publish({{"t3.x", 1}, {"t3.y", 0}});
    auto totals = reg.totals();
    EXPECT_EQ(6u, totals[reg.slot("t3.x")]);
    EXPECT_EQ(2u, totals[reg.slot("t3.y")]);
    EXPECT_EQ(2u, reg.stats().publishes);
}

TEST(MetricsRegistry, ZeroDeltasDoNotIntern)
{
    Registry reg;
    reg.publish({{"t4.used", 1}, {"t4.never_nonzero", 0}});
    // Only the nonzero counter occupies a slot: publish skips zero
    // deltas before interning, so an all-zero stats struct costs no
    // table space.
    EXPECT_EQ(1u, reg.slotCount());
    EXPECT_STREQ("t4.used", reg.slotName(0));
}

TEST(MetricsRegistry, DisabledRegistryDropsBatches)
{
    Registry reg;
    reg.publish({{"t5.k", 1}});
    reg.setEnabled(false);
    EXPECT_FALSE(reg.enabled());
    reg.publish({{"t5.k", 100}});
    reg.setEnabled(true);
    reg.publish({{"t5.k", 2}});
    EXPECT_EQ(3u, reg.totals()[reg.slot("t5.k")]);
    EXPECT_EQ(2u, reg.stats().publishes);
}

TEST(MetricsRegistry, GaugeStoresLatestNotSum)
{
    Registry reg;
    reg.setGauge("t6.depth", 5);
    reg.setGauge("t6.depth", 3);
    EXPECT_EQ(3u, reg.totals()[reg.slot("t6.depth")]);
    reg.setGauge("t6.depth", 0);   // Gauges can legally return to 0.
    EXPECT_EQ(0u, reg.totals()[reg.slot("t6.depth")]);
}

// -------------------------------------------------- Concurrency

TEST(MetricsRegistry, SampledTotalsMatchExactAfterJoin)
{
    Registry reg;
    constexpr int kThreads = 4;
    constexpr int kBatches = 1000;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&reg] {
            for (int i = 0; i < kBatches; ++i)
                reg.publish({{"t7.a", 3}, {"t7.b", 1}});
        });
    }
    for (std::thread &w : workers)
        w.join();
    auto totals = reg.totals();
    EXPECT_EQ(uint64_t{kThreads} * kBatches * 3,
              totals[reg.slot("t7.a")]);
    EXPECT_EQ(uint64_t{kThreads} * kBatches, totals[reg.slot("t7.b")]);
    // One shard per publishing thread (the main thread only interned,
    // never published).
    EXPECT_EQ(uint64_t{kThreads}, reg.stats().shards);
}

TEST(MetricsRegistry, SnapshotSeesBatchesAtomically)
{
    // A writer publishes batches whose two counters always move in
    // lockstep; a concurrent reader sums totals() the whole time.  A
    // consistent (untorn) read sees them equal; the bounded seqlock
    // retry can accept a torn *batch* under sustained writer pressure,
    // so the assertion allows a small divergence — but never a torn
    // word, never a decrease, never an overshoot.  TSan runs this
    // test; the seqlock protocol itself is what is under test.
    Registry reg;
    constexpr uint64_t kBatches = 20000;
    std::atomic<bool> done{false};
    std::thread writer([&] {
        for (uint64_t i = 0; i < kBatches; ++i)
            reg.publish({{"t8.a", 1}, {"t8.b", 1}});
        done.store(true, std::memory_order_release);
    });

    uint64_t prev_a = 0;
    uint64_t reads = 0;
    while (!done.load(std::memory_order_acquire)) {
        auto totals = reg.totals();
        // Slots intern on the writer's first publish; skip until then.
        if (reg.slotCount() < 2)
            continue;
        uint64_t a = totals[reg.slot("t8.a")];
        uint64_t b = totals[reg.slot("t8.b")];
        EXPECT_GE(a, prev_a) << "totals went backwards";
        EXPECT_LE(a, kBatches);
        EXPECT_LE(b, kBatches);
        uint64_t diff = a > b ? a - b : b - a;
        EXPECT_LE(diff, 64u) << "torn far beyond one retry window";
        prev_a = a;
        ++reads;
    }
    writer.join();
    auto totals = reg.totals();
    EXPECT_EQ(kBatches, totals[reg.slot("t8.a")]);
    EXPECT_EQ(kBatches, totals[reg.slot("t8.b")]);
    EXPECT_GT(reads, 0u);
}

// ------------------------------------------------------------ Ring

TEST(MetricsRegistry, RingWrapsKeepingNewest)
{
    Registry reg(4);
    EXPECT_EQ(4u, reg.ringCapacity());
    for (uint64_t i = 1; i <= 7; ++i) {
        reg.publish({{"t9.ticks", 1}});
        reg.sample();
    }
    EXPECT_EQ(4u, reg.ringSize());
    EXPECT_EQ(7u, reg.ringPushed());
    EXPECT_EQ(7u, reg.stats().samples);

    uint16_t s = reg.slot("t9.ticks");
    metrics::Sample smp;
    ASSERT_TRUE(reg.ringAt(0, smp));
    EXPECT_EQ(7u, smp.v[s]);          // Newest sample.
    uint64_t newest_ns = smp.ns;
    ASSERT_TRUE(reg.ringAt(3, smp));
    EXPECT_EQ(4u, smp.v[s]);          // Oldest retained (5,6,7 evicted
                                      // samples 1..3).
    EXPECT_LE(smp.ns, newest_ns);     // Timeline is monotone.
    EXPECT_FALSE(reg.ringAt(4, smp)); // Wrapped away.
}

TEST(MetricsRegistry, RateMatchesHandComputedRingDelta)
{
    Registry reg;
    reg.publish({{"t10.n", 100}});
    reg.sample();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    reg.publish({{"t10.n", 900}});
    reg.sample();

    uint16_t s = reg.slot("t10.n");
    metrics::Sample newest, oldest;
    ASSERT_TRUE(reg.ringAt(0, newest));
    ASSERT_TRUE(reg.ringAt(1, oldest));
    ASSERT_GT(newest.ns, oldest.ns);
    double expect = static_cast<double>(newest.v[s] - oldest.v[s]) /
                    (static_cast<double>(newest.ns - oldest.ns) * 1e-9);
    EXPECT_NEAR(expect, reg.rate(s, UINT64_MAX / 2), expect * 1e-9);
}

TEST(MetricsRegistry, RateNeedsTwoSamples)
{
    Registry reg;
    reg.publish({{"t11.n", 5}});
    EXPECT_EQ(0.0, reg.rate(reg.slot("t11.n"), 1'000'000'000));
    reg.sample();
    EXPECT_EQ(0.0, reg.rate(reg.slot("t11.n"), 1'000'000'000));
}

// ------------------------------------------------------------- HUD

TEST(MetricsHud, RendersStableFrameShape)
{
    Registry reg;
    reg.publish({{"cpu.instret", 1000000},
                 {"kernel.arith_instrs", 5000},
                 {"kernel.ls_instrs", 2000},
                 {"kernel.cf_instrs", 500},
                 {"sys.compute_jobs", 3},
                 {"tlb.last_page_hits", 90},
                 {"tlb.array_hits", 8},
                 {"tlb.walks", 2},
                 {"sched.steals", 4},
                 {"sched.steal_attempts", 10}});
    reg.sample();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    reg.publish({{"cpu.instret", 1000000}});
    reg.sample();

    std::string frame = metrics::renderHud(reg);
    ASSERT_FALSE(frame.empty());
    EXPECT_EQ('\n', frame.back());
    EXPECT_NE(std::string::npos, frame.find("cpu"));
    EXPECT_NE(std::string::npos, frame.find("tlb"));
    EXPECT_EQ(std::string::npos, frame.find("fleet"))
        << "fleet block must stay hidden until a server publishes";

    auto lines = [](const std::string &s) {
        size_t n = 0;
        for (char c : s)
            n += c == '\n';
        return n;
    };
    EXPECT_EQ(4u, lines(frame));

    // A second frame has the same line count (cursor-up rewrite
    // contract) until a new subsystem appears.
    reg.sample();
    EXPECT_EQ(4u, lines(metrics::renderHud(reg)));

    // Fleet gauges unhide the fleet line.
    reg.setGauge("fleet.sessions_live", 2);
    reg.setGauge("fleet.queue_depth", 1);
    reg.sample();
    std::string fleet_frame = metrics::renderHud(reg);
    EXPECT_EQ(5u, lines(fleet_frame));
    EXPECT_NE(std::string::npos, fleet_frame.find("fleet"));
}

// ------------------------------------------------- Sweep: flatten

TEST(SweepFlatten, DotsObjectsAndNamesArrays)
{
    json::Value doc = json::Value::parse(R"({
      "bench": "demo",
      "nested": {"inner": {"leaf": 3}},
      "named": [{"name": "a", "v": 1}, {"name": "b", "v": 2}],
      "plain": [10, 20],
      "flag": true
    })");
    auto flat = metrics::sweep::flatten(doc);

    EXPECT_EQ(1u, flat.count("bench"));
    EXPECT_TRUE(flat.at("bench").isStr);
    EXPECT_EQ("demo", flat.at("bench").str);
    EXPECT_EQ(3.0, flat.at("nested.inner.leaf").num);
    // Named arrays key by element name, and the "name" member itself
    // is dropped (it already is the key).
    EXPECT_EQ(1.0, flat.at("named.a.v").num);
    EXPECT_EQ(2.0, flat.at("named.b.v").num);
    EXPECT_EQ(0u, flat.count("named.a.name"));
    // Unnamed arrays key by index; bools flatten to 0/1.
    EXPECT_EQ(10.0, flat.at("plain.0").num);
    EXPECT_EQ(20.0, flat.at("plain.1").num);
    EXPECT_EQ(1.0, flat.at("flag").num);
}

// ------------------------------------------------ Sweep: classify

TEST(SweepClassify, RoutesKeysToRules)
{
    using metrics::sweep::Rule;
    using metrics::sweep::classify;

    EXPECT_EQ(Rule::Identity, classify("bench"));
    EXPECT_EQ(Rule::Identity, classify("schema"));
    EXPECT_EQ(Rule::Identity, classify("scale"));
    EXPECT_EQ(Rule::Provenance, classify("host.hw_threads"));
    EXPECT_EQ(Rule::Provenance, classify("gate.threshold"));

    EXPECT_EQ(Rule::Timing, classify("cold_boot_secs"));
    EXPECT_EQ(Rule::Timing, classify("job_p99_ms"));
    EXPECT_EQ(Rule::Timing, classify("kernels.mad_loop.off.mips"));
    EXPECT_EQ(Rule::Timing, classify("publish_hook_ns"));
    // Wall-clock A/B deltas and host-noise estimates are host
    // measurements even though they end in "overhead".
    EXPECT_EQ(Rule::Timing,
              classify("kernels.mad_loop.wall_overhead"));
    EXPECT_EQ(Rule::Timing, classify("noise_floor_overhead"));

    EXPECT_EQ(Rule::Ratio, classify("warm_spawn_speedup"));
    EXPECT_EQ(Rule::Ratio, classify("tlb.hit_rate"));
    EXPECT_EQ(Rule::Ratio, classify("cpu.instret_agree"));
    EXPECT_EQ(Rule::Ratio,
              classify("kernels.mad_loop.modeled_overhead"));

    EXPECT_EQ(Rule::Schedule, classify("sched.steals"));
    EXPECT_EQ(Rule::Schedule, classify("pool_spawns"));
    EXPECT_EQ(Rule::Schedule, classify("driver_loop.driver_instret"));
    EXPECT_EQ(Rule::Schedule, classify("trace.events"));

    EXPECT_EQ(Rule::Count, classify("image_bytes"));
    EXPECT_EQ(Rule::Count, classify("jobs_run"));
    EXPECT_EQ(Rule::Count, classify("guest_boot.instret"));
}

// ---------------------------------------------------- Sweep: diff

metrics::sweep::DiffResult
diffDocs(const char *base, const char *cand)
{
    return metrics::sweep::diff(json::Value::parse(base),
                                json::Value::parse(cand));
}

TEST(SweepDiff, SeededSpeedupRegressionFails)
{
    auto res = diffDocs(R"({"warm_speedup": 12.0})",
                        R"({"warm_speedup": 4.0})");
    EXPECT_EQ(1u, res.regressions);
    std::string report = res.render("seeded");
    EXPECT_NE(std::string::npos, report.find("REGRESSION"));
    EXPECT_NE(std::string::npos, report.find("warm_speedup"));
}

TEST(SweepDiff, NoiseBandSpeedupSelfDisarms)
{
    // Baseline below 2x carries no effect to regress from (a host
    // with fewer cores than the sweep measures ~1x +- noise).
    auto res = diffDocs(R"({"scaling_speedup": 1.2})",
                        R"({"scaling_speedup": 0.5})");
    EXPECT_EQ(0u, res.regressions);
}

TEST(SweepDiff, OverheadClampsNegativeBaseline)
{
    // A lucky baseline run measured negative overhead; the clamp
    // keeps the band satisfiable.
    EXPECT_EQ(0u, diffDocs(R"({"trace_overhead": -0.03})",
                           R"({"trace_overhead": 0.05})")
                      .regressions);
    EXPECT_EQ(1u, diffDocs(R"({"trace_overhead": -0.03})",
                           R"({"trace_overhead": 0.2})")
                      .regressions);
}

TEST(SweepDiff, BoundedRatiosAreTight)
{
    EXPECT_EQ(0u, diffDocs(R"({"tlb_hit_rate": 0.99})",
                           R"({"tlb_hit_rate": 0.95})")
                      .regressions);
    EXPECT_EQ(1u, diffDocs(R"({"tlb_hit_rate": 0.99})",
                           R"({"tlb_hit_rate": 0.93})")
                      .regressions);
}

TEST(SweepDiff, DeterministicCountsGateBothWays)
{
    EXPECT_EQ(0u, diffDocs(R"({"instret": 1000})",
                           R"({"instret": 1005})")
                      .regressions);
    EXPECT_EQ(1u, diffDocs(R"({"instret": 1000})",
                           R"({"instret": 1020})")
                      .regressions);
    EXPECT_EQ(1u, diffDocs(R"({"instret": 1000})",
                           R"({"instret": 980})")
                      .regressions);
}

TEST(SweepDiff, TimingAndScheduleNeverGate)
{
    auto res = diffDocs(
        R"({"boot_secs": 0.1, "sched_steals": 5, "mips": 900})",
        R"({"boot_secs": 5.0, "sched_steals": 5000, "mips": 90})");
    EXPECT_EQ(0u, res.regressions);
}

TEST(SweepDiff, MissingKeyIsRegressionAddedIsNot)
{
    auto res = diffDocs(R"({"kept": 1, "vanished": 2})",
                        R"({"kept": 1, "brand_new": 3})");
    EXPECT_EQ(1u, res.regressions);
    bool saw_missing = false, saw_added = false;
    for (const auto &row : res.rows) {
        if (row.key == "vanished")
            saw_missing =
                row.status == metrics::sweep::DiffStatus::Missing;
        if (row.key == "brand_new")
            saw_added =
                row.status == metrics::sweep::DiffStatus::Added;
    }
    EXPECT_TRUE(saw_missing);
    EXPECT_TRUE(saw_added);
}

TEST(SweepDiff, IdentityMismatchFails)
{
    EXPECT_EQ(1u, diffDocs(R"({"bench": "fleet"})",
                           R"({"bench": "replay"})")
                      .regressions);
    EXPECT_EQ(1u,
              diffDocs(R"({"scale": 1.0})", R"({"scale": 0.25})")
                  .regressions);
    EXPECT_EQ(0u, diffDocs(R"({"bench": "fleet", "scale": 0.25})",
                           R"({"bench": "fleet", "scale": 0.25})")
                      .regressions);
}

TEST(SweepDiff, HeadBenchDocPassesAgainstItself)
{
    // The shape simsweep actually diffs: envelope + nested metrics.
    const char *doc = R"({
      "bench": "metrics_overhead", "schema": 2, "scale": 0.25,
      "host": {"hw_threads": 1},
      "gate": {"enforced": true, "metric": "x", "threshold": 0.02,
               "value": 0.0004},
      "metrics": {
        "kernels": [
          {"name": "mad_loop", "instrs": 26236928,
           "off": {"secs": 0.29, "mips": 90.0},
           "on": {"secs": 0.29, "mips": 90.0},
           "wall_overhead": 0.01, "modeled_overhead": 0.000004}
        ],
        "publish_hook_ns": 291.0,
        "publishes": 200184,
        "noise_floor_overhead": 0.017
      }
    })";
    auto res = diffDocs(doc, doc);
    EXPECT_EQ(0u, res.regressions);
}

// ----------------------------------------------------------- JSON

TEST(MetricsJson, BenchDocRoundTripsThroughDump)
{
    json::Value doc = json::Value::object();
    doc.set("bench", json::Value("demo"));
    doc.set("count", json::Value(uint64_t{26236928}));
    doc.set("ratio", json::Value(0.017));
    json::Value parsed = json::Value::parse(doc.dump());
    auto a = metrics::sweep::flatten(doc);
    auto b = metrics::sweep::flatten(parsed);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(a.at("count").num, b.at("count").num);
    EXPECT_DOUBLE_EQ(a.at("ratio").num, b.at("ratio").num);
}

TEST(MetricsJson, ParseErrorsThrowSimError)
{
    EXPECT_THROW(json::Value::parse("{\"unterminated\": "), SimError);
    EXPECT_THROW(json::Value::parseFile("/nonexistent/bench.json"),
                 SimError);
}

} // namespace
} // namespace bifsim
