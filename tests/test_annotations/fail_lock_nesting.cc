// Negative-compile fixture: the repo encodes its no-nesting lock
// discipline (DESIGN.md §5f/§5i) as EXCLUDES contracts — calling a
// function that promises "caller must NOT hold lock_" while holding
// it is exactly the self-deadlock class the GPU device guards
// against, and must fail under clang ("while mutex").  Under GCC
// this compiles.
#include "common/thread_annotations.h"

namespace bifsim {

class Device
{
  public:
    void submit() EXCLUDES(lock_)
    {
        sim::LockGuard g(lock_);
        waitIdle();   // BUG: waitIdle() re-acquires lock_ itself.
    }

    void waitIdle() EXCLUDES(lock_)
    {
        sim::LockGuard g(lock_);
    }

  private:
    sim::Mutex lock_;
};

} // namespace bifsim
