// Positive control: a correctly-annotated component exercising every
// wrapper (Mutex, LockGuard, UniqueLock, CondVar) and contract kind
// (GUARDED_BY, REQUIRES, EXCLUDES).  Must compile under clang
// -Werror=thread-safety AND under GCC — if this fails, the harness
// flags are broken, not the annotations.
#include "common/thread_annotations.h"

namespace bifsim {

class Mailbox
{
  public:
    void post(int v) EXCLUDES(lock_)
    {
        sim::LockGuard g(lock_);
        value_ = v;
        ready_ = true;
        cv_.notify_all();
    }

    int take() EXCLUDES(lock_)
    {
        sim::UniqueLock l(wakeRef());
        while (!ready_)
            cv_.wait(l);
        ready_ = false;
        return drain();
    }

  private:
    // RETURN_CAPABILITY lets the analysis see through the accessor.
    sim::Mutex &wakeRef() RETURN_CAPABILITY(lock_) { return lock_; }

    int drain() REQUIRES(lock_) { return value_; }

    sim::Mutex lock_;
    sim::CondVar cv_;
    int value_ GUARDED_BY(lock_) = 0;
    bool ready_ GUARDED_BY(lock_) = false;
};

} // namespace bifsim

int
main()
{
    bifsim::Mailbox m;
    m.post(7);
    return m.take() == 7 ? 0 : 1;
}
