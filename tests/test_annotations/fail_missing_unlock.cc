// Negative-compile fixture: a path that acquires a mutex and returns
// without releasing it must fail under clang -Werror=thread-safety
// ("still held at the end of function").  Under GCC this compiles.
#include "common/thread_annotations.h"

namespace bifsim {

class Box
{
  public:
    int poke(bool fast)
    {
        lock_.lock();
        if (fast)
            return value_;   // BUG: early return leaks the lock.
        ++value_;
        lock_.unlock();
        return 0;
    }

  private:
    sim::Mutex lock_;
    int value_ GUARDED_BY(lock_) = 0;
};

} // namespace bifsim
