// Negative-compile fixture: the lost-wakeup shape System::wake()
// fixed in this PR.  The wake-pending latch is GUARDED_BY the wake
// lock; updating it before notify without holding the lock — the
// pre-fix bug, where a wake between the sleeper's predicate check
// and its wait was dropped — must fail under clang ("requires
// holding mutex").  Under GCC this compiles.
#include "common/thread_annotations.h"

namespace bifsim {

class SleepWake
{
  public:
    void wake()
    {
        wakePending_ = true;   // BUG: wakeLock_ is not held.
        wakeCv_.notify_all();
    }

    void sleep()
    {
        sim::UniqueLock l(wakeLock_);
        while (!wakePending_)
            wakeCv_.wait(l);
        wakePending_ = false;
    }

  private:
    sim::Mutex wakeLock_;
    sim::CondVar wakeCv_;
    bool wakePending_ GUARDED_BY(wakeLock_) = false;
};

} // namespace bifsim
