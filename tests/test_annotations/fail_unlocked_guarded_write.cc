// Negative-compile fixture: writing a GUARDED_BY member without
// holding its mutex must fail under clang -Werror=thread-safety
// ("requires holding mutex").  Under GCC the annotations expand to
// nothing and this file must compile cleanly.
#include "common/thread_annotations.h"

namespace bifsim {

class Counter
{
  public:
    void bump()
    {
        ++value_;   // BUG: lock_ is not held here.
    }

    int read()
    {
        sim::LockGuard g(lock_);
        return value_;
    }

  private:
    sim::Mutex lock_;
    int value_ GUARDED_BY(lock_) = 0;
};

} // namespace bifsim
