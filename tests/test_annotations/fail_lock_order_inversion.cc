// Negative-compile fixture: acquiring two mutexes against their
// declared ACQUIRED_BEFORE order must fail under clang
// -Werror=thread-safety-beta ("must be acquired before" — ordering
// checks live behind the -beta flag).  Under GCC this compiles.
//
// The production tree declares no ACQUIRED_BEFORE chain on purpose —
// its discipline is *no nesting*, encoded as EXCLUDES (see
// fail_lock_nesting.cc) — but the harness still proves the ordering
// vocabulary works for any future component that needs a real chain.
#include "common/thread_annotations.h"

namespace bifsim {

class Ordered
{
  public:
    void good()
    {
        sim::LockGuard a(first_);
        sim::LockGuard b(second_);
    }

    void bad()
    {
        sim::LockGuard b(second_);
        sim::LockGuard a(first_);   // BUG: inverts the declared order.
    }

  private:
    sim::Mutex first_ ACQUIRED_BEFORE(second_);
    sim::Mutex second_;
};

} // namespace bifsim
