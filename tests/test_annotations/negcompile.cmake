# Invoked per fixture via add_test (see CMakeLists.txt here): compile
# SRC with FLAGS and check the outcome against EXPECT.
#
#   EXPECT=PASS  — the fixture must compile (positive control, and
#                  every fixture under non-clang compilers where the
#                  annotation macros expand to nothing).
#   EXPECT=FAIL  — the fixture must NOT compile, and the diagnostic
#                  output must contain MATCH, proving the failure is
#                  the thread-safety contract and not an unrelated
#                  syntax error.
execute_process(
    COMMAND ${COMPILER} ${FLAGS} -I${INCLUDE_DIR} ${SRC}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)

if(EXPECT STREQUAL "PASS")
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
            "expected ${SRC} to compile, got rc=${rc}:\n${err}")
    endif()
elseif(EXPECT STREQUAL "FAIL")
    if(rc EQUAL 0)
        message(FATAL_ERROR
            "expected ${SRC} to FAIL to compile — the thread-safety "
            "annotations are not load-bearing under this compiler")
    endif()
    string(FIND "${out}${err}" "${MATCH}" match_at)
    if(match_at EQUAL -1)
        message(FATAL_ERROR
            "${SRC} failed to compile, but without the expected "
            "diagnostic '${MATCH}':\n${err}")
    endif()
else()
    message(FATAL_ERROR "bad EXPECT='${EXPECT}' (want PASS or FAIL)")
endif()
