/** @file Unit tests for the common utilities. */

#include <gtest/gtest.h>

#include "common/bits.h"
#include "common/histogram.h"
#include "common/logging.h"

namespace bifsim {
namespace {

TEST(Bits, ExtractBasic)
{
    EXPECT_EQ(bits(0xDEADBEEF, 31, 16), 0xDEADu);
    EXPECT_EQ(bits(0xDEADBEEF, 15, 0), 0xBEEFu);
    EXPECT_EQ(bits(0xFF, 3, 0), 0xFu);
    EXPECT_EQ(bits(0x80000000u, 31, 31), 1u);
}

TEST(Bits, ExtractFullWidth)
{
    EXPECT_EQ(bits(~uint64_t{0}, 63, 0), ~uint64_t{0});
}

TEST(Bits, SingleBit)
{
    EXPECT_EQ(bit(0b1010, 1), 1u);
    EXPECT_EQ(bit(0b1010, 0), 0u);
    EXPECT_EQ(bit(uint64_t{1} << 63, 63), 1u);
}

TEST(Bits, InsertBits)
{
    EXPECT_EQ(insertBits(0, 15, 8, 0xAB), 0xAB00u);
    EXPECT_EQ(insertBits(0xFFFF, 7, 4, 0), 0xFF0Fu);
    EXPECT_EQ(insertBits(0, 63, 0, ~uint64_t{0}), ~uint64_t{0});
}

TEST(Bits, SignExtend)
{
    EXPECT_EQ(sext(0xFF, 8), -1);
    EXPECT_EQ(sext(0x7F, 8), 127);
    EXPECT_EQ(sext(0x8000, 16), -32768);
    EXPECT_EQ(sext32(0xFFFF, 16), -1);
    EXPECT_EQ(sext32(0x7FFF, 16), 32767);
    EXPECT_EQ(sext(0, 1), 0);
    EXPECT_EQ(sext(1, 1), -1);
}

TEST(Bits, FitsSigned)
{
    EXPECT_TRUE(fitsSigned(127, 8));
    EXPECT_TRUE(fitsSigned(-128, 8));
    EXPECT_FALSE(fitsSigned(128, 8));
    EXPECT_FALSE(fitsSigned(-129, 8));
    EXPECT_TRUE(fitsSigned(32767, 16));
    EXPECT_FALSE(fitsSigned(32768, 16));
}

TEST(Bits, FitsUnsigned)
{
    EXPECT_TRUE(fitsUnsigned(255, 8));
    EXPECT_FALSE(fitsUnsigned(256, 8));
    EXPECT_TRUE(fitsUnsigned(~uint64_t{0}, 64));
}

TEST(Bits, Alignment)
{
    EXPECT_TRUE(isAligned(0x1000, 4096));
    EXPECT_FALSE(isAligned(0x1001, 4096));
    EXPECT_EQ(roundUp(5, 4), 8u);
    EXPECT_EQ(roundUp(8, 4), 8u);
    EXPECT_EQ(roundDown(7, 4), 4u);
}

TEST(Histogram, SampleAndTotal)
{
    Histogram h(9);
    h.sample(1);
    h.sample(1);
    h.sample(8, 3);
    EXPECT_EQ(h.count(1), 2u);
    EXPECT_EQ(h.count(8), 3u);
    EXPECT_EQ(h.total(), 5u);
}

TEST(Histogram, Clamping)
{
    Histogram h(4);
    h.sample(-5);
    h.sample(100);
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(3), 1u);
}

TEST(Histogram, FractionAndMean)
{
    Histogram h(4);
    h.sample(1, 3);
    h.sample(3, 1);
    EXPECT_DOUBLE_EQ(h.fraction(1), 0.75);
    EXPECT_DOUBLE_EQ(h.mean(), (3.0 * 1 + 1.0 * 3) / 4.0);
}

TEST(Histogram, Merge)
{
    Histogram a(4), b(4);
    a.sample(2);
    b.sample(2, 2);
    b.sample(0);
    a.merge(b);
    EXPECT_EQ(a.count(2), 3u);
    EXPECT_EQ(a.count(0), 1u);
}

TEST(Histogram, EmptyMeanIsZero)
{
    Histogram h(4);
    EXPECT_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.fraction(1), 0.0);
}

TEST(Logging, StrFmt)
{
    EXPECT_EQ(strfmt("%d-%s", 42, "x"), "42-x");
    EXPECT_EQ(strfmt("%08x", 0xabc), "00000abc");
}

TEST(Logging, SimErrorThrows)
{
    EXPECT_THROW(simError("bad %d", 7), SimError);
    try {
        simError("code %d", 13);
    } catch (const SimError &e) {
        EXPECT_STREQ(e.what(), "code 13");
    }
}

TEST(Logging, InformToggle)
{
    setInformEnabled(false);
    EXPECT_FALSE(informEnabled());
    setInformEnabled(true);
    EXPECT_TRUE(informEnabled());
}

} // namespace
} // namespace bifsim
