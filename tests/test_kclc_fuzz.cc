/** @file Property-based compiler testing: random KCL kernels are
 *  compiled at every optimisation level and executed; all levels must
 *  agree with each other (the "compiler versions" must differ only in
 *  code shape, never in semantics), and every produced module must
 *  pass structural validation. */

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <functional>
#include <random>

#include "analysis/analysis.h"
#include "gpu/ref/ref_interp.h"
#include "kclc/compiler.h"

namespace bifsim::kclc {
namespace {

/** Generates a random arithmetic/control-flow kernel over three int
 *  and three float variables, writing all six to the output buffer. */
std::string
randomKernel(uint32_t seed)
{
    std::mt19937 rng(seed);
    auto ivar = [&] { return "i" + std::to_string(rng() % 3); };
    auto fvar = [&] { return "f" + std::to_string(rng() % 3); };

    std::function<std::string(int)> iexpr = [&](int depth) -> std::string {
        if (depth <= 0 || rng() % 3 == 0) {
            switch (rng() % 3) {
              case 0: return ivar();
              case 1: return std::to_string(rng() % 100);
              default: return "(int)get_global_id(0)";
            }
        }
        static const char *ops[] = {"+", "-", "*", "/", "%", "&", "|",
                                    "^", "<<", ">>"};
        const char *op = ops[rng() % 10];
        std::string rhs = iexpr(depth - 1);
        if (op == std::string("<<") || op == std::string(">>"))
            rhs = "(" + rhs + " & 7)";
        return "(" + iexpr(depth - 1) + " " + op + " " + rhs + ")";
    };
    std::function<std::string(int)> fexpr = [&](int depth) -> std::string {
        if (depth <= 0 || rng() % 3 == 0) {
            switch (rng() % 3) {
              case 0: return fvar();
              case 1:
                return std::to_string(rng() % 1000) + "." +
                       std::to_string(rng() % 100) + "f";
              default: return "(float)" + ivar();
            }
        }
        static const char *ops[] = {"+", "-", "*"};
        switch (rng() % 5) {
          case 0:
            return "fmin(" + fexpr(depth - 1) + ", " + fexpr(depth - 1) +
                   ")";
          case 1:
            return "fabs(" + fexpr(depth - 1) + ")";
          default:
            return "(" + fexpr(depth - 1) + " " + ops[rng() % 3] + " " +
                   fexpr(depth - 1) + ")";
        }
    };

    std::string body;
    body += "    int i0 = (int)get_global_id(0);\n";
    body += "    int i1 = n;\n";
    body += "    int i2 = 3;\n";
    body += "    float f0 = x;\n";
    body += "    float f1 = 2.5f;\n";
    body += "    float f2 = (float)i0;\n";
    unsigned stmts = 4 + rng() % 8;
    for (unsigned s = 0; s < stmts; ++s) {
        switch (rng() % 5) {
          case 0:
            body += "    " + ivar() + " = " + iexpr(2) + ";\n";
            break;
          case 1:
            body += "    " + fvar() + " = " + fexpr(2) + ";\n";
            break;
          case 2:
            body += "    if (" + iexpr(1) + " > " + iexpr(1) + ") { " +
                    ivar() + " = " + iexpr(1) + "; } else { " + fvar() +
                    " = " + fexpr(1) + "; }\n";
            break;
          case 3:
            body += "    for (int k = 0; k < " +
                    std::to_string(1 + rng() % 5) + "; k++) { " + ivar() +
                    " += " + iexpr(1) + "; }\n";
            break;
          default:
            body += "    " + ivar() + " = " + iexpr(1) + " > " +
                    iexpr(1) + " ? " + iexpr(1) + " : " + iexpr(1) +
                    ";\n";
            break;
        }
    }
    body += "    out[0] = i0;\n    out[1] = i1;\n    out[2] = i2;\n";
    std::string src = "kernel void fuzz(global int* out, "
                      "global float* fout, int n, float x) {\n" +
                      body +
                      "    fout[0] = f0;\n    fout[1] = f1;\n"
                      "    fout[2] = f2;\n}\n";
    return src;
}

std::array<uint32_t, 6>
runLevel(const std::string &src, int level)
{
    CompiledKernel k =
        compileKernel(src, "fuzz", CompilerOptions::forLevel(level));
    EXPECT_EQ(bif::validate(k.mod), "");
    std::vector<uint8_t> mem(65536, 0);
    std::vector<uint8_t> local(std::max<uint32_t>(k.localBytes, 4), 0);
    gpu::ref::RefContext ctx;
    ctx.args = {4096, 8192, 7u, std::bit_cast<uint32_t>(1.75f)};
    ctx.globalMem = &mem;
    ctx.localMem = &local;
    ctx.localId[0] = 2;
    ctx.localSize[0] = 4;
    ctx.gridSize[0] = 16;
    ctx.numGroups[0] = 4;
    ctx.groupId[0] = 1;
    gpu::ref::RefResult r = gpu::ref::runThread(k.mod, ctx);
    EXPECT_TRUE(r.ok) << r.error;
    std::array<uint32_t, 6> out;
    std::memcpy(out.data(), mem.data() + 4096, 12);
    std::memcpy(out.data() + 3, mem.data() + 8192, 12);
    return out;
}

class KclcFuzz : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(KclcFuzz, AllOptLevelsAgree)
{
    std::string src = randomKernel(GetParam());
    SCOPED_TRACE(src);
    std::array<uint32_t, 6> base = runLevel(src, 0);
    for (int level = 1; level <= 3; ++level) {
        std::array<uint32_t, 6> got = runLevel(src, level);
        EXPECT_EQ(got, base) << "level " << level;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KclcFuzz, ::testing::Range(100u, 140u));

/**
 * Byte-mutation corpus over encoded modules: bif::decode must never
 * crash or corrupt memory on hostile images, any accepted image must
 * survive the full static analyzer, and accepted images must
 * round-trip (decode(encode(decode(x))) == decode(x)).
 */
class DecodeMutationFuzz : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(DecodeMutationFuzz, DecodeAnalyzeNeverCrashesAndRoundTrips)
{
    uint32_t seed = GetParam();
    std::string src = randomKernel(seed);
    CompiledKernel k =
        compileKernel(src, "fuzz",
                      CompilerOptions::forLevel(static_cast<int>(seed % 4)));
    std::mt19937 rng(seed * 2654435761u + 1);

    std::vector<uint8_t> corpus = k.binary;
    for (int round = 0; round < 200; ++round) {
        std::vector<uint8_t> img = corpus;
        // 1..8 random byte mutations: flips, substitutions, truncation.
        unsigned edits = 1 + rng() % 8;
        for (unsigned e = 0; e < edits && !img.empty(); ++e) {
            size_t pos = rng() % img.size();
            switch (rng() % 4) {
              case 0: img[pos] ^= 1u << (rng() % 8); break;
              case 1: img[pos] = static_cast<uint8_t>(rng()); break;
              case 2: img[pos] = 0xff; break;
              default:
                img.resize(std::max<size_t>(1, pos));
                break;
            }
        }

        bif::Module mod;
        std::string err;
        if (!bif::decode(img.data(), img.size(), mod, err)) {
            EXPECT_FALSE(err.empty());
            continue;
        }
        // Accepted images satisfy the structural rules...
        EXPECT_EQ(bif::validate(mod), "");
        // ...never crash the analyzer...
        analysis::Result res = analysis::analyze(mod);
        (void)res;
        // ...and round-trip through encode/decode at module level.
        std::vector<uint8_t> re = bif::encode(mod);
        bif::Module mod2;
        ASSERT_TRUE(bif::decode(re.data(), re.size(), mod2, err)) << err;
        EXPECT_EQ(mod2, mod);
    }
}

INSTANTIATE_TEST_SUITE_P(MutationSeeds, DecodeMutationFuzz,
                         ::testing::Range(200u, 216u));

} // namespace
} // namespace bifsim::kclc
