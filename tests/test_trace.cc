/** @file Tests for the job-lifecycle trace subsystem: ring-buffer
 *  semantics, disabled-path behaviour, Chrome JSON export, and the
 *  causal order of the full submit -> decode -> exec -> IRQ -> wake
 *  lifecycle in both Direct and FullSystem modes. */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "gpu/gpu.h"
#include "guestos/guest_os.h"
#include "runtime/session.h"
#include "trace/trace.h"

namespace bifsim {
namespace {

/** First (earliest, since export sorts by ts) timestamp of an event
 *  with @p name in the exported JSON, or -1 if absent. */
double
firstTs(const std::string &json, const std::string &name)
{
    std::string needle = "\"name\":\"" + name + "\"";
    size_t pos = json.find(needle);
    if (pos == std::string::npos)
        return -1.0;
    size_t ts = json.find("\"ts\":", pos);
    if (ts == std::string::npos)
        return -1.0;
    return std::stod(json.substr(ts + 5));
}

int
countOf(const std::string &json, const std::string &name)
{
    std::string needle = "\"name\":\"" + name + "\"";
    int n = 0;
    for (size_t pos = json.find(needle); pos != std::string::npos;
         pos = json.find(needle, pos + needle.size()))
        n++;
    return n;
}

/** Structural sanity: balanced braces/brackets, no trailing comma. */
void
expectBalancedJson(const std::string &json)
{
    long brace = 0, bracket = 0;
    bool in_str = false;
    for (size_t i = 0; i < json.size(); ++i) {
        char c = json[i];
        if (in_str) {
            if (c == '\\')
                i++;
            else if (c == '"')
                in_str = false;
            continue;
        }
        switch (c) {
          case '"': in_str = true; break;
          case '{': brace++; break;
          case '}': brace--; break;
          case '[': bracket++; break;
          case ']': bracket--; break;
          default: break;
        }
        EXPECT_GE(brace, 0);
        EXPECT_GE(bracket, 0);
    }
    EXPECT_EQ(brace, 0);
    EXPECT_EQ(bracket, 0);
    EXPECT_EQ(json.find(",]"), std::string::npos);
    EXPECT_EQ(json.find(",\n]"), std::string::npos);
}

TEST(TraceBuffer, RingWrapsKeepingNewest)
{
    trace::TraceBuffer buf("t", 16);
    for (uint64_t i = 0; i < 40; ++i)
        buf.instant("ev", "cat", "i", i);
    EXPECT_EQ(buf.pushed(), 40u);
    EXPECT_EQ(buf.size(), 16u);
    std::vector<trace::Event> evs;
    buf.snapshot(evs);
    ASSERT_EQ(evs.size(), 16u);
    EXPECT_EQ(evs.front().args[0].value, 24u);   // Oldest retained.
    EXPECT_EQ(evs.back().args[0].value, 39u);    // Newest.
}

TEST(Tracer, DisabledHandsOutNullBuffers)
{
    trace::Tracer t(false);
    EXPECT_FALSE(t.enabled());
    EXPECT_EQ(t.registerThread("x"), nullptr);
    EXPECT_EQ(t.eventCount(), 0u);
    std::ostringstream os;
    t.exportChromeJson(os);
    std::string json = os.str();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    expectBalancedJson(json);
}

TEST(Tracer, SpanDurationAndCounterExport)
{
    trace::Tracer t(true, 64);
    trace::TraceBuffer *b = t.registerThread("worker");
    ASSERT_NE(b, nullptr);
    uint64_t t0 = trace::nowNs();
    b->span("work", "cat", t0, "items", 3);
    b->counter("kernel.arith_instrs", 42);
    std::ostringstream os;
    t.exportChromeJson(os);
    std::string json = os.str();
    expectBalancedJson(json);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(json.find("\"items\":3"), std::string::npos);
    EXPECT_NE(json.find("thread_name"), std::string::npos);
    EXPECT_NE(json.find("worker"), std::string::npos);
}

/** The sgemm smoke test the tracing subsystem is specified against:
 *  trace a full kernel launch and check the exported lifecycle. */
TEST(TraceSmoke, SgemmDirectLifecycle)
{
    const char *src = R"(
kernel void sgemm(global const float* A, global const float* B,
                  global float* C, int n) {
    int col = get_global_id(0);
    int row = get_global_id(1);
    float acc = 0.0f;
    for (int k = 0; k < n; k += 1) {
        acc += A[row * n + k] * B[k * n + col];
    }
    C[row * n + col] = acc;
}
)";
    constexpr uint32_t n = 16;
    rt::SystemConfig cfg;
    cfg.gpu.trace = true;
    cfg.gpu.hostThreads = 2;
    rt::Session s(cfg, rt::Mode::Direct);
    ASSERT_TRUE(s.tracer().enabled());

    rt::KernelHandle k = s.compile(src, "sgemm");
    rt::Buffer a = s.alloc(n * n * 4), b = s.alloc(n * n * 4),
               c = s.alloc(n * n * 4);
    std::vector<float> ha(n * n), hb(n * n);
    for (uint32_t i = 0; i < n * n; ++i) {
        ha[i] = static_cast<float>(i % 7) * 0.5f;
        hb[i] = static_cast<float>(i % 5) - 2.0f;
    }
    s.write(a, ha.data(), ha.size() * 4);
    s.write(b, hb.data(), hb.size() * 4);
    gpu::JobResult r = s.enqueue(
        k, rt::NDRange{n, n, 1}, rt::NDRange{8, 8, 1},
        {rt::Arg::buf(a), rt::Arg::buf(b), rt::Arg::buf(c),
         rt::Arg::i32(static_cast<int32_t>(n))});
    ASSERT_FALSE(r.faulted) << r.fault.detail;

    // The traced run still computes the right answer.
    std::vector<float> hc(n * n);
    s.read(c, hc.data(), hc.size() * 4);
    for (uint32_t row = 0; row < n; row += 5) {
        for (uint32_t col = 0; col < n; col += 3) {
            float acc = 0.0f;
            for (uint32_t kk = 0; kk < n; ++kk)
                acc += ha[row * n + kk] * hb[kk * n + col];
            EXPECT_FLOAT_EQ(hc[row * n + col], acc);
        }
    }

    std::ostringstream os;
    s.tracer().exportChromeJson(os);
    std::string json = os.str();
    expectBalancedJson(json);
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);

    // Every lifecycle stage must appear...
    double t_submit = firstTs(json, "js_submit");
    double t_decode = firstTs(json, "decode");
    double t_group = firstTs(json, "workgroup");
    double t_worker = firstTs(json, "worker_exec");
    double t_job = firstTs(json, "job");
    double t_irq = firstTs(json, "irq_raise");
    double t_wake = firstTs(json, "driver_wake");
    ASSERT_GE(t_submit, 0.0);
    ASSERT_GE(t_decode, 0.0);
    ASSERT_GE(t_group, 0.0);
    ASSERT_GE(t_worker, 0.0);
    ASSERT_GE(t_job, 0.0);
    ASSERT_GE(t_irq, 0.0);
    ASSERT_GE(t_wake, 0.0);

    // ...in causal order (timestamps are span starts, so each stage
    // begins no earlier than the one that triggered it).
    EXPECT_LE(t_submit, t_decode);
    EXPECT_LE(t_decode, t_group);
    EXPECT_LE(t_group, t_irq);
    EXPECT_LE(t_irq, t_wake);

    // Counters recorded once per completed job.
    EXPECT_NE(json.find("kernel.arith_instrs"), std::string::npos);
    EXPECT_NE(json.find("tlb.walks"), std::string::npos);
    EXPECT_NE(json.find("sys.compute_jobs"), std::string::npos);

    // Thread metadata for every producer.
    EXPECT_NE(json.find("gpu-device"), std::string::npos);
    EXPECT_NE(json.find("gpu-jm"), std::string::npos);
    EXPECT_NE(json.find("gpu-worker-0"), std::string::npos);
    EXPECT_NE(json.find("cpu-driver"), std::string::npos);

    // Human-readable summary mentions the job.
    std::ostringstream sum;
    s.tracer().writeSummary(sum);
    EXPECT_NE(sum.str().find("job #0"), std::string::npos);
    EXPECT_NE(sum.str().find("workgroup"), std::string::npos);
}

TEST(TraceSmoke, FullSystemGuestDriverWake)
{
    const char *src = R"(
kernel void copy(global const int* in, global int* out, int n) {
    int i = get_global_id(0);
    if (i < n) {
        out[i] = in[i];
    }
}
)";
    rt::SystemConfig cfg;
    cfg.gpu.trace = true;
    cfg.gpu.hostThreads = 2;
    rt::Session s(cfg, rt::Mode::FullSystem);
    rt::KernelHandle k = s.compile(src, "copy");
    rt::Buffer a = s.alloc(256), b = s.alloc(256);
    std::vector<int32_t> in(64);
    for (int i = 0; i < 64; ++i)
        in[i] = i * 3;
    s.write(a, in.data(), 256);
    gpu::JobResult r = s.enqueue(
        k, rt::NDRange{64, 1, 1}, rt::NDRange{64, 1, 1},
        {rt::Arg::buf(a), rt::Arg::buf(b), rt::Arg::i32(64)});
    ASSERT_FALSE(r.faulted) << r.fault.detail;

    // The guest driver's WFI loop observed the completion flag and
    // bumped the wake counter in the mailbox.
    guestos::Layout layout = guestos::defaultLayout(rt::System::kRamBase);
    uint32_t wakes = s.system().mem().read<uint32_t>(
        layout.mailbox + guestos::kMbWakes);
    EXPECT_GE(wakes, 1u);

    std::ostringstream os;
    s.tracer().exportChromeJson(os);
    std::string json = os.str();
    expectBalancedJson(json);
    EXPECT_GE(countOf(json, "driver_wake"), 1);
    EXPECT_GE(countOf(json, "driver_cmd"), 1);
    EXPECT_NE(json.find("\"guest_wakes\""), std::string::npos);
    double t_submit = firstTs(json, "js_submit");
    double t_wake = firstTs(json, "driver_wake");
    ASSERT_GE(t_submit, 0.0);
    ASSERT_GE(t_wake, 0.0);
    EXPECT_LE(t_submit, t_wake);
}

TEST(TraceSmoke, DisabledTracingRecordsNothing)
{
    rt::SystemConfig cfg;   // trace defaults to false
    cfg.gpu.hostThreads = 2;
    rt::Session s(cfg, rt::Mode::Direct);
    EXPECT_FALSE(s.tracer().enabled());
    const char *src = R"(
kernel void fill(global int* out) {
    out[get_global_id(0)] = 7;
}
)";
    rt::KernelHandle k = s.compile(src, "fill");
    rt::Buffer b = s.alloc(64);
    gpu::JobResult r = s.enqueue(k, rt::NDRange{16, 1, 1},
                                 rt::NDRange{4, 1, 1},
                                 {rt::Arg::buf(b)});
    ASSERT_FALSE(r.faulted);
    EXPECT_EQ(s.tracer().eventCount(), 0u);
}

} // namespace
} // namespace bifsim
