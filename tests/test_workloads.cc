/** @file End-to-end workload tests: every Table II benchmark verifies
 *  against its host reference on the full simulator; a subset also
 *  runs through the guest driver (full-system) and on the m2ssim
 *  baseline (which must agree with the full model). */

#include <gtest/gtest.h>

#include "baseline/m2ssim.h"
#include "common/logging.h"
#include "workloads/cost_model.h"
#include "workloads/kfusion.h"
#include "workloads/sgemm_variants.h"
#include "workloads/workload.h"

namespace bifsim::workloads {
namespace {

constexpr double kTinyScale = 0.002;

class WorkloadDirect : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadDirect, VerifiesAgainstHostReference)
{
    setInformEnabled(false);
    auto wl = makeWorkload(GetParam(), kTinyScale);
    rt::SystemConfig cfg;
    cfg.gpu.hostThreads = 2;
    rt::Session session(cfg);
    SessionDevice dev(session);
    dev.build(wl->source(), kclc::CompilerOptions());
    RunResult rr = wl->run(dev);
    EXPECT_TRUE(rr.ok) << rr.error;
    EXPECT_GE(rr.launches, 1u);
    // Instrumentation collected something meaningful.
    gpu::KernelStats ks = session.system().gpu().totalKernelStats();
    EXPECT_GT(ks.totalInstrs(), 0u);
    EXPECT_GT(ks.threadsLaunched, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, WorkloadDirect,
    ::testing::ValuesIn(allWorkloadNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

class WorkloadO0 : public ::testing::TestWithParam<std::string>
{
};

/** The whole suite must also be correct with the naive compiler. */
TEST_P(WorkloadO0, VerifiesAtOptLevelZero)
{
    setInformEnabled(false);
    auto wl = makeWorkload(GetParam(), kTinyScale);
    rt::SystemConfig cfg;
    cfg.gpu.hostThreads = 2;
    rt::Session session(cfg);
    SessionDevice dev(session);
    dev.build(wl->source(), kclc::CompilerOptions::forLevel(0));
    RunResult rr = wl->run(dev);
    EXPECT_TRUE(rr.ok) << rr.error;
}

INSTANTIATE_TEST_SUITE_P(
    Subset, WorkloadO0,
    ::testing::Values("sobelfilter", "reduction", "bfs",
                      "binomialoption", "scanlargearrays"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

class WorkloadFullSystem : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadFullSystem, VerifiesThroughGuestDriver)
{
    setInformEnabled(false);
    auto wl = makeWorkload(GetParam(), kTinyScale);
    rt::SystemConfig cfg;
    cfg.gpu.hostThreads = 2;
    rt::Session session(cfg, rt::Mode::FullSystem);
    SessionDevice dev(session);
    dev.build(wl->source(), kclc::CompilerOptions());
    RunResult rr = wl->run(dev);
    EXPECT_TRUE(rr.ok) << rr.error;
    EXPECT_GT(session.driverInstructions(), 0u);
    gpu::SystemStats st = session.system().gpu().systemStats();
    EXPECT_GE(st.computeJobs, rr.launches);
    EXPECT_GE(st.irqsAsserted, rr.launches);
    EXPECT_GT(st.pagesAccessed, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Subset, WorkloadFullSystem,
    ::testing::Values("sobelfilter", "reduction", "bfs", "stencil"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

class WorkloadBaseline : public ::testing::TestWithParam<std::string>
{
};

/** The Multi2Sim-style baseline must produce the same functional
 *  results as the full-system model. */
TEST_P(WorkloadBaseline, BaselineAgrees)
{
    setInformEnabled(false);
    auto wl = makeWorkload(GetParam(), kTinyScale);
    baseline::M2sSim sim(128u << 20);
    M2sDevice dev(sim);
    dev.build(wl->source(), kclc::CompilerOptions());
    RunResult rr = wl->run(dev);
    EXPECT_TRUE(rr.ok) << rr.error;
    EXPECT_GT(sim.stats().instructions, 0u);
    EXPECT_GT(sim.stats().slotDecodes, sim.stats().instructions);
}

INSTANTIATE_TEST_SUITE_P(
    Subset, WorkloadBaseline,
    ::testing::Values("sobelfilter", "reduction", "dct",
                      "matrixtranspose", "binarysearch"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

TEST(SgemmVariants, AllVerifyAndDiffer)
{
    setInformEnabled(false);
    rt::Session session;
    auto res = runSgemmVariants(session, 64);
    ASSERT_EQ(res.size(), 6u);
    for (const SgemmVariantResult &r : res)
        EXPECT_TRUE(r.ok) << r.name << ": " << r.error;
    // Variant 4 must hit main memory far less than the naive variant.
    EXPECT_LT(res[3].stats.globalLdSt * 4, res[0].stats.globalLdSt);
    // Variant 6 uses no local memory; variant 2 uses plenty.
    EXPECT_EQ(res[5].stats.localLdSt, 0u);
    EXPECT_GT(res[1].stats.localLdSt, 0u);
    // Cost models rank them differently (the Fig. 15 claim).
    CostModel mali = maliCostModel(), desk = desktopCostModel();
    int best_mali = 0, best_desk = 0;
    for (int i = 1; i < 6; ++i) {
        if (evalCost(res[i].stats, mali) <
            evalCost(res[best_mali].stats, mali))
            best_mali = i;
        if (evalCost(res[i].stats, desk) <
            evalCost(res[best_desk].stats, desk))
            best_desk = i;
    }
    EXPECT_EQ(best_mali, 3);   // 4:WiderDataTypes wins on mobile.
    EXPECT_NE(best_mali, best_desk);
}

TEST(KFusion, PipelineRunsAndConfigsOrder)
{
    setInformEnabled(false);
    uint32_t size = 32, frames = 2;
    rt::Session s1;
    KFusionResult std_r =
        runKFusion(s1, KFusionConfig::standard(size, size, frames));
    ASSERT_TRUE(std_r.ok) << std_r.error;
    rt::Session s2;
    KFusionResult fast_r =
        runKFusion(s2, KFusionConfig::fast3(size, size, frames));
    ASSERT_TRUE(fast_r.ok) << fast_r.error;
    rt::Session s3;
    KFusionResult exp_r =
        runKFusion(s3, KFusionConfig::express(size, size, frames));
    ASSERT_TRUE(exp_r.ok) << exp_r.error;

    // Many kernels per sequence, strictly decreasing work.
    EXPECT_GT(std_r.kernelLaunches, 20u);
    EXPECT_LT(fast_r.kernel.totalInstrs(), std_r.kernel.totalInstrs());
    EXPECT_LT(exp_r.kernel.totalInstrs(), fast_r.kernel.totalInstrs());
    // FPS proxy ordering matches the paper's measured ordering.
    CostModel mali = maliCostModel();
    double c_std = evalCost(std_r.kernel, mali);
    double c_fast = evalCost(fast_r.kernel, mali);
    double c_exp = evalCost(exp_r.kernel, mali);
    EXPECT_GT(c_std, c_fast);
    EXPECT_GT(c_fast, c_exp);
}

TEST(Workloads, RegistryComplete)
{
    std::vector<std::string> names = allWorkloadNames();
    EXPECT_EQ(names.size(), 19u);   // Table II.
    EXPECT_THROW(makeWorkload("nonexistent", 1.0), SimError);
    for (const std::string &n : fig7WorkloadNames())
        EXPECT_NE(std::find(names.begin(), names.end(), n), names.end());
    for (const std::string &n : fig8WorkloadNames())
        EXPECT_NE(std::find(names.begin(), names.end(), n), names.end());
}

TEST(Workloads, NativeReferencesAreDeterministic)
{
    for (const char *name : {"sobelfilter", "reduction", "sgemm"}) {
        auto w1 = makeWorkload(name, kTinyScale);
        auto w2 = makeWorkload(name, kTinyScale);
        EXPECT_EQ(w1->runNative(), w2->runNative()) << name;
    }
}

} // namespace
} // namespace bifsim::workloads
