/** @file Unit and property tests for the BIF shader ISA: encode/decode
 *  round trips, structural validation, and the disassembler. */

#include <gtest/gtest.h>

#include <cstring>
#include <random>

#include "common/logging.h"
#include "gpu/isa/bif.h"

namespace bifsim::bif {
namespace {

Instr
mk(Op op, uint8_t dst, uint8_t s0, uint8_t s1, uint8_t s2, int32_t imm)
{
    Instr i;
    i.op = op;
    i.dst = dst;
    i.src0 = s0;
    i.src1 = s1;
    i.src2 = s2;
    i.imm = imm;
    return i;
}

Module
singleClauseModule(std::vector<Instr> slot0s)
{
    Module m;
    Clause cl;
    for (const Instr &in : slot0s) {
        Tuple t;
        t.slot[0] = in;
        cl.tuples.push_back(t);
    }
    // Final tuple carries a Ret in slot 1.
    Tuple t;
    t.slot[1] = mk(Op::Ret, kOperandNone, kOperandNone, kOperandNone,
                   kOperandNone, 0);
    cl.tuples.push_back(t);
    m.clauses.push_back(cl);
    return m;
}

TEST(BifInstr, EncodeDecodeRoundTrip)
{
    Instr i = mk(Op::FFma, 5, 6, 7, 8, -12345);
    Instr d = Instr::decode(i.encode());
    EXPECT_EQ(d, i);
}

TEST(BifInstr, ImmSignExtension)
{
    Instr i = mk(Op::MovImm, 0, kOperandNone, kOperandNone, kOperandNone,
                 -1);
    EXPECT_EQ(Instr::decode(i.encode()).imm, -1);
    i.imm = (1 << 23) - 1;
    EXPECT_EQ(Instr::decode(i.encode()).imm, (1 << 23) - 1);
}

TEST(BifInstr, RandomRoundTripProperty)
{
    std::mt19937 rng(42);
    for (int n = 0; n < 2000; ++n) {
        Instr i;
        i.op = static_cast<Op>(rng() % static_cast<unsigned>(Op::NumOps_));
        i.dst = static_cast<uint8_t>(rng());
        i.src0 = static_cast<uint8_t>(rng());
        i.src1 = static_cast<uint8_t>(rng());
        i.src2 = static_cast<uint8_t>(rng());
        i.imm = static_cast<int32_t>(rng() << 8) >> 8;
        EXPECT_EQ(Instr::decode(i.encode()), i);
    }
}

TEST(BifOperands, Classification)
{
    EXPECT_TRUE(isGrf(0));
    EXPECT_TRUE(isGrf(63));
    EXPECT_FALSE(isGrf(64));
    EXPECT_TRUE(isTemp(64));
    EXPECT_TRUE(isTemp(71));
    EXPECT_FALSE(isTemp(72));
    EXPECT_TRUE(isSpecial(kSrLaneId));
    EXPECT_TRUE(isSpecial(kSrZero));
    EXPECT_FALSE(isSpecial(kOperandNone));
}

TEST(BifCategory, SlotLegality)
{
    EXPECT_TRUE(legalInSlot0(Op::FAdd));
    EXPECT_TRUE(legalInSlot0(Op::LdGlobal));
    EXPECT_FALSE(legalInSlot0(Op::Branch));
    EXPECT_TRUE(legalInSlot1(Op::FAdd));
    EXPECT_FALSE(legalInSlot1(Op::LdGlobal));
    EXPECT_TRUE(legalInSlot1(Op::Ret));
    EXPECT_EQ(category(Op::Nop), Category::Nop);
    EXPECT_EQ(category(Op::AtomAddG), Category::LoadStore);
}

TEST(BifModule, EncodeDecodeModuleRoundTrip)
{
    Module m = singleClauseModule({
        mk(Op::MovImm, 1, kOperandNone, kOperandNone, kOperandNone, 42),
        mk(Op::IAdd, 2, 1, kSrLocalIdX, kOperandNone, 0),
    });
    m.rom = {0xdeadbeef, 0x3f800000};
    m.regCount = 3;
    m.localBytes = 64;
    std::vector<uint8_t> bytes = encode(m);
    Module out;
    std::string err;
    ASSERT_TRUE(decode(bytes.data(), bytes.size(), out, err)) << err;
    EXPECT_EQ(out.rom, m.rom);
    EXPECT_EQ(out.regCount, 3u);
    EXPECT_EQ(out.localBytes, 64u);
    ASSERT_EQ(out.clauses.size(), 1u);
    EXPECT_EQ(out.clauses[0].tuples.size(), m.clauses[0].tuples.size());
    EXPECT_EQ(out.clauses[0].tuples[0].slot[0].imm, 42);
}

TEST(BifModule, ValidateRejectsOversizedClause)
{
    Module m;
    Clause cl;
    for (int i = 0; i < 9; ++i) {
        Tuple t;
        t.slot[0] = mk(Op::IAdd, 0, 0, 0, kOperandNone, 0);
        cl.tuples.push_back(t);
    }
    m.clauses.push_back(cl);
    EXPECT_NE(validate(m), "");
}

TEST(BifModule, ValidateRejectsLsInSlot1)
{
    Module m;
    Clause cl;
    Tuple t;
    t.slot[1] = mk(Op::LdGlobal, 0, 1, kOperandNone, kOperandNone, 0);
    cl.tuples.push_back(t);
    m.clauses.push_back(cl);
    EXPECT_NE(validate(m), "");
}

TEST(BifModule, ValidateRejectsCfBeforeEnd)
{
    Module m;
    Clause cl;
    Tuple t1;
    t1.slot[1] = mk(Op::Ret, kOperandNone, kOperandNone, kOperandNone,
                    kOperandNone, 0);
    Tuple t2;
    t2.slot[0] = mk(Op::IAdd, 0, 0, 0, kOperandNone, 0);
    cl.tuples.push_back(t1);
    cl.tuples.push_back(t2);
    m.clauses.push_back(cl);
    EXPECT_NE(validate(m), "");
}

TEST(BifModule, ValidateRejectsBranchOutOfRange)
{
    Module m;
    Clause cl;
    Tuple t;
    t.slot[1] = mk(Op::Branch, kOperandNone, kOperandNone, kOperandNone,
                   kOperandNone, 5);
    cl.tuples.push_back(t);
    m.clauses.push_back(cl);
    EXPECT_NE(validate(m), "");
}

TEST(BifModule, ValidateRejectsTempReadBeforeWrite)
{
    Module m;
    Clause cl;
    Tuple t;
    t.slot[0] = mk(Op::IAdd, 0, kOperandTemp0, 0, kOperandNone, 0);
    cl.tuples.push_back(t);
    m.clauses.push_back(cl);
    EXPECT_NE(validate(m), "");
}

TEST(BifModule, TempWriteThenReadIsValid)
{
    Module m;
    Clause cl;
    Tuple t1;
    t1.slot[0] = mk(Op::MovImm, kOperandTemp0, kOperandNone,
                    kOperandNone, kOperandNone, 1);
    Tuple t2;
    t2.slot[0] = mk(Op::IAdd, 0, kOperandTemp0, kOperandTemp0,
                    kOperandNone, 0);
    cl.tuples.push_back(t1);
    cl.tuples.push_back(t2);
    m.clauses.push_back(cl);
    m.regCount = 1;   // r0 is written by the IAdd.
    EXPECT_EQ(validate(m), "");
}

TEST(BifModule, ValidateRejectsGrfReadBeyondRegCount)
{
    // Regression: validate() used to accept modules whose instructions
    // reference GRF indices at or above the declared regCount.
    Module m = singleClauseModule({
        mk(Op::IAdd, 1, 5, kSrZero, kOperandNone, 0),   // Reads r5.
    });
    m.regCount = 2;
    std::string err = validate(m);
    EXPECT_NE(err, "");
    EXPECT_NE(err.find("r5"), std::string::npos) << err;
}

TEST(BifModule, ValidateRejectsGrfWriteBeyondRegCount)
{
    Module m = singleClauseModule({
        mk(Op::MovImm, 9, kOperandNone, kOperandNone, kOperandNone, 1),
    });
    m.regCount = 4;
    std::string err = validate(m);
    EXPECT_NE(err, "");
    EXPECT_NE(err.find("r9"), std::string::npos) << err;
}

TEST(BifModule, ValidateIgnoresDeadOperandFields)
{
    // MovImm reads no sources: garbage in the unused operand fields
    // (as produced by hand-built tests and fuzzing) must not trip the
    // regCount check.
    Module m = singleClauseModule({
        mk(Op::MovImm, 0, 63, 62, 61, 1),
    });
    m.regCount = 1;
    EXPECT_EQ(validate(m), "");
}

TEST(BifModule, DecodeRejectsHasBranchBitMismatch)
{
    // Regression: decode() trusted the clause header's has_branch bit;
    // a flipped bit silently disagreed with the clause body.
    Module m;
    Clause cl;
    Tuple t;
    t.slot[1] = mk(Op::Branch, kOperandNone, kOperandNone, kOperandNone,
                   kOperandNone, 1);
    cl.tuples.push_back(t);
    m.clauses.push_back(cl);
    // Tail clause must be free of *all* control flow (Ret counts), so
    // its header bit starts clear; falling off the end is legal.
    Clause tail;
    Tuple tr;
    tr.slot[0] = mk(Op::IAdd, 0, 0, 0, kOperandNone, 0);
    tail.tuples.push_back(tr);
    m.clauses.push_back(tail);
    m.regCount = 1;
    std::vector<uint8_t> bytes = encode(m);

    Module out;
    std::string err;
    ASSERT_TRUE(decode(bytes.data(), bytes.size(), out, err)) << err;

    // Header words start at clause_offset; clause 0's header is first.
    uint32_t clause_off;
    std::memcpy(&clause_off, bytes.data() + 8, 4);
    std::vector<uint8_t> bad = bytes;
    bad[clause_off] ^= 1u << 3;   // Clear has_branch on the branch clause.
    EXPECT_FALSE(decode(bad.data(), bad.size(), out, err));
    EXPECT_NE(err.find("has_branch"), std::string::npos) << err;

    // Set has_branch on the branch-free clause: also rejected.
    uint32_t c1_off = clause_off + 4 + 16;   // hdr + 1 tuple (2 x u64).
    bad = bytes;
    bad[c1_off] |= 1u << 3;
    EXPECT_FALSE(decode(bad.data(), bad.size(), out, err));
    EXPECT_NE(err.find("has_branch"), std::string::npos) << err;
}

TEST(BifModule, ValidateRejectsBarrierNotAlone)
{
    Module m;
    Clause cl;
    Tuple t;
    t.slot[0] = mk(Op::IAdd, 0, 0, 0, kOperandNone, 0);
    t.slot[1] = mk(Op::Barrier, kOperandNone, kOperandNone,
                   kOperandNone, kOperandNone, 0);
    cl.tuples.push_back(t);
    m.clauses.push_back(cl);
    EXPECT_NE(validate(m), "");
}

TEST(BifModule, DecodeRejectsGarbage)
{
    Module out;
    std::string err;
    std::vector<uint8_t> junk(64, 0xAB);
    EXPECT_FALSE(decode(junk.data(), junk.size(), out, err));
    EXPECT_FALSE(err.empty());
    std::vector<uint8_t> tiny(8, 0);
    EXPECT_FALSE(decode(tiny.data(), tiny.size(), out, err));
}

TEST(BifModule, DecodeRejectsTruncated)
{
    Module m = singleClauseModule(
        {mk(Op::MovImm, 1, kOperandNone, kOperandNone, kOperandNone, 1)});
    m.regCount = 2;
    std::vector<uint8_t> bytes = encode(m);
    Module out;
    std::string err;
    EXPECT_FALSE(decode(bytes.data(), bytes.size() - 8, out, err));
}

TEST(BifDisasm, RendersOperandsAndModes)
{
    Instr i = mk(Op::FCmp, 1, 2, kSrLocalIdX, kOperandNone,
                 static_cast<int32_t>(CmpMode::Lt));
    std::string s = disassemble(i);
    EXPECT_NE(s.find("fcmp"), std::string::npos);
    EXPECT_NE(s.find("r1"), std::string::npos);
    EXPECT_NE(s.find("lid.x"), std::string::npos);
    EXPECT_NE(s.find(".lt"), std::string::npos);

    Instr t = mk(Op::Mov, kOperandTemp0 + 3, 9, kOperandNone,
                 kOperandNone, 0);
    EXPECT_NE(disassemble(t).find("t3"), std::string::npos);
}

TEST(BifDisasm, ModuleDump)
{
    Module m = singleClauseModule(
        {mk(Op::MovImm, 1, kOperandNone, kOperandNone, kOperandNone, 7)});
    std::string s = disassemble(m);
    EXPECT_NE(s.find("clause 0"), std::string::npos);
    EXPECT_NE(s.find("movimm"), std::string::npos);
    EXPECT_NE(s.find("ret"), std::string::npos);
}

} // namespace
} // namespace bifsim::bif
