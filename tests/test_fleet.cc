// Fleet subsystem tests (DESIGN.md §5j): CoW RAM images, the session
// pool, the wire protocol, the scheduler's fairness/backpressure, and
// the determinism contract — a job run on a pooled (spawned or
// recycled) session must be bit-identical to the same job on a solo
// cold-booted session, T threads x S sessions deep.
//
// All tests share one small warm image (32x32 SGEMM, 2 shader cores)
// built once; building it is the expensive part, proving satellite
// work (parse/CRC once, spawn many) is also what keeps this file fast.

#include "fleet/fleet.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "mem/phys_mem.h"
#include "runtime/session.h"

namespace bifsim {
namespace {

constexpr uint32_t kN = 32;   ///< Warm-image matrix size.

const std::vector<uint8_t> &
warmBytes()
{
    static const std::vector<uint8_t> bytes =
        fleet::buildSgemmWarmImage(kN, 32u << 20, 2);
    return bytes;
}

std::shared_ptr<const snapshot::Image>
warmImage()
{
    static const auto image = std::make_shared<const snapshot::Image>(
        snapshot::Image::fromBytes(warmBytes()));
    return image;
}

/** The host-side knob template every test uses, so pooled and solo
 *  sessions run under identical configuration. */
rt::SystemConfig
testBase()
{
    rt::SystemConfig cfg;
    cfg.gpu.hostThreads = 2;
    cfg.gpu.syncSubmit = true;
    return cfg;
}

/** Same deterministic fill simctl uses, so inputs are regenerable. */
void
fillMatrix(std::vector<float> &m, uint32_t seed)
{
    uint32_t x = seed * 2654435761u + 1;
    for (float &v : m) {
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        v = static_cast<float>(x % 1024) / 256.0f;
    }
}

struct RefResult
{
    uint32_t ramCrc = 0;
    uint64_t kernelInstrs = 0;
    uint64_t threadsLaunched = 0;
    std::vector<uint8_t> c;
};

/** Runs the canonical test job — write A/B, launch kernel 0, read C,
 *  CRC all of guest RAM — mirroring exactly what FleetServer::runJob
 *  does for the equivalent JobRequest. */
RefResult
runJobOn(rt::Session &s, uint32_t seed)
{
    std::vector<float> a(kN * kN), b(kN * kN);
    fillMatrix(a, seed);
    fillMatrix(b, seed + 1);

    const std::vector<rt::Buffer> &bufs = s.buffers();
    EXPECT_GE(bufs.size(), 3u);
    s.write(bufs[0], a.data(), a.size() * 4);
    s.write(bufs[1], b.data(), b.size() * 4);
    gpu::JobResult r = s.enqueue(
        s.kernels().front(), rt::NDRange{kN, kN, 1}, rt::NDRange{8, 8, 1},
        {rt::Arg::buf(bufs[0]), rt::Arg::buf(bufs[1]),
         rt::Arg::buf(bufs[2]), rt::Arg::i32(static_cast<int32_t>(kN))});
    EXPECT_FALSE(r.faulted) << r.fault.detail;

    RefResult res;
    res.kernelInstrs = r.kernel.totalInstrs();
    res.threadsLaunched = r.kernel.threadsLaunched;
    res.c.resize(static_cast<size_t>(kN) * kN * 4);
    s.read(bufs[2], res.c.data(), res.c.size());
    PhysMem &mem = s.system().mem();
    res.ramCrc =
        snapshot::crc32(mem.hostPtr(rt::System::kRamBase), mem.size());
    return res;
}

/** The solo cold-boot reference every fleet result must match. */
const RefResult &
soloReference()
{
    static const RefResult ref = [] {
        auto s = rt::Session::fromSnapshot(*warmImage(), testBase());
        return runJobOn(*s, 7);
    }();
    return ref;
}

/** The same canonical job expressed as a wire request. */
fleet::JobRequest
canonicalRequest(const std::string &tenant, uint32_t seed)
{
    std::vector<float> a(kN * kN), b(kN * kN);
    fillMatrix(a, seed);
    fillMatrix(b, seed + 1);

    fleet::JobRequest req;
    req.tenant = tenant;
    req.kernel = 0;
    req.gx = req.gy = kN;
    req.gz = 1;
    req.lx = req.ly = 8;
    req.lz = 1;
    req.args = {{fleet::ArgSpec::Kind::BufIndex, 0},
                {fleet::ArgSpec::Kind::BufIndex, 1},
                {fleet::ArgSpec::Kind::BufIndex, 2},
                {fleet::ArgSpec::Kind::I32, kN}};
    fleet::WriteSpec wa{0, 0, {}};
    wa.bytes.resize(a.size() * 4);
    std::memcpy(wa.bytes.data(), a.data(), wa.bytes.size());
    fleet::WriteSpec wb{1, 0, {}};
    wb.bytes.resize(b.size() * 4);
    std::memcpy(wb.bytes.data(), b.data(), wb.bytes.size());
    req.writes.push_back(std::move(wa));
    req.writes.push_back(std::move(wb));
    req.reads.push_back(
        fleet::ReadSpec{2, 0, static_cast<uint64_t>(kN) * kN * 4});
    req.wantRamCrc = true;
    return req;
}

// ---------------------------------------------------- warm image

TEST(WarmImage, InspectReportsRegistries)
{
    fleet::WarmImageInfo info = fleet::inspectWarmImage(*warmImage());
    EXPECT_EQ(info.matrixN, kN);
    EXPECT_EQ(info.kernels.size(), 6u);
    EXPECT_EQ(info.kernels.front(), "sgemm1");
    ASSERT_GE(info.bufferBytes.size(), 3u);
    EXPECT_EQ(info.bufferBytes[0], static_cast<uint64_t>(kN) * kN * 4);
}

TEST(WarmImage, RejectsBadMatrixSize)
{
    EXPECT_THROW(fleet::buildSgemmWarmImage(0), snapshot::SnapshotError);
    EXPECT_THROW(fleet::buildSgemmWarmImage(33), snapshot::SnapshotError);
}

TEST(WarmImage, FromSnapshotMissingFileThrowsCleanly)
{
    // Satellite: a missing image must throw a located SnapshotError
    // (which full_system_boot --restore turns into exit 1), not abort.
    EXPECT_THROW(
        rt::Session::fromSnapshot(std::string("/nonexistent/x.bsnp")),
        snapshot::SnapshotError);
}

// ---------------------------------------------------- CoW RAM image

TEST(RamImage, CowViewsShareContentButNotWrites)
{
    auto ram = RamImage::sealFromSnapshot(*warmImage());
    if (!ram)
        GTEST_SKIP() << "no sealed shared memory on this host";
    EXPECT_EQ(ram->memCrc(),
              warmImage()->chunkCrc(snapshot::kTagMem));

    PhysMem m1(ram->base(), ram->size(), ram);
    PhysMem m2(ram->base(), ram->size(), ram);
    EXPECT_TRUE(m1.hasImage());

    uint32_t crc1 =
        snapshot::crc32(m1.hostPtr(ram->base()), m1.size());
    uint32_t crc2 =
        snapshot::crc32(m2.hostPtr(ram->base()), m2.size());
    EXPECT_EQ(crc1, crc2);
    EXPECT_NE(crc1, snapshot::crc32("", 0));   // image is not empty

    // A write in one view must not leak into the other (MAP_PRIVATE).
    Addr probe = ram->base() + 64;
    uint8_t before = m2.read<uint8_t>(probe);
    m1.write<uint8_t>(probe, static_cast<uint8_t>(before + 1));
    EXPECT_EQ(m2.read<uint8_t>(probe), before);

    // clear() detaches to zeroes; resetToImage() reattaches content.
    m1.clear();
    EXPECT_EQ(m1.read<uint8_t>(probe), 0);
    EXPECT_TRUE(m1.resetToImage());
    EXPECT_EQ(m1.read<uint8_t>(probe), before);
    EXPECT_EQ(snapshot::crc32(m1.hostPtr(ram->base()), m1.size()), crc1);
}

// ---------------------------------------------------- session pool

TEST(SessionPool, SpawnIsBitIdenticalToSoloColdBoot)
{
    fleet::PoolConfig cfg;
    cfg.maxSessions = 2;
    cfg.base = testBase();
    fleet::SessionPool pool(warmImage(), cfg);
    // Satellite: the parsed image is cached and shared, not re-read.
    EXPECT_EQ(&pool.image(), warmImage().get());

    fleet::SessionPool::Lease lease = pool.acquire();
    RefResult got = runJobOn(lease.session(), 7);
    EXPECT_EQ(got.ramCrc, soloReference().ramCrc);
    EXPECT_EQ(got.kernelInstrs, soloReference().kernelInstrs);
    EXPECT_EQ(got.threadsLaunched, soloReference().threadsLaunched);
    EXPECT_EQ(got.c, soloReference().c);
}

TEST(SessionPool, RecycleReusesSessionWithIdenticalResults)
{
    fleet::PoolConfig cfg;
    cfg.maxSessions = 1;
    cfg.base = testBase();
    fleet::SessionPool pool(warmImage(), cfg);

    uint32_t first_id;
    {
        fleet::SessionPool::Lease lease = pool.acquire();
        first_id = lease.id();
        RefResult got = runJobOn(lease.session(), 7);
        EXPECT_EQ(got.ramCrc, soloReference().ramCrc);
    }
    {
        // Same pooled session, recycled back to image state: the
        // dirtied RAM and registries are gone, the System survives.
        fleet::SessionPool::Lease lease = pool.acquire();
        EXPECT_EQ(lease.id(), first_id);
        RefResult again = runJobOn(lease.session(), 7);
        EXPECT_EQ(again.ramCrc, soloReference().ramCrc);
        EXPECT_EQ(again.kernelInstrs, soloReference().kernelInstrs);
        EXPECT_EQ(again.c, soloReference().c);
    }
    fleet::PoolStats st = pool.stats();
    EXPECT_EQ(st.spawns, 1u);
    EXPECT_EQ(st.recycles, 2u);
    EXPECT_EQ(st.recycleFailures, 0u);
    EXPECT_EQ(st.idle, 1u);
}

TEST(SessionPool, ConcurrentSpawnRecycleStaysDeterministic)
{
    // Satellite: T threads x S sessions over one shared image, every
    // job bit-identical to the solo cold-boot reference.  Runs under
    // TSan in CI, so it is also the data-race probe for the pool.
    constexpr unsigned kThreads = 4;
    constexpr unsigned kJobsPerThread = 2;

    fleet::PoolConfig cfg;
    cfg.maxSessions = kThreads;
    cfg.base = testBase();
    fleet::SessionPool pool(warmImage(), cfg);

    std::atomic<unsigned> mismatches{0};
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&pool, &mismatches] {
            for (unsigned j = 0; j < kJobsPerThread; ++j) {
                fleet::SessionPool::Lease lease = pool.acquire();
                RefResult got = runJobOn(lease.session(), 7);
                if (got.ramCrc != soloReference().ramCrc ||
                    got.kernelInstrs != soloReference().kernelInstrs ||
                    got.c != soloReference().c)
                    mismatches.fetch_add(1);
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(mismatches.load(), 0u);

    fleet::PoolStats st = pool.stats();
    EXPECT_LE(st.spawns, static_cast<uint64_t>(kThreads));
    EXPECT_GE(st.spawns, 1u);
    // Every lease release recycles its session back to image state.
    EXPECT_EQ(st.recycles,
              static_cast<uint64_t>(kThreads) * kJobsPerThread);
    EXPECT_EQ(st.recycleFailures, 0u);
    EXPECT_EQ(st.idle, st.live);   // all leases returned
}

TEST(SessionPool, RecycleRefusedWhileRecording)
{
    fleet::PoolConfig cfg;
    cfg.maxSessions = 1;
    cfg.base = testBase();
    fleet::SessionPool pool(warmImage(), cfg);
    fleet::SessionPool::Lease lease = pool.acquire();
    lease->startRecording();
    EXPECT_THROW(lease->resetFromSnapshot(pool.image()), SimError);
    lease->stopRecording();
    // Now recyclable again.
    lease->resetFromSnapshot(pool.image());
    EXPECT_EQ(runJobOn(lease.session(), 7).ramCrc,
              soloReference().ramCrc);
}

// ---------------------------------------------------- wire protocol

TEST(FleetProto, JobRequestRoundTrips)
{
    fleet::JobRequest req = canonicalRequest("tenant-a", 3);
    snapshot::ChunkWriter w;
    req.serialize(w);
    std::vector<uint8_t> bytes = w.data();

    snapshot::ChunkReader r(fleet::kMsgJob, bytes.data(), bytes.size());
    fleet::JobRequest back = fleet::JobRequest::parse(r);
    EXPECT_EQ(back.tenant, req.tenant);
    EXPECT_EQ(back.kernel, req.kernel);
    EXPECT_EQ(back.gx, req.gx);
    EXPECT_EQ(back.ly, req.ly);
    ASSERT_EQ(back.args.size(), req.args.size());
    EXPECT_EQ(back.args[3].kind, fleet::ArgSpec::Kind::I32);
    EXPECT_EQ(back.args[3].value, req.args[3].value);
    ASSERT_EQ(back.writes.size(), 2u);
    EXPECT_EQ(back.writes[0].bytes, req.writes[0].bytes);
    ASSERT_EQ(back.reads.size(), 1u);
    EXPECT_EQ(back.reads[0].length, req.reads[0].length);
    EXPECT_TRUE(back.wantRamCrc);
}

TEST(FleetProto, EveryTruncationIsRejected)
{
    // Parse-then-commit: any strict prefix of a valid payload must
    // throw, never yield a half-parsed job.
    fleet::JobRequest req;
    req.tenant = "t";
    req.args = {{fleet::ArgSpec::Kind::BufIndex, 0}};
    req.writes.push_back(fleet::WriteSpec{0, 0, {1, 2, 3, 4}});
    req.reads.push_back(fleet::ReadSpec{1, 8, 16});
    snapshot::ChunkWriter w;
    req.serialize(w);
    std::vector<uint8_t> bytes = w.data();

    for (size_t len = 0; len < bytes.size(); ++len) {
        snapshot::ChunkReader r(fleet::kMsgJob, bytes.data(), len);
        EXPECT_THROW(fleet::JobRequest::parse(r),
                     snapshot::SnapshotError)
            << "prefix of " << len << " bytes parsed";
    }
}

TEST(FleetProto, ResultWelcomeStatsRoundTrip)
{
    fleet::JobResultMsg m;
    m.status = fleet::JobStatus::Fault;
    m.detail = "page fault at 0xdead";
    m.queueNs = 12345;
    m.execNs = 67890;
    m.sessionId = 3;
    m.ramCrc = 0xabadcafe;
    m.kernelInstrs = 1ull << 40;
    m.threadsLaunched = 1024;
    m.readback = {9, 8, 7};
    snapshot::ChunkWriter w1;
    m.serialize(w1);
    std::vector<uint8_t> b1 = w1.data();
    snapshot::ChunkReader r1(fleet::kMsgResult, b1.data(), b1.size());
    fleet::JobResultMsg m2 = fleet::JobResultMsg::parse(r1);
    EXPECT_EQ(m2.status, m.status);
    EXPECT_EQ(m2.detail, m.detail);
    EXPECT_EQ(m2.kernelInstrs, m.kernelInstrs);
    EXPECT_EQ(m2.readback, m.readback);

    fleet::Welcome wl;
    wl.kernels = {"sgemm1", "sgemm2"};
    wl.bufferBytes = {4096, 4096, 8192};
    snapshot::ChunkWriter w2;
    wl.serialize(w2);
    std::vector<uint8_t> b2 = w2.data();
    snapshot::ChunkReader r2(fleet::kMsgWelcome, b2.data(), b2.size());
    fleet::Welcome wl2 = fleet::Welcome::parse(r2);
    EXPECT_EQ(wl2.version, fleet::kProtoVersion);
    EXPECT_EQ(wl2.kernels, wl.kernels);
    EXPECT_EQ(wl2.bufferBytes, wl.bufferBytes);

    fleet::StatsReply sr;
    sr.counters = {{"fleet.jobs_completed", 17}, {"fleet.spawns", 2}};
    snapshot::ChunkWriter w3;
    sr.serialize(w3);
    std::vector<uint8_t> b3 = w3.data();
    snapshot::ChunkReader r3(fleet::kMsgStatsReply, b3.data(),
                             b3.size());
    fleet::StatsReply sr2 = fleet::StatsReply::parse(r3);
    EXPECT_EQ(sr2.counters, sr.counters);
}

TEST(FleetProto, FramesSurviveTheSocketAndRejectCorruption)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

    // Round trip.
    std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
    fleet::writeFrame(fds[0], fleet::kMsgJob, payload);
    fleet::Frame f;
    ASSERT_TRUE(fleet::readFrame(fds[1], f));
    EXPECT_EQ(f.kind, fleet::kMsgJob);
    EXPECT_EQ(f.payload, payload);

    // A flipped payload byte must fail the frame CRC.
    std::vector<uint8_t> wire = fleet::encodeFrame(fleet::kMsgJob,
                                                   payload);
    ASSERT_GT(wire.size(), 12u);
    wire[12] ^= 0xff;
    ASSERT_EQ(::send(fds[0], wire.data(), wire.size(), 0),
              static_cast<ssize_t>(wire.size()));
    EXPECT_THROW(fleet::readFrame(fds[1], f),
                 snapshot::SnapshotError);
    ::close(fds[0]);
    ::close(fds[1]);

    // Truncation mid-frame throws; EOF at a frame boundary is clean.
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    ASSERT_EQ(::send(fds[0], wire.data(), 7, 0), 7);
    ::close(fds[0]);
    EXPECT_THROW(fleet::readFrame(fds[1], f),
                 snapshot::SnapshotError);
    ::close(fds[1]);

    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    ::close(fds[0]);
    EXPECT_FALSE(fleet::readFrame(fds[1], f));
    ::close(fds[1]);

    // An oversized length header is rejected before any allocation.
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    uint32_t hdr[3] = {fleet::kMsgJob, fleet::kMaxFrameBytes + 1, 0};
    ASSERT_EQ(::send(fds[0], hdr, sizeof(hdr), 0),
              static_cast<ssize_t>(sizeof(hdr)));
    EXPECT_THROW(fleet::readFrame(fds[1], f),
                 snapshot::SnapshotError);
    ::close(fds[0]);
    ::close(fds[1]);
}

// ---------------------------------------------------- fleet server

fleet::FleetConfig
smallServer(unsigned workers, size_t sessions)
{
    fleet::FleetConfig cfg;
    cfg.pool.maxSessions = sessions;
    cfg.pool.base = testBase();
    cfg.workers = workers;
    return cfg;
}

TEST(FleetServer, SubmitSyncMatchesSoloColdBoot)
{
    fleet::FleetServer server(warmImage(), smallServer(1, 1));
    fleet::JobResultMsg m = server.submitSync(canonicalRequest("a", 7));
    ASSERT_EQ(m.status, fleet::JobStatus::Ok) << m.detail;
    EXPECT_EQ(m.ramCrc, soloReference().ramCrc);
    EXPECT_EQ(m.kernelInstrs, soloReference().kernelInstrs);
    EXPECT_EQ(m.threadsLaunched, soloReference().threadsLaunched);
    EXPECT_EQ(m.readback, soloReference().c);
    EXPECT_GT(m.execNs, 0u);
}

TEST(FleetServer, ConcurrentTenantsAllBitIdentical)
{
    // The headline determinism claim: T client threads hammering a
    // shared fleet all see results bit-identical to a solo run.
    constexpr unsigned kThreads = 4;
    constexpr unsigned kJobsPerThread = 2;
    fleet::FleetServer server(warmImage(),
                              smallServer(kThreads, kThreads));

    std::atomic<unsigned> bad{0};
    std::vector<std::thread> clients;
    for (unsigned t = 0; t < kThreads; ++t) {
        clients.emplace_back([&server, &bad, t] {
            std::string tenant = "tenant-" + std::to_string(t);
            for (unsigned j = 0; j < kJobsPerThread; ++j) {
                fleet::JobResultMsg m =
                    server.submitSync(canonicalRequest(tenant, 7));
                if (m.status != fleet::JobStatus::Ok ||
                    m.ramCrc != soloReference().ramCrc ||
                    m.readback != soloReference().c)
                    bad.fetch_add(1);
            }
        });
    }
    for (std::thread &t : clients)
        t.join();
    EXPECT_EQ(bad.load(), 0u);

    fleet::FleetStats st = server.stats();
    EXPECT_EQ(st.jobsCompleted,
              static_cast<uint64_t>(kThreads) * kJobsPerThread);
    EXPECT_EQ(st.jobsFaulted, 0u);
    EXPECT_EQ(st.tenantsSeen, static_cast<uint64_t>(kThreads));
}

TEST(FleetServer, BadRequestsAreRejectedNotExecuted)
{
    fleet::FleetServer server(warmImage(), smallServer(1, 1));
    fleet::JobRequest good = canonicalRequest("a", 7);

    fleet::JobRequest req = good;
    req.kernel = 99;
    EXPECT_EQ(server.submitSync(req).status,
              fleet::JobStatus::BadRequest);

    req = good;
    req.lx = 0;
    EXPECT_EQ(server.submitSync(req).status,
              fleet::JobStatus::BadRequest);

    req = good;
    req.gx = 1u << 13;
    req.gy = 1u << 13;   // 2^26 threads > kMaxJobThreads
    EXPECT_EQ(server.submitSync(req).status,
              fleet::JobStatus::BadRequest);

    req = good;
    req.args[0].value = 99;   // buffer index out of range
    EXPECT_EQ(server.submitSync(req).status,
              fleet::JobStatus::BadRequest);

    req = good;
    req.writes[0].offset = 1ull << 40;   // write outside the buffer
    EXPECT_EQ(server.submitSync(req).status,
              fleet::JobStatus::BadRequest);

    req = good;
    req.reads[0].length = 1ull << 40;    // read outside the buffer
    EXPECT_EQ(server.submitSync(req).status,
              fleet::JobStatus::BadRequest);

    // A good job still runs after all the rejected ones.
    EXPECT_EQ(server.submitSync(good).status, fleet::JobStatus::Ok);
    fleet::FleetStats st = server.stats();
    EXPECT_EQ(st.jobsBadRequest, 6u);
    EXPECT_EQ(st.jobsCompleted, 1u);
}

TEST(FleetServer, RoundRobinKeepsTenantsFair)
{
    // One worker, one session: tenant A floods the queue, then B
    // submits one job.  Round-robin must run B's job before A's
    // backlog drains, not behind it.
    fleet::FleetServer server(warmImage(), smallServer(1, 1));

    std::mutex lock;
    std::condition_variable cv;
    std::vector<std::string> order;
    unsigned done = 0;
    auto record = [&](const std::string &who) {
        return [&, who](fleet::JobResultMsg m) {
            std::lock_guard<std::mutex> g(lock);
            EXPECT_EQ(m.status, fleet::JobStatus::Ok) << m.detail;
            order.push_back(who);
            ++done;
            cv.notify_all();
        };
    };

    constexpr unsigned kFlood = 6;
    for (unsigned i = 0; i < kFlood; ++i)
        server.submitAsync(canonicalRequest("a", 7), record("a"));
    server.submitAsync(canonicalRequest("b", 7), record("b"));

    std::unique_lock<std::mutex> g(lock);
    cv.wait(g, [&] { return done == kFlood + 1; });
    auto b_pos = std::find(order.begin(), order.end(), "b");
    ASSERT_NE(b_pos, order.end());
    // B must complete before the last flooded A job.
    EXPECT_NE(order.back(), "b");
    EXPECT_LT(static_cast<size_t>(b_pos - order.begin()),
              order.size() - 1);
}

TEST(FleetServer, BackpressureRejectsInsteadOfQueueingUnboundedly)
{
    fleet::FleetConfig cfg = smallServer(1, 1);
    cfg.maxQueuedPerTenant = 2;
    cfg.maxQueuedTotal = 2;
    fleet::FleetServer server(warmImage(), cfg);

    std::mutex lock;
    std::condition_variable cv;
    unsigned done = 0, ok = 0, rejected = 0;
    constexpr unsigned kSubmits = 8;
    for (unsigned i = 0; i < kSubmits; ++i) {
        server.submitAsync(
            canonicalRequest("a", 7), [&](fleet::JobResultMsg m) {
                std::lock_guard<std::mutex> g(lock);
                if (m.status == fleet::JobStatus::Ok)
                    ++ok;
                else if (m.status == fleet::JobStatus::Rejected)
                    ++rejected;
                ++done;
                cv.notify_all();
            });
    }
    std::unique_lock<std::mutex> g(lock);
    cv.wait(g, [&] { return done == kSubmits; });
    EXPECT_EQ(ok + rejected, kSubmits);
    EXPECT_GE(rejected, 1u);   // caps bit during the burst
    EXPECT_GE(ok, 2u);         // but the queue still drained real work
    EXPECT_EQ(server.stats().jobsRejected, rejected);
}

TEST(FleetServer, WelcomeMirrorsTheImageInventory)
{
    fleet::FleetServer server(warmImage(), smallServer(1, 1));
    fleet::Welcome wl = server.welcome();
    EXPECT_EQ(wl.version, fleet::kProtoVersion);
    EXPECT_EQ(wl.kernels, server.imageInfo().kernels);
    EXPECT_EQ(wl.bufferBytes, server.imageInfo().bufferBytes);
}

TEST(FleetServer, SocketEndToEnd)
{
    std::string path =
        "/tmp/bifsim_test_fleet_" + std::to_string(::getpid()) + ".sock";
    fleet::FleetServer server(warmImage(), smallServer(2, 2));
    std::thread daemon([&] { EXPECT_EQ(server.serve(path), 0); });

    // The daemon binds asynchronously; retry the connect briefly.
    int fd = -1;
    for (int attempt = 0; attempt < 200; ++attempt) {
        fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        ASSERT_GE(fd, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) == 0)
            break;
        ::close(fd);
        fd = -1;
        ::usleep(10000);
    }
    ASSERT_GE(fd, 0) << "could not connect to " << path;

    fleet::Frame f;
    ASSERT_TRUE(fleet::readFrame(fd, f));
    ASSERT_EQ(f.kind, fleet::kMsgWelcome);
    snapshot::ChunkReader wr = f.reader();
    fleet::Welcome wl = fleet::Welcome::parse(wr);
    EXPECT_EQ(wl.kernels.size(), 6u);

    // One real job over the wire.
    fleet::JobRequest req = canonicalRequest("wire", 7);
    snapshot::ChunkWriter w;
    req.serialize(w);
    fleet::writeFrame(fd, fleet::kMsgJob, w.data());
    ASSERT_TRUE(fleet::readFrame(fd, f));
    ASSERT_EQ(f.kind, fleet::kMsgResult);
    snapshot::ChunkReader rr = f.reader();
    fleet::JobResultMsg m = fleet::JobResultMsg::parse(rr);
    ASSERT_EQ(m.status, fleet::JobStatus::Ok) << m.detail;
    EXPECT_EQ(m.ramCrc, soloReference().ramCrc);
    EXPECT_EQ(m.readback, soloReference().c);

    // Stats over the wire include the fleet.* counters.
    fleet::writeFrame(fd, fleet::kMsgStatsQuery, {});
    ASSERT_TRUE(fleet::readFrame(fd, f));
    ASSERT_EQ(f.kind, fleet::kMsgStatsReply);
    snapshot::ChunkReader sr = f.reader();
    fleet::StatsReply stats = fleet::StatsReply::parse(sr);
    bool saw_completed = false;
    for (const auto &[name, value] : stats.counters)
        if (name == "fleet.jobs_completed" && value >= 1)
            saw_completed = true;
    EXPECT_TRUE(saw_completed);

    // A malformed job gets BadRequest back, not a dropped connection.
    fleet::writeFrame(fd, fleet::kMsgJob, {0x01, 0x02});
    ASSERT_TRUE(fleet::readFrame(fd, f));
    ASSERT_EQ(f.kind, fleet::kMsgResult);
    snapshot::ChunkReader br = f.reader();
    EXPECT_EQ(fleet::JobResultMsg::parse(br).status,
              fleet::JobStatus::BadRequest);

    // Drain-and-shutdown.
    fleet::writeFrame(fd, fleet::kMsgShutdown, {});
    ::close(fd);
    daemon.join();
    EXPECT_TRUE(server.shuttingDown());
    ::unlink(path.c_str());
}

} // namespace
} // namespace bifsim
