/** @file Unit tests for the SA32 CPU core: decoder, instruction
 *  semantics, traps, interrupts and the block decode cache. */

#include <gtest/gtest.h>

#include "cpu/asm/assembler.h"
#include "cpu/core.h"
#include "cpu/dbt.h"
#include "cpu/sa32.h"
#include "mem/bus.h"
#include "mem/phys_mem.h"

namespace bifsim::sa32 {
namespace {

constexpr Addr kBase = 0x80000000;

/** A minimal CPU fixture: RAM + bus + one core. */
class CpuTest : public ::testing::Test
{
  protected:
    CpuTest() : mem(kBase, 1 << 20)
    {
        bus.attachMemory(&mem);
        core = std::make_unique<Core>(bus);
    }

    /** Assembles (with .org at kBase prepended), loads, runs to HALT. */
    StopReason
    runAsm(const std::string &body, uint64_t max_insts = 100000)
    {
        Program p = assemble("        .org 0x80000000\n" + body);
        p.loadInto(mem);
        core->reset();
        return core->run(max_insts);
    }

    uint32_t reg(unsigned r) const { return core->reg(r); }

    PhysMem mem;
    Bus bus;
    std::unique_ptr<Core> core;
};

// ------------------------------------------------------------- decoder

TEST(Sa32Decoder, RTypeRoundTrip)
{
    uint32_t word = encR(kFnAdd, 3, 4, 5);
    DecodedInst d = decode(word);
    EXPECT_EQ(d.op, Op::Add);
    EXPECT_EQ(d.rd, 3);
    EXPECT_EQ(d.rs1, 4);
    EXPECT_EQ(d.rs2, 5);
}

TEST(Sa32Decoder, ImmediateSignExtension)
{
    DecodedInst d = decode(encI(kOpAddI, 1, 2, 0xFFFF));
    EXPECT_EQ(d.op, Op::AddI);
    EXPECT_EQ(d.imm, -1);
    d = decode(encI(kOpAndI, 1, 2, 0xFFFF));
    EXPECT_EQ(d.imm, 0xFFFF);   // Logical immediates zero-extend.
}

TEST(Sa32Decoder, JalOffset)
{
    DecodedInst d = decode(encJ(1, 0x1FFFFF));   // -1 in 21 bits
    EXPECT_EQ(d.op, Op::Jal);
    EXPECT_EQ(d.imm, -1);
}

TEST(Sa32Decoder, IllegalOpcode)
{
    DecodedInst d = decode(0xFC000000);
    EXPECT_EQ(d.op, Op::Illegal);
}

TEST(Sa32Decoder, SystemOps)
{
    EXPECT_EQ(decode(encSys(kSysECall)).op, Op::ECall);
    EXPECT_EQ(decode(encSys(kSysMRet)).op, Op::MRet);
    EXPECT_EQ(decode(encSys(kSysWfi)).op, Op::Wfi);
    EXPECT_EQ(decode(encSys(kSysHalt)).op, Op::Halt);
    EXPECT_EQ(decode(encSys(999)).op, Op::Illegal);
}

TEST(Sa32Decoder, Disassemble)
{
    DecodedInst d = decode(encR(kFnXor, 1, 2, 3));
    EXPECT_EQ(disassemble(d, 0), "xor x1, x2, x3");
    d = decode(encI(kOpLw, 5, 6, 8));
    EXPECT_EQ(disassemble(d, 0), "lw x5, 8(x6)");
}

// ----------------------------------------------------------- semantics

TEST_F(CpuTest, ArithmeticBasics)
{
    runAsm(R"(
        li   t0, 20
        li   t1, 22
        add  a0, t0, t1
        sub  a1, t0, t1
        mul  a2, t0, t1
        halt
    )");
    EXPECT_EQ(reg(10), 42u);
    EXPECT_EQ(reg(11), static_cast<uint32_t>(-2));
    EXPECT_EQ(reg(12), 440u);
}

TEST_F(CpuTest, LogicAndShifts)
{
    runAsm(R"(
        li   t0, 0xF0F0
        li   t1, 0x0FF0
        and  a0, t0, t1
        or   a1, t0, t1
        xor  a2, t0, t1
        li   t2, 4
        sll  a3, t1, t2
        srl  a4, t0, t2
        li   t3, 0x80000000
        li   t4, 4
        sra  a5, t3, t4
    )"
           "        halt\n");
    EXPECT_EQ(reg(10), 0x00F0u);
    EXPECT_EQ(reg(11), 0xFFF0u);
    EXPECT_EQ(reg(12), 0xFF00u);
    EXPECT_EQ(reg(13), 0xFF00u);
    EXPECT_EQ(reg(14), 0x0F0Fu);
    EXPECT_EQ(reg(15), 0xF8000000u);
}

TEST_F(CpuTest, SetLessThan)
{
    runAsm(R"(
        li   t0, -1
        li   t1, 1
        slt  a0, t0, t1
        sltu a1, t0, t1
        slti a2, t1, 5
        sltui a3, t1, 5
        halt
    )");
    EXPECT_EQ(reg(10), 1u);
    EXPECT_EQ(reg(11), 0u);   // 0xFFFFFFFF unsigned-greater than 1.
    EXPECT_EQ(reg(12), 1u);
    EXPECT_EQ(reg(13), 1u);
}

TEST_F(CpuTest, MulHighDivRem)
{
    runAsm(R"(
        li   t0, 0x40000000
        li   t1, 8
        mulh a0, t0, t1
        mulhu a1, t0, t1
        li   t2, -7
        li   t3, 2
        div  a2, t2, t3
        rem  a3, t2, t3
        divu a4, t2, t3
        halt
    )");
    EXPECT_EQ(reg(10), 2u);
    EXPECT_EQ(reg(11), 2u);
    EXPECT_EQ(reg(12), static_cast<uint32_t>(-3));
    EXPECT_EQ(reg(13), static_cast<uint32_t>(-1));
    EXPECT_EQ(reg(14), (0xFFFFFFF9u) / 2);
}

TEST_F(CpuTest, DivideByZeroSemantics)
{
    runAsm(R"(
        li   t0, 9
        li   t1, 0
        div  a0, t0, t1
        divu a1, t0, t1
        rem  a2, t0, t1
        remu a3, t0, t1
        halt
    )");
    EXPECT_EQ(reg(10), 0xFFFFFFFFu);
    EXPECT_EQ(reg(11), 0xFFFFFFFFu);
    EXPECT_EQ(reg(12), 9u);
    EXPECT_EQ(reg(13), 9u);
}

TEST_F(CpuTest, X0IsHardwiredZero)
{
    runAsm(R"(
        li   t0, 5
        add  zero, t0, t0
        mv   a0, zero
        halt
    )");
    EXPECT_EQ(reg(10), 0u);
}

TEST_F(CpuTest, LoadStoreBytesHalvesWords)
{
    runAsm(R"(
        li   t0, 0x80001000
        li   t1, 0xDEADBEEF
        sw   t1, 0(t0)
        lb   a0, 0(t0)
        lbu  a1, 0(t0)
        lh   a2, 2(t0)
        lhu  a3, 2(t0)
        lw   a4, 0(t0)
        sb   zero, 3(t0)
        lw   a5, 0(t0)
        halt
    )");
    EXPECT_EQ(reg(10), 0xFFFFFFEFu);
    EXPECT_EQ(reg(11), 0xEFu);
    EXPECT_EQ(reg(12), 0xFFFFDEADu);
    EXPECT_EQ(reg(13), 0xDEADu);
    EXPECT_EQ(reg(14), 0xDEADBEEFu);
    EXPECT_EQ(reg(15), 0x00ADBEEFu);
}

TEST_F(CpuTest, BranchesAndLoops)
{
    runAsm(R"(
        li   t0, 0        # i
        li   t1, 10       # n
        li   a0, 0        # sum
loop:
        add  a0, a0, t0
        addi t0, t0, 1
        blt  t0, t1, loop
        halt
    )");
    EXPECT_EQ(reg(10), 45u);
}

TEST_F(CpuTest, JalAndJalr)
{
    runAsm(R"(
        jal  ra, func
        li   a1, 7
        halt
func:
        li   a0, 3
        ret
    )");
    EXPECT_EQ(reg(10), 3u);
    EXPECT_EQ(reg(11), 7u);
}

TEST_F(CpuTest, AuipcIsPcRelative)
{
    runAsm(R"(
        auipc a0, 0
        halt
    )");
    EXPECT_EQ(reg(10), 0x80000000u);
}

// ------------------------------------------------------ traps and CSRs

TEST_F(CpuTest, EcallTrapsToHandler)
{
    runAsm(R"(
        la   t0, handler
        csrw mtvec, t0
        li   a0, 1
        ecall
        li   a1, 99      # executed after mret
        halt
handler:
        csrr a2, mcause
        csrr t1, mepc
        addi t1, t1, 4
        csrw mepc, t1
        mret
    )");
    EXPECT_EQ(reg(12), 11u);   // ECall from machine mode.
    EXPECT_EQ(reg(11), 99u);
}

TEST_F(CpuTest, IllegalInstructionTrap)
{
    Program p = assemble(R"(
        .org 0x80000000
        la   t0, handler
        csrw mtvec, t0
        .word 0xFC000000
        halt
handler:
        csrr a2, mcause
        csrr a3, mtval
        halt
    )");
    p.loadInto(mem);
    core->reset();
    core->run(1000);
    EXPECT_EQ(reg(12), kCauseIllegalInst);
    EXPECT_EQ(reg(13), 0xFC000000u);
}

TEST_F(CpuTest, MisalignedLoadTrap)
{
    runAsm(R"(
        la   t0, handler
        csrw mtvec, t0
        li   t1, 0x80001001
        lw   a0, 0(t1)
        halt
handler:
        csrr a2, mcause
        halt
    )");
    EXPECT_EQ(reg(12), kCauseLoadMisaligned);
}

TEST_F(CpuTest, LoadFaultOnUnmapped)
{
    runAsm(R"(
        la   t0, handler
        csrw mtvec, t0
        li   t1, 0x20000000
        lw   a0, 0(t1)
        halt
handler:
        csrr a2, mcause
        csrr a3, mtval
        halt
    )");
    EXPECT_EQ(reg(12), kCauseLoadFault);
    EXPECT_EQ(reg(13), 0x20000000u);
}

TEST_F(CpuTest, CsrReadWriteSetClear)
{
    runAsm(R"(
        li   t0, 0xF0
        csrw mscratch, t0
        csrr a0, mscratch
        li   t1, 0x0F
        csrs mscratch, t1
        csrr a1, mscratch
        li   t2, 0xF0
        csrc mscratch, t2
        csrr a2, mscratch
        halt
    )");
    EXPECT_EQ(reg(10), 0xF0u);
    EXPECT_EQ(reg(11), 0xFFu);
    EXPECT_EQ(reg(12), 0x0Fu);
}

TEST_F(CpuTest, EBreakStopsWithoutHandler)
{
    StopReason r = runAsm("        ebreak\n        halt\n");
    EXPECT_EQ(r, StopReason::EBreak);
}

TEST_F(CpuTest, HaltStops)
{
    EXPECT_EQ(runAsm("        halt\n"), StopReason::Halt);
}

TEST_F(CpuTest, MaxInstsStops)
{
    StopReason r = runAsm("loop:\n        j loop\n", 100);
    EXPECT_EQ(r, StopReason::MaxInsts);
    EXPECT_EQ(core->stats().instret, 100u);
}

// ----------------------------------------------------------- interrupts

TEST_F(CpuTest, ExternalInterruptDelivery)
{
    Program p = assemble(R"(
        .org 0x80000000
        la   t0, handler
        csrw mtvec, t0
        li   t0, 0x800       # MEIE
        csrw mie, t0
        li   t0, 0x8         # MIE
        csrw mstatus, t0
loop:
        beqz a0, loop
        halt
handler:
        li   a0, 1
        csrr a1, mcause
        mret
    )");
    p.loadInto(mem);
    core->reset();
    core->run(50);                       // Spin a little.
    EXPECT_EQ(reg(10), 0u);
    core->setIrqLine(kIrqExternal, true);
    core->run(100);
    EXPECT_EQ(reg(10), 1u);
    EXPECT_EQ(reg(11), kCauseInterrupt | kIrqExternal);
}

TEST_F(CpuTest, InterruptMaskedWhenMieClear)
{
    Program p = assemble(R"(
        .org 0x80000000
        li   t0, 0x800
        csrw mie, t0
        # mstatus.MIE left clear: machine mode masks interrupts.
loop:
        j loop
    )");
    p.loadInto(mem);
    core->reset();
    core->setIrqLine(kIrqExternal, true);
    core->run(200);
    EXPECT_EQ(core->stats().interrupts, 0u);
}

TEST_F(CpuTest, WfiWaitsAndWakes)
{
    Program p = assemble(R"(
        .org 0x80000000
        la   t0, handler
        csrw mtvec, t0
        li   t0, 0x800
        csrw mie, t0
        li   t0, 0x8
        csrw mstatus, t0
        wfi
        halt
handler:
        li   a0, 1
        csrw mie, zero    # Mask the (still-asserted) level IRQ.
        mret
    )");
    p.loadInto(mem);
    core->reset();
    StopReason r = core->run(1000);
    EXPECT_EQ(r, StopReason::Wfi);
    EXPECT_TRUE(core->waiting());
    core->setIrqLine(kIrqExternal, true);
    r = core->run(1000);
    EXPECT_EQ(r, StopReason::Halt);
    EXPECT_EQ(reg(10), 1u);
}

// ---------------------------------------------------------- block cache

TEST_F(CpuTest, BlockCacheHitsOnLoops)
{
    runAsm(R"(
        li   t0, 100
loop:
        addi t0, t0, -1
        bnez t0, loop
        halt
    )");
    EXPECT_GT(core->stats().blockHits, 90u);
}

TEST_F(CpuTest, BlockCacheDisabled)
{
    sa32::CoreConfig cfg;
    cfg.blockCache = false;
    Core c2(bus, cfg);
    Program p = assemble(R"(
        .org 0x80000000
        li   t0, 50
loop:
        addi t0, t0, -1
        bnez t0, loop
        halt
    )");
    p.loadInto(mem);
    c2.reset();
    c2.run(100000);
    EXPECT_EQ(c2.stats().blockHits, 0u);
    EXPECT_GT(c2.stats().blocksDecoded, 50u);
}

TEST_F(CpuTest, SelfModifyingCodeInvalidatesCache)
{
    // The guest overwrites an instruction it already executed; the
    // store must flush the decoded block so the new code runs.
    runAsm(R"(
        li   a0, 0
        j    body
body:
        li   a0, 1          # patched below to load 3 (1|2)
        j    check
check:
        li   t2, 3
        beq  a0, t2, done
        # Patch the 'ori a0, a0, 1' half of the li at 'body'.
        la   t0, body
        lw   t1, 4(t0)
        ori  t1, t1, 2      # imm 1 -> 3
        sw   t1, 4(t0)
        j    body
done:
        halt
    )", 10000);
    // The loop exits only if the store invalidated the cached block so
    // the patched instruction (loading 3) actually executed.
    EXPECT_EQ(reg(10), 3u);
    EXPECT_GE(core->stats().cacheFlushes, 1u);
}

TEST_F(CpuTest, FenceFlushesCache)
{
    runAsm(R"(
        fence
        halt
    )");
    EXPECT_GE(core->stats().cacheFlushes, 0u);   // No crash; counted.
}

// ------------------------------------------------------------ DBT tier

TEST_F(CpuTest, DbtChainsHotLoops)
{
    runAsm(R"(
        li   t0, 1000
loop:
        addi t0, t0, -1
        bnez t0, loop
        halt
    )");
    ASSERT_NE(core->dbt(), nullptr);
    const CoreStats &s = core->stats();
    EXPECT_GT(s.dbtBlocks, 0u);
    EXPECT_GT(s.dbtChainLinks, 0u);
    // The loop back-edge must run chained, not through the dispatcher.
    EXPECT_GT(s.dbtChainFollows, 900u);
}

TEST_F(CpuTest, DbtFlushRetiresTranslations)
{
    runAsm(R"(
        li   t0, 10
loop:
        addi t0, t0, -1
        bnez t0, loop
        fence
        halt
    )");
    ASSERT_NE(core->dbt(), nullptr);
    EXPECT_GT(core->stats().dbtRetires, 0u);
    // The post-fence translations (fence fall-through, halt) are live.
    EXPECT_GT(core->dbt()->liveBlocks(), 0u);
}

// ----------------------------------------------- lockstep differential
//
// The interpreter (dbt = false) is the architectural oracle for the
// threaded-code tier: both execute identical block shapes and check
// budget/interrupts at identical block boundaries, so *every* slice
// boundary must observe identical architectural state — registers,
// PC, privilege, CSRs, instret and RAM contents.

/** Two cores (DBT vs interpreter) on private copies of the same RAM,
 *  stepped slice-by-slice with identical external stimulus. */
class LockstepTest : public ::testing::Test
{
  protected:
    LockstepTest() : memA(kBase, 1 << 20), memB(kBase, 1 << 20)
    {
        busA.attachMemory(&memA);
        busB.attachMemory(&memB);
        CoreConfig ca;
        ca.dbt = true;
        CoreConfig cb;
        cb.dbt = false;
        dbt = std::make_unique<Core>(busA, ca);
        interp = std::make_unique<Core>(busB, cb);
    }

    void
    load(const std::string &body)
    {
        Program p = assemble("        .org 0x80000000\n" + body);
        p.loadInto(memA);
        p.loadInto(memB);
        dbt->reset();
        interp->reset();
        ASSERT_NE(dbt->dbt(), nullptr);
        ASSERT_EQ(interp->dbt(), nullptr);
    }

    /** Compares all architectural state the two tiers must agree on. */
    void
    expectLockstep(const char *where)
    {
        for (unsigned i = 0; i < kNumRegs; ++i)
            ASSERT_EQ(dbt->reg(i), interp->reg(i))
                << where << ": x" << i;
        ASSERT_EQ(dbt->pc(), interp->pc()) << where;
        ASSERT_EQ(dbt->priv(), interp->priv()) << where;
        ASSERT_EQ(dbt->waiting(), interp->waiting()) << where;
        static constexpr uint32_t csrs[] = {
            kCsrSatp, kCsrMStatus, kCsrMIe, kCsrMTvec, kCsrMScratch,
            kCsrMEpc, kCsrMCause, kCsrMTval, kCsrMIp, kCsrMCycle,
            kCsrMInstRet,
        };
        for (uint32_t csr : csrs)
            ASSERT_EQ(dbt->readCsr(csr), interp->readCsr(csr))
                << where << ": csr 0x" << std::hex << csr;
        ASSERT_EQ(dbt->stats().instret, interp->stats().instret) << where;
        ASSERT_EQ(dbt->stats().traps, interp->stats().traps) << where;
        ASSERT_EQ(dbt->stats().interrupts, interp->stats().interrupts)
            << where;
    }

    void
    expectRamEqual(const char *where)
    {
        ASSERT_EQ(std::memcmp(memA.hostPtr(kBase), memB.hostPtr(kBase),
                              memA.size()),
                  0)
            << where;
    }

    /**
     * Runs both tiers for @p slices slices of @p slice_insts, checking
     * lockstep at every boundary (the same cadence System::runCpu
     * uses, shrunk to stress block-boundary bookkeeping).  Returns
     * when both halt; fails if they disagree on when or how.
     */
    void
    runLockstep(unsigned slices, uint64_t slice_insts)
    {
        for (unsigned s = 0; s < slices; ++s) {
            StopReason ra = dbt->run(slice_insts);
            StopReason rb = interp->run(slice_insts);
            ASSERT_EQ(ra, rb) << "slice " << s;
            std::string where = "slice " + std::to_string(s);
            expectLockstep(where.c_str());
            if (ra == StopReason::Halt)
                break;
        }
        expectRamEqual("final RAM");
    }

    PhysMem memA, memB;
    Bus busA, busB;
    std::unique_ptr<Core> dbt, interp;
};

TEST_F(LockstepTest, ArithLoopsCallsAndCsrs)
{
    load(R"(
        la   t0, handler
        csrw mtvec, t0
        li   s0, 0            # accumulator
        li   s1, 0            # outer counter
outer:
        li   t0, 0
        li   t1, 37
inner:
        add  s0, s0, t0
        mul  t2, t0, t1
        xor  s0, s0, t2
        addi t0, t0, 1
        blt  t0, t1, inner
        jal  ra, leaf
        ecall                 # round-trip through the trap handler
        addi s1, s1, 1
        li   t3, 23
        blt  s1, t3, outer
        csrr s2, minstret
        halt
leaf:
        slli s0, s0, 1
        srai s0, s0, 1
        ret
handler:
        csrr t4, mepc
        addi t4, t4, 4
        csrw mepc, t4
        csrs mscratch, s1
        mret
    )");
    // Odd slice length so boundaries land mid-loop in varying places.
    runLockstep(4000, 37);
}

TEST_F(LockstepTest, MemoryTrapsAndFaults)
{
    load(R"(
        la   t0, handler
        csrw mtvec, t0
        li   s0, 0x80002000
        li   s1, 0
        li   s2, 0
loop:
        sw   s1, 0(s0)
        lw   t1, 0(s0)
        add  s2, s2, t1
        li   t2, 0x80001001
        lw   t3, 0(t2)        # misaligned: traps every iteration
        li   t2, 0x20000000
        sw   s1, 0(t2)        # unmapped: faults every iteration
        addi s1, s1, 1
        li   t4, 50
        blt  s1, t4, loop
        halt
handler:
        csrr t5, mepc
        addi t5, t5, 4
        csrw mepc, t5
        mret
    )");
    runLockstep(4000, 41);
}

TEST_F(LockstepTest, WfiAndInterruptDelivery)
{
    load(R"(
        la   t0, handler
        csrw mtvec, t0
        li   t0, 0x800        # MEIE
        csrw mie, t0
        li   t0, 0x8          # MIE
        csrw mstatus, t0
        li   s0, 0
loop:
        wfi
        li   t1, 4
        blt  s0, t1, loop
        halt
handler:
        addi s0, s0, 1
        csrw mie, zero        # Mask the level IRQ while it drops.
        li   t0, 0x800
        csrw mie, t0
        mret
    )");
    // Drive the external line identically into both cores, toggling at
    // slice boundaries so delivery lands at identical instants.
    for (unsigned s = 0; s < 200; ++s) {
        bool level = (s % 4) == 1;
        dbt->setIrqLine(kIrqExternal, level);
        interp->setIrqLine(kIrqExternal, level);
        StopReason ra = dbt->run(29);
        StopReason rb = interp->run(29);
        ASSERT_EQ(ra, rb) << "slice " << s;
        std::string where = "slice " + std::to_string(s);
        expectLockstep(where.c_str());
        if (ra == StopReason::Halt)
            break;
    }
    // All four wakes happened (a final interrupt may sneak in between
    // the loop-exit branch and the halt, so >= rather than ==).
    EXPECT_GE(dbt->reg(8), 4u);
    expectRamEqual("final RAM");
}

TEST_F(LockstepTest, SelfModifyingCode)
{
    // The guest rewrites an instruction inside an already-translated
    // (and currently hot) block: both tiers must retire the stale code
    // at the same store and execute the patched version afterwards.
    load(R"(
        li   s0, 0            # generation counter
        li   s1, 0            # sum of observed values
body:
        li   a0, 1            # patched: imm grows by 2 each pass
        add  s1, s1, a0
        la   t0, body
        lw   t1, 4(t0)        # 'ori a0, a0, imm' half of the li
        addi t1, t1, 2
        sw   t1, 4(t0)        # patch the block we are inside
        addi s0, s0, 1
        li   t2, 30
        blt  s0, t2, body
        halt
    )");
    runLockstep(4000, 13);
    EXPECT_GE(dbt->stats().cacheFlushes, 30u);
    EXPECT_GT(dbt->stats().dbtRetires, 0u);
}

TEST_F(LockstepTest, FenceAndSfenceFlushes)
{
    load(R"(
        li   s0, 0
loop:
        fence                 # retires every translation, mid-loop
        sfence                # bumps the MMU epoch: chains must break
        addi s0, s0, 1
        li   t0, 40
        blt  s0, t0, loop
        halt
    )");
    runLockstep(4000, 17);
    EXPECT_GT(dbt->stats().dbtChainBreaks + dbt->stats().dbtRetires, 0u);
}

} // namespace
} // namespace bifsim::sa32
