/** @file Tests for the kclc compiler: lexer, parser, semantic checks,
 *  code generation correctness (executed on the reference
 *  interpreter), optimisation-level equivalence, structural clause
 *  invariants, and register-pressure handling. */

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

#include "common/logging.h"
#include "gpu/ref/ref_interp.h"
#include "kclc/compiler.h"
#include "kclc/lexer.h"
#include "kclc/parser.h"

namespace bifsim::kclc {
namespace {

/** Compiles and runs one work-item with the given args and 64KiB of
 *  flat global memory; returns the memory afterwards. */
struct RunOut
{
    std::vector<uint8_t> mem;
    bool ok;
    std::string error;
};

RunOut
runKernel(const std::string &src, const std::string &name,
          const std::vector<uint32_t> &args,
          const std::vector<uint8_t> &init_mem = {},
          const CompilerOptions &opts = CompilerOptions(),
          uint32_t threads = 1)
{
    CompiledKernel k = compileKernel(src, name, opts);
    RunOut out;
    out.mem.assign(65536, 0);
    std::copy(init_mem.begin(), init_mem.end(), out.mem.begin());
    std::vector<uint8_t> local(std::max<uint32_t>(k.localBytes, 4), 0);
    for (uint32_t t = 0; t < threads; ++t) {
        gpu::ref::RefContext ctx;
        ctx.args = args;
        ctx.globalMem = &out.mem;
        ctx.localMem = &local;
        ctx.localId[0] = t;
        ctx.localSize[0] = threads;
        ctx.gridSize[0] = threads;
        gpu::ref::RefResult r = gpu::ref::runThread(k.mod, ctx);
        if (!r.ok) {
            out.ok = false;
            out.error = r.error;
            return out;
        }
    }
    out.ok = true;
    return out;
}

uint32_t
memU32(const RunOut &o, uint32_t addr)
{
    uint32_t v;
    std::memcpy(&v, o.mem.data() + addr, 4);
    return v;
}

float
memF32(const RunOut &o, uint32_t addr)
{
    return std::bit_cast<float>(memU32(o, addr));
}

// ---------------------------------------------------------------- lexer

TEST(Lexer, TokensAndLiterals)
{
    auto toks = lex("kernel void f(int a) { a = 0x10 + 2.5f; }");
    EXPECT_EQ(toks[0].kind, Tok::KwKernel);
    EXPECT_EQ(toks[1].kind, Tok::KwVoid);
    EXPECT_EQ(toks[2].kind, Tok::Ident);
    EXPECT_EQ(toks[2].text, "f");
    bool saw_hex = false, saw_float = false;
    for (const Token &t : toks) {
        if (t.kind == Tok::IntLit && t.intValue == 16)
            saw_hex = true;
        if (t.kind == Tok::FloatLit && t.floatValue == 2.5f)
            saw_float = true;
    }
    EXPECT_TRUE(saw_hex);
    EXPECT_TRUE(saw_float);
}

TEST(Lexer, OperatorsAndComments)
{
    auto toks = lex("a += b && c || d >> 2 /* x */ // y\n<= >=");
    std::vector<Tok> kinds;
    for (const Token &t : toks)
        kinds.push_back(t.kind);
    EXPECT_NE(std::find(kinds.begin(), kinds.end(), Tok::PlusAssign),
              kinds.end());
    EXPECT_NE(std::find(kinds.begin(), kinds.end(), Tok::AmpAmp),
              kinds.end());
    EXPECT_NE(std::find(kinds.begin(), kinds.end(), Tok::PipePipe),
              kinds.end());
    EXPECT_NE(std::find(kinds.begin(), kinds.end(), Tok::Shr),
              kinds.end());
    EXPECT_NE(std::find(kinds.begin(), kinds.end(), Tok::LessEq),
              kinds.end());
}

TEST(Lexer, RejectsBadChar)
{
    EXPECT_THROW(lex("kernel @"), SimError);
}

// --------------------------------------------------------------- parser

TEST(Parser, KernelSignature)
{
    Unit u = parse("kernel void k(global float* out, const int n, "
                   "local int* scratch) {}");
    ASSERT_EQ(u.kernels.size(), 1u);
    const Kernel &k = u.kernels[0];
    EXPECT_EQ(k.name, "k");
    ASSERT_EQ(k.params.size(), 3u);
    EXPECT_TRUE(k.params[0].type.isPointer);
    EXPECT_EQ(k.params[0].type.space, AddrSpace::Global);
    EXPECT_FALSE(k.params[1].type.isPointer);
    EXPECT_EQ(k.params[2].type.space, AddrSpace::Local);
}

TEST(Parser, MultipleKernels)
{
    Unit u = parse("kernel void a() {} kernel void b() {}");
    EXPECT_EQ(u.kernels.size(), 2u);
    EXPECT_NE(u.find("a"), nullptr);
    EXPECT_NE(u.find("b"), nullptr);
    EXPECT_EQ(u.find("c"), nullptr);
}

TEST(Parser, SyntaxErrors)
{
    EXPECT_THROW(parse("kernel void f( {}"), SimError);
    EXPECT_THROW(parse("kernel void f() { int; }"), SimError);
    EXPECT_THROW(parse("kernel void f() { if (1 }"), SimError);
    EXPECT_THROW(parse("void f() {}"), SimError);
}

// --------------------------------------------------------------- sema

TEST(Sema, UndefinedVariable)
{
    EXPECT_THROW(
        compileKernel("kernel void f(global int* o) { o[0] = zz; }", "f"),
        SimError);
}

TEST(Sema, Redefinition)
{
    EXPECT_THROW(compileKernel(
                     "kernel void f() { int a = 1; int a = 2; }", "f"),
                 SimError);
}

TEST(Sema, PointerMisuse)
{
    EXPECT_THROW(
        compileKernel("kernel void f(global int* p) { int a = p + 1; }",
                      "f"),
        SimError);
    EXPECT_THROW(
        compileKernel("kernel void f(int a) { a[0] = 1; }", "f"),
        SimError);
}

TEST(Sema, FloatModuloRejected)
{
    EXPECT_THROW(
        compileKernel(
            "kernel void f(global float* o, float a) { o[0] = a % 2.0f; }",
            "f"),
        SimError);
}

TEST(Sema, BadBuiltinUsage)
{
    EXPECT_THROW(
        compileKernel(
            "kernel void f(global int* o, int d) { o[0] = "
            "get_global_id(d); }",
            "f"),
        SimError);
    EXPECT_THROW(
        compileKernel("kernel void f() { nothere(1); }", "f"),
        SimError);
}

// ------------------------------------------------------- codegen basics

const char *kArith = R"(
kernel void arith(global int* out, int a, int b) {
    out[0] = a + b;
    out[1] = a - b;
    out[2] = a * b;
    out[3] = a / b;
    out[4] = a % b;
    out[5] = (a << 2) | (b & 7);
    out[6] = a > b ? a : b;
    out[7] = -a;
    out[8] = ~a;
    out[9] = !a;
}
)";

TEST(Codegen, IntegerArithmetic)
{
    RunOut o = runKernel(kArith, "arith", {4096, 17u, 5u});
    ASSERT_TRUE(o.ok) << o.error;
    EXPECT_EQ(memU32(o, 4096), 22u);
    EXPECT_EQ(memU32(o, 4100), 12u);
    EXPECT_EQ(memU32(o, 4104), 85u);
    EXPECT_EQ(memU32(o, 4108), 3u);
    EXPECT_EQ(memU32(o, 4112), 2u);
    EXPECT_EQ(memU32(o, 4116), (17u << 2) | (5u & 7u));
    EXPECT_EQ(memU32(o, 4120), 17u);
    EXPECT_EQ(memU32(o, 4124), static_cast<uint32_t>(-17));
    EXPECT_EQ(memU32(o, 4128), ~17u);
    EXPECT_EQ(memU32(o, 4132), 0u);
}

TEST(Codegen, FloatArithmeticAndBuiltins)
{
    const char *src = R"(
kernel void f(global float* out, float x) {
    out[0] = x * 2.0f + 1.0f;
    out[1] = sqrt(x);
    out[2] = fabs(0.0f - x);
    out[3] = fmin(x, 3.0f);
    out[4] = fmax(x, 30.0f);
    out[5] = floor(x / 4.0f);
    out[6] = clamp(x, 0.0f, 10.0f);
}
)";
    RunOut o = runKernel(src, "f", {4096,
                                    std::bit_cast<uint32_t>(16.0f)});
    ASSERT_TRUE(o.ok) << o.error;
    EXPECT_FLOAT_EQ(memF32(o, 4096), 33.0f);
    EXPECT_FLOAT_EQ(memF32(o, 4100), 4.0f);
    EXPECT_FLOAT_EQ(memF32(o, 4104), 16.0f);
    EXPECT_FLOAT_EQ(memF32(o, 4108), 3.0f);
    EXPECT_FLOAT_EQ(memF32(o, 4112), 30.0f);
    EXPECT_FLOAT_EQ(memF32(o, 4116), 4.0f);
    EXPECT_FLOAT_EQ(memF32(o, 4120), 10.0f);
}

TEST(Codegen, ExpLogPow)
{
    const char *src = R"(
kernel void f(global float* out, float x) {
    out[0] = exp(x);
    out[1] = log(x);
    out[2] = pow(x, 2.0f);
    out[3] = exp2(x);
    out[4] = log2(x);
}
)";
    RunOut o = runKernel(src, "f", {4096, std::bit_cast<uint32_t>(2.0f)});
    ASSERT_TRUE(o.ok) << o.error;
    EXPECT_NEAR(memF32(o, 4096), std::exp(2.0f), 1e-3);
    EXPECT_NEAR(memF32(o, 4100), std::log(2.0f), 1e-4);
    EXPECT_NEAR(memF32(o, 4104), 4.0f, 1e-3);
    EXPECT_FLOAT_EQ(memF32(o, 4108), 4.0f);
    EXPECT_FLOAT_EQ(memF32(o, 4112), 1.0f);
}

TEST(Codegen, Conversions)
{
    const char *src = R"(
kernel void f(global int* out, float x, int i) {
    out[0] = (int)x;
    out[1] = (int)(float)i;
    global float* fo = out;
    fo[2] = (float)i;
    out[3] = (int)(uint)3000000000u;
}
)";
    // Pointer re-declaration of a parameter type isn't in the language;
    // use a second buffer arg instead.
    const char *src2 = R"(
kernel void f(global int* out, global float* fout, float x, int i) {
    out[0] = (int)x;
    out[1] = (int)(float)i;
    fout[0] = (float)i;
}
)";
    (void)src;
    RunOut o = runKernel(src2, "f",
                         {4096, 8192, std::bit_cast<uint32_t>(7.9f), 12u});
    ASSERT_TRUE(o.ok) << o.error;
    EXPECT_EQ(memU32(o, 4096), 7u);
    EXPECT_EQ(memU32(o, 4100), 12u);
    EXPECT_FLOAT_EQ(memF32(o, 8192), 12.0f);
}

TEST(Codegen, ControlFlowIfElseLoops)
{
    const char *src = R"(
kernel void f(global int* out, int n) {
    int sum = 0;
    for (int i = 0; i < n; i++) {
        if (i % 2 == 0) {
            sum += i;
        } else {
            sum -= 1;
        }
    }
    int j = 0;
    while (j < 3) {
        j++;
    }
    out[0] = sum;
    out[1] = j;
}
)";
    RunOut o = runKernel(src, "f", {4096, 10u});
    ASSERT_TRUE(o.ok) << o.error;
    EXPECT_EQ(memU32(o, 4096), static_cast<uint32_t>(0 + 2 + 4 + 6 + 8 - 5));
    EXPECT_EQ(memU32(o, 4100), 3u);
}

TEST(Codegen, ShortCircuitGuardsMemory)
{
    // The right operand indexes out of bounds unless short-circuited.
    const char *src = R"(
kernel void f(global int* out, global const int* data, int i, int n) {
    if (i < n && data[i] > 0) {
        out[0] = 1;
    } else {
        out[0] = 2;
    }
    if (i >= n || data[i] > 0) {
        out[1] = 3;
    } else {
        out[1] = 4;
    }
}
)";
    // i = huge: data[i] would fault if evaluated.
    RunOut o = runKernel(src, "f", {4096, 8192, 1000000u, 4u});
    ASSERT_TRUE(o.ok) << o.error;
    EXPECT_EQ(memU32(o, 4096), 2u);
    EXPECT_EQ(memU32(o, 4100), 3u);
}

TEST(Codegen, TernaryGuardsMemory)
{
    const char *src = R"(
kernel void f(global int* out, global const int* data, int i, int n) {
    out[0] = i < n ? data[i] : -1;
}
)";
    RunOut o = runKernel(src, "f", {4096, 8192, 999999u, 4u});
    ASSERT_TRUE(o.ok) << o.error;
    EXPECT_EQ(memU32(o, 4096), static_cast<uint32_t>(-1));
}

TEST(Codegen, UnsignedSemantics)
{
    const char *src = R"(
kernel void f(global uint* out, uint a, uint b) {
    out[0] = a / b;
    out[1] = a >> 4;
    out[2] = a < b ? 1u : 0u;
}
)";
    RunOut o = runKernel(src, "f", {4096, 0x80000000u, 2u});
    ASSERT_TRUE(o.ok) << o.error;
    EXPECT_EQ(memU32(o, 4096), 0x40000000u);
    EXPECT_EQ(memU32(o, 4100), 0x08000000u);
    EXPECT_EQ(memU32(o, 4104), 0u);
}

TEST(Codegen, IncDecAndCompound)
{
    const char *src = R"(
kernel void f(global int* out) {
    int a = 5;
    out[0] = a++;
    out[1] = ++a;
    out[2] = a--;
    out[3] = --a;
    int b = 10;
    b *= 3;
    b -= 5;
    b += 1;
    out[4] = b;
    out[5] = 0;
    out[5] += 9;
}
)";
    RunOut o = runKernel(src, "f", {4096});
    ASSERT_TRUE(o.ok) << o.error;
    EXPECT_EQ(memU32(o, 4096), 5u);
    EXPECT_EQ(memU32(o, 4100), 7u);
    EXPECT_EQ(memU32(o, 4104), 7u);
    EXPECT_EQ(memU32(o, 4108), 5u);
    EXPECT_EQ(memU32(o, 4112), 26u);
    EXPECT_EQ(memU32(o, 4116), 9u);
}

TEST(Codegen, ReturnExitsEarly)
{
    const char *src = R"(
kernel void f(global int* out, int flag) {
    out[0] = 1;
    if (flag != 0) {
        return;
    }
    out[0] = 2;
}
)";
    RunOut o1 = runKernel(src, "f", {4096, 1u});
    EXPECT_EQ(memU32(o1, 4096), 1u);
    RunOut o0 = runKernel(src, "f", {4096, 0u});
    EXPECT_EQ(memU32(o0, 4096), 2u);
}

TEST(Codegen, LocalArrayRoundTrip)
{
    const char *src = R"(
kernel void f(global int* out) {
    local int tile[8];
    int lid = get_local_id(0);
    tile[lid] = lid * 10;
    barrier();
    out[lid] = tile[7 - lid];
}
)";
    RunOut o = runKernel(src, "f", {4096}, {}, CompilerOptions(), 8);
    ASSERT_TRUE(o.ok) << o.error;
    // Single-thread reference executes threads serially; each thread
    // only reads its mirror slot which thread (7-lid) wrote... with
    // serial execution thread 0 reads slot 7 before thread 7 writes.
    // So only check thread-local consistency via the full simulator in
    // test_gpu_exec; here check the last thread's view.
    EXPECT_EQ(memU32(o, 4096 + 7 * 4), 0u);   // tile[0] = 0*10.
}

TEST(Codegen, BuiltinsIds)
{
    const char *src = R"(
kernel void f(global int* out) {
    out[0] = get_global_id(0);
    out[1] = get_local_id(0);
    out[2] = get_group_id(0);
    out[3] = get_local_size(0);
    out[4] = get_global_size(0);
    out[5] = get_num_groups(0);
}
)";
    CompiledKernel k = compileKernel(src, "f");
    std::vector<uint8_t> mem(65536, 0);
    std::vector<uint8_t> local(4, 0);
    gpu::ref::RefContext ctx;
    ctx.args = {4096};
    ctx.globalMem = &mem;
    ctx.localMem = &local;
    ctx.localId[0] = 3;
    ctx.groupId[0] = 2;
    ctx.localSize[0] = 8;
    ctx.gridSize[0] = 32;
    ctx.numGroups[0] = 4;
    gpu::ref::RefResult r = gpu::ref::runThread(k.mod, ctx);
    ASSERT_TRUE(r.ok) << r.error;
    auto rd = [&](uint32_t a) {
        uint32_t v;
        std::memcpy(&v, mem.data() + a, 4);
        return v;
    };
    EXPECT_EQ(rd(4096), 2u * 8u + 3u);
    EXPECT_EQ(rd(4100), 3u);
    EXPECT_EQ(rd(4104), 2u);
    EXPECT_EQ(rd(4108), 8u);
    EXPECT_EQ(rd(4112), 32u);
    EXPECT_EQ(rd(4116), 4u);
}

// -------------------------------------------- optimisation equivalence

const char *kLoopy = R"(
kernel void loopy(global int* out, global const int* in, int n) {
    int acc = 0;
    for (int i = 0; i < n; i++) {
        int v = in[i];
        if (v > 50) {
            acc += v * 2;
        } else {
            acc += v;
        }
    }
    out[0] = acc;
    out[1] = 6 * 7;          // constant-foldable
    out[2] = (3 + 4) * (3 + 4);
}
)";

TEST(OptLevels, AllLevelsAgree)
{
    std::vector<uint8_t> init(65536, 0);
    for (uint32_t i = 0; i < 16; ++i) {
        uint32_t v = i * 13 % 100;
        std::memcpy(init.data() + 8192 + i * 4, &v, 4);
    }
    uint32_t want = 0;
    bool have_want = false;
    for (int level = 0; level <= 3; ++level) {
        RunOut o = runKernel(kLoopy, "loopy", {4096, 8192, 16u}, init,
                             CompilerOptions::forLevel(level));
        ASSERT_TRUE(o.ok) << o.error;
        uint32_t got = memU32(o, 4096);
        if (!have_want) {
            want = got;
            have_want = true;
        }
        EXPECT_EQ(got, want) << "level " << level;
        EXPECT_EQ(memU32(o, 4100), 42u);
        EXPECT_EQ(memU32(o, 4104), 49u);
    }
}

TEST(OptLevels, HigherLevelsEmitDenserCode)
{
    CompiledKernel k0 =
        compileKernel(kLoopy, "loopy", CompilerOptions::forLevel(0));
    CompiledKernel k3 =
        compileKernel(kLoopy, "loopy", CompilerOptions::forLevel(3));
    // O0: one instruction per clause.
    for (const bif::Clause &cl : k0.mod.clauses)
        EXPECT_EQ(cl.tuples.size(), 1u);
    // O3 packs multiple tuples per clause and uses temporaries.
    size_t max_tuples = 0;
    bool uses_temp = false;
    for (const bif::Clause &cl : k3.mod.clauses) {
        max_tuples = std::max(max_tuples, cl.tuples.size());
        for (const bif::Tuple &t : cl.tuples) {
            for (const bif::Instr &in : t.slot) {
                if (bif::isTemp(in.dst))
                    uses_temp = true;
            }
        }
    }
    EXPECT_GT(max_tuples, 1u);
    EXPECT_TRUE(uses_temp);
    EXPECT_LT(k3.binary.size(), k0.binary.size());
}

TEST(OptLevels, VersionPresets)
{
    EXPECT_EQ(CompilerOptions::forVersion("5.6").maxTuples, 1u);
    EXPECT_EQ(CompilerOptions::forVersion("6.2").versionName, "6.2");
    EXPECT_TRUE(CompilerOptions::forVersion("6.1").dualIssue);
    EXPECT_THROW(CompilerOptions::forVersion("9.9"), SimError);
}

// -------------------------------------------------- structural checks

TEST(Structure, EveryCompiledModuleValidates)
{
    for (int level = 0; level <= 3; ++level) {
        CompiledKernel k = compileKernel(
            kLoopy, "loopy", CompilerOptions::forLevel(level));
        EXPECT_EQ(bif::validate(k.mod), "") << "level " << level;
    }
}

TEST(Structure, RegisterPressureSpills)
{
    // Build a kernel with ~80 simultaneously-live values.
    std::string src = "kernel void big(global float* out) {\n";
    for (int i = 0; i < 80; ++i) {
        src += strfmt("    float v%d = %d.5f + (float)get_global_id(0);\n",
                      i, i);
    }
    src += "    float acc = 0.0f;\n";
    for (int i = 0; i < 80; ++i)
        src += strfmt("    acc += v%d;\n", i);
    src += "    out[0] = acc;\n}\n";

    CompiledKernel k = compileKernel(src, "big");
    EXPECT_GT(k.spills, 0u);
    EXPECT_EQ(bif::validate(k.mod), "");

    // And it still computes the right answer.
    std::vector<uint8_t> mem(65536, 0);
    std::vector<uint8_t> local(std::max<uint32_t>(k.localBytes, 4), 0);
    gpu::ref::RefContext ctx;
    ctx.args = {4096};
    ctx.globalMem = &mem;
    ctx.localMem = &local;
    gpu::ref::RefResult r = gpu::ref::runThread(k.mod, ctx);
    ASSERT_TRUE(r.ok) << r.error;
    float got;
    std::memcpy(&got, mem.data() + 4096, 4);
    float want = 0;
    for (int i = 0; i < 80; ++i)
        want += static_cast<float>(i) + 0.5f;
    EXPECT_FLOAT_EQ(got, want);
}

TEST(Structure, ArgumentMetadata)
{
    CompiledKernel k = compileKernel(
        "kernel void f(global float* a, int n, float s) {}", "f");
    ASSERT_EQ(k.args.size(), 3u);
    EXPECT_TRUE(k.args[0].isBuffer);
    EXPECT_EQ(k.args[0].name, "a");
    EXPECT_FALSE(k.args[1].isBuffer);
    EXPECT_FALSE(k.args[2].isBuffer);
}

TEST(Structure, MissingKernelName)
{
    EXPECT_THROW(compileKernel("kernel void f() {}", "g"), SimError);
}

} // namespace
} // namespace bifsim::kclc
