/** @file Differential validation of the GPU model (paper §V-A2): the
 *  optimised warp executor is fuzzed against the independent reference
 *  interpreter over randomly generated BIF programs — the open
 *  equivalent of tracing against Arm's proprietary simulator. */

#include <gtest/gtest.h>

#include <random>

#include "gpu/isa/bif.h"
#include "gpu/ref/ref_interp.h"
#include "runtime/session.h"

namespace bifsim {
namespace {

using bif::Instr;
using bif::Op;

constexpr uint8_t kNone = bif::kOperandNone;

/** Ops safe for pure-arithmetic fuzzing (no memory, no CF). */
const Op kFuzzOps[] = {
    Op::FAdd, Op::FSub, Op::FMul, Op::FFma, Op::FMin, Op::FMax,
    Op::FAbs, Op::FNeg, Op::FFloor, Op::IAdd, Op::ISub, Op::IMul,
    Op::IAnd, Op::IOr, Op::IXor, Op::INot, Op::IShl, Op::IShr,
    Op::IAsr, Op::IMin, Op::IMax, Op::UMin, Op::UMax, Op::FCmp,
    Op::ICmp, Op::UCmp, Op::CSel, Op::Mov, Op::MovImm, Op::F2I,
    Op::F2U, Op::I2F, Op::U2F, Op::IDiv, Op::IRem, Op::UDiv, Op::URem,
    Op::LdRom,
};

/** Generates a random arithmetic program: several clauses, GRF-only
 *  operands (plus specials), with structurally valid slot placement. */
bif::Module
randomProgram(uint32_t seed)
{
    std::mt19937 rng(seed);
    auto reg = [&]() -> uint8_t {
        return static_cast<uint8_t>(rng() % 16);   // r0..r15
    };
    auto src = [&]() -> uint8_t {
        uint32_t pick = rng() % 10;
        if (pick < 7)
            return reg();
        if (pick < 9) {
            return static_cast<uint8_t>(bif::kSrLaneId +
                                        rng() % (bif::kSrZero -
                                                 bif::kSrLaneId + 1));
        }
        return bif::kSrZero;
    };

    bif::Module m;
    unsigned num_clauses = 1 + rng() % 4;
    for (unsigned c = 0; c < num_clauses; ++c) {
        bif::Clause cl;
        unsigned tuples = 1 + rng() % bif::kMaxTuplesPerClause;
        for (unsigned t = 0; t < tuples; ++t) {
            bif::Tuple tu;
            for (int s = 0; s < 2; ++s) {
                if (rng() % 5 == 0)
                    continue;   // Leave an empty slot.
                Instr in;
                in.op = kFuzzOps[rng() % std::size(kFuzzOps)];
                in.dst = reg();
                in.src0 = src();
                in.src1 = src();
                in.src2 = src();
                in.imm = static_cast<int32_t>(rng() % 11) - 5;
                if (in.op == Op::LdRom)
                    in.imm = static_cast<int32_t>(rng() % 4);
                tu.slot[s] = in;
            }
            cl.tuples.push_back(tu);
        }
        m.clauses.push_back(cl);
    }
    // Terminate.
    bif::Tuple ret;
    ret.slot[1].op = Op::Ret;
    m.clauses.back().tuples.push_back(ret);
    if (m.clauses.back().tuples.size() > bif::kMaxTuplesPerClause) {
        bif::Clause cl;
        cl.tuples.push_back(m.clauses.back().tuples.back());
        m.clauses.back().tuples.pop_back();
        m.clauses.push_back(cl);
    }
    m.rom = {0x3f800000, 0x40000000, 0xbf000000, 0x00000007};
    m.regCount = 16;
    return m;
}

/** Runs the program on the full GPU model and dumps each thread's
 *  GRF to a buffer, then compares against the reference interpreter
 *  thread by thread. */
class DifferentialFuzz : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(DifferentialFuzz, CoreMatchesReference)
{
    uint32_t seed = GetParam();
    bif::Module prog = randomProgram(seed);
    ASSERT_EQ(bif::validate(prog), "");

    // Append a dump stage: out[(gid*16 + i)*4] = r_i for r0..r15.
    bif::Module dumper = prog;
    // Recompute global id into r16.. using specials (kept out of the
    // fuzzed register range r0..r15).
    bif::Clause dump;
    auto add = [&](Instr in) {
        bif::Tuple t;
        t.slot[0] = in;
        dump.tuples.push_back(t);
        if (dump.tuples.size() == bif::kMaxTuplesPerClause) {
            dumper.clauses.push_back(dump);
            dump.tuples.clear();
        }
    };
    Instr in;
    in = Instr();
    in.op = Op::IMul;
    in.dst = 16;
    in.src0 = bif::kSrGroupIdX;
    in.src1 = bif::kSrLocalSizeX;
    add(in);
    in = Instr();
    in.op = Op::IAdd;
    in.dst = 16;
    in.src0 = 16;
    in.src1 = bif::kSrLocalIdX;
    add(in);
    // r17 = base + gid*64
    in = Instr();
    in.op = Op::MovImm;
    in.dst = 18;
    in.imm = 6;
    add(in);
    in = Instr();
    in.op = Op::IShl;
    in.dst = 17;
    in.src0 = 16;
    in.src1 = 18;
    add(in);
    in = Instr();
    in.op = Op::LdArg;
    in.dst = 19;
    in.imm = 0;
    add(in);
    in = Instr();
    in.op = Op::IAdd;
    in.dst = 17;
    in.src0 = 17;
    in.src1 = 19;
    add(in);
    for (int r = 0; r < 16; ++r) {
        in = Instr();
        in.op = Op::StGlobal;
        in.dst = kNone;
        in.src0 = 17;
        in.src1 = static_cast<uint8_t>(r);
        in.imm = r * 4;
        add(in);
    }
    if (!dump.tuples.empty())
        dumper.clauses.push_back(dump);
    bif::Clause fin;
    bif::Tuple rt;
    rt.slot[1].op = Op::Ret;
    fin.tuples.push_back(rt);
    dumper.clauses.push_back(fin);

    // Strip the original Ret (it would end threads before the dump).
    for (bif::Clause &cl : dumper.clauses) {
        for (bif::Tuple &t : cl.tuples) {
            for (Instr &i2 : t.slot) {
                if (i2.op == Op::Ret &&
                    &cl != &dumper.clauses.back()) {
                    i2 = Instr();   // Nop
                }
            }
        }
    }
    ASSERT_EQ(bif::validate(dumper), "");

    constexpr uint32_t kThreads = 8;
    rt::SystemConfig cfg;
    cfg.gpu.hostThreads = 2;
    rt::Session session(cfg);
    kclc::CompiledKernel ck;
    ck.name = "fuzz";
    ck.mod = dumper;
    ck.binary = bif::encode(dumper);
    rt::KernelHandle k = session.load(ck);
    rt::Buffer out = session.alloc(kThreads * 64);
    gpu::JobResult r = session.enqueue(
        k, rt::NDRange{kThreads, 1, 1}, rt::NDRange{4, 1, 1},
        {rt::Arg::buf(out)});
    ASSERT_FALSE(r.faulted) << r.fault.detail;
    std::vector<uint32_t> got(kThreads * 16);
    session.read(out, got.data(), got.size() * 4);

    // Reference: run each thread independently on the scalar
    // interpreter over the *original* program.
    for (uint32_t t = 0; t < kThreads; ++t) {
        gpu::ref::RefContext ctx;
        ctx.localId[0] = t % 4;
        ctx.groupId[0] = t / 4;
        ctx.localSize[0] = 4;
        ctx.gridSize[0] = kThreads;
        ctx.numGroups[0] = kThreads / 4;
        ctx.laneId = t % 4;
        gpu::ref::RefResult rr = gpu::ref::runThread(prog, ctx);
        ASSERT_TRUE(rr.ok) << rr.error;
        for (int reg = 0; reg < 16; ++reg) {
            EXPECT_EQ(got[t * 16 + reg], rr.grf[reg])
                << "seed " << seed << " thread " << t << " r" << reg;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(FuzzSeeds, DifferentialFuzz,
                         ::testing::Range(1u, 33u));

/** The reference interpreter's tracing mode (paper's instruction
 *  tracing validation). */
TEST(RefInterp, TraceMode)
{
    bif::Module m = randomProgram(7);
    gpu::ref::RefContext ctx;
    gpu::ref::RefResult r = gpu::ref::runThread(m, ctx, true);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.trace.size(), r.executedInstrs);
    EXPECT_FALSE(r.trace.empty());
}

TEST(RefInterp, BudgetGuard)
{
    // An infinite loop trips the instruction budget.
    bif::Module m;
    bif::Clause cl;
    bif::Tuple t;
    t.slot[1].op = Op::Branch;
    t.slot[1].imm = 0;
    cl.tuples.push_back(t);
    m.clauses.push_back(cl);
    gpu::ref::RefContext ctx;
    gpu::ref::RefResult r = gpu::ref::runThread(m, ctx, false, 1000);
    EXPECT_FALSE(r.ok);
}

} // namespace
} // namespace bifsim
