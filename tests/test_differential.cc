/** @file Differential validation of the GPU model (paper §V-A2): the
 *  optimised warp executor is fuzzed against the independent reference
 *  interpreter over randomly generated BIF programs — the open
 *  equivalent of tracing against Arm's proprietary simulator. */

#include <gtest/gtest.h>

#include <cstring>
#include <random>

#include "gpu/isa/bif.h"
#include "gpu/ref/ref_interp.h"
#include "runtime/session.h"
#include "workloads/sgemm_variants.h"

namespace bifsim {
namespace {

using bif::Instr;
using bif::Op;

constexpr uint8_t kNone = bif::kOperandNone;

/** Ops safe for pure-arithmetic fuzzing (no memory, no CF). */
const Op kFuzzOps[] = {
    Op::FAdd, Op::FSub, Op::FMul, Op::FFma, Op::FMin, Op::FMax,
    Op::FAbs, Op::FNeg, Op::FFloor, Op::IAdd, Op::ISub, Op::IMul,
    Op::IAnd, Op::IOr, Op::IXor, Op::INot, Op::IShl, Op::IShr,
    Op::IAsr, Op::IMin, Op::IMax, Op::UMin, Op::UMax, Op::FCmp,
    Op::ICmp, Op::UCmp, Op::CSel, Op::Mov, Op::MovImm, Op::F2I,
    Op::F2U, Op::I2F, Op::U2F, Op::IDiv, Op::IRem, Op::UDiv, Op::URem,
    Op::LdRom,
};

/** Generates a random arithmetic program: several clauses, GRF-only
 *  operands (plus specials), with structurally valid slot placement. */
bif::Module
randomProgram(uint32_t seed)
{
    std::mt19937 rng(seed);
    auto reg = [&]() -> uint8_t {
        return static_cast<uint8_t>(rng() % 16);   // r0..r15
    };
    auto src = [&]() -> uint8_t {
        uint32_t pick = rng() % 10;
        if (pick < 7)
            return reg();
        if (pick < 9) {
            return static_cast<uint8_t>(bif::kSrLaneId +
                                        rng() % (bif::kSrZero -
                                                 bif::kSrLaneId + 1));
        }
        return bif::kSrZero;
    };

    bif::Module m;
    unsigned num_clauses = 1 + rng() % 4;
    for (unsigned c = 0; c < num_clauses; ++c) {
        bif::Clause cl;
        unsigned tuples = 1 + rng() % bif::kMaxTuplesPerClause;
        for (unsigned t = 0; t < tuples; ++t) {
            bif::Tuple tu;
            for (int s = 0; s < 2; ++s) {
                if (rng() % 5 == 0)
                    continue;   // Leave an empty slot.
                Instr in;
                in.op = kFuzzOps[rng() % std::size(kFuzzOps)];
                in.dst = reg();
                in.src0 = src();
                in.src1 = src();
                in.src2 = src();
                in.imm = static_cast<int32_t>(rng() % 11) - 5;
                if (in.op == Op::LdRom)
                    in.imm = static_cast<int32_t>(rng() % 4);
                tu.slot[s] = in;
            }
            cl.tuples.push_back(tu);
        }
        m.clauses.push_back(cl);
    }
    // Terminate.
    bif::Tuple ret;
    ret.slot[1].op = Op::Ret;
    m.clauses.back().tuples.push_back(ret);
    if (m.clauses.back().tuples.size() > bif::kMaxTuplesPerClause) {
        bif::Clause cl;
        cl.tuples.push_back(m.clauses.back().tuples.back());
        m.clauses.back().tuples.pop_back();
        m.clauses.push_back(cl);
    }
    m.rom = {0x3f800000, 0x40000000, 0xbf000000, 0x00000007};
    m.regCount = 16;
    return m;
}

/** Runs the program on the full GPU model and dumps each thread's
 *  GRF to a buffer, then compares against the reference interpreter
 *  thread by thread. */
class DifferentialFuzz : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(DifferentialFuzz, CoreMatchesReference)
{
    uint32_t seed = GetParam();
    bif::Module prog = randomProgram(seed);
    ASSERT_EQ(bif::validate(prog), "");

    // Append a dump stage: out[(gid*16 + i)*4] = r_i for r0..r15.
    bif::Module dumper = prog;
    // Recompute global id into r16.. using specials (kept out of the
    // fuzzed register range r0..r15).
    bif::Clause dump;
    auto add = [&](Instr in) {
        bif::Tuple t;
        t.slot[0] = in;
        dump.tuples.push_back(t);
        if (dump.tuples.size() == bif::kMaxTuplesPerClause) {
            dumper.clauses.push_back(dump);
            dump.tuples.clear();
        }
    };
    Instr in;
    in = Instr();
    in.op = Op::IMul;
    in.dst = 16;
    in.src0 = bif::kSrGroupIdX;
    in.src1 = bif::kSrLocalSizeX;
    add(in);
    in = Instr();
    in.op = Op::IAdd;
    in.dst = 16;
    in.src0 = 16;
    in.src1 = bif::kSrLocalIdX;
    add(in);
    // r17 = base + gid*64
    in = Instr();
    in.op = Op::MovImm;
    in.dst = 18;
    in.imm = 6;
    add(in);
    in = Instr();
    in.op = Op::IShl;
    in.dst = 17;
    in.src0 = 16;
    in.src1 = 18;
    add(in);
    in = Instr();
    in.op = Op::LdArg;
    in.dst = 19;
    in.imm = 0;
    add(in);
    in = Instr();
    in.op = Op::IAdd;
    in.dst = 17;
    in.src0 = 17;
    in.src1 = 19;
    add(in);
    for (int r = 0; r < 16; ++r) {
        in = Instr();
        in.op = Op::StGlobal;
        in.dst = kNone;
        in.src0 = 17;
        in.src1 = static_cast<uint8_t>(r);
        in.imm = r * 4;
        add(in);
    }
    if (!dump.tuples.empty())
        dumper.clauses.push_back(dump);
    bif::Clause fin;
    bif::Tuple rt;
    rt.slot[1].op = Op::Ret;
    fin.tuples.push_back(rt);
    dumper.clauses.push_back(fin);
    dumper.regCount = 20;   // The dump stage scratches r16..r19.

    // Strip the original Ret (it would end threads before the dump).
    for (bif::Clause &cl : dumper.clauses) {
        for (bif::Tuple &t : cl.tuples) {
            for (Instr &i2 : t.slot) {
                if (i2.op == Op::Ret &&
                    &cl != &dumper.clauses.back()) {
                    i2 = Instr();   // Nop
                }
            }
        }
    }
    ASSERT_EQ(bif::validate(dumper), "");

    constexpr uint32_t kThreads = 8;
    rt::SystemConfig cfg;
    cfg.gpu.hostThreads = 2;
    rt::Session session(cfg);
    kclc::CompiledKernel ck;
    ck.name = "fuzz";
    ck.mod = dumper;
    ck.binary = bif::encode(dumper);
    rt::KernelHandle k = session.load(ck);
    rt::Buffer out = session.alloc(kThreads * 64);
    gpu::JobResult r = session.enqueue(
        k, rt::NDRange{kThreads, 1, 1}, rt::NDRange{4, 1, 1},
        {rt::Arg::buf(out)});
    ASSERT_FALSE(r.faulted) << r.fault.detail;
    std::vector<uint32_t> got(kThreads * 16);
    session.read(out, got.data(), got.size() * 4);

    // Reference: run each thread independently on the scalar
    // interpreter over the *original* program.
    for (uint32_t t = 0; t < kThreads; ++t) {
        gpu::ref::RefContext ctx;
        ctx.localId[0] = t % 4;
        ctx.groupId[0] = t / 4;
        ctx.localSize[0] = 4;
        ctx.gridSize[0] = kThreads;
        ctx.numGroups[0] = kThreads / 4;
        ctx.laneId = t % 4;
        gpu::ref::RefResult rr = gpu::ref::runThread(prog, ctx);
        ASSERT_TRUE(rr.ok) << rr.error;
        for (int reg = 0; reg < 16; ++reg) {
            EXPECT_EQ(got[t * 16 + reg], rr.grf[reg])
                << "seed " << seed << " thread " << t << " r" << reg;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(FuzzSeeds, DifferentialFuzz,
                         ::testing::Range(1u, 33u));

/** Random forward-branching program: every clause may end in a
 *  Branch/BranchZ/BranchNZ to a later clause, conditions derived from
 *  lane-varying state so warps actually diverge.  No Ret — threads
 *  fall off the end (so a dump stage can be appended unchanged). */
bif::Module
randomBranchProgram(uint32_t seed)
{
    std::mt19937 rng(seed);
    bif::Module m;
    unsigned num_clauses = 4 + rng() % 5;   // 4..8
    static const Op kOps[] = {Op::IAdd, Op::ISub, Op::IXor, Op::IAnd,
                              Op::MovImm, Op::IMul, Op::ICmp};
    for (unsigned c = 0; c < num_clauses; ++c) {
        bif::Clause cl;
        if (c == 0) {
            // Seed lane-varying state into r0 so conditions diverge.
            Instr in;
            in.op = Op::IAdd;
            in.dst = 0;
            in.src0 = bif::kSrLaneId;
            in.src1 = bif::kSrLocalIdX;
            bif::Tuple t;
            t.slot[0] = in;
            cl.tuples.push_back(t);
        }
        unsigned tuples = 1 + rng() % 3;
        for (unsigned t = 0; t < tuples; ++t) {
            Instr in;
            in.op = kOps[rng() % std::size(kOps)];
            in.dst = static_cast<uint8_t>(rng() % 8);
            in.src0 = static_cast<uint8_t>(rng() % 8);
            in.src1 = static_cast<uint8_t>(rng() % 8);
            in.imm = static_cast<int32_t>(rng() % 7) - 3;
            if (in.op == Op::ICmp)
                in.imm = static_cast<int32_t>(rng() % 6);
            bif::Tuple tu;
            tu.slot[0] = in;
            cl.tuples.push_back(tu);
        }
        if (c + 1 < num_clauses && rng() % 4 != 0) {
            Instr br;
            unsigned kind = rng() % 3;
            br.op = kind == 0   ? Op::Branch
                    : kind == 1 ? Op::BranchZ
                                : Op::BranchNZ;
            if (br.op != Op::Branch)
                br.src0 = static_cast<uint8_t>(rng() % 8);
            br.imm = static_cast<int32_t>(c + 1 +
                                          rng() % (num_clauses - c - 1));
            bif::Tuple bt;
            bt.slot[1] = br;
            cl.tuples.push_back(bt);
        }
        m.clauses.push_back(cl);
    }
    m.regCount = 8;
    return m;
}

/** Branch/BranchZ/BranchNZ clauses: the fast path, the legacy
 *  interpreter, and the scalar reference must agree bit-exactly on the
 *  final GRF state (the analyzer's CFG is built from the same successor
 *  rules, so all three define the executed paths). */
class BranchDifferential : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(BranchDifferential, AllInterpretersAgree)
{
    uint32_t seed = GetParam();
    bif::Module prog = randomBranchProgram(seed);
    ASSERT_EQ(bif::validate(prog), "");

    // Append the dump stage: out[gid*32 + i*4] = r_i for r0..r7.
    bif::Module dumper = prog;
    bif::Clause dump;
    auto add = [&](Instr in) {
        bif::Tuple t;
        t.slot[0] = in;
        dump.tuples.push_back(t);
        if (dump.tuples.size() == bif::kMaxTuplesPerClause) {
            dumper.clauses.push_back(dump);
            dump.tuples.clear();
        }
    };
    Instr in;
    in = Instr();
    in.op = Op::IMul;
    in.dst = 16;
    in.src0 = bif::kSrGroupIdX;
    in.src1 = bif::kSrLocalSizeX;
    add(in);
    in = Instr();
    in.op = Op::IAdd;
    in.dst = 16;
    in.src0 = 16;
    in.src1 = bif::kSrLocalIdX;
    add(in);
    in = Instr();
    in.op = Op::MovImm;
    in.dst = 18;
    in.imm = 5;
    add(in);
    in = Instr();
    in.op = Op::IShl;
    in.dst = 17;
    in.src0 = 16;
    in.src1 = 18;
    add(in);
    in = Instr();
    in.op = Op::LdArg;
    in.dst = 19;
    in.imm = 0;
    add(in);
    in = Instr();
    in.op = Op::IAdd;
    in.dst = 17;
    in.src0 = 17;
    in.src1 = 19;
    add(in);
    for (int r = 0; r < 8; ++r) {
        in = Instr();
        in.op = Op::StGlobal;
        in.dst = kNone;
        in.src0 = 17;
        in.src1 = static_cast<uint8_t>(r);
        in.imm = r * 4;
        add(in);
    }
    if (!dump.tuples.empty())
        dumper.clauses.push_back(dump);
    bif::Clause fin;
    bif::Tuple rt;
    rt.slot[1].op = Op::Ret;
    fin.tuples.push_back(rt);
    dumper.clauses.push_back(fin);
    dumper.regCount = 20;
    ASSERT_EQ(bif::validate(dumper), "");

    constexpr uint32_t kThreads = 8;
    auto run = [&](bool fast) {
        rt::SystemConfig cfg;
        cfg.gpu.hostThreads = 2;
        cfg.gpu.fastPath = fast;
        rt::Session s(cfg);
        kclc::CompiledKernel ck;
        ck.name = "branchfuzz";
        ck.mod = dumper;
        ck.binary = bif::encode(dumper);
        ck.regCount = dumper.regCount;
        rt::KernelHandle k = s.load(ck);
        rt::Buffer out = s.alloc(kThreads * 32);
        gpu::JobResult r = s.enqueue(
            k, rt::NDRange{kThreads, 1, 1}, rt::NDRange{4, 1, 1},
            {rt::Arg::buf(out)});
        EXPECT_FALSE(r.faulted) << r.fault.detail;
        std::vector<uint32_t> got(kThreads * 8);
        s.read(out, got.data(), got.size() * 4);
        return got;
    };
    std::vector<uint32_t> fast = run(true);
    std::vector<uint32_t> legacy = run(false);
    EXPECT_EQ(fast, legacy) << "seed " << seed;

    for (uint32_t t = 0; t < kThreads; ++t) {
        gpu::ref::RefContext ctx;
        ctx.localId[0] = t % 4;
        ctx.groupId[0] = t / 4;
        ctx.localSize[0] = 4;
        ctx.gridSize[0] = kThreads;
        ctx.numGroups[0] = kThreads / 4;
        ctx.laneId = t % 4;
        gpu::ref::RefResult rr = gpu::ref::runThread(prog, ctx);
        ASSERT_TRUE(rr.ok) << rr.error;
        for (int reg = 0; reg < 8; ++reg) {
            EXPECT_EQ(fast[t * 8 + reg], rr.grf[reg])
                << "seed " << seed << " thread " << t << " r" << reg;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(BranchSeeds, BranchDifferential,
                         ::testing::Range(1u, 25u));

/** The reference interpreter's tracing mode (paper's instruction
 *  tracing validation). */
TEST(RefInterp, TraceMode)
{
    bif::Module m = randomProgram(7);
    gpu::ref::RefContext ctx;
    gpu::ref::RefResult r = gpu::ref::runThread(m, ctx, true);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.trace.size(), r.executedInstrs);
    EXPECT_FALSE(r.trace.empty());
}

/** Runs sgemm1 (naive, no barriers) once and returns output bytes plus
 *  the job's kernel statistics. */
static gpu::JobResult
runSgemm1(bool fast_path, uint32_t n, const std::vector<float> &a,
          const std::vector<float> &b, std::vector<uint8_t> &out_bytes,
          std::vector<uint32_t> *buffer_vas = nullptr)
{
    rt::SystemConfig cfg;
    cfg.gpu.fastPath = fast_path;
    rt::Session s(cfg);
    rt::KernelHandle k =
        s.compile(workloads::sgemmVariantsSource(), "sgemm1");
    size_t bytes = static_cast<size_t>(n) * n * 4;
    rt::Buffer da = s.alloc(bytes), db = s.alloc(bytes),
               dc = s.alloc(bytes);
    s.write(da, a.data(), bytes);
    s.write(db, b.data(), bytes);
    gpu::JobResult r = s.enqueue(
        k, rt::NDRange{n, n, 1}, rt::NDRange{16, 16, 1},
        {rt::Arg::buf(da), rt::Arg::buf(db), rt::Arg::buf(dc),
         rt::Arg::i32(static_cast<int32_t>(n))});
    out_bytes.resize(bytes);
    s.read(dc, out_bytes.data(), bytes);
    if (buffer_vas)
        *buffer_vas = {da.gpuVa, db.gpuVa, dc.gpuVa};
    return r;
}

/** The micro-op fast path and the legacy tuple-walking interpreter must
 *  be observationally identical: bit-identical output buffers AND
 *  identical instrumentation (the fast path folds its counts lazily,
 *  but the totals may not drift). */
TEST(SgemmDifferential, FastPathMatchesLegacyBitExact)
{
    constexpr uint32_t n = 32;
    std::vector<float> a(n * n), b(n * n);
    std::mt19937 rng(42);
    auto rnd = [&] {
        return static_cast<float>(rng() % 65536) / 65536.0f - 0.5f;
    };
    for (float &v : a)
        v = rnd();
    for (float &v : b)
        v = rnd();

    std::vector<uint8_t> out_fast, out_legacy;
    gpu::JobResult rf = runSgemm1(true, n, a, b, out_fast);
    gpu::JobResult rl = runSgemm1(false, n, a, b, out_legacy);
    ASSERT_FALSE(rf.faulted) << rf.fault.detail;
    ASSERT_FALSE(rl.faulted) << rl.fault.detail;

    EXPECT_EQ(out_fast, out_legacy);

    const gpu::KernelStats &f = rf.kernel, &l = rl.kernel;
    EXPECT_EQ(f.arithInstrs, l.arithInstrs);
    EXPECT_EQ(f.lsInstrs, l.lsInstrs);
    EXPECT_EQ(f.cfInstrs, l.cfInstrs);
    EXPECT_EQ(f.nopSlots, l.nopSlots);
    EXPECT_EQ(f.grfReads, l.grfReads);
    EXPECT_EQ(f.grfWrites, l.grfWrites);
    EXPECT_EQ(f.tempAccesses, l.tempAccesses);
    EXPECT_EQ(f.constReads, l.constReads);
    EXPECT_EQ(f.romReads, l.romReads);
    EXPECT_EQ(f.globalLdSt, l.globalLdSt);
    EXPECT_EQ(f.localLdSt, l.localLdSt);
    EXPECT_EQ(f.clausesExecuted, l.clausesExecuted);
    EXPECT_EQ(f.threadsLaunched, l.threadsLaunched);
    EXPECT_EQ(f.warpsLaunched, l.warpsLaunched);
    EXPECT_EQ(f.workgroups, l.workgroups);
    EXPECT_EQ(f.divergentBranches, l.divergentBranches);
    EXPECT_EQ(f.clauseSizes.total(), l.clauseSizes.total());
    EXPECT_EQ(f.cfgEdges, l.cfgEdges);

    // The fast path actually used the translation fast path.
    EXPECT_GT(rf.tlb.lookups(), 0u);
    EXPECT_GT(rf.tlb.hitRate(), 0.9);
}

/** The fast path against the independent scalar reference interpreter
 *  (paper §V-A2), thread by thread over a flat memory image where
 *  GPU VA == vector index. */
TEST(SgemmDifferential, FastPathMatchesScalarReference)
{
    constexpr uint32_t n = 32;
    std::vector<float> a(n * n), b(n * n);
    std::mt19937 rng(7);
    auto rnd = [&] {
        return static_cast<float>(rng() % 65536) / 65536.0f - 0.5f;
    };
    for (float &v : a)
        v = rnd();
    for (float &v : b)
        v = rnd();

    std::vector<uint8_t> out_fast;
    std::vector<uint32_t> vas;
    gpu::JobResult r = runSgemm1(true, n, a, b, out_fast, &vas);
    ASSERT_FALSE(r.faulted) << r.fault.detail;
    const uint32_t va_a = vas[0], va_b = vas[1], va_c = vas[2];

    // Build the flat reference image at the same GPU VAs.
    size_t bytes = static_cast<size_t>(n) * n * 4;
    std::vector<uint8_t> flat(static_cast<size_t>(va_c) + bytes, 0);
    std::memcpy(flat.data() + va_a, a.data(), bytes);
    std::memcpy(flat.data() + va_b, b.data(), bytes);

    kclc::CompiledKernel ck =
        kclc::compileKernel(workloads::sgemmVariantsSource(), "sgemm1");

    std::vector<uint8_t> local(64 * 1024, 0);
    for (uint32_t row = 0; row < n; ++row) {
        for (uint32_t col = 0; col < n; ++col) {
            gpu::ref::RefContext ctx;
            ctx.localId[0] = col % 16;
            ctx.localId[1] = row % 16;
            ctx.groupId[0] = col / 16;
            ctx.groupId[1] = row / 16;
            ctx.localSize[0] = 16;
            ctx.localSize[1] = 16;
            ctx.gridSize[0] = n;
            ctx.gridSize[1] = n;
            ctx.numGroups[0] = n / 16;
            ctx.numGroups[1] = n / 16;
            ctx.laneId =
                (ctx.localId[1] * 16 + ctx.localId[0]) % bif::kWarpWidth;
            ctx.args = {va_a, va_b, va_c, n};
            ctx.globalMem = &flat;
            ctx.localMem = &local;
            gpu::ref::RefResult rr = gpu::ref::runThread(ck.mod, ctx);
            ASSERT_TRUE(rr.ok)
                << rr.error << " at row " << row << " col " << col;
        }
    }

    // Bit-identical C matrix.
    EXPECT_EQ(std::memcmp(out_fast.data(), flat.data() + va_c, bytes), 0);
}

TEST(RefInterp, BudgetGuard)
{
    // An infinite loop trips the instruction budget.
    bif::Module m;
    bif::Clause cl;
    bif::Tuple t;
    t.slot[1].op = Op::Branch;
    t.slot[1].imm = 0;
    cl.tuples.push_back(t);
    m.clauses.push_back(cl);
    gpu::ref::RefContext ctx;
    gpu::ref::RefResult r = gpu::ref::runThread(m, ctx, false, 1000);
    EXPECT_FALSE(r.ok);
}

} // namespace
} // namespace bifsim
