/**
 * @file
 * Snapshot subsystem tests (DESIGN.md §5e): image format validation,
 * per-component round-trips, whole-system restore semantics, and the
 * headline property — restore-then-run is bit-identical to
 * run-through, for sgemm and a divergent-CFG workload, in Direct and
 * FullSystem modes, on both interpreter paths.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "cpu/asm/assembler.h"
#include "cpu/dbt.h"
#include "gpu/shader_core.h"
#include "instrument/stats.h"
#include "mem/phys_mem.h"
#include "runtime/session.h"
#include "snapshot/snapshot.h"
#include "soc/devices.h"

namespace bifsim {
namespace {

using snapshot::ChunkReader;
using snapshot::ChunkWriter;
using snapshot::Image;
using snapshot::SnapshotError;
using snapshot::Writer;
using snapshot::makeTag;

constexpr uint32_t kTagA = makeTag("AAAA");
constexpr uint32_t kTagB = makeTag("BBBB");

// ---------------------------------------------------------------------
// Image format layer
// ---------------------------------------------------------------------

std::vector<uint8_t>
smallImageBytes()
{
    Writer w;
    ChunkWriter &a = w.chunk(kTagA);
    a.u8(0x12);
    a.u16(0x3456);
    a.u32(0xdeadbeef);
    a.u64(0x0123456789abcdefull);
    a.str("hello");
    ChunkWriter &b = w.chunk(kTagB);
    const uint8_t raw[4] = {1, 2, 3, 4};
    b.bytes(raw, sizeof(raw));
    return w.finish();
}

TEST(SnapshotFormat, RoundTrip)
{
    Image img = Image::fromBytes(smallImageBytes());
    EXPECT_EQ(img.version(), snapshot::kVersion);
    ASSERT_TRUE(img.has(kTagA));
    ASSERT_TRUE(img.has(kTagB));
    EXPECT_FALSE(img.has(makeTag("ZZZZ")));

    ChunkReader a = img.chunk(kTagA);
    EXPECT_EQ(a.u8(), 0x12u);
    EXPECT_EQ(a.u16(), 0x3456u);
    EXPECT_EQ(a.u32(), 0xdeadbeefu);
    EXPECT_EQ(a.u64(), 0x0123456789abcdefull);
    EXPECT_EQ(a.str(), "hello");
    EXPECT_NO_THROW(a.expectEnd());

    ChunkReader b = img.chunk(kTagB);
    uint8_t raw[4];
    b.bytes(raw, sizeof(raw));
    EXPECT_EQ(raw[3], 4);
    EXPECT_NO_THROW(b.expectEnd());
}

TEST(SnapshotFormat, RejectsTruncatedHeader)
{
    std::vector<uint8_t> bytes = smallImageBytes();
    bytes.resize(10);
    EXPECT_THROW(Image::fromBytes(std::move(bytes)), SnapshotError);
}

TEST(SnapshotFormat, RejectsBadMagic)
{
    std::vector<uint8_t> bytes = smallImageBytes();
    bytes[0] ^= 0xff;
    EXPECT_THROW(Image::fromBytes(std::move(bytes)), SnapshotError);
}

TEST(SnapshotFormat, RejectsVersionSkew)
{
    std::vector<uint8_t> bytes = smallImageBytes();
    bytes[4] = static_cast<uint8_t>(snapshot::kVersion + 1);
    // ^ version field, little-endian (kVersion < 255 keeps this 1 byte)
    EXPECT_THROW(Image::fromBytes(std::move(bytes)), SnapshotError);
}

TEST(SnapshotFormat, RejectsCorruptPayload)
{
    std::vector<uint8_t> bytes = smallImageBytes();
    bytes[16 + 12] ^= 0x01;   // First payload byte of the first chunk.
    EXPECT_THROW(Image::fromBytes(std::move(bytes)), SnapshotError);
}

TEST(SnapshotFormat, RejectsEveryTruncation)
{
    const std::vector<uint8_t> full = smallImageBytes();
    for (size_t n = 0; n < full.size(); ++n) {
        std::vector<uint8_t> cut(full.begin(), full.begin() + n);
        EXPECT_THROW(Image::fromBytes(std::move(cut)), SnapshotError)
            << "truncation to " << n << " bytes was accepted";
    }
}

TEST(SnapshotFormat, RejectsTrailingBytes)
{
    std::vector<uint8_t> bytes = smallImageBytes();
    bytes.push_back(0);
    EXPECT_THROW(Image::fromBytes(std::move(bytes)), SnapshotError);
}

TEST(SnapshotFormat, WriterRejectsDuplicateTag)
{
    Writer w;
    w.chunk(kTagA);
    EXPECT_THROW(w.chunk(kTagA), SnapshotError);
}

TEST(SnapshotFormat, MissingChunkThrows)
{
    Image img = Image::fromBytes(smallImageBytes());
    EXPECT_THROW(img.chunk(makeTag("ZZZZ")), SnapshotError);
}

TEST(SnapshotFormat, ReaderIsBoundsChecked)
{
    Image img = Image::fromBytes(smallImageBytes());
    ChunkReader b = img.chunk(kTagB);   // 4-byte payload.
    EXPECT_THROW(b.u64(), SnapshotError);
    EXPECT_EQ(b.u16(), 0x0201u);
    EXPECT_THROW(b.expectEnd(), SnapshotError);
    // A hostile length prefix cannot read past the chunk.
    ChunkReader a = img.chunk(kTagA);
    EXPECT_THROW(a.raw(1u << 20), SnapshotError);
}

TEST(SnapshotFormat, Crc32KnownVector)
{
    // The classic IEEE 802.3 check value.
    EXPECT_EQ(snapshot::crc32("123456789", 9), 0xcbf43926u);
}

// ---------------------------------------------------------------------
// Component round-trips
// ---------------------------------------------------------------------

TEST(PhysMemSnapshot, SparseRoundTripElidesZeroPages)
{
    PhysMem a(0x80000000u, 1u << 20);
    a.write<uint32_t>(0x80000000u, 0x11111111u);
    a.write<uint32_t>(0x80042000u + 123, 0x22222222u);
    a.fill(0x800ff000u, 0xab, 4096);

    ChunkWriter w;
    a.saveState(w);
    // Three dirty pages out of 256: the zero pages must be elided.
    EXPECT_LT(w.size(), 4 * 4096u);

    PhysMem b(0x80000000u, 1u << 20);
    b.fill(0x80080000u, 0xff, 8192);   // Dirty state to be overwritten.
    ChunkReader r(snapshot::kTagMem, w.data().data(), w.size());
    b.restoreState(r);
    EXPECT_EQ(0, std::memcmp(a.hostPtr(a.base()), b.hostPtr(b.base()),
                             a.size()));
}

TEST(PhysMemSnapshot, GeometryMismatchRejected)
{
    PhysMem a(0x80000000u, 1u << 20);
    ChunkWriter w;
    a.saveState(w);

    PhysMem wrong_size(0x80000000u, 2u << 20);
    ChunkReader r1(snapshot::kTagMem, w.data().data(), w.size());
    EXPECT_THROW(wrong_size.restoreState(r1), SnapshotError);

    PhysMem wrong_base(0x40000000u, 1u << 20);
    ChunkReader r2(snapshot::kTagMem, w.data().data(), w.size());
    EXPECT_THROW(wrong_base.restoreState(r2), SnapshotError);
}

TEST(DeviceSnapshot, TimerRoundTripKeepsLatch)
{
    soc::Timer t(nullptr);
    t.mmioWrite(soc::Timer::kRegCmpLo, 500);
    t.mmioWrite(soc::Timer::kRegCmpHi, 1);
    t.tick(0xffffffffull);
    (void)t.mmioRead(soc::Timer::kRegTimeLo);   // Arms the HI latch.
    t.tick(1);

    ChunkWriter w;
    t.saveState(w);
    soc::Timer u(nullptr);
    ChunkReader r(snapshot::kTagTimer, w.data().data(), w.size());
    u.restoreState(r);

    EXPECT_EQ(u.now(), 0x100000000ull);
    // The in-flight latched HI read completes identically post-restore.
    EXPECT_EQ(u.mmioRead(soc::Timer::kRegTimeHi), 0u);
    EXPECT_EQ(u.mmioRead(soc::Timer::kRegTimeHi), 1u);
}

TEST(DeviceSnapshot, IntcRestoreDrivesOutputLevel)
{
    soc::Intc src(nullptr);
    src.mmioWrite(soc::Intc::kRegEnable, 0x5);
    src.setLine(0, true);
    ChunkWriter w;
    src.saveState(w);

    bool level = false;
    soc::Intc dst([&](bool l) { level = l; });
    ChunkReader r(snapshot::kTagIntc, w.data().data(), w.size());
    dst.restoreState(r);
    EXPECT_TRUE(level);   // Pending+enabled line re-drives the output.
    EXPECT_EQ(dst.mmioRead(soc::Intc::kRegPending), 0x1u);
    EXPECT_EQ(dst.mmioRead(soc::Intc::kRegEnable), 0x5u);
}

TEST(KernelStatsSnapshot, RoundTripIncludingHistogramAndCfg)
{
    gpu::KernelStats s;
    s.arithInstrs = 123;
    s.divergentBranches = 7;
    s.clauseSizes.sample(3, 40);
    s.clauseSizes.sample(8, 2);
    s.cfgEdges[gpu::cfgEdgeKey(0, 1)] = 64;
    s.cfgEdges[gpu::cfgEdgeKey(1, 5)] = 16;

    ChunkWriter w;
    gpu::saveStats(w, s);
    gpu::KernelStats t;
    ChunkReader r(kTagA, w.data().data(), w.size());
    gpu::restoreStats(r, t);
    EXPECT_NO_THROW(r.expectEnd());

    ChunkWriter w2;
    gpu::saveStats(w2, t);
    EXPECT_EQ(w.data(), w2.data());
    EXPECT_EQ(t.cfgEdges.at(gpu::cfgEdgeKey(1, 5)), 16u);
    EXPECT_EQ(t.clauseSizes.count(3), 40u);
}

TEST(KernelStatsSnapshot, RejectsHostileCounts)
{
    // A bucket count far larger than the payload could ever back must
    // fail before any allocation.
    ChunkWriter w;
    gpu::KernelStats s;
    gpu::saveStats(w, s);
    std::vector<uint8_t> bytes = w.data();
    // Bucket count sits after the 16 u64 scalars.
    uint32_t huge = 0x40000000u;
    std::memcpy(&bytes[16 * 8], &huge, 4);
    gpu::KernelStats t;
    ChunkReader r(kTagA, bytes.data(), bytes.size());
    EXPECT_THROW(gpu::restoreStats(r, t), SnapshotError);
}

// ---------------------------------------------------------------------
// Whole-system restore semantics
// ---------------------------------------------------------------------

rt::SystemConfig
smallCfg(bool fast_path = true, bool sync_submit = false)
{
    rt::SystemConfig cfg;
    cfg.ramBytes = 32u << 20;
    cfg.gpu.fastPath = fast_path;
    cfg.gpu.syncSubmit = sync_submit;
    return cfg;
}

uint32_t
ramCrc(rt::System &sys)
{
    PhysMem &m = sys.mem();
    return snapshot::crc32(m.hostPtr(m.base()), m.size());
}

TEST(SystemSnapshot, RestoreOverDirtySystemLeavesNoResidue)
{
    rt::SystemConfig cfg = smallCfg();
    rt::System src(cfg);
    src.mem().fill(rt::System::kRamBase + 0x1000, 0x5a, 256);
    src.uart().mmioWrite(soc::Uart::kRegThr, 'S');
    src.timer().tick(42);
    Writer w;
    src.saveSnapshot(w);
    Image img = Image::fromBytes(w.finish());

    rt::System dst(cfg);
    dst.mem().fill(rt::System::kRamBase + 0x700000, 0xcc, 4096);
    dst.uart().mmioWrite(soc::Uart::kRegThr, 'X');
    dst.intc().mmioWrite(soc::Intc::kRegEnable, 0xff);
    dst.intc().setLine(3, true);
    dst.timer().tick(99999);

    dst.restoreSnapshot(img);
    EXPECT_EQ(ramCrc(dst), ramCrc(src));
    EXPECT_EQ(dst.uart().output(), "S");
    EXPECT_EQ(dst.timer().now(), 42u);
    EXPECT_EQ(dst.intc().mmioRead(soc::Intc::kRegPending), 0u);
    EXPECT_EQ(dst.intc().mmioRead(soc::Intc::kRegEnable), 0u);
}

TEST(SystemSnapshot, ConfigMismatchRejectedBeforeAnyMutation)
{
    rt::System src(smallCfg());
    Writer w;
    src.saveSnapshot(w);
    Image img = Image::fromBytes(w.finish());

    rt::SystemConfig big = smallCfg();
    big.ramBytes = 64u << 20;
    rt::System dst(big);
    dst.uart().mmioWrite(soc::Uart::kRegThr, 'k');
    EXPECT_THROW(dst.restoreSnapshot(img), SnapshotError);
    // Rejected up front: the target keeps its pre-restore state.
    EXPECT_EQ(dst.uart().output(), "k");
}

/** Re-serialises one validated chunk of @p img as raw bytes. */
std::vector<uint8_t>
chunkBytes(const Image &img, uint32_t tag)
{
    ChunkReader r = img.chunk(tag);
    size_t n = r.remaining();
    const uint8_t *p = r.raw(n);
    return std::vector<uint8_t>(p, p + n);
}

TEST(SystemSnapshot, FailedRestoreResetsInsteadOfHalfApplying)
{
    rt::SystemConfig cfg = smallCfg();
    rt::System src(cfg);
    src.mem().fill(rt::System::kRamBase + 0x2000, 0x77, 512);
    src.uart().mmioWrite(soc::Uart::kRegThr, 'S');
    Writer w;
    src.saveSnapshot(w);
    Image good = Image::fromBytes(w.finish());

    // Rebuild the image with a semantically invalid GPU chunk
    // (JS_STATUS = running): the structure and CRCs are valid, so the
    // failure happens mid-restore, *after* RAM and UART were applied.
    Writer doctored;
    for (uint32_t tag :
         {snapshot::kTagConfig, snapshot::kTagCpu, snapshot::kTagMem,
          snapshot::kTagUart, snapshot::kTagTimer, snapshot::kTagIntc}) {
        std::vector<uint8_t> payload = chunkBytes(good, tag);
        doctored.chunk(tag).bytes(payload.data(), payload.size());
    }
    ChunkWriter &g = doctored.chunk(snapshot::kTagGpu);
    for (int i = 0; i < 6; ++i)
        g.u32(i == 2 ? static_cast<uint32_t>(gpu::kJsRunning) : 0u);
    Image bad = Image::fromBytes(doctored.finish());

    rt::System dst(cfg);
    dst.uart().mmioWrite(soc::Uart::kRegThr, 'X');
    EXPECT_THROW(dst.restoreSnapshot(bad), SnapshotError);
    // Never half-restored: the machine is back at power-on state.
    EXPECT_EQ(dst.uart().output(), "");
    rt::System pristine(cfg);
    EXPECT_EQ(ramCrc(dst), ramCrc(pristine));
    // And it still works: a good restore succeeds afterwards.
    dst.restoreSnapshot(good);
    EXPECT_EQ(dst.uart().output(), "S");
}

TEST(GpuSnapshot, RefusesToSaveWhileChainActive)
{
    rt::Session s(smallCfg(), rt::Mode::Direct);
    rt::System &sys = s.system();

    // One real enqueue installs the translation root and IRQ plumbing.
    const char *src = R"(
kernel void nop1(global int* out) {
    out[get_global_id(0)] = 1;
}
)";
    rt::Buffer out = s.alloc(64 * 4);
    rt::KernelHandle k = s.compile(src, "nop1");
    gpu::JobResult r0 = s.enqueue(k, rt::NDRange{64, 1, 1},
                                  rt::NDRange{64, 1, 1},
                                  {rt::Arg::buf(out)});
    ASSERT_FALSE(r0.faulted);

    // A long chain of null jobs keeps the Job Manager busy while the
    // host attempts a snapshot.
    constexpr uint32_t kDescs = 8192;
    rt::Buffer chain = s.alloc(kDescs * gpu::JobDescriptor::kSizeBytes);
    std::vector<uint8_t> raw(kDescs * gpu::JobDescriptor::kSizeBytes);
    for (uint32_t i = 0; i < kDescs; ++i) {
        gpu::JobDescriptor d;
        d.jobType = gpu::JobDescriptor::kTypeNull;
        d.next = (i + 1 < kDescs)
                     ? chain.gpuVa +
                           (i + 1) * gpu::JobDescriptor::kSizeBytes
                     : 0;
        d.writeTo(&raw[i * gpu::JobDescriptor::kSizeBytes]);
    }
    s.write(chain, raw.data(), raw.size());

    sys.gpu().mmioWrite(gpu::kRegJsSubmit, chain.gpuVa);
    if (!sys.gpu().idle()) {
        Writer w;
        EXPECT_THROW(sys.saveSnapshot(w), SnapshotError);
    }
    sys.gpu().waitIdle();
    Writer w2;
    EXPECT_NO_THROW(sys.saveSnapshot(w2));
}

// ---------------------------------------------------------------------
// Deterministic resume: run-through vs restore-then-run
// ---------------------------------------------------------------------

const char *kSgemmSrc = R"(
kernel void sgemm(global const float* A, global const float* B,
                  global float* C, int n) {
    int col = get_global_id(0);
    int row = get_global_id(1);
    float acc = 0.0f;
    for (int k = 0; k < n; k += 1) {
        acc += A[row * n + k] * B[k * n + col];
    }
    C[row * n + col] = acc;
}
)";

const char *kDivergentSrc = R"(
kernel void divergent(global const int* in, global int* out, int n) {
    int i = get_global_id(0);
    int v = in[i];
    int acc = 0;
    if ((v & 1) == 1) {
        int m = v & 7;
        for (int k = 0; k < m; k += 1) {
            acc += v * k;
        }
    } else {
        acc = v * 3 - 7;
    }
    if (i < n) {
        out[i] = acc;
    }
}
)";

/** Everything guest-visible (plus deterministic host-side statistics)
 *  that must match between run-through and restore-then-run. */
struct Fingerprint
{
    uint32_t ramCrc = 0;
    std::vector<uint32_t> regs;   ///< x0..x31 then the CSR file.
    uint64_t pc = 0;
    uint64_t instret = 0;
    uint64_t timerNow = 0;
    uint32_t intcPending = 0;
    std::string uart;
    std::vector<uint8_t> kernelTotals;   ///< Serialised KernelStats.
    uint64_t driverInstrs = 0;
    uint64_t jobCount = 0;
};

Fingerprint
fingerprint(rt::Session &s)
{
    Fingerprint f;
    rt::System &sys = s.system();
    f.ramCrc = ramCrc(sys);
    sa32::Core &cpu = sys.cpu();
    for (unsigned i = 0; i < sa32::kNumRegs; ++i)
        f.regs.push_back(cpu.reg(i));
    for (uint32_t csr :
         {sa32::kCsrSatp, sa32::kCsrMStatus, sa32::kCsrMIe,
          sa32::kCsrMTvec, sa32::kCsrMScratch, sa32::kCsrMEpc,
          sa32::kCsrMCause, sa32::kCsrMTval, sa32::kCsrMIp})
        f.regs.push_back(cpu.readCsr(csr));
    f.pc = cpu.pc();
    f.instret = cpu.stats().instret;
    f.timerNow = sys.timer().now();
    f.intcPending = sys.intc().mmioRead(soc::Intc::kRegPending);
    f.uart = sys.uart().output();
    ChunkWriter kw;
    gpu::saveStats(kw, sys.gpu().totalKernelStats());
    f.kernelTotals = kw.data();
    f.driverInstrs = s.driverInstructions();
    f.jobCount = sys.gpu().mmioRead(gpu::kRegJsJobCount);
    return f;
}

void
expectEqual(const Fingerprint &a, const Fingerprint &b)
{
    EXPECT_EQ(a.ramCrc, b.ramCrc) << "RAM digest diverged";
    EXPECT_EQ(a.regs, b.regs) << "CPU registers/CSRs diverged";
    EXPECT_EQ(a.pc, b.pc);
    EXPECT_EQ(a.instret, b.instret) << "retired-instruction count";
    EXPECT_EQ(a.timerNow, b.timerNow);
    EXPECT_EQ(a.intcPending, b.intcPending);
    EXPECT_EQ(a.uart, b.uart) << "UART output diverged";
    EXPECT_EQ(a.kernelTotals, b.kernelTotals)
        << "kernel statistics diverged";
    EXPECT_EQ(a.driverInstrs, b.driverInstrs);
    EXPECT_EQ(a.jobCount, b.jobCount);
}

/** One deterministic-resume scenario: set up a workload, run one
 *  enqueue, snapshot, run a second enqueue; then restore the snapshot
 *  into a fresh session and run the same second enqueue there.
 *  @param host_threads  GPU worker-pool size (0 keeps the default).
 *  @param skew_slices   Force the work-stealing path (see GpuConfig).
 *  @return the run-through fingerprint, so callers can additionally
 *  compare fingerprints *across* worker-pool configurations. */
Fingerprint
runDeterminismScenario(rt::Mode mode, bool fast_path, const char *src,
                       const char *name, unsigned host_threads = 0,
                       bool skew_slices = false, bool cpu_dbt = true)
{
    // syncSubmit pins the CPU/GPU interleaving in FullSystem mode;
    // Direct mode is already quiescent around every enqueue.
    rt::SystemConfig cfg =
        smallCfg(fast_path, mode == rt::Mode::FullSystem);
    if (host_threads != 0)
        cfg.gpu.hostThreads = host_threads;
    cfg.gpu.skewSlices = skew_slices;
    cfg.cpuDbt = cpu_dbt;

    constexpr int kN = 16;
    constexpr size_t kBytes = kN * kN * 4;
    const bool is_sgemm = std::strcmp(name, "sgemm") == 0;

    rt::Session s(cfg, mode);
    rt::Buffer b0 = s.alloc(kBytes);
    rt::Buffer b1 = s.alloc(kBytes);
    rt::Buffer b2 = s.alloc(kBytes);
    if (is_sgemm) {
        std::vector<float> init(kN * kN);
        for (int i = 0; i < kN * kN; ++i)
            init[i] = static_cast<float>((i % 23) - 11) * 0.5f;
        s.write(b0, init.data(), kBytes);
        s.write(b1, init.data(), kBytes);
    } else {
        std::vector<int32_t> init(kN * kN);
        for (int i = 0; i < kN * kN; ++i)
            init[i] = static_cast<int32_t>(i * 2654435761u);
        s.write(b0, init.data(), kBytes);
    }
    rt::KernelHandle k = s.compile(src, name);

    auto launch = [&](rt::Session &sess, const rt::KernelHandle &kh,
                      const std::vector<rt::Buffer> &bufs) {
        std::vector<rt::Arg> args;
        rt::NDRange global{kN, 1, 1}, local{8, 1, 1};
        if (is_sgemm) {
            args = {rt::Arg::buf(bufs[0]), rt::Arg::buf(bufs[1]),
                    rt::Arg::buf(bufs[2]), rt::Arg::i32(kN)};
            global = rt::NDRange{kN, kN, 1};
            local = rt::NDRange{8, 8, 1};
        } else {
            args = {rt::Arg::buf(bufs[0]), rt::Arg::buf(bufs[1]),
                    rt::Arg::i32(kN * kN)};
            global = rt::NDRange{kN * kN, 1, 1};
            local = rt::NDRange{32, 1, 1};
        }
        gpu::JobResult r = sess.enqueue(kh, global, local, args);
        EXPECT_FALSE(r.faulted) << r.fault.detail;
    };

    launch(s, k, {b0, b1, b2});

    Writer w;
    s.saveSnapshot(w);
    Image img = Image::fromBytes(w.finish());

    // Path A: keep running in the original session.
    launch(s, k, {b0, b1, b2});
    Fingerprint through = fingerprint(s);

    // Path B: warm-boot a fresh session from the image and run the
    // identical second enqueue.
    auto s2 = rt::Session::fromSnapshot(img, cfg);
    EXPECT_EQ(s2->mode(), mode);
    EXPECT_EQ(s2->kernels().size(), 1u);
    EXPECT_EQ(s2->buffers().size(), 3u);
    launch(*s2, s2->kernels()[0], s2->buffers());
    Fingerprint restored = fingerprint(*s2);

    expectEqual(through, restored);
    return through;
}

TEST(SnapshotDeterminism, DirectSgemmFastPath)
{
    runDeterminismScenario(rt::Mode::Direct, true, kSgemmSrc, "sgemm");
}

TEST(SnapshotDeterminism, DirectSgemmLegacyInterp)
{
    runDeterminismScenario(rt::Mode::Direct, false, kSgemmSrc, "sgemm");
}

TEST(SnapshotDeterminism, DirectDivergentFastPath)
{
    runDeterminismScenario(rt::Mode::Direct, true, kDivergentSrc,
                           "divergent");
}

TEST(SnapshotDeterminism, FullSystemSgemmFastPath)
{
    runDeterminismScenario(rt::Mode::FullSystem, true, kSgemmSrc,
                           "sgemm");
}

TEST(SnapshotDeterminism, FullSystemSgemmLegacyInterp)
{
    runDeterminismScenario(rt::Mode::FullSystem, false, kSgemmSrc,
                           "sgemm");
}

TEST(SnapshotDeterminism, FullSystemDivergentFastPath)
{
    runDeterminismScenario(rt::Mode::FullSystem, true, kDivergentSrc,
                           "divergent");
}

TEST(SnapshotDeterminism, FullSystemSgemmMultiWorker)
{
    // The headline save/continue == restore/continue property must
    // survive genuinely parallel workgroup execution, including the
    // work-stealing path: with the slices skewed onto worker 0, the
    // other seven workers only make progress by stealing, yet every
    // guest-visible artefact must stay a pure function of guest state.
    runDeterminismScenario(rt::Mode::FullSystem, true, kSgemmSrc,
                           "sgemm", /*host_threads=*/8,
                           /*skew_slices=*/true);
}

TEST(SnapshotDeterminism, FullSystemSgemmInterpreterCpuTier)
{
    // Same headline property with the CPU's DBT tier off (interpreter
    // oracle): restore/continue must still equal save/continue.
    runDeterminismScenario(rt::Mode::FullSystem, true, kSgemmSrc,
                           "sgemm", 0, /*skew_slices=*/false,
                           /*cpu_dbt=*/false);
}

TEST(SnapshotDeterminism, FullSystemCpuTierInvariant)
{
    // Whole-system lockstep: the threaded-code DBT tier and the
    // interpreter must produce bit-identical fingerprints (RAM digest,
    // CPU state, retired instructions, timer, UART, kernel statistics)
    // for the same guest-driver workload.
    Fingerprint dbt = runDeterminismScenario(rt::Mode::FullSystem, true,
                                             kSgemmSrc, "sgemm");
    Fingerprint interp = runDeterminismScenario(
        rt::Mode::FullSystem, true, kSgemmSrc, "sgemm", 0,
        /*skew_slices=*/false, /*cpu_dbt=*/false);
    expectEqual(dbt, interp);
}

TEST(SystemSnapshot, RestoreDiscardsDbtTranslations)
{
    rt::SystemConfig cfg = smallCfg();
    rt::System sys(cfg);
    sa32::Program p = sa32::assemble(R"(
        .org 0x80000000
        li   t0, 1000
loop:
        addi t0, t0, -1
        bnez t0, loop
        wfi
    )");
    p.loadInto(sys.mem());
    sys.cpu().reset();
    sys.cpu().run(500);   // Parks mid-loop with the loop translated.
    sa32::Dbt *dbt = sys.cpu().dbt();
    ASSERT_NE(dbt, nullptr);
    EXPECT_GT(dbt->liveBlocks(), 0u);

    Writer w;
    sys.saveSnapshot(w);
    Image img = Image::fromBytes(w.finish());
    sys.restoreSnapshot(img);

    // No translation survives a restore (the image carries no code
    // cache; everything is rebuilt from the restored RAM).
    EXPECT_EQ(dbt->liveBlocks(), 0u);
    EXPECT_EQ(sys.cpu().run(5000), sa32::StopReason::Wfi);
    EXPECT_EQ(sys.cpu().reg(5), 0u);   // Loop completed post-restore.
}

TEST(SnapshotDeterminism, FullSystemSgemmWorkerCountInvariant)
{
    // syncSubmit determinism is also *worker-count* determinism: the
    // fingerprint (RAM digest, CPU state, retired instructions, kernel
    // statistics) must be bit-identical for 1-, 2- and 8-worker pools,
    // because every per-worker contribution merges as a sum or a set
    // union at the job-end barrier.
    Fingerprint one = runDeterminismScenario(rt::Mode::FullSystem, true,
                                             kSgemmSrc, "sgemm", 1);
    Fingerprint two = runDeterminismScenario(rt::Mode::FullSystem, true,
                                             kSgemmSrc, "sgemm", 2);
    Fingerprint eight = runDeterminismScenario(
        rt::Mode::FullSystem, true, kSgemmSrc, "sgemm", 8,
        /*skew_slices=*/true);
    expectEqual(one, two);
    expectEqual(one, eight);
}

TEST(SnapshotDeterminism, RestoredSgemmComputesCorrectResult)
{
    rt::SystemConfig cfg = smallCfg();
    constexpr int kN = 8;
    rt::Session s(cfg, rt::Mode::Direct);
    std::vector<float> a(kN * kN), b(kN * kN), out(kN * kN);
    for (int i = 0; i < kN * kN; ++i) {
        a[i] = static_cast<float>(i % 5);
        b[i] = static_cast<float>((i % 7) - 3);
    }
    rt::Buffer da = s.alloc(a.size() * 4);
    rt::Buffer db = s.alloc(b.size() * 4);
    rt::Buffer dc = s.alloc(out.size() * 4);
    (void)dc;   // Reached through the registry post-restore.
    s.write(da, a.data(), a.size() * 4);
    s.write(db, b.data(), b.size() * 4);
    s.compile(kSgemmSrc, "sgemm");

    Writer w;
    s.saveSnapshot(w);
    auto s2 = rt::Session::fromSnapshot(Image::fromBytes(w.finish()),
                                        cfg);

    // The warm-booted session enqueues without recompiling.
    gpu::JobResult r = s2->enqueue(
        s2->kernels()[0], rt::NDRange{kN, kN, 1}, rt::NDRange{4, 4, 1},
        {rt::Arg::buf(s2->buffers()[0]), rt::Arg::buf(s2->buffers()[1]),
         rt::Arg::buf(s2->buffers()[2]), rt::Arg::i32(kN)});
    ASSERT_FALSE(r.faulted) << r.fault.detail;
    s2->read(s2->buffers()[2], out.data(), out.size() * 4);
    for (int row = 0; row < kN; ++row) {
        for (int col = 0; col < kN; ++col) {
            float want = 0.0f;
            for (int k = 0; k < kN; ++k)
                want += a[row * kN + k] * b[k * kN + col];
            ASSERT_EQ(out[row * kN + col], want)
                << "C[" << row << "," << col << "]";
        }
    }
}

TEST(SessionSnapshot, FileRoundTripAtomicWrite)
{
    rt::SystemConfig cfg = smallCfg();
    rt::Session s(cfg, rt::Mode::Direct);
    rt::Buffer b = s.alloc(4096);
    uint32_t v = 0xfeedface;
    s.write(b, &v, 4);

    std::string path = ::testing::TempDir() + "bifsim_snap_test.bsnp";
    s.saveSnapshot(path);
    auto s2 = rt::Session::fromSnapshot(path, cfg);
    uint32_t got = 0;
    s2->read(s2->buffers()[0], &got, 4);
    EXPECT_EQ(got, 0xfeedfaceu);
    std::remove(path.c_str());
    EXPECT_THROW(rt::Session::fromSnapshot(path, cfg), SnapshotError);
}

} // namespace
} // namespace bifsim
