/** @file Unit tests for the GPU MMU: driver-format page tables,
 *  write protection, TLB behaviour (host-pointer caching, epoch
 *  shootdown) and fault reporting. */

#include <gtest/gtest.h>

#include <vector>

#include "gpu/gmmu.h"
#include "gpu/gpu.h"
#include "mem/phys_mem.h"
#include "runtime/session.h"

namespace bifsim::gpu {
namespace {

constexpr Addr kBase = 0x80000000;

class GpuMmuTest : public ::testing::Test
{
  protected:
    GpuMmuTest() : mem(kBase, 1 << 20), mmu(mem)
    {
        root = kBase + 0x4000;
        l0 = kBase + 0x5000;
        mem.fill(root, 0, 8192);
        mmu.setRoot(root);
    }

    void
    map(uint32_t va, Addr pa, bool writable)
    {
        uint32_t vpn1 = va >> 22, vpn0 = (va >> 12) & 0x3ff;
        mem.write<uint32_t>(root + vpn1 * 4,
                            static_cast<uint32_t>((l0 >> 12) << 10) |
                                kGpuPteValid);
        mem.write<uint32_t>(l0 + vpn0 * 4,
                            static_cast<uint32_t>((pa >> 12) << 10) |
                                kGpuPteValid |
                                (writable ? static_cast<uint32_t>(
                                                kGpuPteWrite)
                                          : 0u));
    }

    PhysMem mem;
    GpuMmu mmu;
    GpuTlb tlb;
    Addr root, l0;
};

TEST_F(GpuMmuTest, TranslateBasic)
{
    map(0x00100000, kBase + 0x8000, true);
    Addr pa = 0;
    ASSERT_TRUE(mmu.translate(0x00100abc, false, tlb, pa));
    EXPECT_EQ(pa, kBase + 0x8abc);
    ASSERT_TRUE(mmu.translate(0x00100abc, true, tlb, pa));
}

TEST_F(GpuMmuTest, ReadOnlyBlocksWrites)
{
    map(0x00100000, kBase + 0x8000, false);
    Addr pa = 0;
    EXPECT_TRUE(mmu.translate(0x00100000, false, tlb, pa));
    EXPECT_FALSE(mmu.translate(0x00100000, true, tlb, pa));
}

TEST_F(GpuMmuTest, UnmappedFails)
{
    Addr pa = 0;
    EXPECT_FALSE(mmu.translate(0x00300000, false, tlb, pa));
}

TEST_F(GpuMmuTest, NullRootFails)
{
    mmu.setRoot(0);
    Addr pa = 0;
    EXPECT_FALSE(mmu.translate(0x00100000, false, tlb, pa));
}

TEST_F(GpuMmuTest, TlbAvoidsRepeatWalks)
{
    map(0x00100000, kBase + 0x8000, true);
    Addr pa = 0;
    mmu.translate(0x00100000, false, tlb, pa);
    // Walk counts are per-TLB (thread-local) — no shared counter.
    uint64_t walks = tlb.walks;
    for (int i = 0; i < 100; ++i)
        mmu.translate(0x00100000 + i * 4, false, tlb, pa);
    EXPECT_EQ(tlb.walks, walks);
    tlb.flush();
    mmu.translate(0x00100000, false, tlb, pa);
    EXPECT_EQ(tlb.walks, walks + 1);
}

TEST_F(GpuMmuTest, TlbCachesWritePermission)
{
    map(0x00100000, kBase + 0x8000, false);
    Addr pa = 0;
    // Prime the TLB with a read, then try to write through the entry.
    ASSERT_TRUE(mmu.translate(0x00100000, false, tlb, pa));
    EXPECT_FALSE(mmu.translate(0x00100004, true, tlb, pa));
}

TEST_F(GpuMmuTest, DistinctPagesDistinctFrames)
{
    map(0x00100000, kBase + 0x8000, true);
    map(0x00101000, kBase + 0x20000, true);
    Addr pa1 = 0, pa2 = 0;
    ASSERT_TRUE(mmu.translate(0x00100000, false, tlb, pa1));
    ASSERT_TRUE(mmu.translate(0x00101000, false, tlb, pa2));
    EXPECT_EQ(pa1, kBase + 0x8000);
    EXPECT_EQ(pa2, kBase + 0x20000);
}

TEST_F(GpuMmuTest, PageTableOutsideRamFails)
{
    mmu.setRoot(0x10000000);   // Not RAM.
    Addr pa = 0;
    EXPECT_FALSE(mmu.translate(0x00100000, false, tlb, pa));
}

TEST_F(GpuMmuTest, LookupCachesHostPointer)
{
    map(0x00100000, kBase + 0x8000, true);
    tlb.syncEpoch(mmu);
    const GpuTlb::Entry *e = mmu.lookup(0x00100040, false, tlb);
    ASSERT_NE(e, nullptr);
    ASSERT_NE(e->host, nullptr);
    EXPECT_EQ(e->host, mem.hostPtr(kBase + 0x8000));
    EXPECT_TRUE(e->writable);
    // Repeat lookups are served from the TLB array without walking
    // (the one-entry last-page cache sits in the executor, above this
    // layer, and is exercised by the workload/differential tests).
    uint64_t walks = tlb.walks;
    for (int i = 0; i < 16; ++i)
        EXPECT_NE(mmu.lookup(0x00100000 + i * 64, false, tlb), nullptr);
    EXPECT_EQ(tlb.walks, walks);
    EXPECT_GE(tlb.arrayHits, 16u);
    EXPECT_EQ(tlb.last, e);
}

TEST_F(GpuMmuTest, AsCommandEpochBumpInvalidatesHostPointerEntries)
{
    // Prime a host-pointer TLB entry through a GpuDevice's MMU, then
    // write AS_COMMAND: the broadcast TLB flush must invalidate the
    // cached translation at the worker's next epoch check.
    GpuDevice dev(mem, GpuConfig{}, [](bool) {});
    GpuMmu &dmmu = dev.mmu();
    dmmu.setRoot(root);
    map(0x00100000, kBase + 0x8000, true);

    GpuTlb wtlb;
    wtlb.syncEpoch(dmmu);
    const GpuTlb::Entry *e = dmmu.lookup(0x00100000, false, wtlb);
    ASSERT_NE(e, nullptr);
    ASSERT_NE(e->host, nullptr);
    uint64_t walks = wtlb.walks;

    uint64_t epoch_before = dmmu.epoch();
    dev.mmioWrite(kRegAsCommand, 1);
    EXPECT_GT(dmmu.epoch(), epoch_before);

    // The worker's lazy check notices the stale epoch and flushes.
    EXPECT_TRUE(wtlb.syncEpoch(dmmu));
    EXPECT_EQ(wtlb.last, nullptr);
    EXPECT_EQ(wtlb.entries[(0x00100000 >> kGpuPageShift) %
                           GpuTlb::kEntries].vpn,
              GpuTlb::kInvalidVpn);

    // The next lookup must re-walk the (possibly rewritten) tables.
    ASSERT_NE(dmmu.lookup(0x00100000, false, wtlb), nullptr);
    EXPECT_EQ(wtlb.walks, walks + 1);

    // Unchanged epoch: the lazy check is a no-op.
    EXPECT_FALSE(wtlb.syncEpoch(dmmu));
}

TEST_F(GpuMmuTest, WriteThroughReadOnlyCachedEntryFaults)
{
    map(0x00100000, kBase + 0x8000, false);
    tlb.syncEpoch(mmu);
    // Prime with a read: the entry is cached with a valid host pointer
    // but writable=false, and becomes the last-page cache.
    const GpuTlb::Entry *e = mmu.lookup(0x00100000, false, tlb);
    ASSERT_NE(e, nullptr);
    ASSERT_NE(e->host, nullptr);
    EXPECT_FALSE(e->writable);
    // A write through either fast-path tier must still fault.
    EXPECT_EQ(mmu.lookup(0x00100000, true, tlb), nullptr);   // last-page
    tlb.last = nullptr;
    EXPECT_EQ(mmu.lookup(0x00100004, true, tlb), nullptr);   // array hit
    // Reads keep working afterwards.
    EXPECT_NE(mmu.lookup(0x00100008, false, tlb), nullptr);
}

TEST(GpuDecodeCache, GpuCmdFlushForcesRedecode)
{
    const char *src = R"(
kernel void copy(global const int* in, global int* out, int n) {
    int i = get_global_id(0);
    if (i < n) {
        out[i] = in[i];
    }
}
)";
    rt::Session s;
    rt::KernelHandle k = s.compile(src, "copy");
    rt::Buffer a = s.alloc(4096), b = s.alloc(4096);
    std::vector<rt::Arg> args = {rt::Arg::buf(a), rt::Arg::buf(b),
                                 rt::Arg::i32(64)};
    rt::NDRange g{64, 1, 1}, l{64, 1, 1};

    s.enqueue(k, g, l, args);
    ShaderCacheStats cs = s.system().gpu().shaderCacheStats();
    EXPECT_EQ(cs.decodes, 1u);

    // A second launch hits the decode cache.
    s.enqueue(k, g, l, args);
    cs = s.system().gpu().shaderCacheStats();
    EXPECT_EQ(cs.decodes, 1u);
    EXPECT_GE(cs.hits, 1u);

    // GPU_CMD = 1 flushes the decode cache: the next launch re-decodes
    // (the binary may have been rewritten in place).
    s.system().gpu().mmioWrite(kRegGpuCmd, 1);
    s.enqueue(k, g, l, args);
    cs = s.system().gpu().shaderCacheStats();
    EXPECT_EQ(cs.decodes, 2u);
}

} // namespace
} // namespace bifsim::gpu
