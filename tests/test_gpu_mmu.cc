/** @file Unit tests for the GPU MMU: driver-format page tables,
 *  write protection, TLB behaviour and fault reporting. */

#include <gtest/gtest.h>

#include "gpu/gmmu.h"
#include "mem/phys_mem.h"

namespace bifsim::gpu {
namespace {

constexpr Addr kBase = 0x80000000;

class GpuMmuTest : public ::testing::Test
{
  protected:
    GpuMmuTest() : mem(kBase, 1 << 20), mmu(mem)
    {
        root = kBase + 0x4000;
        l0 = kBase + 0x5000;
        mem.fill(root, 0, 8192);
        mmu.setRoot(root);
    }

    void
    map(uint32_t va, Addr pa, bool writable)
    {
        uint32_t vpn1 = va >> 22, vpn0 = (va >> 12) & 0x3ff;
        mem.write<uint32_t>(root + vpn1 * 4,
                            static_cast<uint32_t>((l0 >> 12) << 10) |
                                kGpuPteValid);
        mem.write<uint32_t>(l0 + vpn0 * 4,
                            static_cast<uint32_t>((pa >> 12) << 10) |
                                kGpuPteValid |
                                (writable ? kGpuPteWrite : 0));
    }

    PhysMem mem;
    GpuMmu mmu;
    GpuTlb tlb;
    Addr root, l0;
};

TEST_F(GpuMmuTest, TranslateBasic)
{
    map(0x00100000, kBase + 0x8000, true);
    Addr pa = 0;
    ASSERT_TRUE(mmu.translate(0x00100abc, false, tlb, pa));
    EXPECT_EQ(pa, kBase + 0x8abc);
    ASSERT_TRUE(mmu.translate(0x00100abc, true, tlb, pa));
}

TEST_F(GpuMmuTest, ReadOnlyBlocksWrites)
{
    map(0x00100000, kBase + 0x8000, false);
    Addr pa = 0;
    EXPECT_TRUE(mmu.translate(0x00100000, false, tlb, pa));
    EXPECT_FALSE(mmu.translate(0x00100000, true, tlb, pa));
}

TEST_F(GpuMmuTest, UnmappedFails)
{
    Addr pa = 0;
    EXPECT_FALSE(mmu.translate(0x00300000, false, tlb, pa));
}

TEST_F(GpuMmuTest, NullRootFails)
{
    mmu.setRoot(0);
    Addr pa = 0;
    EXPECT_FALSE(mmu.translate(0x00100000, false, tlb, pa));
}

TEST_F(GpuMmuTest, TlbAvoidsRepeatWalks)
{
    map(0x00100000, kBase + 0x8000, true);
    Addr pa = 0;
    mmu.translate(0x00100000, false, tlb, pa);
    uint64_t walks = mmu.walkCount();
    for (int i = 0; i < 100; ++i)
        mmu.translate(0x00100000 + i * 4, false, tlb, pa);
    EXPECT_EQ(mmu.walkCount(), walks);
    tlb.flush();
    mmu.translate(0x00100000, false, tlb, pa);
    EXPECT_EQ(mmu.walkCount(), walks + 1);
}

TEST_F(GpuMmuTest, TlbCachesWritePermission)
{
    map(0x00100000, kBase + 0x8000, false);
    Addr pa = 0;
    // Prime the TLB with a read, then try to write through the entry.
    ASSERT_TRUE(mmu.translate(0x00100000, false, tlb, pa));
    EXPECT_FALSE(mmu.translate(0x00100004, true, tlb, pa));
}

TEST_F(GpuMmuTest, DistinctPagesDistinctFrames)
{
    map(0x00100000, kBase + 0x8000, true);
    map(0x00101000, kBase + 0x20000, true);
    Addr pa1 = 0, pa2 = 0;
    ASSERT_TRUE(mmu.translate(0x00100000, false, tlb, pa1));
    ASSERT_TRUE(mmu.translate(0x00101000, false, tlb, pa2));
    EXPECT_EQ(pa1, kBase + 0x8000);
    EXPECT_EQ(pa2, kBase + 0x20000);
}

TEST_F(GpuMmuTest, PageTableOutsideRamFails)
{
    mmu.setRoot(0x10000000);   // Not RAM.
    Addr pa = 0;
    EXPECT_FALSE(mmu.translate(0x00100000, false, tlb, pa));
}

} // namespace
} // namespace bifsim::gpu
