/** @file Unit tests for the CPU MMU: translation, permissions, TLB,
 *  megapages, and user-mode execution behind paging. */

#include <gtest/gtest.h>

#include "cpu/asm/assembler.h"
#include "cpu/core.h"
#include "cpu/mmu.h"
#include "mem/bus.h"
#include "mem/phys_mem.h"

namespace bifsim::sa32 {
namespace {

constexpr Addr kBase = 0x80000000;

class MmuTest : public ::testing::Test
{
  protected:
    MmuTest() : mem(kBase, 1 << 20)
    {
        bus.attachMemory(&mem);
        mmu = std::make_unique<CpuMmu>(bus);
        root = kBase + 0x10000;
        l0 = kBase + 0x11000;
        mem.fill(root, 0, 8192);
    }

    /** Maps 4KiB VA page -> PA page with @p perms. */
    void
    map(uint32_t va, Addr pa, uint32_t perms)
    {
        uint32_t vpn1 = va >> 22, vpn0 = (va >> 12) & 0x3ff;
        mem.write<uint32_t>(root + vpn1 * 4,
                            static_cast<uint32_t>((l0 >> 12) << 10) |
                                kPteValid);
        mem.write<uint32_t>(l0 + vpn0 * 4,
                            static_cast<uint32_t>((pa >> 12) << 10) |
                                perms | kPteValid);
    }

    uint32_t
    satp() const
    {
        return 0x80000000u | static_cast<uint32_t>(root >> 12);
    }

    PhysMem mem;
    Bus bus;
    std::unique_ptr<CpuMmu> mmu;
    Addr root, l0;
};

TEST_F(MmuTest, MachineModeBypassesTranslation)
{
    TranslateResult r = mmu->translate(0xdeadbeec, AccessType::Load,
                                       Priv::Machine, satp());
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.pa, 0xdeadbeecu);
}

TEST_F(MmuTest, PagingDisabledIsIdentity)
{
    TranslateResult r =
        mmu->translate(0x1234, AccessType::Load, Priv::User, 0);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.pa, 0x1234u);
}

TEST_F(MmuTest, BasicTranslation)
{
    map(0x00400000, kBase + 0x20000, kPteRead | kPteWrite | kPteUser);
    TranslateResult r = mmu->translate(0x00400abc, AccessType::Load,
                                       Priv::User, satp());
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.pa, kBase + 0x20abc);
}

TEST_F(MmuTest, PermissionChecks)
{
    map(0x00400000, kBase + 0x20000, kPteRead | kPteUser);
    EXPECT_TRUE(mmu->translate(0x00400000, AccessType::Load, Priv::User,
                               satp())
                    .ok);
    TranslateResult w = mmu->translate(0x00400000, AccessType::Store,
                                       Priv::User, satp());
    EXPECT_FALSE(w.ok);
    EXPECT_EQ(w.cause, kCauseStorePageFault);
    TranslateResult x = mmu->translate(0x00400000, AccessType::Fetch,
                                       Priv::User, satp());
    EXPECT_FALSE(x.ok);
    EXPECT_EQ(x.cause, kCauseFetchPageFault);
}

TEST_F(MmuTest, NonUserPageFaultsInUserMode)
{
    map(0x00400000, kBase + 0x20000, kPteRead | kPteWrite | kPteExec);
    TranslateResult r = mmu->translate(0x00400000, AccessType::Load,
                                       Priv::User, satp());
    EXPECT_FALSE(r.ok);
}

TEST_F(MmuTest, UnmappedFaults)
{
    TranslateResult r = mmu->translate(0x00800000, AccessType::Load,
                                       Priv::User, satp());
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.cause, kCauseLoadPageFault);
}

TEST_F(MmuTest, MegapageTranslation)
{
    // Level-1 leaf: map 4 MiB VA 0x00800000 -> PA kBase.
    uint32_t vpn1 = 0x00800000 >> 22;
    mem.write<uint32_t>(root + vpn1 * 4,
                        static_cast<uint32_t>((kBase >> 12) << 10) |
                            kPteRead | kPteUser | kPteValid);
    TranslateResult r = mmu->translate(0x00800000 + 0x123456,
                                       AccessType::Load, Priv::User,
                                       satp());
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.pa, kBase + 0x123456);
}

TEST_F(MmuTest, TlbCachesAndFlushes)
{
    map(0x00400000, kBase + 0x20000, kPteRead | kPteUser);
    mmu->translate(0x00400000, AccessType::Load, Priv::User, satp());
    uint64_t walks = mmu->stats().pageWalks;
    mmu->translate(0x00400004, AccessType::Load, Priv::User, satp());
    EXPECT_EQ(mmu->stats().pageWalks, walks);   // TLB hit.
    mmu->flushTlb();
    mmu->translate(0x00400008, AccessType::Load, Priv::User, satp());
    EXPECT_EQ(mmu->stats().pageWalks, walks + 1);
}

TEST_F(MmuTest, StaleTlbAfterRemapRequiresFlush)
{
    map(0x00400000, kBase + 0x20000, kPteRead | kPteUser);
    mmu->translate(0x00400000, AccessType::Load, Priv::User, satp());
    map(0x00400000, kBase + 0x30000, kPteRead | kPteUser);
    TranslateResult r = mmu->translate(0x00400000, AccessType::Load,
                                       Priv::User, satp());
    EXPECT_EQ(r.pa, kBase + 0x20000u);   // Stale entry (by design).
    mmu->flushTlb();
    r = mmu->translate(0x00400000, AccessType::Load, Priv::User, satp());
    EXPECT_EQ(r.pa, kBase + 0x30000u);
}

TEST_F(MmuTest, UserModeExecutionWithSyscall)
{
    // Machine-mode stub: set up paging, drop to user mode; user code
    // ecalls back, handler records and halts.
    Program os = assemble(R"(
        .org 0x80000000
        la   t0, handler
        csrw mtvec, t0
        li   t0, SATP
        csrw satp, t0
        li   t0, 0x00400000
        csrw mepc, t0
        li   t0, 0x80        # MPIE, MPP=User
        csrw mstatus, t0
        mret
handler:
        csrr a1, mcause
        halt
    )", {{"SATP", 0x80000000u | (root >> 12)}});
    os.loadInto(mem);

    Program user = assemble(R"(
        .org 0x00400000
        li   a0, 1234
        ecall
    )");
    Addr user_pa = kBase + 0x40000;
    mem.writeBlock(user_pa, user.bytes.data(), user.bytes.size());

    map(0x00400000, user_pa,
        kPteRead | kPteWrite | kPteExec | kPteUser);

    Core core(bus);
    StopReason r = core.run(10000);
    EXPECT_EQ(r, StopReason::Halt);
    EXPECT_EQ(core.reg(10), 1234u);
    EXPECT_EQ(core.reg(11), kCauseECallU);
}

TEST_F(MmuTest, UserFetchFromUnmappedTraps)
{
    Program os = assemble(R"(
        .org 0x80000000
        la   t0, handler
        csrw mtvec, t0
        li   t0, SATP
        csrw satp, t0
        li   t0, 0x00700000      # not mapped
        csrw mepc, t0
        li   t0, 0x80
        csrw mstatus, t0
        mret
handler:
        csrr a1, mcause
        csrr a2, mtval
        halt
    )", {{"SATP", 0x80000000u | (root >> 12)}});
    os.loadInto(mem);
    Core core(bus);
    core.run(10000);
    EXPECT_EQ(core.reg(11), kCauseFetchPageFault);
    EXPECT_EQ(core.reg(12), 0x00700000u);
}

} // namespace
} // namespace bifsim::sa32
