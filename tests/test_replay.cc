/** @file Record/replay of the CPU<->GPU boundary (DESIGN.md §5h):
 *  BRPL round trips across interpreter tiers and worker counts,
 *  faulting-workload replay, restore-then-trace/record, the
 *  worker-count fault-determinism regression, and log-mutation fuzz
 *  (truncation, bit flips, hostile counts). */

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

#include "gpu/gpu.h"
#include "gpu/isa/bif.h"
#include "replay/replay.h"
#include "runtime/session.h"

namespace bifsim {
namespace {

namespace snap = snapshot;

// ------------------------------------------------------------ Helpers

/** Decoded scalar prefix of one RFPR event. */
struct Fp
{
    uint32_t jobCount, jsStatus, irqRaw, faultStatus, faultAddress;
    uint32_t ramCrc;
    uint8_t faulted, faultKind;
    uint32_t faultVa;
};

std::vector<Fp>
fingerprints(const replay::Log &log)
{
    std::vector<Fp> out;
    for (size_t i = 0; i < log.eventCount(); ++i) {
        if (log.kind(i) != replay::kEvFingerprint)
            continue;
        snap::ChunkReader r = log.reader(i);
        Fp f;
        f.jobCount = r.u32();
        f.jsStatus = r.u32();
        f.irqRaw = r.u32();
        f.faultStatus = r.u32();
        f.faultAddress = r.u32();
        f.ramCrc = r.u32();
        f.faulted = r.u8();
        f.faultKind = r.u8();
        f.faultVa = r.u32();
        out.push_back(f);
    }
    return out;
}

/** Union of all RIRQ bits in the log. */
uint32_t
irqBits(const replay::Log &log)
{
    uint32_t bits = 0;
    for (size_t i = 0; i < log.eventCount(); ++i) {
        if (log.kind(i) != replay::kEvIrq)
            continue;
        snap::ChunkReader r = log.reader(i);
        bits |= r.u32();
    }
    return bits;
}

/** Replays @p log across fast/legacy x worker counts; every run must
 *  validate cleanly. */
void
expectReplaysEverywhere(const replay::Log &log)
{
    for (bool fast : {true, false}) {
        for (unsigned threads : {1u, 2u, 4u}) {
            replay::ReplayOptions opt;
            opt.fastPath = fast;
            opt.hostThreads = threads;
            replay::ReplayResult r = replay::replay(log, opt);
            EXPECT_TRUE(r.ok)
                << "fast=" << fast << " threads=" << threads << ": "
                << r.divergence;
        }
    }
}

rt::SystemConfig
recordableConfig(size_t ram_bytes = 16u << 20, unsigned threads = 2)
{
    rt::SystemConfig cfg;
    cfg.ramBytes = ram_bytes;
    cfg.gpu.hostThreads = threads;
    cfg.gpu.syncSubmit = true;
    return cfg;
}

const char *kScaleSrc = R"(
kernel void scale(global const int* in, global int* out, int n) {
    int i = get_global_id(0);
    if (i < n) {
        out[i] = in[i] * 3 + 1;
    }
}
)";

/** Builds a minimal raw BIF module (one clause per instruction list),
 *  mirroring the test_gpu_exec idiom. */
bif::Instr
mk(bif::Op op, uint8_t dst, uint8_t s0, uint8_t s1, uint8_t s2,
   int32_t imm)
{
    bif::Instr i;
    i.op = op;
    i.dst = dst;
    i.src0 = s0;
    i.src1 = s1;
    i.src2 = s2;
    i.imm = imm;
    return i;
}

rt::KernelHandle
loadRawModule(rt::Session &s, const std::vector<bif::Instr> &instrs,
              std::vector<uint32_t> rom, uint32_t reg_count)
{
    bif::Module m;
    bif::Clause cl;
    for (const bif::Instr &in : instrs) {
        bif::Tuple t;
        if (bif::legalInSlot0(in.op))
            t.slot[0] = in;
        else
            t.slot[1] = in;
        cl.tuples.push_back(t);
    }
    m.clauses.push_back(cl);
    m.rom = std::move(rom);
    m.regCount = reg_count;

    kclc::CompiledKernel ck;
    ck.name = "raw";
    ck.mod = m;
    ck.binary = bif::encode(m);
    ck.regCount = m.regCount;
    return s.load(ck);
}

// -------------------------------------------------- Basic round trips

TEST(Replay, DirectRecordReplaysAcrossTiersAndWorkerCounts)
{
    rt::Session s(recordableConfig(), rt::Mode::Direct);
    rt::KernelHandle k = s.compile(kScaleSrc, "scale");
    rt::Buffer in = s.alloc(256 * 4);
    rt::Buffer out = s.alloc(256 * 4);
    for (uint32_t i = 0; i < 256; ++i) {
        int32_t v = static_cast<int32_t>(i * 7 + 3);
        s.write(in, &v, 4, i * 4);
    }

    s.startRecording();
    gpu::JobResult r1 =
        s.enqueue(k, rt::NDRange{256, 1, 1}, rt::NDRange{64, 1, 1},
                  {rt::Arg::buf(in), rt::Arg::buf(out),
                   rt::Arg::i32(256)});
    ASSERT_FALSE(r1.faulted);
    // Rewrite the input between chains so the second delta is a real
    // incremental one (not the initial full snapshot).
    for (uint32_t i = 0; i < 256; ++i) {
        int32_t v = static_cast<int32_t>(1000 - i);
        s.write(in, &v, 4, i * 4);
    }
    gpu::JobResult r2 =
        s.enqueue(k, rt::NDRange{256, 1, 1}, rt::NDRange{64, 1, 1},
                  {rt::Arg::buf(in), rt::Arg::buf(out),
                   rt::Arg::i32(256)});
    ASSERT_FALSE(r2.faulted);

    replay::Log log = replay::Log::fromBytes(s.stopRecording());
    EXPECT_EQ(fingerprints(log).size(), 2u);
    EXPECT_FALSE(log.config().fullSystem);

    expectReplaysEverywhere(log);

    // The replayed device reproduces the final job result without any
    // Session attached.
    replay::ReplayResult rep = replay::replay(log, {});
    ASSERT_TRUE(rep.ok) << rep.divergence;
    EXPECT_EQ(rep.chains, 2u);
    EXPECT_EQ(rep.lastJob.kernel.threadsLaunched,
              r2.kernel.threadsLaunched);

    // The fast path (no re-record, no per-chain RAM scans) still runs
    // every chain and lands in the same final state.
    replay::ReplayOptions fast;
    fast.validate = false;
    replay::ReplayResult frep = replay::replay(log, fast);
    EXPECT_TRUE(frep.ok);
    EXPECT_EQ(frep.chains, 2u);
    EXPECT_EQ(frep.lastJob.kernel.threadsLaunched,
              r2.kernel.threadsLaunched);
}

TEST(Replay, FullSystemRecordReplaysWithoutCpu)
{
    rt::SystemConfig cfg = recordableConfig(32u << 20);
    rt::Session s(cfg, rt::Mode::FullSystem);
    rt::KernelHandle k = s.compile(kScaleSrc, "scale");
    rt::Buffer in = s.alloc(64 * 4);
    rt::Buffer out = s.alloc(64 * 4);
    for (uint32_t i = 0; i < 64; ++i) {
        int32_t v = static_cast<int32_t>(i);
        s.write(in, &v, 4, i * 4);
    }

    s.startRecording();
    gpu::JobResult r =
        s.enqueue(k, rt::NDRange{64, 1, 1}, rt::NDRange{16, 1, 1},
                  {rt::Arg::buf(in), rt::Arg::buf(out),
                   rt::Arg::i32(64)});
    ASSERT_FALSE(r.faulted);
    EXPECT_GT(s.driverInstructions(), 0u);
    replay::Log log = replay::Log::fromBytes(s.stopRecording());
    EXPECT_TRUE(log.config().fullSystem);

    // The acceptance bar: a FullSystem recording replays bit-identical
    // with no CPU/guest OS, across interpreter tiers and >=2 worker
    // counts.
    expectReplaysEverywhere(log);
}

TEST(Replay, RecordingRequiresSyncSubmit)
{
    rt::SystemConfig cfg = recordableConfig();
    cfg.gpu.syncSubmit = false;
    rt::Session s(cfg, rt::Mode::Direct);
    EXPECT_THROW(s.startRecording(), SimError);
}

// ------------------------------------- Worker-count fault determinism

/** Every group stores its slot, then groups 0 (late, after a long
 *  delay loop) and n-1 (immediately) store through unmapped VAs.  With
 *  the old global fault early-stop, multi-worker runs latched whichever
 *  group's fault arrived first (group n-1, microseconds before slow
 *  group 0) and silently skipped the remaining groups' stores; the
 *  reported AS_FAULTADDRESS and the output buffer depended on worker
 *  count.  Now every group runs, a fault stops only its own group, and
 *  the lowest faulting group wins. */
const char *kDeterministicFaultSrc = R"(
kernel void dfault(global int* out, int n) {
    int g = get_group_id(0);
    int acc = 0;
    if (g == 0) {
        for (int k = 0; k < 2000000; k += 1) {
            acc += (k & 7) + 1;
        }
    }
    out[g] = g + 1 + (acc & 1);
    if (g == 0) {
        out[1048576 + g] = 7;
    }
    if (g == n - 1) {
        out[1048576 + g] = 7;
    }
}
)";

TEST(Replay, FaultStateIsWorkerCountInvariant)
{
    constexpr uint32_t kGroups = 64;
    gpu::JobResult results[2];
    std::vector<int32_t> outs[2];
    unsigned counts[2] = {1, 4};
    uint32_t out_va = 0;
    for (int run = 0; run < 2; ++run) {
        rt::SystemConfig cfg;
        cfg.ramBytes = 16u << 20;
        cfg.gpu.hostThreads = counts[run];
        rt::Session s(cfg, rt::Mode::Direct);
        rt::KernelHandle k = s.compile(kDeterministicFaultSrc, "dfault");
        rt::Buffer out = s.alloc(kGroups * 4);
        out_va = out.gpuVa;
        gpu::JobResult r = s.enqueue(
            k, rt::NDRange{kGroups, 1, 1}, rt::NDRange{1, 1, 1},
            {rt::Arg::buf(out), rt::Arg::i32(kGroups)});
        results[run] = r;
        outs[run].resize(kGroups);
        s.read(out, outs[run].data(), kGroups * 4);
    }

    ASSERT_TRUE(results[0].faulted);
    ASSERT_TRUE(results[1].faulted);
    EXPECT_EQ(results[0].fault.kind, gpu::JobFaultKind::MmuFault);
    // Lowest faulting group (0) wins regardless of arrival order; the
    // old first-to-arrive latch reported group 63's VA on multi-worker
    // runs because group 0 faults last.
    uint32_t group0_va = out_va + 4u * 1048576u;
    EXPECT_EQ(results[0].fault.va, group0_va);
    EXPECT_EQ(results[1].fault.va, group0_va);
    EXPECT_EQ(results[0].fault.kind, results[1].fault.kind);
    // Every group's store landed on both runs: no early-stop skipped
    // work on the 1-worker run, no cross-group abort on the 4-worker
    // run.
    EXPECT_EQ(outs[0], outs[1]);
    for (uint32_t g = 1; g < kGroups; ++g)
        EXPECT_EQ(outs[0][g], static_cast<int32_t>(g + 1)) << g;
}

// -------------------------------------------------- Faulting replays

TEST(Replay, MmuFaultReplaysExactly)
{
    rt::Session s(recordableConfig(), rt::Mode::Direct);
    rt::KernelHandle k = s.compile(kDeterministicFaultSrc, "dfault");
    rt::Buffer out = s.alloc(64 * 4);

    s.startRecording();
    gpu::JobResult r =
        s.enqueue(k, rt::NDRange{64, 1, 1}, rt::NDRange{1, 1, 1},
                  {rt::Arg::buf(out), rt::Arg::i32(64)});
    ASSERT_TRUE(r.faulted);
    ASSERT_EQ(r.fault.kind, gpu::JobFaultKind::MmuFault);
    replay::Log log = replay::Log::fromBytes(s.stopRecording());

    std::vector<Fp> fps = fingerprints(log);
    ASSERT_EQ(fps.size(), 1u);
    EXPECT_EQ(fps[0].faultStatus,
              static_cast<uint32_t>(gpu::JobFaultKind::MmuFault));
    EXPECT_EQ(fps[0].faultAddress, out.gpuVa + 4u * 1048576u);
    EXPECT_EQ(fps[0].jsStatus, gpu::kJsFault);
    EXPECT_TRUE(irqBits(log) & gpu::kIrqMmuFault);

    expectReplaysEverywhere(log);
}

TEST(Replay, CyclicChainBadDescriptorReplaysExactly)
{
    rt::SystemConfig cfg = recordableConfig();
    rt::Session s(cfg, rt::Mode::Direct);
    // Prime with one clean enqueue so the GPU MMU root is installed,
    // then hand-submit a self-linked null descriptor: the chain walk
    // must fault (BadDescriptor) instead of hanging, and the recording
    // must reproduce that.
    rt::KernelHandle k = s.compile(kScaleSrc, "scale");
    rt::Buffer in = s.alloc(64 * 4);
    rt::Buffer out = s.alloc(64 * 4);
    gpu::JobResult prime =
        s.enqueue(k, rt::NDRange{64, 1, 1}, rt::NDRange{16, 1, 1},
                  {rt::Arg::buf(in), rt::Arg::buf(out),
                   rt::Arg::i32(64)});
    ASSERT_FALSE(prime.faulted);

    rt::Buffer b = s.alloc(4096);
    gpu::JobDescriptor d;
    d.jobType = gpu::JobDescriptor::kTypeNull;
    d.next = b.gpuVa;
    uint8_t raw[gpu::JobDescriptor::kSizeBytes];
    d.writeTo(raw);
    s.write(b, raw, sizeof(raw));

    s.startRecording();
    rt::System &sys = s.system();
    Addr base = rt::System::kGpuBase;
    sys.bus().write(base + gpu::kRegIrqMask, 4, 7);
    sys.bus().write(base + gpu::kRegJsSubmit, 4, b.gpuVa);
    sys.gpu().waitIdle();
    replay::Log log = replay::Log::fromBytes(s.stopRecording());

    std::vector<Fp> fps = fingerprints(log);
    ASSERT_EQ(fps.size(), 1u);
    EXPECT_EQ(fps[0].jsStatus, gpu::kJsFault);
    EXPECT_EQ(fps[0].faultStatus,
              static_cast<uint32_t>(gpu::JobFaultKind::BadDescriptor));
    EXPECT_TRUE(irqBits(log) & gpu::kIrqJobFault);

    expectReplaysEverywhere(log);
}

TEST(Replay, ShaderVerifyRejectionReplaysExactly)
{
    rt::Session s(recordableConfig(), rt::Mode::Direct);
    // Out-of-bounds ROM index: an unsafe-severity defect the
    // decode-time verifier rejects at the default strictness.
    rt::KernelHandle k = loadRawModule(
        s,
        {mk(bif::Op::LdRom, 1, bif::kOperandNone, bif::kOperandNone,
            bif::kOperandNone, 4),
         mk(bif::Op::Ret, bif::kOperandNone, bif::kOperandNone,
            bif::kOperandNone, bif::kOperandNone, 0)},
        /*rom=*/{42u}, /*reg_count=*/8);

    s.startRecording();
    gpu::JobResult r = s.enqueue(k, rt::NDRange{4, 1, 1},
                                 rt::NDRange{4, 1, 1}, {});
    ASSERT_TRUE(r.faulted);
    ASSERT_EQ(r.fault.kind, gpu::JobFaultKind::ShaderVerify);
    replay::Log log = replay::Log::fromBytes(s.stopRecording());

    std::vector<Fp> fps = fingerprints(log);
    ASSERT_EQ(fps.size(), 1u);
    EXPECT_EQ(fps[0].faultStatus,
              static_cast<uint32_t>(gpu::JobFaultKind::ShaderVerify));
    EXPECT_TRUE(irqBits(log) & gpu::kIrqJobFault);

    expectReplaysEverywhere(log);
}

// ------------------------------------------------------ Tier crossing

/** Records the same FullSystem workload under both CPU tiers and
 *  checks the boundary streams are byte-identical; each log must then
 *  replay cleanly into either GPU interpreter at any worker count. */
TEST(Replay, CpuTierCrossingIsInvariant)
{
    std::vector<replay::Log> logs;
    for (int tier = 0; tier < 2; ++tier) {
        rt::SystemConfig cfg = recordableConfig(32u << 20);
        cfg.cpuDbt = tier == 1;
        rt::Session s(cfg, rt::Mode::FullSystem);
        rt::KernelHandle k = s.compile(kScaleSrc, "scale");
        rt::Buffer in = s.alloc(64 * 4);
        rt::Buffer out = s.alloc(64 * 4);
        for (uint32_t i = 0; i < 64; ++i) {
            int32_t v = static_cast<int32_t>(i * 13);
            s.write(in, &v, 4, i * 4);
        }
        s.startRecording();
        gpu::JobResult r =
            s.enqueue(k, rt::NDRange{64, 1, 1}, rt::NDRange{16, 1, 1},
                      {rt::Arg::buf(in), rt::Arg::buf(out),
                       rt::Arg::i32(64)});
        ASSERT_FALSE(r.faulted);
        logs.push_back(replay::Log::fromBytes(s.stopRecording()));
    }
    EXPECT_TRUE(logs[0].config().cpuDbt !=
                logs[1].config().cpuDbt);

    // The boundary must not know which CPU tier drove it.
    std::optional<replay::Divergence> d =
        replay::diffLogs(logs[0], logs[1]);
    EXPECT_FALSE(d.has_value())
        << "event " << d->event << ": " << d->what;

    // A log recorded under either tier replays into both GPU
    // interpreters at any worker count.
    expectReplaysEverywhere(logs[0]);
    expectReplaysEverywhere(logs[1]);
}

// --------------------------------------------- Restore-then-trace/record

TEST(Replay, RestoredSessionStillTraces)
{
    rt::SystemConfig cfg = recordableConfig();
    cfg.gpu.trace = true;
    rt::Session s(cfg, rt::Mode::Direct);
    rt::KernelHandle k = s.compile(kScaleSrc, "scale");
    rt::Buffer in = s.alloc(64 * 4);
    rt::Buffer out = s.alloc(64 * 4);
    s.enqueue(k, rt::NDRange{64, 1, 1}, rt::NDRange{16, 1, 1},
              {rt::Arg::buf(in), rt::Arg::buf(out), rt::Arg::i32(64)});

    snap::Writer w;
    s.saveSnapshot(w);
    snap::Image img = snap::Image::fromBytes(w.finish());

    // The restored session must re-register its trace buffers: driver
    // spans and device instants from post-restore enqueues must land
    // in the export.
    std::unique_ptr<rt::Session> s2 = rt::Session::fromSnapshot(img, cfg);
    size_t before = s2->tracer().eventCount();
    ASSERT_FALSE(s2->kernels().empty());
    ASSERT_GE(s2->buffers().size(), 2u);
    gpu::JobResult r = s2->enqueue(
        s2->kernels()[0], rt::NDRange{64, 1, 1}, rt::NDRange{16, 1, 1},
        {rt::Arg::buf(s2->buffers()[0]), rt::Arg::buf(s2->buffers()[1]),
         rt::Arg::i32(64)});
    ASSERT_FALSE(r.faulted);
    EXPECT_GT(s2->tracer().eventCount(), before);

    std::ostringstream os;
    s2->tracer().exportChromeJson(os);
    std::string json = os.str();
    EXPECT_NE(json.find("\"enqueue\""), std::string::npos);
    EXPECT_NE(json.find("\"js_submit\""), std::string::npos);
}

TEST(Replay, RestoredSessionRecordsSelfContainedLog)
{
    rt::SystemConfig cfg = recordableConfig();
    rt::Session s(cfg, rt::Mode::Direct);
    rt::KernelHandle k = s.compile(kScaleSrc, "scale");
    rt::Buffer in = s.alloc(64 * 4);
    rt::Buffer out = s.alloc(64 * 4);
    for (uint32_t i = 0; i < 64; ++i) {
        int32_t v = static_cast<int32_t>(i + 5);
        s.write(in, &v, 4, i * 4);
    }
    s.enqueue(k, rt::NDRange{64, 1, 1}, rt::NDRange{16, 1, 1},
              {rt::Arg::buf(in), rt::Arg::buf(out), rt::Arg::i32(64)});
    snap::Writer w;
    s.saveSnapshot(w);
    snap::Image img = snap::Image::fromBytes(w.finish());

    // Recording that starts on a warm-booted session must emit a full
    // first delta (restored RAM is nothing like a cold boot), so the
    // log stays self-contained.
    std::unique_ptr<rt::Session> s2 = rt::Session::fromSnapshot(img, cfg);
    s2->startRecording();
    gpu::JobResult r = s2->enqueue(
        s2->kernels()[0], rt::NDRange{64, 1, 1}, rt::NDRange{16, 1, 1},
        {rt::Arg::buf(s2->buffers()[0]), rt::Arg::buf(s2->buffers()[1]),
         rt::Arg::i32(64)});
    ASSERT_FALSE(r.faulted);
    replay::Log log = replay::Log::fromBytes(s2->stopRecording());
    expectReplaysEverywhere(log);
}

// ------------------------------------------------------- Mutation fuzz

std::vector<uint8_t>
smallValidLog()
{
    rt::Session s(recordableConfig(4u << 20, 1), rt::Mode::Direct);
    rt::KernelHandle k = s.compile(kScaleSrc, "scale");
    rt::Buffer in = s.alloc(64 * 4);
    rt::Buffer out = s.alloc(64 * 4);
    s.startRecording();
    s.enqueue(k, rt::NDRange{64, 1, 1}, rt::NDRange{16, 1, 1},
              {rt::Arg::buf(in), rt::Arg::buf(out), rt::Arg::i32(64)});
    return s.stopRecording();
}

TEST(ReplayFuzz, TruncationsAlwaysFailLocated)
{
    std::vector<uint8_t> valid = smallValidLog();
    ASSERT_TRUE(replay::Log::fromBytes(valid).eventCount() > 0);
    for (size_t len : {size_t(0), size_t(1), size_t(8), size_t(15),
                       size_t(16), size_t(24), size_t(40),
                       valid.size() / 2, valid.size() - 1}) {
        std::vector<uint8_t> cut(valid.begin(), valid.begin() + len);
        EXPECT_THROW(replay::Log::fromBytes(std::move(cut)),
                     replay::ReplayError)
            << "len=" << len;
    }
}

TEST(ReplayFuzz, BitFlipsNeverCrash)
{
    std::vector<uint8_t> valid = smallValidLog();
    uint64_t rng = 0x9e3779b97f4a7c15ull;
    auto next = [&rng] {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
    };
    int parsed = 0, rejected = 0;
    for (int iter = 0; iter < 300; ++iter) {
        std::vector<uint8_t> bytes = valid;
        size_t pos = next() % bytes.size();
        bytes[pos] ^= static_cast<uint8_t>(1u << (next() % 8));
        try {
            replay::Log log = replay::Log::fromBytes(std::move(bytes));
            replay::ReplayOptions opt;
            opt.hostThreads = 1;
            replay::ReplayResult r = replay::replay(log, opt);
            (void)r;   // ok or divergence: both are acceptable.
            parsed++;
        } catch (const SimError &) {
            rejected++;   // ReplayError or SnapshotError: located.
        }
    }
    // The per-event CRC catches almost every flip.
    EXPECT_GT(rejected, 0);
    EXPECT_EQ(parsed + rejected, 300);
}

TEST(ReplayFuzz, HostileCountsFailLocatedNeverCrash)
{
    // Build structurally valid logs whose payloads carry hostile
    // counts and sizes; every one must fail with a located error.
    auto configEvent = [](replay::LogWriter &w) {
        snap::ChunkWriter &c = w.event(replay::kEvConfig);
        c.u64(0x80000000ull);   // ramBase
        c.u64(1u << 20);        // ramBytes: 256 pages
        c.u32(8);               // numCores
        c.u32(2);               // hostThreads
        c.u8(1);                // verify
        c.u8(1);                // instrument
        c.u8(1);                // fastPath
        c.u8(0);                // cpuDbt
        c.u8(0);                // fullSystem
        c.u8(0);                // reserved
    };

    {
        // MemDelta claiming 2^32-1 pages.
        replay::LogWriter w;
        configEvent(w);
        snap::ChunkWriter &m = w.event(replay::kEvMemDelta);
        m.u8(1);
        m.u32(0xffffffffu);
        replay::Log log = replay::Log::fromBytes(w.finish());
        EXPECT_THROW(replay::replay(log, {}), replay::ReplayError);
    }
    {
        // MemDelta with an out-of-range page index.
        replay::LogWriter w;
        configEvent(w);
        snap::ChunkWriter &m = w.event(replay::kEvMemDelta);
        m.u8(1);
        m.u32(1);
        m.u32(100000);   // >> 256 pages
        std::vector<uint8_t> page(4096, 0xab);
        m.bytes(page.data(), page.size());
        replay::Log log = replay::Log::fromBytes(w.finish());
        EXPECT_THROW(replay::replay(log, {}), replay::ReplayError);
    }
    {
        // RCFG with an implausible RAM size.
        replay::LogWriter w;
        snap::ChunkWriter &c = w.event(replay::kEvConfig);
        c.u64(0x80000000ull);
        c.u64(1ull << 40);
        c.u32(8);
        c.u32(2);
        c.u8(1);
        c.u8(1);
        c.u8(1);
        c.u8(0);
        c.u8(0);
        c.u8(0);
        EXPECT_THROW(replay::Log::fromBytes(w.finish()),
                     replay::ReplayError);
    }
    {
        // Unknown event kind.
        replay::LogWriter w;
        configEvent(w);
        w.event(snap::makeTag("EVIL")).u32(1);
        EXPECT_THROW(replay::Log::fromBytes(w.finish()),
                     replay::ReplayError);
    }
    {
        // Truncated MMIO payload: located error at replay time.
        replay::LogWriter w;
        configEvent(w);
        w.event(replay::kEvMmio).u32(gpu::kRegIrqMask);
        replay::Log log = replay::Log::fromBytes(w.finish());
        EXPECT_THROW(replay::replay(log, {}), replay::ReplayError);
    }
}

// ----------------------------------------------------------- Plumbing

TEST(Replay, DescribeAndDiffLocateDivergence)
{
    std::vector<uint8_t> valid = smallValidLog();
    replay::Log a = replay::Log::fromBytes(valid);
    EXPECT_NE(replay::describeEvent(a, 0).find("RCFG"),
              std::string::npos);

    // Self-diff is clean.
    EXPECT_FALSE(replay::diffLogs(a, a).has_value());

    // Flip one RAM byte inside the first delta: the diff names the
    // event and the page.
    for (size_t i = 0; i < a.eventCount(); ++i) {
        if (a.kind(i) != replay::kEvMemDelta)
            continue;
        std::vector<uint8_t> mutated = valid;
        // payload: u8 full | u32 count | u32 idx | page bytes...
        size_t off = static_cast<size_t>(a.payload(i) - a.bytes().data());
        size_t page_off = off + 1 + 4 + 4 + 100;
        mutated[page_off] ^= 0xff;
        // Recompute the event CRC so only the content differs.
        uint32_t crc = snap::crc32(&mutated[off], a.payloadSize(i));
        std::memcpy(&mutated[off - 4], &crc, 4);
        replay::Log b = replay::Log::fromBytes(std::move(mutated));
        std::optional<replay::Divergence> d = replay::diffLogs(a, b);
        ASSERT_TRUE(d.has_value());
        EXPECT_EQ(d->event, i);
        EXPECT_NE(d->what.find("content differs"), std::string::npos);
        break;
    }
}

} // namespace
} // namespace bifsim
