/** @file Tests for the mini guest OS / GPU driver running on the
 *  simulated CPU (the full-system software stack of the paper). */

#include <gtest/gtest.h>

#include "guestos/guest_os.h"
#include "runtime/session.h"

namespace bifsim::guestos {
namespace {

using rt::Mode;
using rt::Session;
using rt::System;
using rt::SystemConfig;

const char *kCopy = R"(
kernel void copy(global const int* in, global int* out, int n) {
    int i = get_global_id(0);
    if (i < n) {
        out[i] = in[i];
    }
}
)";

TEST(GuestOs, AssemblesForPlatformAddresses)
{
    Layout lay = defaultLayout(0x80000000);
    sa32::Program os =
        buildOs(lay, System::kUartBase, System::kIntcBase,
                System::kGpuBase, System::kGpuIntcLine);
    EXPECT_EQ(os.base, 0x80000000u);
    EXPECT_GT(os.bytes.size(), 200u);
    EXPECT_NO_THROW(os.symbol("trap_handler"));
    EXPECT_NO_THROW(os.symbol("install_mappings"));
}

TEST(GuestOs, DriverInstallsPageTablesTheGpuWalks)
{
    Session s(SystemConfig(), Mode::FullSystem);
    constexpr int kN = 512;
    std::vector<int32_t> in(kN);
    for (int i = 0; i < kN; ++i)
        in[i] = i * 3;
    rt::Buffer din = s.alloc(kN * 4);
    rt::Buffer dout = s.alloc(kN * 4);
    s.write(din, in.data(), kN * 4);
    rt::KernelHandle k = s.compile(kCopy, "copy");
    gpu::JobResult r = s.enqueue(k, rt::NDRange{kN, 1, 1},
                                 rt::NDRange{64, 1, 1},
                                 {rt::Arg::buf(din), rt::Arg::buf(dout),
                                  rt::Arg::i32(kN)});
    ASSERT_FALSE(r.faulted) << r.fault.detail;
    std::vector<int32_t> got(kN);
    s.read(dout, got.data(), kN * 4);
    EXPECT_EQ(got, in);
    // The GPU's page-table root is the one the host handed the driver.
    EXPECT_NE(s.system().gpu().mmu().root(), 0u);
}

TEST(GuestOs, SecondSubmitSkipsExistingMappings)
{
    Session s(SystemConfig(), Mode::FullSystem);
    rt::Buffer b = s.alloc(4096);
    rt::KernelHandle k = s.compile(kCopy, "copy");
    auto args = std::vector<rt::Arg>{rt::Arg::buf(b), rt::Arg::buf(b),
                                     rt::Arg::i32(0)};
    s.enqueue(k, rt::NDRange{64, 1, 1}, rt::NDRange{64, 1, 1}, args);
    uint64_t pages_after_first = s.mappedPages();
    uint64_t instrs_first = s.driverInstructions();
    s.enqueue(k, rt::NDRange{64, 1, 1}, rt::NDRange{64, 1, 1}, args);
    // No new buffers: no new mappings; the second submission's driver
    // work is much smaller.
    EXPECT_EQ(s.mappedPages(), pages_after_first);
    uint64_t instrs_second = s.driverInstructions() - instrs_first;
    EXPECT_LT(instrs_second, instrs_first);
}

TEST(GuestOs, GpuFaultReportedThroughDriver)
{
    Session s(SystemConfig(), Mode::FullSystem);
    // Kernel reads far outside any mapping.
    const char *bad = R"(
kernel void bad(global int* out) {
    out[4194304] = 1;
}
)";
    rt::Buffer b = s.alloc(4096);
    rt::KernelHandle k = s.compile(bad, "bad");
    gpu::JobResult r = s.enqueue(k, rt::NDRange{1, 1, 1},
                                 rt::NDRange{1, 1, 1},
                                 {rt::Arg::buf(b)});
    EXPECT_TRUE(r.faulted);
    EXPECT_EQ(r.fault.kind, gpu::JobFaultKind::MmuFault);
    // The guest observed the fault (RESULT=1 in the mailbox).
    Layout lay = defaultLayout(System::kRamBase);
    EXPECT_EQ(s.system().mem().read<uint32_t>(lay.mailbox + kMbResult),
              1u);
}

TEST(GuestOs, IrqCountTracksSubmissions)
{
    Session s(SystemConfig(), Mode::FullSystem);
    rt::Buffer b = s.alloc(4096);
    rt::KernelHandle k = s.compile(kCopy, "copy");
    Layout lay = defaultLayout(System::kRamBase);
    for (int i = 1; i <= 3; ++i) {
        s.enqueue(k, rt::NDRange{64, 1, 1}, rt::NDRange{64, 1, 1},
                  {rt::Arg::buf(b), rt::Arg::buf(b), rt::Arg::i32(0)});
        EXPECT_GE(s.system().mem().read<uint32_t>(lay.mailbox +
                                                  kMbIrqCount),
                  static_cast<uint32_t>(i));
    }
}

TEST(GuestOs, DriverWorkScalesWithPages)
{
    // The install_mappings loop is O(pages): a 64x larger buffer costs
    // substantially more driver instructions (the Fig. 9 mechanism).
    auto driver_cost = [&](size_t bytes) {
        Session s(SystemConfig(), Mode::FullSystem);
        rt::Buffer b = s.alloc(bytes);
        rt::KernelHandle k = s.compile(kCopy, "copy");
        s.enqueue(k, rt::NDRange{64, 1, 1}, rt::NDRange{64, 1, 1},
                  {rt::Arg::buf(b), rt::Arg::buf(b), rt::Arg::i32(0)});
        return s.driverInstructions();
    };
    uint64_t small = driver_cost(4096);
    uint64_t large = driver_cost(4096 * 256);
    EXPECT_GT(large, small + 3000);
}

} // namespace
} // namespace bifsim::guestos
