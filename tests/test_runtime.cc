/** @file Integration tests for the runtime: sessions, buffers, the
 *  guest OS driver path, and direct-vs-full-system equivalence. */

#include <gtest/gtest.h>

#include <numeric>

#include "common/logging.h"
#include "guestos/guest_os.h"
#include "runtime/session.h"

namespace bifsim::rt {
namespace {

const char *kSaxpy = R"(
kernel void saxpy(global const float* x, global float* y, int n,
                  float a) {
    int i = get_global_id(0);
    if (i < n) {
        y[i] = a * x[i] + y[i];
    }
}
)";

TEST(Session, BufferReadWrite)
{
    Session s;
    Buffer b = s.alloc(1024);
    EXPECT_GE(b.bytes, 1024u);
    std::vector<uint32_t> data(256);
    std::iota(data.begin(), data.end(), 0);
    s.write(b, data.data(), 1024);
    std::vector<uint32_t> back(256);
    s.read(b, back.data(), 1024);
    EXPECT_EQ(back, data);
    // Offset access.
    uint32_t v = 0xABCD;
    s.write(b, &v, 4, 512);
    uint32_t got = 0;
    s.read(b, &got, 4, 512);
    EXPECT_EQ(got, 0xABCDu);
}

TEST(Session, BufferBoundsChecked)
{
    Session s;
    Buffer b = s.alloc(64);
    uint32_t v = 0;
    EXPECT_THROW(s.write(b, &v, 4, 64), SimError);
    EXPECT_THROW(s.read(b, &v, 4, 4096), SimError);
}

TEST(Session, DistinctBuffersDistinctVas)
{
    Session s;
    Buffer a = s.alloc(4096);
    Buffer b = s.alloc(4096);
    EXPECT_NE(a.gpuVa, b.gpuVa);
    EXPECT_NE(a.pa, b.pa);
}

TEST(Session, SaxpyDirect)
{
    Session s;
    constexpr int kN = 1000;
    std::vector<float> x(kN), y(kN);
    for (int i = 0; i < kN; ++i) {
        x[i] = static_cast<float>(i);
        y[i] = 1.0f;
    }
    Buffer dx = s.alloc(kN * 4), dy = s.alloc(kN * 4);
    s.write(dx, x.data(), kN * 4);
    s.write(dy, y.data(), kN * 4);
    KernelHandle k = s.compile(kSaxpy, "saxpy");
    gpu::JobResult r = s.enqueue(k, NDRange{1024, 1, 1},
                                 NDRange{64, 1, 1},
                                 {Arg::buf(dx), Arg::buf(dy),
                                  Arg::i32(kN), Arg::f32(2.0f)});
    ASSERT_FALSE(r.faulted) << r.fault.detail;
    std::vector<float> got(kN);
    s.read(dy, got.data(), kN * 4);
    for (int i = 0; i < kN; ++i)
        ASSERT_FLOAT_EQ(got[i], 2.0f * i + 1.0f);
}

TEST(Session, SaxpyFullSystemMatchesDirect)
{
    constexpr int kN = 256;
    std::vector<float> x(kN), base(kN);
    for (int i = 0; i < kN; ++i) {
        x[i] = 0.25f * i;
        base[i] = 3.0f;
    }
    std::vector<std::vector<float>> results;
    for (Mode mode : {Mode::Direct, Mode::FullSystem}) {
        Session s(SystemConfig(), mode);
        Buffer dx = s.alloc(kN * 4), dy = s.alloc(kN * 4);
        s.write(dx, x.data(), kN * 4);
        s.write(dy, base.data(), kN * 4);
        KernelHandle k = s.compile(kSaxpy, "saxpy");
        gpu::JobResult r = s.enqueue(k, NDRange{kN, 1, 1},
                                     NDRange{64, 1, 1},
                                     {Arg::buf(dx), Arg::buf(dy),
                                      Arg::i32(kN), Arg::f32(-1.5f)});
        ASSERT_FALSE(r.faulted) << r.fault.detail;
        std::vector<float> got(kN);
        s.read(dy, got.data(), kN * 4);
        results.push_back(got);
    }
    EXPECT_EQ(results[0], results[1]);
}

TEST(Session, FullSystemDriverExecutesInstructions)
{
    Session s(SystemConfig(), Mode::FullSystem);
    Buffer dx = s.alloc(64 << 10);   // 16 pages to map.
    Buffer dy = s.alloc(64 << 10);
    KernelHandle k = s.compile(kSaxpy, "saxpy");
    gpu::JobResult r = s.enqueue(k, NDRange{64, 1, 1}, NDRange{64, 1, 1},
                                 {Arg::buf(dx), Arg::buf(dy),
                                  Arg::i32(64), Arg::f32(1.0f)});
    ASSERT_FALSE(r.faulted);
    EXPECT_GT(s.driverInstructions(), 500u);
    EXPECT_GE(s.mappedPages(), 32u);
    // The guest handled at least one GPU interrupt.
    PhysMem &m = s.system().mem();
    guestos::Layout lay = guestos::defaultLayout(System::kRamBase);
    EXPECT_GE(m.read<uint32_t>(lay.mailbox + guestos::kMbIrqCount), 1u);
}

TEST(Session, DriverMapsScaleWithBufferSize)
{
    auto pages_for = [](size_t bytes) {
        Session s(SystemConfig(), Mode::FullSystem);
        Buffer b = s.alloc(bytes);
        KernelHandle k = s.compile(kSaxpy, "saxpy");
        s.enqueue(k, NDRange{64, 1, 1}, NDRange{64, 1, 1},
                  {Arg::buf(b), Arg::buf(b), Arg::i32(0),
                   Arg::f32(0.0f)});
        return s.mappedPages();
    };
    uint64_t small = pages_for(4096);
    uint64_t large = pages_for(1 << 20);
    EXPECT_GT(large, small + 200);
}

TEST(Session, CtrlRegTrafficCounted)
{
    Session s(SystemConfig(), Mode::FullSystem);
    Buffer b = s.alloc(4096);
    KernelHandle k = s.compile(kSaxpy, "saxpy");
    s.enqueue(k, NDRange{64, 1, 1}, NDRange{64, 1, 1},
              {Arg::buf(b), Arg::buf(b), Arg::i32(0), Arg::f32(0.0f)});
    gpu::SystemStats st = s.system().gpu().systemStats();
    EXPECT_GE(st.ctrlRegWrites, 4u);   // mask, transtab, ascmd, submit.
    EXPECT_GE(st.ctrlRegReads, 2u);    // irq status, js status.
    EXPECT_EQ(st.computeJobs, 1u);
    EXPECT_GE(st.irqsAsserted, 1u);
}

TEST(Session, MultipleEnqueuesAccumulate)
{
    Session s;
    Buffer b = s.alloc(4096);
    KernelHandle k = s.compile(kSaxpy, "saxpy");
    for (int i = 0; i < 3; ++i) {
        gpu::JobResult r = s.enqueue(
            k, NDRange{64, 1, 1}, NDRange{64, 1, 1},
            {Arg::buf(b), Arg::buf(b), Arg::i32(0), Arg::f32(0.0f)});
        ASSERT_FALSE(r.faulted);
    }
    EXPECT_EQ(s.system().gpu().systemStats().computeJobs, 3u);
    gpu::KernelStats total = s.system().gpu().totalKernelStats();
    EXPECT_EQ(total.threadsLaunched, 3u * 64u);
}

TEST(Session, GuestOsPingCommand)
{
    Session s(SystemConfig(), Mode::FullSystem);
    PhysMem &m = s.system().mem();
    guestos::Layout lay = guestos::defaultLayout(System::kRamBase);
    m.write<uint32_t>(lay.mailbox + guestos::kMbStatus, 0);
    m.write<uint32_t>(lay.mailbox + guestos::kMbCmd, guestos::kCmdPing);
    s.system().runCpu(100000);
    EXPECT_EQ(m.read<uint32_t>(lay.mailbox + guestos::kMbStatus), 2u);
    EXPECT_EQ(m.read<uint32_t>(lay.mailbox + guestos::kMbCmd), 0u);
}

TEST(Session, CompileErrorsPropagate)
{
    Session s;
    EXPECT_THROW(s.compile("kernel void f() { syntax error", "f"),
                 SimError);
    EXPECT_THROW(s.compile(kSaxpy, "not_there"), SimError);
}

TEST(Session, TooManyArgsRejected)
{
    Session s;
    KernelHandle k = s.compile(kSaxpy, "saxpy");
    std::vector<Arg> args(gpu::kMaxArgWords + 1, Arg::i32(0));
    EXPECT_THROW(
        s.enqueue(k, NDRange{64, 1, 1}, NDRange{64, 1, 1}, args),
        SimError);
}

TEST(System, UartEchoFromGuest)
{
    Session s(SystemConfig(), Mode::FullSystem);
    // The OS doesn't print by itself; poke the UART via the bus the
    // way guest code would.
    Bus &bus = s.system().bus();
    for (char c : std::string("ok"))
        bus.write(System::kUartBase + soc::Uart::kRegThr, 4,
                  static_cast<uint32_t>(c));
    EXPECT_EQ(s.system().uart().output(), "ok");
}

TEST(System, TimerInterruptReachesGuest)
{
    // A bare-metal guest that programs the timer and waits for the
    // timer interrupt.
    Session s;   // Direct mode: no OS loaded.
    const char *src = R"(
        .org 0x80000000
        la   t0, handler
        csrw mtvec, t0
        li   t0, 0x80          # mie.MTIE
        csrw mie, t0
        li   t0, 0x8
        csrw mstatus, t0
        # mtimecmp = 500
        li   t0, TIMER
        li   t1, 500
        sw   t1, 8(t0)
        sw   zero, 12(t0)
wait:
        beqz a0, wait
        halt
handler:
        li   a0, 1
        # Push mtimecmp far out to drop the level.
        li   t0, TIMER
        li   t1, 0x7FFFFFFF
        sw   t1, 8(t0)
        mret
    )";
    sa32::Program p =
        sa32::assemble(src, {{"TIMER", System::kTimerBase}});
    p.loadInto(s.system().mem());
    s.system().cpu().reset();
    bool halted = s.system().runUntilHalt(2'000'000);
    EXPECT_TRUE(halted);
    EXPECT_EQ(s.system().cpu().reg(10), 1u);
}

} // namespace
} // namespace bifsim::rt
