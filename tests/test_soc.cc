/** @file Unit tests for the SoC devices: UART, timer, INTC. */

#include <gtest/gtest.h>

#include "soc/devices.h"

namespace bifsim::soc {
namespace {

TEST(Uart, CapturesOutput)
{
    Uart u;
    for (char c : std::string("hi\n"))
        u.mmioWrite(Uart::kRegThr, static_cast<uint32_t>(c));
    EXPECT_EQ(u.output(), "hi\n");
    u.clearOutput();
    EXPECT_EQ(u.output(), "");
}

TEST(Uart, TxAlwaysReady)
{
    Uart u;
    EXPECT_EQ(u.mmioRead(Uart::kRegLsr) & 1, 1u);
}

TEST(Uart, IgnoresOtherOffsets)
{
    Uart u;
    u.mmioWrite(0x40, 'x');
    EXPECT_EQ(u.output(), "");
    EXPECT_EQ(u.mmioRead(Uart::kRegThr), 0u);
}

TEST(Timer, CountsTicks)
{
    Timer t(nullptr);
    t.tick(100);
    EXPECT_EQ(t.now(), 100u);
    EXPECT_EQ(t.mmioRead(Timer::kRegTimeLo), 100u);
    EXPECT_EQ(t.mmioRead(Timer::kRegTimeHi), 0u);
}

TEST(Timer, CompareRaisesAndClearsIrq)
{
    bool level = false;
    Timer t([&](bool l) { level = l; });
    t.mmioWrite(Timer::kRegCmpLo, 50);
    t.mmioWrite(Timer::kRegCmpHi, 0);
    t.tick(49);
    EXPECT_FALSE(level);
    t.tick(1);
    EXPECT_TRUE(level);
    // Move the compare forward: IRQ drops.
    t.mmioWrite(Timer::kRegCmpLo, 1000);
    EXPECT_FALSE(level);
}

TEST(Timer, SixtyFourBitTime)
{
    Timer t(nullptr);
    t.tick(0x1'0000'0000ull);
    EXPECT_EQ(t.mmioRead(Timer::kRegTimeHi), 1u);
}

TEST(Intc, PendingAndEnable)
{
    bool level = false;
    Intc ic([&](bool l) { level = l; });
    ic.setLine(3, true);
    EXPECT_FALSE(level);               // Not enabled yet.
    ic.mmioWrite(Intc::kRegEnable, 1u << 3);
    EXPECT_TRUE(level);
    EXPECT_EQ(ic.mmioRead(Intc::kRegPending), 1u << 3);
}

TEST(Intc, ClaimReturnsLowestLine)
{
    Intc ic(nullptr);
    ic.mmioWrite(Intc::kRegEnable, 0xFF);
    ic.setLine(5, true);
    ic.setLine(2, true);
    EXPECT_EQ(ic.mmioRead(Intc::kRegClaim), 3u);   // line 2 + 1.
    ic.setLine(2, false);
    EXPECT_EQ(ic.mmioRead(Intc::kRegClaim), 6u);   // line 5 + 1.
    ic.setLine(5, false);
    EXPECT_EQ(ic.mmioRead(Intc::kRegClaim), 0u);
}

TEST(Intc, LevelDropsWhenSourceClears)
{
    bool level = false;
    Intc ic([&](bool l) { level = l; });
    ic.mmioWrite(Intc::kRegEnable, 2);
    ic.setLine(1, true);
    EXPECT_TRUE(level);
    ic.setLine(1, false);
    EXPECT_FALSE(level);
}

TEST(Intc, DisableMasksOutput)
{
    bool level = false;
    Intc ic([&](bool l) { level = l; });
    ic.mmioWrite(Intc::kRegEnable, 2);
    ic.setLine(1, true);
    EXPECT_TRUE(level);
    ic.mmioWrite(Intc::kRegEnable, 0);
    EXPECT_FALSE(level);
}

} // namespace
} // namespace bifsim::soc
