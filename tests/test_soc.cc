/** @file Unit tests for the SoC devices: UART, timer, INTC. */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "soc/devices.h"

namespace bifsim::soc {
namespace {

TEST(Uart, CapturesOutput)
{
    Uart u;
    for (char c : std::string("hi\n"))
        u.mmioWrite(Uart::kRegThr, static_cast<uint32_t>(c));
    EXPECT_EQ(u.output(), "hi\n");
    u.clearOutput();
    EXPECT_EQ(u.output(), "");
}

TEST(Uart, TxAlwaysReady)
{
    Uart u;
    EXPECT_EQ(u.mmioRead(Uart::kRegLsr) & 1, 1u);
}

TEST(Uart, IgnoresOtherOffsets)
{
    Uart u;
    u.mmioWrite(0x40, 'x');
    EXPECT_EQ(u.output(), "");
    EXPECT_EQ(u.mmioRead(Uart::kRegThr), 0u);
}

TEST(Timer, CountsTicks)
{
    Timer t(nullptr);
    t.tick(100);
    EXPECT_EQ(t.now(), 100u);
    EXPECT_EQ(t.mmioRead(Timer::kRegTimeLo), 100u);
    EXPECT_EQ(t.mmioRead(Timer::kRegTimeHi), 0u);
}

TEST(Timer, CompareRaisesAndClearsIrq)
{
    bool level = false;
    Timer t([&](bool l) { level = l; });
    t.mmioWrite(Timer::kRegCmpLo, 50);
    t.mmioWrite(Timer::kRegCmpHi, 0);
    t.tick(49);
    EXPECT_FALSE(level);
    t.tick(1);
    EXPECT_TRUE(level);
    // Move the compare forward: IRQ drops.
    t.mmioWrite(Timer::kRegCmpLo, 1000);
    EXPECT_FALSE(level);
}

TEST(Timer, SixtyFourBitTime)
{
    Timer t(nullptr);
    t.tick(0x1'0000'0000ull);
    EXPECT_EQ(t.mmioRead(Timer::kRegTimeHi), 1u);
}

/**
 * Regression: a guest reading MTIME_LO then MTIME_HI across a tick()
 * must observe a consistent 64-bit pair.  Before the high-word latch, a
 * tick carrying mtime over a 2^32 boundary between the two reads
 * produced LO=0xffffffff paired with the *new* HI (a time 2^32 in the
 * future); the LO read now latches the matching HI.
 */
TEST(Timer, NoTornSixtyFourBitRead)
{
    Timer t(nullptr);
    t.tick(0xffffffffull);                 // mtime = 0x0'ffff'ffff
    uint32_t lo = t.mmioRead(Timer::kRegTimeLo);
    t.tick(1);                             // mtime = 0x1'0000'0000
    uint32_t hi = t.mmioRead(Timer::kRegTimeHi);
    EXPECT_EQ(lo, 0xffffffffu);
    EXPECT_EQ(hi, 0u);   // Old code returned 1: a torn pair.

    // The latch is consumed: the next HI read is live again.
    EXPECT_EQ(t.mmioRead(Timer::kRegTimeHi), 1u);
}

TEST(Timer, NoTornCompareRead)
{
    Timer t(nullptr);
    t.mmioWrite(Timer::kRegCmpLo, 0xffffffffu);
    t.mmioWrite(Timer::kRegCmpHi, 0);
    uint32_t lo = t.mmioRead(Timer::kRegCmpLo);
    // The compare register changes between the two halves of the read
    // (e.g. another context reprogramming it).
    t.mmioWrite(Timer::kRegCmpHi, 5);
    uint32_t hi = t.mmioRead(Timer::kRegCmpHi);
    EXPECT_EQ(lo, 0xffffffffu);
    EXPECT_EQ(hi, 0u);   // Paired with the LO read, not the new value.
    EXPECT_EQ(t.mmioRead(Timer::kRegCmpHi), 5u);
}

TEST(Timer, ResetReturnsToPowerOn)
{
    bool level = false;
    Timer t([&](bool l) { level = l; });
    t.mmioWrite(Timer::kRegCmpLo, 10);
    t.mmioWrite(Timer::kRegCmpHi, 0);
    t.tick(100);
    EXPECT_TRUE(level);
    t.reset();
    EXPECT_FALSE(level);   // cmp back at ~0: IRQ dropped.
    EXPECT_EQ(t.now(), 0u);
    EXPECT_EQ(t.mmioRead(Timer::kRegTimeLo), 0u);
}

TEST(Intc, PendingAndEnable)
{
    bool level = false;
    Intc ic([&](bool l) { level = l; });
    ic.setLine(3, true);
    EXPECT_FALSE(level);               // Not enabled yet.
    ic.mmioWrite(Intc::kRegEnable, 1u << 3);
    EXPECT_TRUE(level);
    EXPECT_EQ(ic.mmioRead(Intc::kRegPending), 1u << 3);
}

TEST(Intc, ClaimReturnsLowestLine)
{
    Intc ic(nullptr);
    ic.mmioWrite(Intc::kRegEnable, 0xFF);
    ic.setLine(5, true);
    ic.setLine(2, true);
    EXPECT_EQ(ic.mmioRead(Intc::kRegClaim), 3u);   // line 2 + 1.
    ic.setLine(2, false);
    EXPECT_EQ(ic.mmioRead(Intc::kRegClaim), 6u);   // line 5 + 1.
    ic.setLine(5, false);
    EXPECT_EQ(ic.mmioRead(Intc::kRegClaim), 0u);
}

TEST(Intc, LevelDropsWhenSourceClears)
{
    bool level = false;
    Intc ic([&](bool l) { level = l; });
    ic.mmioWrite(Intc::kRegEnable, 2);
    ic.setLine(1, true);
    EXPECT_TRUE(level);
    ic.setLine(1, false);
    EXPECT_FALSE(level);
}

TEST(Intc, DisableMasksOutput)
{
    bool level = false;
    Intc ic([&](bool l) { level = l; });
    ic.mmioWrite(Intc::kRegEnable, 2);
    ic.setLine(1, true);
    EXPECT_TRUE(level);
    ic.mmioWrite(Intc::kRegEnable, 0);
    EXPECT_FALSE(level);
}

TEST(Intc, ResetDropsPendingLinesAndOutput)
{
    bool level = false;
    Intc ic([&](bool l) { level = l; });
    ic.mmioWrite(Intc::kRegEnable, 2);
    ic.setLine(1, true);
    EXPECT_TRUE(level);
    ic.reset();
    EXPECT_FALSE(level);
    EXPECT_EQ(ic.mmioRead(Intc::kRegPending), 0u);
    EXPECT_EQ(ic.mmioRead(Intc::kRegEnable), 0u);
}

TEST(Uart, ResetClearsCapturedOutput)
{
    Uart u;
    u.mmioWrite(Uart::kRegThr, 'x');
    EXPECT_EQ(u.output(), "x");
    u.reset();
    EXPECT_EQ(u.output(), "");
}

// Regression (pre-fix this is a data race TSan flags): setEcho() used
// to write echo_ with no lock while mmioWrite() read it under lock_.
// The host runtime toggles echo from its own thread while the guest
// prints, so hammer exactly that interleaving.  Runs in the CI
// thread-sanitizer job; echo stays false throughout so the test is
// silent on stderr.
TEST(Uart, EchoToggleRace)
{
    Uart u;
    std::atomic<bool> stop{false};
    std::thread toggler([&] {
        while (!stop.load(std::memory_order_relaxed))
            u.setEcho(false);
    });
    for (int i = 0; i < 20000; ++i)
        u.mmioWrite(Uart::kRegThr, 'a' + (i % 26));
    stop.store(true, std::memory_order_relaxed);
    toggler.join();
    EXPECT_EQ(u.output().size(), 20000u);
}

} // namespace
} // namespace bifsim::soc
