/** @file Unit tests for the SA32 assembler. */

#include <gtest/gtest.h>

#include <cstring>

#include "common/logging.h"
#include "cpu/asm/assembler.h"
#include "cpu/sa32.h"

namespace bifsim::sa32 {
namespace {

uint32_t
word(const Program &p, size_t idx)
{
    uint32_t w;
    std::memcpy(&w, p.bytes.data() + idx * 4, 4);
    return w;
}

TEST(Assembler, RegistersAndAliases)
{
    EXPECT_EQ(parseRegister("x0"), 0);
    EXPECT_EQ(parseRegister("x31"), 31);
    EXPECT_EQ(parseRegister("zero"), 0);
    EXPECT_EQ(parseRegister("ra"), 1);
    EXPECT_EQ(parseRegister("sp"), 2);
    EXPECT_EQ(parseRegister("a0"), 10);
    EXPECT_EQ(parseRegister("t6"), 31);
    EXPECT_EQ(parseRegister("s11"), 27);
    EXPECT_EQ(parseRegister("x32"), -1);
    EXPECT_EQ(parseRegister("bogus"), -1);
}

TEST(Assembler, BasicEncoding)
{
    Program p = assemble("add x1, x2, x3\n");
    EXPECT_EQ(word(p, 0), encR(kFnAdd, 1, 2, 3));
}

TEST(Assembler, ImmediateForms)
{
    Program p = assemble("addi a0, a1, -4\nandi a0, a1, 0xFF\n");
    EXPECT_EQ(word(p, 0), encI(kOpAddI, 10, 11, 0xFFFC));
    EXPECT_EQ(word(p, 1), encI(kOpAndI, 10, 11, 0xFF));
}

TEST(Assembler, LoadsAndStores)
{
    Program p = assemble("lw a0, 8(sp)\nsw a0, -4(sp)\n");
    EXPECT_EQ(word(p, 0), encI(kOpLw, 10, 2, 8));
    EXPECT_EQ(word(p, 1), encS(kOpSw, 10, 2, 0xFFFC));
}

TEST(Assembler, LabelsAndBranches)
{
    Program p = assemble(R"(
        .org 0x80000000
top:
        addi t0, t0, 1
        beq t0, t1, top
        j top
    )");
    // beq at pc 0x80000004, target -1 word.
    DecodedInst beq = decode(word(p, 1));
    EXPECT_EQ(beq.op, Op::Beq);
    EXPECT_EQ(beq.imm, -1);
    DecodedInst j = decode(word(p, 2));
    EXPECT_EQ(j.op, Op::Jal);
    EXPECT_EQ(j.rd, 0);
    EXPECT_EQ(j.imm, -2);
}

TEST(Assembler, ForwardReferences)
{
    Program p = assemble(R"(
        j fwd
        nop
fwd:
        halt
    )");
    DecodedInst j = decode(word(p, 0));
    EXPECT_EQ(j.imm, 2);
}

TEST(Assembler, LiExpandsToTwoInstructions)
{
    Program p = assemble("li a0, 0x12345678\n");
    ASSERT_EQ(p.bytes.size(), 8u);
    EXPECT_EQ(word(p, 0), encI(kOpLui, 10, 0, 0x1234));
    EXPECT_EQ(word(p, 1), encI(kOpOrI, 10, 10, 0x5678));
}

TEST(Assembler, LaUsesSymbolValue)
{
    Program p = assemble(R"(
        .org 0x80000000
        la a0, data
data:
        .word 42
    )");
    EXPECT_EQ(word(p, 0), encI(kOpLui, 10, 0, 0x8000));
    EXPECT_EQ(word(p, 1), encI(kOpOrI, 10, 10, 0x0008));
}

TEST(Assembler, EquAndExpressions)
{
    Program p = assemble(R"(
        .equ BASE, 0x1000
        li a0, BASE+8
        li a1, BASE-8
    )");
    EXPECT_EQ(word(p, 1), encI(kOpOrI, 10, 10, 0x1008));
    EXPECT_EQ(word(p, 3), encI(kOpOrI, 11, 11, 0x0FF8));
}

TEST(Assembler, PredefinedSymbols)
{
    Program p = assemble("li a0, DEV\n", {{"DEV", 0x40000000}});
    EXPECT_EQ(word(p, 0), encI(kOpLui, 10, 0, 0x4000));
}

TEST(Assembler, DirectivesWordSpaceAlignAsciz)
{
    Program p = assemble(R"(
        .org 0x80000000
        .word 1, 2, 3
        .space 4
        .align 8
        .asciz "hi"
    )");
    EXPECT_EQ(word(p, 0), 1u);
    EXPECT_EQ(word(p, 2), 3u);
    // 12 bytes words + 4 space = 16, aligned to 16; "hi\0" follows.
    EXPECT_EQ(p.bytes[16], 'h');
    EXPECT_EQ(p.bytes[17], 'i');
    EXPECT_EQ(p.bytes[18], 0);
}

TEST(Assembler, CsrNamesAndPseudo)
{
    Program p = assemble(R"(
        csrw mtvec, t0
        csrr a0, mcause
        csrs mie, t1
        csrc mstatus, t2
    )");
    EXPECT_EQ(word(p, 0), encCsr(kOpCsrRw, 0, 5, kCsrMTvec));
    EXPECT_EQ(word(p, 1), encCsr(kOpCsrRs, 10, 0, kCsrMCause));
    EXPECT_EQ(word(p, 2), encCsr(kOpCsrRs, 0, 6, kCsrMIe));
    EXPECT_EQ(word(p, 3), encCsr(kOpCsrRc, 0, 7, kCsrMStatus));
}

TEST(Assembler, PseudoInstructions)
{
    Program p = assemble(R"(
        nop
        mv a0, a1
        ret
        jr t0
        beqz a0, 0x8
        bnez a0, 0x8
    )");
    EXPECT_EQ(word(p, 0), encI(kOpAddI, 0, 0, 0));
    EXPECT_EQ(word(p, 1), encI(kOpAddI, 10, 11, 0));
    EXPECT_EQ(word(p, 2), encI(kOpJalr, 0, 1, 0));
    EXPECT_EQ(word(p, 3), encI(kOpJalr, 0, 5, 0));
}

TEST(Assembler, CommentsAndBlankLines)
{
    Program p = assemble(R"(
        # full-line comment
        nop   // trailing
        nop   ; another style

    )");
    EXPECT_EQ(p.bytes.size(), 8u);
}

TEST(Assembler, ErrorUnknownMnemonic)
{
    EXPECT_THROW(assemble("frobnicate a0\n"), SimError);
}

TEST(Assembler, ErrorUnknownSymbol)
{
    EXPECT_THROW(assemble("li a0, NOPE\n"), SimError);
}

TEST(Assembler, ErrorBadRegister)
{
    EXPECT_THROW(assemble("add a0, q7, a1\n"), SimError);
}

TEST(Assembler, ErrorImmediateRange)
{
    EXPECT_THROW(assemble("addi a0, a0, 70000\n"), SimError);
}

TEST(Assembler, ErrorWrongOperandCount)
{
    EXPECT_THROW(assemble("add a0, a1\n"), SimError);
}

TEST(Assembler, ErrorMessageHasLineNumber)
{
    try {
        assemble("nop\nnop\nbogus\n");
        FAIL() << "expected SimError";
    } catch (const SimError &e) {
        EXPECT_NE(std::string(e.what()).find("line 3"),
                  std::string::npos);
    }
}

TEST(Assembler, ProgramSymbolLookup)
{
    Program p = assemble(".org 0x80000000\nentry:\n    nop\n");
    EXPECT_EQ(p.symbol("entry"), 0x80000000u);
    EXPECT_THROW(p.symbol("missing"), SimError);
}

} // namespace
} // namespace bifsim::sa32
