// simlint self-tests: each seeded-violation fixture under
// tests/simlint_fixtures/ must be reported with the exact file, line
// and check tag a developer would need to fix it.  The fixtures
// mirror the repo layout (src/, docs/) so lint::Options defaults
// apply unchanged; SIMLINT_FIXTURE_DIR is injected by CMake.

#include "lint/simlint.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using bifsim::lint::Diag;
using bifsim::lint::Options;

namespace {

Options
fixture(const std::string &name)
{
    Options o;
    o.root = std::string(SIMLINT_FIXTURE_DIR) + "/" + name;
    return o;
}

bool
contains(const std::string &haystack, const std::string &needle)
{
    return haystack.find(needle) != std::string::npos;
}

} // namespace

TEST(Simlint, DuplicateTlvTagReportedAtSecondDefinition)
{
    std::vector<Diag> d =
        bifsim::lint::checkTagUniqueness(fixture("dup_tag"));
    ASSERT_EQ(d.size(), 1u);
    EXPECT_EQ(d[0].file, "src/serial_b.h");
    EXPECT_EQ(d[0].line, 6);
    EXPECT_EQ(d[0].check, "tlv-tag");
    // The message points back at the first claim of the 4CC.
    EXPECT_TRUE(contains(d[0].message, "\"DUPE\""));
    EXPECT_TRUE(contains(d[0].message, "src/serial_a.h:11"));
    // Read-side makeTag uses (serial_b.h:8) must not be flagged, and
    // the unique tag ALPH must not appear anywhere in the output.
    for (const Diag &diag : d)
        EXPECT_FALSE(contains(diag.message, "ALPH"));
}

TEST(Simlint, DuplicateFleetFrameTagReported)
{
    // Fleet frame kinds (FLT*) are minted with makeTag like snapshot
    // chunk tags, so the same check must catch a duplicated 4CC in
    // fleet protocol code.
    std::vector<Diag> d =
        bifsim::lint::checkTagUniqueness(fixture("dup_tag_fleet"));
    ASSERT_EQ(d.size(), 1u);
    EXPECT_EQ(d[0].file, "src/fleet_b.h");
    EXPECT_EQ(d[0].line, 6);
    EXPECT_EQ(d[0].check, "tlv-tag");
    EXPECT_TRUE(contains(d[0].message, "\"FLTZ\""));
    EXPECT_TRUE(contains(d[0].message, "src/fleet_a.h:11"));
}

TEST(Simlint, DbtParityFindsMissingAndOrphanHandlers)
{
    std::vector<Diag> d =
        bifsim::lint::checkDbtParity(fixture("missing_handler"));
    ASSERT_EQ(d.size(), 2u);
    // Op in the list without a handler body, at the X(Foo) line.
    EXPECT_EQ(d[0].file, "src/cpu/dbt.cc");
    EXPECT_EQ(d[0].line, 8);
    EXPECT_EQ(d[0].check, "dbt-parity");
    EXPECT_TRUE(contains(d[0].message, "op Foo"));
    EXPECT_TRUE(contains(d[0].message, "no HANDLER(Foo) body"));
    // Handler body with no list entry, at its definition line.
    EXPECT_EQ(d[1].file, "src/cpu/dbt.cc");
    EXPECT_EQ(d[1].line, 12);
    EXPECT_EQ(d[1].check, "dbt-parity");
    EXPECT_TRUE(contains(d[1].message, "HANDLER(Ghost)"));
    EXPECT_TRUE(contains(d[1].message, "no matching entry"));
}

TEST(Simlint, CounterRegistryFindsAllViolationKinds)
{
    std::vector<Diag> d =
        bifsim::lint::checkCounterRegistry(fixture("orphan_counter"));
    ASSERT_EQ(d.size(), 7u);
    // Scan-order first: duplicate emit at line 9 (first emit line 7).
    EXPECT_EQ(d[0].file, "src/instrument/stats.cc");
    EXPECT_EQ(d[0].line, 9);
    EXPECT_EQ(d[0].check, "counters");
    EXPECT_TRUE(contains(d[0].message, "\"sched.slices_run\""));
    EXPECT_TRUE(contains(d[0].message, "already emitted at line 7"));
    // Grammar violation at line 10.
    EXPECT_EQ(d[1].file, "src/instrument/stats.cc");
    EXPECT_EQ(d[1].line, 10);
    EXPECT_TRUE(contains(d[1].message, "\"sched.CamelCase\""));
    EXPECT_TRUE(contains(d[1].message, "grammar"));
    // Emitted but documented in NEITHER doc: one diag per doc, at the
    // emit line.
    EXPECT_EQ(d[2].file, "src/instrument/stats.cc");
    EXPECT_EQ(d[2].line, 8);
    EXPECT_TRUE(contains(d[2].message, "\"sched.bogus_counter\""));
    EXPECT_TRUE(contains(d[2].message, "docs/COUNTERS.md"));
    EXPECT_EQ(d[3].file, "src/instrument/stats.cc");
    EXPECT_EQ(d[3].line, 8);
    EXPECT_TRUE(contains(d[3].message, "\"sched.bogus_counter\""));
    EXPECT_TRUE(contains(d[3].message, "docs/METRICS.md"));
    // Documented in COUNTERS.md but missing from the exported-series
    // doc: the dual-doc requirement flags the gap.
    EXPECT_EQ(d[4].file, "src/instrument/stats.cc");
    EXPECT_EQ(d[4].line, 7);
    EXPECT_TRUE(contains(d[4].message, "\"sched.slices_run\""));
    EXPECT_TRUE(contains(d[4].message, "docs/METRICS.md"));
    // Documented but never emitted, at its line in each doc.
    EXPECT_EQ(d[5].file, "docs/COUNTERS.md");
    EXPECT_EQ(d[5].line, 6);
    EXPECT_TRUE(contains(d[5].message, "\"sys.ghost_counter\""));
    EXPECT_TRUE(contains(d[5].message, "not emitted"));
    EXPECT_EQ(d[6].file, "docs/METRICS.md");
    EXPECT_EQ(d[6].line, 7);
    EXPECT_TRUE(contains(d[6].message, "\"tlb.phantom_series\""));
    EXPECT_TRUE(contains(d[6].message, "not emitted"));
}

TEST(Simlint, MutexCoverageFlagsRawAndUnreferencedMutexes)
{
    std::vector<Diag> d =
        bifsim::lint::checkMutexCoverage(fixture("unguarded_mutex"));
    ASSERT_EQ(d.size(), 2u);
    // Raw standard mutex member.
    EXPECT_EQ(d[0].file, "src/widget.h");
    EXPECT_EQ(d[0].line, 9);
    EXPECT_EQ(d[0].check, "mutex-coverage");
    EXPECT_TRUE(contains(d[0].message, "sim:: wrappers"));
    // sim::Mutex member never named by an annotation.
    EXPECT_EQ(d[1].file, "src/widget.h");
    EXPECT_EQ(d[1].line, 11);
    EXPECT_EQ(d[1].check, "mutex-coverage");
    EXPECT_TRUE(contains(d[1].message, "lonely_"));
    // guarded_ is referenced by GUARDED_BY(busy_'s annotation) and
    // must not be flagged.
    for (const Diag &diag : d)
        EXPECT_FALSE(contains(diag.message, "guarded_"));
}

TEST(Simlint, MissingInputFilesAreFindingsNotSkips)
{
    // Point the dbt check at a fixture that has no src/cpu/dbt.cc:
    // a silently-skipped check is worse than a failing one.
    std::vector<Diag> d =
        bifsim::lint::checkDbtParity(fixture("dup_tag"));
    ASSERT_EQ(d.size(), 1u);
    EXPECT_EQ(d[0].file, "src/cpu/dbt.cc");
    EXPECT_EQ(d[0].line, 0);
    EXPECT_EQ(d[0].check, "dbt-parity");
    EXPECT_TRUE(contains(d[0].message, "missing"));
}

TEST(Simlint, RenderDiagFormatsFileLineCheckMessage)
{
    Diag d{"src/x.cc", 42, "tlv-tag", "boom"};
    EXPECT_EQ(bifsim::lint::renderDiag(d), "src/x.cc:42: [tlv-tag] boom");
    Diag whole{"src/x.cc", 0, "counters", "gone"};
    EXPECT_EQ(bifsim::lint::renderDiag(whole), "src/x.cc: [counters] gone");
}
