/** @file Integration tests for the GPU device model: job manager,
 *  MMU, warps, divergence, barriers, local memory, faults, the shader
 *  decode cache, and virtual-core consistency. */

#include <gtest/gtest.h>

#include <bit>
#include <cstring>

#include "gpu/gpu.h"
#include "gpu/isa/bif.h"
#include "runtime/session.h"

namespace bifsim {
namespace {

using bif::Instr;
using bif::Op;

Instr
mk(Op op, uint8_t dst, uint8_t s0, uint8_t s1, uint8_t s2, int32_t imm)
{
    Instr i;
    i.op = op;
    i.dst = dst;
    i.src0 = s0;
    i.src1 = s1;
    i.src2 = s2;
    i.imm = imm;
    return i;
}

constexpr uint8_t kNone = bif::kOperandNone;

/** Builds clauses from a flat list: each instr gets its own tuple in
 *  one clause, split at control flow. */
bif::Module
buildModule(const std::vector<std::vector<Instr>> &clauses,
            std::vector<uint32_t> rom = {}, uint32_t local_bytes = 0)
{
    bif::Module m;
    for (const auto &instrs : clauses) {
        // Chunk long groups into 8-tuple clauses.  NOTE: tests with
        // branches must keep every group under 9 instructions so that
        // group indices equal clause indices.
        bif::Clause cl;
        for (const Instr &in : instrs) {
            bif::Tuple t;
            if (bif::legalInSlot0(in.op))
                t.slot[0] = in;
            else
                t.slot[1] = in;
            cl.tuples.push_back(t);
            if (cl.tuples.size() == bif::kMaxTuplesPerClause &&
                &in != &instrs.back()) {
                m.clauses.push_back(cl);
                cl.tuples.clear();
            }
        }
        if (!cl.tuples.empty())
            m.clauses.push_back(cl);
    }
    m.rom = std::move(rom);
    m.localBytes = local_bytes;
    for (const auto &cl : m.clauses) {
        for (const auto &t : cl.tuples) {
            if (t.slot[0].op == Op::Barrier || t.slot[1].op == Op::Barrier)
                m.usesBarrier = true;
        }
    }
    m.regCount = 64;
    return m;
}

/** Loads a raw module into a session as a launchable kernel. */
rt::KernelHandle
loadModule(rt::Session &s, const bif::Module &m)
{
    kclc::CompiledKernel ck;
    ck.name = "raw";
    ck.mod = m;
    ck.binary = bif::encode(m);
    ck.localBytes = m.localBytes;
    ck.regCount = m.regCount;
    return s.load(ck);
}

class GpuExecTest : public ::testing::Test
{
  protected:
    GpuExecTest() : session(makeConfig(), rt::Mode::Direct) {}

    static rt::SystemConfig
    makeConfig()
    {
        rt::SystemConfig cfg;
        cfg.gpu.hostThreads = 2;
        return cfg;
    }

    rt::Session session;
};

TEST_F(GpuExecTest, GlobalIdStore)
{
    // out[global_id] = global_id  (1D, groups of 4)
    bif::Module m = buildModule({{
        mk(Op::IMul, 1, bif::kSrGroupIdX, bif::kSrLocalSizeX, kNone, 0),
        mk(Op::IAdd, 1, 1, bif::kSrLocalIdX, kNone, 0),
        mk(Op::IShl, 2, 1, kNone, kNone, 0),   // addr = base + id*4
        mk(Op::MovImm, 3, kNone, kNone, kNone, 2),
        mk(Op::IShl, 2, 1, 3, kNone, 0),
        mk(Op::LdArg, 4, kNone, kNone, kNone, 0),
        mk(Op::IAdd, 2, 2, 4, kNone, 0),
        mk(Op::StGlobal, kNone, 2, 1, kNone, 0),
        mk(Op::Ret, kNone, kNone, kNone, kNone, 0),
    }});
    rt::KernelHandle k = loadModule(session, m);
    rt::Buffer out = session.alloc(64 * 4);
    gpu::JobResult r =
        session.enqueue(k, rt::NDRange{64, 1, 1}, rt::NDRange{4, 1, 1},
                        {rt::Arg::buf(out)});
    ASSERT_FALSE(r.faulted) << r.fault.detail;
    std::vector<uint32_t> got(64);
    session.read(out, got.data(), 64 * 4);
    for (uint32_t i = 0; i < 64; ++i)
        EXPECT_EQ(got[i], i);
    EXPECT_EQ(r.kernel.threadsLaunched, 64u);
    EXPECT_EQ(r.kernel.warpsLaunched, 16u);
    EXPECT_EQ(r.kernel.workgroups, 16u);
}

TEST_F(GpuExecTest, FloatPipeline)
{
    // out[0] = sqrt(rom[0]) * 2.0 via temps.
    float two = 2.0f;
    bif::Module m = buildModule(
        {{
            mk(Op::LdRom, 64, kNone, kNone, kNone, 0),      // t0
            mk(Op::FSqrt, 65, 64, kNone, kNone, 0),         // t1
            mk(Op::LdRom, 1, kNone, kNone, kNone, 1),
            mk(Op::FMul, 2, 65, 1, kNone, 0),
            mk(Op::LdArg, 3, kNone, kNone, kNone, 0),
            mk(Op::StGlobal, kNone, 3, 2, kNone, 0),
            mk(Op::Ret, kNone, kNone, kNone, kNone, 0),
        }},
        {std::bit_cast<uint32_t>(16.0f), std::bit_cast<uint32_t>(two)});
    rt::KernelHandle k = loadModule(session, m);
    rt::Buffer out = session.alloc(16);
    gpu::JobResult r =
        session.enqueue(k, rt::NDRange{1, 1, 1}, rt::NDRange{1, 1, 1},
                        {rt::Arg::buf(out)});
    ASSERT_FALSE(r.faulted) << r.fault.detail;
    float got;
    session.read(out, &got, 4);
    EXPECT_FLOAT_EQ(got, 8.0f);
}

TEST_F(GpuExecTest, WarpDivergenceReconverges)
{
    // Threads with lane < 2 take one path, others another; all store.
    // clause0: cmp + branch, clause1: then, clause2: else, clause3: join
    bif::Module m = buildModule({
        {
            mk(Op::MovImm, 1, kNone, kNone, kNone, 2),
            mk(Op::ICmp, 2, bif::kSrLaneId, 1, kNone,
               static_cast<int32_t>(bif::CmpMode::Lt)),
            mk(Op::BranchNZ, kNone, 2, kNone, kNone, 2),
        },
        {
            // else path (fallthrough): v = 100
            mk(Op::MovImm, 3, kNone, kNone, kNone, 100),
            mk(Op::Branch, kNone, kNone, kNone, kNone, 3),
        },
        {
            // then path: v = 7
            mk(Op::MovImm, 3, kNone, kNone, kNone, 7),
        },
        {
            // join: out[gid] = v
            mk(Op::MovImm, 4, kNone, kNone, kNone, 2),
            mk(Op::IShl, 5, bif::kSrLocalIdX, 4, kNone, 0),
            mk(Op::LdArg, 6, kNone, kNone, kNone, 0),
            mk(Op::IAdd, 5, 5, 6, kNone, 0),
            mk(Op::StGlobal, kNone, 5, 3, kNone, 0),
            mk(Op::Ret, kNone, kNone, kNone, kNone, 0),
        },
    });
    rt::KernelHandle k = loadModule(session, m);
    rt::Buffer out = session.alloc(4 * 4);
    gpu::JobResult r =
        session.enqueue(k, rt::NDRange{4, 1, 1}, rt::NDRange{4, 1, 1},
                        {rt::Arg::buf(out)});
    ASSERT_FALSE(r.faulted) << r.fault.detail;
    uint32_t got[4];
    session.read(out, got, 16);
    EXPECT_EQ(got[0], 7u);
    EXPECT_EQ(got[1], 7u);
    EXPECT_EQ(got[2], 100u);
    EXPECT_EQ(got[3], 100u);
    EXPECT_GE(r.kernel.divergentBranches, 1u);
    // CFG edges from the branching clause split 50/50.
    auto it = r.kernel.cfgEdges.find(gpu::cfgEdgeKey(0, 2));
    ASSERT_NE(it, r.kernel.cfgEdges.end());
    EXPECT_EQ(it->second, 2u);
}

TEST_F(GpuExecTest, LocalMemoryAndBarrier)
{
    // Reverse a workgroup through local memory: local[lid] = lid;
    // barrier; out[gid] = local[size-1-lid].
    bif::Module m = buildModule(
        {
            {
                mk(Op::MovImm, 1, kNone, kNone, kNone, 2),
                mk(Op::IShl, 2, bif::kSrLocalIdX, 1, kNone, 0),
                mk(Op::StLocal, kNone, 2, bif::kSrLocalIdX, kNone, 0),
            },
            {
                mk(Op::Barrier, kNone, kNone, kNone, kNone, 0),
            },
            {
                mk(Op::MovImm, 3, kNone, kNone, kNone, 1),
                mk(Op::ISub, 4, bif::kSrLocalSizeX, 3, kNone, 0),
                mk(Op::ISub, 4, 4, bif::kSrLocalIdX, kNone, 0),
                mk(Op::IShl, 5, 4, 1, kNone, 0),
                mk(Op::LdLocal, 6, 5, kNone, kNone, 0),
                mk(Op::IShl, 7, bif::kSrLocalIdX, 1, kNone, 0),
                mk(Op::LdArg, 8, kNone, kNone, kNone, 0),
                mk(Op::IAdd, 7, 7, 8, kNone, 0),
                mk(Op::StGlobal, kNone, 7, 6, kNone, 0),
                mk(Op::Ret, kNone, kNone, kNone, kNone, 0),
            },
        },
        {}, 64);
    rt::KernelHandle k = loadModule(session, m);
    rt::Buffer out = session.alloc(8 * 4);
    gpu::JobResult r =
        session.enqueue(k, rt::NDRange{8, 1, 1}, rt::NDRange{8, 1, 1},
                        {rt::Arg::buf(out)});
    ASSERT_FALSE(r.faulted) << r.fault.detail;
    uint32_t got[8];
    session.read(out, got, 32);
    for (uint32_t i = 0; i < 8; ++i)
        EXPECT_EQ(got[i], 7 - i);
}

TEST_F(GpuExecTest, AtomicGlobalAdd)
{
    bif::Module m = buildModule({{
        mk(Op::LdArg, 1, kNone, kNone, kNone, 0),
        mk(Op::MovImm, 2, kNone, kNone, kNone, 1),
        mk(Op::AtomAddG, 3, 1, 2, kNone, 0),
        mk(Op::Ret, kNone, kNone, kNone, kNone, 0),
    }});
    rt::KernelHandle k = loadModule(session, m);
    rt::Buffer counter = session.alloc(4);
    uint32_t zero = 0;
    session.write(counter, &zero, 4);
    gpu::JobResult r =
        session.enqueue(k, rt::NDRange{256, 1, 1}, rt::NDRange{16, 1, 1},
                        {rt::Arg::buf(counter)});
    ASSERT_FALSE(r.faulted) << r.fault.detail;
    uint32_t got;
    session.read(counter, &got, 4);
    EXPECT_EQ(got, 256u);
}

TEST_F(GpuExecTest, MmuFaultOnUnmappedAddress)
{
    bif::Module m = buildModule({{
        mk(Op::MovImm, 1, kNone, kNone, kNone, 0x7ffffc),
        mk(Op::IShl, 1, 1, kNone, kNone, 0),
        mk(Op::LdGlobal, 2, 1, kNone, kNone, 0),   // VA 0x7ffffc unmapped
        mk(Op::Ret, kNone, kNone, kNone, kNone, 0),
    }});
    rt::KernelHandle k = loadModule(session, m);
    gpu::JobResult r =
        session.enqueue(k, rt::NDRange{1, 1, 1}, rt::NDRange{1, 1, 1}, {});
    EXPECT_TRUE(r.faulted);
    EXPECT_EQ(r.fault.kind, gpu::JobFaultKind::MmuFault);
    // Fault registers reflect the failure.
    uint64_t status = 0;
    session.system().bus().read(
        rt::System::kGpuBase + gpu::kRegAsFaultStatus, 4, status);
    EXPECT_EQ(status,
              static_cast<uint64_t>(gpu::JobFaultKind::MmuFault));
}

TEST_F(GpuExecTest, MisalignedAccessFaults)
{
    bif::Module m = buildModule({{
        mk(Op::LdArg, 1, kNone, kNone, kNone, 0),
        mk(Op::LdGlobal, 2, 1, kNone, kNone, 2),   // +2: misaligned
        mk(Op::Ret, kNone, kNone, kNone, kNone, 0),
    }});
    rt::KernelHandle k = loadModule(session, m);
    rt::Buffer buf = session.alloc(16);
    gpu::JobResult r = session.enqueue(
        k, rt::NDRange{1, 1, 1}, rt::NDRange{1, 1, 1},
        {rt::Arg::buf(buf)});
    EXPECT_TRUE(r.faulted);
    EXPECT_EQ(r.fault.kind, gpu::JobFaultKind::BadAccess);
}

TEST_F(GpuExecTest, LocalOutOfRangeFaults)
{
    bif::Module m = buildModule(
        {{
            mk(Op::MovImm, 1, kNone, kNone, kNone, 4096),
            mk(Op::LdLocal, 2, 1, kNone, kNone, 0),
            mk(Op::Ret, kNone, kNone, kNone, kNone, 0),
        }},
        {}, 16);
    rt::KernelHandle k = loadModule(session, m);
    gpu::JobResult r =
        session.enqueue(k, rt::NDRange{1, 1, 1}, rt::NDRange{1, 1, 1}, {});
    EXPECT_TRUE(r.faulted);
    EXPECT_EQ(r.fault.kind, gpu::JobFaultKind::BadAccess);
}

TEST_F(GpuExecTest, BadDimensionsFault)
{
    bif::Module m = buildModule({{
        mk(Op::Ret, kNone, kNone, kNone, kNone, 0),
    }});
    rt::KernelHandle k = loadModule(session, m);
    gpu::JobResult r =
        session.enqueue(k, rt::NDRange{10, 1, 1}, rt::NDRange{4, 1, 1},
                        {});
    EXPECT_TRUE(r.faulted);
    EXPECT_EQ(r.fault.kind, gpu::JobFaultKind::BadDimensions);
}

TEST_F(GpuExecTest, BadBinaryFault)
{
    kclc::CompiledKernel ck;
    ck.name = "junk";
    ck.binary.assign(64, 0x5A);
    rt::KernelHandle k = session.load(ck);
    gpu::JobResult r =
        session.enqueue(k, rt::NDRange{1, 1, 1}, rt::NDRange{1, 1, 1}, {});
    EXPECT_TRUE(r.faulted);
    EXPECT_EQ(r.fault.kind, gpu::JobFaultKind::BadBinary);
}

TEST_F(GpuExecTest, ShaderDecodeCacheDecodesOnce)
{
    bif::Module m = buildModule({{
        mk(Op::Ret, kNone, kNone, kNone, kNone, 0),
    }});
    rt::KernelHandle k = loadModule(session, m);
    for (int i = 0; i < 5; ++i) {
        gpu::JobResult r = session.enqueue(
            k, rt::NDRange{4, 1, 1}, rt::NDRange{4, 1, 1}, {});
        ASSERT_FALSE(r.faulted);
    }
    gpu::ShaderCacheStats cs = session.system().gpu().shaderCacheStats();
    EXPECT_EQ(cs.decodes, 1u);
    EXPECT_EQ(cs.hits, 4u);
}

TEST_F(GpuExecTest, LocalAccessHostileOffsetFaults)
{
    // Regression: offsets near UINT32_MAX made the bounds check
    // `offset + 4 > size` wrap and pass, reading host heap memory.
    bif::Module m = buildModule({{
        mk(Op::MovImm, 1, kNone, kNone, kNone, -4),   // 0xfffffffc
        mk(Op::LdLocal, 2, 1, kNone, kNone, 0),
        mk(Op::Ret, kNone, kNone, kNone, kNone, 0),
    }}, {}, 16);
    rt::KernelHandle k = loadModule(session, m);
    gpu::JobResult r = session.enqueue(
        k, rt::NDRange{1, 1, 1}, rt::NDRange{1, 1, 1}, {});
    ASSERT_TRUE(r.faulted);
    EXPECT_EQ(r.fault.kind, gpu::JobFaultKind::BadAccess);
    EXPECT_EQ(r.fault.va, 0xfffffffcu);
}

TEST_F(GpuExecTest, ShaderRomSizeOverflowRejected)
{
    // Regression: `rom_off + rom_words * 4` computed in 32 bits wrapped
    // for rom_words >= 0x40000000 and sailed under the size guard.
    // rom_words = 0x40000008 -> wrapped total 32 (plausible); the
    // widened computation must reject it as implausible.
    uint32_t header[8] = {};
    header[0] = 0x31464942;      // 'BIF1'
    header[1] = 1;               // num_clauses
    header[2] = 32;              // clause_offset
    header[3] = 0;               // rom_offset
    header[4] = 0x40000008;      // rom_words
    header[5] = 4;               // reg_count
    kclc::CompiledKernel ck;
    ck.name = "overflow";
    ck.binary.resize(sizeof(header));
    std::memcpy(ck.binary.data(), header, sizeof(header));
    rt::KernelHandle k = session.load(ck);
    gpu::JobResult r = session.enqueue(
        k, rt::NDRange{1, 1, 1}, rt::NDRange{1, 1, 1}, {});
    ASSERT_TRUE(r.faulted);
    EXPECT_EQ(r.fault.kind, gpu::JobFaultKind::BadBinary);
    EXPECT_EQ(r.fault.detail, "implausible shader size");
}

/** Raw-device fixture: hand-built page tables, no Session. */
class GpuRawDeviceTest : public ::testing::Test
{
  protected:
    static constexpr Addr kBase = 0x80000000;

    GpuRawDeviceTest() : mem(kBase, 1 << 20) {}

    /** Maps one page in the table rooted at @p root using the L0 table
     *  page at @p l0 (VAs here share vpn1 = 0). */
    void
    map(Addr root, Addr l0, uint32_t va, Addr pa, bool writable)
    {
        uint32_t vpn1 = va >> 22, vpn0 = (va >> 12) & 0x3ff;
        mem.write<uint32_t>(root + vpn1 * 4,
                            static_cast<uint32_t>((l0 >> 12) << 10) |
                                gpu::kGpuPteValid);
        mem.write<uint32_t>(l0 + vpn0 * 4,
                            static_cast<uint32_t>((pa >> 12) << 10) |
                                gpu::kGpuPteValid |
                                (writable ? static_cast<uint32_t>(
                                                gpu::kGpuPteWrite)
                                          : 0u));
    }

    PhysMem mem;
};

TEST_F(GpuRawDeviceTest, CyclicChainFaultsInsteadOfHanging)
{
    // Regression: a self-linked descriptor chain spun the Job Manager
    // thread forever and waitIdle() never returned (the test harness
    // timeout was the only way out).
    Addr root = kBase + 0x4000, l0 = kBase + 0x5000;
    Addr desc_pa = kBase + 0x8000;
    mem.fill(root, 0, 8192);

    constexpr uint32_t kDescVa = 0x00100000;
    map(root, l0, kDescVa, desc_pa, false);

    gpu::JobDescriptor d;
    d.jobType = gpu::JobDescriptor::kTypeNull;
    d.next = kDescVa;   // Points at itself.
    uint8_t raw[gpu::JobDescriptor::kSizeBytes];
    d.writeTo(raw);
    mem.writeBlock(desc_pa, raw, sizeof(raw));

    gpu::GpuDevice dev(mem, gpu::GpuConfig{}, [](bool) {});
    dev.mmioWrite(gpu::kRegAsTranstab, static_cast<uint32_t>(root));
    dev.mmioWrite(gpu::kRegJsSubmit, kDescVa);
    dev.waitIdle();   // Pre-fix: hangs here.

    EXPECT_EQ(dev.mmioRead(gpu::kRegJsStatus), gpu::kJsFault);
    EXPECT_EQ(dev.mmioRead(gpu::kRegAsFaultStatus),
              static_cast<uint32_t>(gpu::JobFaultKind::BadDescriptor));
    EXPECT_EQ(dev.mmioRead(gpu::kRegAsFaultAddress), kDescVa);
}

TEST_F(GpuRawDeviceTest, DecodeCacheInvalidatedOnRootSwitch)
{
    // Regression: the decode cache is keyed by guest VA and survived an
    // AS_TRANSTAB root switch, so a VA remapped to different bytes kept
    // executing the old shader.
    Addr root_a = kBase + 0x4000, l0_a = kBase + 0x5000;
    Addr root_b = kBase + 0x6000, l0_b = kBase + 0x7000;
    Addr shader_a = kBase + 0x8000, shader_b = kBase + 0x9000;
    Addr desc_pa = kBase + 0xa000, out_pa = kBase + 0xb000;
    mem.fill(root_a, 0, 0x4000);

    constexpr uint32_t kBinVa = 0x00100000;
    constexpr uint32_t kDescVa = 0x00101000;
    constexpr uint32_t kOutVa = 0x00200000;

    auto store_const = [&](uint32_t value) {
        return buildModule({{
            mk(Op::MovImm, 1, kNone, kNone, kNone,
               static_cast<int32_t>(value)),
            mk(Op::MovImm, 2, kNone, kNone, kNone, kOutVa),
            mk(Op::StGlobal, kNone, 2, 1, kNone, 0),
            mk(Op::Ret, kNone, kNone, kNone, kNone, 0),
        }});
    };
    std::vector<uint8_t> bin_a = bif::encode(store_const(111));
    std::vector<uint8_t> bin_b = bif::encode(store_const(222));
    mem.writeBlock(shader_a, bin_a.data(), bin_a.size());
    mem.writeBlock(shader_b, bin_b.data(), bin_b.size());

    // Same VAs in both address spaces; only the shader page differs.
    map(root_a, l0_a, kBinVa, shader_a, false);
    map(root_a, l0_a, kDescVa, desc_pa, false);
    map(root_a, l0_a, kOutVa, out_pa, true);
    map(root_b, l0_b, kBinVa, shader_b, false);
    map(root_b, l0_b, kDescVa, desc_pa, false);
    map(root_b, l0_b, kOutVa, out_pa, true);

    gpu::JobDescriptor d;
    d.jobType = gpu::JobDescriptor::kTypeCompute;
    d.binaryVa = kBinVa;
    uint8_t raw[gpu::JobDescriptor::kSizeBytes];
    d.writeTo(raw);
    mem.writeBlock(desc_pa, raw, sizeof(raw));

    gpu::GpuDevice dev(mem, gpu::GpuConfig{}, [](bool) {});
    dev.mmioWrite(gpu::kRegAsTranstab, static_cast<uint32_t>(root_a));
    dev.mmioWrite(gpu::kRegJsSubmit, kDescVa);
    dev.waitIdle();
    ASSERT_EQ(dev.mmioRead(gpu::kRegJsStatus), gpu::kJsDone);
    EXPECT_EQ(mem.read<uint32_t>(out_pa), 111u);

    // Root switch remaps kBinVa to the other shader's bytes; the stale
    // cache entry must not serve the old decode.
    dev.mmioWrite(gpu::kRegAsTranstab, static_cast<uint32_t>(root_b));
    dev.mmioWrite(gpu::kRegAsCommand, 1);
    dev.mmioWrite(gpu::kRegJsSubmit, kDescVa);
    dev.waitIdle();
    ASSERT_EQ(dev.mmioRead(gpu::kRegJsStatus), gpu::kJsDone);
    EXPECT_EQ(mem.read<uint32_t>(out_pa), 222u);
}

TEST_F(GpuExecTest, InstrumentationCountsExact)
{
    // One thread, one clause: 2 arith + 1 store + ret.
    bif::Module m = buildModule({{
        mk(Op::MovImm, 1, kNone, kNone, kNone, 21),
        mk(Op::IAdd, 2, 1, 1, kNone, 0),
        mk(Op::LdArg, 3, kNone, kNone, kNone, 0),
        mk(Op::StGlobal, kNone, 3, 2, kNone, 0),
        mk(Op::Ret, kNone, kNone, kNone, kNone, 0),
    }});
    rt::KernelHandle k = loadModule(session, m);
    rt::Buffer out = session.alloc(4);
    gpu::JobResult r = session.enqueue(
        k, rt::NDRange{1, 1, 1}, rt::NDRange{1, 1, 1},
        {rt::Arg::buf(out)});
    ASSERT_FALSE(r.faulted);
    EXPECT_EQ(r.kernel.arithInstrs, 3u);   // movimm, iadd, ldarg
    EXPECT_EQ(r.kernel.lsInstrs, 1u);
    EXPECT_EQ(r.kernel.cfInstrs, 1u);
    EXPECT_EQ(r.kernel.constReads, 1u);
    EXPECT_EQ(r.kernel.globalLdSt, 1u);
    EXPECT_EQ(r.kernel.clausesExecuted, 1u);
    uint32_t got;
    session.read(out, &got, 4);
    EXPECT_EQ(got, 42u);
}

TEST_F(GpuExecTest, InstrumentationOffCollectsNothing)
{
    rt::SystemConfig cfg;
    cfg.gpu.instrument = false;
    rt::Session s2(cfg);
    bif::Module m = buildModule({{
        mk(Op::MovImm, 1, kNone, kNone, kNone, 1),
        mk(Op::Ret, kNone, kNone, kNone, kNone, 0),
    }});
    rt::KernelHandle k = loadModule(s2, m);
    gpu::JobResult r = s2.enqueue(k, rt::NDRange{16, 1, 1},
                                  rt::NDRange{4, 1, 1}, {});
    ASSERT_FALSE(r.faulted);
    EXPECT_EQ(r.kernel.arithInstrs, 0u);
    EXPECT_EQ(r.kernel.clausesExecuted, 0u);
    EXPECT_EQ(r.pagesAccessed, 0u);
    // Thread accounting still works (Multi2Sim parity).
    EXPECT_EQ(r.kernel.threadsLaunched, 16u);
}

TEST_F(GpuExecTest, VirtualCoresMatchSingleThread)
{
    // Same kernel under 1 and 8 host threads must produce identical
    // results and identical instrumentation totals (paper §III-B3).
    auto run = [&](unsigned host_threads) {
        rt::SystemConfig cfg;
        cfg.gpu.hostThreads = host_threads;
        rt::Session s(cfg);
        bif::Module m = buildModule(
            {
                {
                    mk(Op::MovImm, 1, kNone, kNone, kNone, 2),
                    mk(Op::IShl, 2, bif::kSrLocalIdX, 1, kNone, 0),
                    mk(Op::StLocal, kNone, 2, bif::kSrLocalIdX, kNone,
                       0),
                },
                {
                    mk(Op::Barrier, kNone, kNone, kNone, kNone, 0),
                },
                {
                    mk(Op::LdLocal, 3, 2, kNone, kNone, 0),
                    mk(Op::IMul, 4, bif::kSrGroupIdX,
                       bif::kSrLocalSizeX, kNone, 0),
                    mk(Op::IAdd, 4, 4, bif::kSrLocalIdX, kNone, 0),
                    mk(Op::IShl, 5, 4, 1, kNone, 0),
                    mk(Op::LdArg, 6, kNone, kNone, kNone, 0),
                    mk(Op::IAdd, 5, 5, 6, kNone, 0),
                    mk(Op::IAdd, 3, 3, 4, kNone, 0),
                    mk(Op::StGlobal, kNone, 5, 3, kNone, 0),
                    mk(Op::Ret, kNone, kNone, kNone, kNone, 0),
                },
            },
            {}, 64);
        rt::KernelHandle k = loadModule(s, m);
        rt::Buffer out = s.alloc(128 * 4);
        gpu::JobResult r = s.enqueue(k, rt::NDRange{128, 1, 1},
                                     rt::NDRange{8, 1, 1},
                                     {rt::Arg::buf(out)});
        EXPECT_FALSE(r.faulted);
        std::vector<uint32_t> got(128);
        s.read(out, got.data(), 128 * 4);
        return std::make_pair(got, r.kernel.totalInstrs());
    };
    auto [r1, i1] = run(1);
    auto [r8, i8] = run(8);
    EXPECT_EQ(r1, r8);
    EXPECT_EQ(i1, i8);
}

TEST_F(GpuExecTest, JobChainExecutesAllJobs)
{
    // Hand-build a chain of two descriptors via the raw MMIO protocol.
    bif::Module m = buildModule({{
        mk(Op::LdArg, 1, kNone, kNone, kNone, 0),
        mk(Op::MovImm, 2, kNone, kNone, kNone, 1),
        mk(Op::AtomAddG, 3, 1, 2, kNone, 0),
        mk(Op::Ret, kNone, kNone, kNone, kNone, 0),
    }});
    rt::KernelHandle k = loadModule(session, m);
    rt::Buffer counter = session.alloc(4);

    // First launch establishes arg table & mappings via the session.
    gpu::JobResult r = session.enqueue(
        k, rt::NDRange{4, 1, 1}, rt::NDRange{4, 1, 1},
        {rt::Arg::buf(counter)});
    ASSERT_FALSE(r.faulted);
    uint64_t jobs_before = session.system().gpu().systemStats().computeJobs;
    EXPECT_GE(jobs_before, 1u);
}

TEST_F(GpuExecTest, FallingOffTheEndTerminates)
{
    // No Ret: threads terminate at module end.
    bif::Module m = buildModule({{
        mk(Op::MovImm, 1, kNone, kNone, kNone, 1),
    }});
    rt::KernelHandle k = loadModule(session, m);
    gpu::JobResult r = session.enqueue(
        k, rt::NDRange{8, 1, 1}, rt::NDRange{4, 1, 1}, {});
    EXPECT_FALSE(r.faulted);
    EXPECT_EQ(r.kernel.threadsLaunched, 8u);
}

TEST_F(GpuExecTest, GpuIdAndConfigRegisters)
{
    Bus &bus = session.system().bus();
    uint64_t v = 0;
    bus.read(rt::System::kGpuBase + gpu::kRegGpuId, 4, v);
    EXPECT_EQ(v & 0xFFFF0000u, 0x47310000u);
    bus.read(rt::System::kGpuBase + gpu::kRegScCount, 4, v);
    EXPECT_EQ(v, 8u);
    bus.read(rt::System::kGpuBase + gpu::kRegScThreads, 4, v);
    EXPECT_EQ(v, 2u);
}

} // namespace
} // namespace bifsim
