/** @file Unit tests for the m2ssim baseline simulator. */

#include <gtest/gtest.h>

#include "baseline/m2ssim.h"
#include "gpu/isa/bif.h"
#include "kclc/compiler.h"

namespace bifsim::baseline {
namespace {

const char *kSaxpy = R"(
kernel void saxpy(global const float* x, global float* y, int n,
                  float a) {
    int i = get_global_id(0);
    if (i < n) {
        y[i] = a * x[i] + y[i];
    }
}
)";

TEST(M2sSim, AllocatorBumpsAndAligns)
{
    M2sSim sim(1 << 20);
    uint32_t a = sim.alloc(100);
    uint32_t b = sim.alloc(100);
    EXPECT_NE(a, b);
    EXPECT_EQ(b % 4096, 0u);
}

TEST(M2sSim, RunsCompiledKernel)
{
    M2sSim sim(1 << 20);
    kclc::CompiledKernel k = kclc::compileKernel(kSaxpy, "saxpy");
    constexpr int kN = 100;
    uint32_t dx = sim.alloc(kN * 4), dy = sim.alloc(kN * 4);
    std::vector<float> x(kN), y(kN, 1.0f);
    for (int i = 0; i < kN; ++i)
        x[i] = static_cast<float>(i);
    sim.write(dx, x.data(), kN * 4);
    sim.write(dy, y.data(), kN * 4);
    uint32_t grid[3] = {128, 1, 1}, wg[3] = {64, 1, 1};
    std::vector<uint32_t> args = {dx, dy, kN,
                                  std::bit_cast<uint32_t>(3.0f)};
    std::string err;
    ASSERT_TRUE(sim.launch(k.binary, grid, wg, args, err)) << err;
    std::vector<float> got(kN);
    sim.read(dy, got.data(), kN * 4);
    for (int i = 0; i < kN; ++i)
        ASSERT_FLOAT_EQ(got[i], 3.0f * i + 1.0f);
    EXPECT_EQ(sim.stats().workItems, 128u);
    EXPECT_EQ(sim.stats().workGroups, 2u);
    EXPECT_GT(sim.stats().instructions, 0u);
}

TEST(M2sSim, ReDecodesEverySlot)
{
    // The defining baseline behaviour: slot decodes grow with executed
    // work, not with static code size.
    M2sSim sim(1 << 20);
    kclc::CompiledKernel k = kclc::compileKernel(kSaxpy, "saxpy");
    uint32_t buf = sim.alloc(4096);
    uint32_t grid[3] = {64, 1, 1}, wg[3] = {64, 1, 1};
    std::vector<uint32_t> args = {buf, buf, 0, 0};
    std::string err;
    ASSERT_TRUE(sim.launch(k.binary, grid, wg, args, err));
    uint64_t first = sim.stats().slotDecodes;
    ASSERT_TRUE(sim.launch(k.binary, grid, wg, args, err));
    EXPECT_EQ(sim.stats().slotDecodes, 2 * first);
}

TEST(M2sSim, RejectsBadBinary)
{
    M2sSim sim(1 << 20);
    std::vector<uint8_t> junk(128, 0xEE);
    uint32_t grid[3] = {1, 1, 1}, wg[3] = {1, 1, 1};
    std::string err;
    EXPECT_FALSE(sim.launch(junk, grid, wg, {}, err));
    EXPECT_FALSE(err.empty());
}

TEST(M2sSim, RejectsBadDimensions)
{
    M2sSim sim(1 << 20);
    kclc::CompiledKernel k = kclc::compileKernel(kSaxpy, "saxpy");
    uint32_t grid[3] = {10, 1, 1}, wg[3] = {4, 1, 1};
    std::string err;
    EXPECT_FALSE(sim.launch(k.binary, grid, wg, {}, err));
}

TEST(M2sSim, OutOfRangeAccessFails)
{
    M2sSim sim(1 << 20);
    kclc::CompiledKernel k = kclc::compileKernel(kSaxpy, "saxpy");
    uint32_t grid[3] = {64, 1, 1}, wg[3] = {64, 1, 1};
    // y buffer points near the end of device memory.
    std::vector<uint32_t> args = {0xFFFFF0, 0xFFFFF0, 64,
                                  std::bit_cast<uint32_t>(1.0f)};
    std::string err;
    EXPECT_FALSE(sim.launch(k.binary, grid, wg, args, err));
    EXPECT_NE(err.find("out of range"), std::string::npos);
}

TEST(M2sSim, BarrierPhasing)
{
    // Local-memory reversal requires correct barrier phasing even in
    // the scalar baseline.
    const char *src = R"(
kernel void rev(global int* out) {
    local int tile[8];
    int lid = get_local_id(0);
    tile[lid] = lid;
    barrier();
    out[lid] = tile[7 - lid];
}
)";
    M2sSim sim(1 << 20);
    kclc::CompiledKernel k = kclc::compileKernel(src, "rev");
    uint32_t out = sim.alloc(8 * 4);
    uint32_t grid[3] = {8, 1, 1}, wg[3] = {8, 1, 1};
    std::string err;
    ASSERT_TRUE(sim.launch(k.binary, grid, wg, {out}, err)) << err;
    uint32_t got[8];
    sim.read(out, got, 32);
    for (uint32_t i = 0; i < 8; ++i)
        EXPECT_EQ(got[i], 7 - i);
}

} // namespace
} // namespace bifsim::baseline
