/** @file Unit tests for guest memory and the system bus. */

#include <gtest/gtest.h>

#include "mem/bus.h"
#include "mem/phys_mem.h"

namespace bifsim {
namespace {

class StubDevice : public Device
{
  public:
    uint32_t lastWriteOffset = 0;
    uint32_t lastWriteValue = 0;
    int reads = 0;

    uint32_t
    mmioRead(Addr offset) override
    {
        reads++;
        return static_cast<uint32_t>(offset) + 0x100;
    }

    void
    mmioWrite(Addr offset, uint32_t value) override
    {
        lastWriteOffset = static_cast<uint32_t>(offset);
        lastWriteValue = value;
    }

    std::string name() const override { return "stub"; }
};

TEST(PhysMem, ReadWriteScalars)
{
    PhysMem m(0x80000000, 4096);
    m.write<uint32_t>(0x80000010, 0xCAFEBABE);
    EXPECT_EQ(m.read<uint32_t>(0x80000010), 0xCAFEBABEu);
    EXPECT_EQ(m.read<uint8_t>(0x80000010), 0xBEu);
    EXPECT_EQ(m.read<uint16_t>(0x80000012), 0xCAFEu);
    m.write<uint8_t>(0x80000013, 0x12);
    EXPECT_EQ(m.read<uint32_t>(0x80000010), 0x12FEBABEu);
}

TEST(PhysMem, Contains)
{
    PhysMem m(0x80000000, 4096);
    EXPECT_TRUE(m.contains(0x80000000, 4096));
    EXPECT_TRUE(m.contains(0x80000FFC, 4));
    EXPECT_FALSE(m.contains(0x80000FFD, 4));
    EXPECT_FALSE(m.contains(0x7FFFFFFF, 1));
    EXPECT_FALSE(m.contains(0x80001000, 1));
}

TEST(PhysMem, BlockOps)
{
    PhysMem m(0, 128);
    uint8_t src[4] = {1, 2, 3, 4};
    m.writeBlock(8, src, 4);
    uint8_t dst[4] = {};
    m.readBlock(8, dst, 4);
    EXPECT_EQ(dst[0], 1);
    EXPECT_EQ(dst[3], 4);
    m.fill(8, 0xEE, 2);
    EXPECT_EQ(m.read<uint8_t>(8), 0xEEu);
    EXPECT_EQ(m.read<uint8_t>(10), 3u);
}

TEST(Bus, RamRouting)
{
    PhysMem m(0x80000000, 4096);
    Bus bus;
    bus.attachMemory(&m);
    ASSERT_EQ(bus.write(0x80000020, 4, 0x1234), BusResult::Ok);
    uint64_t v = 0;
    ASSERT_EQ(bus.read(0x80000020, 4, v), BusResult::Ok);
    EXPECT_EQ(v, 0x1234u);
    ASSERT_EQ(bus.read(0x80000020, 8, v), BusResult::Ok);
    ASSERT_EQ(bus.read(0x80000020, 1, v), BusResult::Ok);
}

TEST(Bus, UnmappedIsError)
{
    PhysMem m(0x80000000, 4096);
    Bus bus;
    bus.attachMemory(&m);
    uint64_t v;
    EXPECT_EQ(bus.read(0x10000000, 4, v), BusResult::Unmapped);
    EXPECT_EQ(bus.write(0x90000000, 4, 1), BusResult::Unmapped);
}

TEST(Bus, DeviceRouting)
{
    Bus bus;
    StubDevice dev;
    bus.attachDevice(0x10000000, 0x1000, &dev);
    uint64_t v = 0;
    ASSERT_EQ(bus.read(0x10000008, 4, v), BusResult::Ok);
    EXPECT_EQ(v, 0x108u);
    ASSERT_EQ(bus.write(0x1000000C, 4, 77), BusResult::Ok);
    EXPECT_EQ(dev.lastWriteOffset, 0xCu);
    EXPECT_EQ(dev.lastWriteValue, 77u);
}

TEST(Bus, DeviceAccessSizeRules)
{
    Bus bus;
    StubDevice dev;
    bus.attachDevice(0x10000000, 0x1000, &dev);
    uint64_t v;
    EXPECT_EQ(bus.read(0x10000000, 1, v), BusResult::BadSize);
    EXPECT_EQ(bus.read(0x10000000, 8, v), BusResult::BadSize);
    EXPECT_EQ(bus.read(0x10000002, 4, v), BusResult::Misaligned);
    EXPECT_EQ(dev.reads, 0);
}

TEST(Bus, DeviceBoundary)
{
    Bus bus;
    StubDevice dev;
    bus.attachDevice(0x10000000, 0x1000, &dev);
    uint64_t v;
    EXPECT_EQ(bus.read(0x10000FFC, 4, v), BusResult::Ok);
    EXPECT_EQ(bus.read(0x10001000, 4, v), BusResult::Unmapped);
}

TEST(Bus, RamWinsOverDevice)
{
    // RAM and devices should not overlap, but if they do RAM wins
    // (checked first); this pins the routing priority.
    PhysMem m(0x80000000, 4096);
    Bus bus;
    StubDevice dev;
    bus.attachMemory(&m);
    bus.attachDevice(0x80000000, 0x1000, &dev);
    bus.write(0x80000000, 4, 5);
    uint64_t v;
    bus.read(0x80000000, 4, v);
    EXPECT_EQ(v, 5u);
    EXPECT_EQ(dev.reads, 0);
}

TEST(Bus, DeviceAt)
{
    Bus bus;
    StubDevice dev;
    bus.attachDevice(0x40000000, 0x10000, &dev);
    Addr base = 0;
    EXPECT_EQ(bus.deviceAt(0x40000abc, base), &dev);
    EXPECT_EQ(base, 0x40000000u);
    EXPECT_EQ(bus.deviceAt(0x50000000, base), nullptr);
}

} // namespace
} // namespace bifsim
