/**
 * @file
 * Work-stealing scheduler tests (DESIGN.md §5f): SliceDeque semantics
 * under concurrency, steal paths forced via GpuConfig::skewSlices,
 * worker-count invariance of results and instrumentation, scheduler
 * statistics, and the SC_THREADS auto-detection contract.
 *
 * The multi-threaded tests here are the designated TSan subjects for
 * the scheduler: they drive owner pop vs. thief steal races on the
 * deques and worker L1 vs. shared L2 traffic on the decode cache.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include "gpu/gpu.h"
#include "gpu/isa/bif.h"
#include "gpu/work_queue.h"
#include "runtime/session.h"

namespace bifsim {
namespace {

using bif::Instr;
using bif::Op;
using gpu::GroupSlice;
using gpu::SliceDeque;

// ---------------------------------------------------------------------
// SliceDeque unit semantics
// ---------------------------------------------------------------------

TEST(SliceDeque, OwnerPopsLifoThievesStealFifo)
{
    SliceDeque dq;
    dq.reset(4);
    dq.push(GroupSlice{0, 10});
    dq.push(GroupSlice{10, 20});
    dq.push(GroupSlice{20, 30});
    EXPECT_EQ(dq.sizeApprox(), 3u);

    GroupSlice s;
    // Owner takes the newest slice (bottom).
    ASSERT_TRUE(dq.pop(s));
    EXPECT_EQ(s.begin, 20u);
    EXPECT_EQ(s.end, 30u);
    // A thief takes the oldest (top).
    ASSERT_EQ(dq.steal(s), SliceDeque::Steal::Got);
    EXPECT_EQ(s.begin, 0u);
    EXPECT_EQ(s.end, 10u);
    // The middle slice remains for either end.
    ASSERT_TRUE(dq.pop(s));
    EXPECT_EQ(s.begin, 10u);
    EXPECT_FALSE(dq.pop(s));
    EXPECT_EQ(dq.steal(s), SliceDeque::Steal::Empty);
    EXPECT_EQ(dq.sizeApprox(), 0u);
}

TEST(SliceDeque, ResetReusesAndReclaimsSlots)
{
    SliceDeque dq;
    for (int round = 0; round < 3; ++round) {
        dq.reset(8);
        for (uint32_t i = 0; i < 8; ++i)
            dq.push(GroupSlice{i, i + 1});
        GroupSlice s;
        uint32_t seen = 0;
        while (dq.pop(s))
            seen++;
        EXPECT_EQ(seen, 8u);
    }
}

TEST(SliceDeque, PackRoundTripsExtremes)
{
    GroupSlice s{0xfffffff0u, 0xffffffffu};
    GroupSlice r = GroupSlice::unpack(s.pack());
    EXPECT_EQ(r.begin, s.begin);
    EXPECT_EQ(r.end, s.end);
    EXPECT_EQ(r.size(), 15u);
}

TEST(SliceDeque, ConcurrentOwnerAndThievesClaimEachSliceOnce)
{
    // 1024 single-group slices, one popping owner, three stealing
    // thieves: every group must be claimed exactly once.  This is the
    // core no-loss/no-duplication property the job scheduler rests on.
    constexpr uint32_t kSlices = 1024;
    constexpr unsigned kThieves = 3;
    SliceDeque dq;
    dq.reset(kSlices);
    for (uint32_t i = 0; i < kSlices; ++i)
        dq.push(GroupSlice{i, i + 1});

    std::vector<std::atomic<uint32_t>> claimed(kSlices);
    for (auto &c : claimed)
        c.store(0);
    std::atomic<bool> go{false};

    auto thief = [&] {
        while (!go.load(std::memory_order_acquire)) {
        }
        for (;;) {
            GroupSlice s;
            switch (dq.steal(s)) {
              case SliceDeque::Steal::Got:
                claimed[s.begin].fetch_add(1);
                break;
              case SliceDeque::Steal::Lost:
                break;   // Retry.
              case SliceDeque::Steal::Empty:
                return;
            }
        }
    };
    std::vector<std::thread> thieves;
    for (unsigned t = 0; t < kThieves; ++t)
        thieves.emplace_back(thief);

    go.store(true, std::memory_order_release);
    // Owner pops concurrently with the thieves.
    GroupSlice s;
    while (dq.pop(s))
        claimed[s.begin].fetch_add(1);
    for (std::thread &t : thieves)
        t.join();

    for (uint32_t i = 0; i < kSlices; ++i)
        EXPECT_EQ(claimed[i].load(), 1u) << "slice " << i;
}

// ---------------------------------------------------------------------
// Scheduler integration (through the runtime session)
// ---------------------------------------------------------------------

Instr
mk(Op op, uint8_t dst, uint8_t s0, uint8_t s1, uint8_t s2, int32_t imm)
{
    Instr i;
    i.op = op;
    i.dst = dst;
    i.src0 = s0;
    i.src1 = s1;
    i.src2 = s2;
    i.imm = imm;
    return i;
}

constexpr uint8_t kNone = bif::kOperandNone;

bif::Module
buildModule(const std::vector<std::vector<Instr>> &clauses)
{
    bif::Module m;
    for (const auto &instrs : clauses) {
        bif::Clause cl;
        for (const Instr &in : instrs) {
            bif::Tuple t;
            if (bif::legalInSlot0(in.op))
                t.slot[0] = in;
            else
                t.slot[1] = in;
            cl.tuples.push_back(t);
        }
        m.clauses.push_back(cl);
    }
    m.regCount = 64;
    return m;
}

/** A compute-heavy kernel of many tiny workgroups: each single-thread
 *  group runs a 500-iteration accumulate loop, then stores
 *  out[gid] = sum(1..500) + gid.  The loop makes each group expensive
 *  enough that a skewed distribution keeps worker 0 busy long enough
 *  for every other worker to wake and steal, even on a one-core host. */
bif::Module
tinyGroupsKernel()
{
    return buildModule({
        {
            // r1 = 500 (counter), r2 = 0 (acc)
            mk(Op::MovImm, 1, kNone, kNone, kNone, 500),
            mk(Op::MovImm, 2, kNone, kNone, kNone, 0),
            mk(Op::MovImm, 3, kNone, kNone, kNone, 1),
            mk(Op::MovImm, 7, kNone, kNone, kNone, 2),
        },
        {
            // loop: acc += counter; counter -= 1; if (counter) repeat
            mk(Op::IAdd, 2, 2, 1, kNone, 0),
            mk(Op::ISub, 1, 1, 3, kNone, 0),
            mk(Op::BranchNZ, kNone, 1, kNone, kNone, 1),
        },
        {
            // gid = group_id * local_size + local_id; acc += gid
            mk(Op::IMul, 4, bif::kSrGroupIdX, bif::kSrLocalSizeX, kNone,
               0),
            mk(Op::IAdd, 4, 4, bif::kSrLocalIdX, kNone, 0),
            mk(Op::IAdd, 2, 2, 4, kNone, 0),
            // out[gid] = acc
            mk(Op::IShl, 5, 4, 7, kNone, 0),
            mk(Op::LdArg, 6, kNone, kNone, kNone, 0),
            mk(Op::IAdd, 5, 5, 6, kNone, 0),
            mk(Op::StGlobal, kNone, 5, 2, kNone, 0),
            mk(Op::Ret, kNone, kNone, kNone, kNone, 0),
        },
    });
}

rt::KernelHandle
loadModule(rt::Session &s, const bif::Module &m)
{
    kclc::CompiledKernel ck;
    ck.name = "raw";
    ck.mod = m;
    ck.binary = bif::encode(m);
    ck.localBytes = m.localBytes;
    ck.regCount = m.regCount;
    return s.load(ck);
}

constexpr uint32_t kGroups = 1024;
constexpr uint32_t kLoopSum = 500 * 501 / 2;

struct SchedRun
{
    std::vector<uint32_t> out;
    gpu::KernelStats kernel;
    uint64_t pagesAccessed = 0;
    gpu::SchedStats sched;
};

SchedRun
runTinyGroups(unsigned host_threads, bool skew)
{
    rt::SystemConfig cfg;
    cfg.gpu.hostThreads = host_threads;
    cfg.gpu.skewSlices = skew;
    rt::Session s(cfg);
    rt::KernelHandle k = loadModule(s, tinyGroupsKernel());
    rt::Buffer out = s.alloc(kGroups * 4);
    gpu::JobResult r =
        s.enqueue(k, rt::NDRange{kGroups, 1, 1}, rt::NDRange{1, 1, 1},
                  {rt::Arg::buf(out)});
    EXPECT_FALSE(r.faulted) << r.fault.detail;
    SchedRun run;
    run.out.resize(kGroups);
    s.read(out, run.out.data(), kGroups * 4);
    run.kernel = r.kernel;
    run.pagesAccessed = r.pagesAccessed;
    run.sched = s.system().gpu().schedulerStats();
    return run;
}

TEST(GpuSched, ContentionStressSkewForcesStealing)
{
    // Every slice is dealt to worker 0; workers 1..7 can only make
    // progress by stealing.  Results must still be exact and the
    // scheduler must report actual steals.
    SchedRun run = runTinyGroups(8, /*skew=*/true);
    for (uint32_t i = 0; i < kGroups; ++i)
        ASSERT_EQ(run.out[i], kLoopSum + i) << "group " << i;
    EXPECT_EQ(run.sched.groupsRun, kGroups);
    EXPECT_GT(run.sched.slicesRun, 1u);
    EXPECT_GT(run.sched.steals, 0u) << "skewed slices were never stolen";
    EXPECT_GE(run.sched.stealAttempts, run.sched.steals);
    EXPECT_EQ(run.kernel.workgroups, kGroups);
}

TEST(GpuSched, ResultsInvariantUnderWorkerCountAndSkew)
{
    // The scheduler may run any workgroup on any worker in any order;
    // guest-visible results and instrumentation totals must not care.
    SchedRun base = runTinyGroups(1, false);
    for (uint32_t i = 0; i < kGroups; ++i)
        ASSERT_EQ(base.out[i], kLoopSum + i);
    for (unsigned threads : {2u, 8u}) {
        for (bool skew : {false, true}) {
            SchedRun run = runTinyGroups(threads, skew);
            EXPECT_EQ(run.out, base.out)
                << threads << " threads, skew=" << skew;
            EXPECT_EQ(run.kernel.totalInstrs(), base.kernel.totalInstrs());
            EXPECT_EQ(run.kernel.clausesExecuted,
                      base.kernel.clausesExecuted);
            EXPECT_EQ(run.kernel.workgroups, base.kernel.workgroups);
            EXPECT_EQ(run.kernel.threadsLaunched,
                      base.kernel.threadsLaunched);
            EXPECT_EQ(run.pagesAccessed, base.pagesAccessed);
            EXPECT_EQ(run.sched.groupsRun, kGroups);
        }
    }
}

TEST(GpuSched, SingleWorkerNeverSteals)
{
    SchedRun run = runTinyGroups(1, false);
    EXPECT_EQ(run.sched.steals, 0u);
    EXPECT_EQ(run.sched.stealAttempts, 0u);
    EXPECT_EQ(run.sched.groupsRun, kGroups);
}

TEST(GpuSched, SchedStatsClearedByResetStats)
{
    rt::SystemConfig cfg;
    cfg.gpu.hostThreads = 2;
    rt::Session s(cfg);
    rt::KernelHandle k = loadModule(s, tinyGroupsKernel());
    rt::Buffer out = s.alloc(kGroups * 4);
    gpu::JobResult r =
        s.enqueue(k, rt::NDRange{kGroups, 1, 1}, rt::NDRange{1, 1, 1},
                  {rt::Arg::buf(out)});
    ASSERT_FALSE(r.faulted);
    ASSERT_GT(s.system().gpu().schedulerStats().groupsRun, 0u);
    s.system().gpu().resetStats();
    gpu::SchedStats cleared = s.system().gpu().schedulerStats();
    EXPECT_EQ(cleared.groupsRun, 0u);
    EXPECT_EQ(cleared.slicesRun, 0u);
    EXPECT_EQ(cleared.steals, 0u);
}

TEST(GpuSched, WorkerShaderL1ServesRepeatJobs)
{
    // Back-to-back jobs with the same binary: after the first job the
    // workers' private shader L1s must serve the lookups without
    // touching the shared L2.
    rt::SystemConfig cfg;
    cfg.gpu.hostThreads = 2;
    rt::Session s(cfg);
    rt::KernelHandle k = loadModule(s, tinyGroupsKernel());
    rt::Buffer out = s.alloc(kGroups * 4);
    for (int i = 0; i < 3; ++i) {
        gpu::JobResult r =
            s.enqueue(k, rt::NDRange{kGroups, 1, 1},
                      rt::NDRange{1, 1, 1}, {rt::Arg::buf(out)});
        ASSERT_FALSE(r.faulted);
    }
    gpu::SchedStats sched = s.system().gpu().schedulerStats();
    // 3 jobs x 2 workers = 6 resolves; at most one L2 fill per worker.
    EXPECT_EQ(sched.shaderL1Hits + sched.shaderL2Fills, 6u);
    EXPECT_GE(sched.shaderL1Hits, 4u);
    // The submit path's own L1 also kept the guest-visible stats exact.
    gpu::ShaderCacheStats cs = s.system().gpu().shaderCacheStats();
    EXPECT_EQ(cs.decodes, 1u);
    EXPECT_EQ(cs.hits, 2u);
}

// ---------------------------------------------------------------------
// SC_THREADS / hostThreads resolution
// ---------------------------------------------------------------------

TEST(GpuSched, ScThreadsReportsRuntimeEffectiveCountAfterAutoDetect)
{
    // Regression: SC_THREADS used to echo the *configured* value, so a
    // guest reading it under hostThreads=0 (auto) saw 0 workers.
    unsetenv("BIFSIM_HOST_THREADS");
    PhysMem mem(0x80000000, 1 << 20);
    gpu::GpuConfig cfg;
    cfg.hostThreads = 0;
    gpu::GpuDevice dev(mem, cfg, [](bool) {});
    uint32_t sc = dev.mmioRead(gpu::kRegScThreads);
    EXPECT_GT(sc, 0u) << "auto-detect must never surface 0 workers";
    EXPECT_EQ(sc, dev.config().hostThreads);
}

TEST(GpuSched, ScThreadsHonoursEnvironmentOverride)
{
    setenv("BIFSIM_HOST_THREADS", "3", 1);
    PhysMem mem(0x80000000, 1 << 20);
    gpu::GpuConfig cfg;
    cfg.hostThreads = 0;
    gpu::GpuDevice dev(mem, cfg, [](bool) {});
    EXPECT_EQ(dev.mmioRead(gpu::kRegScThreads), 3u);
    EXPECT_EQ(dev.config().hostThreads, 3u);
    unsetenv("BIFSIM_HOST_THREADS");

    // An explicit configuration value beats the environment.
    setenv("BIFSIM_HOST_THREADS", "5", 1);
    gpu::GpuConfig fixed;
    fixed.hostThreads = 2;
    gpu::GpuDevice dev2(mem, fixed, [](bool) {});
    EXPECT_EQ(dev2.mmioRead(gpu::kRegScThreads), 2u);
    unsetenv("BIFSIM_HOST_THREADS");
}

TEST(GpuSched, ScThreadsReadableThroughFullSystemBus)
{
    // The guest driver reads SC_THREADS over the bus in FullSystem
    // mode; with auto-detection it must see the real pool size.
    rt::SystemConfig cfg;
    cfg.gpu.hostThreads = 0;
    rt::Session s(cfg, rt::Mode::FullSystem);
    uint64_t v = 0;
    s.system().bus().read(rt::System::kGpuBase + gpu::kRegScThreads, 4,
                          v);
    EXPECT_GT(v, 0u);
    EXPECT_EQ(v, s.system().gpu().config().hostThreads);
}

} // namespace
} // namespace bifsim
