/** @file Tests for the BIF static analyzer (src/analysis/): clause CFG
 *  construction, the seeded-violation diagnostic matrix, workload lint
 *  at every optimisation level, and the decode-time GPU verifier gate
 *  in both Direct and FullSystem modes. */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "analysis/analysis.h"
#include "guestos/guest_os.h"
#include "gpu/gpu.h"
#include "gpu/isa/bif.h"
#include "instrument/cfg.h"
#include "kclc/compiler.h"
#include "runtime/session.h"
#include "workloads/workload.h"

namespace bifsim {
namespace {

using analysis::Check;
using analysis::Severity;
using analysis::Strictness;
using bif::Instr;
using bif::Op;

constexpr uint8_t kNone = bif::kOperandNone;
constexpr uint8_t kT0 = bif::kOperandTemp0;

Instr
mk(Op op, uint8_t dst, uint8_t s0, uint8_t s1 = kNone,
   uint8_t s2 = kNone, int32_t imm = 0)
{
    Instr i;
    i.op = op;
    i.dst = dst;
    i.src0 = s0;
    i.src1 = s1;
    i.src2 = s2;
    i.imm = imm;
    return i;
}

/** One clause per instruction group; each instr gets its own tuple. */
bif::Module
buildModule(const std::vector<std::vector<Instr>> &clauses,
            uint32_t reg_count, std::vector<uint32_t> rom = {})
{
    bif::Module m;
    for (const auto &instrs : clauses) {
        bif::Clause cl;
        for (const Instr &in : instrs) {
            bif::Tuple t;
            if (bif::legalInSlot0(in.op))
                t.slot[0] = in;
            else
                t.slot[1] = in;
            cl.tuples.push_back(t);
        }
        m.clauses.push_back(cl);
    }
    m.rom = std::move(rom);
    m.regCount = reg_count;
    return m;
}

/** First diagnostic of class @p c, or nullptr. */
const analysis::Diag *
findDiag(const analysis::Result &r, Check c)
{
    for (const analysis::Diag &d : r.diags) {
        if (d.check == c)
            return &d;
    }
    return nullptr;
}

size_t
countDiags(const analysis::Result &r, Check c)
{
    size_t n = 0;
    for (const analysis::Diag &d : r.diags)
        n += d.check == c ? 1 : 0;
    return n;
}

// ---------------------------------------------------------------------
// Clause CFG construction.
// ---------------------------------------------------------------------

TEST(ClauseCfg, LinearFallThrough)
{
    bif::Module m = buildModule(
        {
            {mk(Op::MovImm, 1, kNone, kNone, kNone, 5)},
            {mk(Op::IAdd, 2, 1, 1)},
            {mk(Op::Ret, kNone, kNone)},
        },
        4);
    analysis::ClauseCfg cfg = analysis::ClauseCfg::build(m);
    ASSERT_EQ(cfg.nodes.size(), 3u);
    EXPECT_EQ(cfg.nodes[0].succs, (std::vector<uint32_t>{1}));
    EXPECT_EQ(cfg.nodes[1].succs, (std::vector<uint32_t>{2}));
    EXPECT_EQ(cfg.nodes[2].succs,
              (std::vector<uint32_t>{analysis::ClauseCfg::kExit}));
    EXPECT_EQ(cfg.nodes[1].preds, (std::vector<uint32_t>{0}));
    for (const auto &n : cfg.nodes)
        EXPECT_TRUE(n.reachable);
}

TEST(ClauseCfg, ConditionalBranchKeepsFallThrough)
{
    bif::Module m = buildModule(
        {
            {mk(Op::MovImm, 1, kNone, kNone, kNone, 1),
             mk(Op::BranchZ, kNone, 1, kNone, kNone, 2)},
            {mk(Op::MovImm, 2, kNone, kNone, kNone, 7)},
            {mk(Op::Ret, kNone, kNone)},
        },
        4);
    analysis::ClauseCfg cfg = analysis::ClauseCfg::build(m);
    EXPECT_EQ(cfg.nodes[0].succs, (std::vector<uint32_t>{1, 2}));
    EXPECT_EQ(cfg.nodes[2].preds, (std::vector<uint32_t>{0, 1}));
}

TEST(ClauseCfg, UnconditionalBranchDropsFallThrough)
{
    bif::Module m = buildModule(
        {
            {mk(Op::Branch, kNone, kNone, kNone, kNone, 2)},
            {mk(Op::MovImm, 1, kNone, kNone, kNone, 9)},   // Unreachable.
            {mk(Op::Ret, kNone, kNone)},
        },
        4);
    analysis::ClauseCfg cfg = analysis::ClauseCfg::build(m);
    EXPECT_EQ(cfg.nodes[0].succs, (std::vector<uint32_t>{2}));
    EXPECT_FALSE(cfg.nodes[1].reachable);
    EXPECT_TRUE(cfg.nodes[2].reachable);
}

TEST(ClauseCfg, FallingOffEndIsExit)
{
    bif::Module m =
        buildModule({{mk(Op::MovImm, 1, kNone, kNone, kNone, 3)}}, 4);
    analysis::ClauseCfg cfg = analysis::ClauseCfg::build(m);
    EXPECT_EQ(cfg.nodes[0].succs,
              (std::vector<uint32_t>{analysis::ClauseCfg::kExit}));
}

TEST(ClauseCfg, ConvertsToInstrumentCfgDot)
{
    bif::Module m = buildModule(
        {
            {mk(Op::MovImm, 1, kNone, kNone, kNone, 1),
             mk(Op::BranchNZ, kNone, 1, kNone, kNone, 2)},
            {mk(Op::MovImm, 2, kNone, kNone, kNone, 0)},
            {mk(Op::Ret, kNone, kNone)},
        },
        4);
    analysis::Result r = analysis::analyze(m);
    instrument::Cfg icfg = r.cfg.toInstrumentCfg();
    ASSERT_EQ(icfg.nodes.size(), 3u);
    EXPECT_TRUE(icfg.nodes[0].divergent);    // Two static successors.
    EXPECT_FALSE(icfg.nodes[2].divergent);
    std::string dot = instrument::toDot(icfg);
    EXPECT_NE(dot.find("digraph"), std::string::npos);
}

// ---------------------------------------------------------------------
// Seeded-violation matrix: each diagnostic class caught with the
// expected clause/tuple location.
// ---------------------------------------------------------------------

TEST(Analyzer, CleanModuleHasNoDiagnostics)
{
    bif::Module m = buildModule(
        {{
            mk(Op::MovImm, 1, kNone, kNone, kNone, 21),
            mk(Op::IAdd, 2, 1, 1),
            mk(Op::LdArg, 3, kNone, kNone, kNone, 0),
            mk(Op::StGlobal, kNone, 3, 2),
            mk(Op::Ret, kNone, kNone),
        }},
        4);
    analysis::Result r = analysis::analyze(m);
    EXPECT_TRUE(r.diags.empty()) << r.render();
}

TEST(Analyzer, DetectsUninitGrfRead)
{
    // r5 is read in clause 0 tuple 1 but never written anywhere.
    bif::Module m = buildModule(
        {{
            mk(Op::MovImm, 1, kNone, kNone, kNone, 1),
            mk(Op::IAdd, 2, 5, 1),
            mk(Op::LdArg, 3, kNone, kNone, kNone, 0),
            mk(Op::StGlobal, kNone, 3, 2),
            mk(Op::Ret, kNone, kNone),
        }},
        8);
    analysis::Result r = analysis::analyze(m);
    const analysis::Diag *d = findDiag(r, Check::UninitRead);
    ASSERT_NE(d, nullptr) << r.render();
    EXPECT_EQ(d->sev, Severity::Error);
    EXPECT_EQ(d->clause, 0u);
    EXPECT_EQ(d->tuple, 1u);
    EXPECT_EQ(d->reg, 5);
    EXPECT_TRUE(r.hasErrors());
    // An uninitialised read is lint, not unsafe: hardware reads zero.
    EXPECT_FALSE(r.hasUnsafe());
}

TEST(Analyzer, DetectsMaybeUninitReadOnOnePath)
{
    // Diamond: only the taken path writes r3; the join reads it.
    bif::Module m = buildModule(
        {
            {mk(Op::MovImm, 1, kNone, kNone, kNone, 1),
             mk(Op::BranchZ, kNone, 1, kNone, kNone, 2)},
            {mk(Op::MovImm, 3, kNone, kNone, kNone, 7)},
            {mk(Op::LdArg, 4, kNone, kNone, kNone, 0),
             mk(Op::StGlobal, kNone, 4, 3),
             mk(Op::Ret, kNone, kNone)},
        },
        8);
    analysis::Result r = analysis::analyze(m);
    const analysis::Diag *d = findDiag(r, Check::MaybeUninitRead);
    ASSERT_NE(d, nullptr) << r.render();
    EXPECT_EQ(d->sev, Severity::Warning);
    EXPECT_EQ(d->clause, 2u);
    EXPECT_EQ(d->reg, 3);
    EXPECT_EQ(findDiag(r, Check::UninitRead), nullptr) << r.render();
    EXPECT_FALSE(r.hasErrors());
}

TEST(Analyzer, DetectsTempLiveAcrossClause)
{
    // t0 written in clause 0, read in clause 1: temps do not survive
    // clause boundaries.
    bif::Module m = buildModule(
        {
            {mk(Op::MovImm, kT0, kNone, kNone, kNone, 11)},
            {mk(Op::Mov, 1, kT0),
             mk(Op::LdArg, 2, kNone, kNone, kNone, 0),
             mk(Op::StGlobal, kNone, 2, 1),
             mk(Op::Ret, kNone, kNone)},
        },
        4);
    analysis::Result r = analysis::analyze(m);
    const analysis::Diag *d = findDiag(r, Check::TempScope);
    ASSERT_NE(d, nullptr) << r.render();
    EXPECT_EQ(d->sev, Severity::Error);
    EXPECT_EQ(d->clause, 1u);
    EXPECT_EQ(d->tuple, 0u);
    EXPECT_EQ(d->reg, 0);
    EXPECT_TRUE(r.hasUnsafe());
}

TEST(Analyzer, DetectsDeadWrite)
{
    // r2 is written in clause 0 tuple 1 and never read again.
    bif::Module m = buildModule(
        {{
            mk(Op::MovImm, 1, kNone, kNone, kNone, 1),
            mk(Op::MovImm, 2, kNone, kNone, kNone, 99),
            mk(Op::LdArg, 3, kNone, kNone, kNone, 0),
            mk(Op::StGlobal, kNone, 3, 1),
            mk(Op::Ret, kNone, kNone),
        }},
        4);
    analysis::Result r = analysis::analyze(m);
    const analysis::Diag *d = findDiag(r, Check::DeadWrite);
    ASSERT_NE(d, nullptr) << r.render();
    EXPECT_EQ(d->sev, Severity::Warning);
    EXPECT_EQ(d->clause, 0u);
    EXPECT_EQ(d->tuple, 1u);
    EXPECT_EQ(d->reg, 2);
    // A value carried into a later clause is not a dead write.
    EXPECT_EQ(countDiags(r, Check::DeadWrite), 1u) << r.render();
}

TEST(Analyzer, RedefinitionBeforeUseIsDeadWrite)
{
    // First write to r1 is clobbered before any read.
    bif::Module m = buildModule(
        {{
            mk(Op::MovImm, 1, kNone, kNone, kNone, 5),
            mk(Op::MovImm, 1, kNone, kNone, kNone, 6),
            mk(Op::LdArg, 2, kNone, kNone, kNone, 0),
            mk(Op::StGlobal, kNone, 2, 1),
            mk(Op::Ret, kNone, kNone),
        }},
        4);
    analysis::Result r = analysis::analyze(m);
    const analysis::Diag *d = findDiag(r, Check::DeadWrite);
    ASSERT_NE(d, nullptr) << r.render();
    EXPECT_EQ(d->tuple, 0u);
    EXPECT_EQ(countDiags(r, Check::DeadWrite), 1u) << r.render();
}

TEST(Analyzer, DetectsOobRomIndex)
{
    bif::Module m = buildModule(
        {{
            mk(Op::LdRom, 1, kNone, kNone, kNone, 3),   // rom has 1 word
            mk(Op::LdArg, 2, kNone, kNone, kNone, 0),
            mk(Op::StGlobal, kNone, 2, 1),
            mk(Op::Ret, kNone, kNone),
        }},
        4, {42});
    analysis::Result r = analysis::analyze(m);
    const analysis::Diag *d = findDiag(r, Check::RomBounds);
    ASSERT_NE(d, nullptr) << r.render();
    EXPECT_EQ(d->sev, Severity::Error);
    EXPECT_EQ(d->clause, 0u);
    EXPECT_EQ(d->tuple, 0u);
    EXPECT_TRUE(r.hasUnsafe());
}

TEST(Analyzer, DetectsOobArgIndex)
{
    bif::Module m = buildModule(
        {{
            mk(Op::LdArg, 1, kNone, kNone, kNone, 64),  // Table: 64 words.
            mk(Op::Ret, kNone, kNone),
        }},
        4);
    analysis::Result r = analysis::analyze(m);
    const analysis::Diag *d = findDiag(r, Check::ArgBounds);
    ASSERT_NE(d, nullptr) << r.render();
    EXPECT_EQ(d->clause, 0u);
    EXPECT_EQ(d->tuple, 0u);
    EXPECT_TRUE(r.hasUnsafe());
}

TEST(Analyzer, DetectsGrfBeyondRegCount)
{
    // regCount says 2 but r7 is read and r9 written.
    bif::Module m = buildModule(
        {{
            mk(Op::IAdd, 9, 7, 7),
            mk(Op::Ret, kNone, kNone),
        }},
        2);
    analysis::Result r = analysis::analyze(m);
    EXPECT_EQ(countDiags(r, Check::GrfBounds), 2u) << r.render();
    const analysis::Diag *d = findDiag(r, Check::GrfBounds);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->clause, 0u);
    EXPECT_EQ(d->tuple, 0u);
    EXPECT_TRUE(r.hasUnsafe());
}

TEST(Analyzer, DetectsBadBranchTarget)
{
    bif::Module m = buildModule(
        {
            {mk(Op::MovImm, 1, kNone, kNone, kNone, 1),
             mk(Op::BranchZ, kNone, 1, kNone, kNone, 9)},
            {mk(Op::Ret, kNone, kNone)},
        },
        4);
    analysis::Result r = analysis::analyze(m);
    const analysis::Diag *d = findDiag(r, Check::BadBranch);
    ASSERT_NE(d, nullptr) << r.render();
    EXPECT_EQ(d->clause, 0u);
    EXPECT_EQ(d->tuple, 1u);
    EXPECT_TRUE(r.hasUnsafe());
}

TEST(Analyzer, NotesUnreachableClause)
{
    bif::Module m = buildModule(
        {
            {mk(Op::Branch, kNone, kNone, kNone, kNone, 2)},
            {mk(Op::MovImm, 1, kNone, kNone, kNone, 1)},
            {mk(Op::Ret, kNone, kNone)},
        },
        4);
    analysis::Result r = analysis::analyze(m);
    const analysis::Diag *d = findDiag(r, Check::Unreachable);
    ASSERT_NE(d, nullptr) << r.render();
    EXPECT_EQ(d->sev, Severity::Note);
    EXPECT_EQ(d->clause, 1u);
}

TEST(Analyzer, RenderIncludesLocationAndExcerpt)
{
    bif::Module m = buildModule(
        {{
            mk(Op::LdRom, 1, kNone, kNone, kNone, 8),
            mk(Op::Ret, kNone, kNone),
        }},
        4);
    analysis::Result r = analysis::analyze(m);
    std::string text = r.render();
    EXPECT_NE(text.find("error"), std::string::npos) << text;
    EXPECT_NE(text.find("clause 0 tuple 0"), std::string::npos) << text;
    EXPECT_NE(text.find("rom-bounds"), std::string::npos) << text;
    EXPECT_NE(text.find("ldrom"), std::string::npos) << text;
}

// ---------------------------------------------------------------------
// Strictness / rejection policy.
// ---------------------------------------------------------------------

TEST(Analyzer, StrictnessGatesRejection)
{
    // Lint-only defect (uninit read): executes at kUnsafe, rejected at
    // kStrict, always accepted at kOff.
    bif::Module lint = buildModule(
        {{
            mk(Op::LdArg, 2, kNone, kNone, kNone, 0),
            mk(Op::StGlobal, kNone, 2, 1),   // r1 never written.
            mk(Op::Ret, kNone, kNone),
        }},
        4);
    analysis::Result rl = analysis::analyze(lint);
    EXPECT_EQ(analysis::firstRejected(rl, Strictness::kOff), nullptr);
    EXPECT_EQ(analysis::firstRejected(rl, Strictness::kUnsafe), nullptr);
    EXPECT_NE(analysis::firstRejected(rl, Strictness::kStrict), nullptr);

    // Unsafe defect (OOB ROM): rejected at kUnsafe and kStrict.
    bif::Module unsafe = buildModule(
        {{
            mk(Op::LdRom, 1, kNone, kNone, kNone, 4),
            mk(Op::Ret, kNone, kNone),
        }},
        4);
    analysis::Result ru = analysis::analyze(unsafe);
    EXPECT_EQ(analysis::firstRejected(ru, Strictness::kOff), nullptr);
    const analysis::Diag *d =
        analysis::firstRejected(ru, Strictness::kUnsafe);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->check, Check::RomBounds);
}

// ---------------------------------------------------------------------
// kclc workload lint: zero error-severity findings at O0..O3 on every
// Table II workload (the CI gate biflint --check-workloads mirrors).
// ---------------------------------------------------------------------

TEST(WorkloadLint, AllWorkloadsCleanAtEveryOptLevel)
{
    for (const std::string &name : workloads::allWorkloadNames()) {
        std::unique_ptr<workloads::Workload> w =
            workloads::makeWorkload(name);
        std::string src = w->source();
        for (int level = 0; level <= 3; ++level) {
            kclc::CompilerOptions opts =
                kclc::CompilerOptions::forLevel(level);
            // compileAll itself runs the analyzer gate and throws on
            // error-severity findings; re-check explicitly anyway.
            std::vector<kclc::CompiledKernel> kernels =
                kclc::compileAll(src, opts);
            for (const kclc::CompiledKernel &k : kernels) {
                analysis::Result r = analysis::analyze(k.mod);
                EXPECT_EQ(r.count(Severity::Error), 0u)
                    << name << ":" << k.name << " at O" << level << "\n"
                    << r.render();
                EXPECT_FALSE(r.hasUnsafe())
                    << name << ":" << k.name << " at O" << level << "\n"
                    << r.render();
            }
        }
    }
}

// ---------------------------------------------------------------------
// The GPU decode-time verifier.
// ---------------------------------------------------------------------

/** OOB LdRom passes bif::validate/encode (the interpreters define the
 *  read as zero only on the legacy path; the verifier must catch it
 *  before execution). */
bif::Module
oobRomModule()
{
    return buildModule(
        {{
            mk(Op::LdRom, 1, kNone, kNone, kNone, 3),   // No ROM at all.
            mk(Op::LdArg, 2, kNone, kNone, kNone, 0),
            mk(Op::StGlobal, kNone, 2, 1),
            mk(Op::Ret, kNone, kNone),
        }},
        4);
}

rt::KernelHandle
loadModule(rt::Session &s, const bif::Module &m)
{
    kclc::CompiledKernel ck;
    ck.name = "raw";
    ck.mod = m;
    ck.binary = bif::encode(m);
    ck.localBytes = m.localBytes;
    ck.regCount = m.regCount;
    return s.load(ck);
}

TEST(GpuVerifier, RejectsUnsafeShaderWithJobFault)
{
    rt::SystemConfig cfg;
    cfg.gpu.hostThreads = 2;
    rt::Session s(cfg, rt::Mode::Direct);
    rt::KernelHandle k = loadModule(s, oobRomModule());
    rt::Buffer out = s.alloc(16);
    gpu::JobResult r = s.enqueue(k, rt::NDRange{1, 1, 1},
                                 rt::NDRange{1, 1, 1},
                                 {rt::Arg::buf(out)});
    ASSERT_TRUE(r.faulted);
    EXPECT_EQ(r.fault.kind, gpu::JobFaultKind::ShaderVerify);
    EXPECT_NE(r.fault.detail.find("rom-bounds"), std::string::npos)
        << r.fault.detail;
    uint64_t status = 0;
    s.system().bus().read(
        rt::System::kGpuBase + gpu::kRegAsFaultStatus, 4, status);
    EXPECT_EQ(status,
              static_cast<uint64_t>(gpu::JobFaultKind::ShaderVerify));
}

TEST(GpuVerifier, OffStrictnessExecutesTheSameShader)
{
    rt::SystemConfig cfg;
    cfg.gpu.hostThreads = 2;
    cfg.gpu.verify = Strictness::kOff;
    rt::Session s(cfg, rt::Mode::Direct);
    rt::KernelHandle k = loadModule(s, oobRomModule());
    rt::Buffer out = s.alloc(16);
    uint32_t sentinel = 0xdeadbeef;
    s.write(out, &sentinel, 4);
    gpu::JobResult r = s.enqueue(k, rt::NDRange{1, 1, 1},
                                 rt::NDRange{1, 1, 1},
                                 {rt::Arg::buf(out)});
    ASSERT_FALSE(r.faulted) << r.fault.detail;
    // The architectural semantics of an OOB ROM read is zero.
    uint32_t got = 1;
    s.read(out, &got, 4);
    EXPECT_EQ(got, 0u);
}

TEST(GpuVerifier, StrictModeRejectsLintFindings)
{
    // Uninitialised GRF read: executes at default strictness...
    bif::Module m = buildModule(
        {{
            mk(Op::LdArg, 2, kNone, kNone, kNone, 0),
            mk(Op::StGlobal, kNone, 2, 1),   // r1 never written.
            mk(Op::Ret, kNone, kNone),
        }},
        4);
    {
        rt::SystemConfig cfg;
        cfg.gpu.hostThreads = 2;
        rt::Session s(cfg, rt::Mode::Direct);
        rt::KernelHandle k = loadModule(s, m);
        rt::Buffer out = s.alloc(16);
        gpu::JobResult r = s.enqueue(k, rt::NDRange{1, 1, 1},
                                     rt::NDRange{1, 1, 1},
                                     {rt::Arg::buf(out)});
        EXPECT_FALSE(r.faulted) << r.fault.detail;
    }
    // ...but kStrict refuses to run it.
    {
        rt::SystemConfig cfg;
        cfg.gpu.hostThreads = 2;
        cfg.gpu.verify = Strictness::kStrict;
        rt::Session s(cfg, rt::Mode::Direct);
        rt::KernelHandle k = loadModule(s, m);
        rt::Buffer out = s.alloc(16);
        gpu::JobResult r = s.enqueue(k, rt::NDRange{1, 1, 1},
                                     rt::NDRange{1, 1, 1},
                                     {rt::Arg::buf(out)});
        ASSERT_TRUE(r.faulted);
        EXPECT_EQ(r.fault.kind, gpu::JobFaultKind::ShaderVerify);
    }
}

TEST(GpuVerifier, FullSystemFaultRaisesIrqThroughDriver)
{
    // The rejected shader must surface as an architectural job fault:
    // the guest driver observes JOB_FAULT, reports RESULT=1 through the
    // mailbox, and the IRQ count advances.
    rt::Session s(rt::SystemConfig(), rt::Mode::FullSystem);
    rt::KernelHandle k = loadModule(s, oobRomModule());
    rt::Buffer out = s.alloc(4096);
    gpu::JobResult r = s.enqueue(k, rt::NDRange{1, 1, 1},
                                 rt::NDRange{1, 1, 1},
                                 {rt::Arg::buf(out)});
    ASSERT_TRUE(r.faulted);
    EXPECT_EQ(r.fault.kind, gpu::JobFaultKind::ShaderVerify);
    guestos::Layout lay = guestos::defaultLayout(rt::System::kRamBase);
    EXPECT_EQ(s.system().mem().read<uint32_t>(lay.mailbox +
                                              guestos::kMbResult),
              1u);
    EXPECT_GE(s.system().mem().read<uint32_t>(lay.mailbox +
                                              guestos::kMbIrqCount),
              1u);
}

TEST(GpuVerifier, VerifierDiagnosticsLandInTrace)
{
    rt::SystemConfig cfg;
    cfg.gpu.hostThreads = 2;
    cfg.gpu.trace = true;
    rt::Session s(cfg, rt::Mode::Direct);
    rt::KernelHandle k = loadModule(s, oobRomModule());
    gpu::JobResult r = s.enqueue(k, rt::NDRange{1, 1, 1},
                                 rt::NDRange{1, 1, 1}, {});
    ASSERT_TRUE(r.faulted);
    std::ostringstream os;
    s.system().gpu().tracer().exportChromeJson(os);
    std::string json = os.str();
    EXPECT_NE(json.find("rom-bounds"), std::string::npos);
    EXPECT_NE(json.find("\"verify\""), std::string::npos);
}

} // namespace
} // namespace bifsim
