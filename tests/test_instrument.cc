/** @file Tests for the instrumentation layer: decode-time clause
 *  analysis, CFG reconstruction, and stats merging. */

#include <gtest/gtest.h>

#include "instrument/cfg.h"
#include "instrument/stats.h"

namespace bifsim::gpu {
namespace {

using bif::Instr;
using bif::Op;

constexpr uint8_t kNone = bif::kOperandNone;

Instr
mk(Op op, uint8_t dst, uint8_t s0, uint8_t s1, uint8_t s2, int32_t imm)
{
    Instr i;
    i.op = op;
    i.dst = dst;
    i.src0 = s0;
    i.src1 = s1;
    i.src2 = s2;
    i.imm = imm;
    return i;
}

TEST(ClauseAnalysis, CountsCategoriesAndAccesses)
{
    bif::Module m;
    bif::Clause cl;
    bif::Tuple t1;
    // slot0: FMA r1 <- r2, t0, special; slot1: temp write.
    t1.slot[0] = mk(Op::MovImm, bif::kOperandTemp0, kNone, kNone, kNone,
                    5);
    t1.slot[1] = mk(Op::IAdd, 1, 2, bif::kOperandTemp0, kNone, 0);
    bif::Tuple t2;
    t2.slot[0] = mk(Op::LdGlobal, 3, 1, kNone, kNone, 0);
    t2.slot[1] = mk(Op::Ret, kNone, kNone, kNone, kNone, 0);
    cl.tuples = {t1, t2};
    m.clauses.push_back(cl);

    std::vector<ClauseStaticInfo> info = analyzeClauses(m);
    ASSERT_EQ(info.size(), 1u);
    const ClauseStaticInfo &ci = info[0];
    EXPECT_EQ(ci.sizeTuples, 2u);
    EXPECT_EQ(ci.arith, 2u);      // MovImm + IAdd.
    EXPECT_EQ(ci.ls, 1u);         // LdGlobal.
    EXPECT_EQ(ci.cf, 1u);         // Ret.
    EXPECT_EQ(ci.nop, 0u);
    EXPECT_EQ(ci.tempWrites, 1u);
    EXPECT_EQ(ci.tempReads, 1u);
    EXPECT_EQ(ci.grfWrites, 2u);  // r1, r3.
    EXPECT_EQ(ci.grfReads, 2u);   // r2 and r1 (address).
    EXPECT_EQ(ci.globalLd, 1u);
    EXPECT_EQ(ci.globalSt, 0u);
}

TEST(ClauseAnalysis, EmptySlotsAreNops)
{
    bif::Module m;
    bif::Clause cl;
    bif::Tuple t;
    t.slot[0] = mk(Op::IAdd, 0, 0, 0, kNone, 0);
    // slot1 left Nop.
    cl.tuples = {t};
    m.clauses.push_back(cl);
    std::vector<ClauseStaticInfo> info = analyzeClauses(m);
    EXPECT_EQ(info[0].nop, 1u);
}

TEST(ClauseAnalysis, SpecialsCountAsGrfReads)
{
    bif::Module m;
    bif::Clause cl;
    bif::Tuple t;
    t.slot[0] =
        mk(Op::IAdd, 0, bif::kSrLocalIdX, bif::kSrGroupIdX, kNone, 0);
    cl.tuples = {t};
    m.clauses.push_back(cl);
    EXPECT_EQ(analyzeClauses(m)[0].grfReads, 2u);
}

TEST(ClauseAnalysis, AtomicsCountBothWays)
{
    bif::Module m;
    bif::Clause cl;
    bif::Tuple t;
    t.slot[0] = mk(Op::AtomAddG, 1, 2, 3, kNone, 0);
    cl.tuples = {t};
    m.clauses.push_back(cl);
    const ClauseStaticInfo ci = analyzeClauses(m)[0];
    EXPECT_EQ(ci.globalLd, 1u);
    EXPECT_EQ(ci.globalSt, 1u);
    EXPECT_EQ(ci.ls, 1u);
}

TEST(KernelStatsTest, MergeAccumulates)
{
    KernelStats a, b;
    a.arithInstrs = 10;
    a.clauseSizes.sample(2, 5);
    a.cfgEdges[cfgEdgeKey(0, 1)] = 3;
    b.arithInstrs = 7;
    b.clauseSizes.sample(2, 1);
    b.cfgEdges[cfgEdgeKey(0, 1)] = 2;
    b.cfgEdges[cfgEdgeKey(1, 2)] = 9;
    a.merge(b);
    EXPECT_EQ(a.arithInstrs, 17u);
    EXPECT_EQ(a.clauseSizes.count(2), 6u);
    EXPECT_EQ(a.cfgEdges[cfgEdgeKey(0, 1)], 5u);
    EXPECT_EQ(a.cfgEdges[cfgEdgeKey(1, 2)], 9u);
}

TEST(KernelStatsTest, TotalsAndAverages)
{
    KernelStats s;
    s.arithInstrs = 6;
    s.lsInstrs = 3;
    s.cfInstrs = 1;
    s.nopSlots = 2;
    EXPECT_EQ(s.totalInstrs(), 10u);
    EXPECT_EQ(s.totalSlots(), 12u);
    s.clauseSizes.sample(4, 10);
    EXPECT_DOUBLE_EQ(s.avgClauseSize(), 4.0);
}

TEST(CfgBuild, EdgesAndDivergence)
{
    KernelStats s;
    s.cfgEdges[cfgEdgeKey(0, 1)] = 75;
    s.cfgEdges[cfgEdgeKey(0, 2)] = 25;
    s.cfgEdges[cfgEdgeKey(2, instrument::kCfgExit)] = 25;
    instrument::Cfg cfg = instrument::buildCfg(s);
    ASSERT_EQ(cfg.nodes.size(), 2u);
    const instrument::CfgNode &n0 = cfg.nodes[0];
    EXPECT_EQ(n0.clause, 0u);
    EXPECT_TRUE(n0.divergent);
    EXPECT_EQ(n0.outThreads, 100u);
    EXPECT_FALSE(cfg.nodes[1].divergent);
    double frac = 0;
    for (const instrument::CfgEdge &e : cfg.edges) {
        if (e.from == 0 && e.to == 1)
            frac = e.fraction;
    }
    EXPECT_DOUBLE_EQ(frac, 0.75);
}

TEST(CfgBuild, DotOutput)
{
    KernelStats s;
    s.cfgEdges[cfgEdgeKey(3, 4)] = 10;
    instrument::Cfg cfg = instrument::buildCfg(s);
    std::string dot = instrument::toDot(cfg);
    EXPECT_NE(dot.find("digraph"), std::string::npos);
    EXPECT_NE(dot.find(instrument::nodeLabel(3)), std::string::npos);
    EXPECT_NE(dot.find("100.00%"), std::string::npos);
}

TEST(CfgBuild, NodeLabels)
{
    EXPECT_EQ(instrument::nodeLabel(instrument::kCfgExit), "exit");
    EXPECT_EQ(instrument::nodeLabel(0), "aa000070");
    EXPECT_EQ(instrument::nodeLabel(1), "aa000080");
}

TEST(WorkerCollectorTest, ResetClears)
{
    WorkerCollector c;
    c.reset(4);
    c.clauseExec[2] = 7;
    c.pages.insert(123);
    c.kernel.arithInstrs = 9;
    c.reset(2);
    EXPECT_EQ(c.clauseExec.size(), 2u);
    EXPECT_EQ(c.clauseExec[0], 0u);
    EXPECT_TRUE(c.pages.empty());
    EXPECT_EQ(c.kernel.arithInstrs, 0u);
}

} // namespace
} // namespace bifsim::gpu
