/**
 * @file
 * Adversarial snapshot-loader testing (mirrors the bif::decode
 * mutation fuzz): byte-truncation and byte-mutation corpora over a
 * real snapshot image.  Every hostile image must either restore
 * cleanly or fail with a located SnapshotError — never crash, never
 * leave a System half-restored (a failed restore resets the machine).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "runtime/session.h"
#include "snapshot/snapshot.h"
#include "soc/devices.h"

namespace bifsim {
namespace {

using snapshot::ChunkReader;
using snapshot::ChunkWriter;
using snapshot::Image;
using snapshot::SnapshotError;
using snapshot::Writer;

rt::SystemConfig
fuzzCfg()
{
    rt::SystemConfig cfg;
    cfg.ramBytes = 32u << 20;
    cfg.gpu.hostThreads = 2;
    return cfg;
}

/** A marker the corpus image plants in guest RAM; a failed restore
 *  must wipe it (reset), a clean one must leave RAM plausible. */
constexpr Addr kMarkerPa = rt::System::kRamBase + 0x00500000;

/** Builds one real snapshot image: a Direct-mode session with a
 *  compiled kernel, a completed job and live device state, so every
 *  chunk type is present and non-trivial. */
const std::vector<uint8_t> &
corpusImage()
{
    static const std::vector<uint8_t> bytes = [] {
        rt::Session s(fuzzCfg(), rt::Mode::Direct);
        rt::Buffer out = s.alloc(256 * 4);
        rt::KernelHandle k = s.compile(
            R"(
kernel void store(global int* out, int n) {
    int i = get_global_id(0);
    if (i < n) {
        out[i] = i * 3;
    }
}
)",
            "store");
        gpu::JobResult r =
            s.enqueue(k, rt::NDRange{256, 1, 1}, rt::NDRange{64, 1, 1},
                      {rt::Arg::buf(out), rt::Arg::i32(256)});
        EXPECT_FALSE(r.faulted);
        s.system().mem().write<uint32_t>(kMarkerPa, 0xfeedfaceu);
        s.system().uart().mmioWrite(soc::Uart::kRegThr, 'c');
        Writer w;
        s.saveSnapshot(w);
        return w.finish();
    }();
    return bytes;
}

/** After a *failed* restore the machine must be at power-on state. */
void
expectResetState(rt::System &sys)
{
    EXPECT_EQ(sys.uart().output(), "");
    EXPECT_EQ(sys.timer().now(), 0u);
    EXPECT_EQ(sys.mem().read<uint32_t>(kMarkerPa), 0u);
    EXPECT_EQ(sys.intc().mmioRead(soc::Intc::kRegPending), 0u);
}

TEST(SnapshotFuzz, EveryTruncationRejectedCleanly)
{
    const std::vector<uint8_t> &full = corpusImage();
    rt::System scratch(fuzzCfg());
    std::vector<size_t> lengths;
    for (size_t n = 0; n <= std::min<size_t>(full.size(), 96); ++n)
        lengths.push_back(n);
    for (size_t n = 97; n < full.size(); n += 997)
        lengths.push_back(n);
    lengths.push_back(full.size() - 1);

    for (size_t n : lengths) {
        std::vector<uint8_t> cut(full.begin(), full.begin() + n);
        try {
            Image img = Image::fromBytes(std::move(cut));
            // A strict prefix can never validate: the chunk directory
            // or a CRC must be broken.
            ADD_FAILURE() << "truncation to " << n << " was accepted";
        } catch (const SnapshotError &e) {
            EXPECT_STRNE(e.what(), "");
        }
    }
    // The scratch machine was never touched; a good restore works.
    EXPECT_NO_THROW(scratch.restoreSnapshot(Image::fromBytes(full)));
    EXPECT_EQ(scratch.mem().read<uint32_t>(kMarkerPa), 0xfeedfaceu);
}

/** Sealed-image mutations: random byte edits on the serialised bytes.
 *  Almost all die on the CRC/structure checks in Image::fromBytes;
 *  whatever survives must restore-or-throw cleanly. */
class SnapshotImageMutationFuzz
    : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(SnapshotImageMutationFuzz, LoaderNeverCrashesOrHalfApplies)
{
    const std::vector<uint8_t> &good = corpusImage();
    rt::SystemConfig cfg = fuzzCfg();
    rt::System scratch(cfg);
    std::mt19937 rng(GetParam() * 2654435761u + 7);

    for (int round = 0; round < 150; ++round) {
        std::vector<uint8_t> img = good;
        unsigned edits = 1 + rng() % 8;
        for (unsigned e = 0; e < edits && !img.empty(); ++e) {
            size_t pos = rng() % img.size();
            switch (rng() % 4) {
              case 0: img[pos] ^= 1u << (rng() % 8); break;
              case 1: img[pos] = static_cast<uint8_t>(rng()); break;
              case 2: img[pos] = 0xff; break;
              default:
                img.resize(std::max<size_t>(1, pos));
                break;
            }
        }

        bool failed = true;
        try {
            Image parsed = Image::fromBytes(std::move(img));
            scratch.restoreSnapshot(parsed);
            failed = false;
        } catch (const SnapshotError &e) {
            EXPECT_STRNE(e.what(), "");
        }
        if (failed && scratch.uart().output().empty()) {
            // Failure either rejected the image up front (scratch
            // untouched since its last reset) or reset mid-restore;
            // both leave no residue.
            expectResetState(scratch);
        }
    }
    // The survivor is still a fully usable machine.
    EXPECT_NO_THROW(scratch.restoreSnapshot(Image::fromBytes(good)));
    EXPECT_EQ(scratch.mem().read<uint32_t>(kMarkerPa), 0xfeedfaceu);
    EXPECT_EQ(scratch.uart().output(), "c");
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotImageMutationFuzz,
                         ::testing::Range(300u, 308u));

/** Re-serialises one validated chunk of @p img as raw bytes. */
std::vector<uint8_t>
chunkBytes(const Image &img, uint32_t tag)
{
    ChunkReader r = img.chunk(tag);
    size_t n = r.remaining();
    const uint8_t *p = r.raw(n);
    return std::vector<uint8_t>(p, p + n);
}

/**
 * Payload mutations *behind* the CRC: chunk payloads are mutated and
 * the image re-sealed with fresh CRCs, so Image::fromBytes accepts it
 * and the component parsers themselves face the hostile bytes.  This
 * is the path a malicious-but-well-formed image would take.
 */
class SnapshotPayloadMutationFuzz
    : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(SnapshotPayloadMutationFuzz, ParsersRejectOrRestoreCleanly)
{
    const Image good = Image::fromBytes(corpusImage());
    const uint32_t tags[] = {
        snapshot::kTagConfig, snapshot::kTagCpu,   snapshot::kTagMem,
        snapshot::kTagUart,   snapshot::kTagTimer, snapshot::kTagIntc,
        snapshot::kTagGpu,    snapshot::kTagSession};
    rt::SystemConfig cfg = fuzzCfg();
    rt::System scratch(cfg);
    std::mt19937 rng(GetParam() * 40503u + 11);

    for (int round = 0; round < 80; ++round) {
        // A known-good baseline so the post-failure state is decidable:
        // either exactly this (rejected up front) or power-on reset.
        scratch.restoreSnapshot(good);
        uint32_t victim = tags[rng() % 8];
        Writer w;
        for (uint32_t tag : tags) {
            std::vector<uint8_t> payload = chunkBytes(good, tag);
            if (tag == victim) {
                unsigned edits = 1 + rng() % 4;
                for (unsigned e = 0; e < edits && !payload.empty();
                     ++e) {
                    size_t pos = rng() % payload.size();
                    switch (rng() % 4) {
                      case 0:
                        payload[pos] ^= 1u << (rng() % 8);
                        break;
                      case 1:
                        payload[pos] = static_cast<uint8_t>(rng());
                        break;
                      case 2:
                        payload[pos] = 0xff;
                        break;
                      default:
                        payload.resize(std::max<size_t>(1, pos));
                        break;
                    }
                }
            }
            w.chunk(tag).bytes(payload.data(), payload.size());
        }
        Image hostile = Image::fromBytes(w.finish());

        try {
            scratch.restoreSnapshot(hostile);
        } catch (const std::bad_alloc &) {
            ADD_FAILURE() << "bad_alloc restoring, victim chunk "
                          << snapshot::tagName(victim) << " round "
                          << round;
            continue;
        } catch (const SnapshotError &e) {
            EXPECT_STRNE(e.what(), "");
            if (scratch.uart().output() == "c") {
                // Rejected before mutation: baseline fully intact.
                EXPECT_EQ(scratch.mem().read<uint32_t>(kMarkerPa),
                          0xfeedfaceu);
            } else {
                // Failed mid-restore: the machine must have been
                // reset, any mix of old and new state is a bug.
                expectResetState(scratch);
            }
        }
        if (round % 4 == 0) {
            // The full warm-boot path (Session registries included).
            try {
                auto sess = rt::Session::fromSnapshot(hostile, cfg);
            } catch (const SnapshotError &e) {
                EXPECT_STRNE(e.what(), "");
            }
        }
    }
    EXPECT_NO_THROW(scratch.restoreSnapshot(good));
    EXPECT_EQ(scratch.mem().read<uint32_t>(kMarkerPa), 0xfeedfaceu);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotPayloadMutationFuzz,
                         ::testing::Range(400u, 408u));

} // namespace
} // namespace bifsim
