/**
 * @file
 * Standalone repo-invariant checker ("simlint", DESIGN.md §5i).
 *
 * Runs the src/lint/ checks over the repository tree: TLV chunk-tag
 * uniqueness, DBT X-macro handler/dispatch parity, counter-name
 * registry consistency against docs/COUNTERS.md, and sim::Mutex
 * annotation coverage.  CI runs it on every push; the seeded-
 * violation fixtures under tests/simlint_fixtures/ prove each check
 * actually fires (tests/test_simlint.cc).
 *
 * Usage:
 *   simlint [--root <repo-root>] [--check <name>]
 *
 * --root defaults to the current directory and must contain src/.
 * --check limits the run to one of: tlv-tag, dbt-parity, counters,
 * mutex-coverage.  Diagnostics print as "file:line: [check] message".
 *
 * Exit status: 0 clean, 1 findings, 2 usage error.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "lint/simlint.h"

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: simlint [--root <repo-root>] [--check "
                 "tlv-tag|dbt-parity|counters|mutex-coverage]\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace bifsim;

    lint::Options opts;
    std::string only;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
            opts.root = argv[++i];
        } else if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
            only = argv[++i];
        } else {
            return usage();
        }
    }

    std::vector<lint::Diag> diags;
    if (only.empty()) {
        diags = lint::runAllChecks(opts);
    } else if (only == "tlv-tag") {
        diags = lint::checkTagUniqueness(opts);
    } else if (only == "dbt-parity") {
        diags = lint::checkDbtParity(opts);
    } else if (only == "counters") {
        diags = lint::checkCounterRegistry(opts);
    } else if (only == "mutex-coverage") {
        diags = lint::checkMutexCoverage(opts);
    } else {
        return usage();
    }

    for (const lint::Diag &d : diags)
        std::fprintf(stderr, "%s\n", lint::renderDiag(d).c_str());
    if (diags.empty()) {
        std::fprintf(stderr, "simlint: clean (%s)\n",
                     only.empty() ? "all checks" : only.c_str());
        return 0;
    }
    std::fprintf(stderr, "simlint: %zu finding(s)\n", diags.size());
    return 1;
}
