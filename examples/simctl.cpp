/**
 * @file
 * simctl: command-line client for the simd fleet daemon.
 *
 *   simctl --socket=<path> info
 *   simctl --socket=<path> stats
 *   simctl --socket=<path> shutdown
 *   simctl --socket=<path> sgemm [--jobs=N] [--kernel=I]
 *          [--tenant=NAME] [--seed=S] [--verify] [--ram-crc]
 *
 * `sgemm` submits N jobs against the warm image's A/B/C buffers:
 * deterministic pseudo-random matrices seeded per job, full C
 * readback, optional host-side verification and post-job RAM CRC.
 * Exits nonzero if any job fails (or misverifies), so CI smoke jobs
 * can fan out many concurrent simctl tenants and just check exit
 * codes.
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/logging.h"
#include "fleet/proto.h"

namespace {

using namespace bifsim;

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s --socket=<path> info|stats|shutdown\n"
                 "       %s --socket=<path> sgemm [--jobs=N] "
                 "[--kernel=I] [--tenant=NAME] [--seed=S] [--verify] "
                 "[--ram-crc]\n",
                 argv0, argv0);
    return 2;
}

int
connectTo(const std::string &path)
{
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        std::fprintf(stderr, "simctl: socket: %s\n",
                     std::strerror(errno));
        return -1;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        std::fprintf(stderr, "simctl: socket path too long\n");
        ::close(fd);
        return -1;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        std::fprintf(stderr, "simctl: connect %s: %s\n", path.c_str(),
                     std::strerror(errno));
        ::close(fd);
        return -1;
    }
    return fd;
}

/** Deterministic matrix fill: xorshift from a per-job seed, so every
 *  tenant (and the bit-identity tests) can regenerate the inputs. */
void
fillMatrix(std::vector<float> &m, uint32_t seed)
{
    uint32_t x = seed * 2654435761u + 1;
    for (float &v : m) {
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        v = static_cast<float>(x % 1024) / 256.0f;
    }
}

int
runSgemm(int fd, const fleet::Welcome &wl, uint32_t jobs,
         uint32_t kernel, const std::string &tenant, uint32_t seed,
         bool verify, bool ram_crc)
{
    if (kernel >= wl.kernels.size()) {
        std::fprintf(stderr, "simctl: kernel %u out of range (%zu)\n",
                     kernel, wl.kernels.size());
        return 1;
    }
    if (wl.bufferBytes.size() < 3) {
        std::fprintf(stderr, "simctl: image has no A/B/C buffers\n");
        return 1;
    }
    uint32_t n = static_cast<uint32_t>(
        std::lround(std::sqrt(double(wl.bufferBytes[0] / 4))));
    size_t bytes = static_cast<size_t>(n) * n * 4;

    std::vector<float> a(static_cast<size_t>(n) * n);
    std::vector<float> b(static_cast<size_t>(n) * n);
    uint64_t exec_ns_total = 0, queue_ns_total = 0;
    for (uint32_t j = 0; j < jobs; ++j) {
        fillMatrix(a, seed + 2 * j);
        fillMatrix(b, seed + 2 * j + 1);

        fleet::JobRequest req;
        req.tenant = tenant;
        req.kernel = kernel;
        req.gx = req.gy = n;
        req.gz = 1;
        req.lx = req.ly = 8;
        req.lz = 1;
        req.args = {{fleet::ArgSpec::Kind::BufIndex, 0},
                    {fleet::ArgSpec::Kind::BufIndex, 1},
                    {fleet::ArgSpec::Kind::BufIndex, 2},
                    {fleet::ArgSpec::Kind::I32, n}};
        fleet::WriteSpec wa{0, 0, {}};
        wa.bytes.resize(bytes);
        std::memcpy(wa.bytes.data(), a.data(), bytes);
        fleet::WriteSpec wb{1, 0, {}};
        wb.bytes.resize(bytes);
        std::memcpy(wb.bytes.data(), b.data(), bytes);
        req.writes.push_back(std::move(wa));
        req.writes.push_back(std::move(wb));
        req.reads.push_back(fleet::ReadSpec{2, 0, bytes});
        req.wantRamCrc = ram_crc;

        snapshot::ChunkWriter w;
        req.serialize(w);
        fleet::writeFrame(fd, fleet::kMsgJob, w.data());

        fleet::Frame f;
        if (!fleet::readFrame(fd, f) || f.kind != fleet::kMsgResult) {
            std::fprintf(stderr, "simctl: lost connection mid-job\n");
            return 1;
        }
        snapshot::ChunkReader r = f.reader();
        fleet::JobResultMsg m = fleet::JobResultMsg::parse(r);
        if (m.status != fleet::JobStatus::Ok) {
            std::fprintf(stderr, "simctl: job %u %s: %s\n", j,
                         fleet::jobStatusName(m.status),
                         m.detail.c_str());
            return 1;
        }
        if (m.readback.size() != bytes) {
            std::fprintf(stderr, "simctl: job %u readback %zu bytes, "
                         "want %zu\n", j, m.readback.size(), bytes);
            return 1;
        }
        exec_ns_total += m.execNs;
        queue_ns_total += m.queueNs;

        if (verify) {
            const float *c =
                reinterpret_cast<const float *>(m.readback.data());
            for (uint32_t row = 0; row < n; ++row) {
                for (uint32_t col = 0; col < n; ++col) {
                    float want = 0;
                    for (uint32_t k = 0; k < n; ++k)
                        want += a[row * n + k] * b[k * n + col];
                    float got = c[row * n + col];
                    if (std::fabs(got - want) >
                        1e-3f * std::max(1.0f, std::fabs(want))) {
                        std::fprintf(stderr,
                                     "simctl: job %u C[%u,%u] = %g, "
                                     "want %g\n",
                                     j, row, col, got, want);
                        return 1;
                    }
                }
            }
        }
        if (ram_crc)
            std::printf("job %u ram crc 0x%08x session %u\n", j,
                        m.ramCrc, m.sessionId);
    }
    std::printf("simctl: %u %s jobs ok (n=%u%s), mean queue %.2f ms, "
                "mean exec %.2f ms\n",
                jobs, wl.kernels[kernel].c_str(), n,
                verify ? ", verified" : "",
                queue_ns_total / 1e6 / jobs, exec_ns_total / 1e6 / jobs);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socket_path, command, tenant = "simctl";
    uint32_t jobs = 1, kernel = 0, seed = 1;
    bool verify = false, ram_crc = false;

    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (std::strncmp(a, "--socket=", 9) == 0)
            socket_path = a + 9;
        else if (std::strncmp(a, "--jobs=", 7) == 0)
            jobs = static_cast<uint32_t>(std::atoi(a + 7));
        else if (std::strncmp(a, "--kernel=", 9) == 0)
            kernel = static_cast<uint32_t>(std::atoi(a + 9));
        else if (std::strncmp(a, "--tenant=", 9) == 0)
            tenant = a + 9;
        else if (std::strncmp(a, "--seed=", 7) == 0)
            seed = static_cast<uint32_t>(std::atoi(a + 7));
        else if (std::strcmp(a, "--verify") == 0)
            verify = true;
        else if (std::strcmp(a, "--ram-crc") == 0)
            ram_crc = true;
        else if (a[0] == '-')
            return usage(argv[0]);
        else if (command.empty())
            command = a;
        else
            return usage(argv[0]);
    }
    if (socket_path.empty() || command.empty())
        return usage(argv[0]);

    int fd = connectTo(socket_path);
    if (fd < 0)
        return 1;

    int rc = 1;
    try {
        fleet::Frame f;
        if (!fleet::readFrame(fd, f) || f.kind != fleet::kMsgWelcome) {
            std::fprintf(stderr, "simctl: no welcome from daemon\n");
            ::close(fd);
            return 1;
        }
        snapshot::ChunkReader r = f.reader();
        fleet::Welcome wl = fleet::Welcome::parse(r);

        if (command == "info") {
            std::printf("proto v%u, %zu kernels, %zu buffers\n",
                        wl.version, wl.kernels.size(),
                        wl.bufferBytes.size());
            for (size_t i = 0; i < wl.kernels.size(); ++i)
                std::printf("  kernel %zu: %s\n", i,
                            wl.kernels[i].c_str());
            for (size_t i = 0; i < wl.bufferBytes.size(); ++i)
                std::printf("  buffer %zu: %llu bytes\n", i,
                            static_cast<unsigned long long>(
                                wl.bufferBytes[i]));
            rc = 0;
        } else if (command == "stats") {
            fleet::writeFrame(fd, fleet::kMsgStatsQuery, {});
            fleet::Frame sf;
            if (fleet::readFrame(fd, sf) &&
                sf.kind == fleet::kMsgStatsReply) {
                snapshot::ChunkReader sr = sf.reader();
                fleet::StatsReply reply = fleet::StatsReply::parse(sr);
                for (const auto &[name, value] : reply.counters)
                    std::printf("%-28s %llu\n", name.c_str(),
                                static_cast<unsigned long long>(value));
                // v2 extension: uptime and per-tenant rates.  A v1
                // daemon's reply simply has no rows.
                double up = static_cast<double>(reply.uptimeNs) * 1e-9;
                if (reply.uptimeNs)
                    std::printf("%-28s %.1f\n", "uptime_secs", up);
                if (!reply.tenants.empty()) {
                    std::printf("\n%-16s %10s %10s %8s %9s %11s\n",
                                "tenant", "submitted", "completed",
                                "faulted", "jobs/s", "avg_exec_ms");
                    for (const auto &t : reply.tenants) {
                        double rate =
                            up > 0 ? static_cast<double>(t.completed) /
                                         up
                                   : 0;
                        double avg_ms =
                            t.completed
                                ? static_cast<double>(t.execNs) * 1e-6 /
                                      static_cast<double>(t.completed)
                                : 0;
                        std::printf(
                            "%-16s %10llu %10llu %8llu %9.2f %11.3f\n",
                            t.name.c_str(),
                            static_cast<unsigned long long>(t.submitted),
                            static_cast<unsigned long long>(t.completed),
                            static_cast<unsigned long long>(t.faulted),
                            rate, avg_ms);
                    }
                }
                rc = 0;
            }
        } else if (command == "shutdown") {
            fleet::writeFrame(fd, fleet::kMsgShutdown, {});
            rc = 0;
        } else if (command == "sgemm") {
            rc = runSgemm(fd, wl, jobs, kernel, tenant, seed, verify,
                          ram_crc);
        } else {
            rc = usage(argv[0]);
        }
    } catch (const bifsim::SimError &e) {
        std::fprintf(stderr, "simctl: %s\n", e.what());
        rc = 1;
    }
    ::close(fd);
    return rc;
}
