/**
 * @file
 * Standalone BIF static-analysis driver ("biflint").  Runs the
 * src/analysis/ passes over shader modules and prints diagnostics —
 * the same checks GpuDevice runs at shader decode time and kclc runs
 * on its own output.
 *
 * Usage:
 *   biflint <file.kcl | -> [--version 5.6..6.2] [--strict] [--dot]
 *   biflint --check-workloads        (CI mode: compile every Table II
 *                                     workload at O0..O3 and require
 *                                     zero error-severity findings)
 *
 * Exit status: 0 clean, 1 error-severity findings (or, with --strict,
 * any finding), 2 usage/compile failure.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "analysis/analysis.h"
#include "common/logging.h"
#include "instrument/cfg.h"
#include "kclc/compiler.h"
#include "workloads/workload.h"

namespace {

using namespace bifsim;

/** Analyzes every kernel of @p source; returns the worst exit code. */
int
lintSource(const std::string &label, const std::string &source,
           const std::string &version, bool strict, bool dot,
           bool quiet_clean)
{
    kclc::CompilerOptions opts = kclc::CompilerOptions::forVersion(version);
    std::vector<kclc::CompiledKernel> kernels;
    try {
        kernels = kclc::compileAll(source, opts);
    } catch (const SimError &e) {
        std::fprintf(stderr, "%s [%s]: compile failed: %s\n",
                     label.c_str(), version.c_str(), e.what());
        return 2;
    }

    int rc = 0;
    for (const kclc::CompiledKernel &k : kernels) {
        analysis::Result res = analysis::analyze(k.mod);
        bool bad = strict ? !res.diags.empty() : res.hasErrors();
        if (bad)
            rc = rc < 1 ? 1 : rc;
        if (!res.diags.empty() || !quiet_clean) {
            std::printf("%s:%s [%s]: %zu clauses, %zu diagnostics "
                        "(%zu errors, %zu warnings)\n",
                        label.c_str(), k.name.c_str(), version.c_str(),
                        k.mod.clauses.size(), res.diags.size(),
                        res.count(analysis::Severity::Error),
                        res.count(analysis::Severity::Warning));
            for (const analysis::Diag &d : res.diags)
                std::printf("  %s\n", analysis::renderDiag(d).c_str());
        }
        if (dot) {
            instrument::Cfg cfg = res.cfg.toInstrumentCfg();
            std::fputs(instrument::toDot(cfg).c_str(), stdout);
        }
    }
    return rc;
}

int
checkWorkloads()
{
    static const char *kVersions[] = {"5.6", "5.7", "6.0", "6.1"};
    int rc = 0;
    size_t kernels = 0;
    for (const std::string &name : workloads::allWorkloadNames()) {
        std::unique_ptr<workloads::Workload> w =
            workloads::makeWorkload(name);
        for (const char *v : kVersions) {
            int r = lintSource(name, w->source(), v, false, false, true);
            rc = std::max(rc, r);
            ++kernels;
        }
    }
    std::printf("biflint: checked %zu workload/version combinations: "
                "%s\n", kernels, rc == 0 ? "clean" : "FINDINGS");
    return rc;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string path, version = "6.0";
    bool strict = false, dot = false, check_workloads = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--check-workloads") == 0)
            check_workloads = true;
        else if (std::strcmp(argv[i], "--strict") == 0)
            strict = true;
        else if (std::strcmp(argv[i], "--dot") == 0)
            dot = true;
        else if (std::strcmp(argv[i], "--version") == 0 && i + 1 < argc)
            version = argv[++i];
        else
            path = argv[i];
    }

    if (check_workloads)
        return checkWorkloads();

    if (path.empty()) {
        std::fprintf(stderr,
                     "usage: biflint <file.kcl | -> [--version V] "
                     "[--strict] [--dot] | --check-workloads\n");
        return 2;
    }

    std::string source;
    if (path == "-") {
        std::stringstream ss;
        ss << std::cin.rdbuf();
        source = ss.str();
    } else {
        std::ifstream f(path);
        if (!f) {
            std::fprintf(stderr, "cannot open %s\n", path.c_str());
            return 2;
        }
        std::stringstream ss;
        ss << f.rdbuf();
        source = ss.str();
    }
    return lintSource(path, source, version, strict, dot, false);
}
