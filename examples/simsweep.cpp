/**
 * @file
 * simsweep — the configuration-sweep and baseline-diff harness
 * (docs/METRICS.md §4, EXPERIMENTS.md).
 *
 * Three stages, each skippable:
 *
 *  1. Bench regen (unless --skip-bench): runs every figure bench from
 *     --bench-dir at its default scale so each rewrites its
 *     BENCH_*.json into the current directory through the shared
 *     bench::Report emitter.
 *  2. Configuration sweep: in-process matrix of two GPU workloads
 *     (compute-bound mad_loop, memory-bound triad) across
 *     {fast path / legacy interpreter} x {trace off/on} x
 *     {verifier off/unsafe/strict} x {1/2 host threads}, plus a CPU
 *     interpreter-vs-DBT A/B on a bare-metal guest.  Wall time is
 *     recorded per cell; the gated output is *instruction-count
 *     invariance* — every configuration of a workload must execute
 *     exactly the same simulated instructions (agree == 1.0), the
 *     simulator's core determinism promise.  Writes BENCH_sweep.json.
 *  3. Baseline diff (when --baseline-dir is given): every BENCH_*.json
 *     in the baseline directory is diffed against the same-named file
 *     in the current directory under the per-metric tolerance policy
 *     of src/metrics/sweep.h.  Any regression (including a missing
 *     candidate file or metric) makes simsweep exit non-zero.
 *
 * --quick shrinks the sweep problem sizes, not the matrix: the set of
 * flattened keys is identical either way, so quick candidates diff
 * cleanly against quick baselines.  Regenerate baselines with the
 * same --quick/full choice you diff with.
 *
 * Typical CI invocation, from the build directory:
 *
 *   ./examples/simsweep --quick --bench-dir bench --baseline-dir ..
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "../bench/bench_util.h"
#include "common/logging.h"
#include "cpu/asm/assembler.h"
#include "cpu/core.h"
#include "mem/bus.h"
#include "mem/phys_mem.h"
#include "metrics/sweep.h"
#include "runtime/session.h"

namespace {

using namespace bifsim;

const char *kMadLoop = R"(
kernel void mad_loop(global float* out, int iters, int n) {
    int i = get_global_id(0);
    if (i < n) {
        float a = i * 0.5f + 1.0f;
        float b = 1.0009f;
        float c = 0.0001f;
        for (int k = 0; k < iters; ++k) {
            a = a * b + c;
            a = a * b - c;
        }
        out[i] = a;
    }
}
)";

const char *kTriad = R"(
kernel void triad(global const float* a, global const float* b,
                  global float* c, float s, int n) {
    int i = get_global_id(0);
    if (i < n) {
        c[i] = a[i] + s * b[i];
    }
}
)";

/** Compute-heavy bare-metal guest for the CPU tier A/B: checksum loop
 *  with a call per iteration, runs to halt (fully deterministic). */
const char *kCpuProgram = R"(
        .org 0x80000000
        li   s0, 0
        li   s1, 0
        li   s2, %ITERS%
loop:
        jal  ra, body
        addi s1, s1, 1
        bltu s1, s2, loop
        halt
body:
        xor  t0, s0, s1
        slli t1, s1, 3
        add  s0, s0, t0
        mul  t2, t0, t1
        add  s0, s0, t2
        ret
)";

struct SweepCell
{
    const char *cfg;      ///< Configuration label (stable key).
    double secs = 0;
    uint64_t instrs = 0;
};

struct CellSpec
{
    const char *cfg;
    bool fastPath;
    bool trace;
    analysis::Strictness verify;
    unsigned hostThreads;
};

/** The fixed configuration matrix — the same labels in quick and full
 *  runs, so baseline keys never shift. */
const CellSpec kCells[] = {
    {"base", true, false, analysis::Strictness::kUnsafe, 1},
    {"legacy", false, false, analysis::Strictness::kUnsafe, 1},
    {"traced", true, true, analysis::Strictness::kUnsafe, 1},
    {"verify_off", true, false, analysis::Strictness::kOff, 1},
    {"verify_strict", true, false, analysis::Strictness::kStrict, 1},
    {"threads2", true, false, analysis::Strictness::kUnsafe, 2},
};

SweepCell
runGpuCell(const CellSpec &spec, const char *kernel_name,
           const char *source, int n, int iters, int launches)
{
    rt::SystemConfig cfg;
    cfg.gpu.fastPath = spec.fastPath;
    cfg.gpu.trace = spec.trace;
    cfg.gpu.verify = spec.verify;
    cfg.gpu.hostThreads = spec.hostThreads;
    rt::Session s(cfg);

    rt::KernelHandle k = s.compile(source, kernel_name);
    size_t bytes = static_cast<size_t>(n) * 4;
    rt::Buffer a = s.alloc(bytes);
    rt::Buffer b = s.alloc(bytes);
    rt::Buffer c = s.alloc(bytes);
    std::vector<float> init(n);
    for (int i = 0; i < n; ++i)
        init[i] = 0.25f * static_cast<float>(i % 97);
    s.write(a, init.data(), bytes);
    s.write(b, init.data(), bytes);

    std::vector<rt::Arg> args;
    if (std::strcmp(kernel_name, "mad_loop") == 0)
        args = {rt::Arg::buf(c), rt::Arg::i32(iters), rt::Arg::i32(n)};
    else
        args = {rt::Arg::buf(a), rt::Arg::buf(b), rt::Arg::buf(c),
                rt::Arg::f32(1.5f), rt::Arg::i32(n)};
    rt::NDRange global{static_cast<uint32_t>(n), 1, 1};
    rt::NDRange local{64, 1, 1};

    SweepCell cell;
    cell.cfg = spec.cfg;
    gpu::KernelStats total;
    bench::Timer t;
    for (int it = 0; it < launches; ++it) {
        gpu::JobResult r = s.enqueue(k, global, local, args);
        if (r.faulted) {
            std::fprintf(stderr, "sweep %s/%s: job faulted: %s\n",
                         kernel_name, spec.cfg, r.fault.detail.c_str());
            std::exit(1);
        }
        total.merge(r.kernel);
    }
    cell.secs = t.seconds();
    cell.instrs = total.totalInstrs();
    return cell;
}

SweepCell
runCpuCell(const sa32::Program &prog, bool dbt)
{
    constexpr Addr kBase = 0x80000000;
    PhysMem mem(kBase, 4u << 20);
    Bus bus;
    bus.attachMemory(&mem);
    sa32::CoreConfig cfg;
    cfg.dbt = dbt;
    sa32::Core core(bus, cfg);
    prog.loadInto(mem);
    core.reset();
    SweepCell cell;
    cell.cfg = dbt ? "dbt" : "interp";
    bench::Timer t;
    sa32::StopReason r;
    do {
        r = core.run(1u << 20);
    } while (r == sa32::StopReason::MaxInsts);
    cell.secs = t.seconds();
    cell.instrs = core.stats().instret;
    return cell;
}

/** min/max agreement ratio: 1.0 iff every cell executed the same
 *  simulated instruction count. */
double
agreeRatio(const std::vector<SweepCell> &cells)
{
    uint64_t lo = UINT64_MAX, hi = 0;
    for (const SweepCell &c : cells) {
        lo = std::min(lo, c.instrs);
        hi = std::max(hi, c.instrs);
    }
    return hi > 0 ? static_cast<double>(lo) / static_cast<double>(hi)
                  : 0.0;
}

json::Value
cellsToJson(const std::vector<SweepCell> &cells)
{
    json::Value arr = json::Value::array();
    for (const SweepCell &c : cells) {
        json::Value v = json::Value::object();
        v.set("name", json::Value(c.cfg));
        v.set("secs", json::Value(c.secs));
        v.set("instrs", json::Value(c.instrs));
        arr.push(std::move(v));
    }
    return arr;
}

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "  --quick            shrink sweep problem sizes (CI size);\n"
        "                     the key set is unchanged\n"
        "  --skip-bench       skip stage 1 (figure-bench regen)\n"
        "  --skip-sweep       skip stage 2 (the in-process matrix)\n"
        "  --bench-dir DIR    figure-bench executables (default: bench)\n"
        "  --baseline-dir DIR diff ./BENCH_*.json against the baselines\n"
        "                     in DIR; exit 1 on any regression\n"
        "  --verbose          print every diff row, not just failures\n",
        argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false, skip_bench = false, skip_sweep = false;
    bool verbose = false;
    std::string bench_dir = "bench";
    std::string baseline_dir;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else if (std::strcmp(argv[i], "--skip-bench") == 0)
            skip_bench = true;
        else if (std::strcmp(argv[i], "--skip-sweep") == 0)
            skip_sweep = true;
        else if (std::strcmp(argv[i], "--verbose") == 0)
            verbose = true;
        else if (std::strcmp(argv[i], "--bench-dir") == 0 &&
                 i + 1 < argc)
            bench_dir = argv[++i];
        else if (std::strcmp(argv[i], "--baseline-dir") == 0 &&
                 i + 1 < argc)
            baseline_dir = argv[++i];
        else
            return usage(argv[0]);
    }
    setInformEnabled(false);

    int exit_code = 0;

    // ---- Stage 1: regenerate the figure benches' BENCH_*.json ----
    if (!skip_bench) {
        // Default scales only: the committed baselines were produced
        // at defaults, and the differ's identity rule rejects a scale
        // mismatch anyway.
        const char *benches[] = {
            "bench_interp_hotpath", "bench_snapshot",  "bench_cpu_dbt",
            "fig10_thread_scaling", "bench_replay",    "bench_fleet",
            "bench_trace_overhead", "bench_metrics_overhead",
        };
        for (const char *b : benches) {
            std::string cmd = bench_dir + "/" + b + " >/dev/null";
            std::printf("simsweep: regen %s\n", b);
            int rc = std::system(cmd.c_str());
            if (rc != 0) {
                // The bench still wrote its file; keep going so the
                // diff stage can show *what* moved, then fail at exit.
                std::fprintf(stderr,
                             "simsweep: %s exited %d (its own gate "
                             "failed?)\n",
                             b, rc);
                exit_code = 1;
            }
        }
    }

    // ---- Stage 2: the in-process configuration sweep ----
    if (!skip_sweep) {
        const int n = quick ? 1024 : 8192;
        const int iters = quick ? 50 : 200;
        const int launches = quick ? 2 : 4;
        const unsigned cpu_iters = quick ? 20000 : 200000;

        bench::Report report("sweep", quick ? 0.25 : 1.0);
        json::Value &m = report.metrics();
        m.set("n", json::Value(n));
        m.set("iters", json::Value(iters));
        m.set("launches", json::Value(launches));
        m.set("cpu_iters", json::Value(static_cast<uint64_t>(cpu_iters)));

        double min_agree = 1.0;
        struct Wl
        {
            const char *name;
            const char *source;
        };
        const Wl workloads[] = {{"mad_loop", kMadLoop},
                                {"triad", kTriad}};
        json::Value gpu = json::Value::array();
        for (const Wl &wl : workloads) {
            std::vector<SweepCell> cells;
            for (const CellSpec &spec : kCells)
                cells.push_back(runGpuCell(spec, wl.name, wl.source, n,
                                           iters, launches));
            double agree = agreeRatio(cells);
            min_agree = std::min(min_agree, agree);
            std::printf("simsweep: %-10s %zu configs, instr agree "
                        "%.6f\n",
                        wl.name, cells.size(), agree);
            json::Value w = json::Value::object();
            w.set("name", json::Value(wl.name));
            w.set("configs", cellsToJson(cells));
            w.set("instr_agree", json::Value(agree));
            gpu.push(std::move(w));
        }
        m.set("gpu", std::move(gpu));

        std::string src = kCpuProgram;
        size_t at = src.find("%ITERS%");
        src.replace(at, 7, std::to_string(cpu_iters));
        sa32::Program prog = sa32::assemble(src);
        std::vector<SweepCell> tiers = {runCpuCell(prog, false),
                                        runCpuCell(prog, true)};
        double cpu_agree = agreeRatio(tiers);
        min_agree = std::min(min_agree, cpu_agree);
        std::printf("simsweep: cpu        2 tiers,   instret agree "
                    "%.6f\n",
                    cpu_agree);
        json::Value cpu = json::Value::object();
        cpu.set("configs", cellsToJson(tiers));
        cpu.set("instret_agree", json::Value(cpu_agree));
        m.set("cpu", std::move(cpu));

        report.gate("min_agree", 1.0, min_agree, true);
        report.write();
        if (min_agree < 1.0) {
            std::fprintf(stderr,
                         "simsweep: FAIL: instruction counts diverge "
                         "across configurations (min agree %.6f)\n",
                         min_agree);
            exit_code = 1;
        }
    }

    // ---- Stage 3: diff against the committed baselines ----
    if (!baseline_dir.empty()) {
        namespace fs = std::filesystem;
        size_t files = 0, failed = 0;
        std::vector<std::string> names;
        for (const fs::directory_entry &e :
             fs::directory_iterator(baseline_dir)) {
            std::string name = e.path().filename().string();
            if (name.rfind("BENCH_", 0) == 0 &&
                name.size() > 5 &&
                name.compare(name.size() - 5, 5, ".json") == 0)
                names.push_back(name);
        }
        std::sort(names.begin(), names.end());
        for (const std::string &name : names) {
            ++files;
            json::Value base, cand;
            try {
                base = json::Value::parseFile(baseline_dir + "/" + name);
            } catch (const SimError &e) {
                std::fprintf(stderr, "simsweep: baseline %s: %s\n",
                             name.c_str(), e.what());
                ++failed;
                continue;
            }
            try {
                cand = json::Value::parseFile(name);
            } catch (const SimError &e) {
                std::fprintf(stderr,
                             "simsweep: REGRESSION %s: candidate "
                             "missing or unreadable (%s)\n",
                             name.c_str(), e.what());
                ++failed;
                continue;
            }
            metrics::sweep::DiffResult d = metrics::sweep::diff(base,
                                                                cand);
            std::fputs(d.render(name, verbose).c_str(), stdout);
            if (d.regressions > 0)
                ++failed;
        }
        if (files == 0) {
            std::fprintf(stderr,
                         "simsweep: no BENCH_*.json baselines in %s\n",
                         baseline_dir.c_str());
            return 1;
        }
        std::printf("simsweep: %zu baseline%s diffed, %zu failed\n",
                    files, files == 1 ? "" : "s", failed);
        if (failed > 0)
            exit_code = 1;
    }
    return exit_code;
}
