/**
 * @file
 * simd: the session-fleet daemon (DESIGN.md §5j).
 *
 * Serves simulation jobs over a Unix socket from a pool of warm-boot
 * sessions sharing one CoW image:
 *
 *   # build the warm image once (six SGEMM kernels, 64x64 matrices)
 *   simd --make-image=warm.bsnp --n=64
 *
 *   # serve it
 *   simd --image=warm.bsnp --socket=/tmp/simd.sock --sessions=64
 *
 *   # talk to it
 *   simctl --socket=/tmp/simd.sock info
 *   simctl --socket=/tmp/simd.sock sgemm --jobs=8 --verify
 *   simctl --socket=/tmp/simd.sock shutdown
 *
 * The daemon runs in the foreground and exits 0 on a clean drain
 * (simctl shutdown / FLTX frame).
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "common/logging.h"
#include "fleet/fleet.h"
#include "fleet/warm_image.h"
#include "snapshot/snapshot.h"

namespace {

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --make-image=<file> [--n=<size>] [--ram-mb=<mb>]\n"
        "       %s --image=<file> --socket=<path> [--sessions=<max>]\n"
        "          [--workers=<n>] [--queue=<max>] [--tenant-queue=<max>]\n"
        "          [--host-threads=<n>] [--trace=<json>]\n",
        argv0, argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace bifsim;

    std::string make_image, image_path, socket_path, trace_path;
    uint32_t n = 64;
    size_t ram_mb = 64;
    fleet::FleetConfig cfg;
    cfg.pool.maxSessions = 64;
    cfg.pool.base.gpu.hostThreads = 1;
    cfg.workers = 4;

    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (std::strncmp(a, "--make-image=", 13) == 0)
            make_image = a + 13;
        else if (std::strncmp(a, "--image=", 8) == 0)
            image_path = a + 8;
        else if (std::strncmp(a, "--socket=", 9) == 0)
            socket_path = a + 9;
        else if (std::strncmp(a, "--n=", 4) == 0)
            n = static_cast<uint32_t>(std::atoi(a + 4));
        else if (std::strncmp(a, "--ram-mb=", 9) == 0)
            ram_mb = static_cast<size_t>(std::atoi(a + 9));
        else if (std::strncmp(a, "--sessions=", 11) == 0)
            cfg.pool.maxSessions =
                static_cast<size_t>(std::atoi(a + 11));
        else if (std::strncmp(a, "--workers=", 10) == 0)
            cfg.workers = static_cast<unsigned>(std::atoi(a + 10));
        else if (std::strncmp(a, "--queue=", 8) == 0)
            cfg.maxQueuedTotal = static_cast<size_t>(std::atoi(a + 8));
        else if (std::strncmp(a, "--tenant-queue=", 15) == 0)
            cfg.maxQueuedPerTenant =
                static_cast<size_t>(std::atoi(a + 15));
        else if (std::strncmp(a, "--host-threads=", 15) == 0)
            cfg.pool.base.gpu.hostThreads =
                static_cast<unsigned>(std::atoi(a + 15));
        else if (std::strncmp(a, "--trace=", 8) == 0)
            trace_path = a + 8;
        else
            return usage(argv[0]);
    }
    cfg.trace = !trace_path.empty();

    try {
        if (!make_image.empty()) {
            std::vector<uint8_t> bytes =
                fleet::buildSgemmWarmImage(n, ram_mb << 20);
            std::ofstream out(make_image, std::ios::binary);
            out.write(reinterpret_cast<const char *>(bytes.data()),
                      static_cast<std::streamsize>(bytes.size()));
            if (!out) {
                std::fprintf(stderr, "simd: cannot write %s\n",
                             make_image.c_str());
                return 1;
            }
            std::printf("simd: wrote %zu-byte warm image to %s "
                        "(n=%u, %zu MiB RAM)\n",
                        bytes.size(), make_image.c_str(), n, ram_mb);
            return 0;
        }

        if (image_path.empty() || socket_path.empty())
            return usage(argv[0]);

        auto image = std::make_shared<const snapshot::Image>(
            snapshot::Image::load(image_path));
        fleet::FleetServer server(image, cfg);
        const fleet::WarmImageInfo &info = server.imageInfo();
        std::printf("simd: serving %s on %s (n=%u, %zu kernels, "
                    "max %zu sessions, %u workers, CoW %s)\n",
                    image_path.c_str(), socket_path.c_str(),
                    info.matrixN, info.kernels.size(),
                    cfg.pool.maxSessions, cfg.workers,
                    server.pool().cowShared() ? "shared" : "off");
        std::fflush(stdout);
        int rc = server.serve(socket_path);

        fleet::FleetStats s = server.stats();
        std::printf("simd: drained; %llu jobs ok, %llu faulted, "
                    "%llu rejected, %llu spawns, %llu recycles\n",
                    static_cast<unsigned long long>(s.jobsCompleted),
                    static_cast<unsigned long long>(s.jobsFaulted),
                    static_cast<unsigned long long>(s.jobsRejected),
                    static_cast<unsigned long long>(s.spawns),
                    static_cast<unsigned long long>(s.recycles));
        if (!trace_path.empty() &&
            server.tracer().exportChromeJsonFile(trace_path))
            std::printf("simd: wrote trace to %s\n", trace_path.c_str());
        return rc;
    } catch (const SimError &e) {
        std::fprintf(stderr, "simd: %s\n", e.what());
        return 1;
    }
}
