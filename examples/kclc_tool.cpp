/**
 * @file
 * An offline kernel-compiler CLI in the spirit of Arm's Mali offline
 * compiler (the tool the paper used to produce Fig. 1): compiles a KCL
 * source file at a chosen emulated toolchain version and prints the
 * clause disassembly plus static statistics.
 *
 * Usage: kclc_tool <file.kcl | -> [--kernel NAME] [--version 5.6..6.2]
 *        kclc_tool --demo            (compiles a built-in example)
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/logging.h"
#include "instrument/stats.h"
#include "kclc/compiler.h"

namespace {

const char *kDemo = R"(
kernel void demo(global const float* in, global float* out, int n) {
    int i = get_global_id(0);
    if (i < n) {
        float v = in[i];
        out[i] = v * v + 1.0f;
    }
}
)";

} // namespace

int
main(int argc, char **argv)
{
    using namespace bifsim;

    std::string path, kernel_name, version = "6.0";
    bool demo = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--demo") == 0)
            demo = true;
        else if (std::strcmp(argv[i], "--kernel") == 0 && i + 1 < argc)
            kernel_name = argv[++i];
        else if (std::strcmp(argv[i], "--version") == 0 && i + 1 < argc)
            version = argv[++i];
        else
            path = argv[i];
    }

    std::string source;
    if (demo || path.empty()) {
        source = kDemo;
    } else if (path == "-") {
        std::stringstream ss;
        ss << std::cin.rdbuf();
        source = ss.str();
    } else {
        std::ifstream f(path);
        if (!f) {
            std::fprintf(stderr, "cannot open %s\n", path.c_str());
            return 1;
        }
        std::stringstream ss;
        ss << f.rdbuf();
        source = ss.str();
    }

    try {
        kclc::CompilerOptions opts =
            kclc::CompilerOptions::forVersion(version);
        std::vector<kclc::CompiledKernel> kernels =
            kclc::compileAll(source, opts);
        for (const kclc::CompiledKernel &k : kernels) {
            if (!kernel_name.empty() && k.name != kernel_name)
                continue;
            std::printf("kernel %s  (compiler version %s)\n",
                        k.name.c_str(), version.c_str());
            std::printf("  binary: %zu bytes, %zu clauses, %u registers"
                        ", %u spills, %u bytes local\n",
                        k.binary.size(), k.mod.clauses.size(),
                        k.regCount, k.spills, k.localBytes);
            std::vector<gpu::ClauseStaticInfo> info =
                gpu::analyzeClauses(k.mod);
            uint32_t arith = 0, ls = 0, cf = 0, nop = 0, temps = 0;
            for (const gpu::ClauseStaticInfo &ci : info) {
                arith += ci.arith;
                ls += ci.ls;
                cf += ci.cf;
                nop += ci.nop;
                temps += ci.tempReads + ci.tempWrites;
            }
            std::printf("  static mix: %u arith, %u ld/st, %u cf, "
                        "%u empty slots, %u temp accesses\n\n",
                        arith, ls, cf, nop, temps);
            std::fputs(bif::disassemble(k.mod).c_str(), stdout);
            std::printf("\n");
        }
    } catch (const SimError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return 0;
}
