/**
 * @file
 * Reproduces the Fig. 6 use case: run BFS and emit the control-flow
 * graph the simulator reconstructs from per-thread PCs at clause
 * boundaries, with the proportion of threads following each edge and
 * divergent blocks flagged.  Output is GraphViz DOT on stdout.
 *
 * Usage: divergence_cfg [--scale S]
 */

#include <cstdio>
#include <cstring>
#include <map>

#include "common/logging.h"
#include "instrument/cfg.h"
#include "workloads/workload.h"

int
main(int argc, char **argv)
{
    using namespace bifsim;

    double scale = 0.005;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc)
            scale = std::atof(argv[++i]);
    }
    setInformEnabled(false);

    auto wl = workloads::makeWorkload("bfs", scale);
    rt::Session session;
    workloads::SessionDevice dev(session);
    dev.build(wl->source(), kclc::CompilerOptions());
    workloads::RunResult rr = wl->run(dev);
    if (!rr.ok) {
        std::fprintf(stderr, "bfs failed: %s\n", rr.error.c_str());
        return 1;
    }

    gpu::KernelStats ks = session.system().gpu().totalKernelStats();
    instrument::Cfg cfg = instrument::buildCfg(ks);
    std::fputs(instrument::toDot(cfg).c_str(), stdout);

    std::fprintf(stderr,
                 "bfs: %llu clause executions, %llu divergent warp "
                 "branches, %zu CFG edges\n",
                 static_cast<unsigned long long>(ks.clausesExecuted),
                 static_cast<unsigned long long>(ks.divergentBranches),
                 ks.cfgEdges.size());
    return 0;
}
