/**
 * @file
 * Runs the full Table II benchmark suite on the simulated platform,
 * verifying every kernel's output against its host reference and
 * printing per-workload instrumentation (the data behind Figs. 11-13).
 *
 * Usage: benchmark_suite [--scale S] [--full-system] [--only NAME]
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "common/logging.h"
#include "workloads/workload.h"

int
main(int argc, char **argv)
{
    using namespace bifsim;
    using Clock = std::chrono::steady_clock;

    double scale = 0.02;
    bool full_system = false;
    std::string only;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc)
            scale = std::atof(argv[++i]);
        else if (std::strcmp(argv[i], "--full-system") == 0)
            full_system = true;
        else if (std::strcmp(argv[i], "--only") == 0 && i + 1 < argc)
            only = argv[++i];
    }
    setInformEnabled(false);

    std::printf("%-18s %-6s %8s %12s %8s %8s %7s %7s\n", "workload",
                "check", "launches", "instrs", "arith%", "ls%", "nop%",
                "time");
    int failures = 0;
    for (const std::string &name : workloads::allWorkloadNames()) {
        if (!only.empty() && name != only)
            continue;
        auto wl = workloads::makeWorkload(name, scale);

        rt::SystemConfig cfg;
        rt::Session session(cfg, full_system ? rt::Mode::FullSystem
                                             : rt::Mode::Direct);
        workloads::SessionDevice dev(session);
        auto t0 = Clock::now();
        workloads::RunResult rr;
        try {
            dev.build(wl->source(), kclc::CompilerOptions());
            rr = wl->run(dev);
        } catch (const SimError &e) {
            rr.ok = false;
            rr.error = e.what();
        }
        auto t1 = Clock::now();
        double secs = std::chrono::duration<double>(t1 - t0).count();

        gpu::KernelStats ks = session.system().gpu().totalKernelStats();
        double total =
            static_cast<double>(std::max<uint64_t>(ks.totalSlots(), 1));
        std::printf("%-18s %-6s %8llu %12llu %7.1f%% %7.1f%% %6.1f%% "
                    "%6.2fs\n",
                    name.c_str(), rr.ok ? "PASS" : "FAIL",
                    static_cast<unsigned long long>(rr.launches),
                    static_cast<unsigned long long>(ks.totalInstrs()),
                    100.0 * ks.arithInstrs / total,
                    100.0 * ks.lsInstrs / total,
                    100.0 * ks.nopSlots / total, secs);
        if (!rr.ok) {
            std::printf("    error: %s\n", rr.error.c_str());
            failures++;
        }
    }
    return failures == 0 ? 0 : 1;
}
