/**
 * @file
 * Full-system demonstration: boots the mini guest OS on the simulated
 * SA32 CPU, runs a *user-mode* guest program behind the CPU MMU that
 * prints through a syscall, then drives a GPU job through the guest
 * kernel driver (page-table setup, Job Manager MMIO, WFI and the
 * completion interrupt all executed by simulated guest code).
 *
 * Snapshot support (DESIGN.md §5e):
 *   --save-snapshot=<file>  capture a warm-boot image at the post-boot
 *                           quiescent point, before the GPU job
 *   --restore=<file>        skip boot entirely: restore the image and
 *                           go straight to the GPU job
 *
 * Record/replay support (DESIGN.md §5h):
 *   --record=<file>         record the CPU<->GPU boundary of the GPU
 *                           job into a BRPL log (composes with
 *                           --restore and --save-snapshot)
 *   --replay=<file>         replay a BRPL log into a standalone GPU —
 *                           no boot, no guest OS, no CPU — and verify
 *                           it reproduces the recorded fingerprints
 *
 * Live metrics HUD (DESIGN.md §5k, docs/METRICS.md):
 *   --hud[=<seconds>]       after boot, drive GPU jobs continuously
 *                           for <seconds> (default 5) while rendering
 *                           refresh-in-place rates (MIPS, jobs/s,
 *                           TLB hit %, steal ratio) from the
 *                           always-on metrics registry
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#ifdef __unix__
#include <unistd.h>
#endif

#include "common/logging.h"
#include "cpu/asm/assembler.h"
#include "cpu/mmu.h"
#include "metrics/hud.h"
#include "metrics/metrics.h"
#include "replay/replay.h"
#include "runtime/session.h"

namespace {

/** A user-mode program: prints a message via the putchar syscall,
 *  then exits via the exit syscall. */
const char *kUserProgram = R"(
        .org 0x00400000
start:
        la   s0, message
loop:
        lbu  a0, 0(s0)
        beqz a0, done
        li   a7, 1          # syscall: putchar(a0)
        ecall
        addi s0, s0, 1
        j    loop
done:
        li   a7, 2          # syscall: exit
        ecall
message:
        .asciz "hello from user mode!\n"
)";

const char *kKernel = R"(
kernel void scale(global const float* in, global float* out, int n,
                  float k) {
    int i = get_global_id(0);
    if (i < n) {
        out[i] = in[i] * k;
    }
}
)";

/** Part 2: a GPU job through the guest driver. */
int
runGpuJob(bifsim::rt::Session &session)
{
    using namespace bifsim;

    constexpr int kN = 1024;
    std::vector<float> in(kN), out(kN);
    for (int i = 0; i < kN; ++i)
        in[i] = static_cast<float>(i);

    rt::Buffer din = session.alloc(kN * 4);
    rt::Buffer dout = session.alloc(kN * 4);
    session.write(din, in.data(), kN * 4);
    rt::KernelHandle k = session.compile(kKernel, "scale");
    gpu::JobResult r =
        session.enqueue(k, rt::NDRange{kN, 1, 1}, rt::NDRange{64, 1, 1},
                        {rt::Arg::buf(din), rt::Arg::buf(dout),
                         rt::Arg::i32(kN), rt::Arg::f32(3.0f)});
    if (r.faulted) {
        std::fprintf(stderr, "GPU fault: %s\n", r.fault.detail.c_str());
        return 1;
    }
    session.read(dout, out.data(), kN * 4);
    int errors = 0;
    for (int i = 0; i < kN; ++i) {
        if (out[i] != in[i] * 3.0f)
            errors++;
    }

    rt::System &sys = session.system();
    gpu::SystemStats gs = sys.gpu().systemStats();
    std::printf("GPU job through guest driver: %s\n",
                errors == 0 ? "PASS" : "FAIL");
    std::printf("driver instructions executed: %llu\n",
                static_cast<unsigned long long>(
                    session.driverInstructions()));
    std::printf("GPU pages mapped by driver:   %llu\n",
                static_cast<unsigned long long>(session.mappedPages()));
    std::printf("ctrl regs: %llu reads / %llu writes, interrupts: "
                "%llu, jobs: %llu\n",
                static_cast<unsigned long long>(gs.ctrlRegReads),
                static_cast<unsigned long long>(gs.ctrlRegWrites),
                static_cast<unsigned long long>(gs.irqsAsserted),
                static_cast<unsigned long long>(gs.computeJobs));
    return errors == 0 ? 0 : 1;
}

/**
 * --hud: drive the scale kernel through the guest driver in a loop
 * for @p seconds, sampling the metrics registry ~20x/s and rewriting
 * the HUD block in place (plain periodic lines when stdout is not a
 * terminal).  Returns nonzero if any job faults or misverifies.
 */
int
runHudLoop(bifsim::rt::Session &session, double seconds)
{
    using namespace bifsim;
    namespace chrono = std::chrono;

    constexpr int kN = 1024;
    std::vector<float> in(kN), out(kN);
    for (int i = 0; i < kN; ++i)
        in[i] = static_cast<float>(i);
    rt::Buffer din = session.alloc(kN * 4);
    rt::Buffer dout = session.alloc(kN * 4);
    session.write(din, in.data(), kN * 4);
    rt::KernelHandle k = session.compile(kKernel, "scale");

    bool tty = false;
#ifdef __unix__
    tty = isatty(fileno(stdout)) != 0;
#endif
    metrics::Registry &reg = metrics::registry();
    metrics::HudOptions hopt;

    auto t0 = chrono::steady_clock::now();
    auto next_render = t0;
    int rendered_lines = 0;
    uint64_t jobs = 0;
    while (chrono::duration<double>(chrono::steady_clock::now() - t0)
               .count() < seconds) {
        gpu::JobResult r = session.enqueue(
            k, rt::NDRange{kN, 1, 1}, rt::NDRange{64, 1, 1},
            {rt::Arg::buf(din), rt::Arg::buf(dout), rt::Arg::i32(kN),
             rt::Arg::f32(3.0f)});
        if (r.faulted) {
            std::fprintf(stderr, "GPU fault: %s\n",
                         r.fault.detail.c_str());
            return 1;
        }
        ++jobs;
        // Sample every job (cheap: one totals() sum); render at most
        // ~10x/s so the terminal isn't the bottleneck.
        reg.sample();
        auto now = chrono::steady_clock::now();
        if (now >= next_render) {
            next_render = now + chrono::milliseconds(tty ? 100 : 1000);
            std::string frame = renderHud(reg, hopt);
            if (tty && rendered_lines > 0)
                std::printf("\x1b[%dA", rendered_lines);
            fputs(frame.c_str(), stdout);
            std::fflush(stdout);
            rendered_lines = 0;
            for (char c : frame)
                rendered_lines += c == '\n';
        }
    }

    session.read(dout, out.data(), kN * 4);
    int errors = 0;
    for (int i = 0; i < kN; ++i) {
        if (out[i] != in[i] * 3.0f)
            errors++;
    }
    std::printf("hud run: %llu jobs in %.1fs, verify %s\n",
                static_cast<unsigned long long>(jobs), seconds,
                errors == 0 ? "PASS" : "FAIL");
    return errors == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace bifsim;

    std::string save_path, restore_path, record_path, replay_path;
    double hud_seconds = 0;
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (std::strncmp(a, "--save-snapshot=", 16) == 0) {
            save_path = a + 16;
        } else if (std::strncmp(a, "--restore=", 10) == 0) {
            restore_path = a + 10;
            if (restore_path.empty()) {
                std::fprintf(stderr, "--restore needs a file path\n");
                return 2;
            }
        } else if (std::strncmp(a, "--record=", 9) == 0) {
            record_path = a + 9;
        } else if (std::strncmp(a, "--replay=", 9) == 0) {
            replay_path = a + 9;
        } else if (std::strcmp(a, "--hud") == 0) {
            hud_seconds = 5;
        } else if (std::strncmp(a, "--hud=", 6) == 0) {
            hud_seconds = std::atof(a + 6);
            if (hud_seconds <= 0) {
                std::fprintf(stderr,
                             "--hud needs a positive duration\n");
                return 2;
            }
        } else {
            std::fprintf(stderr,
                         "usage: %s [--save-snapshot=<file>] "
                         "[--restore=<file>] [--record=<file>] "
                         "[--replay=<file>] [--hud[=<seconds>]]\n",
                         argv[0]);
            return 2;
        }
    }

    // ---- Replay: drive the GPU from a log, no system at all ----
    if (!replay_path.empty()) {
        try {
            replay::Log log = replay::Log::load(replay_path);
            replay::ReplayResult r = replay::replay(log);
            std::printf("replayed %llu events / %llu chains from %s\n",
                        static_cast<unsigned long long>(log.eventCount()),
                        static_cast<unsigned long long>(r.chains),
                        replay_path.c_str());
            if (!r.ok) {
                std::fprintf(stderr, "DIVERGED at event %llu: %s\n",
                             static_cast<unsigned long long>(
                                 r.divergenceEvent),
                             r.divergence.c_str());
                return 1;
            }
            std::printf("replay verified: fingerprints match\n");
            return 0;
        } catch (const SimError &e) {
            std::fprintf(stderr, "%s\n", e.what());
            return 1;
        }
    }

    rt::SystemConfig cfg;
    if (!record_path.empty())
        cfg.gpu.syncSubmit = true;   // The recording contract.

    auto runAndMaybeRecord = [&](rt::Session &s) {
        if (!record_path.empty())
            s.startRecording();
        int rc = hud_seconds > 0 ? runHudLoop(s, hud_seconds)
                                 : runGpuJob(s);
        if (!record_path.empty()) {
            s.stopRecordingToFile(record_path);
            std::printf("recorded CPU<->GPU boundary to %s\n",
                        record_path.c_str());
        }
        return rc;
    };

    // ---- Warm boot: restore the machine instead of booting it ----
    if (!restore_path.empty()) {
        // Catch SimError, not just SnapshotError: a missing file, a
        // corrupt image and a config mismatch must all exit 1 with a
        // located message, never abort (the WILL_FAIL regression test
        // in tests/CMakeLists.txt pins this).
        try {
            auto session = rt::Session::fromSnapshot(restore_path, cfg);
            std::printf("restored warm-boot image %s\n",
                        restore_path.c_str());
            std::printf("guest console output: %s",
                        session->system().uart().output().c_str());
            return runAndMaybeRecord(*session);
        } catch (const SimError &e) {
            std::fprintf(stderr, "%s\n", e.what());
            return 1;
        }
    }

    rt::Session session(cfg, rt::Mode::FullSystem);
    rt::System &sys = session.system();

    // ---- Part 1: user-mode execution behind the CPU MMU ----
    sa32::Program user = sa32::assemble(kUserProgram);
    // Place the user image in guest physical memory and build a page
    // table mapping VA 0x00400000 -> that physical page (U+R+W+X).
    Addr user_pa = rt::System::kRamBase + 0x00200000;
    user.bytes.resize(8192, 0);
    sys.mem().writeBlock(user_pa, user.bytes.data(), user.bytes.size());

    Addr root_pa = rt::System::kRamBase + 0x00300000;
    Addr l0_pa = root_pa + 4096;
    sys.mem().fill(root_pa, 0, 8192);
    uint32_t va = 0x00400000;
    uint32_t vpn1 = va >> 22, vpn0 = (va >> 12) & 0x3ff;
    sys.mem().write<uint32_t>(root_pa + vpn1 * 4,
                              static_cast<uint32_t>((l0_pa >> 12) << 10) |
                                  sa32::kPteValid);
    for (unsigned page = 0; page < 2; ++page) {
        uint32_t pte =
            static_cast<uint32_t>(((user_pa >> 12) + page) << 10) |
            sa32::kPteValid | sa32::kPteRead | sa32::kPteWrite |
            sa32::kPteExec | sa32::kPteUser;
        sys.mem().write<uint32_t>(l0_pa + (vpn0 + page) * 4, pte);
    }
    uint32_t satp = 0x80000000u |
                    static_cast<uint32_t>(root_pa >> 12);

    bool exited = session.runUserProgram(va, satp);
    std::printf("user program exited cleanly: %s\n",
                exited ? "yes" : "no");
    std::printf("guest console output: %s",
                sys.uart().output().c_str());
    if (!exited)
        return 1;

    // The user program ends in HALT; bring the OS back to its command
    // loop for the GPU submission below.
    session.system().cpu().setPc(rt::System::kRamBase);
    session.system().runCpu(10000);

    // ---- Post-boot quiescent point: capture the warm-boot image ----
    if (!save_path.empty()) {
        session.saveSnapshot(save_path);
        std::printf("saved warm-boot image to %s\n", save_path.c_str());
    }

    // ---- Part 2: a GPU job through the guest driver ----
    return runAndMaybeRecord(session);
}
