/**
 * @file
 * Quickstart: compile a KCL kernel with kclc, run it on the simulated
 * Mali-like GPU, and read back results plus instrumentation.
 *
 * Usage: quickstart [--full-system]
 *   --full-system  route the submission through the guest OS driver
 *                  running on the simulated CPU (default: direct MMIO).
 */

#include <cstdio>
#include <cstring>
#include <vector>

#include "common/logging.h"
#include "runtime/session.h"

namespace {

const char *kSource = R"(
kernel void vector_add(global const float* a, global const float* b,
                       global float* out, int n) {
    int i = get_global_id(0);
    if (i < n) {
        out[i] = a[i] + b[i];
    }
}
)";

} // namespace

int
main(int argc, char **argv)
{
    using namespace bifsim;

    bool full_system = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--full-system") == 0)
            full_system = true;
    }

    rt::SystemConfig cfg;
    cfg.gpu.numCores = 8;
    cfg.gpu.hostThreads = 8;

    rt::Session session(cfg, full_system ? rt::Mode::FullSystem
                                         : rt::Mode::Direct);

    constexpr int kN = 4096;
    std::vector<float> a(kN), b(kN), out(kN, 0.0f);
    for (int i = 0; i < kN; ++i) {
        a[i] = 0.5f * static_cast<float>(i);
        b[i] = 2.0f * static_cast<float>(i);
    }

    rt::Buffer da = session.alloc(kN * sizeof(float));
    rt::Buffer db = session.alloc(kN * sizeof(float));
    rt::Buffer dout = session.alloc(kN * sizeof(float));
    session.write(da, a.data(), kN * sizeof(float));
    session.write(db, b.data(), kN * sizeof(float));

    rt::KernelHandle k = session.compile(kSource, "vector_add");
    std::printf("compiled vector_add: %zu clauses, %u registers, "
                "%zu-byte binary\n",
                k.info.mod.clauses.size(), k.info.regCount,
                k.info.binary.size());

    gpu::JobResult r = session.enqueue(
        k, rt::NDRange{kN, 1, 1}, rt::NDRange{64, 1, 1},
        {rt::Arg::buf(da), rt::Arg::buf(db), rt::Arg::buf(dout),
         rt::Arg::i32(kN)});
    if (r.faulted) {
        std::fprintf(stderr, "GPU fault: %s (va=0x%x)\n",
                     r.fault.detail.c_str(), r.fault.va);
        return 1;
    }

    session.read(dout, out.data(), kN * sizeof(float));
    int errors = 0;
    for (int i = 0; i < kN; ++i) {
        if (out[i] != a[i] + b[i])
            errors++;
    }

    std::printf("mode:                %s\n",
                full_system ? "full-system (guest driver)" : "direct");
    std::printf("result check:        %s (%d mismatches)\n",
                errors == 0 ? "PASS" : "FAIL", errors);
    const gpu::KernelStats &ks = r.kernel;
    std::printf("threads launched:    %llu\n",
                static_cast<unsigned long long>(ks.threadsLaunched));
    std::printf("instructions:        %llu arith, %llu ld/st, "
                "%llu control-flow, %llu empty slots\n",
                static_cast<unsigned long long>(ks.arithInstrs),
                static_cast<unsigned long long>(ks.lsInstrs),
                static_cast<unsigned long long>(ks.cfInstrs),
                static_cast<unsigned long long>(ks.nopSlots));
    std::printf("register traffic:    %llu GRF reads, %llu GRF writes, "
                "%llu temp accesses\n",
                static_cast<unsigned long long>(ks.grfReads),
                static_cast<unsigned long long>(ks.grfWrites),
                static_cast<unsigned long long>(ks.tempAccesses));
    std::printf("avg clause size:     %.2f tuples\n", ks.avgClauseSize());
    std::printf("pages touched:       %llu\n",
                static_cast<unsigned long long>(r.pagesAccessed));
    if (full_system) {
        std::printf("driver instructions: %llu (on the simulated CPU)\n",
                    static_cast<unsigned long long>(
                        session.driverInstructions()));
        gpu::SystemStats sys = session.system().gpu().systemStats();
        std::printf("ctrl-reg traffic:    %llu reads, %llu writes, "
                    "%llu IRQs\n",
                    static_cast<unsigned long long>(sys.ctrlRegReads),
                    static_cast<unsigned long long>(sys.ctrlRegWrites),
                    static_cast<unsigned long long>(sys.irqsAsserted));
    }
    return errors == 0 ? 0 : 1;
}
