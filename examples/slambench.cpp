/**
 * @file
 * The paper's SLAMBench use case (§V-E1, Fig. 14): run the KFusion-like
 * pipeline under the standard / fast3 / express configurations and
 * print per-metric ratios relative to standard, plus a frame-rate
 * proxy from the mobile cost model.
 *
 * Usage: slambench [--frames N] [--size W]
 */

#include <cstdio>
#include <cstring>
#include <vector>

#include "common/logging.h"
#include "workloads/cost_model.h"
#include "workloads/kfusion.h"

int
main(int argc, char **argv)
{
    using namespace bifsim;
    using workloads::KFusionConfig;
    using workloads::KFusionResult;

    uint32_t frames = 4;
    uint32_t size = 96;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--frames") == 0 && i + 1 < argc)
            frames = std::atoi(argv[++i]);
        else if (std::strcmp(argv[i], "--size") == 0 && i + 1 < argc)
            size = std::atoi(argv[++i]);
    }
    setInformEnabled(false);

    std::vector<KFusionConfig> configs = {
        KFusionConfig::standard(size, size, frames),
        KFusionConfig::fast3(size, size, frames),
        KFusionConfig::express(size, size, frames),
    };

    std::vector<KFusionResult> results;
    std::vector<double> cost;
    for (const KFusionConfig &cfg : configs) {
        rt::Session session;
        KFusionResult r = workloads::runKFusion(session, cfg);
        if (!r.ok) {
            std::fprintf(stderr, "%s failed: %s\n", cfg.name.c_str(),
                         r.error.c_str());
            return 1;
        }
        results.push_back(r);
        cost.push_back(workloads::evalCost(r.kernel,
                                           workloads::maliCostModel()));
    }

    auto ratio = [&](auto get) {
        double base = static_cast<double>(get(results[0]));
        std::printf(" %8.3f %8.3f\n",
                    base ? get(results[1]) / base : 0.0,
                    base ? get(results[2]) / base : 0.0);
    };

    std::printf("%-22s %8s %8s\n", "metric (vs standard)", "fast3",
                "express");
    std::printf("%-22s", "Arithmetic Instr.");
    ratio([](const KFusionResult &r) {
        return static_cast<double>(r.kernel.arithInstrs);
    });
    std::printf("%-22s", "Avg. Clause Size");
    ratio([](const KFusionResult &r) {
        return r.kernel.avgClauseSize();
    });
    std::printf("%-22s", "CF Instr.");
    ratio([](const KFusionResult &r) {
        return static_cast<double>(r.kernel.cfInstrs);
    });
    std::printf("%-22s", "Constant Reads");
    ratio([](const KFusionResult &r) {
        return static_cast<double>(r.kernel.constReads);
    });
    std::printf("%-22s", "Control Regs.");
    ratio([](const KFusionResult &r) {
        return static_cast<double>(r.system.ctrlRegReads +
                                   r.system.ctrlRegWrites);
    });
    std::printf("%-22s", "GRF Acc.");
    ratio([](const KFusionResult &r) {
        return static_cast<double>(r.kernel.grfReads +
                                   r.kernel.grfWrites);
    });
    std::printf("%-22s", "Global LS Instr.");
    ratio([](const KFusionResult &r) {
        return static_cast<double>(r.kernel.globalLdSt);
    });
    std::printf("%-22s", "Interrupts");
    ratio([](const KFusionResult &r) {
        return static_cast<double>(r.system.irqsAsserted);
    });
    std::printf("%-22s", "Kernels");
    ratio([](const KFusionResult &r) {
        return static_cast<double>(r.kernelLaunches);
    });
    std::printf("%-22s", "Local LS Instr.");
    ratio([](const KFusionResult &r) {
        return static_cast<double>(r.kernel.localLdSt);
    });
    std::printf("%-22s", "NOP Instr.");
    ratio([](const KFusionResult &r) {
        return static_cast<double>(r.kernel.nopSlots);
    });
    std::printf("%-22s", "Num. Clauses");
    ratio([](const KFusionResult &r) {
        return static_cast<double>(r.kernel.clausesExecuted);
    });
    std::printf("%-22s", "Num. Workgroups");
    ratio([](const KFusionResult &r) {
        return static_cast<double>(r.kernel.workgroups);
    });
    std::printf("%-22s", "Pages Acc.");
    ratio([](const KFusionResult &r) {
        return static_cast<double>(r.system.pagesAccessed);
    });
    std::printf("%-22s", "Temp. Reg. Acc.");
    ratio([](const KFusionResult &r) {
        return static_cast<double>(r.kernel.tempAccesses);
    });

    std::printf("\nFPS proxy (mobile cost model, relative):\n");
    for (size_t i = 0; i < results.size(); ++i) {
        std::printf("  %-10s %.2fx\n", configs[i].name.c_str(),
                    cost[i] > 0 ? cost[0] / cost[i] : 0.0);
    }
    std::printf("\n(Paper: fast3 is 3.35x and express 7.72x faster "
                "than standard on hardware.)\n");
    return 0;
}
