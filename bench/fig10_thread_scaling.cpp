/**
 * @file
 * Fig. 10: the virtual-core optimisation — mapping simulated
 * thread-groups onto more host threads than the guest has shader
 * cores.  Big data-parallel kernels (sgemm, SobelFilter) scale; the
 * iterative, short-kernel BinarySearch does not (paper: 20.9x vs
 * ~1.0x at 64 threads).
 *
 * sgemm is the headline series: CI gates on its 8-thread speedup.
 * Results go to BENCH_thread_scaling.json (see EXPERIMENTS.md for the
 * reproduction recipe and how to read the file).
 *
 * Flags (besides the common --scale/--full):
 *   --gate   exit non-zero if sgemm's 8-thread speedup is < 3x over
 *            1 thread.  The gate only arms when the host has >= 4
 *            hardware threads — wall-clock scaling is physically
 *            impossible on fewer — and the JSON records whether it
 *            was enforced.
 *
 * NOTE: wall-clock speedup requires host cores; on a single-core host
 * this bench still exercises the full work-stealing scheduler (the
 * per-series steal counts prove it), but speedups flatten at the
 * host's core count.
 */

#include <cstring>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "workloads/workload.h"

namespace {

struct Series
{
    const char *name;
    std::vector<double> secs;      ///< Wall time per thread count.
    std::vector<double> speedup;   ///< vs. the 1-thread entry.
    std::vector<uint64_t> steals;  ///< Scheduler steals per run.
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace bifsim;
    bench::Options opt = bench::Options::parse(argc, argv, 0.05);
    bool gate = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--gate") == 0)
            gate = true;
    }
    setInformEnabled(false);

    const unsigned hw = std::thread::hardware_concurrency();
    bench::banner("Fig. 10 — host-thread scaling (virtual cores)",
                  "Speedup over 1 host thread while the guest still "
                  "sees 8 shader cores.");
    std::printf("host has %u hardware threads\n\n", hw);

    const unsigned threads[] = {1, 2, 4, 8};
    Series series[] = {{"sgemm", {}, {}, {}},
                       {"sobelfilter", {}, {}, {}},
                       {"binarysearch", {}, {}, {}}};

    std::printf("%-8s %14s %14s %14s\n", "threads", "sgemm",
                "sobelfilter", "binarysearch");
    for (unsigned nt : threads) {
        std::printf("%-8u", nt);
        for (Series &s : series) {
            auto wl = workloads::makeWorkload(s.name, opt.scale);
            rt::SystemConfig cfg;
            cfg.gpu.numCores = 8;        // Guest-visible cores fixed.
            cfg.gpu.hostThreads = nt;    // Simulator parallelism.
            rt::Session session(cfg);
            workloads::SessionDevice dev(session);
            dev.build(wl->source(), kclc::CompilerOptions());
            bench::Timer t;
            workloads::RunResult rr = wl->run(dev);
            double secs = t.seconds();
            if (!rr.ok) {
                std::fprintf(stderr, "%s: %s\n", s.name,
                             rr.error.c_str());
                return 1;
            }
            s.secs.push_back(secs);
            s.speedup.push_back(s.secs.front() / secs);
            s.steals.push_back(
                session.system().gpu().schedulerStats().steals);
            std::printf(" %13.2fx", s.speedup.back());
        }
        std::printf("\n");
    }

    const double sgemm8 = series[0].speedup.back();
    const bool gate_armed = gate && hw >= 4;
    std::printf("\nsgemm 8-thread speedup: %.2fx (gate >= 3x: %s)\n",
                sgemm8,
                gate_armed ? "enforced"
                           : (gate ? "skipped, < 4 host threads"
                                   : "not requested"));
    std::printf("(paper, 32-core host: sobel 20.88x at 64 threads, "
                "binarysearch flat ~1x)\n");

    bench::Report report("thread_scaling", opt.scale);
    json::Value th = json::Value::array();
    for (unsigned nt : threads)
        th.push(json::Value(static_cast<uint64_t>(nt)));
    report.metrics().set("threads", std::move(th));
    for (const Series &s : series) {
        json::Value secs = json::Value::array();
        for (double v : s.secs)
            secs.push(json::Value(v));
        report.metrics().set(std::string(s.name) + "_secs",
                             std::move(secs));
        json::Value sp = json::Value::array();
        for (double v : s.speedup)
            sp.push(json::Value(v));
        report.metrics().set(std::string(s.name) + "_speedup",
                             std::move(sp));
        json::Value st = json::Value::array();
        for (uint64_t v : s.steals)
            st.push(json::Value(v));
        report.metrics().set(std::string(s.name) + "_steals",
                             std::move(st));
    }
    report.metrics().set("sgemm_speedup_at_8", json::Value(sgemm8));
    report.gate("sgemm_speedup_at_8", 3.0, sgemm8, gate_armed);
    report.write();

    if (gate_armed && sgemm8 < 3.0) {
        std::fprintf(stderr,
                     "FAIL: sgemm 8-thread speedup %.2fx below the 3x "
                     "gate\n",
                     sgemm8);
        return 1;
    }
    return 0;
}
