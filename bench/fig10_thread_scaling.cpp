/**
 * @file
 * Fig. 10: the virtual-core optimisation — mapping simulated
 * thread-groups onto more host threads than the guest has shader
 * cores.  SobelFilter (one big data-parallel kernel) scales; the
 * iterative, short-kernel BinarySearch does not (paper: 20.9x vs
 * ~1.0x at 64 threads).
 *
 * NOTE: wall-clock speedup requires host cores; on a single-core host
 * this bench still exercises the mechanism and reports the thread
 * counts, but speedups will flatten at the host's core count.
 */

#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "workloads/workload.h"

int
main(int argc, char **argv)
{
    using namespace bifsim;
    bench::Options opt = bench::Options::parse(argc, argv, 0.05);
    setInformEnabled(false);

    bench::banner("Fig. 10 — host-thread scaling (virtual cores)",
                  "Speedup over 1 host thread while the guest still "
                  "sees 8 shader cores.");
    std::printf("host has %u hardware threads\n\n",
                std::thread::hardware_concurrency());

    std::vector<unsigned> threads = {1, 2, 4, 8, 16, 32, 64};
    std::printf("%-8s %14s %14s\n", "threads", "sobelfilter",
                "binarysearch");

    std::vector<double> base(2, 0.0);
    for (unsigned nt : threads) {
        double speed[2];
        const char *names[2] = {"sobelfilter", "binarysearch"};
        for (int i = 0; i < 2; ++i) {
            auto wl = workloads::makeWorkload(names[i], opt.scale);
            rt::SystemConfig cfg;
            cfg.gpu.numCores = 8;        // Guest-visible cores fixed.
            cfg.gpu.hostThreads = nt;    // Simulator parallelism.
            rt::Session session(cfg);
            workloads::SessionDevice dev(session);
            dev.build(wl->source(), kclc::CompilerOptions());
            bench::Timer t;
            workloads::RunResult rr = wl->run(dev);
            double secs = t.seconds();
            if (!rr.ok) {
                std::fprintf(stderr, "%s: %s\n", names[i],
                             rr.error.c_str());
                return 1;
            }
            if (nt == 1)
                base[i] = secs;
            speed[i] = base[i] / secs;
        }
        std::printf("%-8u %13.2fx %13.2fx\n", nt, speed[0], speed[1]);
    }
    std::printf("\n(paper, 32-core host: sobel 20.88x at 64 threads, "
                "binarysearch flat ~1x)\n");
    return 0;
}
