/**
 * @file
 * Fig. 6: the simulator reconstructs a control-flow graph over actual
 * GPU instructions (clauses) from per-thread PC tracking, pinpointing
 * the divergence in BFS with per-edge thread proportions.
 */

#include <algorithm>

#include "bench_util.h"
#include "common/logging.h"
#include "instrument/cfg.h"
#include "workloads/workload.h"

int
main(int argc, char **argv)
{
    using namespace bifsim;
    bench::Options opt = bench::Options::parse(argc, argv, 0.005);
    setInformEnabled(false);

    bench::banner("Fig. 6 — BFS divergence CFG",
                  "Clause-level CFG with the proportion of threads on "
                  "each edge; divergent blocks flagged.");

    auto wl = workloads::makeWorkload("bfs", opt.scale);
    rt::Session session;
    workloads::SessionDevice dev(session);
    dev.build(wl->source(), kclc::CompilerOptions());
    workloads::RunResult rr = wl->run(dev);
    if (!rr.ok) {
        std::fprintf(stderr, "bfs failed: %s\n", rr.error.c_str());
        return 1;
    }

    gpu::KernelStats ks = session.system().gpu().totalKernelStats();
    instrument::Cfg cfg = instrument::buildCfg(ks);

    std::printf("%-12s %-12s %10s %9s %s\n", "block", "successor",
                "threads", "share", "");
    for (const instrument::CfgNode &n : cfg.nodes) {
        bool first = true;
        for (const instrument::CfgEdge &e : cfg.edges) {
            if (e.from != n.clause)
                continue;
            std::printf("%-12s %-12s %10llu %8.2f%% %s\n",
                        first ? instrument::nodeLabel(n.clause).c_str()
                              : "",
                        instrument::nodeLabel(e.to).c_str(),
                        static_cast<unsigned long long>(e.threads),
                        e.fraction * 100.0,
                        first && n.divergent ? "<- divergence" : "");
            first = false;
        }
    }
    std::printf("\ndivergent warp branches: %llu of %llu clause "
                "executions\n",
                static_cast<unsigned long long>(ks.divergentBranches),
                static_cast<unsigned long long>(ks.clausesExecuted));
    std::printf("(paper shows e.g. an 83.32%% / 16.68%% split at the "
                "divergence point)\n");
    return 0;
}
