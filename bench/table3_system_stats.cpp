/**
 * @file
 * Table III: system-level statistics only a full-system simulator can
 * report — pages touched by the GPU, control-register traffic,
 * interrupts, and compute-job counts — for BFS, BinomialOption,
 * SobelFilter and Stencil, with every submission flowing through the
 * guest driver.
 */

#include "bench_util.h"
#include "common/logging.h"
#include "workloads/workload.h"

int
main(int argc, char **argv)
{
    using namespace bifsim;
    bench::Options opt = bench::Options::parse(argc, argv, 0.01);
    setInformEnabled(false);

    bench::banner("Table III — CPU-GPU system statistics",
                  "Collected with the guest driver in the loop "
                  "(full-system mode).");

    std::printf("%-16s %10s %10s %10s %8s %8s\n", "benchmark",
                "pages", "reg-reads", "reg-writes", "irqs", "jobs");
    for (const char *name :
         {"bfs", "binomialoption", "sobelfilter", "stencil"}) {
        auto wl = workloads::makeWorkload(name, opt.scale);
        rt::Session session(rt::SystemConfig(), rt::Mode::FullSystem);
        workloads::SessionDevice dev(session);
        dev.build(wl->source(), kclc::CompilerOptions());
        workloads::RunResult rr = wl->run(dev);
        if (!rr.ok) {
            std::fprintf(stderr, "%s: %s\n", name, rr.error.c_str());
            return 1;
        }
        gpu::SystemStats s = session.system().gpu().systemStats();
        std::printf("%-16s %10llu %10llu %10llu %8llu %8llu\n", name,
                    static_cast<unsigned long long>(s.pagesAccessed),
                    static_cast<unsigned long long>(s.ctrlRegReads),
                    static_cast<unsigned long long>(s.ctrlRegWrites),
                    static_cast<unsigned long long>(s.irqsAsserted),
                    static_cast<unsigned long long>(s.computeJobs));
    }
    std::printf("\n(paper: BFS 51723 pages / 1003 jobs, Stencil 99603 "
                "pages / 100 jobs, SobelFilter 4609 pages / 1 job, "
                "BinomialOption 31 pages / 1 job — page use spans three "
                "orders of magnitude, BFS dominates control traffic)\n");
    return 0;
}
