/**
 * @file
 * Fig. 14: SLAMBench (KFusion) under standard / fast3 / express
 * configurations — simulated metrics relative to standard, plus a
 * frame-rate proxy.  The paper's measured FPS gains are 3.35x (fast3)
 * and 7.72x (express); the simulated metrics predict the ordering
 * without hardware.
 */

#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "workloads/cost_model.h"
#include "workloads/kfusion.h"

int
main(int argc, char **argv)
{
    using namespace bifsim;
    using workloads::KFusionConfig;
    using workloads::KFusionResult;

    bench::Options opt = bench::Options::parse(argc, argv);
    setInformEnabled(false);

    bench::banner("Fig. 14 — SLAMBench configurations",
                  "Per-metric ratios of fast3/express vs standard and "
                  "an FPS proxy from the mobile cost model.");

    uint32_t size = opt.full ? 160 : 64;
    uint32_t frames = opt.full ? 8 : 2;

    std::vector<KFusionConfig> configs = {
        KFusionConfig::standard(size, size, frames),
        KFusionConfig::fast3(size, size, frames),
        KFusionConfig::express(size, size, frames),
    };
    std::vector<KFusionResult> res;
    for (const KFusionConfig &cfg : configs) {
        rt::Session session;
        KFusionResult r = workloads::runKFusion(session, cfg);
        if (!r.ok) {
            std::fprintf(stderr, "%s: %s\n", cfg.name.c_str(),
                         r.error.c_str());
            return 1;
        }
        res.push_back(r);
    }

    struct Metric
    {
        const char *name;
        double (*get)(const KFusionResult &);
    };
    const Metric metrics[] = {
        {"Arithmetic Instr.",
         [](const KFusionResult &r) {
             return static_cast<double>(r.kernel.arithInstrs);
         }},
        {"Avg. Clause Size",
         [](const KFusionResult &r) {
             return r.kernel.avgClauseSize();
         }},
        {"CF Instr.",
         [](const KFusionResult &r) {
             return static_cast<double>(r.kernel.cfInstrs);
         }},
        {"Constant Reads",
         [](const KFusionResult &r) {
             return static_cast<double>(r.kernel.constReads);
         }},
        {"Control Regs.",
         [](const KFusionResult &r) {
             return static_cast<double>(r.system.ctrlRegReads +
                                        r.system.ctrlRegWrites);
         }},
        {"GRF Acc.",
         [](const KFusionResult &r) {
             return static_cast<double>(r.kernel.grfReads +
                                        r.kernel.grfWrites);
         }},
        {"Global LS Instr.",
         [](const KFusionResult &r) {
             return static_cast<double>(r.kernel.globalLdSt);
         }},
        {"Interrupts",
         [](const KFusionResult &r) {
             return static_cast<double>(r.system.irqsAsserted);
         }},
        {"Kernels",
         [](const KFusionResult &r) {
             return static_cast<double>(r.kernelLaunches);
         }},
        {"Local LS Instr.",
         [](const KFusionResult &r) {
             return static_cast<double>(r.kernel.localLdSt);
         }},
        {"NOP Instr.",
         [](const KFusionResult &r) {
             return static_cast<double>(r.kernel.nopSlots);
         }},
        {"Num. Clauses",
         [](const KFusionResult &r) {
             return static_cast<double>(r.kernel.clausesExecuted);
         }},
        {"Num. Workgroups",
         [](const KFusionResult &r) {
             return static_cast<double>(r.kernel.workgroups);
         }},
        {"Pages Acc.",
         [](const KFusionResult &r) {
             return static_cast<double>(r.system.pagesAccessed);
         }},
        {"Temp. Reg. Acc.",
         [](const KFusionResult &r) {
             return static_cast<double>(r.kernel.tempAccesses);
         }},
    };

    std::printf("%-22s %8s %8s\n", "metric (vs standard)", "fast3",
                "express");
    for (const Metric &m : metrics) {
        double base = m.get(res[0]);
        std::printf("%-22s %8.3f %8.3f\n", m.name,
                    base ? m.get(res[1]) / base : 0.0,
                    base ? m.get(res[2]) / base : 0.0);
    }

    workloads::CostModel mali = workloads::maliCostModel();
    double c0 = workloads::evalCost(res[0].kernel, mali);
    std::printf("\nFPS (relative, mobile cost model): standard 1.00x, "
                "fast3 %.2fx, express %.2fx\n",
                c0 / workloads::evalCost(res[1].kernel, mali),
                c0 / workloads::evalCost(res[2].kernel, mali));
    std::printf("(paper, measured on HW: fast3 3.35x, express "
                "7.72x)\n");
    return 0;
}
