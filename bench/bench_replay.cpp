/**
 * @file
 * Record/replay benchmark (DESIGN.md §5h): re-running a recorded GPU
 * workload from its BRPL log versus re-running the full system that
 * produced it.  Each chain of the workload has the *guest CPU* prepare
 * the input buffer (a simulated store loop, ~¼M instructions) before
 * the driver submits the job — the CPU-side work a boundary log
 * captures as a handful of RAM delta pages.  Replay applies those
 * pages with memcpy and drives the GPU directly, so it skips the
 * simulated CPU entirely; the gate enforces the >=5x
 * replay-vs-full-system speedup target.  Validated replay (re-record +
 * fingerprint diff) is reported alongside.
 *
 * Writes BENCH_replay.json.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "cpu/asm/assembler.h"
#include "replay/replay.h"
#include "runtime/session.h"

using namespace bifsim;

namespace {

const char *kKernel = R"(
kernel void scale(global const int* in, global int* out, int n) {
    int i = get_global_id(0);
    if (i < n) {
        out[i] = in[i] * 3 + 1;
    }
}
)";

/** Guest-side input generation: fills `count` words at `buf` with a
 *  seeded arithmetic pattern, then halts.  Runs in machine mode with
 *  paging off, so label addresses are physical. */
const char *kFillProgram = R"(
        .org 0x81800000
        j    start
params:
        .word 0             # buffer PA
        .word 0             # word count
        .word 0             # seed
start:
        la   s0, params
        lw   t0, 0(s0)
        lw   t1, 4(s0)
        lw   t2, 8(s0)
loop:
        sw   t2, 0(t0)
        addi t0, t0, 4
        addi t2, t2, 7
        addi t1, t1, -1
        bnez t1, loop
        halt
)";

constexpr Addr kFillPa = 0x81800000;       // kRamBase + 24 MiB.
constexpr Addr kParamsPa = kFillPa + 4;
constexpr uint32_t kWords = 131072;        // 512 KiB per chain.
constexpr uint32_t kGrid = 1024;           // GPU threads per chain.

rt::SystemConfig
makeConfig()
{
    rt::SystemConfig cfg;
    cfg.ramBytes = 32u << 20;
    cfg.gpu.hostThreads = 2;
    cfg.gpu.syncSubmit = true;   // Same submission mode as recording.
    return cfg;
}

/** Boot-to-done full-system run: construct the machine, JIT the
 *  kernel, then per chain have the guest generate the inputs and the
 *  guest driver submit the job.  Returns the recording if @p record. */
std::vector<uint8_t>
fullSystemRun(int chains, bool record)
{
    rt::Session s(makeConfig(), rt::Mode::FullSystem);
    rt::System &sys = s.system();
    rt::KernelHandle k = s.compile(kKernel, "scale");
    rt::Buffer in = s.alloc(kWords * 4);
    rt::Buffer out = s.alloc(kGrid * 4);

    sa32::Program fill = sa32::assemble(kFillProgram);
    sys.mem().writeBlock(kFillPa, fill.bytes.data(), fill.bytes.size());

    auto enqueue = [&] {
        gpu::JobResult r = s.enqueue(
            k, rt::NDRange{kGrid, 1, 1}, rt::NDRange{64, 1, 1},
            {rt::Arg::buf(in), rt::Arg::buf(out), rt::Arg::i32(kGrid)});
        if (r.faulted) {
            std::fprintf(stderr, "job faulted: %s\n",
                         r.fault.detail.c_str());
            std::exit(1);
        }
    };

    // Prime once so the guest OS is booted and the mappings installed
    // before the measured (or recorded) chains begin.
    enqueue();
    if (record)
        s.startRecording();
    for (int c = 0; c < chains; ++c) {
        // Guest-side input generation (the expensive CPU work).
        sys.mem().write<uint32_t>(kParamsPa + 0,
                                  static_cast<uint32_t>(in.pa));
        sys.mem().write<uint32_t>(kParamsPa + 4, kWords);
        sys.mem().write<uint32_t>(kParamsPa + 8,
                                  static_cast<uint32_t>(c * 13 + 1));
        sys.cpu().setPc(kFillPa);
        sys.runCpu(static_cast<uint64_t>(kWords) * 6 + 1000);
        // Re-enter the OS command loop for the submission.
        sys.cpu().setPc(rt::System::kRamBase);
        sys.runCpu(10000);
        enqueue();
    }
    return record ? s.stopRecording() : std::vector<uint8_t>();
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Options opt = bench::Options::parse(argc, argv, 1.0);
    bench::banner("replay",
                  "BRPL boundary replay vs full-system re-execution");

    const int chains = opt.full ? 16 : 8;
    const int reps = 3;   // Best-of-N: the regions are milliseconds.

    // Warm-up, then the timed full-system runs.
    fullSystemRun(1, false);
    bench::Timer t;
    double full_s = 1e30;
    for (int i = 0; i < reps; ++i) {
        t.reset();
        fullSystemRun(chains, false);
        full_s = std::min(full_s, t.seconds());
    }

    // Untimed: the same workload, recorded.
    std::vector<uint8_t> bytes = fullSystemRun(chains, true);
    size_t log_bytes = bytes.size();

    t.reset();
    replay::Log log = replay::Log::fromBytes(std::move(bytes));
    double load_s = t.seconds();

    // Timed: fast replay (inputs only, no validation scans).
    replay::ReplayOptions fast;
    fast.validate = false;
    fast.hostThreads = 2;
    replay::ReplayResult rf;
    double replay_s = 1e30;
    for (int i = 0; i < reps; ++i) {
        t.reset();
        rf = replay::replay(log, fast);
        replay_s = std::min(replay_s, t.seconds());
    }

    // Timed: validated replay (re-record + fingerprint diff).
    replay::ReplayOptions val;
    val.hostThreads = 2;
    t.reset();
    replay::ReplayResult rv = replay::replay(log, val);
    double replay_val_s = t.seconds();
    if (!rv.ok) {
        std::fprintf(stderr, "validated replay DIVERGED: %s\n",
                     rv.divergence.c_str());
        return 1;
    }
    if (rf.chains != static_cast<size_t>(chains) ||
        rv.chains != static_cast<size_t>(chains)) {
        std::fprintf(stderr, "chain count mismatch\n");
        return 1;
    }

    double speedup = replay_s > 0 ? full_s / replay_s : 0;

    std::printf("%-36s %10d\n", "chains:", chains);
    std::printf("%-36s %10u words guest-filled per chain\n",
                "input size:", kWords);
    std::printf("%-36s %10.2f ms\n", "full-system run (boot+fill+drive):",
                full_s * 1e3);
    std::printf("%-36s %10.2f ms\n", "log parse+validate:", load_s * 1e3);
    std::printf("%-36s %10.2f ms\n", "replay (inputs only):",
                replay_s * 1e3);
    std::printf("%-36s %10.2f ms\n", "replay (validated):",
                replay_val_s * 1e3);
    std::printf("%-36s %10.1f KiB\n", "log size:", log_bytes / 1024.0);
    std::printf("%-36s %10.1fx (target >= 5x)\n", "replay speedup:",
                speedup);

    bench::Report report("replay", opt.scale);
    json::Value &m = report.metrics();
    m.set("chains", json::Value(chains));
    m.set("guest_words_per_chain",
          json::Value(static_cast<uint64_t>(kWords)));
    m.set("full_system_secs", json::Value(full_s));
    m.set("log_load_secs", json::Value(load_s));
    m.set("replay_secs", json::Value(replay_s));
    m.set("replay_validated_secs", json::Value(replay_val_s));
    m.set("log_bytes", json::Value(static_cast<uint64_t>(log_bytes)));
    m.set("ram_bytes", json::Value(static_cast<uint64_t>(32u << 20)));
    m.set("replay_speedup", json::Value(speedup));
    report.gate("replay_speedup", 5.0, speedup, true);
    report.write();

    if (speedup < 5.0) {
        std::fprintf(stderr,
                     "FAIL: replay speedup below 5x target\n");
        return 1;
    }
    return 0;
}
