/**
 * @file
 * CPU execution-tier A/B benchmark: interpreter (CoreConfig::dbt =
 * false) versus the threaded-code DBT tier with block chaining
 * (DESIGN.md §5g).
 *
 * Two workloads:
 *
 *  - guest_boot: a boot-shaped bare-metal guest (BSS clear, memory
 *    checksum/fill, then a call-heavy "scheduler" compute loop) run on
 *    a bare core.  Reports guest MIPS per tier; this is the gated
 *    series.
 *  - driver_loop: the full-system guest driver servicing GPU enqueues
 *    (Session FullSystem mode), the paper's CPU/GPU interaction path.
 *    Reports wall seconds and driver-side MIPS per tier (GPU
 *    simulation time dilutes the end-to-end speedup by design).
 *
 * Results land in BENCH_cpu_dbt.json.  `--gate` exits non-zero if the
 * guest_boot DBT speedup falls below 3x, the same arming pattern as
 * fig10's thread-scaling gate.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "cpu/asm/assembler.h"
#include "cpu/core.h"
#include "mem/bus.h"
#include "mem/phys_mem.h"
#include "runtime/session.h"

namespace {

using namespace bifsim;

constexpr Addr kBase = 0x80000000;

/** Boot-shaped guest: clear 256 KiB, checksum+pattern it, then run a
 *  call-heavy compute loop @p sched_iters times and halt. */
std::string
bootProgram(unsigned sched_iters)
{
    return R"(
        .org 0x80000000
        la   t0, handler
        csrw mtvec, t0

        # Phase 1: clear 256 KiB of "BSS".
        li   t0, 0x80100000
        li   t1, 0x80140000
clear:
        sw   zero, 0(t0)
        sw   zero, 4(t0)
        sw   zero, 8(t0)
        sw   zero, 12(t0)
        addi t0, t0, 16
        bltu t0, t1, clear

        # Phase 2: checksum the region and fill it with a pattern.
        li   t0, 0x80100000
        li   t1, 0x80140000
        li   s0, 0
fill:
        lw   t2, 0(t0)
        add  s0, s0, t2
        xor  t2, s0, t0
        sw   t2, 0(t0)
        addi t0, t0, 4
        bltu t0, t1, fill

        # Phase 3: "scheduler" loop, one call per tick.  The task leaf
        # mixes several accumulators (checksum-style, with normal ILP)
        # and a data-dependent branch, the shape of driver bookkeeping
        # code.
        li   s1, 0
        li   s2, )" + std::to_string(sched_iters) + R"(
sched:
        jal  ra, task
        addi s1, s1, 1
        bltu s1, s2, sched
        halt
task:
        li   t0, 0
        li   t1, 50
tloop:
        xor  a0, a0, t0
        add  a1, a1, s1
        srli a2, a0, 3
        andi t2, t0, 3
        beqz t2, tskip
        add  a3, a3, a2
tskip:
        addi t0, t0, 1
        blt  t0, t1, tloop
        mul  t3, a0, a1
        add  s0, s0, t3
        ret
handler:
        mret
)";
}

struct TierMetrics
{
    double secs = 0;
    double mips = 0;
    uint64_t instret = 0;
};

/** One booted core per tier, reusable across timed reps. */
struct BootTier
{
    PhysMem mem;
    Bus bus;
    sa32::Core core;

    BootTier(const sa32::Program &prog, bool dbt)
        : mem(kBase, 8u << 20), bus(),
          core(bus, [&] {
              sa32::CoreConfig cfg;
              cfg.dbt = dbt;
              return cfg;
          }())
    {
        bus.attachMemory(&mem);
        prog.loadInto(mem);
        core.reset();
        // Warm-up pass populates the decode / translation cache.
        while (core.run(1u << 20) == sa32::StopReason::MaxInsts) {
        }
    }

    /** Run the guest to halt once; fold the rep into @p m if fastest. */
    void rep(TierMetrics &m)
    {
        core.reset();
        uint64_t instret0 = core.stats().instret;
        bench::Timer t;
        // Sliced like System::runCpu, so run-entry overhead counts.
        sa32::StopReason r;
        do {
            r = core.run(100000);
        } while (r == sa32::StopReason::MaxInsts);
        double secs = t.seconds();
        if (secs < m.secs) {
            m.secs = secs;
            m.instret = core.stats().instret - instret0;
        }
    }
};

/** A/B the interpreter and DBT tiers on the boot guest.  Reps are
 *  interleaved tier-by-tier and the best of five kept per tier, so a
 *  transient load spike on the host hits both sides of the ratio
 *  rather than one tier's contiguous timing window (the CI gate rides
 *  on this ratio and the box may be contended). */
void
runBoot(const sa32::Program &prog, TierMetrics &interp, TierMetrics &dbt)
{
    BootTier a(prog, false);
    BootTier b(prog, true);
    interp.secs = 1e30;
    dbt.secs = 1e30;
    for (int rep = 0; rep < 5; ++rep) {
        a.rep(interp);
        b.rep(dbt);
    }
    interp.mips =
        interp.secs > 0 ? interp.instret / interp.secs / 1e6 : 0;
    dbt.mips = dbt.secs > 0 ? dbt.instret / dbt.secs / 1e6 : 0;
}

const char *kTriad = R"(
kernel void triad(global const float* a, global const float* b,
                  global float* c, float s, int n) {
    int i = get_global_id(0);
    if (i < n) {
        c[i] = a[i] + s * b[i];
    }
}
)";

TierMetrics
runDriverLoop(bool dbt, int n, int launches)
{
    rt::SystemConfig cfg;
    cfg.cpuDbt = dbt;
    rt::Session s(cfg, rt::Mode::FullSystem);

    rt::KernelHandle k = s.compile(kTriad, "triad");
    size_t bytes = static_cast<size_t>(n) * 4;
    rt::Buffer a = s.alloc(bytes);
    rt::Buffer b = s.alloc(bytes);
    rt::Buffer c = s.alloc(bytes);
    std::vector<float> init(n);
    for (int i = 0; i < n; ++i)
        init[i] = 0.5f * static_cast<float>(i % 31);
    s.write(a, init.data(), bytes);
    s.write(b, init.data(), bytes);
    std::vector<rt::Arg> args = {rt::Arg::buf(a), rt::Arg::buf(b),
                                 rt::Arg::buf(c), rt::Arg::f32(2.0f),
                                 rt::Arg::i32(n)};
    rt::NDRange global{static_cast<uint32_t>(n), 1, 1};
    rt::NDRange local{64, 1, 1};

    s.enqueue(k, global, local, args);   // Warm-up.

    TierMetrics m;
    uint64_t before = s.driverInstructions();
    bench::Timer t;
    for (int it = 0; it < launches; ++it) {
        gpu::JobResult r = s.enqueue(k, global, local, args);
        if (r.faulted) {
            std::fprintf(stderr, "driver_loop: job faulted\n");
            std::exit(1);
        }
    }
    m.secs = t.seconds();
    m.instret = s.driverInstructions() - before;
    m.mips = m.secs > 0 ? m.instret / m.secs / 1e6 : 0;
    return m;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace bifsim;
    bench::Options opt = bench::Options::parse(argc, argv, 0.25);
    bool gate = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--gate") == 0)
            gate = true;
    }
    setInformEnabled(false);

    bench::banner("CPU DBT tier — threaded code + block chaining",
                  "A/B of the interpreter oracle vs the DBT tier on a "
                  "boot-shaped guest and the full-system driver loop.");

    unsigned sched_iters =
        static_cast<unsigned>(40000 * opt.scale);
    if (sched_iters < 1000)
        sched_iters = 1000;
    sa32::Program boot = sa32::assemble(bootProgram(sched_iters));

    TierMetrics boot_interp, boot_dbt;
    runBoot(boot, boot_interp, boot_dbt);
    double boot_speedup = boot_dbt.secs > 0 && boot_interp.secs > 0
                              ? boot_interp.secs / boot_dbt.secs
                              : 0;

    int n = static_cast<int>(8192 * opt.scale) & ~63;
    if (n < 256)
        n = 256;
    int launches = 6;
    TierMetrics drv_interp = runDriverLoop(false, n, launches);
    TierMetrics drv_dbt = runDriverLoop(true, n, launches);
    double drv_speedup = drv_dbt.secs > 0 && drv_interp.secs > 0
                             ? drv_interp.secs / drv_dbt.secs
                             : 0;

    std::printf("%-12s %14s %14s %9s %14s\n", "workload", "interp MIPS",
                "DBT MIPS", "speedup", "guest insts");
    std::printf("%-12s %14.1f %14.1f %8.2fx %14llu\n", "guest_boot",
                boot_interp.mips, boot_dbt.mips, boot_speedup,
                static_cast<unsigned long long>(boot_dbt.instret));
    std::printf("%-12s %14.1f %14.1f %8.2fx %14llu\n", "driver_loop",
                drv_interp.mips, drv_dbt.mips, drv_speedup,
                static_cast<unsigned long long>(drv_dbt.instret));
    std::printf("\nguest_boot DBT speedup: %.2fx (gate >= 3x: %s)\n",
                boot_speedup, gate ? "enforced" : "not requested");

    bench::Report report("cpu_dbt", opt.scale);
    auto tier = [](const TierMetrics &tm) {
        json::Value t = json::Value::object();
        t.set("secs", json::Value(tm.secs));
        t.set("mips", json::Value(tm.mips));
        return t;
    };
    json::Value gb = json::Value::object();
    gb.set("instret", json::Value(boot_dbt.instret));
    gb.set("interp", tier(boot_interp));
    gb.set("dbt", tier(boot_dbt));
    gb.set("speedup", json::Value(boot_speedup));
    report.metrics().set("guest_boot", std::move(gb));
    json::Value dl = json::Value::object();
    dl.set("driver_instret", json::Value(drv_dbt.instret));
    dl.set("interp", tier(drv_interp));
    dl.set("dbt", tier(drv_dbt));
    dl.set("speedup", json::Value(drv_speedup));
    report.metrics().set("driver_loop", std::move(dl));
    report.gate("guest_boot.speedup", 3.0, boot_speedup, gate);
    report.write();

    if (gate && boot_speedup < 3.0) {
        std::fprintf(stderr,
                     "FAIL: guest_boot DBT speedup %.2fx below the 3x "
                     "gate\n",
                     boot_speedup);
        return 1;
    }
    return 0;
}
