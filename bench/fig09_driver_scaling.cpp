/**
 * @file
 * Fig. 9: CPU-side software-stack runtime for SobelFilter as the input
 * grows.  The paper's DBT-based CPU executes the whole driver stack in
 * <10 s at 1536x1536 while Multi2Sim's CPU model needs >150 s.  Here
 * the same guest driver runs on (a) our block-cached SA32 model and
 * (b) the same model with the decode cache disabled — the
 * re-decode-every-instruction scheme of Multi2Sim-class simulators.
 */

#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "workloads/workload.h"

int
main(int argc, char **argv)
{
    using namespace bifsim;
    bench::Options opt = bench::Options::parse(argc, argv);
    setInformEnabled(false);

    bench::banner("Fig. 9 — driver-stack runtime vs input size",
                  "Guest GPU-driver execution (page-table setup, MMIO, "
                  "IRQ) on the block-cached CPU vs a re-decoding CPU.");

    std::vector<uint32_t> sizes =
        opt.full ? std::vector<uint32_t>{256, 512, 768, 1024, 1280, 1536}
                 : std::vector<uint32_t>{128, 256, 384, 512};

    std::printf("%-12s %14s %14s %14s %10s\n", "input", "driver-insts",
                "cached-cpu(s)", "redecode(s)", "ratio");
    for (uint32_t side : sizes) {
        double scale = (static_cast<double>(side) / 1536.0) *
                       (static_cast<double>(side) / 1536.0);
        double t_cached = 0, t_naive = 0;
        uint64_t insts = 0;
        for (int mode = 0; mode < 2; ++mode) {
            auto wl = workloads::makeWorkload("sobelfilter", scale);
            rt::SystemConfig cfg;
            cfg.cpuBlockCache = mode == 0;
            rt::Session session(cfg, rt::Mode::FullSystem);
            workloads::SessionDevice dev(session);
            dev.build(wl->source(), kclc::CompilerOptions());

            // Time only the driver-side work: total run time minus a
            // direct-mode run would also include GPU time; instead
            // report wall time of the full-system run (GPU time is
            // identical in both rows, so the delta is pure CPU
            // simulation speed).
            bench::Timer t;
            workloads::RunResult rr = wl->run(dev);
            if (!rr.ok) {
                std::fprintf(stderr, "sobel %u: %s\n", side,
                             rr.error.c_str());
                return 1;
            }
            if (mode == 0) {
                t_cached = t.seconds();
                insts = session.driverInstructions();
            } else {
                t_naive = t.seconds();
            }
        }
        std::printf("%4ux%-7u %14llu %14.3f %14.3f %9.2fx\n", side,
                    side, static_cast<unsigned long long>(insts),
                    t_cached, t_naive,
                    t_cached > 0 ? t_naive / t_cached : 0.0);
    }
    std::printf("\n(paper: <10 s for the full stack at 1536^2 vs "
                ">150 s for Multi2Sim)\n");
    return 0;
}
