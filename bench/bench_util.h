#ifndef BIFSIM_BENCH_BENCH_UTIL_H
#define BIFSIM_BENCH_BENCH_UTIL_H

/**
 * @file
 * Shared helpers for the figure-reproduction benches.  Every bench
 * accepts `--full` to run at (or near) the paper's input sizes and
 * `--scale S` for explicit control; defaults are sized so the whole
 * bench suite completes in minutes on a laptop-class host.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "common/json.h"

namespace bifsim::bench {

/** Common command-line options. */
struct Options
{
    double scale = 0.02;
    bool full = false;

    static Options
    parse(int argc, char **argv, double default_scale = 0.02)
    {
        Options o;
        o.scale = default_scale;
        for (int i = 1; i < argc; ++i) {
            if (std::strcmp(argv[i], "--full") == 0) {
                o.full = true;
                o.scale = 1.0;
            } else if (std::strcmp(argv[i], "--scale") == 0 &&
                       i + 1 < argc) {
                o.scale = std::atof(argv[++i]);
            }
        }
        return o;
    }
};

/** Wall-clock stopwatch. */
class Timer
{
  public:
    Timer() : start_(Clock::now()) {}

    double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_)
            .count();
    }

    void reset() { start_ = Clock::now(); }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

/** Prints the standard bench banner. */
inline void
banner(const char *figure, const char *description)
{
    std::printf("==== %s ====\n%s\n\n", figure, description);
}

/**
 * The one BENCH_*.json writer (docs/METRICS.md).  Every bench fills
 * its numbers into metrics() and calls write(); the envelope —
 * identity, scale, host shape, gate outcome — is uniform so the
 * simsweep baseline differ (src/metrics/sweep.h) can flatten any
 * bench file with one set of tolerance rules:
 *
 *   {
 *     "bench": "<name>", "schema": 2, "scale": S,
 *     "host": {"hw_threads": N},
 *     "gate": {"enforced": b, "metric": "...", "threshold": t,
 *              "value": v},
 *     "metrics": { ...bench-specific... }
 *   }
 *
 * `gate` reports what the bench's own pass/fail check did (enforced
 * false = self-disarmed, e.g. a thread-scaling gate on a 1-core
 * host); the differ never gates on it, it is provenance.
 */
class Report
{
  public:
    Report(std::string bench, double scale)
        : bench_(std::move(bench)), scale_(scale),
          metrics_(json::Value::object())
    {
    }

    /** The bench-specific metrics object; fill freely. */
    json::Value &metrics() { return metrics_; }

    /** Records the bench's own gate check (call at most once). */
    void
    gate(const char *metric, double threshold, double value,
         bool enforced)
    {
        gate_ = json::Value::object();
        gate_.set("enforced", json::Value(enforced));
        gate_.set("metric", json::Value(metric));
        gate_.set("threshold", json::Value(threshold));
        gate_.set("value", json::Value(value));
    }

    /** Writes BENCH_<bench>.json into the current directory. */
    bool
    write() const
    {
        json::Value doc = json::Value::object();
        doc.set("bench", json::Value(bench_));
        doc.set("schema", json::Value(2));
        doc.set("scale", json::Value(scale_));
        json::Value host = json::Value::object();
        host.set("hw_threads",
                 json::Value(static_cast<uint64_t>(
                     std::thread::hardware_concurrency())));
        doc.set("host", std::move(host));
        if (!gate_.isNull())
            doc.set("gate", gate_);
        doc.set("metrics", metrics_);
        std::string path = "BENCH_" + bench_ + ".json";
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (!f)
            return false;
        std::string text = doc.dump();
        std::fputs(text.c_str(), f);
        std::fclose(f);
        std::printf("\nwrote %s\n", path.c_str());
        return true;
    }

  private:
    std::string bench_;
    double scale_;
    json::Value metrics_;
    json::Value gate_;
};

} // namespace bifsim::bench

#endif // BIFSIM_BENCH_BENCH_UTIL_H
