#ifndef BIFSIM_BENCH_BENCH_UTIL_H
#define BIFSIM_BENCH_BENCH_UTIL_H

/**
 * @file
 * Shared helpers for the figure-reproduction benches.  Every bench
 * accepts `--full` to run at (or near) the paper's input sizes and
 * `--scale S` for explicit control; defaults are sized so the whole
 * bench suite completes in minutes on a laptop-class host.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

namespace bifsim::bench {

/** Common command-line options. */
struct Options
{
    double scale = 0.02;
    bool full = false;

    static Options
    parse(int argc, char **argv, double default_scale = 0.02)
    {
        Options o;
        o.scale = default_scale;
        for (int i = 1; i < argc; ++i) {
            if (std::strcmp(argv[i], "--full") == 0) {
                o.full = true;
                o.scale = 1.0;
            } else if (std::strcmp(argv[i], "--scale") == 0 &&
                       i + 1 < argc) {
                o.scale = std::atof(argv[++i]);
            }
        }
        return o;
    }
};

/** Wall-clock stopwatch. */
class Timer
{
  public:
    Timer() : start_(Clock::now()) {}

    double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_)
            .count();
    }

    void reset() { start_ = Clock::now(); }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

/** Prints the standard bench banner. */
inline void
banner(const char *figure, const char *description)
{
    std::printf("==== %s ====\n%s\n\n", figure, description);
}

} // namespace bifsim::bench

#endif // BIFSIM_BENCH_BENCH_UTIL_H
