/**
 * @file
 * Fig. 7: simulation slowdown relative to native execution, for the
 * GPU portion alone and for the entire benchmark (CPU + GPU).
 *
 * Substitution note: the paper's native platform is a HiKey960 (real
 * Mali-G71); here "native" is the host-CPU reference implementation of
 * each kernel, so absolute slowdowns are not comparable — the shape to
 * check is that *full-system* slowdown stays far below *GPU-only*
 * slowdown (paper: 223x vs 4561x on average), because the rest of the
 * application simulates efficiently under the block-cached CPU model.
 */

#include <cmath>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "workloads/workload.h"

int
main(int argc, char **argv)
{
    using namespace bifsim;
    bench::Options opt = bench::Options::parse(argc, argv, 0.02);
    setInformEnabled(false);

    bench::banner("Fig. 7 — simulation slowdown vs native",
                  "GPU-only vs full-benchmark slowdown (paper "
                  "averages: 4561x GPU-only, 223x full system).");

    std::printf("%-18s %12s %12s %12s %12s\n", "benchmark",
                "native(s)", "sim-gpu(s)", "gpu-slowdn", "full-slowdn");

    double geo_gpu = 0, geo_full = 0;
    int count = 0;
    for (const std::string &name : workloads::fig7WorkloadNames()) {
        // Native: repeat until we accumulate measurable time.
        auto wl = workloads::makeWorkload(name, opt.scale);
        bench::Timer tn;
        int reps = 0;
        double sink = 0;
        do {
            sink += wl->runNative();
            reps++;
        } while (tn.seconds() < 0.05);
        double t_native = tn.seconds() / reps;

        // Simulated, GPU only (direct submission, host pokes MMIO).
        double t_gpu;
        {
            auto w2 = workloads::makeWorkload(name, opt.scale);
            rt::Session session;
            workloads::SessionDevice dev(session);
            dev.build(w2->source(), kclc::CompilerOptions());
            bench::Timer t;
            workloads::RunResult rr = w2->run(dev);
            t_gpu = t.seconds();
            if (!rr.ok) {
                std::fprintf(stderr, "%s: %s\n", name.c_str(),
                             rr.error.c_str());
                return 1;
            }
        }

        // Simulated, full system: the guest driver runs on the
        // simulated CPU for every submission.
        double t_full;
        {
            auto w3 = workloads::makeWorkload(name, opt.scale);
            rt::Session session(rt::SystemConfig(),
                                rt::Mode::FullSystem);
            workloads::SessionDevice dev(session);
            dev.build(w3->source(), kclc::CompilerOptions());
            bench::Timer t;
            workloads::RunResult rr = w3->run(dev);
            t_full = t.seconds();
            if (!rr.ok) {
                std::fprintf(stderr, "%s (fs): %s\n", name.c_str(),
                             rr.error.c_str());
                return 1;
            }
        }

        // Native "application" time approximates kernel + data
        // movement; use 2x kernel time as the app envelope (the
        // paper's app includes CL setup and transfers).
        double t_native_app = t_native * 2.0;
        double gpu_slow = t_gpu / t_native;
        double full_slow = t_full / t_native_app;
        geo_gpu += std::log(gpu_slow);
        geo_full += std::log(full_slow);
        count++;
        std::printf("%-18s %12.4f %12.4f %11.0fx %11.0fx\n",
                    name.c_str(), t_native, t_gpu, gpu_slow, full_slow);
        (void)sink;
    }
    std::printf("\ngeomean: gpu-only %.0fx, full-system %.0fx "
                "(full-system should be the smaller)\n",
                std::exp(geo_gpu / count), std::exp(geo_full / count));
    return 0;
}
