/**
 * @file
 * Fig. 11: instruction mix (arithmetic / load-store / empty slots /
 * control flow) per benchmark.  The paper finds ~50% arithmetic on
 * average with load-store and control flow near 10% each, and flags
 * empty issue slots as an optimisation target.
 */

#include "bench_util.h"
#include "common/logging.h"
#include "workloads/workload.h"

int
main(int argc, char **argv)
{
    using namespace bifsim;
    bench::Options opt = bench::Options::parse(argc, argv, 0.01);
    setInformEnabled(false);

    bench::banner("Fig. 11 — instruction mixes",
                  "Share of issue slots per category (thread-"
                  "weighted).");

    std::printf("%-18s %10s %10s %8s %8s\n", "benchmark", "arith",
                "load/store", "nop", "ctrlflow");
    double avg[4] = {0, 0, 0, 0};
    int count = 0;
    for (const std::string &name : workloads::allWorkloadNames()) {
        auto wl = workloads::makeWorkload(name, opt.scale);
        rt::Session session;
        workloads::SessionDevice dev(session);
        dev.build(wl->source(), kclc::CompilerOptions());
        workloads::RunResult rr = wl->run(dev);
        if (!rr.ok) {
            std::fprintf(stderr, "%s: %s\n", name.c_str(),
                         rr.error.c_str());
            return 1;
        }
        gpu::KernelStats ks = session.system().gpu().totalKernelStats();
        double total = static_cast<double>(
            std::max<uint64_t>(ks.totalSlots(), 1));
        double v[4] = {100.0 * ks.arithInstrs / total,
                       100.0 * ks.lsInstrs / total,
                       100.0 * ks.nopSlots / total,
                       100.0 * ks.cfInstrs / total};
        for (int i = 0; i < 4; ++i)
            avg[i] += v[i];
        count++;
        std::printf("%-18s %9.1f%% %9.1f%% %7.1f%% %7.1f%%\n",
                    name.c_str(), v[0], v[1], v[2], v[3]);
    }
    std::printf("%-18s %9.1f%% %9.1f%% %7.1f%% %7.1f%%\n", "average",
                avg[0] / count, avg[1] / count, avg[2] / count,
                avg[3] / count);
    std::printf("\n(paper: ~50%% arithmetic on average; local memory "
                "and control flow ~10%% each)\n");
    return 0;
}
