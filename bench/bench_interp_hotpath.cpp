/**
 * @file
 * Interpreter hot-path A/B benchmark: legacy tuple-walking interpreter
 * (GpuConfig::fastPath = false) versus the flattened micro-op dispatch
 * with the host-pointer TLB (fastPath = true).
 *
 * Reports, per kernel: wall-clock seconds, simulated MIPS (executed
 * shader instructions per host second), TLB hit rate, and nanoseconds
 * per global memory access.  Results are also written to
 * BENCH_interp_hotpath.json in the current directory.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/json.h"
#include "common/logging.h"
#include "runtime/session.h"

namespace {

using namespace bifsim;

// Compute-bound: a long multiply-add dependency chain per thread keeps
// the interpreter in arithmetic clauses with almost no memory traffic.
const char *kMadLoop = R"(
kernel void mad_loop(global float* out, int iters, int n) {
    int i = get_global_id(0);
    if (i < n) {
        float a = i * 0.5f + 1.0f;
        float b = 1.0009f;
        float c = 0.0001f;
        for (int k = 0; k < iters; ++k) {
            a = a * b + c;
            a = a * b - c;
        }
        out[i] = a;
    }
}
)";

// Memory-bound: streaming triad, one store and two loads per thread,
// exercises the translation fast path.
const char *kTriad = R"(
kernel void triad(global const float* a, global const float* b,
                  global float* c, float s, int n) {
    int i = get_global_id(0);
    if (i < n) {
        c[i] = a[i] + s * b[i];
    }
}
)";

struct RunMetrics
{
    double secs = 0;
    double mips = 0;
    double nsPerAccess = 0;
    double tlbHitRate = 0;
    uint64_t instrs = 0;
    uint64_t accesses = 0;
};

struct KernelCase
{
    const char *name;
    const char *source;
    int n;
    int iters;       // mad_loop only
    int launches;
};

RunMetrics
runCase(const KernelCase &kc, bool fast_path)
{
    rt::SystemConfig cfg;
    cfg.gpu.fastPath = fast_path;
    rt::Session s(cfg);

    rt::KernelHandle k = s.compile(kc.source, kc.name);
    size_t bytes = static_cast<size_t>(kc.n) * 4;
    rt::Buffer a = s.alloc(bytes);
    rt::Buffer b = s.alloc(bytes);
    rt::Buffer c = s.alloc(bytes);

    std::vector<float> init(kc.n);
    for (int i = 0; i < kc.n; ++i)
        init[i] = 0.25f * static_cast<float>(i % 97);
    s.write(a, init.data(), bytes);
    s.write(b, init.data(), bytes);

    std::vector<rt::Arg> args;
    if (std::string(kc.name) == "mad_loop")
        args = {rt::Arg::buf(c), rt::Arg::i32(kc.iters),
                rt::Arg::i32(kc.n)};
    else
        args = {rt::Arg::buf(a), rt::Arg::buf(b), rt::Arg::buf(c),
                rt::Arg::f32(1.5f), rt::Arg::i32(kc.n)};

    rt::NDRange global{static_cast<uint32_t>(kc.n), 1, 1};
    rt::NDRange local{64, 1, 1};

    // Warm-up launch: populates the decode cache and faults in pages so
    // the timed region measures steady-state interpretation.
    s.enqueue(k, global, local, args);

    RunMetrics m;
    gpu::KernelStats total;
    gpu::TlbStats tlb;
    bench::Timer t;
    for (int it = 0; it < kc.launches; ++it) {
        gpu::JobResult r = s.enqueue(k, global, local, args);
        if (r.faulted) {
            std::fprintf(stderr, "%s: job faulted\n", kc.name);
            std::exit(1);
        }
        total.merge(r.kernel);
        tlb.merge(r.tlb);
    }
    m.secs = t.seconds();
    m.instrs = total.totalInstrs();
    m.accesses = total.globalLdSt + total.localLdSt;
    m.mips = m.secs > 0 ? m.instrs / m.secs / 1e6 : 0;
    m.nsPerAccess =
        m.accesses ? m.secs * 1e9 / static_cast<double>(m.accesses) : 0;
    m.tlbHitRate = tlb.hitRate();
    return m;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace bifsim;
    bench::Options opt = bench::Options::parse(argc, argv, 0.25);
    setInformEnabled(false);

    bench::banner("Interpreter hot path — micro-op dispatch + host-pointer"
                  " TLB",
                  "A/B of the legacy tuple-walking interpreter vs the "
                  "flattened fast path (same jobs, same stats).");

    int n = static_cast<int>(16384 * opt.scale) & ~63;
    if (n < 256)
        n = 256;
    std::vector<KernelCase> cases = {
        {"mad_loop", kMadLoop, n, 400, 4},
        {"triad", kTriad, n * 4, 0, 12},
    };

    std::printf("%-10s %12s %12s %9s %12s %11s\n", "kernel",
                "legacy MIPS", "fast MIPS", "speedup", "ns/access",
                "TLB hit%");

    bench::Report report("interp_hotpath", opt.scale);
    json::Value kernels = json::Value::array();
    bool ok = true;
    double gate_speedup = 0;
    for (size_t i = 0; i < cases.size(); ++i) {
        const KernelCase &kc = cases[i];
        RunMetrics legacy = runCase(kc, false);
        RunMetrics fast = runCase(kc, true);
        double speedup = legacy.secs > 0 && fast.secs > 0
                             ? legacy.secs / fast.secs
                             : 0;
        std::printf("%-10s %12.1f %12.1f %8.2fx %6.1f->%-5.1f %10.1f%%\n",
                    kc.name, legacy.mips, fast.mips, speedup,
                    legacy.nsPerAccess, fast.nsPerAccess,
                    100.0 * fast.tlbHitRate);
        json::Value k = json::Value::object();
        k.set("name", json::Value(kc.name));
        k.set("instrs", json::Value(fast.instrs));
        json::Value leg = json::Value::object();
        leg.set("secs", json::Value(legacy.secs));
        leg.set("mips", json::Value(legacy.mips));
        leg.set("ns_per_access", json::Value(legacy.nsPerAccess));
        k.set("legacy", std::move(leg));
        json::Value fst = json::Value::object();
        fst.set("secs", json::Value(fast.secs));
        fst.set("mips", json::Value(fast.mips));
        fst.set("ns_per_access", json::Value(fast.nsPerAccess));
        fst.set("tlb_hit_rate", json::Value(fast.tlbHitRate));
        k.set("fast", std::move(fst));
        k.set("speedup", json::Value(speedup));
        kernels.push(std::move(k));
        if (kc.iters > 0) {
            gate_speedup = speedup;
            if (speedup < 2.0)
                ok = false;
        }
    }
    report.metrics().set("kernels", std::move(kernels));
    report.gate("kernels.mad_loop.speedup", 2.0, gate_speedup, true);
    report.write();

    if (!ok) {
        std::fprintf(stderr,
                     "FAIL: compute-kernel speedup below 2x target\n");
        return 1;
    }
    return 0;
}
