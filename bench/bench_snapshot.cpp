/**
 * @file
 * Warm-boot benchmark (DESIGN.md §5e): cold FullSystem bring-up
 * (session construction, guest bring-up, buffer setup and JIT of the
 * kernel library) versus restoring a snapshot image of that same
 * ready-to-submit machine.  Both paths then run the same first job --
 * untimed, purely to prove the machine really is ready -- so the
 * speedup compares boot work, not kernel execution time.  Reports
 * save/load/restore latency and image size, and enforces the >=10x
 * warm-boot speedup target.
 *
 * Writes BENCH_snapshot.json.
 */

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "runtime/session.h"
#include "snapshot/snapshot.h"
#include "workloads/sgemm_variants.h"

using namespace bifsim;

int
main(int argc, char **argv)
{
    bench::Options opt = bench::Options::parse(argc, argv, 1.0);
    bench::banner("snapshot",
                  "warm-boot images: cold boot-to-job-ready vs "
                  "restore-to-job-ready");

    int n = opt.full ? 128 : 32;   // sgemm dimension (multiple of 16).

    rt::SystemConfig cfg;
    cfg.ramBytes = 64u << 20;

    std::vector<float> ha(n * n), hb(n * n);
    for (int i = 0; i < n * n; ++i) {
        ha[i] = static_cast<float>((i % 19) - 9) * 0.25f;
        hb[i] = static_cast<float>((i % 13) - 6) * 0.5f;
    }
    const std::string lib = workloads::sgemmVariantsSource();
    const std::vector<std::string> names = workloads::sgemmVariantNames();

    auto firstJob = [&](rt::Session &s, const rt::KernelHandle &k,
                        const std::vector<rt::Buffer> &bufs) {
        gpu::JobResult r = s.enqueue(
            k, rt::NDRange{static_cast<uint32_t>(n),
                           static_cast<uint32_t>(n), 1},
            rt::NDRange{8, 8, 1},
            {rt::Arg::buf(bufs[0]), rt::Arg::buf(bufs[1]),
             rt::Arg::buf(bufs[2]), rt::Arg::i32(n)});
        if (r.faulted) {
            std::fprintf(stderr, "job faulted: %s\n",
                         r.fault.detail.c_str());
            std::exit(1);
        }
    };

    // ---- Cold boot: construct the machine, bring up the guest,
    // stage the buffers and JIT the whole kernel library.  Timing
    // stops when the machine is ready to accept a job.  Best-of-3:
    // both boot paths are single-digit milliseconds, so one stray
    // host hiccup would swing the speedup ratio the CI differ
    // watches. ----
    bench::Timer t;
    const int kReps = 3;
    std::unique_ptr<rt::Session> cold;
    rt::Buffer a, b, c;
    double cold_s = 1e30;
    for (int rep = 0; rep < kReps; ++rep) {
        t.reset();
        auto s = std::make_unique<rt::Session>(cfg, rt::Mode::FullSystem);
        rt::Buffer ra = s->alloc(n * n * 4);
        rt::Buffer rb = s->alloc(n * n * 4);
        rt::Buffer rc = s->alloc(n * n * 4);
        s->write(ra, ha.data(), ha.size() * 4);
        s->write(rb, hb.data(), hb.size() * 4);
        for (const std::string &name : names) {
            // "1:Naive" -> kernel name "sgemm1" etc.
            s->compile(lib, "sgemm" + name.substr(0, 1));
        }
        cold_s = std::min(cold_s, t.seconds());
        cold = std::move(s);
        a = ra;
        b = rb;
        c = rc;
    }

    // Prove the cold machine is actually job-ready (untimed).
    t.reset();
    firstJob(*cold, cold->kernels()[0], {a, b, c});
    double job_cold_s = t.seconds();

    // ---- Save ----
    t.reset();
    snapshot::Writer w;
    cold->saveSnapshot(w);
    std::vector<uint8_t> bytes = w.finish();
    double save_s = t.seconds();
    size_t image_bytes = bytes.size();

    // ---- Load + validate (full structural + CRC pass) ----
    t.reset();
    snapshot::Image img = snapshot::Image::fromBytes(std::move(bytes));
    double load_s = t.seconds();

    // ---- Warm boot: restore the ready-to-submit machine from the
    // image.  The kernel library, buffer registry and booted guest all
    // come from the image; no JIT, no guest bring-up. ----
    // More reps than the cold side: a restore is ~1/15th the cost of
    // a boot, so a scheduler preemption shadows a larger fraction of
    // any single rep's window.
    std::unique_ptr<rt::Session> warm;
    double warm_s = 1e30;
    for (int rep = 0; rep < 10; ++rep) {
        t.reset();
        warm = rt::Session::fromSnapshot(img, cfg);
        warm_s = std::min(warm_s, t.seconds());
    }

    // Prove the restored machine is job-ready too (untimed).
    t.reset();
    firstJob(*warm, warm->kernels()[0], warm->buffers());
    double job_warm_s = t.seconds();

    double speedup = warm_s > 0 ? cold_s / warm_s : 0;

    std::printf("%-34s %10.2f ms\n", "cold boot to job-ready:",
                cold_s * 1e3);
    std::printf("%-34s %10.2f ms\n", "snapshot save:", save_s * 1e3);
    std::printf("%-34s %10.2f ms\n", "image load+validate:",
                load_s * 1e3);
    std::printf("%-34s %10.2f ms\n", "warm boot to job-ready:",
                warm_s * 1e3);
    std::printf("%-34s %10.2f / %.2f ms\n",
                "first job (cold / warm):", job_cold_s * 1e3,
                job_warm_s * 1e3);
    std::printf("%-34s %10.1f KiB (%zu dirty-page-sparse)\n",
                "image size:", image_bytes / 1024.0, image_bytes);
    std::printf("%-34s %10.1fx (target >= 10x)\n", "warm-boot speedup:",
                speedup);

    bench::Report report("snapshot", opt.scale);
    json::Value &m = report.metrics();
    m.set("sgemm_n", json::Value(n));
    m.set("kernels_in_image",
          json::Value(static_cast<uint64_t>(names.size())));
    m.set("cold_boot_secs", json::Value(cold_s));
    m.set("save_secs", json::Value(save_s));
    m.set("load_validate_secs", json::Value(load_s));
    m.set("warm_boot_secs", json::Value(warm_s));
    m.set("first_job_cold_secs", json::Value(job_cold_s));
    m.set("first_job_warm_secs", json::Value(job_warm_s));
    m.set("image_bytes", json::Value(static_cast<uint64_t>(image_bytes)));
    m.set("ram_bytes", json::Value(static_cast<uint64_t>(cfg.ramBytes)));
    m.set("warm_speedup", json::Value(speedup));
    report.gate("warm_speedup", 10.0, speedup, true);
    report.write();

    if (speedup < 10.0) {
        std::fprintf(stderr,
                     "FAIL: warm-boot speedup below 10x target\n");
        return 1;
    }
    return 0;
}
