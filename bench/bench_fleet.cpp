/**
 * @file
 * Fleet benchmark (DESIGN.md §5j): what serving simulations from one
 * shared CoW warm-boot image buys over booting per tenant.
 *
 * Three measurements:
 *
 *  1. Spawn cost — cold FullSystem bring-up (guest boot, buffer setup,
 *     JIT of the six-kernel SGEMM library) versus a pool spawn from
 *     the shared parsed image, versus a recycle of an already-live
 *     session.  Gate: warm spawn must be >= 5x cheaper than cold boot.
 *  2. Fleet scale — 64 sessions live at once over one image (the
 *     acceptance floor for simulation-as-a-service density).
 *  3. Job latency — p50/p99 of submitSync round trips with concurrent
 *     tenants hammering the scheduler.
 *
 * Writes BENCH_fleet.json.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "fleet/fleet.h"
#include "workloads/sgemm_variants.h"

using namespace bifsim;

int
main(int argc, char **argv)
{
    bench::Options opt = bench::Options::parse(argc, argv, 1.0);
    bench::banner("fleet",
                  "session fleet: cold boot vs CoW warm spawn vs "
                  "recycle, 64-session density, job latency");

    const uint32_t n = opt.full ? 64 : 32;
    const size_t ram_bytes = 32u << 20;
    const unsigned spawn_iters = opt.full ? 8 : 4;

    // ---- The shared warm image, parsed and CRC-checked once ----
    bench::Timer t;
    std::vector<uint8_t> bytes = fleet::buildSgemmWarmImage(n, ram_bytes);
    double build_s = t.seconds();
    size_t image_bytes = bytes.size();
    t.reset();
    auto image = std::make_shared<const snapshot::Image>(
        snapshot::Image::fromBytes(std::move(bytes)));
    double parse_s = t.seconds();

    rt::SystemConfig base;
    base.gpu.hostThreads = 1;
    base.gpu.syncSubmit = true;

    // ---- 1a. Cold boot to job-ready (what every tenant would pay
    // without the fleet: boot the guest, alloc A/B/C, JIT the library)
    // Best-of-N on both sides of the ratio: the spawn path is tens of
    // microseconds, so a single stray page fault or scheduler blip
    // skews a mean badly (and the CI baseline differ rides on the
    // speedup staying in its band).
    const std::string lib = workloads::sgemmVariantsSource();
    size_t variants = workloads::sgemmVariantNames().size();
    double cold_s = 1e30;
    for (unsigned i = 0; i < spawn_iters; ++i) {
        rt::SystemConfig cfg = base;
        cfg.ramBytes = ram_bytes;
        t.reset();
        rt::Session s(cfg, rt::Mode::FullSystem);
        size_t buf_bytes = static_cast<size_t>(n) * n * 4;
        s.alloc(buf_bytes);
        s.alloc(buf_bytes);
        s.alloc(buf_bytes);
        for (size_t k = 1; k <= variants; ++k)
            s.compile(lib, "sgemm" + std::to_string(k));
        cold_s = std::min(cold_s, t.seconds());
    }

    // ---- 1b. Warm spawn from the shared image (the pool's cold path)
    fleet::PoolConfig pcfg;
    pcfg.maxSessions = 64;
    pcfg.base = base;
    fleet::SessionPool pool(image, pcfg);
    double spawn_s = 1e30;
    {
        std::vector<fleet::SessionPool::Lease> held;
        for (unsigned i = 0; i < spawn_iters * 4; ++i) {
            t.reset();
            held.push_back(pool.acquire());
            spawn_s = std::min(spawn_s, t.seconds());
        }
    }
    // ---- 1c. Recycle cost: one release of a dirty session ----
    double recycle_s;
    {
        fleet::SessionPool::Lease lease = pool.acquire();
        lease->write(lease->buffers()[0], lib.data(),
                     std::min(lib.size(), static_cast<size_t>(n) * n * 4));
        t.reset();
        lease = fleet::SessionPool::Lease();   // release -> reset
        recycle_s = t.seconds();
    }
    double speedup = spawn_s > 0 ? cold_s / spawn_s : 0;

    // ---- 2. Density: 64 sessions live at once over one image ----
    size_t max_live = 0;
    {
        std::vector<fleet::SessionPool::Lease> herd;
        for (unsigned i = 0; i < 64; ++i)
            herd.push_back(pool.acquire());
        max_live = pool.stats().live;
    }

    // ---- 3. Job latency under concurrent tenants ----
    const unsigned tenants = 4;
    const unsigned jobs_per_tenant = opt.full ? 16 : 4;
    fleet::FleetConfig fcfg;
    fcfg.pool.maxSessions = tenants;
    fcfg.pool.base = base;
    fcfg.workers = tenants;
    fleet::FleetServer server(image, fcfg);

    fleet::JobRequest req;
    req.kernel = 0;
    req.gx = req.gy = n;
    req.gz = 1;
    req.lx = req.ly = 8;
    req.lz = 1;
    req.args = {{fleet::ArgSpec::Kind::BufIndex, 0},
                {fleet::ArgSpec::Kind::BufIndex, 1},
                {fleet::ArgSpec::Kind::BufIndex, 2},
                {fleet::ArgSpec::Kind::I32, n}};

    std::vector<double> lat_ms(tenants * jobs_per_tenant);
    std::vector<std::thread> clients;
    for (unsigned c = 0; c < tenants; ++c) {
        clients.emplace_back([&, c] {
            fleet::JobRequest mine = req;
            mine.tenant = "bench-" + std::to_string(c);
            for (unsigned j = 0; j < jobs_per_tenant; ++j) {
                bench::Timer jt;
                fleet::JobResultMsg m = server.submitSync(mine);
                lat_ms[c * jobs_per_tenant + j] = jt.seconds() * 1e3;
                if (m.status != fleet::JobStatus::Ok)
                    std::fprintf(stderr, "job failed: %s\n",
                                 m.detail.c_str());
            }
        });
    }
    for (std::thread &th : clients)
        th.join();
    std::sort(lat_ms.begin(), lat_ms.end());
    double p50 = lat_ms[lat_ms.size() / 2];
    double p99 = lat_ms[std::min(lat_ms.size() - 1,
                                 lat_ms.size() * 99 / 100)];
    fleet::FleetStats fs = server.stats();
    fleet::PoolStats ps = pool.stats();

    std::printf("%-34s %10.2f ms (%zu-byte image)\n",
                "image build+seal (once):",
                (build_s + parse_s) * 1e3, image_bytes);
    std::printf("%-34s %10.2f ms\n", "cold boot to job-ready:",
                cold_s * 1e3);
    std::printf("%-34s %10.2f ms\n", "warm spawn from shared image:",
                spawn_s * 1e3);
    std::printf("%-34s %10.2f ms\n", "recycle (dirty session):",
                recycle_s * 1e3);
    std::printf("%-34s %10.1fx (target >= 5x)\n", "warm-spawn speedup:",
                speedup);
    std::printf("%-34s %10zu (CoW %s)\n", "max live sessions:",
                max_live, pool.cowShared() ? "shared" : "off");
    std::printf("%-34s %7.2f / %.2f ms (%zu jobs, %u tenants)\n",
                "job latency p50 / p99:", p50, p99, lat_ms.size(),
                tenants);

    bench::Report report("fleet", opt.scale);
    json::Value &m = report.metrics();
    m.set("sgemm_n", json::Value(static_cast<uint64_t>(n)));
    m.set("image_bytes", json::Value(static_cast<uint64_t>(image_bytes)));
    m.set("ram_bytes", json::Value(static_cast<uint64_t>(ram_bytes)));
    m.set("cow_shared", json::Value(pool.cowShared()));
    m.set("cold_boot_secs", json::Value(cold_s));
    m.set("warm_spawn_secs", json::Value(spawn_s));
    m.set("recycle_secs", json::Value(recycle_s));
    m.set("warm_spawn_speedup", json::Value(speedup));
    m.set("max_live_sessions",
          json::Value(static_cast<uint64_t>(max_live)));
    m.set("jobs_run", json::Value(fs.jobsCompleted));
    m.set("job_p50_ms", json::Value(p50));
    m.set("job_p99_ms", json::Value(p99));
    m.set("pool_spawns", json::Value(ps.spawns));
    m.set("pool_recycles", json::Value(ps.recycles));
    report.gate("warm_spawn_speedup", 5.0, speedup, true);
    report.write();

    if (max_live < 64) {
        std::fprintf(stderr, "FAIL: could not hold 64 live sessions\n");
        return 1;
    }
    if (speedup < 5.0) {
        std::fprintf(stderr,
                     "FAIL: warm-spawn speedup below 5x target\n");
        return 1;
    }
    return 0;
}
