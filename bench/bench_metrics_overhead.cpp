/**
 * @file
 * Always-on metrics overhead (DESIGN.md §5k): what the per-job
 * publish hook costs relative to a job, measured two ways.
 *
 * The GATED number is modeled: the real hook body (build the delta
 * vector, four instrument::appendCounters calls, one seqlock publish)
 * is timed directly over tens of thousands of iterations — a
 * multi-millisecond region with no differencing in it — and divided
 * by the per-job time from the disabled side of the A/B.  Both inputs
 * are solid measurements, so the ratio is stable to well under the 2%
 * budget even on a noisy host.
 *
 * The wall-clock A/B (same kernels, registry disabled vs enabled,
 * alternating reps, ratio of summed times) is RECORDED but not gated:
 * it differences two multi-second numbers, and on a contended host
 * the difference floats in a ±5% band that swamps a sub-0.1% true
 * effect.  It is kept as a cross-check — a hook regression large
 * enough to matter (say 10%) would show up in both columns — along
 * with a contemporaneous null split of the disabled reps estimating
 * the host's noise floor at measurement time.
 *
 * Two cases:
 *
 *  - mad_loop: the bench_interp_hotpath compute kernel, the workload
 *    the <= 2% overhead budget is written against.  This is the gated
 *    series.
 *  - short_jobs: the same kernel shrunk until publish cost is the
 *    largest possible fraction of a job (64 threads, 1 iter, many
 *    launches).  Reported to bound the worst case; not gated, because
 *    a sub-100us job amplifies fixed costs no real workload sees.
 *
 * Writes BENCH_metrics_overhead.json.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "instrument/stats.h"
#include "metrics/metrics.h"
#include "runtime/session.h"

namespace {

using namespace bifsim;

const char *kMadLoop = R"(
kernel void mad_loop(global float* out, int iters, int n) {
    int i = get_global_id(0);
    if (i < n) {
        float a = i * 0.5f + 1.0f;
        float b = 1.0009f;
        float c = 0.0001f;
        for (int k = 0; k < iters; ++k) {
            a = a * b + c;
            a = a * b - c;
        }
        out[i] = a;
    }
}
)";

struct CaseSpec
{
    const char *name;
    int n;
    int iters;
    int launches;
    bool gated;
};

struct Side
{
    double secs = 1e30;   ///< Best-of-reps wall time.
    uint64_t instrs = 0;
    double mips = 0;
};

/** ONE session serves both sides of the A/B, toggling the registry's
 *  kill switch per rep: with separate sessions, allocator and page
 *  layout differences between the two instances dwarf the sub-percent
 *  effect being measured. */
class Runner
{
  public:
    explicit Runner(const CaseSpec &kc) : kc_(kc), session_(config())
    {
        kernel_ = session_.compile(kMadLoop, "mad_loop");
        out_ = session_.alloc(static_cast<size_t>(kc.n) * 4);
        args_ = {rt::Arg::buf(out_), rt::Arg::i32(kc.iters),
                 rt::Arg::i32(kc.n)};
        rep(true, nullptr);   // Warm-up: decode cache, page faults.
    }

    void
    rep(bool metrics_on, Side *best)
    {
        metrics::registry().setEnabled(metrics_on);
        rt::NDRange global{static_cast<uint32_t>(kc_.n), 1, 1};
        rt::NDRange local{64, 1, 1};
        gpu::KernelStats total;
        bench::Timer t;
        for (int it = 0; it < kc_.launches; ++it) {
            gpu::JobResult r = session_.enqueue(kernel_, global, local,
                                                args_);
            if (r.faulted) {
                std::fprintf(stderr, "%s: job faulted\n", kc_.name);
                std::exit(1);
            }
            total.merge(r.kernel);
        }
        double secs = t.seconds();
        metrics::registry().setEnabled(true);
        if (best && secs < best->secs) {
            best->secs = secs;
            best->instrs = total.totalInstrs();
        }
    }

    /** One real job's result, for building a representative delta
     *  batch for the hook microbenchmark. */
    gpu::JobResult
    probe()
    {
        rt::NDRange global{static_cast<uint32_t>(kc_.n), 1, 1};
        rt::NDRange local{64, 1, 1};
        return session_.enqueue(kernel_, global, local, args_);
    }

  private:
    /** Inline submission: the job runs on the caller's thread, so the
     *  timed region has no cross-thread wakeup latency in it — that
     *  jitter is milliseconds on a contended host, far larger than
     *  the effect being measured. */
    static rt::SystemConfig
    config()
    {
        rt::SystemConfig cfg;
        cfg.gpu.syncSubmit = true;
        return cfg;
    }

    CaseSpec kc_;
    rt::Session session_;
    rt::KernelHandle kernel_;
    rt::Buffer out_;
    std::vector<rt::Arg> args_;
};

/**
 * Times the real per-job hook body (GpuDevice::runJob's publish
 * block): construct the delta vector, append kernel + tlb + sched +
 * sys counters, publish into the seqlock shard.  Sched/sys deltas are
 * filled with nonzero values so no counter takes publish()'s
 * skip-zero fast path — a slight overestimate of the average job,
 * which is the right direction for a gate.
 *
 * Returns seconds per hook invocation, best of several multi-thousand
 * iteration blocks (each block is a multi-millisecond timed region).
 */
double
hookCostSecs(const gpu::JobResult &job)
{
    gpu::SchedStats sched;
    sched.slicesRun = 8;
    sched.groupsRun = 32;
    sched.steals = 1;
    sched.stealAttempts = 2;
    sched.shaderL1Hits = 100;
    sched.shaderL2Fills = 10;
    gpu::SystemStats sys;
    sys.pagesAccessed = 4;
    sys.ctrlRegReads = 6;
    sys.ctrlRegWrites = 6;
    sys.irqsAsserted = 1;
    sys.computeJobs = 1;

    // Warm the thread-local name->slot cache once, as any real worker
    // thread's first publish would have.
    {
        std::vector<gpu::NamedCounter> deltas;
        gpu::appendCounters(deltas, job.kernel);
        gpu::appendCounters(deltas, job.tlb);
        gpu::appendCounters(deltas, sched);
        gpu::appendCounters(deltas, sys);
        metrics::registry().publish(deltas);
    }

    constexpr int kIters = 20000;
    constexpr int kBlocks = 5;
    double best = 1e30;
    for (int blk = 0; blk < kBlocks; ++blk) {
        bench::Timer t;
        for (int i = 0; i < kIters; ++i) {
            std::vector<gpu::NamedCounter> deltas;
            gpu::appendCounters(deltas, job.kernel);
            gpu::appendCounters(deltas, job.tlb);
            gpu::appendCounters(deltas, sched);
            gpu::appendCounters(deltas, sys);
            metrics::registry().publish(deltas);
        }
        best = std::min(best, t.seconds());
    }
    return best / kIters;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace bifsim;
    bench::Options opt = bench::Options::parse(argc, argv, 0.25);
    setInformEnabled(false);

    bench::banner("Always-on metrics overhead",
                  "per-job publish hook cost, modeled against job time "
                  "(gated) and cross-checked by a wall-clock A/B.");

    int n = static_cast<int>(16384 * opt.scale) & ~63;
    if (n < 256)
        n = 256;
    std::vector<CaseSpec> cases = {
        {"mad_loop", n, 400, 4, true},
        {"short_jobs", 64, 1, 200, false},
    };

    std::printf("%-12s %12s %12s %11s %11s\n", "case", "off MIPS",
                "on MIPS", "wall A/B", "modeled");

    bench::Report report("metrics_overhead", opt.scale);
    json::Value kernels = json::Value::array();
    double gated_overhead = 0;
    double hook_ns = 0;
    double noise_floor = 0;
    metrics::RegistryStats before = metrics::registry().stats();
    for (const CaseSpec &kc : cases) {
        Runner runner(kc);

        Side off_best, on_best;
        // The recorded wall number is the ratio of summed times over
        // all alternating pairs: each (off, on) pair shares whatever
        // slow drift the host is under, and summing averages per-rep
        // scheduler jitter down by ~sqrt(reps).  The off reps also
        // split even/odd into a contemporaneous null A/B — two
        // identical-configuration halves of the SAME window — whose
        // ratio estimates how much of the measured wall overhead is
        // just the host being noisy right now.
        constexpr int kPairs = 10;
        double off_sum = 0, on_sum = 0;
        double null_a = 0, null_b = 0;
        int null_an = 0, null_bn = 0;
        for (int rep = 0; rep < kPairs; ++rep) {
            Side off_rep, on_rep;
            if (rep & 1) {
                runner.rep(true, &on_rep);
                runner.rep(false, &off_rep);
                null_b += off_rep.secs;
                ++null_bn;
            } else {
                runner.rep(false, &off_rep);
                runner.rep(true, &on_rep);
                null_a += off_rep.secs;
                ++null_an;
            }
            off_sum += off_rep.secs;
            on_sum += on_rep.secs;
            if (off_rep.secs < off_best.secs)
                off_best = off_rep;
            if (on_rep.secs < on_best.secs)
                on_best = on_rep;
        }
        if (kc.gated && null_a > 0 && null_bn > 0)
            noise_floor = std::fabs((null_b / null_bn) /
                                        (null_a / null_an) -
                                    1.0);
        off_best.mips = off_best.secs > 0
                            ? off_best.instrs / off_best.secs / 1e6
                            : 0;
        on_best.mips =
            on_best.secs > 0 ? on_best.instrs / on_best.secs / 1e6 : 0;
        double wall_overhead =
            off_sum > 0 ? on_sum / off_sum - 1.0 : 0;

        // The gated instrument: hook cost per job over job time, both
        // from solid timed regions.  Uses the best-of (not mean) off
        // time in the denominator — the job's true cost with the
        // host's interference stripped, again the conservative
        // direction for an overhead bound.
        double hook_secs = hookCostSecs(runner.probe());
        double per_job = off_best.secs / kc.launches;
        double modeled = per_job > 0 ? hook_secs / per_job : 0;
        if (kc.gated) {
            gated_overhead = modeled;
            hook_ns = hook_secs * 1e9;
        }

        std::printf("%-12s %12.1f %12.1f %10.2f%% %10.4f%%\n", kc.name,
                    off_best.mips, on_best.mips, 100.0 * wall_overhead,
                    100.0 * modeled);
        json::Value k = json::Value::object();
        k.set("name", json::Value(kc.name));
        k.set("instrs", json::Value(off_best.instrs));
        json::Value o = json::Value::object();
        o.set("secs", json::Value(off_best.secs));
        o.set("mips", json::Value(off_best.mips));
        k.set("off", std::move(o));
        json::Value e = json::Value::object();
        e.set("secs", json::Value(on_best.secs));
        e.set("mips", json::Value(on_best.mips));
        k.set("on", std::move(e));
        k.set("wall_overhead", json::Value(wall_overhead));
        k.set("modeled_overhead", json::Value(modeled));
        kernels.push(std::move(k));
    }
    metrics::RegistryStats after = metrics::registry().stats();
    constexpr double kBudget = 0.02;
    report.metrics().set("kernels", std::move(kernels));
    report.metrics().set("publish_hook_ns", json::Value(hook_ns));
    report.metrics().set("publishes",
                         json::Value(after.publishes - before.publishes));
    report.metrics().set("noise_floor_overhead",
                         json::Value(noise_floor));
    report.gate("kernels.mad_loop.modeled_overhead", kBudget,
                gated_overhead, true);
    report.write();

    std::printf("\nmad_loop metrics overhead: %.4f%% modeled "
                "(%.0f ns publish hook; budget <= 2%%; wall A/B noise "
                "floor %.2f%%)\n",
                100.0 * gated_overhead, hook_ns, 100.0 * noise_floor);
    if (gated_overhead > kBudget) {
        std::fprintf(stderr,
                     "FAIL: always-on metrics overhead above the 2%% "
                     "budget\n");
        return 1;
    }
    return 0;
}
