/**
 * @file
 * Ablation of the two decode caches DESIGN.md calls out, using
 * google-benchmark:
 *
 *  - the GPU shader decode cache (paper §III-B3: "the entire shader
 *    program is decoded exactly once") — measured by re-running a
 *    kernel with and without flushing the cache between jobs;
 *  - the CPU basic-block decode cache (the DBT analog) — measured on a
 *    guest busy loop.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "common/logging.h"
#include "cpu/asm/assembler.h"
#include "gpu/gpu.h"
#include "runtime/session.h"

namespace {

using namespace bifsim;

const char *kKernel = R"(
kernel void saxpy(global const float* x, global float* y, int n,
                  float a) {
    int i = get_global_id(0);
    if (i < n) {
        y[i] = a * x[i] + y[i];
    }
}
)";

void
BM_GpuShaderDecodeCache(benchmark::State &state)
{
    bool flush_between_jobs = state.range(0) == 0;
    setInformEnabled(false);
    rt::Session session;
    constexpr int kN = 4096;
    rt::Buffer x = session.alloc(kN * 4);
    rt::Buffer y = session.alloc(kN * 4);
    rt::KernelHandle k = session.compile(kKernel, "saxpy");
    for (auto _ : state) {
        if (flush_between_jobs) {
            session.system().bus().write(
                rt::System::kGpuBase + gpu::kRegGpuCmd, 4, 1);
        }
        gpu::JobResult r = session.enqueue(
            k, rt::NDRange{kN, 1, 1}, rt::NDRange{64, 1, 1},
            {rt::Arg::buf(x), rt::Arg::buf(y), rt::Arg::i32(kN),
             rt::Arg::f32(2.0f)});
        if (r.faulted)
            state.SkipWithError("GPU fault");
    }
    gpu::ShaderCacheStats cs = session.system().gpu().shaderCacheStats();
    state.counters["decodes"] = static_cast<double>(cs.decodes);
    state.counters["hits"] = static_cast<double>(cs.hits);
}
BENCHMARK(BM_GpuShaderDecodeCache)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("cached")
    ->Unit(benchmark::kMillisecond);

void
BM_CpuBlockCache(benchmark::State &state)
{
    bool cached = state.range(0) == 1;
    setInformEnabled(false);

    // A guest busy loop: ~20 instructions per iteration.
    const char *src = R"(
        .org 0x80000000
        li   t0, 0
        li   t1, 100000
loop:
        addi t0, t0, 1
        addi t2, t0, 3
        xor  t3, t2, t0
        and  t4, t3, t2
        or   t5, t4, t0
        sll  t6, t5, 2
        srl  t6, t6, 1
        add  t2, t2, t3
        sub  t3, t3, t4
        bne  t0, t1, loop
        halt
)";
    sa32::Program prog = sa32::assemble(src);

    rt::SystemConfig cfg;
    cfg.cpuBlockCache = cached;
    for (auto _ : state) {
        state.PauseTiming();
        rt::Session session(cfg, rt::Mode::Direct);
        prog.loadInto(session.system().mem());
        session.system().cpu().reset();
        state.ResumeTiming();
        bool halted = session.system().runUntilHalt(5'000'000);
        if (!halted)
            state.SkipWithError("guest did not halt");
    }
}
BENCHMARK(BM_CpuBlockCache)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("cached")
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
