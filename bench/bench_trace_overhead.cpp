/**
 * @file
 * Trace-subsystem overhead A/B: the same kernels with GpuConfig::trace
 * off (the default; every event site is one predictable branch on a
 * null pointer) versus on (per-thread ring-buffer recording).
 *
 * Reports per kernel: MIPS both ways and the relative overhead.  The
 * tracing-on column bounds the recording cost; the disabled path is
 * exercised by bench_interp_hotpath, whose MIPS must stay within 2% of
 * its recorded baseline.  Results go to BENCH_trace_overhead.json.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "runtime/session.h"

namespace {

using namespace bifsim;

const char *kMadLoop = R"(
kernel void mad_loop(global float* out, int iters, int n) {
    int i = get_global_id(0);
    if (i < n) {
        float a = i * 0.5f + 1.0f;
        float b = 1.0009f;
        float c = 0.0001f;
        for (int k = 0; k < iters; ++k) {
            a = a * b + c;
            a = a * b - c;
        }
        out[i] = a;
    }
}
)";

const char *kTriad = R"(
kernel void triad(global const float* a, global const float* b,
                  global float* c, float s, int n) {
    int i = get_global_id(0);
    if (i < n) {
        c[i] = a[i] + s * b[i];
    }
}
)";

struct RunMetrics
{
    double secs = 0;
    double mips = 0;
    uint64_t instrs = 0;
    size_t events = 0;
};

struct KernelCase
{
    const char *name;
    const char *source;
    int n;
    int iters;
    int launches;
};

RunMetrics
runCase(const KernelCase &kc, bool trace)
{
    rt::SystemConfig cfg;
    cfg.gpu.trace = trace;
    rt::Session s(cfg);

    rt::KernelHandle k = s.compile(kc.source, kc.name);
    size_t bytes = static_cast<size_t>(kc.n) * 4;
    rt::Buffer a = s.alloc(bytes);
    rt::Buffer b = s.alloc(bytes);
    rt::Buffer c = s.alloc(bytes);

    std::vector<float> init(kc.n);
    for (int i = 0; i < kc.n; ++i)
        init[i] = 0.25f * static_cast<float>(i % 97);
    s.write(a, init.data(), bytes);
    s.write(b, init.data(), bytes);

    std::vector<rt::Arg> args;
    if (std::string(kc.name) == "mad_loop")
        args = {rt::Arg::buf(c), rt::Arg::i32(kc.iters),
                rt::Arg::i32(kc.n)};
    else
        args = {rt::Arg::buf(a), rt::Arg::buf(b), rt::Arg::buf(c),
                rt::Arg::f32(1.5f), rt::Arg::i32(kc.n)};

    rt::NDRange global{static_cast<uint32_t>(kc.n), 1, 1};
    rt::NDRange local{64, 1, 1};

    s.enqueue(k, global, local, args);   // Warm-up.

    RunMetrics m;
    gpu::KernelStats total;
    bench::Timer t;
    for (int it = 0; it < kc.launches; ++it) {
        gpu::JobResult r = s.enqueue(k, global, local, args);
        if (r.faulted) {
            std::fprintf(stderr, "%s: job faulted\n", kc.name);
            std::exit(1);
        }
        total.merge(r.kernel);
    }
    m.secs = t.seconds();
    m.instrs = total.totalInstrs();
    m.mips = m.secs > 0 ? m.instrs / m.secs / 1e6 : 0;
    m.events = s.tracer().eventCount();
    return m;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace bifsim;
    bench::Options opt = bench::Options::parse(argc, argv, 0.25);
    setInformEnabled(false);

    bench::banner("Trace subsystem overhead",
                  "A/B of GpuConfig::trace off (null-pointer branch per "
                  "event site) vs on (ring-buffer recording).");

    int n = static_cast<int>(16384 * opt.scale) & ~63;
    if (n < 256)
        n = 256;
    std::vector<KernelCase> cases = {
        {"mad_loop", kMadLoop, n, 400, 4},
        {"triad", kTriad, n * 4, 0, 12},
    };

    std::printf("%-10s %12s %12s %10s %10s\n", "kernel", "off MIPS",
                "on MIPS", "overhead", "events");

    std::string json = "{\n  \"bench\": \"trace_overhead\",\n"
                       "  \"scale\": " + std::to_string(opt.scale) +
                       ",\n  \"kernels\": [\n";
    for (size_t i = 0; i < cases.size(); ++i) {
        const KernelCase &kc = cases[i];
        RunMetrics off = runCase(kc, false);
        RunMetrics on = runCase(kc, true);
        double overhead = off.secs > 0 ? on.secs / off.secs - 1.0 : 0;
        std::printf("%-10s %12.1f %12.1f %9.1f%% %10zu\n", kc.name,
                    off.mips, on.mips, 100.0 * overhead, on.events);
        char buf[384];
        std::snprintf(
            buf, sizeof buf,
            "    {\"name\": \"%s\", \"instrs\": %llu,\n"
            "     \"off\": {\"secs\": %.4f, \"mips\": %.1f},\n"
            "     \"on\": {\"secs\": %.4f, \"mips\": %.1f, "
            "\"events\": %zu},\n"
            "     \"overhead\": %.4f}%s\n",
            kc.name, static_cast<unsigned long long>(off.instrs),
            off.secs, off.mips, on.secs, on.mips, on.events, overhead,
            i + 1 < cases.size() ? "," : "");
        json += buf;
    }
    json += "  ]\n}\n";

    std::FILE *f = std::fopen("BENCH_trace_overhead.json", "w");
    if (f) {
        std::fputs(json.c_str(), f);
        std::fclose(f);
        std::printf("\nwrote BENCH_trace_overhead.json\n");
    }
    return 0;
}
