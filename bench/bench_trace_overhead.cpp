/**
 * @file
 * Trace-subsystem overhead A/B: the same kernels with GpuConfig::trace
 * off (the default; every event site is one predictable branch on a
 * null pointer) versus on (per-thread ring-buffer recording).
 *
 * Reports per kernel: MIPS both ways and the relative overhead.  The
 * tracing-on column bounds the recording cost; the disabled path is
 * exercised by bench_interp_hotpath, whose MIPS must stay within 2% of
 * its recorded baseline.  Results go to BENCH_trace_overhead.json.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "runtime/session.h"

namespace {

using namespace bifsim;

const char *kMadLoop = R"(
kernel void mad_loop(global float* out, int iters, int n) {
    int i = get_global_id(0);
    if (i < n) {
        float a = i * 0.5f + 1.0f;
        float b = 1.0009f;
        float c = 0.0001f;
        for (int k = 0; k < iters; ++k) {
            a = a * b + c;
            a = a * b - c;
        }
        out[i] = a;
    }
}
)";

const char *kTriad = R"(
kernel void triad(global const float* a, global const float* b,
                  global float* c, float s, int n) {
    int i = get_global_id(0);
    if (i < n) {
        c[i] = a[i] + s * b[i];
    }
}
)";

struct RunMetrics
{
    double secs = 0;
    double mips = 0;
    uint64_t instrs = 0;
    size_t events = 0;
};

struct KernelCase
{
    const char *name;
    const char *source;
    int n;
    int iters;
    int launches;
};

RunMetrics
runCase(const KernelCase &kc, bool trace)
{
    rt::SystemConfig cfg;
    cfg.gpu.trace = trace;
    rt::Session s(cfg);

    rt::KernelHandle k = s.compile(kc.source, kc.name);
    size_t bytes = static_cast<size_t>(kc.n) * 4;
    rt::Buffer a = s.alloc(bytes);
    rt::Buffer b = s.alloc(bytes);
    rt::Buffer c = s.alloc(bytes);

    std::vector<float> init(kc.n);
    for (int i = 0; i < kc.n; ++i)
        init[i] = 0.25f * static_cast<float>(i % 97);
    s.write(a, init.data(), bytes);
    s.write(b, init.data(), bytes);

    std::vector<rt::Arg> args;
    if (std::string(kc.name) == "mad_loop")
        args = {rt::Arg::buf(c), rt::Arg::i32(kc.iters),
                rt::Arg::i32(kc.n)};
    else
        args = {rt::Arg::buf(a), rt::Arg::buf(b), rt::Arg::buf(c),
                rt::Arg::f32(1.5f), rt::Arg::i32(kc.n)};

    rt::NDRange global{static_cast<uint32_t>(kc.n), 1, 1};
    rt::NDRange local{64, 1, 1};

    s.enqueue(k, global, local, args);   // Warm-up.

    RunMetrics m;
    gpu::KernelStats total;
    bench::Timer t;
    for (int it = 0; it < kc.launches; ++it) {
        gpu::JobResult r = s.enqueue(k, global, local, args);
        if (r.faulted) {
            std::fprintf(stderr, "%s: job faulted\n", kc.name);
            std::exit(1);
        }
        total.merge(r.kernel);
    }
    m.secs = t.seconds();
    m.instrs = total.totalInstrs();
    m.mips = m.secs > 0 ? m.instrs / m.secs / 1e6 : 0;
    m.events = s.tracer().eventCount();
    return m;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace bifsim;
    bench::Options opt = bench::Options::parse(argc, argv, 0.25);
    setInformEnabled(false);

    bench::banner("Trace subsystem overhead",
                  "A/B of GpuConfig::trace off (null-pointer branch per "
                  "event site) vs on (ring-buffer recording).");

    int n = static_cast<int>(16384 * opt.scale) & ~63;
    if (n < 256)
        n = 256;
    std::vector<KernelCase> cases = {
        {"mad_loop", kMadLoop, n, 400, 4},
        {"triad", kTriad, n * 4, 0, 12},
    };

    std::printf("%-10s %12s %12s %10s %10s\n", "kernel", "off MIPS",
                "on MIPS", "overhead", "events");

    bench::Report report("trace_overhead", opt.scale);
    json::Value kernels = json::Value::array();
    for (size_t i = 0; i < cases.size(); ++i) {
        const KernelCase &kc = cases[i];
        // Interleaved best-of-3 per side: the kernels run low
        // single-digit milliseconds, so one host blip would swing the
        // overhead ratio the CI baseline differ watches.
        RunMetrics off, on;
        off.secs = on.secs = 1e30;
        for (int rep = 0; rep < 3; ++rep) {
            RunMetrics o = runCase(kc, false);
            if (o.secs < off.secs)
                off = o;
            RunMetrics e = runCase(kc, true);
            if (e.secs < on.secs)
                on = e;
        }
        double overhead = off.secs > 0 ? on.secs / off.secs - 1.0 : 0;
        std::printf("%-10s %12.1f %12.1f %9.1f%% %10zu\n", kc.name,
                    off.mips, on.mips, 100.0 * overhead, on.events);
        json::Value k = json::Value::object();
        k.set("name", json::Value(kc.name));
        k.set("instrs", json::Value(off.instrs));
        json::Value o = json::Value::object();
        o.set("secs", json::Value(off.secs));
        o.set("mips", json::Value(off.mips));
        k.set("off", std::move(o));
        json::Value onv = json::Value::object();
        onv.set("secs", json::Value(on.secs));
        onv.set("mips", json::Value(on.mips));
        onv.set("events", json::Value(static_cast<uint64_t>(on.events)));
        k.set("on", std::move(onv));
        k.set("overhead", json::Value(overhead));
        kernels.push(std::move(k));
    }
    report.metrics().set("kernels", std::move(kernels));
    report.write();
    return 0;
}
