/**
 * @file
 * Fig. 13: clause-size distribution (1-8 tuples) per benchmark —
 * the paper's lens on how well the Bifrost clause model is filled by
 * compute kernels (long clauses amortise the global register file;
 * short clauses indicate control-flow- or memory-limited code).
 */

#include "bench_util.h"
#include "common/logging.h"
#include "workloads/workload.h"

int
main(int argc, char **argv)
{
    using namespace bifsim;
    bench::Options opt = bench::Options::parse(argc, argv, 0.01);
    setInformEnabled(false);

    bench::banner("Fig. 13 — clause-size distributions",
                  "Thread-weighted share of executed clauses by size "
                  "in tuples (1..8), plus the mean.");

    std::printf("%-18s", "benchmark");
    for (int s = 1; s <= 8; ++s)
        std::printf(" %5d", s);
    std::printf("   mean\n");

    for (const std::string &name : workloads::allWorkloadNames()) {
        auto wl = workloads::makeWorkload(name, opt.scale);
        rt::Session session;
        workloads::SessionDevice dev(session);
        dev.build(wl->source(), kclc::CompilerOptions());
        workloads::RunResult rr = wl->run(dev);
        if (!rr.ok) {
            std::fprintf(stderr, "%s: %s\n", name.c_str(),
                         rr.error.c_str());
            return 1;
        }
        gpu::KernelStats ks = session.system().gpu().totalKernelStats();
        std::printf("%-18s", name.c_str());
        for (size_t s = 1; s <= 8; ++s)
            std::printf(" %4.0f%%", 100.0 * ks.clauseSizes.fraction(s));
        std::printf(" %6.2f\n", ks.avgClauseSize());
    }
    std::printf("\n(paper: several kernels peak at size 1-2 with an "
                "occasional 8; others mid-sized or bimodal)\n");
    return 0;
}
