/**
 * @file
 * Fig. 15: six desktop-optimised SGEMM variants on the mobile GPU —
 * simulated statistics normalised to variant 6 (the slowest on Mali in
 * the paper) plus mobile and desktop runtime proxies.  The paper's
 * claims to reproduce: (a) Mali and NVIDIA speedups are uncorrelated,
 * (b) the Mali optimum is the variant that nearly eliminates main
 * memory (4), (c) register blocking (6) does not help the mobile GPU.
 */

#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "workloads/cost_model.h"
#include "workloads/sgemm_variants.h"

int
main(int argc, char **argv)
{
    using namespace bifsim;
    bench::Options opt = bench::Options::parse(argc, argv);
    setInformEnabled(false);

    bench::banner("Fig. 15 — SGEMM variants (desktop optimisations on "
                  "a mobile GPU)",
                  "Statistics normalised to variant 6; runtime proxies "
                  "from the mobile/desktop cost models.");

    uint32_t n = opt.full ? 256 : 96;
    if (n % 32)
        n += 32 - n % 32;
    rt::Session session;
    std::vector<workloads::SgemmVariantResult> res =
        workloads::runSgemmVariants(session, n);

    const workloads::SgemmVariantResult &base = res[5];   // variant 6
    auto rel = [&](uint64_t v, uint64_t b) {
        return b ? static_cast<double>(v) / static_cast<double>(b)
                 : 0.0;
    };

    std::printf("%-20s %6s %8s %8s %8s %8s %8s %8s %8s\n", "variant",
                "ok", "arith", "cf", "globLS", "locLS", "nop",
                "clauses", "regs");
    for (const workloads::SgemmVariantResult &r : res) {
        if (!r.ok) {
            std::printf("%-20s FAIL   (%s)\n", r.name.c_str(),
                        r.error.c_str());
            continue;
        }
        std::printf("%-20s %6s %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f "
                    "%8.2f\n",
                    r.name.c_str(), "yes",
                    rel(r.stats.arithInstrs, base.stats.arithInstrs),
                    rel(r.stats.cfInstrs, base.stats.cfInstrs),
                    rel(r.stats.globalLdSt, base.stats.globalLdSt),
                    rel(r.stats.localLdSt,
                        std::max<uint64_t>(base.stats.localLdSt, 1)),
                    rel(r.stats.nopSlots, base.stats.nopSlots),
                    rel(r.stats.clausesExecuted,
                        base.stats.clausesExecuted),
                    static_cast<double>(r.regCount) /
                        static_cast<double>(base.regCount));
    }

    workloads::CostModel mali = workloads::maliCostModel();
    workloads::CostModel desk = workloads::desktopCostModel();
    double mali6 = workloads::evalCost(base.stats, mali);
    double desk6 = workloads::evalCost(base.stats, desk);
    std::printf("\n%-20s %14s %16s\n", "variant",
                "Mali runtime", "Desktop runtime");
    int best_mali = 0, best_desk = 0;
    std::vector<double> mali_cost, desk_cost;
    for (size_t i = 0; i < res.size(); ++i) {
        double cm = workloads::evalCost(res[i].stats, mali) / mali6;
        double cd = workloads::evalCost(res[i].stats, desk) / desk6;
        mali_cost.push_back(cm);
        desk_cost.push_back(cd);
        if (cm < mali_cost[best_mali])
            best_mali = static_cast<int>(i);
        if (cd < desk_cost[best_desk])
            best_desk = static_cast<int>(i);
        std::printf("%-20s %14.3f %16.3f\n", res[i].name.c_str(), cm,
                    cd);
    }
    std::printf("\nbest on mobile: %s, best on desktop: %s%s\n",
                res[best_mali].name.c_str(),
                res[best_desk].name.c_str(),
                best_mali != best_desk
                    ? "  (optimisations do not transfer)"
                    : "");
    std::printf("(paper: variant 4 is the Mali optimum at 0.04x of "
                "variant 6; NVIDIA prefers 6)\n");
    return 0;
}
