/**
 * @file
 * Fig. 12: data-access breakdown across the architecturally visible
 * memory hierarchy: clause temporaries, GRF reads/writes, constant
 * reads, embedded ROM, and main memory.  The paper highlights that
 * main memory stays under 10% for all workloads except backprop, and
 * that fast accesses (temporaries/constants/ROM) dominate.
 */

#include "bench_util.h"
#include "common/logging.h"
#include "workloads/workload.h"

int
main(int argc, char **argv)
{
    using namespace bifsim;
    bench::Options opt = bench::Options::parse(argc, argv, 0.01);
    setInformEnabled(false);

    bench::banner("Fig. 12 — data-access breakdowns",
                  "Share of data accesses per hierarchy level.");

    std::printf("%-18s %7s %7s %7s %7s %6s %8s\n", "benchmark", "temp",
                "grf-rd", "grf-wr", "const", "rom", "mainmem");
    for (const std::string &name : workloads::allWorkloadNames()) {
        auto wl = workloads::makeWorkload(name, opt.scale);
        rt::Session session;
        workloads::SessionDevice dev(session);
        dev.build(wl->source(), kclc::CompilerOptions());
        workloads::RunResult rr = wl->run(dev);
        if (!rr.ok) {
            std::fprintf(stderr, "%s: %s\n", name.c_str(),
                         rr.error.c_str());
            return 1;
        }
        gpu::KernelStats ks = session.system().gpu().totalKernelStats();
        double total = static_cast<double>(
            ks.tempAccesses + ks.grfReads + ks.grfWrites +
            ks.constReads + ks.romReads + ks.globalLdSt);
        if (total == 0)
            total = 1;
        std::printf("%-18s %6.1f%% %6.1f%% %6.1f%% %6.1f%% %5.1f%% "
                    "%7.1f%%\n",
                    name.c_str(), 100.0 * ks.tempAccesses / total,
                    100.0 * ks.grfReads / total,
                    100.0 * ks.grfWrites / total,
                    100.0 * ks.constReads / total,
                    100.0 * ks.romReads / total,
                    100.0 * ks.globalLdSt / total);
    }
    std::printf("\n(paper: main memory <10%% of accesses everywhere "
                "except backprop; GRF reads exceed writes)\n");
    return 0;
}
