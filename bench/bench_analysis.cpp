/**
 * @file
 * Throughput of the static shader analyzer (src/analysis/), using
 * google-benchmark.  The analyzer sits on the GPU's shader decode path
 * (GpuConfig::verify) and in kclc's output gate, so its cost per
 * module bounds how much decode-time verification adds to a job's
 * cold-start latency — compare against the decode span in
 * bench ablation_caches.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "analysis/analysis.h"
#include "common/logging.h"
#include "kclc/compiler.h"
#include "workloads/workload.h"

namespace {

using namespace bifsim;

/** All workload kernels compiled at the given optimisation level. */
std::vector<bif::Module>
workloadModules(int level)
{
    std::vector<bif::Module> mods;
    kclc::CompilerOptions opts = kclc::CompilerOptions::forLevel(level);
    for (const std::string &name : workloads::allWorkloadNames()) {
        std::unique_ptr<workloads::Workload> w =
            workloads::makeWorkload(name);
        for (kclc::CompiledKernel &k :
             kclc::compileAll(w->source(), opts))
            mods.push_back(std::move(k.mod));
    }
    return mods;
}

void
BM_AnalyzeWorkloadKernels(benchmark::State &state)
{
    setInformEnabled(false);
    std::vector<bif::Module> mods =
        workloadModules(static_cast<int>(state.range(0)));
    size_t clauses = 0;
    for (const bif::Module &m : mods)
        clauses += m.clauses.size();

    size_t diags = 0;
    for (auto _ : state) {
        for (const bif::Module &m : mods) {
            analysis::Result r = analysis::analyze(m);
            diags += r.diags.size();
            benchmark::DoNotOptimize(r);
        }
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(clauses));
    state.counters["kernels"] = static_cast<double>(mods.size());
    state.counters["diags_per_pass"] = static_cast<double>(
        state.iterations() ? diags / state.iterations() : 0);
}
BENCHMARK(BM_AnalyzeWorkloadKernels)
    ->Arg(0)
    ->Arg(3)
    ->Unit(benchmark::kMicrosecond);

void
BM_ClauseCfgBuild(benchmark::State &state)
{
    setInformEnabled(false);
    std::vector<bif::Module> mods = workloadModules(3);
    for (auto _ : state) {
        for (const bif::Module &m : mods) {
            analysis::ClauseCfg cfg = analysis::ClauseCfg::build(m);
            benchmark::DoNotOptimize(cfg);
        }
    }
}
BENCHMARK(BM_ClauseCfgBuild)->Unit(benchmark::kMicrosecond);

} // namespace

BENCHMARK_MAIN();
