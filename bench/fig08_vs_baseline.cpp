/**
 * @file
 * Fig. 8: our simulator's speed relative to the Multi2Sim-style
 * functional baseline (m2ssim = 1.0), with and without
 * instrumentation.  The paper reports mostly comparable performance
 * (0.1x-8.8x) and an instrumentation overhead under 5%.
 */

#include <cmath>
#include <vector>

#include "baseline/m2ssim.h"
#include "bench_util.h"
#include "common/logging.h"
#include "workloads/workload.h"

int
main(int argc, char **argv)
{
    using namespace bifsim;
    bench::Options opt = bench::Options::parse(argc, argv, 0.02);
    setInformEnabled(false);

    bench::banner("Fig. 8 — speed relative to Multi2Sim-style baseline",
                  "Speedup over m2ssim functional simulation (=1.0), "
                  "with and without instrumentation.");

    std::printf("%-18s %10s %10s %10s %12s %10s\n", "benchmark",
                "m2s(s)", "ours(s)", "speedup", "w/ instr(s)",
                "speedup");

    double geo_noinstr = 0, geo_instr = 0;
    int count = 0;
    for (const std::string &name : workloads::fig8WorkloadNames()) {
        // Baseline.
        double t_m2s;
        {
            auto wl = workloads::makeWorkload(name, opt.scale);
            baseline::M2sSim sim(256u << 20);
            workloads::M2sDevice dev(sim);
            dev.build(wl->source(), kclc::CompilerOptions());
            bench::Timer t;
            workloads::RunResult rr = wl->run(dev);
            t_m2s = t.seconds();
            if (!rr.ok) {
                std::fprintf(stderr, "%s (m2s): %s\n", name.c_str(),
                             rr.error.c_str());
                return 1;
            }
        }
        // Ours without instrumentation.
        double t_off;
        {
            auto wl = workloads::makeWorkload(name, opt.scale);
            rt::SystemConfig cfg;
            cfg.gpu.instrument = false;
            rt::Session session(cfg);
            workloads::SessionDevice dev(session);
            dev.build(wl->source(), kclc::CompilerOptions());
            bench::Timer t;
            workloads::RunResult rr = wl->run(dev);
            t_off = t.seconds();
            if (!rr.ok) {
                std::fprintf(stderr, "%s: %s\n", name.c_str(),
                             rr.error.c_str());
                return 1;
            }
        }
        // Ours with full instrumentation.
        double t_on;
        {
            auto wl = workloads::makeWorkload(name, opt.scale);
            rt::Session session;
            workloads::SessionDevice dev(session);
            dev.build(wl->source(), kclc::CompilerOptions());
            bench::Timer t;
            workloads::RunResult rr = wl->run(dev);
            t_on = t.seconds();
            if (!rr.ok) {
                std::fprintf(stderr, "%s: %s\n", name.c_str(),
                             rr.error.c_str());
                return 1;
            }
        }
        geo_noinstr += std::log(t_m2s / t_off);
        geo_instr += std::log(t_m2s / t_on);
        count++;
        std::printf("%-18s %10.3f %10.3f %9.2fx %12.3f %9.2fx\n",
                    name.c_str(), t_m2s, t_off, t_m2s / t_off, t_on,
                    t_m2s / t_on);
    }
    std::printf("\ngeomean speedup: %.2fx without instrumentation, "
                "%.2fx with (overhead %.1f%%)\n",
                std::exp(geo_noinstr / count),
                std::exp(geo_instr / count),
                100.0 * (std::exp(geo_noinstr / count) /
                             std::exp(geo_instr / count) -
                         1.0));
    return 0;
}
