/**
 * @file
 * Fig. 1: MatrixMul compiled with different toolchain versions emits
 * substantially different code.  The paper compiles with Arm's OpenCL
 * compiler v5.6/5.7/6.0/6.1/6.2 and reports arithmetic cycles &
 * instructions, load-store cycles & instructions, and registers, all
 * relative to v5.6; here the kclc presets play the compiler versions.
 */

#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "runtime/session.h"
#include "workloads/matmul.h"

int
main(int argc, char **argv)
{
    using namespace bifsim;
    bench::Options opt = bench::Options::parse(argc, argv, 0.05);
    setInformEnabled(false);

    bench::banner("Fig. 1 — MatrixMul across compiler versions",
                  "Relative counts (v5.6 = 1.00); paper observed e.g. "
                  "a 47% arithmetic-cycle swing between 6.0 and 6.1.");

    uint32_t n = opt.full ? 256 : 64;

    struct Row
    {
        std::string version;
        double arithCycles, arithInstrs, lsCycles, lsInstrs, regs;
        bool ok;
    };
    std::vector<Row> rows;

    for (const char *version : {"5.6", "5.7", "6.0", "6.1", "6.2"}) {
        rt::Session session;
        rt::KernelHandle k = session.compile(
            workloads::kMatrixMulSource, "matrixmul",
            kclc::CompilerOptions::forVersion(version));

        std::vector<float> a(static_cast<size_t>(n) * n, 1.5f);
        std::vector<float> b(a.size(), 0.5f);
        rt::Buffer da = session.alloc(a.size() * 4);
        rt::Buffer db = session.alloc(a.size() * 4);
        rt::Buffer dc = session.alloc(a.size() * 4);
        session.write(da, a.data(), a.size() * 4);
        session.write(db, b.data(), b.size() * 4);
        gpu::JobResult r = session.enqueue(
            k, rt::NDRange{n, n, 1}, rt::NDRange{16, 16, 1},
            {rt::Arg::buf(da), rt::Arg::buf(db), rt::Arg::buf(dc),
             rt::Arg::i32(static_cast<int32_t>(n))});

        Row row;
        row.version = version;
        row.ok = !r.faulted;
        const gpu::KernelStats &ks = r.kernel;
        // "Cycles" on Bifrost are issue cycles: one per executed tuple
        // (arith pipes) and one per LS-unit message.
        row.arithCycles =
            static_cast<double>(ks.totalSlots()) / 2.0;
        row.arithInstrs = static_cast<double>(ks.arithInstrs);
        row.lsCycles = static_cast<double>(ks.globalLdSt +
                                           ks.localLdSt);
        row.lsInstrs = static_cast<double>(ks.lsInstrs);
        row.regs = static_cast<double>(k.info.regCount);
        rows.push_back(row);

        // Verify output: C = A*B with constant inputs.
        std::vector<float> c(a.size());
        session.read(dc, c.data(), c.size() * 4);
        float want = 1.5f * 0.5f * static_cast<float>(n);
        for (float v : c) {
            if (v != want) {
                std::fprintf(stderr, "version %s: wrong result\n",
                             version);
                return 1;
            }
        }
    }

    const Row &base = rows[0];
    std::printf("%-8s %12s %12s %10s %10s %10s\n", "version",
                "ArithCycles", "ArithInstr", "LSCycles", "LSInstr",
                "Registers");
    for (const Row &r : rows) {
        std::printf("%-8s %12.2f %12.2f %10.2f %10.2f %10.2f\n",
                    r.version.c_str(), r.arithCycles / base.arithCycles,
                    r.arithInstrs / base.arithInstrs,
                    r.lsCycles / base.lsCycles,
                    r.lsInstrs / base.lsInstrs, r.regs / base.regs);
    }
    std::printf("\n(paper, Fig. 1, relative to 5.6: 6.1/6.2 reach "
                "0.69 arith cycles, 0.57 LS cycles)\n");
    return 0;
}
