#ifndef BIFSIM_CPU_SA32_H
#define BIFSIM_CPU_SA32_H

/**
 * @file
 * The SA32 guest instruction set.
 *
 * SA32 is the open 32-bit RISC ISA this project substitutes for the
 * paper's Arm guest.  It is defined by the instruction table in
 * decoder.cc, in the spirit of the high-level architecture descriptions
 * the paper's retargetable framework consumes: one table row per
 * instruction (mnemonic, opcode, format, semantic tag), from which the
 * decoder, disassembler and assembler are all driven.
 *
 * Encoding (32-bit words, little-endian):
 *
 *   [31:26] opcode
 *   R-type : rd[25:21] rs1[20:16] rs2[15:11] funct[10:0]
 *   I-type : rd[25:21] rs1[20:16] imm16[15:0]
 *   S-type : rs2[25:21] rs1[20:16] imm16[15:0]          (stores)
 *   B-type : rs1[25:21] rs2[20:16] imm16[15:0]          (branches)
 *   J-type : rd[25:21] imm21[20:0]                      (jal)
 *
 * Branch/JAL immediates are signed word offsets relative to the
 * instruction's own PC.  x0 is hardwired to zero.
 */

#include <cstdint>
#include <string>

#include "mem/device.h"

namespace bifsim {
class Bus;
}

namespace bifsim::sa32 {

/** Number of architectural integer registers. */
constexpr unsigned kNumRegs = 32;

/** Semantic operation, the decoded form dispatched by the executor. */
enum class Op : uint8_t
{
    Add, Sub, And, Or, Xor, Sll, Srl, Sra, Slt, Sltu,
    Mul, Mulh, Mulhu, Div, Divu, Rem, Remu,
    AddI, AndI, OrI, XorI, SltI, SltuI, SllI, SrlI, SraI,
    Lui, Auipc,
    Lb, Lbu, Lh, Lhu, Lw,
    Sb, Sh, Sw,
    Beq, Bne, Blt, Bge, Bltu, Bgeu,
    Jal, Jalr,
    ECall, EBreak, MRet, Wfi, Fence, SFence, Halt,
    CsrRw, CsrRs, CsrRc,
    Illegal,
};

/** Major opcode values (bits [31:26] of the instruction word). */
enum Opcode : uint32_t
{
    kOpAluR  = 0x00,
    kOpAddI  = 0x01, kOpAndI = 0x02, kOpOrI  = 0x03, kOpXorI = 0x04,
    kOpSltI  = 0x05, kOpSltuI = 0x06, kOpSllI = 0x07, kOpSrlI = 0x08,
    kOpSraI  = 0x09, kOpLui  = 0x0A, kOpAuipc = 0x0B,
    kOpLb    = 0x10, kOpLbu  = 0x11, kOpLh   = 0x12, kOpLhu  = 0x13,
    kOpLw    = 0x14,
    kOpSb    = 0x18, kOpSh   = 0x19, kOpSw   = 0x1A,
    kOpBeq   = 0x20, kOpBne  = 0x21, kOpBlt  = 0x22, kOpBge  = 0x23,
    kOpBltu  = 0x24, kOpBgeu = 0x25,
    kOpJal   = 0x28, kOpJalr = 0x29,
    kOpSys   = 0x30,
    kOpCsrRw = 0x34, kOpCsrRs = 0x35, kOpCsrRc = 0x36,
};

/** R-type funct values. */
enum AluFunct : uint32_t
{
    kFnAdd = 0, kFnSub = 1, kFnAnd = 2, kFnOr = 3, kFnXor = 4,
    kFnSll = 5, kFnSrl = 6, kFnSra = 7, kFnSlt = 8, kFnSltu = 9,
    kFnMul = 10, kFnMulh = 11, kFnMulhu = 12, kFnDiv = 13,
    kFnDivu = 14, kFnRem = 15, kFnRemu = 16,
};

/** SYS-opcode immediate selectors. */
enum SysFunct : uint32_t
{
    kSysECall = 0, kSysEBreak = 1, kSysMRet = 2, kSysWfi = 3,
    kSysFence = 4, kSysSFence = 5, kSysHalt = 6,
};

/** Control and status register numbers. */
enum Csr : uint32_t
{
    kCsrSatp     = 0x180,
    kCsrMStatus  = 0x300,
    kCsrMIe      = 0x304,
    kCsrMTvec    = 0x305,
    kCsrMScratch = 0x340,
    kCsrMEpc     = 0x341,
    kCsrMCause   = 0x342,
    kCsrMTval    = 0x343,
    kCsrMIp      = 0x344,
    kCsrMCycle   = 0xB00,
    kCsrMInstRet = 0xB02,
    kCsrMHartId  = 0xF14,
};

/** mstatus bit positions. */
enum MStatusBits : uint32_t
{
    kMStatusMie  = 1u << 3,
    kMStatusMpie = 1u << 7,
    kMStatusMppShift = 11,                 ///< 2-bit previous privilege
    kMStatusMppMask  = 3u << kMStatusMppShift,
};

/** Interrupt numbers (bit positions in mie/mip and cause values). */
enum IrqNum : uint32_t
{
    kIrqTimer    = 7,
    kIrqExternal = 11,
};

/** Synchronous trap cause values. */
enum TrapCause : uint32_t
{
    kCauseFetchFault     = 1,
    kCauseIllegalInst    = 2,
    kCauseBreakpoint     = 3,
    kCauseLoadMisaligned = 4,
    kCauseLoadFault      = 5,
    kCauseStoreMisaligned = 6,
    kCauseStoreFault     = 7,
    kCauseECallU         = 8,
    kCauseECallM         = 11,
    kCauseFetchPageFault = 12,
    kCauseLoadPageFault  = 13,
    kCauseStorePageFault = 15,
};

/** Interrupt flag in mcause. */
constexpr uint32_t kCauseInterrupt = 0x80000000u;

/** Privilege levels. */
enum class Priv : uint8_t { User = 0, Machine = 3 };

/** Instruction formats, used by the decoder/assembler tables. */
enum class Format : uint8_t { R, I, S, B, J, Sys, Csr };

/** A decoded SA32 instruction. */
struct DecodedInst
{
    Op op = Op::Illegal;
    uint8_t rd = 0;
    uint8_t rs1 = 0;
    uint8_t rs2 = 0;
    int32_t imm = 0;        ///< Sign- or zero-extended per instruction.
    uint32_t raw = 0;       ///< Original encoding (for mtval / disasm).
};

/** Decodes one instruction word. */
DecodedInst decode(uint32_t word);

/** Renders a decoded instruction as assembly text. */
std::string disassemble(const DecodedInst &inst, Addr pc);

/** Returns the canonical mnemonic for @p op. */
const char *opName(Op op);

/** Returns true for ops that can redirect control flow or change
 *  translation/privilege state (these end decode-cache blocks). */
bool endsBlock(Op op);

/** Maximum instructions in one decoded basic block.  Shared by the
 *  interpreter's decode cache and the DBT tier so both tiers execute
 *  identical block shapes (a requirement for lockstep equivalence). */
constexpr unsigned kMaxBlockInsts = 64;

/**
 * Decodes the basic block starting at physical address @p pa into
 * @p out: stops at the first block-ending instruction, at
 * kMaxBlockInsts, or at the page boundary (blocks never span pages so
 * one store can only invalidate same-page translations).  A fetch from
 * unreadable memory yields a single Op::Illegal so the trap machinery
 * reports it.
 * @return the number of instructions decoded (>= 1).
 */
size_t decodeBlock(Bus &bus, Addr pa, DecodedInst *out);

} // namespace bifsim::sa32

#endif // BIFSIM_CPU_SA32_H
