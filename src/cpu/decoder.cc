#include "cpu/sa32.h"

#include "common/bits.h"
#include "common/logging.h"
#include "mem/bus.h"

namespace bifsim::sa32 {

namespace {

struct OpInfo
{
    const char *name;
    Format fmt;
};

const OpInfo &
info(Op op)
{
    static const OpInfo table[] = {
        {"add", Format::R},   {"sub", Format::R},   {"and", Format::R},
        {"or", Format::R},    {"xor", Format::R},   {"sll", Format::R},
        {"srl", Format::R},   {"sra", Format::R},   {"slt", Format::R},
        {"sltu", Format::R},  {"mul", Format::R},   {"mulh", Format::R},
        {"mulhu", Format::R}, {"div", Format::R},   {"divu", Format::R},
        {"rem", Format::R},   {"remu", Format::R},
        {"addi", Format::I},  {"andi", Format::I},  {"ori", Format::I},
        {"xori", Format::I},  {"slti", Format::I},  {"sltui", Format::I},
        {"slli", Format::I},  {"srli", Format::I},  {"srai", Format::I},
        {"lui", Format::I},   {"auipc", Format::I},
        {"lb", Format::I},    {"lbu", Format::I},   {"lh", Format::I},
        {"lhu", Format::I},   {"lw", Format::I},
        {"sb", Format::S},    {"sh", Format::S},    {"sw", Format::S},
        {"beq", Format::B},   {"bne", Format::B},   {"blt", Format::B},
        {"bge", Format::B},   {"bltu", Format::B},  {"bgeu", Format::B},
        {"jal", Format::J},   {"jalr", Format::I},
        {"ecall", Format::Sys}, {"ebreak", Format::Sys},
        {"mret", Format::Sys},  {"wfi", Format::Sys},
        {"fence", Format::Sys}, {"sfence", Format::Sys},
        {"halt", Format::Sys},
        {"csrrw", Format::Csr}, {"csrrs", Format::Csr},
        {"csrrc", Format::Csr},
        {"illegal", Format::Sys},
    };
    return table[static_cast<size_t>(op)];
}

} // namespace

const char *
opName(Op op)
{
    return info(op).name;
}

bool
endsBlock(Op op)
{
    switch (op) {
      case Op::Beq: case Op::Bne: case Op::Blt: case Op::Bge:
      case Op::Bltu: case Op::Bgeu: case Op::Jal: case Op::Jalr:
      case Op::ECall: case Op::EBreak: case Op::MRet: case Op::Wfi:
      case Op::Fence: case Op::SFence: case Op::Halt:
      case Op::CsrRw: case Op::CsrRs: case Op::CsrRc:
      case Op::Illegal:
        return true;
      default:
        return false;
    }
}

DecodedInst
decode(uint32_t word)
{
    DecodedInst d;
    d.raw = word;

    uint32_t opc = bits(word, 31, 26);
    uint32_t f1 = bits(word, 25, 21);     // rd or rs2/rs1 per format
    uint32_t f2 = bits(word, 20, 16);
    uint32_t f3 = bits(word, 15, 11);
    uint32_t imm16 = bits(word, 15, 0);
    int32_t simm16 = sext32(imm16, 16);

    auto rtype = [&](Op op) {
        d.op = op; d.rd = f1; d.rs1 = f2; d.rs2 = f3;
    };
    auto itype = [&](Op op, bool sign_extend) {
        d.op = op; d.rd = f1; d.rs1 = f2;
        d.imm = sign_extend ? simm16 : static_cast<int32_t>(imm16);
    };

    switch (opc) {
      case kOpAluR: {
        uint32_t funct = bits(word, 10, 0);
        static constexpr Op alu_ops[] = {
            Op::Add, Op::Sub, Op::And, Op::Or, Op::Xor, Op::Sll,
            Op::Srl, Op::Sra, Op::Slt, Op::Sltu, Op::Mul, Op::Mulh,
            Op::Mulhu, Op::Div, Op::Divu, Op::Rem, Op::Remu,
        };
        if (funct < std::size(alu_ops))
            rtype(alu_ops[funct]);
        break;
      }
      case kOpAddI:  itype(Op::AddI, true); break;
      case kOpAndI:  itype(Op::AndI, false); break;
      case kOpOrI:   itype(Op::OrI, false); break;
      case kOpXorI:  itype(Op::XorI, false); break;
      case kOpSltI:  itype(Op::SltI, true); break;
      case kOpSltuI: itype(Op::SltuI, true); break;
      case kOpSllI:  itype(Op::SllI, false); d.imm &= 31; break;
      case kOpSrlI:  itype(Op::SrlI, false); d.imm &= 31; break;
      case kOpSraI:  itype(Op::SraI, false); d.imm &= 31; break;
      case kOpLui:   itype(Op::Lui, false); break;
      case kOpAuipc: itype(Op::Auipc, false); break;
      case kOpLb:    itype(Op::Lb, true); break;
      case kOpLbu:   itype(Op::Lbu, true); break;
      case kOpLh:    itype(Op::Lh, true); break;
      case kOpLhu:   itype(Op::Lhu, true); break;
      case kOpLw:    itype(Op::Lw, true); break;
      case kOpSb: case kOpSh: case kOpSw:
        d.op = opc == kOpSb ? Op::Sb : opc == kOpSh ? Op::Sh : Op::Sw;
        d.rs2 = f1;   // data
        d.rs1 = f2;   // base
        d.imm = simm16;
        break;
      case kOpBeq: case kOpBne: case kOpBlt:
      case kOpBge: case kOpBltu: case kOpBgeu: {
        static constexpr Op br_ops[] = {
            Op::Beq, Op::Bne, Op::Blt, Op::Bge, Op::Bltu, Op::Bgeu,
        };
        d.op = br_ops[opc - kOpBeq];
        d.rs1 = f1;
        d.rs2 = f2;
        d.imm = simm16;   // word offset relative to branch PC
        break;
      }
      case kOpJal:
        d.op = Op::Jal;
        d.rd = f1;
        d.imm = sext32(bits(word, 20, 0), 21);   // word offset
        break;
      case kOpJalr: itype(Op::Jalr, true); break;
      case kOpSys:
        switch (imm16) {
          case kSysECall:  d.op = Op::ECall; break;
          case kSysEBreak: d.op = Op::EBreak; break;
          case kSysMRet:   d.op = Op::MRet; break;
          case kSysWfi:    d.op = Op::Wfi; break;
          case kSysFence:  d.op = Op::Fence; break;
          case kSysSFence: d.op = Op::SFence; break;
          case kSysHalt:   d.op = Op::Halt; break;
          default: break;
        }
        break;
      case kOpCsrRw: itype(Op::CsrRw, false); break;
      case kOpCsrRs: itype(Op::CsrRs, false); break;
      case kOpCsrRc: itype(Op::CsrRc, false); break;
      default:
        break;
    }
    return d;
}

size_t
decodeBlock(Bus &bus, Addr pa, DecodedInst *out)
{
    size_t n = 0;
    Addr p = pa;
    Addr page_end = roundUp(pa + 1, 4096);
    while (n < kMaxBlockInsts && p + 4 <= page_end) {
        uint64_t word = 0;
        if (bus.read(p, 4, word) != BusResult::Ok)
            break;
        DecodedInst d = decode(static_cast<uint32_t>(word));
        out[n++] = d;
        p += 4;
        if (endsBlock(d.op))
            break;
    }
    if (n == 0) {
        // Fetch from unmapped memory: synthesise one illegal
        // instruction so the trap machinery reports it.
        DecodedInst d;
        d.op = Op::Illegal;
        out[n++] = d;
    }
    return n;
}

std::string
disassemble(const DecodedInst &d, Addr pc)
{
    const OpInfo &oi = info(d.op);
    switch (oi.fmt) {
      case Format::R:
        return strfmt("%s x%u, x%u, x%u", oi.name, d.rd, d.rs1, d.rs2);
      case Format::I:
        if (d.op == Op::Lui || d.op == Op::Auipc)
            return strfmt("%s x%u, 0x%x", oi.name, d.rd,
                          static_cast<unsigned>(d.imm));
        if (d.op == Op::Lb || d.op == Op::Lbu || d.op == Op::Lh ||
            d.op == Op::Lhu || d.op == Op::Lw || d.op == Op::Jalr) {
            return strfmt("%s x%u, %d(x%u)", oi.name, d.rd, d.imm, d.rs1);
        }
        return strfmt("%s x%u, x%u, %d", oi.name, d.rd, d.rs1, d.imm);
      case Format::S:
        return strfmt("%s x%u, %d(x%u)", oi.name, d.rs2, d.imm, d.rs1);
      case Format::B:
        return strfmt("%s x%u, x%u, 0x%llx", oi.name, d.rs1, d.rs2,
                      static_cast<unsigned long long>(
                          pc + static_cast<int64_t>(d.imm) * 4));
      case Format::J:
        return strfmt("%s x%u, 0x%llx", oi.name, d.rd,
                      static_cast<unsigned long long>(
                          pc + static_cast<int64_t>(d.imm) * 4));
      case Format::Sys:
        return oi.name;
      case Format::Csr:
        return strfmt("%s x%u, 0x%x, x%u", oi.name, d.rd,
                      static_cast<unsigned>(d.imm), d.rs1);
    }
    return "<bad>";
}

} // namespace bifsim::sa32
