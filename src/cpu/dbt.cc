/**
 * @file
 * Threaded-code execution engine for the SA32 DBT tier.
 *
 * The handler bodies below are the single source of truth for both
 * dispatch strategies: under GNU-compatible compilers each HANDLER()
 * is a computed-goto label and NEXT() jumps straight to the next op's
 * pre-resolved label (direct threading); elsewhere HANDLER() is a case
 * label inside a dispatch switch keyed on the portable handler index.
 * Either way a handler's semantics must match Core::execute() exactly
 * — the interpreter is the lockstep differential oracle (see dbt.h).
 *
 * Lockstep bookkeeping: the interpreter bumps instret *before*
 * executing each instruction, so a trapping instruction counts as
 * retired and a CSR read of mcycle/minstret sees its own increment.
 * The threaded code keeps instret out of the hot path instead and
 * commits the exact same totals at every block exit; CSR ops commit
 * before their read (they always end a block) so the observed counter
 * values are identical.
 */

#include "cpu/dbt.h"

#include <limits>

#include "common/bits.h"
#include "common/logging.h"
#include "cpu/core.h"
#include "mem/bus.h"

#if defined(__GNUC__) || defined(__clang__)
#define BIFSIM_DBT_GOTO 1
#else
#define BIFSIM_DBT_GOTO 0
#endif

namespace bifsim::sa32 {

namespace {

/**
 * Handler index space.  The leading entries mirror Op one-for-one so
 * lowering an instruction is a cast; Nop (pure-ALU writes to x0,
 * specialised away at translation time) and Term (the synthetic
 * fall-through terminator appended to blocks cut by the page boundary
 * or the length cap) extend it.
 */
#define DBT_OPS(X) \
    X(Add) X(Sub) X(And) X(Or) X(Xor) X(Sll) X(Srl) X(Sra) X(Slt) \
    X(Sltu) X(Mul) X(Mulh) X(Mulhu) X(Div) X(Divu) X(Rem) X(Remu) \
    X(AddI) X(AndI) X(OrI) X(XorI) X(SltI) X(SltuI) X(SllI) X(SrlI) \
    X(SraI) X(Lui) X(Auipc) \
    X(Lb) X(Lbu) X(Lh) X(Lhu) X(Lw) X(Sb) X(Sh) X(Sw) \
    X(Beq) X(Bne) X(Blt) X(Bge) X(Bltu) X(Bgeu) X(Jal) X(Jalr) \
    X(ECall) X(EBreak) X(MRet) X(Wfi) X(Fence) X(SFence) X(Halt) \
    X(CsrRw) X(CsrRs) X(CsrRc) X(Illegal) \
    X(Nop) X(Term)

enum HIdx : uint8_t
{
#define X(n) kH##n,
    DBT_OPS(X)
#undef X
    kHCount,
};

static_assert(kHAdd == static_cast<uint8_t>(Op::Add) &&
              kHAuipc == static_cast<uint8_t>(Op::Auipc) &&
              kHJalr == static_cast<uint8_t>(Op::Jalr) &&
              kHIllegal == static_cast<uint8_t>(Op::Illegal),
              "handler indices must mirror the Op enum");

/** Ops that only write the register file: a write to x0 makes them
 *  architectural no-ops, lowered to the Nop handler. */
bool
isPureAlu(Op op)
{
    return static_cast<uint8_t>(op) <= static_cast<uint8_t>(Op::Auipc);
}

} // namespace

Dbt::Dbt(Core &core) : c_(core)
{
    uint64_t dummy = 0;
    TranslatedBlock *none = nullptr;
    execBlock(none, dummy, &labels_);
}

Dbt::~Dbt() = default;

void
Dbt::invalidateAll()
{
    flushGen_++;
    c_.stats_.dbtRetires += cache_.size();
    for (auto &kv : cache_)
        graveyard_.push_back(std::move(kv.second));
    cache_.clear();
    pending_ = PendingLink();
}

TranslatedBlock *
Dbt::lookupOrTranslate(Addr pa)
{
    auto it = cache_.find(pa);
    if (it != cache_.end()) {
        c_.stats_.blockHits++;
        return it->second.get();
    }
    return translate(pa);
}

TranslatedBlock *
Dbt::translate(Addr pa)
{
    std::unique_ptr<TranslatedBlock> tb;
    for (;;) {
        // Stamp the flush generation the translation starts from: a
        // flush landing mid-translate (invalidateAll from outside the
        // dispatch loop) kills this install and we rebuild from fresh
        // guest bytes.
        uint64_t gen = flushGen_;

        DecodedInst insts[kMaxBlockInsts];
        size_t n = decodeBlock(c_.bus_, pa, insts);

        tb = std::make_unique<TranslatedBlock>();
        tb->pa = pa;
        tb->instCount = static_cast<uint32_t>(n);
        tb->ops.reserve(n + 1);
        for (size_t i = 0; i < n; ++i) {
            const DecodedInst &d = insts[i];
            ThreadedOp t;
            t.idx = static_cast<uint8_t>(d.op);
            if (d.rd == 0 && isPureAlu(d.op))
                t.idx = kHNop;
            t.rd = d.rd;
            t.rs1 = d.rs1;
            t.rs2 = d.rs2;
            t.imm = d.imm;
            t.pcOff = static_cast<uint32_t>(i * 4);
            t.raw = d.raw;
            t.fn = labels_ ? labels_[t.idx] : nullptr;
            tb->ops.push_back(t);
        }
        if (!endsBlock(insts[n - 1].op)) {
            // Block cut by the page boundary or length cap: append a
            // terminator that redirects to the next sequential VA.
            ThreadedOp t;
            t.idx = kHTerm;
            t.pcOff = static_cast<uint32_t>(n * 4);
            t.fn = labels_ ? labels_[t.idx] : nullptr;
            tb->ops.push_back(t);
        }

        if (gen == flushGen_)
            break;
    }

    c_.stats_.blocksDecoded++;
    c_.stats_.dbtBlocks++;
    c_.codePages_.insert(static_cast<uint32_t>(pa >> 12));
    TranslatedBlock *raw = tb.get();
    cache_.emplace(pa, std::move(tb));
    return raw;
}

StopReason
Dbt::run(uint64_t max_insts)
{
    Core &c = c_;
    uint64_t budget = max_insts;
    pending_ = PendingLink();
    TranslatedBlock *next = nullptr;

    while (budget > 0) {
        // Block-boundary checks, in the interpreter's exact order.
        uint32_t icause = 0;
        if (c.interruptPending(icause)) {
            c.waiting_ = false;
            c.trap(icause, 0, c.pc_);
            next = nullptr;   // pc_ redirected: a followed chain is stale.
        }
        if (c.waiting_) {
            if (c.wfiWakePending())
                c.waiting_ = false;
            else
                return StopReason::Wfi;
        }

        TranslatedBlock *tb = next;
        next = nullptr;
        if (!tb) {
            TranslateResult tr =
                c.mmu_.translate(c.pc_, AccessType::Fetch, c.priv_, c.satp_);
            if (!tr.ok) {
                pending_ = PendingLink();
                c.trap(tr.cause, static_cast<uint32_t>(c.pc_), c.pc_);
                continue;
            }
            tb = lookupOrTranslate(tr.pa);
            if (pending_.from) {
                // Bind the requesting block's edge to this resolution.
                // The VA check rejects links when a trap redirected pc_
                // between the request and now; the generation check
                // rejects links from blocks a flush retired.
                if (pending_.flushGen == flushGen_ && pending_.va == c.pc_) {
                    pending_.from->chain[pending_.slot] = tb;
                    pending_.from->chainVa[pending_.slot] = c.pc_;
                    pending_.from->chainEpoch[pending_.slot] = c.mmu_.epoch();
                    c.stats_.dbtChainLinks++;
                }
                pending_ = PendingLink();
            }
        }

        const uint64_t entryGen = flushGen_;
        // execBlock follows intact chains internally and leaves `tb`
        // pointing at the block it actually exited from, so the edge
        // bookkeeping below applies to the real exit site.
        Exit e = execBlock(tb, budget);

        switch (e) {
          case Exit::Halt:
            return StopReason::Halt;
          case Exit::EBreak:
            return StopReason::EBreak;
          case Exit::Wfi:
            return budget > 0 ? StopReason::Wfi : StopReason::MaxInsts;
          case Exit::Trap:
          case Exit::Indirect:
            break;   // Dynamic target: full lookup next iteration.
          case Exit::Taken:
          case Exit::Fall: {
            unsigned slot = e == Exit::Taken ? kChainTaken : kChainFall;
            if (entryGen == flushGen_) {
                TranslatedBlock *nxt = tb->chain[slot];
                if (nxt && tb->chainEpoch[slot] == c.mmu_.epoch() &&
                    tb->chainVa[slot] == c.pc_) {
                    // Chain follow: skip the fetch translation and the
                    // cache lookup; the loop-top budget and interrupt
                    // checks still run, keeping lockstep with the
                    // interpreter.
                    c.stats_.blockHits++;
                    c.stats_.dbtChainFollows++;
                    next = nxt;
                } else {
                    if (nxt) {
                        tb->chain[slot] = nullptr;
                        c.stats_.dbtChainBreaks++;
                    }
                    pending_ = PendingLink{tb, slot, c.pc_, entryGen};
                }
            }
            break;
          }
        }

        // Safe point: nothing references the just-run block's ops, and
        // a chained `next` is live-cache only (entryGen guard above).
        if (!graveyard_.empty())
            graveyard_.clear();
    }
    return StopReason::MaxInsts;
}

Dbt::Exit
Dbt::execBlock(TranslatedBlock *&tb, uint64_t &budget,
               const void *const **out_labels)
{
#if BIFSIM_DBT_GOTO
    static const void *const labels[] = {
#define X(n) &&L_##n,
        DBT_OPS(X)
#undef X
    };
    if (out_labels) {
        *out_labels = labels;
        return Exit::Fall;
    }
#else
    if (out_labels) {
        *out_labels = nullptr;
        return Exit::Fall;
    }
#endif

    Core &c = c_;
    uint32_t *const regs = c.regs_;
    const uint64_t gen = flushGen_;
    Addr va0 = c.pc_;
    const ThreadedOp *base = tb->ops.data();
    const ThreadedOp *op = base;

    // Hot-loop state lives in locals so chained block edges touch no
    // memory beyond the guards themselves; RETURN() writes everything
    // back (and CSR reads flush early so minstret stays exact).
    uint64_t bud = budget;
    uint64_t instretAcc = 0;
    uint64_t followAcc = 0;

// The guest PC of the current op (pc_ itself is not advanced per
// instruction; exits materialise it, exactly like the interpreter).
#define CUR_PC (va0 + op->pcOff)
#define RS1 (regs[op->rs1])
#define RS2 (regs[op->rs2])
#define WR(v) \
    do { \
        if (op->rd) \
            regs[op->rd] = (v); \
    } while (0)
// Pure-ALU ops never reach a handler with rd == x0 (translation lowers
// those to Nop), so their write needs no guard.
#define WRA(v) (regs[op->rd] = (v))

// Commit retired-instruction counts for this op and everything before
// it in the block.  Matches the interpreter's per-instruction
// pre-increment: a trapping op counts as retired, and the budget
// saturates at zero (whole-block overshoot is identical in both tiers).
#define COMMIT_AT() \
    do { \
        uint64_t n_ = static_cast<uint64_t>(op - base) + 1; \
        instretAcc += n_; \
        bud = n_ >= bud ? 0 : bud - n_; \
    } while (0)
#define FLUSH_STATS() \
    do { \
        c.stats_.instret += instretAcc; \
        c.stats_.blockHits += followAcc; \
        c.stats_.dbtChainFollows += followAcc; \
        instretAcc = 0; \
        followAcc = 0; \
    } while (0)
#define RETURN(kind) \
    do { \
        budget = bud; \
        FLUSH_STATS(); \
        return (kind); \
    } while (0)
#define EXIT_AT(kind) \
    do { \
        COMMIT_AT(); \
        RETURN(kind); \
    } while (0)

// Block-edge fast path: when the outgoing chain link is intact and no
// block-boundary event is due (budget exhausted, interrupt bit pending,
// translation flush, TLB epoch bump), enter the successor's threaded
// code directly instead of returning to the dispatcher.  The guards
// mirror Dbt::run()'s loop top exactly, so interrupt delivery and
// MaxInsts cuts land on the same guest boundaries as the interpreter;
// anything unusual falls back to the dispatcher's slow path.  @p npc_
// must equal the value just stored to pc_ (kept in a register so the
// VA compare does not wait on the store).
#define CHAIN_OR_RETURN(slot_, kind_, npc_) \
    do { \
        TranslatedBlock *nxt_ = tb->chain[slot_]; \
        if (nxt_ && bud > 0 && flushGen_ == gen && \
            tb->chainEpoch[slot_] == c.mmu_.epoch() && \
            tb->chainVa[slot_] == (npc_) && \
            (c.mip_.load(std::memory_order_acquire) & c.mie_) == 0) { \
            followAcc++; \
            tb = nxt_; \
            va0 = (npc_); \
            base = tb->ops.data(); \
            op = base; \
            CHAIN_NEXT(); \
        } \
        RETURN(kind_); \
    } while (0)
#define EDGE_AT(slot_, kind_, npc_) \
    do { \
        COMMIT_AT(); \
        CHAIN_OR_RETURN(slot_, kind_, npc_); \
    } while (0)

#if BIFSIM_DBT_GOTO
#define HANDLER(name) L_##name:
#define NEXT() \
    do { \
        ++op; \
        goto *op->fn; \
    } while (0)
#define CHAIN_NEXT() goto *op->fn
    goto *op->fn;
#else
#define HANDLER(name) case kH##name:
#define NEXT() \
    do { \
        ++op; \
        goto dispatch; \
    } while (0)
#define CHAIN_NEXT() goto dispatch
  dispatch:
    switch (static_cast<HIdx>(op->idx)) {
#endif

    HANDLER(Nop) { NEXT(); }

    HANDLER(Add) { WRA(RS1 + RS2); NEXT(); }
    HANDLER(Sub) { WRA(RS1 - RS2); NEXT(); }
    HANDLER(And) { WRA(RS1 & RS2); NEXT(); }
    HANDLER(Or)  { WRA(RS1 | RS2); NEXT(); }
    HANDLER(Xor) { WRA(RS1 ^ RS2); NEXT(); }
    HANDLER(Sll) { WRA(RS1 << (RS2 & 31)); NEXT(); }
    HANDLER(Srl) { WRA(RS1 >> (RS2 & 31)); NEXT(); }
    HANDLER(Sra)
    {
        WRA(static_cast<uint32_t>(static_cast<int32_t>(RS1) >> (RS2 & 31)));
        NEXT();
    }
    HANDLER(Slt)
    {
        WRA(static_cast<int32_t>(RS1) < static_cast<int32_t>(RS2));
        NEXT();
    }
    HANDLER(Sltu) { WRA(RS1 < RS2); NEXT(); }
    HANDLER(Mul) { WRA(RS1 * RS2); NEXT(); }
    HANDLER(Mulh)
    {
        int64_t p = static_cast<int64_t>(static_cast<int32_t>(RS1)) *
                    static_cast<int64_t>(static_cast<int32_t>(RS2));
        WRA(static_cast<uint32_t>(static_cast<uint64_t>(p) >> 32));
        NEXT();
    }
    HANDLER(Mulhu)
    {
        uint64_t p = static_cast<uint64_t>(RS1) * RS2;
        WRA(static_cast<uint32_t>(p >> 32));
        NEXT();
    }
    HANDLER(Div)
    {
        int32_t a = RS1, b = RS2;
        if (b == 0)
            WRA(0xffffffffu);
        else if (a == std::numeric_limits<int32_t>::min() && b == -1)
            WRA(static_cast<uint32_t>(a));
        else
            WRA(static_cast<uint32_t>(a / b));
        NEXT();
    }
    HANDLER(Divu) { WRA(RS2 ? RS1 / RS2 : 0xffffffffu); NEXT(); }
    HANDLER(Rem)
    {
        int32_t a = RS1, b = RS2;
        if (b == 0)
            WRA(static_cast<uint32_t>(a));
        else if (a == std::numeric_limits<int32_t>::min() && b == -1)
            WRA(0);
        else
            WRA(static_cast<uint32_t>(a % b));
        NEXT();
    }
    HANDLER(Remu) { WRA(RS2 ? RS1 % RS2 : RS1); NEXT(); }

    HANDLER(AddI) { WRA(RS1 + static_cast<uint32_t>(op->imm)); NEXT(); }
    HANDLER(AndI) { WRA(RS1 & static_cast<uint32_t>(op->imm)); NEXT(); }
    HANDLER(OrI)  { WRA(RS1 | static_cast<uint32_t>(op->imm)); NEXT(); }
    HANDLER(XorI) { WRA(RS1 ^ static_cast<uint32_t>(op->imm)); NEXT(); }
    HANDLER(SltI)
    {
        WRA(static_cast<int32_t>(RS1) < op->imm);
        NEXT();
    }
    HANDLER(SltuI) { WRA(RS1 < static_cast<uint32_t>(op->imm)); NEXT(); }
    HANDLER(SllI) { WRA(RS1 << op->imm); NEXT(); }
    HANDLER(SrlI) { WRA(RS1 >> op->imm); NEXT(); }
    HANDLER(SraI)
    {
        WRA(static_cast<uint32_t>(static_cast<int32_t>(RS1) >> op->imm));
        NEXT();
    }
    HANDLER(Lui) { WRA(static_cast<uint32_t>(op->imm) << 16); NEXT(); }
    HANDLER(Auipc)
    {
        WRA(static_cast<uint32_t>(CUR_PC) +
            (static_cast<uint32_t>(op->imm) << 16));
        NEXT();
    }

    HANDLER(Lb)
    {
        uint32_t v = 0;
        if (!c.memLoad(RS1 + static_cast<uint32_t>(op->imm), 1, true, v,
                       CUR_PC))
            EXIT_AT(Exit::Trap);
        WR(v);
        NEXT();
    }
    HANDLER(Lbu)
    {
        uint32_t v = 0;
        if (!c.memLoad(RS1 + static_cast<uint32_t>(op->imm), 1, false, v,
                       CUR_PC))
            EXIT_AT(Exit::Trap);
        WR(v);
        NEXT();
    }
    HANDLER(Lh)
    {
        uint32_t v = 0;
        if (!c.memLoad(RS1 + static_cast<uint32_t>(op->imm), 2, true, v,
                       CUR_PC))
            EXIT_AT(Exit::Trap);
        WR(v);
        NEXT();
    }
    HANDLER(Lhu)
    {
        uint32_t v = 0;
        if (!c.memLoad(RS1 + static_cast<uint32_t>(op->imm), 2, false, v,
                       CUR_PC))
            EXIT_AT(Exit::Trap);
        WR(v);
        NEXT();
    }
    HANDLER(Lw)
    {
        uint32_t v = 0;
        if (!c.memLoad(RS1 + static_cast<uint32_t>(op->imm), 4, false, v,
                       CUR_PC))
            EXIT_AT(Exit::Trap);
        WR(v);
        NEXT();
    }
    // A store may hit a translated page and retire this very block
    // (SMC); the graveyard keeps the ops array alive, so falling
    // through to the next op here is safe — and matches the
    // interpreter, which also finishes the already-decoded block.
    HANDLER(Sb)
    {
        if (!c.memStore(RS1 + static_cast<uint32_t>(op->imm), 1, RS2,
                        CUR_PC))
            EXIT_AT(Exit::Trap);
        NEXT();
    }
    HANDLER(Sh)
    {
        if (!c.memStore(RS1 + static_cast<uint32_t>(op->imm), 2, RS2,
                        CUR_PC))
            EXIT_AT(Exit::Trap);
        NEXT();
    }
    HANDLER(Sw)
    {
        if (!c.memStore(RS1 + static_cast<uint32_t>(op->imm), 4, RS2,
                        CUR_PC))
            EXIT_AT(Exit::Trap);
        NEXT();
    }

// Branches always end a block; both arms take the chained edge path.
#define BRANCH(cond) \
    do { \
        if (cond) { \
            Addr npc = CUR_PC + static_cast<int64_t>(op->imm) * 4; \
            c.pc_ = npc; \
            EDGE_AT(kChainTaken, Exit::Taken, npc); \
        } \
        Addr npc = CUR_PC + 4; \
        c.pc_ = npc; \
        EDGE_AT(kChainFall, Exit::Fall, npc); \
    } while (0)

    HANDLER(Beq) { BRANCH(RS1 == RS2); }
    HANDLER(Bne) { BRANCH(RS1 != RS2); }
    HANDLER(Blt)
    {
        BRANCH(static_cast<int32_t>(RS1) < static_cast<int32_t>(RS2));
    }
    HANDLER(Bge)
    {
        BRANCH(static_cast<int32_t>(RS1) >= static_cast<int32_t>(RS2));
    }
    HANDLER(Bltu) { BRANCH(RS1 < RS2); }
    HANDLER(Bgeu) { BRANCH(RS1 >= RS2); }
#undef BRANCH

    HANDLER(Jal)
    {
        WR(static_cast<uint32_t>(CUR_PC) + 4);
        Addr npc = CUR_PC + static_cast<int64_t>(op->imm) * 4;
        c.pc_ = npc;
        EDGE_AT(kChainTaken, Exit::Taken, npc);
    }
    HANDLER(Jalr)
    {
        uint32_t target = (RS1 + static_cast<uint32_t>(op->imm)) & ~1u;
        WR(static_cast<uint32_t>(CUR_PC) + 4);
        c.pc_ = target;
        EXIT_AT(Exit::Indirect);
    }

    HANDLER(ECall)
    {
        c.trap(c.priv_ == Priv::User ? kCauseECallU : kCauseECallM, 0,
               CUR_PC);
        EXIT_AT(Exit::Trap);
    }
    HANDLER(EBreak)
    {
        if (c.mtvec_ == 0) {
            c.pc_ = CUR_PC;
            EXIT_AT(Exit::EBreak);
        }
        c.trap(kCauseBreakpoint, static_cast<uint32_t>(CUR_PC), CUR_PC);
        EXIT_AT(Exit::Trap);
    }
    HANDLER(MRet)
    {
        uint32_t mpp = (c.mstatus_ & kMStatusMppMask) >> kMStatusMppShift;
        c.priv_ = mpp == 3 ? Priv::Machine : Priv::User;
        if (c.mstatus_ & kMStatusMpie)
            c.mstatus_ |= kMStatusMie;
        else
            c.mstatus_ &= ~kMStatusMie;
        c.mstatus_ |= kMStatusMpie;
        c.mstatus_ &= ~kMStatusMppMask;
        c.pc_ = c.mepc_;
        EXIT_AT(Exit::Indirect);
    }
    HANDLER(Wfi)
    {
        c.pc_ = CUR_PC + 4;
        if (c.wfiWakePending())
            EXIT_AT(Exit::Fall);   // Pending wake: falls straight through.
        c.waiting_ = true;
        EXIT_AT(Exit::Wfi);
    }
    HANDLER(Fence)
    {
        // Retires every translation including this one; the graveyard
        // keeps `op` alive until the dispatcher's safe point.
        c.flushCodeCache();
        c.pc_ = CUR_PC + 4;
        EXIT_AT(Exit::Fall);
    }
    HANDLER(SFence)
    {
        c.mmu_.flushTlb();   // Bumps the epoch: stale chains die lazily.
        c.pc_ = CUR_PC + 4;
        EXIT_AT(Exit::Fall);
    }
    HANDLER(Halt)
    {
        c.pc_ = CUR_PC + 4;
        EXIT_AT(Exit::Halt);
    }

// CSR ops always end a block.  Commit and flush instret before the
// read so mcycle/minstret observe the same pre-incremented count the
// interpreter produces.
#define CSR_PROLOGUE() \
    uint32_t csr = static_cast<uint32_t>(op->imm); \
    if (c.priv_ != Priv::Machine && csr != kCsrMCycle && \
        csr != kCsrMInstRet) { \
        c.trap(kCauseIllegalInst, op->raw, CUR_PC); \
        EXIT_AT(Exit::Trap); \
    } \
    COMMIT_AT(); \
    FLUSH_STATS(); \
    uint32_t old = c.readCsr(csr)

    HANDLER(CsrRw)
    {
        CSR_PROLOGUE();
        c.writeCsr(csr, RS1);
        WR(old);
        c.pc_ = CUR_PC + 4;
        RETURN(Exit::Fall);
    }
    HANDLER(CsrRs)
    {
        CSR_PROLOGUE();
        if (op->rs1 != 0)
            c.writeCsr(csr, old | RS1);
        WR(old);
        c.pc_ = CUR_PC + 4;
        RETURN(Exit::Fall);
    }
    HANDLER(CsrRc)
    {
        CSR_PROLOGUE();
        if (op->rs1 != 0)
            c.writeCsr(csr, old & ~RS1);
        WR(old);
        c.pc_ = CUR_PC + 4;
        RETURN(Exit::Fall);
    }
#undef CSR_PROLOGUE

    HANDLER(Illegal)
    {
        c.trap(kCauseIllegalInst, op->raw, CUR_PC);
        EXIT_AT(Exit::Trap);
    }

    HANDLER(Term)
    {
        // Synthetic fall-through: the terminator itself is not a guest
        // instruction, so commit only the instCount real ops before it.
        uint64_t n = tb->instCount;
        instretAcc += n;
        bud = n >= bud ? 0 : bud - n;
        Addr npc = va0 + op->pcOff;
        c.pc_ = npc;
        CHAIN_OR_RETURN(kChainFall, Exit::Fall, npc);
    }

#if !BIFSIM_DBT_GOTO
    }
#endif

    // Unreachable: every handler exits or jumps to the next op, and
    // every block ends in an exiting handler.
    return Exit::Trap;

#undef CUR_PC
#undef RS1
#undef RS2
#undef WR
#undef WRA
#undef COMMIT_AT
#undef FLUSH_STATS
#undef RETURN
#undef EXIT_AT
#undef CHAIN_OR_RETURN
#undef EDGE_AT
#undef HANDLER
#undef NEXT
#undef CHAIN_NEXT
}

} // namespace bifsim::sa32
