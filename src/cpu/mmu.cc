#include "cpu/mmu.h"

#include "common/bits.h"

namespace bifsim::sa32 {

TrapCause
CpuMmu::faultCause(AccessType type)
{
    switch (type) {
      case AccessType::Fetch: return kCauseFetchPageFault;
      case AccessType::Load:  return kCauseLoadPageFault;
      case AccessType::Store: return kCauseStorePageFault;
    }
    return kCauseLoadPageFault;
}

void
CpuMmu::flushTlb()
{
    epoch_++;
    for (TlbEntry &e : tlb_)
        e.valid = false;
}

TranslateResult
CpuMmu::translate(Addr va, AccessType type, Priv priv, uint32_t satp)
{
    TranslateResult res;

    // Machine mode, or paging disabled: identity mapping.
    if (priv == Priv::Machine || !(satp & 0x80000000u)) {
        res.ok = true;
        res.pa = va;
        return res;
    }

    uint32_t need = type == AccessType::Fetch ? kPteExec
                  : type == AccessType::Load  ? kPteRead
                                              : kPteWrite;

    uint32_t vpn = static_cast<uint32_t>(va >> 12);
    TlbEntry &e = tlb_[vpn % kTlbEntries];
    if (e.valid && e.vpn == vpn) {
        stats_.tlbHits++;
        if ((e.perms & need) && (e.perms & kPteUser)) {
            res.ok = true;
            res.pa = (static_cast<Addr>(e.ppn) << 12) | (va & 0xfff);
            return res;
        }
        stats_.faults++;
        res.cause = faultCause(type);
        return res;
    }
    stats_.tlbMisses++;
    stats_.pageWalks++;

    Addr root = static_cast<Addr>(satp & 0xfffffu) << 12;
    uint32_t vpn1 = bits(va, 31, 22);
    uint32_t vpn0 = bits(va, 21, 12);

    uint64_t pte1 = 0;
    if (bus_.read(root + vpn1 * 4, 4, pte1) != BusResult::Ok ||
        !(pte1 & kPteValid)) {
        stats_.faults++;
        res.cause = faultCause(type);
        return res;
    }

    uint32_t perms;
    uint32_t leaf_ppn;
    if (pte1 & (kPteRead | kPteWrite | kPteExec)) {
        // 4 MiB megapage leaf.
        perms = static_cast<uint32_t>(pte1) & 0x1f;
        leaf_ppn = (static_cast<uint32_t>(pte1 >> 10) & 0xffc00u) | vpn0;
    } else {
        Addr l0 = static_cast<Addr>((pte1 >> 10) & 0xfffffu) << 12;
        uint64_t pte0 = 0;
        if (bus_.read(l0 + vpn0 * 4, 4, pte0) != BusResult::Ok ||
            !(pte0 & kPteValid) ||
            !(pte0 & (kPteRead | kPteWrite | kPteExec))) {
            stats_.faults++;
            res.cause = faultCause(type);
            return res;
        }
        perms = static_cast<uint32_t>(pte0) & 0x1f;
        leaf_ppn = static_cast<uint32_t>(pte0 >> 10) & 0xfffffu;
    }

    e.valid = true;
    e.vpn = vpn;
    e.ppn = leaf_ppn;
    e.perms = perms;

    if ((perms & need) && (perms & kPteUser)) {
        res.ok = true;
        res.pa = (static_cast<Addr>(leaf_ppn) << 12) | (va & 0xfff);
        return res;
    }
    stats_.faults++;
    res.cause = faultCause(type);
    return res;
}

} // namespace bifsim::sa32
