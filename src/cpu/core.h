#ifndef BIFSIM_CPU_CORE_H
#define BIFSIM_CPU_CORE_H

/**
 * @file
 * The SA32 CPU core.
 *
 * Guest execution has three tiers, mirroring the paper's QEMU-class
 * DBT CPU versus the Multi2Sim-style baseline:
 *
 *  - DBT (default, CoreConfig::dbt = true): basic blocks are lowered
 *    once into threaded code (pre-resolved handler pointers, direct
 *    block chaining) and executed by an indirect-goto dispatch loop —
 *    see cpu/dbt.h and DESIGN.md §5g.
 *  - Interpreter (dbt = false): a two-phase decode-then-execute scheme
 *    with a basic-block decode cache.  Kept as the A/B and lockstep
 *    differential oracle for the DBT tier; both tiers execute
 *    identical block shapes and are architecturally lockstep.
 *  - Re-decode baseline (blockCache = false): every block is decoded
 *    on every execution, modelling Multi2Sim-style simulation (this
 *    also disables the DBT tier, which is a cache by construction).
 */

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cpu/mmu.h"
#include "cpu/sa32.h"
#include "mem/bus.h"
#include "snapshot/snapshot.h"

namespace bifsim::sa32 {

class Dbt;

/** Why Core::run() returned. */
enum class StopReason
{
    MaxInsts,   ///< Instruction budget exhausted.
    Wfi,        ///< Core is waiting for an interrupt.
    Halt,       ///< Guest executed the simulation-halt instruction.
    EBreak,     ///< Breakpoint with no handler installed (mtvec == 0).
};

/** Core execution statistics. */
struct CoreStats
{
    uint64_t instret = 0;         ///< Instructions retired.
    uint64_t blocksDecoded = 0;   ///< Decode-cache fills / translations.
    uint64_t blockHits = 0;       ///< Cache hits (incl. chain follows).
    uint64_t traps = 0;           ///< Synchronous traps taken.
    uint64_t interrupts = 0;      ///< Interrupts taken.
    uint64_t cacheFlushes = 0;    ///< Decode/translation invalidations.

    /** @name DBT-tier translation counters (zero on the interpreter).
     *  @{ */
    uint64_t dbtBlocks = 0;        ///< Translations installed.
    uint64_t dbtChainLinks = 0;    ///< Direct block-chain links created.
    uint64_t dbtChainFollows = 0;  ///< Dispatches served by a chain.
    uint64_t dbtChainBreaks = 0;   ///< Links invalidated (epoch/VA).
    uint64_t dbtRetires = 0;       ///< Translations retired by flushes.
    /** @} */
};

/**
 * A single SA32 hardware thread with machine/user privilege, paging,
 * interrupts and a block decode cache.
 */
/** Static core configuration. */
struct CoreConfig
{
    Addr resetPc = 0x80000000;  ///< PC after reset.
    bool blockCache = true;     ///< Enable the decode cache.
    bool dbt = true;            ///< Threaded-code DBT tier (needs
                                ///< blockCache; false = interpreter
                                ///< oracle).
    uint32_t hartId = 0;        ///< Value of the mhartid CSR.
};

class Core
{
  public:
    explicit Core(Bus &bus, CoreConfig cfg = CoreConfig());
    ~Core();

    /** Resets architectural state (registers, CSRs, caches). */
    void reset();

    /**
     * Executes up to @p max_insts instructions.
     * Returns early on WFI (with no pending interrupt) or HALT.
     */
    StopReason run(uint64_t max_insts);

    /** @name Architectural state access (used by the loader and tests).
     *  @{ */
    uint32_t reg(unsigned idx) const { return regs_[idx]; }
    void setReg(unsigned idx, uint32_t v) { if (idx) regs_[idx] = v; }
    Addr pc() const { return pc_; }
    void setPc(Addr pc) { pc_ = pc; waiting_ = false; }
    Priv priv() const { return priv_; }
    void setPriv(Priv p) { priv_ = p; }
    uint32_t readCsr(uint32_t num) const;
    void writeCsr(uint32_t num, uint32_t value);
    /** @} */

    /** True while the core is parked in WFI. */
    bool waiting() const { return waiting_; }

    /** Drives an interrupt line level (kIrqTimer / kIrqExternal). */
    void setIrqLine(IrqNum irq, bool level);

    /** Discards all cached decoded blocks and DBT translations
     *  (e.g.\ after loading code).  Safe to call mid-execution: the
     *  currently-running block's storage is kept alive until the next
     *  dispatch safe point. */
    void flushCodeCache();

    /** True when the threaded-code DBT tier executes guest code
     *  (requires both cfg.dbt and cfg.blockCache). */
    bool usesDbt() const { return cfg_.dbt && cfg_.blockCache; }

    /** The DBT engine, or nullptr on the interpreter tiers. */
    Dbt *dbt() { return dbt_.get(); }

    /** Execution statistics. */
    const CoreStats &stats() const { return stats_; }

    /** The data/instruction MMU. */
    CpuMmu &mmu() { return mmu_; }

    /**
     * Serialises all architectural state — registers, PC, privilege,
     * WFI latch, CSRs (including pending IRQ lines in mip) and the
     * retired-instruction counters backing mcycle/minstret — into @p w.
     */
    void saveState(snapshot::ChunkWriter &w) const;

    /**
     * Restores architectural state from @p r.  Parses the whole chunk
     * before committing, then flushes the decode cache and TLB so no
     * stale translation or decoded block survives the restore.
     */
    void restoreState(snapshot::ChunkReader &r);

  private:
    friend class Dbt;   ///< The DBT tier is an alternate execution
                        ///< engine over the same architectural state.

    enum class ExecResult { Next, Redirect, Trap, Wfi, Halt, EBreak };

    struct Block
    {
        std::vector<DecodedInst> insts;
    };

    Bus &bus_;
    CoreConfig cfg_;
    CpuMmu mmu_;

    uint32_t regs_[kNumRegs] = {};
    Addr pc_ = 0;
    Priv priv_ = Priv::Machine;
    bool waiting_ = false;

    uint32_t mstatus_ = 0;
    uint32_t mie_ = 0;
    std::atomic<uint32_t> mip_{0};   ///< Level-driven by devices (other threads).
    uint32_t mtvec_ = 0;
    uint32_t mscratch_ = 0;
    uint32_t mepc_ = 0;
    uint32_t mcause_ = 0;
    uint32_t mtval_ = 0;
    uint32_t satp_ = 0;

    CoreStats stats_;

    std::unordered_map<Addr, Block> blocks_;
    std::unordered_set<uint32_t> codePages_;
    Block scratch_;   ///< Decode target when the block cache is off.

    /** Blocks retired by a mid-execution flush (self-modifying-code
     *  store, fence).  Keeps the currently-executing block's insts
     *  alive until the run loop's next safe point. */
    std::vector<std::unordered_map<Addr, Block>> retired_;

    std::unique_ptr<Dbt> dbt_;   ///< Present iff usesDbt().

    StopReason runInterp(uint64_t max_insts);
    const Block *fetchBlock(Addr pa);
    ExecResult execute(const DecodedInst &inst, Addr cur_pc);
    void trap(uint32_t cause, uint32_t tval, Addr epc);
    bool interruptPending(uint32_t &cause) const;

    /** WFI wake-up condition: an interrupt is pending in mip & mie.
     *  Unlike interruptPending() this ignores mstatus.MIE — the RISC-V
     *  spec resumes a stalled hart on pending-but-globally-masked
     *  interrupts, which is what makes the canonical
     *  mask / check / wfi / unmask wait loop race-free. */
    bool wfiWakePending() const;

    bool memLoad(Addr va, unsigned size, bool sign_extend, uint32_t &out,
                 Addr cur_pc);
    bool memStore(Addr va, unsigned size, uint32_t value, Addr cur_pc);
};

} // namespace bifsim::sa32

#endif // BIFSIM_CPU_CORE_H
