#ifndef BIFSIM_CPU_ASM_ASSEMBLER_H
#define BIFSIM_CPU_ASM_ASSEMBLER_H

/**
 * @file
 * A two-pass assembler for the SA32 guest ISA.
 *
 * The mini guest OS, its GPU driver, and guest test programs are written
 * in this assembly dialect and assembled at simulator start-up — the
 * stand-in for cross-compiling the paper's guest software stack.
 *
 * Supported syntax:
 *   - labels (`name:`), `#`/`//` comments
 *   - directives: .org, .equ, .word, .space, .align, .asciz
 *   - all SA32 instructions with x0..x31 or ABI register names
 *   - pseudo-instructions: li, la, mv, nop, j, jr, jal label, call,
 *     ret, beqz, bnez, csrr, csrw, csrs, csrc
 *   - operands: decimal/hex immediates, .equ symbols, labels,
 *     `sym+off` / `sym-off`
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "mem/device.h"
#include "mem/phys_mem.h"

namespace bifsim::sa32 {

/** An assembled guest program image. */
struct Program
{
    Addr base = 0;                         ///< Load address (.org).
    std::vector<uint8_t> bytes;            ///< Raw image.
    std::map<std::string, Addr> symbols;   ///< Labels and .equ values.

    /** Returns the address of @p symbol, throwing SimError if unknown. */
    Addr symbol(const std::string &name) const;

    /** Copies the image into guest physical memory. */
    void loadInto(PhysMem &mem) const;
};

/**
 * Assembles SA32 source text.
 *
 * @param source  The assembly text.
 * @param predefined  Extra symbols visible to the program (e.g.\ device
 *                    base addresses injected by the platform).
 * @throws SimError on any syntax or range error (message includes the
 *         line number).
 */
Program assemble(const std::string &source,
                 const std::map<std::string, Addr> &predefined = {});

/** @name Raw instruction encoders (used by tests and the assembler).
 *  @{ */
uint32_t encR(uint32_t funct, unsigned rd, unsigned rs1, unsigned rs2);
uint32_t encI(uint32_t opcode, unsigned rd, unsigned rs1, uint32_t imm16);
uint32_t encS(uint32_t opcode, unsigned rs2, unsigned rs1, uint32_t imm16);
uint32_t encB(uint32_t opcode, unsigned rs1, unsigned rs2, uint32_t imm16);
uint32_t encJ(unsigned rd, uint32_t imm21);
uint32_t encSys(uint32_t funct);
uint32_t encCsr(uint32_t opcode, unsigned rd, unsigned rs1, uint32_t csr);
/** @} */

/** Parses a register name (x0..x31 or ABI alias); returns -1 if bad. */
int parseRegister(const std::string &name);

} // namespace bifsim::sa32

#endif // BIFSIM_CPU_ASM_ASSEMBLER_H
