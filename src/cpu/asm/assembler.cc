#include "cpu/asm/assembler.h"

#include <cctype>
#include <cstring>
#include <optional>

#include "common/bits.h"
#include "common/logging.h"
#include "cpu/sa32.h"

namespace bifsim::sa32 {

uint32_t
encR(uint32_t funct, unsigned rd, unsigned rs1, unsigned rs2)
{
    return (kOpAluR << 26) | (rd << 21) | (rs1 << 16) | (rs2 << 11) |
           (funct & 0x7ff);
}

uint32_t
encI(uint32_t opcode, unsigned rd, unsigned rs1, uint32_t imm16)
{
    return (opcode << 26) | (rd << 21) | (rs1 << 16) | (imm16 & 0xffff);
}

uint32_t
encS(uint32_t opcode, unsigned rs2, unsigned rs1, uint32_t imm16)
{
    return (opcode << 26) | (rs2 << 21) | (rs1 << 16) | (imm16 & 0xffff);
}

uint32_t
encB(uint32_t opcode, unsigned rs1, unsigned rs2, uint32_t imm16)
{
    return (opcode << 26) | (rs1 << 21) | (rs2 << 16) | (imm16 & 0xffff);
}

uint32_t
encJ(unsigned rd, uint32_t imm21)
{
    return (kOpJal << 26) | (rd << 21) | (imm21 & 0x1fffff);
}

uint32_t
encSys(uint32_t funct)
{
    return (kOpSys << 26) | (funct & 0xffff);
}

uint32_t
encCsr(uint32_t opcode, unsigned rd, unsigned rs1, uint32_t csr)
{
    return (opcode << 26) | (rd << 21) | (rs1 << 16) | (csr & 0xffff);
}

int
parseRegister(const std::string &name)
{
    static const std::map<std::string, int> aliases = {
        {"zero", 0}, {"ra", 1}, {"sp", 2}, {"gp", 3}, {"tp", 4},
        {"t0", 5},  {"t1", 6},  {"t2", 7},  {"s0", 8}, {"fp", 8},
        {"s1", 9},  {"a0", 10}, {"a1", 11}, {"a2", 12}, {"a3", 13},
        {"a4", 14}, {"a5", 15}, {"a6", 16}, {"a7", 17}, {"s2", 18},
        {"s3", 19}, {"s4", 20}, {"s5", 21}, {"s6", 22}, {"s7", 23},
        {"s8", 24}, {"s9", 25}, {"s10", 26}, {"s11", 27}, {"t3", 28},
        {"t4", 29}, {"t5", 30}, {"t6", 31},
    };
    if (name.size() >= 2 && name[0] == 'x') {
        int n = 0;
        for (size_t i = 1; i < name.size(); ++i) {
            if (!std::isdigit(static_cast<unsigned char>(name[i])))
                return -1;
            n = n * 10 + (name[i] - '0');
        }
        return n < 32 ? n : -1;
    }
    auto it = aliases.find(name);
    return it == aliases.end() ? -1 : it->second;
}

Addr
Program::symbol(const std::string &name) const
{
    auto it = symbols.find(name);
    if (it == symbols.end())
        simError("unknown symbol '%s'", name.c_str());
    return it->second;
}

void
Program::loadInto(PhysMem &mem) const
{
    if (!mem.contains(base, bytes.size()))
        simError("program image [0x%llx, +%zu) outside guest RAM",
                 static_cast<unsigned long long>(base), bytes.size());
    mem.writeBlock(base, bytes.data(), bytes.size());
}

namespace {

const std::map<std::string, uint32_t> kCsrNames = {
    {"satp", kCsrSatp},       {"mstatus", kCsrMStatus},
    {"mie", kCsrMIe},         {"mtvec", kCsrMTvec},
    {"mscratch", kCsrMScratch}, {"mepc", kCsrMEpc},
    {"mcause", kCsrMCause},   {"mtval", kCsrMTval},
    {"mip", kCsrMIp},         {"mcycle", kCsrMCycle},
    {"minstret", kCsrMInstRet}, {"mhartid", kCsrMHartId},
};

struct Line
{
    int number = 0;
    std::string mnemonic;
    std::vector<std::string> operands;
};

/** Assembler working state for one assemble() call. */
class Assembler
{
  public:
    explicit Assembler(const std::map<std::string, Addr> &predefined)
    {
        for (const auto &[k, v] : predefined)
            symbols_[k] = v;
    }

    Program run(const std::string &source);

  private:
    std::map<std::string, Addr> symbols_;
    Program prog_;
    int line_ = 0;

    [[noreturn]] void
    err(const char *msg, const std::string &detail = "") const
    {
        simError("asm line %d: %s%s%s", line_, msg,
                 detail.empty() ? "" : ": ", detail.c_str());
    }

    unsigned
    reg(const std::string &s) const
    {
        int r = parseRegister(s);
        if (r < 0)
            err("bad register", s);
        return static_cast<unsigned>(r);
    }

    /** Evaluates a number / symbol / sym+off / sym-off expression. */
    int64_t
    expr(const std::string &s) const
    {
        // Find a top-level + or - that is not a leading sign.
        for (size_t i = 1; i < s.size(); ++i) {
            if (s[i] == '+' || s[i] == '-') {
                int64_t lhs = expr(s.substr(0, i));
                int64_t rhs = expr(s.substr(i + 1));
                return s[i] == '+' ? lhs + rhs : lhs - rhs;
            }
        }
        std::string t = s;
        bool neg = false;
        if (!t.empty() && t[0] == '-') {
            neg = true;
            t = t.substr(1);
        }
        int64_t v;
        if (!t.empty() &&
            (std::isdigit(static_cast<unsigned char>(t[0])))) {
            try {
                v = static_cast<int64_t>(std::stoull(t, nullptr, 0));
            } catch (...) {
                err("bad number", s);
            }
        } else {
            auto it = symbols_.find(t);
            if (it == symbols_.end())
                err("unknown symbol", t);
            v = static_cast<int64_t>(it->second);
        }
        return neg ? -v : v;
    }

    int64_t
    branchOffset(const std::string &target, Addr pc, unsigned bits_avail)
        const
    {
        int64_t t = expr(target);
        int64_t delta = t - static_cast<int64_t>(pc);
        if (delta % 4 != 0)
            err("misaligned branch target", target);
        int64_t words = delta / 4;
        if (!fitsSigned(words, bits_avail))
            err("branch target out of range", target);
        return words;
    }

    void
    emit32(uint32_t word)
    {
        prog_.bytes.push_back(word & 0xff);
        prog_.bytes.push_back((word >> 8) & 0xff);
        prog_.bytes.push_back((word >> 16) & 0xff);
        prog_.bytes.push_back((word >> 24) & 0xff);
    }

    Addr here() const { return prog_.base + prog_.bytes.size(); }

    std::vector<Line> parse(const std::string &source, bool first_pass);
    void encodeLine(const Line &ln);
    size_t instructionSize(const Line &ln) const;
    void directive(const Line &ln, bool first_pass, Addr &cursor);
};

std::vector<Line>
Assembler::parse(const std::string &source, bool)
{
    std::vector<Line> out;
    size_t pos = 0;
    int number = 0;
    while (pos < source.size()) {
        size_t eol = source.find('\n', pos);
        if (eol == std::string::npos)
            eol = source.size();
        std::string text = source.substr(pos, eol - pos);
        pos = eol + 1;
        number++;

        // Strip comments.
        for (const char *c : {"#", "//", ";"}) {
            size_t p = text.find(c);
            if (p != std::string::npos)
                text = text.substr(0, p);
        }

        size_t i = 0;
        auto skip_ws = [&] {
            while (i < text.size() &&
                   std::isspace(static_cast<unsigned char>(text[i]))) {
                i++;
            }
        };

        // Labels (possibly several on one line).
        for (;;) {
            skip_ws();
            size_t j = i;
            while (j < text.size() &&
                   (std::isalnum(static_cast<unsigned char>(text[j])) ||
                    text[j] == '_' || text[j] == '.')) {
                j++;
            }
            if (j > i && j < text.size() && text[j] == ':') {
                Line lbl;
                lbl.number = number;
                lbl.mnemonic = ":label";
                lbl.operands.push_back(text.substr(i, j - i));
                out.push_back(lbl);
                i = j + 1;
            } else {
                break;
            }
        }
        skip_ws();
        if (i >= text.size())
            continue;

        Line ln;
        ln.number = number;
        size_t j = i;
        while (j < text.size() &&
               !std::isspace(static_cast<unsigned char>(text[j]))) {
            j++;
        }
        ln.mnemonic = text.substr(i, j - i);
        i = j;
        skip_ws();

        // Operands: comma-separated; strings kept intact.
        std::string rest = text.substr(i);
        if (ln.mnemonic == ".asciz") {
            ln.operands.push_back(rest);
        } else {
            std::string cur;
            for (char c : rest) {
                if (c == ',') {
                    ln.operands.push_back(cur);
                    cur.clear();
                } else if (!std::isspace(static_cast<unsigned char>(c))) {
                    cur += c;
                }
            }
            if (!cur.empty())
                ln.operands.push_back(cur);
        }
        out.push_back(ln);
    }
    return out;
}

size_t
Assembler::instructionSize(const Line &ln) const
{
    const std::string &m = ln.mnemonic;
    if (m == "li" || m == "la")
        return 8;   // Always lui+ori so both passes agree.
    if (m == "call")
        return 4;
    return 4;
}

void
Assembler::directive(const Line &ln, bool first_pass, Addr &cursor)
{
    const std::string &m = ln.mnemonic;
    auto need = [&](size_t n) {
        if (ln.operands.size() != n)
            err("wrong operand count for directive", m);
    };

    if (m == ".org") {
        need(1);
        Addr a = static_cast<Addr>(expr(ln.operands[0]));
        if (!prog_.bytes.empty() || cursor != prog_.base)
            err(".org must appear before any output");
        prog_.base = a;
        cursor = a;
    } else if (m == ".equ") {
        need(2);
        if (first_pass)
            symbols_[ln.operands[0]] =
                static_cast<Addr>(expr(ln.operands[1]));
    } else if (m == ".word") {
        for (const std::string &op : ln.operands) {
            if (first_pass) {
                cursor += 4;
            } else {
                emit32(static_cast<uint32_t>(expr(op)));
            }
        }
        if (!first_pass)
            cursor += 4 * ln.operands.size();
    } else if (m == ".space") {
        need(1);
        size_t n = static_cast<size_t>(expr(ln.operands[0]));
        if (!first_pass)
            prog_.bytes.insert(prog_.bytes.end(), n, 0);
        cursor += n;
    } else if (m == ".align") {
        need(1);
        uint64_t a = static_cast<uint64_t>(expr(ln.operands[0]));
        Addr target = roundUp(cursor, a);
        if (!first_pass)
            prog_.bytes.insert(prog_.bytes.end(), target - cursor, 0);
        cursor = target;
    } else if (m == ".asciz") {
        need(1);
        std::string raw = ln.operands[0];
        size_t q1 = raw.find('"');
        size_t q2 = raw.rfind('"');
        if (q1 == std::string::npos || q2 <= q1)
            err(".asciz needs a quoted string");
        std::string s;
        for (size_t i = q1 + 1; i < q2; ++i) {
            if (raw[i] == '\\' && i + 1 < q2) {
                i++;
                s += raw[i] == 'n' ? '\n' : raw[i] == 't' ? '\t' : raw[i];
            } else {
                s += raw[i];
            }
        }
        if (!first_pass) {
            for (char c : s)
                prog_.bytes.push_back(static_cast<uint8_t>(c));
            prog_.bytes.push_back(0);
        }
        cursor += s.size() + 1;
    } else {
        err("unknown directive", m);
    }
}

void
Assembler::encodeLine(const Line &ln)
{
    const std::string &m = ln.mnemonic;
    const std::vector<std::string> &ops = ln.operands;
    Addr pc = here();

    auto need = [&](size_t n) {
        if (ops.size() != n)
            err("wrong operand count", m);
    };
    auto imm16s = [&](const std::string &s) {
        int64_t v = expr(s);
        if (!fitsSigned(v, 16))
            err("immediate out of signed 16-bit range", s);
        return static_cast<uint32_t>(v);
    };
    auto imm16u = [&](const std::string &s) {
        int64_t v = expr(s);
        if (v < 0 || !fitsUnsigned(static_cast<uint64_t>(v), 16))
            err("immediate out of unsigned 16-bit range", s);
        return static_cast<uint32_t>(v);
    };
    /** Splits "off(reg)" into offset expression and register. */
    auto mem_operand = [&](const std::string &s, unsigned &r) {
        size_t lp = s.find('(');
        size_t rp = s.rfind(')');
        if (lp == std::string::npos || rp == std::string::npos || rp < lp)
            err("expected off(reg) operand", s);
        r = reg(s.substr(lp + 1, rp - lp - 1));
        std::string off = s.substr(0, lp);
        return off.empty() ? uint32_t{0} : imm16s(off);
    };
    auto csr_num = [&](const std::string &s) -> uint32_t {
        auto it = kCsrNames.find(s);
        if (it != kCsrNames.end())
            return it->second;
        return static_cast<uint32_t>(expr(s));
    };

    static const std::map<std::string, uint32_t> r_ops = {
        {"add", kFnAdd}, {"sub", kFnSub}, {"and", kFnAnd}, {"or", kFnOr},
        {"xor", kFnXor}, {"sll", kFnSll}, {"srl", kFnSrl}, {"sra", kFnSra},
        {"slt", kFnSlt}, {"sltu", kFnSltu}, {"mul", kFnMul},
        {"mulh", kFnMulh}, {"mulhu", kFnMulhu}, {"div", kFnDiv},
        {"divu", kFnDivu}, {"rem", kFnRem}, {"remu", kFnRemu},
    };
    static const std::map<std::string, uint32_t> i_ops = {
        {"addi", kOpAddI}, {"andi", kOpAndI}, {"ori", kOpOrI},
        {"xori", kOpXorI}, {"slti", kOpSltI}, {"sltui", kOpSltuI},
        {"slli", kOpSllI}, {"srli", kOpSrlI}, {"srai", kOpSraI},
    };
    static const std::map<std::string, uint32_t> load_ops = {
        {"lb", kOpLb}, {"lbu", kOpLbu}, {"lh", kOpLh}, {"lhu", kOpLhu},
        {"lw", kOpLw},
    };
    static const std::map<std::string, uint32_t> store_ops = {
        {"sb", kOpSb}, {"sh", kOpSh}, {"sw", kOpSw},
    };
    static const std::map<std::string, uint32_t> branch_ops = {
        {"beq", kOpBeq}, {"bne", kOpBne}, {"blt", kOpBlt},
        {"bge", kOpBge}, {"bltu", kOpBltu}, {"bgeu", kOpBgeu},
    };
    static const std::map<std::string, uint32_t> sys_ops = {
        {"ecall", kSysECall}, {"ebreak", kSysEBreak}, {"mret", kSysMRet},
        {"wfi", kSysWfi}, {"fence", kSysFence}, {"sfence", kSysSFence},
        {"halt", kSysHalt},
    };

    if (auto it = r_ops.find(m); it != r_ops.end()) {
        need(3);
        emit32(encR(it->second, reg(ops[0]), reg(ops[1]), reg(ops[2])));
    } else if (auto it = i_ops.find(m); it != i_ops.end()) {
        need(3);
        bool logical = m == "andi" || m == "ori" || m == "xori" ||
                       m == "slli" || m == "srli" || m == "srai";
        uint32_t imm = logical ? imm16u(ops[2]) : imm16s(ops[2]);
        emit32(encI(it->second, reg(ops[0]), reg(ops[1]), imm));
    } else if (auto it = load_ops.find(m); it != load_ops.end()) {
        need(2);
        unsigned base;
        uint32_t off = mem_operand(ops[1], base);
        emit32(encI(it->second, reg(ops[0]), base, off));
    } else if (auto it = store_ops.find(m); it != store_ops.end()) {
        need(2);
        unsigned base;
        uint32_t off = mem_operand(ops[1], base);
        emit32(encS(it->second, reg(ops[0]), base, off));
    } else if (auto it = branch_ops.find(m); it != branch_ops.end()) {
        need(3);
        int64_t words = branchOffset(ops[2], pc, 16);
        emit32(encB(it->second, reg(ops[0]), reg(ops[1]),
                    static_cast<uint32_t>(words)));
    } else if (auto it = sys_ops.find(m); it != sys_ops.end()) {
        need(0);
        emit32(encSys(it->second));
    } else if (m == "lui") {
        need(2);
        emit32(encI(kOpLui, reg(ops[0]), 0, imm16u(ops[1])));
    } else if (m == "auipc") {
        need(2);
        emit32(encI(kOpAuipc, reg(ops[0]), 0, imm16u(ops[1])));
    } else if (m == "jal") {
        // jal rd, target  |  jal target  (rd = ra)
        unsigned rd = ops.size() == 2 ? reg(ops[0]) : 1;
        const std::string &target = ops.size() == 2 ? ops[1] : ops[0];
        if (ops.size() != 1 && ops.size() != 2)
            err("wrong operand count", m);
        int64_t words = branchOffset(target, pc, 21);
        emit32(encJ(rd, static_cast<uint32_t>(words)));
    } else if (m == "jalr") {
        need(2);
        unsigned base;
        uint32_t off = mem_operand(ops[1], base);
        emit32(encI(kOpJalr, reg(ops[0]), base, off));
    } else if (m == "csrrw" || m == "csrrs" || m == "csrrc") {
        need(3);
        uint32_t opc = m == "csrrw" ? kOpCsrRw
                     : m == "csrrs" ? kOpCsrRs : kOpCsrRc;
        emit32(encCsr(opc, reg(ops[0]), reg(ops[2]), csr_num(ops[1])));
    }
    // ---- pseudo-instructions ----
    else if (m == "li" || m == "la") {
        need(2);
        uint32_t v = static_cast<uint32_t>(expr(ops[1]));
        unsigned rd = reg(ops[0]);
        emit32(encI(kOpLui, rd, 0, v >> 16));
        emit32(encI(kOpOrI, rd, rd, v & 0xffff));
    } else if (m == "mv") {
        need(2);
        emit32(encI(kOpAddI, reg(ops[0]), reg(ops[1]), 0));
    } else if (m == "nop") {
        need(0);
        emit32(encI(kOpAddI, 0, 0, 0));
    } else if (m == "j") {
        need(1);
        emit32(encJ(0, static_cast<uint32_t>(branchOffset(ops[0], pc, 21))));
    } else if (m == "call") {
        need(1);
        emit32(encJ(1, static_cast<uint32_t>(branchOffset(ops[0], pc, 21))));
    } else if (m == "jr") {
        need(1);
        emit32(encI(kOpJalr, 0, reg(ops[0]), 0));
    } else if (m == "ret") {
        need(0);
        emit32(encI(kOpJalr, 0, 1, 0));
    } else if (m == "beqz" || m == "bnez") {
        need(2);
        int64_t words = branchOffset(ops[1], pc, 16);
        uint32_t opc = m == "beqz" ? kOpBeq : kOpBne;
        emit32(encB(opc, reg(ops[0]), 0, static_cast<uint32_t>(words)));
    } else if (m == "csrr") {
        need(2);
        emit32(encCsr(kOpCsrRs, reg(ops[0]), 0, csr_num(ops[1])));
    } else if (m == "csrw") {
        need(2);
        emit32(encCsr(kOpCsrRw, 0, reg(ops[1]), csr_num(ops[0])));
    } else if (m == "csrs") {
        need(2);
        emit32(encCsr(kOpCsrRs, 0, reg(ops[1]), csr_num(ops[0])));
    } else if (m == "csrc") {
        need(2);
        emit32(encCsr(kOpCsrRc, 0, reg(ops[1]), csr_num(ops[0])));
    } else {
        err("unknown mnemonic", m);
    }
}

Program
Assembler::run(const std::string &source)
{
    std::vector<Line> lines = parse(source, true);

    // Pass 1: compute label addresses.
    Addr cursor = prog_.base;
    for (const Line &ln : lines) {
        line_ = ln.number;
        if (ln.mnemonic == ":label") {
            symbols_[ln.operands[0]] = cursor;
        } else if (ln.mnemonic[0] == '.') {
            directive(ln, true, cursor);
        } else {
            cursor += instructionSize(ln);
        }
    }

    // Pass 2: encode.
    cursor = prog_.base;
    for (const Line &ln : lines) {
        line_ = ln.number;
        if (ln.mnemonic == ":label")
            continue;
        cursor = here();
        if (ln.mnemonic[0] == '.') {
            directive(ln, false, cursor);
        } else {
            encodeLine(ln);
        }
    }

    prog_.symbols = symbols_;
    return prog_;
}

} // namespace

Program
assemble(const std::string &source,
         const std::map<std::string, Addr> &predefined)
{
    Assembler as(predefined);
    return as.run(source);
}

} // namespace bifsim::sa32
