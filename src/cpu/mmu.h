#ifndef BIFSIM_CPU_MMU_H
#define BIFSIM_CPU_MMU_H

/**
 * @file
 * The CPU's memory management unit: a two-level page-table walker with
 * a direct-mapped TLB, analogous to the paper's full-system CPU MMU.
 *
 * Paging layout (satp bit 31 enables translation; bits [19:0] are the
 * physical page number of the root table):
 *
 *   VA[31:22] -> level-1 index (1024 entries)
 *   VA[21:12] -> level-0 index (1024 entries)
 *   VA[11:0]  -> page offset
 *
 * PTE (32-bit): bit0 V, bit1 R, bit2 W, bit3 X, bit4 U; PPN in [29:10].
 * A level-1 entry with any of R/W/X set is a 4 MiB megapage leaf.
 */

#include <cstdint>

#include "cpu/sa32.h"
#include "mem/bus.h"

namespace bifsim::sa32 {

/** PTE permission bits. */
enum PteBits : uint32_t
{
    kPteValid = 1u << 0,
    kPteRead  = 1u << 1,
    kPteWrite = 1u << 2,
    kPteExec  = 1u << 3,
    kPteUser  = 1u << 4,
};

/** Kind of access being translated. */
enum class AccessType { Fetch, Load, Store };

/** Result of a translation attempt. */
struct TranslateResult
{
    bool ok = false;
    Addr pa = 0;
    TrapCause cause = kCauseLoadPageFault;
};

/** MMU statistics. */
struct MmuStats
{
    uint64_t tlbHits = 0;
    uint64_t tlbMisses = 0;
    uint64_t pageWalks = 0;
    uint64_t faults = 0;
};

/**
 * Page-table walker plus TLB for the simulated CPU.
 *
 * Translation applies only in user mode with satp enabled; machine mode
 * accesses are physical (the mini guest OS runs in machine mode, user
 * applications behind paging).
 */
class CpuMmu
{
  public:
    explicit CpuMmu(Bus &bus) : bus_(bus) { flushTlb(); }

    /** Translates @p va for @p type at privilege @p priv under @p satp. */
    TranslateResult translate(Addr va, AccessType type, Priv priv,
                              uint32_t satp);

    /** Invalidates all TLB entries (satp writes, sfence) and bumps the
     *  translation epoch so consumers that cached VA->PA bindings (the
     *  DBT tier's block-chain links) can invalidate lazily. */
    void flushTlb();

    /**
     * Monotonic translation-regime epoch.  Incremented by every
     * flushTlb(); anything derived from a VA->PA mapping (chain links,
     * fetched-target bindings) records the epoch it observed and is
     * stale the moment the values differ.  Same lazy-shootdown pattern
     * as the GPU MMU's epoch (DESIGN.md §5b) and the L2 shader cache
     * (§5f).
     */
    uint64_t epoch() const { return epoch_; }

    /** Access statistics. */
    const MmuStats &stats() const { return stats_; }

  private:
    static constexpr size_t kTlbEntries = 64;

    struct TlbEntry
    {
        bool valid = false;
        uint32_t vpn = 0;      ///< VA >> 12.
        uint32_t ppn = 0;      ///< PA >> 12.
        uint32_t perms = 0;    ///< PTE permission bits.
    };

    Bus &bus_;
    TlbEntry tlb_[kTlbEntries];
    MmuStats stats_;
    uint64_t epoch_ = 1;   ///< Bumped on every flushTlb().

    static TrapCause faultCause(AccessType type);
};

} // namespace bifsim::sa32

#endif // BIFSIM_CPU_MMU_H
