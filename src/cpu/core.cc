#include "cpu/core.h"

#include <limits>

#include "common/bits.h"
#include "common/logging.h"
#include "cpu/dbt.h"

namespace bifsim::sa32 {

Core::Core(Bus &bus, CoreConfig cfg) : bus_(bus), cfg_(cfg), mmu_(bus)
{
    if (usesDbt())
        dbt_ = std::make_unique<Dbt>(*this);
    reset();
}

Core::~Core() = default;

void
Core::reset()
{
    for (uint32_t &r : regs_)
        r = 0;
    pc_ = cfg_.resetPc;
    priv_ = Priv::Machine;
    waiting_ = false;
    mstatus_ = mie_ = mtvec_ = mscratch_ = 0;
    mip_.store(0);
    mepc_ = mcause_ = mtval_ = satp_ = 0;
    flushCodeCache();
    mmu_.flushTlb();
}

void
Core::saveState(snapshot::ChunkWriter &w) const
{
    for (uint32_t r : regs_)
        w.u32(r);
    w.u64(pc_);
    w.u8(static_cast<uint8_t>(priv_));
    w.u8(waiting_ ? 1 : 0);
    w.u32(mstatus_);
    w.u32(mie_);
    w.u32(mip_.load(std::memory_order_relaxed));
    w.u32(mtvec_);
    w.u32(mscratch_);
    w.u32(mepc_);
    w.u32(mcause_);
    w.u32(mtval_);
    w.u32(satp_);
    w.u64(stats_.instret);
    w.u64(stats_.blocksDecoded);
    w.u64(stats_.blockHits);
    w.u64(stats_.traps);
    w.u64(stats_.interrupts);
    w.u64(stats_.cacheFlushes);
    w.u64(stats_.dbtBlocks);
    w.u64(stats_.dbtChainLinks);
    w.u64(stats_.dbtChainFollows);
    w.u64(stats_.dbtChainBreaks);
    w.u64(stats_.dbtRetires);
}

void
Core::restoreState(snapshot::ChunkReader &r)
{
    // Parse everything into locals first so a truncated chunk cannot
    // leave the core half-restored.
    uint32_t regs[kNumRegs];
    for (uint32_t &reg : regs)
        reg = r.u32();
    Addr pc = r.u64();
    uint8_t priv_raw = r.u8();
    if (priv_raw != static_cast<uint8_t>(Priv::User) &&
        priv_raw != static_cast<uint8_t>(Priv::Machine))
        r.fail(strfmt("invalid privilege level %u", priv_raw));
    bool waiting = r.u8() != 0;
    uint32_t mstatus = r.u32();
    uint32_t mie = r.u32();
    uint32_t mip = r.u32();
    uint32_t mtvec = r.u32();
    uint32_t mscratch = r.u32();
    uint32_t mepc = r.u32();
    uint32_t mcause = r.u32();
    uint32_t mtval = r.u32();
    uint32_t satp = r.u32();
    CoreStats stats;
    stats.instret = r.u64();
    stats.blocksDecoded = r.u64();
    stats.blockHits = r.u64();
    stats.traps = r.u64();
    stats.interrupts = r.u64();
    stats.cacheFlushes = r.u64();
    stats.dbtBlocks = r.u64();
    stats.dbtChainLinks = r.u64();
    stats.dbtChainFollows = r.u64();
    stats.dbtChainBreaks = r.u64();
    stats.dbtRetires = r.u64();
    r.expectEnd();

    for (unsigned i = 0; i < kNumRegs; ++i)
        regs_[i] = regs[i];
    regs_[0] = 0;
    pc_ = pc;
    priv_ = static_cast<Priv>(priv_raw);
    waiting_ = waiting;
    mstatus_ = mstatus;
    mie_ = mie;
    mip_.store(mip, std::memory_order_relaxed);
    mtvec_ = mtvec;
    mscratch_ = mscratch;
    mepc_ = mepc;
    mcause_ = mcause;
    mtval_ = mtval;
    satp_ = satp;
    flushCodeCache();
    mmu_.flushTlb();
    stats_ = stats;   // After the flush so its counter bump is discarded.
}

void
Core::flushCodeCache()
{
    if (!blocks_.empty() || (dbt_ && dbt_->hasTranslations()))
        stats_.cacheFlushes++;
    if (!blocks_.empty()) {
        // Defer destruction: a store inside a decoded block can trigger
        // this flush while runInterp() is still iterating that block's
        // insts.  The retired maps are drained at the next block
        // boundary.
        retired_.push_back(std::move(blocks_));
        blocks_.clear();
    }
    codePages_.clear();
    if (dbt_)
        dbt_->invalidateAll();
}

uint32_t
Core::readCsr(uint32_t num) const
{
    switch (num) {
      case kCsrSatp:     return satp_;
      case kCsrMStatus:  return mstatus_;
      case kCsrMIe:      return mie_;
      case kCsrMTvec:    return mtvec_;
      case kCsrMScratch: return mscratch_;
      case kCsrMEpc:     return mepc_;
      case kCsrMCause:   return mcause_;
      case kCsrMTval:    return mtval_;
      case kCsrMIp:      return mip_.load(std::memory_order_relaxed);
      case kCsrMCycle:   return static_cast<uint32_t>(stats_.instret);
      case kCsrMInstRet: return static_cast<uint32_t>(stats_.instret);
      case kCsrMHartId:  return cfg_.hartId;
      default:           return 0;
    }
}

void
Core::writeCsr(uint32_t num, uint32_t value)
{
    switch (num) {
      case kCsrSatp:
        satp_ = value;
        mmu_.flushTlb();
        break;
      case kCsrMStatus:  mstatus_ = value; break;
      case kCsrMIe:      mie_ = value; break;
      case kCsrMTvec:    mtvec_ = value & ~3u; break;
      case kCsrMScratch: mscratch_ = value; break;
      case kCsrMEpc:     mepc_ = value & ~1u; break;
      case kCsrMCause:   mcause_ = value; break;
      case kCsrMTval:    mtval_ = value; break;
      case kCsrMIp:
        // External and timer pending bits are level-driven by devices;
        // software writes to them are ignored.
        break;
      default:
        break;
    }
}

void
Core::setIrqLine(IrqNum irq, bool level)
{
    uint32_t mask = 1u << irq;
    if (level)
        mip_.fetch_or(mask, std::memory_order_release);
    else
        mip_.fetch_and(~mask, std::memory_order_release);
}

bool
Core::wfiWakePending() const
{
    return (mip_.load(std::memory_order_acquire) & mie_) != 0;
}

bool
Core::interruptPending(uint32_t &cause) const
{
    uint32_t pending = mip_.load(std::memory_order_acquire) & mie_;
    if (!pending)
        return false;
    bool enabled = priv_ == Priv::User || (mstatus_ & kMStatusMie);
    if (!enabled)
        return false;
    if (pending & (1u << kIrqExternal))
        cause = kCauseInterrupt | kIrqExternal;
    else if (pending & (1u << kIrqTimer))
        cause = kCauseInterrupt | kIrqTimer;
    else
        return false;
    return true;
}

void
Core::trap(uint32_t cause, uint32_t tval, Addr epc)
{
    if (cause & kCauseInterrupt)
        stats_.interrupts++;
    else
        stats_.traps++;
    mepc_ = static_cast<uint32_t>(epc);
    mcause_ = cause;
    mtval_ = tval;
    // Save and mask the global interrupt enable, remember privilege.
    uint32_t mie_bit = (mstatus_ & kMStatusMie) ? 1u : 0u;
    mstatus_ &= ~(kMStatusMie | kMStatusMpie | kMStatusMppMask);
    mstatus_ |= mie_bit << 7;
    mstatus_ |= static_cast<uint32_t>(priv_) << kMStatusMppShift;
    priv_ = Priv::Machine;
    pc_ = mtvec_;
    waiting_ = false;
}

bool
Core::memLoad(Addr va, unsigned size, bool sign_extend, uint32_t &out,
              Addr cur_pc)
{
    if (!isAligned(va, size)) {
        trap(kCauseLoadMisaligned, static_cast<uint32_t>(va), cur_pc);
        return false;
    }
    TranslateResult tr = mmu_.translate(va, AccessType::Load, priv_, satp_);
    if (!tr.ok) {
        trap(tr.cause, static_cast<uint32_t>(va), cur_pc);
        return false;
    }
    uint64_t raw = 0;
    if (bus_.read(tr.pa, size, raw) != BusResult::Ok) {
        trap(kCauseLoadFault, static_cast<uint32_t>(va), cur_pc);
        return false;
    }
    if (sign_extend)
        out = static_cast<uint32_t>(sext(raw, size * 8));
    else
        out = static_cast<uint32_t>(raw);
    return true;
}

bool
Core::memStore(Addr va, unsigned size, uint32_t value, Addr cur_pc)
{
    if (!isAligned(va, size)) {
        trap(kCauseStoreMisaligned, static_cast<uint32_t>(va), cur_pc);
        return false;
    }
    TranslateResult tr = mmu_.translate(va, AccessType::Store, priv_, satp_);
    if (!tr.ok) {
        trap(tr.cause, static_cast<uint32_t>(va), cur_pc);
        return false;
    }
    if (bus_.write(tr.pa, size, value) != BusResult::Ok) {
        trap(kCauseStoreFault, static_cast<uint32_t>(va), cur_pc);
        return false;
    }
    // Invalidate decoded code if the guest writes a page we decoded from.
    if (!codePages_.empty() &&
        codePages_.count(static_cast<uint32_t>(tr.pa >> 12))) {
        flushCodeCache();
    }
    return true;
}

const Core::Block *
Core::fetchBlock(Addr pa)
{
    if (cfg_.blockCache) {
        auto it = blocks_.find(pa);
        if (it != blocks_.end()) {
            stats_.blockHits++;
            return &it->second;
        }
    }

    Block blk;
    DecodedInst insts[kMaxBlockInsts];
    size_t n = decodeBlock(bus_, pa, insts);
    blk.insts.assign(insts, insts + n);

    stats_.blocksDecoded++;
    if (!cfg_.blockCache) {
        scratch_ = std::move(blk);
        return &scratch_;
    }
    codePages_.insert(static_cast<uint32_t>(pa >> 12));
    auto [it, ok] = blocks_.emplace(pa, std::move(blk));
    (void)ok;
    return &it->second;
}

Core::ExecResult
Core::execute(const DecodedInst &d, Addr cur_pc)
{
    auto rs1 = [&] { return regs_[d.rs1]; };
    auto rs2 = [&] { return regs_[d.rs2]; };
    auto wr = [&](uint32_t v) { if (d.rd) regs_[d.rd] = v; };
    auto branch = [&](bool taken) {
        if (taken) {
            pc_ = cur_pc + static_cast<int64_t>(d.imm) * 4;
            return ExecResult::Redirect;
        }
        return ExecResult::Next;
    };

    switch (d.op) {
      case Op::Add:  wr(rs1() + rs2()); return ExecResult::Next;
      case Op::Sub:  wr(rs1() - rs2()); return ExecResult::Next;
      case Op::And:  wr(rs1() & rs2()); return ExecResult::Next;
      case Op::Or:   wr(rs1() | rs2()); return ExecResult::Next;
      case Op::Xor:  wr(rs1() ^ rs2()); return ExecResult::Next;
      case Op::Sll:  wr(rs1() << (rs2() & 31)); return ExecResult::Next;
      case Op::Srl:  wr(rs1() >> (rs2() & 31)); return ExecResult::Next;
      case Op::Sra:
        wr(static_cast<uint32_t>(static_cast<int32_t>(rs1()) >>
                                 (rs2() & 31)));
        return ExecResult::Next;
      case Op::Slt:
        wr(static_cast<int32_t>(rs1()) < static_cast<int32_t>(rs2()));
        return ExecResult::Next;
      case Op::Sltu: wr(rs1() < rs2()); return ExecResult::Next;
      case Op::Mul:  wr(rs1() * rs2()); return ExecResult::Next;
      case Op::Mulh: {
        int64_t p = static_cast<int64_t>(static_cast<int32_t>(rs1())) *
                    static_cast<int64_t>(static_cast<int32_t>(rs2()));
        wr(static_cast<uint32_t>(static_cast<uint64_t>(p) >> 32));
        return ExecResult::Next;
      }
      case Op::Mulhu: {
        uint64_t p = static_cast<uint64_t>(rs1()) * rs2();
        wr(static_cast<uint32_t>(p >> 32));
        return ExecResult::Next;
      }
      case Op::Div: {
        int32_t a = rs1(), b = rs2();
        if (b == 0)
            wr(0xffffffffu);
        else if (a == std::numeric_limits<int32_t>::min() && b == -1)
            wr(static_cast<uint32_t>(a));
        else
            wr(static_cast<uint32_t>(a / b));
        return ExecResult::Next;
      }
      case Op::Divu: wr(rs2() ? rs1() / rs2() : 0xffffffffu);
        return ExecResult::Next;
      case Op::Rem: {
        int32_t a = rs1(), b = rs2();
        if (b == 0)
            wr(static_cast<uint32_t>(a));
        else if (a == std::numeric_limits<int32_t>::min() && b == -1)
            wr(0);
        else
            wr(static_cast<uint32_t>(a % b));
        return ExecResult::Next;
      }
      case Op::Remu: wr(rs2() ? rs1() % rs2() : rs1());
        return ExecResult::Next;

      case Op::AddI:  wr(rs1() + static_cast<uint32_t>(d.imm));
        return ExecResult::Next;
      case Op::AndI:  wr(rs1() & static_cast<uint32_t>(d.imm));
        return ExecResult::Next;
      case Op::OrI:   wr(rs1() | static_cast<uint32_t>(d.imm));
        return ExecResult::Next;
      case Op::XorI:  wr(rs1() ^ static_cast<uint32_t>(d.imm));
        return ExecResult::Next;
      case Op::SltI:
        wr(static_cast<int32_t>(rs1()) < d.imm);
        return ExecResult::Next;
      case Op::SltuI:
        wr(rs1() < static_cast<uint32_t>(d.imm));
        return ExecResult::Next;
      case Op::SllI:  wr(rs1() << d.imm); return ExecResult::Next;
      case Op::SrlI:  wr(rs1() >> d.imm); return ExecResult::Next;
      case Op::SraI:
        wr(static_cast<uint32_t>(static_cast<int32_t>(rs1()) >> d.imm));
        return ExecResult::Next;
      case Op::Lui:
        wr(static_cast<uint32_t>(d.imm) << 16);
        return ExecResult::Next;
      case Op::Auipc:
        wr(static_cast<uint32_t>(cur_pc) +
           (static_cast<uint32_t>(d.imm) << 16));
        return ExecResult::Next;

      case Op::Lb: case Op::Lbu: case Op::Lh: case Op::Lhu: case Op::Lw: {
        unsigned size = d.op == Op::Lw ? 4
                      : (d.op == Op::Lh || d.op == Op::Lhu) ? 2 : 1;
        bool sign = d.op == Op::Lb || d.op == Op::Lh;
        uint32_t v = 0;
        if (!memLoad(rs1() + static_cast<uint32_t>(d.imm), size, sign, v,
                     cur_pc)) {
            return ExecResult::Trap;
        }
        wr(v);
        return ExecResult::Next;
      }
      case Op::Sb: case Op::Sh: case Op::Sw: {
        unsigned size = d.op == Op::Sw ? 4 : d.op == Op::Sh ? 2 : 1;
        if (!memStore(rs1() + static_cast<uint32_t>(d.imm), size, rs2(),
                      cur_pc)) {
            return ExecResult::Trap;
        }
        return ExecResult::Next;
      }

      case Op::Beq:  return branch(rs1() == rs2());
      case Op::Bne:  return branch(rs1() != rs2());
      case Op::Blt:
        return branch(static_cast<int32_t>(rs1()) <
                      static_cast<int32_t>(rs2()));
      case Op::Bge:
        return branch(static_cast<int32_t>(rs1()) >=
                      static_cast<int32_t>(rs2()));
      case Op::Bltu: return branch(rs1() < rs2());
      case Op::Bgeu: return branch(rs1() >= rs2());

      case Op::Jal:
        wr(static_cast<uint32_t>(cur_pc) + 4);
        pc_ = cur_pc + static_cast<int64_t>(d.imm) * 4;
        return ExecResult::Redirect;
      case Op::Jalr: {
        uint32_t target = (rs1() + static_cast<uint32_t>(d.imm)) & ~1u;
        wr(static_cast<uint32_t>(cur_pc) + 4);
        pc_ = target;
        return ExecResult::Redirect;
      }

      case Op::ECall:
        trap(priv_ == Priv::User ? kCauseECallU : kCauseECallM, 0, cur_pc);
        return ExecResult::Trap;
      case Op::EBreak:
        if (mtvec_ == 0) {
            pc_ = cur_pc;
            return ExecResult::EBreak;
        }
        trap(kCauseBreakpoint, static_cast<uint32_t>(cur_pc), cur_pc);
        return ExecResult::Trap;
      case Op::MRet: {
        uint32_t mpp = (mstatus_ & kMStatusMppMask) >> kMStatusMppShift;
        priv_ = mpp == 3 ? Priv::Machine : Priv::User;
        if (mstatus_ & kMStatusMpie)
            mstatus_ |= kMStatusMie;
        else
            mstatus_ &= ~kMStatusMie;
        mstatus_ |= kMStatusMpie;
        mstatus_ &= ~kMStatusMppMask;
        pc_ = mepc_;
        return ExecResult::Redirect;
      }
      case Op::Wfi: {
        if (wfiWakePending())
            return ExecResult::Next;
        pc_ = cur_pc + 4;
        waiting_ = true;
        return ExecResult::Wfi;
      }
      case Op::Fence:
        flushCodeCache();
        return ExecResult::Next;
      case Op::SFence:
        mmu_.flushTlb();
        return ExecResult::Next;
      case Op::Halt:
        pc_ = cur_pc + 4;
        return ExecResult::Halt;

      case Op::CsrRw: case Op::CsrRs: case Op::CsrRc: {
        uint32_t csr = static_cast<uint32_t>(d.imm);
        if (priv_ != Priv::Machine && csr != kCsrMCycle &&
            csr != kCsrMInstRet) {
            trap(kCauseIllegalInst, d.raw, cur_pc);
            return ExecResult::Trap;
        }
        uint32_t old = readCsr(csr);
        if (d.op == Op::CsrRw) {
            writeCsr(csr, rs1());
        } else if (d.rs1 != 0) {
            uint32_t v = d.op == Op::CsrRs ? (old | rs1()) : (old & ~rs1());
            writeCsr(csr, v);
        }
        wr(old);
        return ExecResult::Next;
      }

      case Op::Illegal:
      default:
        trap(kCauseIllegalInst, d.raw, cur_pc);
        return ExecResult::Trap;
    }
}

StopReason
Core::run(uint64_t max_insts)
{
    if (dbt_)
        return dbt_->run(max_insts);
    return runInterp(max_insts);
}

StopReason
Core::runInterp(uint64_t max_insts)
{
    uint64_t budget = max_insts;
    while (budget > 0) {
        uint32_t icause = 0;
        if (interruptPending(icause)) {
            waiting_ = false;
            trap(icause, 0, pc_);
        }
        if (waiting_) {
            // Pending-but-masked interrupts end the stall without
            // trapping; execution resumes after the wfi.
            if (wfiWakePending())
                waiting_ = false;
            else
                return StopReason::Wfi;
        }

        TranslateResult tr =
            mmu_.translate(pc_, AccessType::Fetch, priv_, satp_);
        if (!tr.ok) {
            trap(tr.cause, static_cast<uint32_t>(pc_), pc_);
            continue;
        }

        const Block *blk = fetchBlock(tr.pa);
        Addr cur_pc = pc_;
        bool redirected = false;
        for (const DecodedInst &inst : blk->insts) {
            stats_.instret++;
            budget = budget > 0 ? budget - 1 : 0;
            ExecResult r = execute(inst, cur_pc);
            if (r == ExecResult::Next) {
                cur_pc += 4;
                continue;
            }
            redirected = true;
            if (r == ExecResult::Wfi)
                return budget > 0 ? StopReason::Wfi : StopReason::MaxInsts;
            if (r == ExecResult::Halt)
                return StopReason::Halt;
            if (r == ExecResult::EBreak)
                return StopReason::EBreak;
            break;   // Redirect or Trap: pc_ already updated.
        }
        if (!redirected)
            pc_ = cur_pc;   // Block fell through (page end / length cap).
        if (!retired_.empty())
            retired_.clear();   // blk is dead: safe point for flushed blocks.
    }
    return StopReason::MaxInsts;
}

} // namespace bifsim::sa32
