#ifndef BIFSIM_CPU_DBT_H
#define BIFSIM_CPU_DBT_H

/**
 * @file
 * The SA32 dynamic-binary-translation tier (DESIGN.md §5g).
 *
 * Each decoded basic block is lowered once into *threaded code*: a
 * flat array of ThreadedOps, each carrying a pre-resolved handler
 * pointer plus the pre-extracted operands (register numbers, sign- or
 * zero-extended immediate, PC offset).  Execution is an indirect-goto
 * dispatch loop — handler bodies jump straight to the next op's
 * handler with no per-instruction re-decode and no switch on opcode.
 * Translated blocks chain directly on their static edges (fall-
 * through, unconditional jump, and both arms of conditional branches),
 * so hot guest loops run block-to-block without returning to the
 * dispatcher: no hash lookup and no fetch translation on the hot path.
 *
 * Invalidation protocol (all lazy, all keyed to existing machinery):
 *
 *  - Translations are keyed by *physical* address, so they survive
 *    TLB flushes; only chain links bind a VA->PA resolution.  Every
 *    link stamps the CpuMmu epoch it observed; CpuMmu::flushTlb()
 *    (satp writes, sfence, snapshot restore) bumps the epoch and the
 *    stale links fail their stamp check at the next follow.
 *  - Core::flushCodeCache() (fence, self-modifying-code stores into
 *    translated pages, snapshot restore, reset) retires *every*
 *    translation: blocks move to a graveyard that keeps their ops
 *    arrays alive until the dispatcher's next safe point, so a store
 *    that invalidates the currently-executing block cannot free the
 *    code under its own feet.  A flush generation counter guards
 *    chain-follows and pending links across the retire.
 *  - A translation records the flush generation it started from; a
 *    flush landing mid-translate kills the in-flight install and the
 *    block is rebuilt from fresh guest bytes (the PR 6 L2 shader-cache
 *    install-epoch pattern).
 *
 * The interpreter tier (CoreConfig::dbt = false) remains the lockstep
 * differential oracle: both tiers execute identical block shapes
 * (sa32::decodeBlock) and check budget/interrupts at identical block
 * boundaries, so architectural state sequences match instruction for
 * instruction.
 *
 * Threading: a Dbt belongs to exactly one Core and inherits its
 * threading contract — all methods are called from the single
 * simulation thread that owns the Core; nothing here is touched by
 * device threads (they only drive Core::setIrqLine, which remains an
 * atomic the dispatch loop polls at block boundaries).  No handler,
 * translation, or invalidation path takes a lock, so nothing here
 * carries a sim::Mutex or GUARDED_BY annotation (DESIGN.md §5i:
 * single-owner structures are exempt by contract, not by accident).
 */

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cpu/sa32.h"

namespace bifsim::sa32 {

class Core;
enum class StopReason;

/**
 * One threaded-code operation: a pre-resolved handler plus immediates.
 * `fn` is the dispatch target (a computed-goto label address under
 * GNU-compatible compilers); `idx` is the portable handler index that
 * `fn` was resolved from (and the fallback dispatch key).
 */
struct ThreadedOp
{
    const void *fn = nullptr;
    uint8_t idx = 0;
    uint8_t rd = 0;
    uint8_t rs1 = 0;
    uint8_t rs2 = 0;
    int32_t imm = 0;
    uint32_t pcOff = 0;    ///< Byte offset of this inst from block VA.
    uint32_t raw = 0;      ///< Original encoding (mtval / CSR checks).
};

/** Chain-slot indices. */
enum ChainSlot : unsigned
{
    kChainTaken = 0,   ///< Branch-taken / unconditional-jump edge.
    kChainFall = 1,    ///< Fall-through / branch-not-taken edge.
};

/** A translated basic block plus its outgoing chain links. */
struct TranslatedBlock
{
    Addr pa = 0;                      ///< Physical address (cache key).
    uint32_t instCount = 0;           ///< Guest instructions lowered.
    std::vector<ThreadedOp> ops;      ///< Threaded code (+ terminator).

    /** Direct chain links, one per static edge.  A link is valid only
     *  while chainVa matches the runtime target VA *and* chainEpoch
     *  matches the MMU's current translation epoch. */
    TranslatedBlock *chain[2] = {nullptr, nullptr};
    Addr chainVa[2] = {0, 0};
    uint64_t chainEpoch[2] = {0, 0};
};

/**
 * The translation cache and threaded-code execution engine for one
 * Core.  Owned by the Core; see the file comment for the threading
 * and invalidation contracts.
 */
class Dbt
{
  public:
    explicit Dbt(Core &core);
    ~Dbt();

    Dbt(const Dbt &) = delete;
    Dbt &operator=(const Dbt &) = delete;

    /** Executes up to @p max_insts guest instructions (block-granular,
     *  exactly like the interpreter tier).  Returns why it stopped. */
    StopReason run(uint64_t max_insts);

    /**
     * Retires every translation and unlinks all chains (fence, SMC
     * store, snapshot restore, reset).  Safe to call from inside a
     * running translated block: retired blocks stay allocated in a
     * graveyard until the dispatcher's next safe point.
     */
    void invalidateAll();

    /** True if any live translations exist. */
    bool hasTranslations() const { return !cache_.empty(); }

    /** Number of live translated blocks (tests/introspection). */
    size_t liveBlocks() const { return cache_.size(); }

  private:
    /** Why a block run left the dispatch loop. */
    enum class Exit : uint8_t
    {
        Taken,      ///< Branch taken / jal: chainable via kChainTaken.
        Fall,       ///< Fell through / not taken: chainable via kChainFall.
        Indirect,   ///< jalr / mret: target dynamic, never chained.
        Trap,       ///< Trap taken; pc_ is at the handler.
        Wfi,        ///< Core parked in WFI.
        Halt,
        EBreak,
    };

    /** A chain link requested by a block exit, resolved by the
     *  dispatcher once the target block is known. */
    struct PendingLink
    {
        TranslatedBlock *from = nullptr;
        unsigned slot = 0;
        Addr va = 0;
        uint64_t flushGen = 0;
    };

    Core &c_;
    std::unordered_map<Addr, std::unique_ptr<TranslatedBlock>> cache_;
    std::vector<std::unique_ptr<TranslatedBlock>> graveyard_;
    uint64_t flushGen_ = 1;     ///< Bumped by invalidateAll().
    PendingLink pending_;
    const void *const *labels_ = nullptr;   ///< Handler label table.

    TranslatedBlock *lookupOrTranslate(Addr pa);
    TranslatedBlock *translate(Addr pa);

    /** Runs one translated block's threaded code.  Intact chain edges
     *  are followed *inside* the dispatch loop (re-checking budget,
     *  pending interrupts, flush generation, and TLB epoch at every
     *  edge, so block boundaries stay lockstep with the interpreter);
     *  @p tb is left pointing at the block the run actually exited
     *  from.  With @p out_labels set, returns the handler label table
     *  instead of executing (query mode, used once at construction). */
    Exit execBlock(TranslatedBlock *&tb, uint64_t &budget,
                   const void *const **out_labels = nullptr);
};

} // namespace bifsim::sa32

#endif // BIFSIM_CPU_DBT_H
