#ifndef BIFSIM_METRICS_METRICS_H
#define BIFSIM_METRICS_METRICS_H

/**
 * @file
 * Always-on sampled metrics (DESIGN.md §5k, docs/METRICS.md).
 *
 * The trace subsystem (§5c) records *events* and is opt-in; this
 * layer exports *series* and is on by default.  The counters the
 * simulator already aggregates at its natural merge points — GPU job
 * completion, System::runCpu return, fleet job completion — are
 * published here as batched deltas, so the registry sees exactly the
 * names `instrument::appendCounters` emits (the single registration
 * point simlint and docs/COUNTERS.md enforce) without adding any
 * per-instruction or per-translation work to a hot path.
 *
 * Shape:
 *
 *  - Slot table: counter names (static strings) intern to small slot
 *    indices, fixed at kMaxSlots; interning locks, publishing never
 *    does.
 *  - Shards: each publishing thread owns a fixed array of
 *    `std::atomic<uint64_t>` cells.  A publish is one relaxed
 *    fetch_add per counter plus one release increment of the shard's
 *    sequence word.  No locks, no allocation after the first publish
 *    from a thread.
 *  - Reader: snapshot() sums cells across shards with a seqlock-style
 *    consistency retry per shard (seq read / cells read / seq
 *    re-read), so a batch published together is observed together —
 *    e.g. `tlb.walks` never outruns the `tlb.*_hits` published in the
 *    same batch.  Publishes are batched and rare, so the retry loop
 *    terminates in practice; a bounded retry cap keeps a pathological
 *    writer from livelocking the reader, degrading to a torn-batch
 *    (never torn-word) read that the `metrics.reader_retries` counter
 *    makes visible.
 *  - Gauges: level-valued series (queue depth, live sessions) use
 *    store-latest semantics in a dedicated unsharded cell — summing
 *    per-thread last-writes would be meaningless.
 *  - Ring: sample() appends a timestamped copy of the totals to a
 *    fixed single-producer ring (the §5c TraceBuffer idiom: atomic
 *    count, slot = count % capacity), from which consumers compute
 *    windowed rates (the HUD) or dump series (simsweep).
 *
 * Threading: publish()/setGauge() from any thread; slot()/totals()
 * /snapshot() from any thread; sample() and the ring read side follow
 * the single-producer rule (one sampling thread — the HUD loop or a
 * test; readers see a consistent ring only up to the published
 * count).
 *
 * The process-wide registry() is intentionally global: it aggregates
 * across every System/GpuDevice/FleetServer in the process, which is
 * the monitoring view a daemon wants.  Tests that need isolation
 * construct their own Registry or difference two snapshots.
 */

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

namespace bifsim::gpu {
struct NamedCounter;
}

namespace bifsim::metrics {

/** Slot-table capacity.  The repo registers ~60 counters today
 *  (docs/COUNTERS.md); the headroom is for future prefixes.  A full
 *  table drops further names (counted in metrics.slots_dropped)
 *  rather than reallocating — shards are fixed arrays on purpose. */
constexpr size_t kMaxSlots = 128;

/** Returned by Registry::slot() when the table is full. */
constexpr uint16_t kInvalidSlot = 0xffff;

/** Registry self-observation counters, exported like every other
 *  stats struct through instrument::appendCounters ("metrics."
 *  prefix, docs/COUNTERS.md + docs/METRICS.md). */
struct RegistryStats
{
    uint64_t publishes = 0;       ///< Delta batches published.
    uint64_t samples = 0;         ///< Ring samples taken.
    uint64_t readerRetries = 0;   ///< Seqlock retries while summing.
    uint64_t slotsDropped = 0;    ///< Names rejected by a full table.
    uint64_t shards = 0;          ///< Gauge: registered writer threads.
};

/** One timestamped copy of every counter's total. */
struct Sample
{
    uint64_t ns = 0;   ///< trace::nowNs() timeline.
    std::array<uint64_t, kMaxSlots> v{};
};

/**
 * The metrics registry.  One process-wide instance behind registry();
 * separately constructible for unit tests.
 */
class Registry
{
  public:
    /** @param ring_capacity  Samples retained (newest win). */
    explicit Registry(size_t ring_capacity = 1024);
    ~Registry();

    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /** Interns @p name (must have static storage duration) and
     *  returns its slot, or kInvalidSlot when the table is full.
     *  Threading: any thread (locks; cold path only). */
    uint16_t slot(const char *name) EXCLUDES(lock_);

    /** Name for @p slot (static string), or nullptr when unassigned.
     *  Threading: any thread. */
    const char *slotName(uint16_t slot) const EXCLUDES(lock_);

    /** Number of interned slots.  Threading: any thread. */
    size_t slotCount() const EXCLUDES(lock_);

    /**
     * Publishes a batch of counter *deltas* for the calling thread:
     * one relaxed add per counter into the thread's shard, one
     * release seq bump, so a concurrent snapshot() observes the batch
     * atomically.  Unknown names intern on first use (per-thread
     * cached thereafter: the hot path is pointer-keyed, lock-free).
     * A disabled registry drops the batch at one branch.
     * Threading: any thread.
     */
    void publish(const std::vector<gpu::NamedCounter> &deltas)
        EXCLUDES(lock_);

    /** Stores the *level* @p value into @p name's gauge cell
     *  (store-latest, not summed across threads).
     *  Threading: any thread; last writer wins. */
    void setGauge(const char *name, uint64_t value) EXCLUDES(lock_);

    /** Sums every shard (seqlock retry per shard) plus gauge cells
     *  into a consistent totals vector indexed by slot.
     *  Threading: any thread. */
    std::array<uint64_t, kMaxSlots> totals() const EXCLUDES(lock_);

    /** totals() with a timestamp attached. */
    Sample snapshot() const EXCLUDES(lock_);

    /** Appends snapshot() to the ring.  Threading: single sampler
     *  thread (see file header). */
    void sample() EXCLUDES(lock_);

    /** Samples currently retained (<= capacity). */
    size_t ringSize() const;

    /** Total samples ever taken (ring wraps past capacity). */
    uint64_t ringPushed() const;

    size_t ringCapacity() const { return ring_.size(); }

    /**
     * Copies the retained sample @p age_from_newest steps back (0 =
     * newest).  False when the ring holds no such sample.
     * Threading: the sampler thread, or any thread while the sampler
     * is quiescent (single-producer ring contract).
     */
    bool ringAt(size_t age_from_newest, Sample &out) const;

    /**
     * Windowed rate for @p slot in counts/second: the delta between
     * the newest sample and the oldest retained sample not older than
     * @p window_ns, divided by their spacing.  0 when fewer than two
     * samples (or a zero time delta) are available.
     */
    double rate(uint16_t slot, uint64_t window_ns) const;

    /** Kill switch for A/B overhead measurement
     *  (bench_metrics_overhead): a disabled registry drops publishes
     *  at one branch.  On by default.  Threading: any thread. */
    void setEnabled(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }

    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Self-observation counters.  Threading: any thread. */
    RegistryStats stats() const EXCLUDES(lock_);

  private:
    /** Per-thread counter cells + publish sequence word. */
    struct Shard
    {
        std::array<std::atomic<uint64_t>, kMaxSlots> cells{};
        std::atomic<uint64_t> seq{0};
    };

    Shard *localShard() EXCLUDES(lock_);
    uint16_t slotLocked(const char *name) REQUIRES(lock_);

    std::atomic<bool> enabled_{true};

    /** Process-unique, never reused.  The per-thread caches in
     *  publish()/localShard() key on this instead of `this`: a new
     *  registry allocated where a destroyed one used to live must not
     *  inherit the old one's cached shard pointers (use-after-free)
     *  or name->slot mappings (silent misattribution). */
    const uint64_t id_;

    /** Guards interning and shard registration (cold paths only; the
     *  publish/read hot paths touch atomics, never this lock). */
    mutable sim::Mutex lock_;
    std::vector<const char *> names_ GUARDED_BY(lock_);
    std::vector<std::unique_ptr<Shard>> shards_ GUARDED_BY(lock_);

    /** Shard list size mirrored atomically so readers can walk the
     *  stable prefix without the lock (shards are never removed; a
     *  thread's counts outlive it). */
    std::atomic<size_t> shardCount_{0};
    std::atomic<size_t> nameCount_{0};

    /** Gauge cells: store-latest, unsharded.  gaugeMask_ bit i set
     *  once slot i has ever been written as a gauge. */
    std::array<std::atomic<uint64_t>, kMaxSlots> gauges_{};
    std::array<std::atomic<uint8_t>, kMaxSlots> gaugeMask_{};

    /** Sample ring (single producer; TraceBuffer idiom). */
    std::vector<Sample> ring_;
    std::atomic<uint64_t> ringCount_{0};

    mutable std::atomic<uint64_t> publishes_{0};
    mutable std::atomic<uint64_t> samples_{0};
    mutable std::atomic<uint64_t> readerRetries_{0};
    mutable std::atomic<uint64_t> slotsDropped_{0};
};

/** The process-wide registry every subsystem publishes into. */
Registry &registry();

} // namespace bifsim::metrics

#endif // BIFSIM_METRICS_METRICS_H
