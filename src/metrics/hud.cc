#include "metrics/hud.h"

#include <cstdarg>
#include <cstdio>
#include <string_view>

#include "metrics/metrics.h"

namespace bifsim::metrics {

namespace {

/** Looks up a slot without interning: a counter that has never been
 *  published should render as absent/zero, not occupy a slot. */
uint16_t
findSlot(const Registry &reg, const char *name)
{
    // Registry::slot interns; scan the existing names instead.
    for (uint16_t i = 0; i < reg.slotCount() && i < kMaxSlots; ++i) {
        const char *n = reg.slotName(i);
        if (n && std::string_view(n) == name)
            return i;
    }
    return kInvalidSlot;
}

double
rateOf(const Registry &reg, const char *name, uint64_t window_ns)
{
    uint16_t s = findSlot(reg, name);
    return s == kInvalidSlot ? 0.0 : reg.rate(s, window_ns);
}

uint64_t
totalOf(const Registry &reg,
        const std::array<uint64_t, kMaxSlots> &totals,
        const char *name)
{
    uint16_t s = findSlot(reg, name);
    return s == kInvalidSlot ? 0 : totals[s];
}

std::string
fmtRate(double v)
{
    char buf[32];
    if (v >= 1e9)
        std::snprintf(buf, sizeof buf, "%7.2fG", v * 1e-9);
    else if (v >= 1e6)
        std::snprintf(buf, sizeof buf, "%7.2fM", v * 1e-6);
    else if (v >= 1e3)
        std::snprintf(buf, sizeof buf, "%7.2fk", v * 1e-3);
    else
        std::snprintf(buf, sizeof buf, "%7.1f ", v);
    return buf;
}

void
addLine(std::string &out, bool pad, const char *fmt, ...)
#if defined(__GNUC__) || defined(__clang__)
    __attribute__((format(printf, 3, 4)))
#endif
    ;

void
addLine(std::string &out, bool pad, const char *fmt, ...)
{
    constexpr size_t kWidth = 64;
    char buf[160];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof buf, fmt, ap);
    va_end(ap);
    std::string line(buf);
    if (pad && line.size() < kWidth)
        line.append(kWidth - line.size(), ' ');
    out += line;
    out += '\n';
}

} // namespace

std::string
renderHud(const Registry &reg, const HudOptions &opt)
{
    const uint64_t w = opt.windowNs;
    Sample newest;
    bool have = reg.ringAt(0, newest);
    std::array<uint64_t, kMaxSlots> totals =
        have ? newest.v : reg.totals();

    // CPU.
    double mips = rateOf(reg, "cpu.instret", w) * 1e-6;
    uint64_t instret = totalOf(reg, totals, "cpu.instret");

    // GPU: thread-weighted kernel instructions per second + jobs/s.
    double kinstr = rateOf(reg, "kernel.arith_instrs", w) +
                    rateOf(reg, "kernel.ls_instrs", w) +
                    rateOf(reg, "kernel.cf_instrs", w);
    double jobs = rateOf(reg, "sys.compute_jobs", w);
    uint64_t jobsTotal = totalOf(reg, totals, "sys.compute_jobs");

    // TLB: windowed hit ratio.  Rates share the window, so the ratio
    // of rates equals the ratio of deltas.
    double hits = rateOf(reg, "tlb.last_page_hits", w) +
                  rateOf(reg, "tlb.array_hits", w);
    double walks = rateOf(reg, "tlb.walks", w);
    double tlbPct = hits + walks > 0 ? 100.0 * hits / (hits + walks) : 0;

    // Scheduler: successful steals per attempt, windowed.
    double steals = rateOf(reg, "sched.steals", w);
    double attempts = rateOf(reg, "sched.steal_attempts", w);
    double stealPct = attempts > 0 ? 100.0 * steals / attempts : 0;

    std::string out;
    bool pad = opt.padLines;
    addLine(out, pad, "cpu   %s insts/s   (%llu retired)",
            fmtRate(mips * 1e6).c_str(),
            static_cast<unsigned long long>(instret));
    addLine(out, pad, "gpu   %s kinsts/s  %6.1f jobs/s  (%llu jobs)",
            fmtRate(kinstr).c_str(), jobs,
            static_cast<unsigned long long>(jobsTotal));
    addLine(out, pad, "tlb   %5.1f%% hit      %s walks/s", tlbPct,
            fmtRate(walks).c_str());
    addLine(out, pad, "sched %5.1f%% steal    %s attempts/s", stealPct,
            fmtRate(attempts).c_str());

    // Fleet block only when a server has ever published (gauges are
    // set on the first completed job).
    uint64_t live = totalOf(reg, totals, "fleet.sessions_live");
    uint64_t submitted = totalOf(reg, totals, "fleet.jobs_submitted");
    if (live || submitted) {
        double fjobs = rateOf(reg, "fleet.jobs_completed", w);
        addLine(out, pad,
                "fleet %6.1f jobs/s  depth %-4llu live %-3llu idle %-3llu",
                fjobs,
                static_cast<unsigned long long>(
                    totalOf(reg, totals, "fleet.queue_depth")),
                static_cast<unsigned long long>(live),
                static_cast<unsigned long long>(
                    totalOf(reg, totals, "fleet.sessions_idle")));
    }
    return out;
}

} // namespace bifsim::metrics
