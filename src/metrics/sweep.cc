#include "metrics/sweep.h"

#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace bifsim::metrics::sweep {

namespace {

void
flattenInto(const json::Value &v, const std::string &prefix,
            std::map<std::string, Flat> &out)
{
    switch (v.kind()) {
      case json::Value::Kind::Obj:
        for (const auto &[k, child] : v.obj())
            flattenInto(child, prefix.empty() ? k : prefix + "." + k,
                        out);
        return;
      case json::Value::Kind::Arr: {
        const auto &arr = v.arr();
        // Arrays of named objects key by name so reordering (or an
        // inserted element) doesn't shift every later key.
        bool named = !arr.empty();
        for (const json::Value &e : arr) {
            const json::Value *n = e.find("name");
            if (!n || !n->isStr()) {
                named = false;
                break;
            }
        }
        for (size_t i = 0; i < arr.size(); ++i) {
            std::string k = named ? arr[i].find("name")->str()
                                  : std::to_string(i);
            flattenInto(arr[i], prefix + "." + k, out);
        }
        return;
      }
      case json::Value::Kind::Num:
        out[prefix] = Flat{false, v.num(), {}};
        return;
      case json::Value::Kind::Bool:
        out[prefix] = Flat{false, v.boolean() ? 1.0 : 0.0, {}};
        return;
      case json::Value::Kind::Str: {
        // "name" members only repeat the key under named-array
        // flattening; drop them rather than diffing a tautology.
        size_t dot = prefix.rfind('.');
        std::string leaf =
            dot == std::string::npos ? prefix : prefix.substr(dot + 1);
        if (leaf != "name")
            out[prefix] = Flat{true, 0, v.str()};
        return;
      }
      case json::Value::Kind::Null:
        return;
    }
}

bool
contains(const std::string &key, const char *needle)
{
    return key.find(needle) != std::string::npos;
}

const char *
ruleName(Rule r)
{
    switch (r) {
      case Rule::Identity: return "identity";
      case Rule::Timing: return "timing";
      case Rule::Schedule: return "schedule";
      case Rule::Ratio: return "ratio";
      case Rule::Count: return "count";
      case Rule::Provenance: return "provenance";
    }
    return "?";
}

const char *
statusName(DiffStatus s)
{
    switch (s) {
      case DiffStatus::Ok: return "ok";
      case DiffStatus::Regression: return "REGRESSION";
      case DiffStatus::Missing: return "MISSING";
      case DiffStatus::Added: return "added";
    }
    return "?";
}

} // namespace

std::map<std::string, Flat>
flatten(const json::Value &doc)
{
    std::map<std::string, Flat> out;
    flattenInto(doc, "", out);
    return out;
}

Rule
classify(const std::string &key)
{
    // Envelope first: identity and provenance beat every pattern.
    if (key == "bench" || key == "schema" || key == "scale")
        return Rule::Identity;
    if (key.rfind("host.", 0) == 0 || key.rfind("gate.", 0) == 0)
        return Rule::Provenance;

    // Wall-clock deltas and host-noise estimates are host
    // measurements even when shaped like ratios ("wall_overhead",
    // "noise_floor_overhead"); never gate them.
    if (contains(key, "wall_") || contains(key, "noise"))
        return Rule::Timing;

    // Ratios divide the host out; gate them before the timing
    // patterns can shadow e.g. "warm_spawn_speedup".
    if (contains(key, "speedup") || contains(key, "hit_rate") ||
        contains(key, "overhead") || contains(key, "agree"))
        return Rule::Ratio;

    // Host-dependent timing and throughput.
    if (contains(key, "secs") || contains(key, "_ms") ||
        contains(key, "_ns") || contains(key, "ns_per") ||
        contains(key, "mips") || contains(key, "per_sec") ||
        contains(key, "jobs_per"))
        return Rule::Timing;

    // Schedule-dependent counts: legal to vary run to run.  "driver"
    // covers the full-system driver loop, whose instruction count is
    // wall-clock coupled (WFI parks and idle-spin bailouts retire a
    // timing-dependent number of guest instructions).
    if (contains(key, "steal") || contains(key, "spawn") ||
        contains(key, "recycle") || contains(key, "wait") ||
        contains(key, "peak") || contains(key, "live") ||
        contains(key, "idle") || contains(key, "walks") ||
        contains(key, "hits") || contains(key, "fills") ||
        contains(key, "retries") || contains(key, "events") ||
        contains(key, "driver"))
        return Rule::Schedule;

    return Rule::Count;
}

DiffResult
diff(const json::Value &baseline, const json::Value &candidate)
{
    std::map<std::string, Flat> base = flatten(baseline);
    std::map<std::string, Flat> cand = flatten(candidate);

    DiffResult res;
    for (const auto &[key, b] : base) {
        DiffRow row;
        row.key = key;
        row.rule = classify(key);
        row.base = b.num;

        auto it = cand.find(key);
        if (it == cand.end()) {
            row.status = DiffStatus::Missing;
            row.detail = "present in baseline, absent from candidate";
            res.rows.push_back(std::move(row));
            ++res.regressions;
            continue;
        }
        const Flat &c = it->second;
        row.cand = c.num;

        if (b.isStr != c.isStr) {
            row.status = DiffStatus::Regression;
            row.detail = "type changed";
        } else if (b.isStr) {
            if (row.rule == Rule::Identity && b.str != c.str) {
                row.status = DiffStatus::Regression;
                row.detail =
                    "\"" + b.str + "\" became \"" + c.str + "\"";
            }
        } else {
            switch (row.rule) {
              case Rule::Timing:
              case Rule::Schedule:
              case Rule::Provenance:
                break;   // Recorded, never gated.
              case Rule::Identity: {
                if (b.num != c.num) {
                    row.status = DiffStatus::Regression;
                    row.detail = "identity value changed (was the "
                                 "candidate regenerated at the "
                                 "baseline scale?)";
                }
                break;
              }
              case Rule::Ratio: {
                // Directional, with slack shaped per sub-family:
                //
                //  - overheads jitter around zero (a lucky run
                //    measures negative), so the baseline clamps at 0
                //    and absolute slack rides on top;
                //  - bounded ratios (hit rates, agreement) live in
                //    [0, 1] and are tight — a 5-point drop is real;
                //  - unbounded speedups gate only when the baseline
                //    demonstrates a real effect (>= 2x).  A baseline
                //    inside the noise band around 1x — e.g. thread
                //    scaling on a host with fewer cores than the
                //    sweep — carries no signal to regress from, the
                //    same self-disarming logic as the benches' own
                //    gates.
                constexpr double kRelTol = 0.5;
                bool bad = false;
                const char *why = nullptr;
                if (contains(key, "overhead")) {
                    bad = c.num >
                          std::max(b.num, 0.0) * (1.0 + kRelTol) + 0.10;
                    why = "rose";
                } else if (contains(key, "hit_rate") ||
                           contains(key, "agree")) {
                    bad = c.num < b.num - 0.05;
                    why = "fell";
                } else {
                    bad = b.num >= 2.0 && c.num < b.num * (1.0 - kRelTol);
                    why = "fell";
                }
                if (bad) {
                    row.status = DiffStatus::Regression;
                    char buf[96];
                    std::snprintf(buf, sizeof buf,
                                  "%s %.3g -> %.3g (outside the "
                                  "ratio tolerance band)",
                                  why, b.num, c.num);
                    row.detail = buf;
                }
                break;
              }
              case Rule::Count: {
                // Deterministic for a fixed scale; drift either way
                // is a behaviour change worth a look.  1% absorbs
                // float->text round-tripping, nothing else.
                constexpr double kRelTol = 0.01;
                double mag = std::fabs(b.num);
                if (std::fabs(c.num - b.num) >
                    kRelTol * (mag > 1 ? mag : 1)) {
                    row.status = DiffStatus::Regression;
                    char buf[96];
                    std::snprintf(buf, sizeof buf,
                                  "deterministic count moved %.6g -> "
                                  "%.6g",
                                  b.num, c.num);
                    row.detail = buf;
                }
                break;
              }
            }
        }
        if (row.status == DiffStatus::Regression)
            ++res.regressions;
        res.rows.push_back(std::move(row));
    }

    for (const auto &[key, c] : cand) {
        if (base.count(key))
            continue;
        DiffRow row;
        row.key = key;
        row.rule = classify(key);
        row.status = DiffStatus::Added;
        row.cand = c.num;
        row.detail = "new metric (not in baseline)";
        res.rows.push_back(std::move(row));
    }
    return res;
}

std::string
DiffResult::render(const std::string &title, bool verbose) const
{
    std::string out = title + ": ";
    char buf[160];
    size_t added = 0, gated = 0;
    for (const DiffRow &r : rows) {
        if (r.status == DiffStatus::Added)
            ++added;
        if (r.rule == Rule::Ratio || r.rule == Rule::Count ||
            r.rule == Rule::Identity)
            ++gated;
    }
    std::snprintf(buf, sizeof buf,
                  "%zu metrics (%zu gated), %zu regression%s, %zu "
                  "added\n",
                  rows.size(), gated, regressions,
                  regressions == 1 ? "" : "s", added);
    out += buf;
    for (const DiffRow &r : rows) {
        bool interesting = r.status == DiffStatus::Regression ||
                           r.status == DiffStatus::Missing;
        if (!interesting && !verbose)
            continue;
        std::snprintf(buf, sizeof buf, "  %-10s %-10s %-44s %s\n",
                      statusName(r.status), ruleName(r.rule),
                      r.key.c_str(), r.detail.c_str());
        out += buf;
    }
    return out;
}

} // namespace bifsim::metrics::sweep
