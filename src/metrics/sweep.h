#ifndef BIFSIM_METRICS_SWEEP_H
#define BIFSIM_METRICS_SWEEP_H

/**
 * @file
 * Baseline diffing for the BENCH_*.json family (docs/METRICS.md §4).
 *
 * The simsweep runner regenerates every bench file through the
 * unified bench::Report schema, then diffs each against its committed
 * baseline here.  The policy is per-metric, keyed on the flattened
 * dotted path, and directional:
 *
 *  - identity/provenance keys (bench, schema, host.*, gate.*) are
 *    checked for equality or skipped — they describe the run, they
 *    are not performance;
 *  - raw timing (secs, ms, ns totals, MIPS, rates-per-second) is
 *    never gated: it measures the CI host, not the simulator;
 *  - ratios of timings (speedup) and of counts (hit rates,
 *    agreement) ARE gated, directionally — host speed divides out of
 *    a ratio.  Bounded ratios get tight absolute slack; overheads
 *    clamp their baseline at zero; unbounded speedups gate only when
 *    the baseline shows a real (>= 2x) effect, so a noise-band 1x
 *    series on an undersized host cannot flake;
 *  - schedule-dependent counts (steals, spawns, waits, ...) are
 *    skipped; deterministic counts (instruction totals, job counts,
 *    bytes) are gated tightly in both directions, because the
 *    simulator promises them bit-stable for a fixed scale;
 *  - a key present in the baseline but absent from the candidate is
 *    always a regression (a silently vanished metric is the failure
 *    mode this harness exists to catch); a new key in the candidate
 *    is reported but never fails.
 *
 * Pure functions over json::Value — no file I/O except loadFile, no
 * globals — so the pass/fail fixtures in tests/test_metrics.cc can
 * drive them hermetically.
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/json.h"

namespace bifsim::metrics::sweep {

/** One flattened scalar: numbers and bools become `num`; strings keep
 *  their text (compared for equality when gated). */
struct Flat
{
    bool isStr = false;
    double num = 0;
    std::string str;
};

/**
 * Flattens @p doc to dotted keys: objects by member name, arrays by
 * element "name" member when every element has one (stable across
 * reordering), by index otherwise.
 */
std::map<std::string, Flat> flatten(const json::Value &doc);

/** What the tolerance policy decided for one key. */
enum class Rule : uint8_t
{
    Identity,    ///< Must match exactly (bench name, scale, schema).
    Timing,      ///< Host-dependent; never gated.
    Schedule,    ///< Nondeterministic count; never gated.
    Ratio,       ///< Gated, lower-is-regression, generous tolerance.
    Count,       ///< Gated, both directions, tight tolerance.
    Provenance,  ///< host.*/gate.*: recorded, never gated.
};

/** Classifies a flattened key (exposed for tests and --explain). */
Rule classify(const std::string &key);

enum class DiffStatus : uint8_t
{
    Ok,          ///< Within tolerance (or not gated).
    Regression,  ///< Outside tolerance in the bad direction.
    Missing,     ///< In baseline, absent from candidate: regression.
    Added,       ///< In candidate only: informational.
};

struct DiffRow
{
    std::string key;
    Rule rule = Rule::Timing;
    DiffStatus status = DiffStatus::Ok;
    double base = 0;
    double cand = 0;
    std::string detail;   ///< Human-readable reason for failures.
};

struct DiffResult
{
    std::vector<DiffRow> rows;
    size_t regressions = 0;   ///< Regression + Missing rows.

    /** Multi-line report; @p verbose includes Ok rows. */
    std::string render(const std::string &title,
                       bool verbose = false) const;
};

/** Diffs @p candidate against @p baseline under the policy above. */
DiffResult diff(const json::Value &baseline,
                const json::Value &candidate);

} // namespace bifsim::metrics::sweep

#endif // BIFSIM_METRICS_SWEEP_H
