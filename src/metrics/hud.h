#ifndef BIFSIM_METRICS_HUD_H
#define BIFSIM_METRICS_HUD_H

/**
 * @file
 * Live text HUD over the always-on metrics registry (§5k).
 *
 * renderHud() is a pure function from the registry's sample ring to a
 * block of text — no terminal I/O, no timing, no state — so tests can
 * assert on its output and `full_system_boot --hud` owns the refresh
 * loop (sample, render, cursor-up-rewrite) separately.  All rates are
 * windowed over the ring (see Registry::rate), so a stalled guest
 * decays to 0 instead of averaging over the whole run.
 */

#include <cstdint>
#include <string>

namespace bifsim::metrics {

class Registry;

struct HudOptions
{
    /** Rate window; the refresh loop samples often enough that a few
     *  samples land inside it. */
    uint64_t windowNs = 1'000'000'000;

    /** Lines always have the same width (padded) so an ANSI
     *  cursor-up rewrite fully covers the previous frame. */
    bool padLines = true;
};

/**
 * Renders the current HUD frame: CPU MIPS, GPU kernel MI/s and
 * jobs/s, TLB hit %, scheduler steal ratio, and — when the process
 * hosts a fleet server — queue depth and session gauges.  Every line
 * ends in '\n'; the line count is stable across frames for a fixed
 * registry population, so callers can move the cursor up by the
 * number of lines they previously printed.
 *
 * Threading: call from the sampling thread (reads the ring).
 */
std::string renderHud(const Registry &reg,
                      const HudOptions &opt = HudOptions());

} // namespace bifsim::metrics

#endif // BIFSIM_METRICS_HUD_H
