#include "metrics/metrics.h"

#include <cstring>
#include <unordered_map>

#include "instrument/stats.h"
#include "trace/trace.h"

namespace bifsim::metrics {

namespace {

/** Reader retry cap per shard: past this we accept a possibly
 *  torn-batch (never torn-word) sum rather than livelock behind a
 *  publish storm; metrics.reader_retries records how often the loop
 *  spun at all. */
constexpr int kMaxReaderRetries = 8;

} // namespace

namespace {

/** Never-reused registry generation (see Registry::id_). */
uint64_t
nextRegistryId()
{
    static std::atomic<uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

} // namespace

Registry::Registry(size_t ring_capacity)
    : id_(nextRegistryId()), ring_(ring_capacity ? ring_capacity : 1)
{
}

Registry::~Registry() = default;

uint16_t
Registry::slot(const char *name)
{
    sim::LockGuard g(lock_);
    return slotLocked(name);
}

uint16_t
Registry::slotLocked(const char *name)
{
    // String-keyed scan: distinct literals with equal text (e.g. the
    // same counter name registered from two translation units) must
    // share a slot.  The table is small and this is the cold path —
    // the publish hot path never gets here (pointer-keyed
    // thread_local cache in publish()).
    for (size_t i = 0; i < names_.size(); ++i) {
        if (names_[i] == name || std::strcmp(names_[i], name) == 0)
            return static_cast<uint16_t>(i);
    }
    if (names_.size() >= kMaxSlots) {
        slotsDropped_.fetch_add(1, std::memory_order_relaxed);
        return kInvalidSlot;
    }
    names_.push_back(name);
    nameCount_.store(names_.size(), std::memory_order_release);
    return static_cast<uint16_t>(names_.size() - 1);
}

const char *
Registry::slotName(uint16_t slot) const
{
    sim::LockGuard g(lock_);
    return slot < names_.size() ? names_[slot] : nullptr;
}

size_t
Registry::slotCount() const
{
    return nameCount_.load(std::memory_order_acquire);
}

Registry::Shard *
Registry::localShard()
{
    // One shard per (thread, registry) pair.  Keyed by the registry's
    // never-reused generation id, NOT its address: a new registry
    // allocated where a destroyed one lived (common in test suites)
    // must miss here instead of dereferencing the dead registry's
    // shard pointer.
    thread_local std::unordered_map<uint64_t, Shard *> tl_shards;
    auto it = tl_shards.find(id_);
    if (it != tl_shards.end())
        return it->second;
    Shard *s;
    {
        sim::LockGuard g(lock_);
        shards_.push_back(std::make_unique<Shard>());
        s = shards_.back().get();
        shardCount_.store(shards_.size(), std::memory_order_release);
    }
    tl_shards.emplace(id_, s);
    return s;
}

void
Registry::publish(const std::vector<gpu::NamedCounter> &deltas)
{
    if (!enabled_.load(std::memory_order_relaxed))
        return;
    // Per-(thread, registry) name->slot cache: the names
    // instrument::appendCounters emits are string literals, so after
    // the first publish from a thread the loop below is hash-lookup +
    // relaxed fetch_add per counter, no locks.  Keyed by generation
    // id like localShard's cache — a recycled registry address must
    // not inherit a predecessor's slot assignments.
    thread_local std::unordered_map<uint64_t,
                                    std::unordered_map<const char *,
                                                       uint16_t>>
        tl_slots;
    auto &cache = tl_slots[id_];
    Shard *shard = localShard();

    // Open the batch: odd seq marks "write in progress" for the
    // snapshot reader (seqlock write side).  acq_rel, not release:
    // the acquire half keeps the cell adds below from hoisting above
    // the open, the close below keeps them from sinking past it.
    shard->seq.fetch_add(1, std::memory_order_acq_rel);
    for (const auto &d : deltas) {
        if (d.value == 0)
            continue;
        uint16_t idx;
        auto it = cache.find(d.name);
        if (it != cache.end()) {
            idx = it->second;
        } else {
            idx = slot(d.name);
            cache.emplace(d.name, idx);
        }
        if (idx == kInvalidSlot)
            continue;
        shard->cells[idx].fetch_add(d.value,
                                    std::memory_order_relaxed);
    }
    // Close the batch (back to even).
    shard->seq.fetch_add(1, std::memory_order_release);
    publishes_.fetch_add(1, std::memory_order_relaxed);
}

void
Registry::setGauge(const char *name, uint64_t value)
{
    if (!enabled_.load(std::memory_order_relaxed))
        return;
    thread_local std::unordered_map<const Registry *,
                                    std::unordered_map<const char *,
                                                       uint16_t>>
        tl_gslots;
    auto &cache = tl_gslots[this];
    uint16_t idx;
    auto it = cache.find(name);
    if (it != cache.end()) {
        idx = it->second;
    } else {
        idx = slot(name);
        cache.emplace(name, idx);
    }
    if (idx == kInvalidSlot)
        return;
    gauges_[idx].store(value, std::memory_order_relaxed);
    gaugeMask_[idx].store(1, std::memory_order_release);
}

std::array<uint64_t, kMaxSlots>
Registry::totals() const
{
    std::array<uint64_t, kMaxSlots> sum{};
    size_t nshards = shardCount_.load(std::memory_order_acquire);
    // Walk the stable shard prefix without the lock: shards_ only
    // grows and entries are heap-pinned, so index < nshards is safe.
    // The vector itself may reallocate concurrently, which moves the
    // unique_ptr cells but not the Shards they own — take the lock
    // briefly to copy the pointer prefix instead of indexing the
    // vector raw.
    std::vector<Shard *> shards;
    shards.reserve(nshards);
    {
        sim::LockGuard g(lock_);
        for (size_t i = 0; i < nshards && i < shards_.size(); ++i)
            shards.push_back(shards_[i].get());
    }
    for (Shard *s : shards) {
        std::array<uint64_t, kMaxSlots> local{};
        for (int attempt = 0;; ++attempt) {
            uint64_t seq0 = s->seq.load(std::memory_order_acquire);
            for (size_t i = 0; i < kMaxSlots; ++i)
                local[i] =
                    s->cells[i].load(std::memory_order_relaxed);
            std::atomic_thread_fence(std::memory_order_acquire);
            uint64_t seq1 = s->seq.load(std::memory_order_acquire);
            if (seq0 == seq1 && (seq0 & 1) == 0)
                break;
            readerRetries_.fetch_add(1, std::memory_order_relaxed);
            if (attempt >= kMaxReaderRetries)
                break;   // Accept a torn batch over a livelock.
        }
        for (size_t i = 0; i < kMaxSlots; ++i)
            sum[i] += local[i];
    }
    // Gauges overwrite: their cell holds the level, not a delta.
    for (size_t i = 0; i < kMaxSlots; ++i) {
        if (gaugeMask_[i].load(std::memory_order_acquire))
            sum[i] = gauges_[i].load(std::memory_order_relaxed);
    }
    return sum;
}

Sample
Registry::snapshot() const
{
    Sample s;
    s.ns = trace::nowNs();
    s.v = totals();
    return s;
}

void
Registry::sample()
{
    Sample s = snapshot();
    uint64_t n = ringCount_.load(std::memory_order_relaxed);
    ring_[n % ring_.size()] = s;
    ringCount_.store(n + 1, std::memory_order_release);
    samples_.fetch_add(1, std::memory_order_relaxed);
}

size_t
Registry::ringSize() const
{
    uint64_t n = ringCount_.load(std::memory_order_acquire);
    return n < ring_.size() ? static_cast<size_t>(n) : ring_.size();
}

uint64_t
Registry::ringPushed() const
{
    return ringCount_.load(std::memory_order_acquire);
}

bool
Registry::ringAt(size_t age_from_newest, Sample &out) const
{
    uint64_t n = ringCount_.load(std::memory_order_acquire);
    if (n == 0 || age_from_newest >= ringSize())
        return false;
    uint64_t idx = n - 1 - age_from_newest;
    out = ring_[idx % ring_.size()];
    return true;
}

double
Registry::rate(uint16_t slot, uint64_t window_ns) const
{
    if (slot >= kMaxSlots)
        return 0;
    Sample newest;
    if (!ringAt(0, newest))
        return 0;
    // Scan back for the oldest retained sample still inside the
    // window.  The ring is small (default 1024) and the HUD calls
    // this a handful of times per refresh; linear is fine.
    Sample oldest = newest;
    bool have_older = false;
    for (size_t age = 1;; ++age) {
        Sample s;
        if (!ringAt(age, s))
            break;
        if (newest.ns - s.ns > window_ns)
            break;
        oldest = s;
        have_older = true;
    }
    if (!have_older || newest.ns <= oldest.ns)
        return 0;
    uint64_t dv = newest.v[slot] >= oldest.v[slot]
                      ? newest.v[slot] - oldest.v[slot]
                      : 0;   // Gauge moved down; rate is meaningless.
    double dt = static_cast<double>(newest.ns - oldest.ns) * 1e-9;
    return static_cast<double>(dv) / dt;
}

RegistryStats
Registry::stats() const
{
    RegistryStats s;
    s.publishes = publishes_.load(std::memory_order_relaxed);
    s.samples = samples_.load(std::memory_order_relaxed);
    s.readerRetries = readerRetries_.load(std::memory_order_relaxed);
    s.slotsDropped = slotsDropped_.load(std::memory_order_relaxed);
    s.shards = shardCount_.load(std::memory_order_acquire);
    return s;
}

Registry &
registry()
{
    // Leaked on purpose: publisher threads (fleet workers, GPU
    // workers) may still be publishing during static destruction.
    static Registry *g = new Registry();
    return *g;
}

} // namespace bifsim::metrics
