#ifndef BIFSIM_BASELINE_M2SSIM_H
#define BIFSIM_BASELINE_M2SSIM_H

/**
 * @file
 * m2ssim — a Multi2Sim-functional-style baseline GPU simulator.
 *
 * This is the comparison system for Fig. 8/9: it reproduces the
 * architectural shortcuts the paper criticises in Multi2Sim-class
 * simulators:
 *
 *  - GPU-only simulation: no job manager, no GPU MMU, no interrupts —
 *    kernels are launched through an *intercepted runtime* (a direct
 *    host function call), not through a driver.
 *  - Flat memory: buffers live in one host array addressed by offset;
 *    there is no shared CPU/GPU memory system.
 *  - Interpretive execution with *per-instruction re-decode*: every
 *    executed slot is decoded from the binary again (no decode cache).
 *  - Single-threaded, one work-item at a time (functional mode).
 *  - Reports only an instruction breakdown and the job dimensions.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "gpu/isa/bif.h"

namespace bifsim::baseline {

/** The statistics Multi2Sim functional mode reports. */
struct M2sStats
{
    uint64_t instructions = 0;
    uint64_t arith = 0;
    uint64_t loadStore = 0;
    uint64_t controlFlow = 0;
    uint64_t slotDecodes = 0;     ///< Per-execution decode operations.
    uint64_t workItems = 0;
    uint64_t workGroups = 0;
};

/**
 * The baseline simulator instance (one flat device memory).
 */
class M2sSim
{
  public:
    explicit M2sSim(size_t mem_bytes = 64u << 20);

    /** Allocates @p bytes of device memory; returns its offset. */
    uint32_t alloc(size_t bytes);

    /** Raw device memory. */
    std::vector<uint8_t> &memory() { return mem_; }

    /** Copies into device memory. */
    void write(uint32_t offset, const void *src, size_t len);

    /** Copies out of device memory. */
    void read(uint32_t offset, void *dst, size_t len) const;

    /**
     * Launches a kernel (intercepted-runtime style).
     *
     * @param binary  Encoded BIF shader binary.
     * @param grid    Global work size per dimension.
     * @param wg      Workgroup size per dimension.
     * @param args    Argument table words (buffer args are offsets
     *                returned by alloc()).
     * @param error   Receives a message on failure.
     * @return false on a malformed binary or an out-of-range access.
     */
    bool launch(const std::vector<uint8_t> &binary,
                const uint32_t grid[3], const uint32_t wg[3],
                const std::vector<uint32_t> &args, std::string &error);

    /** Cumulative statistics. */
    const M2sStats &stats() const { return stats_; }

    /** Clears statistics. */
    void resetStats() { stats_ = M2sStats{}; }

  private:
    std::vector<uint8_t> mem_;
    uint32_t heap_ = 4096;
    M2sStats stats_;
};

} // namespace bifsim::baseline

#endif // BIFSIM_BASELINE_M2SSIM_H
