#include "baseline/m2ssim.h"

#include <bit>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/bits.h"
#include "common/logging.h"

namespace bifsim::baseline {

namespace {

using bif::Op;

/** Offsets of each clause in the raw binary (built once per launch;
 *  the *instructions* are still re-decoded on every execution). */
struct ClauseIndex
{
    struct Entry
    {
        size_t offset;      ///< Byte offset of the first tuple.
        unsigned tuples;
        bool isBarrier;
    };

    std::vector<Entry> entries;
    size_t romOffset = 0;
    uint32_t romWords = 0;
};

bool
buildIndex(const std::vector<uint8_t> &bin, ClauseIndex &idx,
           std::string &error)
{
    auto get32 = [&](size_t off) {
        uint32_t v;
        std::memcpy(&v, bin.data() + off, 4);
        return v;
    };
    if (bin.size() < 32 || get32(0) != bif::kBinaryMagic) {
        error = "bad shader binary";
        return false;
    }
    uint32_t num_clauses = get32(4);
    size_t off = get32(8);
    idx.romOffset = get32(12);
    idx.romWords = get32(16);
    for (uint32_t c = 0; c < num_clauses; ++c) {
        if (off + 4 > bin.size()) {
            error = "truncated clause stream";
            return false;
        }
        uint32_t hdr = get32(off);
        unsigned tuples = (hdr & 7) + 1;
        ClauseIndex::Entry e;
        e.offset = off + 4;
        e.tuples = tuples;
        e.isBarrier = false;
        if (e.offset + tuples * 16 > bin.size()) {
            error = "truncated clause body";
            return false;
        }
        // Detect barrier clauses (needed for phased execution).
        for (unsigned t = 0; t < tuples; ++t) {
            uint64_t w1;
            std::memcpy(&w1, bin.data() + e.offset + t * 16 + 8, 8);
            if (static_cast<Op>(w1 & 0xff) == Op::Barrier)
                e.isBarrier = true;
        }
        idx.entries.push_back(e);
        off = e.offset + tuples * 16;
    }
    return true;
}

/** One work-item's execution state. */
struct Item
{
    uint32_t grf[bif::kNumGrfRegs] = {};
    uint32_t temp[bif::kNumTempRegs] = {};
    uint32_t localId[3] = {};
    uint32_t pc = 0;
    bool done = false;
};

float
asF(uint32_t u)
{
    return std::bit_cast<float>(u);
}

uint32_t
asU(float f)
{
    return std::bit_cast<uint32_t>(f);
}

bool
cmpResult(bif::CmpMode m, bool unordered, int q)
{
    if (unordered)
        return m == bif::CmpMode::Ne;
    switch (m) {
      case bif::CmpMode::Eq: return q == 0;
      case bif::CmpMode::Ne: return q != 0;
      case bif::CmpMode::Lt: return q < 0;
      case bif::CmpMode::Le: return q <= 0;
      case bif::CmpMode::Gt: return q > 0;
      case bif::CmpMode::Ge: return q >= 0;
    }
    return false;
}

} // namespace

M2sSim::M2sSim(size_t mem_bytes) : mem_(mem_bytes, 0) {}

uint32_t
M2sSim::alloc(size_t bytes)
{
    heap_ = static_cast<uint32_t>(roundUp(heap_, 4096));
    uint32_t off = heap_;
    heap_ += static_cast<uint32_t>(roundUp(std::max<size_t>(bytes, 4), 4));
    if (heap_ > mem_.size())
        simError("m2ssim device memory exhausted");
    return off;
}

void
M2sSim::write(uint32_t offset, const void *src, size_t len)
{
    std::memcpy(mem_.data() + offset, src, len);
}

void
M2sSim::read(uint32_t offset, void *dst, size_t len) const
{
    std::memcpy(dst, mem_.data() + offset, len);
}

bool
M2sSim::launch(const std::vector<uint8_t> &binary, const uint32_t grid[3],
               const uint32_t wg[3], const std::vector<uint32_t> &args,
               std::string &error)
{
    ClauseIndex idx;
    if (!buildIndex(binary, idx, error))
        return false;

    uint32_t header_local;
    std::memcpy(&header_local, binary.data() + 24, 4);

    uint32_t groups[3];
    for (int d = 0; d < 3; ++d) {
        if (wg[d] == 0 || grid[d] == 0 || grid[d] % wg[d] != 0) {
            error = "bad dimensions";
            return false;
        }
        groups[d] = grid[d] / wg[d];
    }
    uint32_t group_items = wg[0] * wg[1] * wg[2];
    std::vector<uint8_t> local(header_local, 0);

    auto rom = [&](uint32_t i) -> uint32_t {
        if (i >= idx.romWords)
            return 0;
        uint32_t v;
        std::memcpy(&v, binary.data() + idx.romOffset + i * 4, 4);
        return v;
    };

    // Executes item threads of one group phase-by-phase so barriers
    // synchronise; "phase" ends at a barrier clause or completion.
    for (uint32_t gz = 0; gz < groups[2]; ++gz)
    for (uint32_t gy = 0; gy < groups[1]; ++gy)
    for (uint32_t gx = 0; gx < groups[0]; ++gx) {
        stats_.workGroups++;
        std::fill(local.begin(), local.end(), 0);
        std::vector<Item> items(group_items);
        for (uint32_t t = 0; t < group_items; ++t) {
            items[t].localId[0] = t % wg[0];
            items[t].localId[1] = (t / wg[0]) % wg[1];
            items[t].localId[2] = t / (wg[0] * wg[1]);
        }
        stats_.workItems += group_items;

        uint32_t group_id[3] = {gx, gy, gz};
        bool any_running = true;
        while (any_running) {
            any_running = false;
            for (Item &it : items) {
                if (it.done)
                    continue;
                // Run this item until barrier / completion.
                for (;;) {
                    if (it.pc >= idx.entries.size()) {
                        it.done = true;
                        break;
                    }
                    const ClauseIndex::Entry &ce = idx.entries[it.pc];
                    if (ce.isBarrier) {
                        it.pc++;   // Phase boundary.
                        break;
                    }
                    uint32_t next = it.pc + 1;
                    bool exited = false;
                    for (unsigned tu = 0; tu < ce.tuples && !exited;
                         ++tu) {
                        for (int s = 0; s < 2; ++s) {
                            // Per-execution decode: the Multi2Sim-style
                            // interpretive cost the paper contrasts
                            // with its decode-once model.
                            uint64_t w;
                            std::memcpy(&w,
                                        binary.data() + ce.offset +
                                            tu * 16 + s * 8,
                                        8);
                            bif::Instr in = bif::Instr::decode(w);
                            stats_.slotDecodes++;
                            if (in.op == Op::Nop)
                                continue;
                            stats_.instructions++;
                            switch (bif::category(in.op)) {
                              case bif::Category::Arith:
                                stats_.arith++;
                                break;
                              case bif::Category::LoadStore:
                                stats_.loadStore++;
                                break;
                              case bif::Category::ControlFlow:
                                stats_.controlFlow++;
                                break;
                              default:
                                break;
                            }

                            auto read_op = [&](uint8_t o) -> uint32_t {
                                using namespace bif;
                                if (isGrf(o))
                                    return it.grf[o];
                                if (isTemp(o))
                                    return it.temp[o - kOperandTemp0];
                                switch (o) {
                                  case kSrLaneId: return 0;
                                  case kSrLocalIdX:
                                    return it.localId[0];
                                  case kSrLocalIdY:
                                    return it.localId[1];
                                  case kSrLocalIdZ:
                                    return it.localId[2];
                                  case kSrGroupIdX: return group_id[0];
                                  case kSrGroupIdY: return group_id[1];
                                  case kSrGroupIdZ: return group_id[2];
                                  case kSrLocalSizeX: return wg[0];
                                  case kSrLocalSizeY: return wg[1];
                                  case kSrLocalSizeZ: return wg[2];
                                  case kSrGridSizeX: return grid[0];
                                  case kSrGridSizeY: return grid[1];
                                  case kSrGridSizeZ: return grid[2];
                                  case kSrNumGroupsX: return groups[0];
                                  case kSrNumGroupsY: return groups[1];
                                  case kSrNumGroupsZ: return groups[2];
                                  default: return 0;
                                }
                            };
                            auto write_op = [&](uint8_t o, uint32_t v) {
                                if (bif::isGrf(o))
                                    it.grf[o] = v;
                                else if (bif::isTemp(o))
                                    it.temp[o - bif::kOperandTemp0] = v;
                            };
                            auto gmem = [&](uint32_t addr, unsigned size,
                                            bool wr,
                                            uint32_t &val) -> bool {
                                if (addr % size != 0 ||
                                    static_cast<uint64_t>(addr) + size >
                                        mem_.size()) {
                                    error = strfmt(
                                        "global access out of range "
                                        "at 0x%x", addr);
                                    return false;
                                }
                                if (wr)
                                    std::memcpy(mem_.data() + addr, &val,
                                                size);
                                else {
                                    val = 0;
                                    std::memcpy(&val, mem_.data() + addr,
                                                size);
                                }
                                return true;
                            };
                            auto lmem = [&](uint32_t addr, bool wr,
                                            uint32_t &val) -> bool {
                                if (addr % 4 != 0 ||
                                    static_cast<uint64_t>(addr) + 4 >
                                        local.size()) {
                                    error = strfmt(
                                        "local access out of range "
                                        "at 0x%x", addr);
                                    return false;
                                }
                                if (wr)
                                    std::memcpy(local.data() + addr,
                                                &val, 4);
                                else
                                    std::memcpy(&val,
                                                local.data() + addr, 4);
                                return true;
                            };

                            uint32_t a = read_op(in.src0);
                            uint32_t b = read_op(in.src1);
                            uint32_t c = read_op(in.src2);
                            uint32_t r = 0;
                            bool wr_dst = true;
                            switch (in.op) {
                              case Op::FAdd:
                                r = asU(asF(a) + asF(b));
                                break;
                              case Op::FSub:
                                r = asU(asF(a) - asF(b));
                                break;
                              case Op::FMul:
                                r = asU(asF(a) * asF(b));
                                break;
                              case Op::FFma:
                                r = asU(asF(a) * asF(b) + asF(c));
                                break;
                              case Op::FMin:
                                r = asU(std::fmin(asF(a), asF(b)));
                                break;
                              case Op::FMax:
                                r = asU(std::fmax(asF(a), asF(b)));
                                break;
                              case Op::FAbs:
                                r = asU(std::fabs(asF(a)));
                                break;
                              case Op::FNeg: r = asU(-asF(a)); break;
                              case Op::FFloor:
                                r = asU(std::floor(asF(a)));
                                break;
                              case Op::IAdd: r = a + b; break;
                              case Op::ISub: r = a - b; break;
                              case Op::IMul: r = a * b; break;
                              case Op::IAnd: r = a & b; break;
                              case Op::IOr: r = a | b; break;
                              case Op::IXor: r = a ^ b; break;
                              case Op::INot: r = ~a; break;
                              case Op::IShl: r = a << (b & 31); break;
                              case Op::IShr: r = a >> (b & 31); break;
                              case Op::IAsr:
                                r = static_cast<uint32_t>(
                                    static_cast<int32_t>(a) >> (b & 31));
                                break;
                              case Op::IMin:
                                r = static_cast<int32_t>(a) <
                                            static_cast<int32_t>(b)
                                        ? a : b;
                                break;
                              case Op::IMax:
                                r = static_cast<int32_t>(a) >
                                            static_cast<int32_t>(b)
                                        ? a : b;
                                break;
                              case Op::UMin: r = std::min(a, b); break;
                              case Op::UMax: r = std::max(a, b); break;
                              case Op::FCmp: {
                                float fa = asF(a), fb = asF(b);
                                bool un = std::isnan(fa) ||
                                          std::isnan(fb);
                                int q = un ? 0
                                        : fa < fb ? -1
                                        : fa > fb ? 1 : 0;
                                r = cmpResult(
                                    static_cast<bif::CmpMode>(in.imm & 7),
                                    un, q);
                                break;
                              }
                              case Op::ICmp: {
                                int32_t sa = static_cast<int32_t>(a);
                                int32_t sb = static_cast<int32_t>(b);
                                r = cmpResult(
                                    static_cast<bif::CmpMode>(in.imm & 7),
                                    false,
                                    sa < sb ? -1 : sa > sb ? 1 : 0);
                                break;
                              }
                              case Op::UCmp:
                                r = cmpResult(
                                    static_cast<bif::CmpMode>(in.imm & 7),
                                    false, a < b ? -1 : a > b ? 1 : 0);
                                break;
                              case Op::CSel:
                                r = a != 0 ? b : c;
                                break;
                              case Op::Mov: r = a; break;
                              case Op::MovImm:
                                r = static_cast<uint32_t>(in.imm);
                                break;
                              case Op::F2I: {
                                float f = asF(a);
                                if (std::isnan(f))
                                    r = 0;
                                else if (f >= 2147483647.0f)
                                    r = 0x7fffffffu;
                                else if (f <= -2147483648.0f)
                                    r = 0x80000000u;
                                else
                                    r = static_cast<uint32_t>(
                                        static_cast<int32_t>(f));
                                break;
                              }
                              case Op::F2U: {
                                float f = asF(a);
                                if (std::isnan(f) || f <= 0.0f)
                                    r = 0;
                                else if (f >= 4294967295.0f)
                                    r = 0xffffffffu;
                                else
                                    r = static_cast<uint32_t>(f);
                                break;
                              }
                              case Op::I2F:
                                r = asU(static_cast<float>(
                                    static_cast<int32_t>(a)));
                                break;
                              case Op::U2F:
                                r = asU(static_cast<float>(a));
                                break;
                              case Op::FRcp:
                                r = asU(1.0f / asF(a));
                                break;
                              case Op::FRsqrt:
                                r = asU(1.0f / std::sqrt(asF(a)));
                                break;
                              case Op::FSqrt:
                                r = asU(std::sqrt(asF(a)));
                                break;
                              case Op::FExp2:
                                r = asU(std::exp2(asF(a)));
                                break;
                              case Op::FLog2:
                                r = asU(std::log2(asF(a)));
                                break;
                              case Op::FSin:
                                r = asU(std::sin(asF(a)));
                                break;
                              case Op::FCos:
                                r = asU(std::cos(asF(a)));
                                break;
                              case Op::IDiv: {
                                int32_t sa = static_cast<int32_t>(a);
                                int32_t sb = static_cast<int32_t>(b);
                                if (sb == 0)
                                    r = 0;
                                else if (sa == std::numeric_limits<
                                                   int32_t>::min() &&
                                         sb == -1)
                                    r = a;
                                else
                                    r = static_cast<uint32_t>(sa / sb);
                                break;
                              }
                              case Op::IRem: {
                                int32_t sa = static_cast<int32_t>(a);
                                int32_t sb = static_cast<int32_t>(b);
                                if (sb == 0 ||
                                    (sa == std::numeric_limits<
                                               int32_t>::min() &&
                                     sb == -1))
                                    r = 0;
                                else
                                    r = static_cast<uint32_t>(sa % sb);
                                break;
                              }
                              case Op::UDiv: r = b ? a / b : 0; break;
                              case Op::URem: r = b ? a % b : 0; break;
                              case Op::LdRom: r = rom(in.imm); break;
                              case Op::LdArg:
                                r = static_cast<size_t>(in.imm) <
                                            args.size()
                                        ? args[in.imm] : 0;
                                break;
                              case Op::LdGlobal:
                                if (!gmem(a + in.imm, 4, false, r))
                                    return false;
                                break;
                              case Op::LdGlobalU8:
                                if (!gmem(a + in.imm, 1, false, r))
                                    return false;
                                r &= 0xff;
                                break;
                              case Op::StGlobal:
                                if (!gmem(a + in.imm, 4, true, b))
                                    return false;
                                wr_dst = false;
                                break;
                              case Op::StGlobalU8: {
                                uint32_t v = b & 0xff;
                                if (!gmem(a + in.imm, 1, true, v))
                                    return false;
                                wr_dst = false;
                                break;
                              }
                              case Op::LdLocal:
                                if (!lmem(a + in.imm, false, r))
                                    return false;
                                break;
                              case Op::StLocal:
                                if (!lmem(a + in.imm, true, b))
                                    return false;
                                wr_dst = false;
                                break;
                              case Op::AtomAddG: {
                                uint32_t old = 0;
                                if (!gmem(a + in.imm, 4, false, old))
                                    return false;
                                uint32_t nv = old + b;
                                if (!gmem(a + in.imm, 4, true, nv))
                                    return false;
                                r = old;
                                break;
                              }
                              case Op::AtomAddL: {
                                uint32_t old = 0;
                                if (!lmem(a + in.imm, false, old))
                                    return false;
                                uint32_t nv = old + b;
                                if (!lmem(a + in.imm, true, nv))
                                    return false;
                                r = old;
                                break;
                              }
                              case Op::Branch:
                                next = static_cast<uint32_t>(in.imm);
                                wr_dst = false;
                                break;
                              case Op::BranchZ:
                                if (a == 0)
                                    next =
                                        static_cast<uint32_t>(in.imm);
                                wr_dst = false;
                                break;
                              case Op::BranchNZ:
                                if (a != 0)
                                    next =
                                        static_cast<uint32_t>(in.imm);
                                wr_dst = false;
                                break;
                              case Op::Ret:
                                exited = true;
                                wr_dst = false;
                                break;
                              default:
                                wr_dst = false;
                                break;
                            }
                            if (wr_dst &&
                                in.dst != bif::kOperandNone) {
                                write_op(in.dst, r);
                            }
                        }
                    }
                    if (exited) {
                        it.done = true;
                        break;
                    }
                    it.pc = next;
                }
                if (!it.done)
                    any_running = true;
            }
        }
    }
    return true;
}

} // namespace bifsim::baseline
