#ifndef BIFSIM_RUNTIME_SYSTEM_H
#define BIFSIM_RUNTIME_SYSTEM_H

/**
 * @file
 * The simulated platform: CPU + GPU + devices on one bus with shared
 * memory (paper Fig. 5).  Memory map (Juno-like, single cluster):
 *
 *   0x1000_0000  UART
 *   0x1001_0000  Timer
 *   0x1002_0000  Interrupt controller
 *   0x4000_0000  GPU (job manager / MMU registers)
 *   0x8000_0000  RAM (shared CPU/GPU DRAM)
 *
 * The GPU interrupt is level-routed through INTC line 1 to the CPU's
 * external interrupt; the timer drives the CPU timer interrupt
 * directly.  Guest time advances one timer tick per retired
 * instruction.
 */

#include <cstdint>
#include <memory>

#include "common/thread_annotations.h"

#include "cpu/core.h"
#include "gpu/gpu.h"
#include "mem/bus.h"
#include "mem/phys_mem.h"
#include "snapshot/snapshot.h"
#include "soc/devices.h"

namespace bifsim::rt {

/** Platform configuration. */
struct SystemConfig
{
    size_t ramBytes = 256u << 20;   ///< Guest DRAM size.
    gpu::GpuConfig gpu;             ///< GPU model configuration.
    bool cpuBlockCache = true;      ///< CPU decode cache (off = re-decode
                                    ///< baseline; also disables DBT).
    bool cpuDbt = true;             ///< Threaded-code DBT tier (off =
                                    ///< interpreter oracle).
    bool uartEcho = false;          ///< Echo guest console to stderr.

    /**
     * Shared warm-boot RAM backing (DESIGN.md §5j).  When set, guest
     * RAM is a copy-on-write view of this sealed image file: clean
     * pages are shared with every other System built over the same
     * RamImage, and restoreSnapshot() restores RAM by remapping
     * instead of copying whenever the image being restored carries
     * the exact MEM chunk the backing was sealed from (proved by
     * CRC, so an unrelated snapshot still restores correctly through
     * the ordinary sparse path).
     */
    std::shared_ptr<const RamImage> ramImage;
};

/**
 * Owns and wires every component of the simulated platform.
 */
class System
{
  public:
    static constexpr Addr kUartBase = 0x10000000;
    static constexpr Addr kTimerBase = 0x10010000;
    static constexpr Addr kIntcBase = 0x10020000;
    static constexpr Addr kGpuBase = 0x40000000;
    static constexpr Addr kRamBase = 0x80000000;
    static constexpr unsigned kGpuIntcLine = 1;

    explicit System(SystemConfig cfg = SystemConfig());
    ~System() = default;

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    PhysMem &mem() { return mem_; }
    Bus &bus() { return bus_; }
    sa32::Core &cpu() { return *cpu_; }
    gpu::GpuDevice &gpu() { return *gpu_; }
    soc::Uart &uart() { return *uart_; }
    soc::Intc &intc() { return *intc_; }
    soc::Timer &timer() { return *timer_; }

    const SystemConfig &config() const { return cfg_; }

    /**
     * Runs the CPU for up to @p max_insts instructions, advancing guest
     * time.  A WFI with no pending interrupt blocks the calling thread
     * (briefly) waiting for device interrupts — this is how the
     * simulated CPU sleeps while the GPU works.
     */
    sa32::StopReason runCpu(uint64_t max_insts);

    /**
     * Runs until the guest executes HALT, or @p max_insts expires.
     * @return true if HALT was reached.
     */
    bool runUntilHalt(uint64_t max_insts);

    /**
     * Cold-boots the platform: zeroes RAM and resets the CPU and every
     * device (GPU waits for quiescence first), dropping all pending
     * interrupt lines, captured UART output and cached translations.
     */
    void reset();

    /**
     * Serialises the whole machine — CPU, RAM, UART, timer, INTC, GPU —
     * into @p w.  The GPU must be quiescent (gpu().waitIdle() first);
     * throws snapshot::SnapshotError otherwise.
     */
    void saveSnapshot(snapshot::Writer &w) const;

    /** Saves a complete snapshot image to @p path. */
    void saveSnapshotFile(const std::string &path) const;

    /**
     * Restores the whole machine from a validated @p image.
     *
     * Configuration compatibility (RAM geometry, shader-core count) and
     * chunk presence are checked before any state is touched; if any
     * component restore fails after that, the machine is reset() so a
     * System is never left half-restored.
     */
    void restoreSnapshot(const snapshot::Image &image);

    /**
     * Flushes this System's CPU counter deltas into the process-wide
     * metrics registry (§5k) regardless of the sampling threshold.
     * runCpu() publishes on its own every ~64k retired instructions;
     * call this before reading the registry when exact agreement with
     * cpu().stats() matters (tests, end-of-run reports).
     */
    void publishMetrics();

  private:
    /** Sampled CPU publish: no-op until the instret delta since the
     *  last publish reaches the batch threshold (or @p force). */
    void publishCpuMetrics(bool force);

    SystemConfig cfg_;
    PhysMem mem_;
    Bus bus_;
    std::unique_ptr<soc::Uart> uart_;
    std::unique_ptr<soc::Timer> timer_;
    std::unique_ptr<soc::Intc> intc_;
    std::unique_ptr<sa32::Core> cpu_;
    std::unique_ptr<gpu::GpuDevice> gpu_;

    /** Marks a device wakeup and notifies a sleeping runCpu().  Called
     *  from device IRQ callbacks (timer on the CPU thread, INTC from
     *  the GPU Job Manager thread).  The notify happens with wakeLock_
     *  held and pairs with the wakePending_ predicate in runCpu(), so
     *  a wakeup that lands between the CPU observing WFI and parking
     *  on wakeCv_ is latched, not lost. */
    void wake() EXCLUDES(wakeLock_);

    sim::Mutex wakeLock_;
    sim::CondVar wakeCv_;
    bool wakePending_ GUARDED_BY(wakeLock_) = false;

    /** CPU counters as of the last metrics publish.  Touched only on
     *  the thread driving runCpu() (a System is single-driver, §5f),
     *  so it needs no lock. */
    sa32::CoreStats cpuPublished_;
};

} // namespace bifsim::rt

#endif // BIFSIM_RUNTIME_SYSTEM_H
