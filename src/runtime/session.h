#ifndef BIFSIM_RUNTIME_SESSION_H
#define BIFSIM_RUNTIME_SESSION_H

/**
 * @file
 * The OpenCL-like host runtime.
 *
 * A Session plays the role of the vendor CL stack on top of the
 * simulated platform: it allocates device buffers in guest memory,
 * JIT-compiles KCL kernels with kclc at enqueue time, builds job
 * descriptors and argument tables, installs GPU page-table mappings,
 * and drives the Job Manager.
 *
 * Two modes reproduce the paper's architectural distinction:
 *
 *  - Mode::Direct      the host pokes the MMIO registers itself
 *                      (fast; the GPU-only use case of Fig. 7/8).
 *  - Mode::FullSystem  every submission goes through the *guest*
 *                      driver: the simulated CPU installs the page
 *                      tables, writes the registers, sleeps in WFI and
 *                      services the completion interrupt (Fig. 9,
 *                      Table III).
 *
 * Threading: a Session is a single-threaded object — exactly one host
 * thread (the "simulation thread" of DESIGN.md §5f) constructs it and
 * makes all calls on it; no method is safe to call concurrently with
 * any other.  Parallelism lives *below* this API: enqueue() hands the
 * job to the GPU's worker pool (GpuConfig::hostThreads workers,
 * work-stealing scheduler) and blocks until completion, so callers
 * never observe partial results.  The per-method "Threading:" lines
 * below only flag the few additional constraints (quiescence for
 * snapshot/trace export).  Because exactly one thread may touch a
 * Session, it carries no sim::Mutex and no GUARDED_BY annotations
 * (DESIGN.md §5i single-owner exemption).
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "gpu/shader_core.h"
#include "guestos/guest_os.h"
#include "kclc/compiler.h"
#include "replay/replay.h"
#include "runtime/system.h"
#include "snapshot/snapshot.h"

namespace bifsim::rt {

/** How kernel submissions reach the GPU. */
enum class Mode { Direct, FullSystem };

/** A device buffer in guest memory, mapped into the GPU VA space. */
struct Buffer
{
    uint32_t gpuVa = 0;
    Addr pa = 0;
    size_t bytes = 0;
};

/** A kernel launch argument. */
struct Arg
{
    enum class Kind : uint8_t { Buf, I32, U32, F32 };

    Kind kind = Kind::I32;
    uint32_t value = 0;

    static Arg buf(const Buffer &b);
    static Arg i32(int32_t v);
    static Arg u32(uint32_t v);
    static Arg f32(float v);
};

/** Launch dimensions. */
struct NDRange
{
    uint32_t x = 1, y = 1, z = 1;
};

/** A kernel loaded into guest memory, ready to launch. */
struct KernelHandle
{
    kclc::CompiledKernel info;
    uint32_t binaryVa = 0;
    Addr binaryPa = 0;
};

/**
 * One simulated platform plus the CL-like stack driving it.
 */
class Session
{
  public:
    explicit Session(SystemConfig cfg = SystemConfig(),
                     Mode mode = Mode::Direct);

    /**
     * Warm boot: builds a Session from a snapshot image previously
     * written by saveSnapshot().  RAM geometry and shader-core count
     * come from the image; the remaining knobs (fast path, tracing,
     * host threads...) come from @p base.  Loaded kernels and buffers
     * are rebuilt from the image, so the session can enqueue
     * immediately without recompiling or re-booting the guest OS.
     * @throws snapshot::SnapshotError on any malformed image.
     */
    static std::unique_ptr<Session>
    fromSnapshot(const snapshot::Image &image,
                 SystemConfig base = SystemConfig());

    /** Warm boot from the image file at @p path. */
    static std::unique_ptr<Session>
    fromSnapshot(const std::string &path,
                 SystemConfig base = SystemConfig());

    /**
     * Re-restores this *live* session in place from @p image: the
     * machine and the runtime registries return to the image state,
     * but the System — and with it the GPU worker pool, its threads
     * and the tracer — is reused rather than rebuilt.  This is the
     * fleet recycle path (DESIGN.md §5j): with a CoW RAM backing
     * sealed from the same image, the RAM restore is a remap and the
     * whole call costs O(dirtied state), not O(machine).
     * Image geometry must match this machine (same RAM size and
     * shader-core count); a mismatched or malformed image throws
     * snapshot::SnapshotError and leaves the machine reset, never
     * half-restored.
     * Threading: simulation thread only; no recording may be active.
     */
    void resetFromSnapshot(const snapshot::Image &image);

    /**
     * Saves the whole session — machine state plus the runtime's
     * allocator, mapping, kernel and buffer registries — into @p w.
     * Waits for GPU quiescence first (between enqueues any point is
     * quiescent; mid-enqueue saving is not supported).
     * Threading: simulation thread only; blocks until the GPU worker
     * pool is parked before serialising.
     */
    void saveSnapshot(snapshot::Writer &w);

    /** Saves a snapshot image to @p path. */
    void saveSnapshot(const std::string &path);

    /** Kernels loaded so far, in load order (survive snapshots). */
    const std::vector<KernelHandle> &kernels() const { return kernels_; }

    /** Buffers allocated so far, in alloc order (survive snapshots). */
    const std::vector<Buffer> &buffers() const { return buffers_; }

    /** The underlying platform. */
    System &system() { return sys_; }

    /** The submission mode. */
    Mode mode() const { return mode_; }

    /** The job-lifecycle tracer (GpuConfig::trace gates recording).
     *  Export after the last enqueue returns for a consistent snapshot:
     *  s.tracer().exportChromeJsonFile("trace.json").
     *  Threading: the reference may be taken from any thread, but see
     *  trace.h for which Tracer operations require quiescence. */
    trace::Tracer &tracer() { return sys_.gpu().tracer(); }

    /**
     * Starts recording the CPU<->GPU boundary into a BRPL log
     * (DESIGN.md §5h): subsequent enqueues — direct or through the
     * guest driver — are captured with their RAM inputs, MMIO writes,
     * IRQs and result fingerprints, replayable later with no
     * Session/CPU attached (replay::replay()).  Requires
     * GpuConfig::syncSubmit; one recording at a time.  Works on
     * freshly built and snapshot-restored sessions alike (the first
     * delta snapshots all non-zero RAM).
     * Threading: simulation thread only.
     */
    replay::Recorder &startRecording();

    /** Stops recording and returns the sealed log bytes.
     *  Threading: simulation thread only. */
    std::vector<uint8_t> stopRecording();

    /** Stops recording and writes the log to @p path. */
    void stopRecordingToFile(const std::string &path);

    /** True while a recording is attached. */
    bool recording() const { return recorder_ != nullptr; }

    /** Allocates a device buffer (page-aligned, zero-initialised). */
    Buffer alloc(size_t bytes);

    /** Copies host data into a buffer. */
    void write(const Buffer &b, const void *src, size_t len,
               size_t offset = 0);

    /** Copies buffer contents out to host memory. */
    void read(const Buffer &b, void *dst, size_t len, size_t offset = 0);

    /** JIT-compiles @p kernel_name from @p source and loads it. */
    KernelHandle compile(const std::string &source,
                         const std::string &kernel_name,
                         const kclc::CompilerOptions &opts =
                             kclc::CompilerOptions());

    /** Loads an already-compiled kernel into guest memory. */
    KernelHandle load(const kclc::CompiledKernel &kernel);

    /**
     * Launches a kernel and waits for completion.  The job executes on
     * the GPU worker pool (and, in FullSystem mode, drives the guest
     * CPU through the driver); this call is the synchronisation point —
     * by return, all workers have hit the job barrier and the merged
     * result is stable.
     * Threading: simulation thread only.
     * @return the job result (check .faulted).
     */
    gpu::JobResult enqueue(const KernelHandle &kernel, NDRange global,
                           NDRange local, const std::vector<Arg> &args);

    /** Result of the most recent launch. */
    const gpu::JobResult &lastResult() const { return lastResult_; }

    /** Guest instructions spent in the driver across all launches
     *  (FullSystem mode; 0 in Direct mode). */
    uint64_t driverInstructions() const { return driverInstrs_; }

    /** Number of GPU page-table mappings installed so far. */
    uint64_t mappedPages() const { return mappedPages_; }

    /** Runs a user-mode guest program via the mini OS (cmd 3).
     *  @return true if the guest exited via the exit syscall. */
    bool runUserProgram(Addr entry_va, uint32_t satp,
                        uint64_t max_insts = 50'000'000);

  private:
    struct MapEntry
    {
        uint32_t va;
        uint32_t pa;
        uint32_t npages;
        uint32_t flags;
    };

    Mode mode_;
    System sys_;
    guestos::Layout layout_;

    Addr heap_;             ///< Guest-physical bump allocator.
    uint32_t gpuVaNext_;    ///< GPU virtual address bump allocator.

    Addr ptRoot_ = 0;       ///< GPU page-table root (physical).
    Addr ptArena_ = 0;      ///< L0 table arena (physical).
    Addr ptArenaEnd_ = 0;

    std::vector<MapEntry> pendingMaps_;   ///< FullSystem: not yet
                                          ///< installed by the driver.

    Addr descPa_ = 0;       ///< Reused job-descriptor page.
    uint32_t descVa_ = 0;
    Addr argsPa_ = 0;       ///< Reused argument table.
    uint32_t argsVa_ = 0;

    Buffer localArena_;     ///< Driver-allocated local-memory arena.
    uint32_t localArenaSize_ = 0;

    gpu::JobResult lastResult_;
    uint64_t driverInstrs_ = 0;
    uint64_t mappedPages_ = 0;
    bool osBooted_ = false;
    trace::TraceBuffer *trcBuf_ = nullptr;   ///< "cpu-driver" buffer
                                             ///< (null = tracing off).
    std::unique_ptr<replay::Recorder> recorder_;   ///< Active boundary
                                                   ///< recording.

    std::vector<KernelHandle> kernels_;   ///< Load-order registry.
    std::vector<Buffer> buffers_;         ///< Alloc-order registry.

    /** Warm-boot constructor backing fromSnapshot(). */
    Session(const snapshot::Image &image, SystemConfig cfg);

    /** Applies the SESS chunk + machine chunks of @p image. */
    void restoreFrom(const snapshot::Image &image);

    Addr allocPhys(size_t bytes, size_t align = 4096);
    uint32_t mapRange(Addr pa, size_t bytes, bool writable);
    void installMapHost(const MapEntry &e);
    void bootOs();
    void mailboxCommand(uint32_t cmd, uint32_t desc_va);
    gpu::JobResult submitDirect(uint32_t desc_va);
    gpu::JobResult submitFullSystem(uint32_t desc_va);
};

} // namespace bifsim::rt

#endif // BIFSIM_RUNTIME_SESSION_H
