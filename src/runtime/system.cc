#include "runtime/system.h"

#include <algorithm>
#include <chrono>

#include "instrument/stats.h"
#include "metrics/metrics.h"

namespace bifsim::rt {

namespace {

/** CPU metrics publish granularity (retired instructions).  Large
 *  enough that the fleet's runCpu(50) polling loop publishes ~never
 *  from the threshold path, small enough that the HUD sees MIPS move
 *  several times a second at simulated speeds. */
constexpr uint64_t kCpuPublishBatch = 65536;

} // namespace

System::System(SystemConfig cfg)
    : cfg_(cfg), mem_(kRamBase, cfg.ramBytes, cfg.ramImage)
{
    bus_.attachMemory(&mem_);

    uart_ = std::make_unique<soc::Uart>();
    uart_->setEcho(cfg.uartEcho);

    sa32::CoreConfig cpu_cfg;
    cpu_cfg.resetPc = kRamBase;
    cpu_cfg.blockCache = cfg.cpuBlockCache;
    cpu_cfg.dbt = cfg.cpuDbt;
    cpu_ = std::make_unique<sa32::Core>(bus_, cpu_cfg);

    timer_ = std::make_unique<soc::Timer>([this](bool level) {
        cpu_->setIrqLine(sa32::kIrqTimer, level);
        if (level)
            wake();
    });

    intc_ = std::make_unique<soc::Intc>([this](bool level) {
        cpu_->setIrqLine(sa32::kIrqExternal, level);
        if (level)
            wake();
    });

    gpu_ = std::make_unique<gpu::GpuDevice>(
        mem_, cfg.gpu,
        [this](bool level) { intc_->setLine(kGpuIntcLine, level); });

    bus_.attachDevice(kUartBase, 0x1000, uart_.get());
    bus_.attachDevice(kTimerBase, 0x1000, timer_.get());
    bus_.attachDevice(kIntcBase, 0x1000, intc_.get());
    bus_.attachDevice(kGpuBase, 0x10000, gpu_.get());
}

void
System::wake()
{
    sim::LockGuard g(wakeLock_);
    wakePending_ = true;
    wakeCv_.notify_all();
}

sa32::StopReason
System::runCpu(uint64_t max_insts)
{
    // Execution is sliced so the timer advances while the guest runs;
    // a single monolithic cpu_->run() would only deliver timer
    // interrupts after the entire budget was consumed.
    constexpr uint64_t kTimerSlice = 1'000;

    uint64_t executed = 0;
    uint64_t last = cpu_->stats().instret;
    unsigned idle_spins = 0;
    while (executed < max_insts) {
        uint64_t batch = std::min(max_insts - executed, kTimerSlice);
        sa32::StopReason r = cpu_->run(batch);
        uint64_t now = cpu_->stats().instret;
        timer_->tick(now - last);
        executed += now - last;
        if (now != last)
            idle_spins = 0;
        last = now;

        if (r == sa32::StopReason::MaxInsts)
            continue;   // Slice exhausted; overall budget decides.
        if (r != sa32::StopReason::Wfi) {
            publishCpuMetrics(false);
            return r;
        }

        // The guest is waiting for an interrupt.  Sleep until a device
        // wakes us (GPU IRQ through the INTC) or a short timeout lets
        // guest time advance for the timer.  Bail out eventually so a
        // guest with nothing pending cannot hang the host.
        if (++idle_spins > 50000) {
            publishCpuMetrics(false);
            return sa32::StopReason::Wfi;
        }
        {
            // Predicate-checked sleep: a wake() that fired between the
            // WFI stop above and this park is latched in wakePending_
            // and skips the wait entirely — the IRQ-to-resume latency
            // is then bounded by the lock handoff, not the 200 us
            // timeout.  The old shape (bare notify_all from the device
            // callbacks, no predicate here) is the lost-wakeup fixture
            // in tests/test_annotations/: with wakePending_ declared
            // GUARDED_BY(wakeLock_), the unlocked latch update no
            // longer compiles under clang -Werror=thread-safety.
            sim::UniqueLock l(wakeLock_);
            if (!wakePending_)
                wakeCv_.wait_for(l, std::chrono::microseconds(200));
            wakePending_ = false;
        }
        timer_->tick(1000);   // Guest time passes while asleep.
    }
    publishCpuMetrics(false);
    return sa32::StopReason::MaxInsts;
}

void
System::publishCpuMetrics(bool force)
{
    if (!metrics::registry().enabled())
        return;
    const sa32::CoreStats &now = cpu_->stats();
    if (!force && now.instret - cpuPublished_.instret < kCpuPublishBatch)
        return;
    // CoreStats counters are monotone while the core runs, so the
    // member-wise difference is the delta batch.  A reset() or
    // snapshot restore since the last publish can move any of them
    // backwards; when that happened, rebaseline to zero and publish
    // the post-reset counts as-is (the registry is cumulative across
    // the process, not a mirror of one core).
    sa32::CoreStats d = now;
    if (now.instret < cpuPublished_.instret ||
        now.traps < cpuPublished_.traps ||
        now.interrupts < cpuPublished_.interrupts ||
        now.blocksDecoded < cpuPublished_.blocksDecoded ||
        now.blockHits < cpuPublished_.blockHits ||
        now.cacheFlushes < cpuPublished_.cacheFlushes ||
        now.dbtBlocks < cpuPublished_.dbtBlocks ||
        now.dbtChainLinks < cpuPublished_.dbtChainLinks ||
        now.dbtChainFollows < cpuPublished_.dbtChainFollows ||
        now.dbtChainBreaks < cpuPublished_.dbtChainBreaks ||
        now.dbtRetires < cpuPublished_.dbtRetires) {
        cpuPublished_ = sa32::CoreStats{};
    }
    d.instret -= cpuPublished_.instret;
    d.blocksDecoded -= cpuPublished_.blocksDecoded;
    d.blockHits -= cpuPublished_.blockHits;
    d.traps -= cpuPublished_.traps;
    d.interrupts -= cpuPublished_.interrupts;
    d.cacheFlushes -= cpuPublished_.cacheFlushes;
    d.dbtBlocks -= cpuPublished_.dbtBlocks;
    d.dbtChainLinks -= cpuPublished_.dbtChainLinks;
    d.dbtChainFollows -= cpuPublished_.dbtChainFollows;
    d.dbtChainBreaks -= cpuPublished_.dbtChainBreaks;
    d.dbtRetires -= cpuPublished_.dbtRetires;
    cpuPublished_ = now;
    if (d.instret == 0 && d.traps == 0 && d.interrupts == 0 &&
        d.cacheFlushes == 0)
        return;
    std::vector<gpu::NamedCounter> deltas;
    gpu::appendCounters(deltas, d);
    metrics::registry().publish(deltas);
}

void
System::publishMetrics()
{
    publishCpuMetrics(true);
}

void
System::reset()
{
    // GPU first: waits for quiescence and drops its INTC line; then the
    // interrupt fabric, so no device callback re-raises a line into a
    // freshly reset CPU.
    gpu_->reset();
    intc_->reset();
    timer_->reset();
    uart_->reset();
    mem_.clear();
    cpu_->reset();
}

void
System::saveSnapshot(snapshot::Writer &w) const
{
    if (!gpu_->idle())
        snapshot::snapshotError(
            "GPU is not quiescent; call gpu().waitIdle() before saving");
    snapshot::ChunkWriter &conf = w.chunk(snapshot::kTagConfig);
    conf.u64(mem_.size());
    conf.u32(cfg_.gpu.numCores);
    conf.u32(0);   // reserved
    cpu_->saveState(w.chunk(snapshot::kTagCpu));
    mem_.saveState(w.chunk(snapshot::kTagMem));
    uart_->saveState(w.chunk(snapshot::kTagUart));
    timer_->saveState(w.chunk(snapshot::kTagTimer));
    intc_->saveState(w.chunk(snapshot::kTagIntc));
    gpu_->saveState(w.chunk(snapshot::kTagGpu));
}

void
System::saveSnapshotFile(const std::string &path) const
{
    snapshot::Writer w;
    saveSnapshot(w);
    w.writeFile(path);
}

void
System::restoreSnapshot(const snapshot::Image &image)
{
    namespace snap = snapshot;
    if (!gpu_->idle())
        snap::snapshotError("cannot restore while the GPU is busy");

    // Validate everything that can be validated without mutating state:
    // configuration compatibility and the presence of every chunk.
    {
        snap::ChunkReader conf = image.chunk(snap::kTagConfig);
        uint64_t ram = conf.u64();
        uint32_t cores = conf.u32();
        conf.u32();   // reserved
        conf.expectEnd();
        if (ram != mem_.size())
            snap::snapshotError("image RAM size %llu does not match "
                                "system RAM size %zu",
                                static_cast<unsigned long long>(ram),
                                mem_.size());
        if (cores != cfg_.gpu.numCores)
            snap::snapshotError("image has %u shader cores, system has "
                                "%u",
                                cores, cfg_.gpu.numCores);
    }
    for (uint32_t tag : {snap::kTagCpu, snap::kTagMem, snap::kTagUart,
                         snap::kTagTimer, snap::kTagIntc,
                         snap::kTagGpu}) {
        if (!image.has(tag))
            snap::snapshotError("missing chunk %s",
                                snap::tagName(tag).c_str());
    }

    // Commit phase.  Each component parses its chunk fully before
    // touching live state; if one still fails, reset to the power-on
    // state so the machine is never left half-restored.
    try {
        reset();
        {
            snap::ChunkReader r = image.chunk(snap::kTagCpu);
            cpu_->restoreState(r);
        }
        {
            // Fleet fast path (DESIGN.md §5j): when RAM is a CoW view
            // of a sealed image file built from this very MEM chunk
            // (same payload CRC + length), restoring RAM is a remap —
            // no parse, no copy.  Any other image falls through to the
            // ordinary validated sparse restore.
            const RamImage *ram = mem_.image();
            bool remapped =
                ram &&
                ram->memCrc() == image.chunkCrc(snap::kTagMem) &&
                ram->memLen() == image.chunkLength(snap::kTagMem) &&
                mem_.resetToImage();
            if (!remapped) {
                snap::ChunkReader r = image.chunk(snap::kTagMem);
                mem_.restoreState(r);
            }
        }
        {
            snap::ChunkReader r = image.chunk(snap::kTagUart);
            uart_->restoreState(r);
            r.expectEnd();
        }
        {
            snap::ChunkReader r = image.chunk(snap::kTagTimer);
            timer_->restoreState(r);
            r.expectEnd();
        }
        {
            snap::ChunkReader r = image.chunk(snap::kTagIntc);
            intc_->restoreState(r);
            r.expectEnd();
        }
        {
            snap::ChunkReader r = image.chunk(snap::kTagGpu);
            gpu_->restoreState(r);
        }
    } catch (...) {
        reset();
        throw;
    }
}

bool
System::runUntilHalt(uint64_t max_insts)
{
    uint64_t executed = 0;
    while (executed < max_insts) {
        uint64_t before = cpu_->stats().instret;
        sa32::StopReason r = runCpu(max_insts - executed);
        executed += cpu_->stats().instret - before;
        if (r == sa32::StopReason::Halt)
            return true;
        if (r != sa32::StopReason::Wfi)
            return false;
        if (cpu_->waiting())
            return false;   // Idle forever: nothing will wake the guest.
    }
    return false;
}

} // namespace bifsim::rt
