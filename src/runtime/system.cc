#include "runtime/system.h"

#include <algorithm>
#include <chrono>

namespace bifsim::rt {

System::System(SystemConfig cfg)
    : cfg_(cfg), mem_(kRamBase, cfg.ramBytes)
{
    bus_.attachMemory(&mem_);

    uart_ = std::make_unique<soc::Uart>();
    uart_->setEcho(cfg.uartEcho);

    sa32::CoreConfig cpu_cfg;
    cpu_cfg.resetPc = kRamBase;
    cpu_cfg.blockCache = cfg.cpuBlockCache;
    cpu_ = std::make_unique<sa32::Core>(bus_, cpu_cfg);

    timer_ = std::make_unique<soc::Timer>([this](bool level) {
        cpu_->setIrqLine(sa32::kIrqTimer, level);
        if (level)
            wakeCv_.notify_all();
    });

    intc_ = std::make_unique<soc::Intc>([this](bool level) {
        cpu_->setIrqLine(sa32::kIrqExternal, level);
        if (level)
            wakeCv_.notify_all();
    });

    gpu_ = std::make_unique<gpu::GpuDevice>(
        mem_, cfg.gpu,
        [this](bool level) { intc_->setLine(kGpuIntcLine, level); });

    bus_.attachDevice(kUartBase, 0x1000, uart_.get());
    bus_.attachDevice(kTimerBase, 0x1000, timer_.get());
    bus_.attachDevice(kIntcBase, 0x1000, intc_.get());
    bus_.attachDevice(kGpuBase, 0x10000, gpu_.get());
}

sa32::StopReason
System::runCpu(uint64_t max_insts)
{
    // Execution is sliced so the timer advances while the guest runs;
    // a single monolithic cpu_->run() would only deliver timer
    // interrupts after the entire budget was consumed.
    constexpr uint64_t kTimerSlice = 1'000;

    uint64_t executed = 0;
    uint64_t last = cpu_->stats().instret;
    unsigned idle_spins = 0;
    while (executed < max_insts) {
        uint64_t batch = std::min(max_insts - executed, kTimerSlice);
        sa32::StopReason r = cpu_->run(batch);
        uint64_t now = cpu_->stats().instret;
        timer_->tick(now - last);
        executed += now - last;
        if (now != last)
            idle_spins = 0;
        last = now;

        if (r == sa32::StopReason::MaxInsts)
            continue;   // Slice exhausted; overall budget decides.
        if (r != sa32::StopReason::Wfi)
            return r;

        // The guest is waiting for an interrupt.  Sleep until a device
        // wakes us (GPU IRQ through the INTC) or a short timeout lets
        // guest time advance for the timer.  Bail out eventually so a
        // guest with nothing pending cannot hang the host.
        if (++idle_spins > 50000)
            return sa32::StopReason::Wfi;
        {
            std::unique_lock<std::mutex> l(wakeLock_);
            wakeCv_.wait_for(l, std::chrono::microseconds(200));
        }
        timer_->tick(1000);   // Guest time passes while asleep.
    }
    return sa32::StopReason::MaxInsts;
}

bool
System::runUntilHalt(uint64_t max_insts)
{
    uint64_t executed = 0;
    while (executed < max_insts) {
        uint64_t before = cpu_->stats().instret;
        sa32::StopReason r = runCpu(max_insts - executed);
        executed += cpu_->stats().instret - before;
        if (r == sa32::StopReason::Halt)
            return true;
        if (r != sa32::StopReason::Wfi)
            return false;
        if (cpu_->waiting())
            return false;   // Idle forever: nothing will wake the guest.
    }
    return false;
}

} // namespace bifsim::rt
