#include "runtime/session.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "common/bits.h"
#include "common/logging.h"
#include "instrument/stats.h"
#include "trace/trace.h"

namespace bifsim::rt {

Arg
Arg::buf(const Buffer &b)
{
    Arg a;
    a.kind = Kind::Buf;
    a.value = b.gpuVa;
    return a;
}

Arg
Arg::i32(int32_t v)
{
    Arg a;
    a.kind = Kind::I32;
    a.value = static_cast<uint32_t>(v);
    return a;
}

Arg
Arg::u32(uint32_t v)
{
    Arg a;
    a.kind = Kind::U32;
    a.value = v;
    return a;
}

Arg
Arg::f32(float v)
{
    Arg a;
    a.kind = Kind::F32;
    a.value = std::bit_cast<uint32_t>(v);
    return a;
}

Session::Session(SystemConfig cfg, Mode mode)
    : mode_(mode), sys_(cfg),
      layout_(guestos::defaultLayout(System::kRamBase))
{
    // Null when tracing is disabled; every event site below gates on it.
    trcBuf_ = sys_.gpu().tracer().registerThread("cpu-driver");
    // Guest layout: OS image + mailbox in the first 128 KiB, then the
    // GPU page-table arena, then the general heap.
    heap_ = System::kRamBase + 0x20000;
    gpuVaNext_ = 0x00100000;

    ptRoot_ = allocPhys(4096);
    ptArena_ = allocPhys(256 * 4096);
    ptArenaEnd_ = ptArena_ + 256 * 4096;

    descPa_ = allocPhys(4096);
    argsPa_ = allocPhys(4096);
    descVa_ = mapRange(descPa_, 4096, false);
    argsVa_ = mapRange(argsPa_, 4096, false);

    if (mode_ == Mode::FullSystem)
        bootOs();
}

Addr
Session::allocPhys(size_t bytes, size_t align)
{
    heap_ = roundUp(heap_, align);
    Addr pa = heap_;
    heap_ += roundUp(bytes, 4);
    if (!sys_.mem().contains(pa, std::max<size_t>(bytes, 1)))
        simError("guest RAM exhausted (%zu bytes requested)", bytes);
    return pa;
}

void
Session::installMapHost(const MapEntry &e)
{
    // Host-side variant of the guest driver's install_mappings.
    PhysMem &m = sys_.mem();
    uint32_t va = e.va;
    uint32_t pa = e.pa;
    for (uint32_t i = 0; i < e.npages; ++i) {
        uint32_t vpn1 = va >> 22;
        uint32_t vpn0 = (va >> 12) & 0x3ff;
        Addr l1 = ptRoot_ + vpn1 * 4;
        uint32_t pte1 = m.read<uint32_t>(l1);
        Addr l0;
        if (!(pte1 & gpu::kGpuPteValid)) {
            if (ptArena_ >= ptArenaEnd_)
                simError("GPU page-table arena exhausted");
            l0 = ptArena_;
            ptArena_ += 4096;
            pte1 = static_cast<uint32_t>((l0 >> 12) << 10) |
                   gpu::kGpuPteValid;
            m.write<uint32_t>(l1, pte1);
        } else {
            l0 = static_cast<Addr>((pte1 >> 10) & 0xfffff) << 12;
        }
        uint32_t pte0 = static_cast<uint32_t>((pa >> 12) << 10) |
                        gpu::kGpuPteValid |
                        ((e.flags & 1)
                             ? static_cast<uint32_t>(gpu::kGpuPteWrite)
                             : 0u);
        m.write<uint32_t>(l0 + vpn0 * 4, pte0);
        va += 4096;
        pa += 4096;
    }
    mappedPages_ += e.npages;
}

uint32_t
Session::mapRange(Addr pa, size_t bytes, bool writable)
{
    uint32_t npages =
        static_cast<uint32_t>(roundUp(bytes, 4096) / 4096);
    uint32_t va = gpuVaNext_;
    gpuVaNext_ += npages * 4096;

    MapEntry e;
    e.va = va;
    e.pa = static_cast<uint32_t>(pa);
    e.npages = npages;
    e.flags = writable ? 1 : 0;

    if (mode_ == Mode::Direct) {
        installMapHost(e);
    } else {
        pendingMaps_.push_back(e);
    }
    return va;
}

Buffer
Session::alloc(size_t bytes)
{
    if (bytes == 0)
        bytes = 4;
    Buffer b;
    b.bytes = bytes;
    b.pa = allocPhys(roundUp(bytes, 4096));
    b.gpuVa = mapRange(b.pa, bytes, true);
    buffers_.push_back(b);
    return b;
}

void
Session::write(const Buffer &b, const void *src, size_t len,
               size_t offset)
{
    if (offset + len > b.bytes)
        simError("buffer write out of range");
    sys_.mem().writeBlock(b.pa + offset, src, len);
}

void
Session::read(const Buffer &b, void *dst, size_t len, size_t offset)
{
    if (offset + len > b.bytes)
        simError("buffer read out of range");
    sys_.mem().readBlock(b.pa + offset, dst, len);
}

KernelHandle
Session::compile(const std::string &source,
                 const std::string &kernel_name,
                 const kclc::CompilerOptions &opts)
{
    return load(kclc::compileKernel(source, kernel_name, opts));
}

KernelHandle
Session::load(const kclc::CompiledKernel &kernel)
{
    KernelHandle h;
    h.info = kernel;
    h.binaryPa = allocPhys(roundUp(kernel.binary.size(), 4096));
    sys_.mem().writeBlock(h.binaryPa, kernel.binary.data(),
                          kernel.binary.size());
    h.binaryVa = mapRange(h.binaryPa, kernel.binary.size(), false);
    kernels_.push_back(h);
    return h;
}

void
Session::bootOs()
{
    sa32::Program os = guestos::buildOs(
        layout_, System::kUartBase, System::kIntcBase, System::kGpuBase,
        System::kGpuIntcLine);
    os.loadInto(sys_.mem());
    sys_.cpu().flushCodeCache();
    sys_.cpu().setPc(layout_.base);

    // Initialise the mailbox.
    PhysMem &m = sys_.mem();
    for (uint32_t off = 0; off < 64; off += 4)
        m.write<uint32_t>(layout_.mailbox + off, 0);

    // Let the OS run its init code up to the first mailbox poll.
    sys_.runCpu(10000);
    osBooted_ = true;
}

void
Session::mailboxCommand(uint32_t cmd, uint32_t desc_va)
{
    PhysMem &m = sys_.mem();
    Addr mb = layout_.mailbox;

    // Describe pending mappings for the guest driver.
    Addr maplist = 0;
    uint32_t count = static_cast<uint32_t>(pendingMaps_.size());
    if (cmd == guestos::kCmdSubmit) {
        maplist = allocPhys(std::max<size_t>(count, 1) * 16);
        Addr p = maplist;
        for (const MapEntry &e : pendingMaps_) {
            m.write<uint32_t>(p + 0, e.va);
            m.write<uint32_t>(p + 4, e.pa);
            m.write<uint32_t>(p + 8, e.npages);
            m.write<uint32_t>(p + 12, e.flags);
            mappedPages_ += e.npages;
            p += 16;
        }
        pendingMaps_.clear();
        m.write<uint32_t>(mb + guestos::kMbMapList,
                          static_cast<uint32_t>(maplist));
        m.write<uint32_t>(mb + guestos::kMbMapCount, count);
        m.write<uint32_t>(mb + guestos::kMbPtRoot,
                          static_cast<uint32_t>(ptRoot_));
        m.write<uint32_t>(mb + guestos::kMbPtBump,
                          static_cast<uint32_t>(ptArena_));
    }
    m.write<uint32_t>(mb + guestos::kMbDescVa, desc_va);
    m.write<uint32_t>(mb + guestos::kMbStatus, 0);
    m.write<uint32_t>(mb + guestos::kMbCmd, cmd);

    // Run the guest driver until it reports completion.  The batch is
    // kept small so driverInstructions() resolves the actual per-command
    // work instead of rounding everything up to one large batch (the
    // driver busy-polls the mailbox once it is done, so the tail of the
    // final batch is attributed to the command that triggered it).
    uint64_t before = sys_.cpu().stats().instret;
    uint64_t cmd_t0 = trcBuf_ ? trace::nowNs() : 0;
    bool woke = false;
    for (int spin = 0; spin < 4'000'000; ++spin) {
        sys_.runCpu(50);
        if (trcBuf_ && !woke &&
            m.read<uint32_t>(mb + guestos::kMbIrqFlag) != 0) {
            // First host observation of the guest driver's wake-up from
            // its WFI loop (the IRQ handler set IRQFLAG).
            woke = true;
            trcBuf_->instant("driver_wake", "driver", "guest_wakes",
                             m.read<uint32_t>(mb + guestos::kMbWakes));
        }
        if (m.read<uint32_t>(mb + guestos::kMbStatus) == 2)
            break;
    }
    if (trcBuf_) {
        trcBuf_->span("driver_cmd", "driver", cmd_t0, "cmd", cmd);
        // CPU-side counter tracks next to the GPU's (same consumer:
        // chrome://tracing counter rows + the text trace summary).
        std::vector<gpu::NamedCounter> counters;
        gpu::appendCounters(counters, sys_.cpu().stats());
        for (const gpu::NamedCounter &c : counters)
            trcBuf_->counter(c.name, c.value);
    }
    driverInstrs_ += sys_.cpu().stats().instret - before;

    if (m.read<uint32_t>(mb + guestos::kMbStatus) != 2)
        simError("guest driver did not complete the command");
    if (cmd == guestos::kCmdSubmit) {
        // The driver consumed the L0 bump allocator; resync.
        ptArena_ = m.read<uint32_t>(mb + guestos::kMbPtBump);
    }
}

replay::Recorder &
Session::startRecording()
{
    if (recorder_)
        simError("a boundary recording is already in progress");
    replay::RecordInfo info;
    info.cpuDbt = sys_.config().cpuDbt;
    info.fullSystem = mode_ == Mode::FullSystem;
    recorder_ = std::make_unique<replay::Recorder>(sys_.mem(),
                                                   sys_.gpu(), info);
    return *recorder_;
}

std::vector<uint8_t>
Session::stopRecording()
{
    if (!recorder_)
        simError("no boundary recording in progress");
    std::vector<uint8_t> bytes = recorder_->finish();
    recorder_.reset();
    return bytes;
}

void
Session::stopRecordingToFile(const std::string &path)
{
    if (!recorder_)
        simError("no boundary recording in progress");
    recorder_->writeFile(path);
    recorder_.reset();
}

gpu::JobResult
Session::submitDirect(uint32_t desc_va)
{
    Bus &bus = sys_.bus();
    Addr base = System::kGpuBase;

    // Program the address space exactly as the driver would.
    bus.write(base + gpu::kRegAsTranstab, 4,
              static_cast<uint32_t>(ptRoot_));
    bus.write(base + gpu::kRegAsCommand, 4, 1);
    bus.write(base + gpu::kRegIrqMask, 4, 7);
    bus.write(base + gpu::kRegJsSubmit, 4, desc_va);

    sys_.gpu().waitIdle();
    // Direct mode has no guest driver; the host waking from waitIdle
    // plays its role in the lifecycle.
    if (trcBuf_)
        trcBuf_->instant("driver_wake", "driver");

    // Acknowledge the interrupt like the driver's handler.
    uint64_t status = 0;
    bus.read(base + gpu::kRegIrqStatus, 4, status);
    bus.write(base + gpu::kRegIrqClear, 4,
              static_cast<uint32_t>(status));
    uint64_t js = 0;
    bus.read(base + gpu::kRegJsStatus, 4, js);

    return sys_.gpu().lastJob();
}

gpu::JobResult
Session::submitFullSystem(uint32_t desc_va)
{
    mailboxCommand(guestos::kCmdSubmit, desc_va);
    return sys_.gpu().lastJob();
}

gpu::JobResult
Session::enqueue(const KernelHandle &kernel, NDRange global,
                 NDRange local, const std::vector<Arg> &args)
{
    uint64_t t0 = trcBuf_ ? trace::nowNs() : 0;
    PhysMem &m = sys_.mem();

    // Argument table.
    if (args.size() > gpu::kMaxArgWords)
        simError("too many kernel arguments");
    for (size_t i = 0; i < gpu::kMaxArgWords; ++i) {
        uint32_t v = i < args.size() ? args[i].value : 0;
        m.write<uint32_t>(argsPa_ + i * 4, v);
    }

    // Local-memory arena: the driver allocates one slot per guest
    // shader core (paper §III-B3); the simulator's virtual cores use
    // host-side storage beyond that.
    uint32_t local_bytes = kernel.info.localBytes;
    if (local_bytes > 0) {
        uint32_t need = local_bytes * sys_.gpu().config().numCores;
        if (need > localArenaSize_) {
            localArena_ = alloc(need);
            localArenaSize_ = need;
        }
    }

    // Job descriptor.
    gpu::JobDescriptor d;
    d.jobType = gpu::JobDescriptor::kTypeCompute;
    d.next = 0;
    d.grid[0] = global.x;
    d.grid[1] = global.y;
    d.grid[2] = global.z;
    d.wg[0] = local.x;
    d.wg[1] = local.y;
    d.wg[2] = local.z;
    d.binaryVa = kernel.binaryVa;
    d.argsVa = argsVa_;
    d.localSize = local_bytes;
    d.localBase = localArena_.gpuVa;
    uint8_t raw[gpu::JobDescriptor::kSizeBytes];
    d.writeTo(raw);
    m.writeBlock(descPa_, raw, sizeof(raw));

    lastResult_ = mode_ == Mode::Direct ? submitDirect(descVa_)
                                        : submitFullSystem(descVa_);
    if (trcBuf_)
        trcBuf_->span("enqueue", "driver", t0, "faulted",
                      lastResult_.faulted ? 1 : 0);
    return lastResult_;
}

// ----------------------------------------------------------- Snapshots

namespace snap = snapshot;

void
Session::saveSnapshot(snap::Writer &w)
{
    sys_.gpu().waitIdle();
    sys_.saveSnapshot(w);

    snap::ChunkWriter &c = w.chunk(snap::kTagSession);
    c.u8(mode_ == Mode::FullSystem ? 1 : 0);
    c.u64(heap_);
    c.u32(gpuVaNext_);
    c.u64(ptRoot_);
    c.u64(ptArena_);
    c.u64(ptArenaEnd_);
    c.u64(descPa_);
    c.u32(descVa_);
    c.u64(argsPa_);
    c.u32(argsVa_);
    c.u32(localArena_.gpuVa);
    c.u64(localArena_.pa);
    c.u64(localArena_.bytes);
    c.u32(localArenaSize_);
    c.u64(driverInstrs_);
    c.u64(mappedPages_);
    c.u8(osBooted_ ? 1 : 0);

    c.u32(static_cast<uint32_t>(pendingMaps_.size()));
    for (const MapEntry &e : pendingMaps_) {
        c.u32(e.va);
        c.u32(e.pa);
        c.u32(e.npages);
        c.u32(e.flags);
    }

    gpu::saveJobResult(c, lastResult_);

    // Kernel registry: the encoded BIF image round-trips the module, so
    // a warm boot re-decodes instead of recompiling.
    c.u32(static_cast<uint32_t>(kernels_.size()));
    for (const KernelHandle &h : kernels_) {
        c.str(h.info.name);
        c.u32(static_cast<uint32_t>(h.info.binary.size()));
        c.bytes(h.info.binary.data(), h.info.binary.size());
        c.u32(static_cast<uint32_t>(h.info.args.size()));
        for (const kclc::ArgInfo &a : h.info.args) {
            c.str(a.name);
            c.u8(a.isBuffer ? 1 : 0);
        }
        c.u32(h.info.regCount);
        c.u32(h.info.localBytes);
        c.u32(h.info.spills);
        c.u32(h.binaryVa);
        c.u64(h.binaryPa);
    }

    c.u32(static_cast<uint32_t>(buffers_.size()));
    for (const Buffer &b : buffers_) {
        c.u32(b.gpuVa);
        c.u64(b.pa);
        c.u64(b.bytes);
    }
}

void
Session::saveSnapshot(const std::string &path)
{
    snap::Writer w;
    saveSnapshot(w);
    w.writeFile(path);
}

Session::Session(const snap::Image &image, SystemConfig cfg)
    : mode_(Mode::Direct), sys_(cfg),
      layout_(guestos::defaultLayout(System::kRamBase)), heap_(0),
      gpuVaNext_(0)
{
    trcBuf_ = sys_.gpu().tracer().registerThread("cpu-driver");
    restoreFrom(image);
}

void
Session::restoreFrom(const snap::Image &image)
{
    // Parse the whole SESS chunk into locals before the machine restore
    // so a malformed session chunk cannot leave a half-built Session
    // wrapped around a restored System.
    snap::ChunkReader c = image.chunk(snap::kTagSession);
    uint8_t mode_raw = c.u8();
    if (mode_raw > 1)
        c.fail(strfmt("invalid session mode %u", mode_raw));
    uint64_t heap = c.u64();
    uint32_t gpu_va_next = c.u32();
    uint64_t pt_root = c.u64();
    uint64_t pt_arena = c.u64();
    uint64_t pt_arena_end = c.u64();
    uint64_t desc_pa = c.u64();
    uint32_t desc_va = c.u32();
    uint64_t args_pa = c.u64();
    uint32_t args_va = c.u32();
    Buffer local_arena;
    local_arena.gpuVa = c.u32();
    local_arena.pa = c.u64();
    local_arena.bytes = c.u64();
    uint32_t local_arena_size = c.u32();
    uint64_t driver_instrs = c.u64();
    uint64_t mapped_pages = c.u64();
    bool os_booted = c.u8() != 0;

    uint32_t n_maps = c.u32();
    if (static_cast<uint64_t>(n_maps) * 16 > c.remaining())
        c.fail(strfmt("pending-map count %u exceeds chunk size", n_maps));
    std::vector<MapEntry> maps;
    maps.reserve(n_maps);
    for (uint32_t i = 0; i < n_maps; ++i) {
        MapEntry e;
        e.va = c.u32();
        e.pa = c.u32();
        e.npages = c.u32();
        e.flags = c.u32();
        maps.push_back(e);
    }

    gpu::JobResult last_result;
    gpu::restoreJobResult(c, last_result);

    uint32_t n_kernels = c.u32();
    std::vector<KernelHandle> kernels;
    kernels.reserve(std::min<uint32_t>(n_kernels, 1024));
    for (uint32_t i = 0; i < n_kernels; ++i) {
        KernelHandle h;
        h.info.name = c.str();
        uint32_t bin_len = c.u32();
        if (bin_len > c.remaining())
            c.fail(strfmt("kernel %u binary length %u exceeds chunk "
                          "size",
                          i, bin_len));
        const uint8_t *bin = c.raw(bin_len);
        h.info.binary.assign(bin, bin + bin_len);
        uint32_t n_args = c.u32();
        if (static_cast<uint64_t>(n_args) * 5 > c.remaining())
            c.fail(strfmt("kernel %u arg count %u exceeds chunk size",
                          i, n_args));
        h.info.args.resize(n_args);
        for (kclc::ArgInfo &a : h.info.args) {
            a.name = c.str();
            a.isBuffer = c.u8() != 0;
        }
        h.info.regCount = c.u32();
        h.info.localBytes = c.u32();
        h.info.spills = c.u32();
        h.binaryVa = c.u32();
        h.binaryPa = c.u64();
        std::string err;
        if (!bif::decode(h.info.binary.data(), h.info.binary.size(),
                         h.info.mod, err))
            c.fail(strfmt("kernel %u ('%s') binary does not decode: %s",
                          i, h.info.name.c_str(), err.c_str()));
        kernels.push_back(std::move(h));
    }

    uint32_t n_buffers = c.u32();
    if (static_cast<uint64_t>(n_buffers) * 20 > c.remaining())
        c.fail(strfmt("buffer count %u exceeds chunk size", n_buffers));
    std::vector<Buffer> buffers;
    buffers.reserve(n_buffers);
    for (uint32_t i = 0; i < n_buffers; ++i) {
        Buffer b;
        b.gpuVa = c.u32();
        b.pa = c.u64();
        b.bytes = c.u64();
        buffers.push_back(b);
    }
    c.expectEnd();

    // Machine restore (validates its own chunks; resets on failure).
    sys_.restoreSnapshot(image);

    // Commit the session layer.
    mode_ = mode_raw ? Mode::FullSystem : Mode::Direct;
    heap_ = heap;
    gpuVaNext_ = gpu_va_next;
    ptRoot_ = pt_root;
    ptArena_ = pt_arena;
    ptArenaEnd_ = pt_arena_end;
    descPa_ = desc_pa;
    descVa_ = desc_va;
    argsPa_ = args_pa;
    argsVa_ = args_va;
    localArena_ = local_arena;
    localArenaSize_ = local_arena_size;
    driverInstrs_ = driver_instrs;
    mappedPages_ = mapped_pages;
    osBooted_ = os_booted;
    pendingMaps_ = std::move(maps);
    lastResult_ = std::move(last_result);
    kernels_ = std::move(kernels);
    buffers_ = std::move(buffers);
}

void
Session::resetFromSnapshot(const snap::Image &image)
{
    if (recorder_)
        simError("cannot recycle a session while a boundary recording "
                 "is in progress");
    sys_.gpu().waitIdle();
    restoreFrom(image);
}

std::unique_ptr<Session>
Session::fromSnapshot(const snap::Image &image, SystemConfig base)
{
    // RAM geometry and guest-visible core count must match the image;
    // take them from it so the caller only chooses host-side knobs.
    // Both values size host allocations, so a hostile (well-formed)
    // image must not be able to demand absurd amounts before the
    // restore proper even starts.
    snap::ChunkReader conf = image.chunk(snap::kTagConfig);
    uint64_t ram_bytes = conf.u64();
    uint32_t num_cores = conf.u32();
    constexpr uint64_t kMaxRam = 1ull << 31;   // 32-bit CPU, RAM at 2G.
    if (ram_bytes == 0 || ram_bytes > kMaxRam ||
        ram_bytes % PhysMem::kPageBytes != 0)
        conf.fail(strfmt("implausible RAM size %llu",
                         static_cast<unsigned long long>(ram_bytes)));
    if (num_cores == 0 || num_cores > 1024)
        conf.fail(strfmt("implausible shader-core count %u", num_cores));
    base.ramBytes = static_cast<size_t>(ram_bytes);
    base.gpu.numCores = num_cores;
    return std::unique_ptr<Session>(new Session(image, base));
}

std::unique_ptr<Session>
Session::fromSnapshot(const std::string &path, SystemConfig base)
{
    return fromSnapshot(snap::Image::load(path), base);
}

bool
Session::runUserProgram(Addr entry_va, uint32_t satp, uint64_t max_insts)
{
    if (!osBooted_)
        bootOs();
    PhysMem &m = sys_.mem();
    Addr mb = layout_.mailbox;
    m.write<uint32_t>(mb + guestos::kMbDescVa,
                      static_cast<uint32_t>(entry_va));
    m.write<uint32_t>(mb + guestos::kMbMapList, satp);
    m.write<uint32_t>(mb + guestos::kMbStatus, 0);
    m.write<uint32_t>(mb + guestos::kMbCmd, guestos::kCmdEnterUser);
    return sys_.runUntilHalt(max_insts);
}

} // namespace bifsim::rt
