#include "runtime/session.h"

#include <bit>
#include <cstring>

#include "common/bits.h"
#include "common/logging.h"
#include "trace/trace.h"

namespace bifsim::rt {

Arg
Arg::buf(const Buffer &b)
{
    Arg a;
    a.kind = Kind::Buf;
    a.value = b.gpuVa;
    return a;
}

Arg
Arg::i32(int32_t v)
{
    Arg a;
    a.kind = Kind::I32;
    a.value = static_cast<uint32_t>(v);
    return a;
}

Arg
Arg::u32(uint32_t v)
{
    Arg a;
    a.kind = Kind::U32;
    a.value = v;
    return a;
}

Arg
Arg::f32(float v)
{
    Arg a;
    a.kind = Kind::F32;
    a.value = std::bit_cast<uint32_t>(v);
    return a;
}

Session::Session(SystemConfig cfg, Mode mode)
    : mode_(mode), sys_(cfg),
      layout_(guestos::defaultLayout(System::kRamBase))
{
    // Null when tracing is disabled; every event site below gates on it.
    trcBuf_ = sys_.gpu().tracer().registerThread("cpu-driver");
    // Guest layout: OS image + mailbox in the first 128 KiB, then the
    // GPU page-table arena, then the general heap.
    heap_ = System::kRamBase + 0x20000;
    gpuVaNext_ = 0x00100000;

    ptRoot_ = allocPhys(4096);
    ptArena_ = allocPhys(256 * 4096);
    ptArenaEnd_ = ptArena_ + 256 * 4096;

    descPa_ = allocPhys(4096);
    argsPa_ = allocPhys(4096);
    descVa_ = mapRange(descPa_, 4096, false);
    argsVa_ = mapRange(argsPa_, 4096, false);

    if (mode_ == Mode::FullSystem)
        bootOs();
}

Addr
Session::allocPhys(size_t bytes, size_t align)
{
    heap_ = roundUp(heap_, align);
    Addr pa = heap_;
    heap_ += roundUp(bytes, 4);
    if (!sys_.mem().contains(pa, std::max<size_t>(bytes, 1)))
        simError("guest RAM exhausted (%zu bytes requested)", bytes);
    return pa;
}

void
Session::installMapHost(const MapEntry &e)
{
    // Host-side variant of the guest driver's install_mappings.
    PhysMem &m = sys_.mem();
    uint32_t va = e.va;
    uint32_t pa = e.pa;
    for (uint32_t i = 0; i < e.npages; ++i) {
        uint32_t vpn1 = va >> 22;
        uint32_t vpn0 = (va >> 12) & 0x3ff;
        Addr l1 = ptRoot_ + vpn1 * 4;
        uint32_t pte1 = m.read<uint32_t>(l1);
        Addr l0;
        if (!(pte1 & gpu::kGpuPteValid)) {
            if (ptArena_ >= ptArenaEnd_)
                simError("GPU page-table arena exhausted");
            l0 = ptArena_;
            ptArena_ += 4096;
            pte1 = static_cast<uint32_t>((l0 >> 12) << 10) |
                   gpu::kGpuPteValid;
            m.write<uint32_t>(l1, pte1);
        } else {
            l0 = static_cast<Addr>((pte1 >> 10) & 0xfffff) << 12;
        }
        uint32_t pte0 = static_cast<uint32_t>((pa >> 12) << 10) |
                        gpu::kGpuPteValid |
                        ((e.flags & 1) ? gpu::kGpuPteWrite : 0);
        m.write<uint32_t>(l0 + vpn0 * 4, pte0);
        va += 4096;
        pa += 4096;
    }
    mappedPages_ += e.npages;
}

uint32_t
Session::mapRange(Addr pa, size_t bytes, bool writable)
{
    uint32_t npages =
        static_cast<uint32_t>(roundUp(bytes, 4096) / 4096);
    uint32_t va = gpuVaNext_;
    gpuVaNext_ += npages * 4096;

    MapEntry e;
    e.va = va;
    e.pa = static_cast<uint32_t>(pa);
    e.npages = npages;
    e.flags = writable ? 1 : 0;

    if (mode_ == Mode::Direct) {
        installMapHost(e);
    } else {
        pendingMaps_.push_back(e);
    }
    return va;
}

Buffer
Session::alloc(size_t bytes)
{
    if (bytes == 0)
        bytes = 4;
    Buffer b;
    b.bytes = bytes;
    b.pa = allocPhys(roundUp(bytes, 4096));
    b.gpuVa = mapRange(b.pa, bytes, true);
    return b;
}

void
Session::write(const Buffer &b, const void *src, size_t len,
               size_t offset)
{
    if (offset + len > b.bytes)
        simError("buffer write out of range");
    sys_.mem().writeBlock(b.pa + offset, src, len);
}

void
Session::read(const Buffer &b, void *dst, size_t len, size_t offset)
{
    if (offset + len > b.bytes)
        simError("buffer read out of range");
    sys_.mem().readBlock(b.pa + offset, dst, len);
}

KernelHandle
Session::compile(const std::string &source,
                 const std::string &kernel_name,
                 const kclc::CompilerOptions &opts)
{
    return load(kclc::compileKernel(source, kernel_name, opts));
}

KernelHandle
Session::load(const kclc::CompiledKernel &kernel)
{
    KernelHandle h;
    h.info = kernel;
    h.binaryPa = allocPhys(roundUp(kernel.binary.size(), 4096));
    sys_.mem().writeBlock(h.binaryPa, kernel.binary.data(),
                          kernel.binary.size());
    h.binaryVa = mapRange(h.binaryPa, kernel.binary.size(), false);
    return h;
}

void
Session::bootOs()
{
    sa32::Program os = guestos::buildOs(
        layout_, System::kUartBase, System::kIntcBase, System::kGpuBase,
        System::kGpuIntcLine);
    os.loadInto(sys_.mem());
    sys_.cpu().flushCodeCache();
    sys_.cpu().setPc(layout_.base);

    // Initialise the mailbox.
    PhysMem &m = sys_.mem();
    for (uint32_t off = 0; off < 64; off += 4)
        m.write<uint32_t>(layout_.mailbox + off, 0);

    // Let the OS run its init code up to the first mailbox poll.
    sys_.runCpu(10000);
    osBooted_ = true;
}

void
Session::mailboxCommand(uint32_t cmd, uint32_t desc_va)
{
    PhysMem &m = sys_.mem();
    Addr mb = layout_.mailbox;

    // Describe pending mappings for the guest driver.
    Addr maplist = 0;
    uint32_t count = static_cast<uint32_t>(pendingMaps_.size());
    if (cmd == guestos::kCmdSubmit) {
        maplist = allocPhys(std::max<size_t>(count, 1) * 16);
        Addr p = maplist;
        for (const MapEntry &e : pendingMaps_) {
            m.write<uint32_t>(p + 0, e.va);
            m.write<uint32_t>(p + 4, e.pa);
            m.write<uint32_t>(p + 8, e.npages);
            m.write<uint32_t>(p + 12, e.flags);
            mappedPages_ += e.npages;
            p += 16;
        }
        pendingMaps_.clear();
        m.write<uint32_t>(mb + guestos::kMbMapList,
                          static_cast<uint32_t>(maplist));
        m.write<uint32_t>(mb + guestos::kMbMapCount, count);
        m.write<uint32_t>(mb + guestos::kMbPtRoot,
                          static_cast<uint32_t>(ptRoot_));
        m.write<uint32_t>(mb + guestos::kMbPtBump,
                          static_cast<uint32_t>(ptArena_));
    }
    m.write<uint32_t>(mb + guestos::kMbDescVa, desc_va);
    m.write<uint32_t>(mb + guestos::kMbStatus, 0);
    m.write<uint32_t>(mb + guestos::kMbCmd, cmd);

    // Run the guest driver until it reports completion.  The batch is
    // kept small so driverInstructions() resolves the actual per-command
    // work instead of rounding everything up to one large batch (the
    // driver busy-polls the mailbox once it is done, so the tail of the
    // final batch is attributed to the command that triggered it).
    uint64_t before = sys_.cpu().stats().instret;
    uint64_t cmd_t0 = trcBuf_ ? trace::nowNs() : 0;
    bool woke = false;
    for (int spin = 0; spin < 4'000'000; ++spin) {
        sys_.runCpu(50);
        if (trcBuf_ && !woke &&
            m.read<uint32_t>(mb + guestos::kMbIrqFlag) != 0) {
            // First host observation of the guest driver's wake-up from
            // its WFI loop (the IRQ handler set IRQFLAG).
            woke = true;
            trcBuf_->instant("driver_wake", "driver", "guest_wakes",
                             m.read<uint32_t>(mb + guestos::kMbWakes));
        }
        if (m.read<uint32_t>(mb + guestos::kMbStatus) == 2)
            break;
    }
    if (trcBuf_)
        trcBuf_->span("driver_cmd", "driver", cmd_t0, "cmd", cmd);
    driverInstrs_ += sys_.cpu().stats().instret - before;

    if (m.read<uint32_t>(mb + guestos::kMbStatus) != 2)
        simError("guest driver did not complete the command");
    if (cmd == guestos::kCmdSubmit) {
        // The driver consumed the L0 bump allocator; resync.
        ptArena_ = m.read<uint32_t>(mb + guestos::kMbPtBump);
    }
}

gpu::JobResult
Session::submitDirect(uint32_t desc_va)
{
    Bus &bus = sys_.bus();
    Addr base = System::kGpuBase;

    // Program the address space exactly as the driver would.
    bus.write(base + gpu::kRegAsTranstab, 4,
              static_cast<uint32_t>(ptRoot_));
    bus.write(base + gpu::kRegAsCommand, 4, 1);
    bus.write(base + gpu::kRegIrqMask, 4, 7);
    bus.write(base + gpu::kRegJsSubmit, 4, desc_va);

    sys_.gpu().waitIdle();
    // Direct mode has no guest driver; the host waking from waitIdle
    // plays its role in the lifecycle.
    if (trcBuf_)
        trcBuf_->instant("driver_wake", "driver");

    // Acknowledge the interrupt like the driver's handler.
    uint64_t status = 0;
    bus.read(base + gpu::kRegIrqStatus, 4, status);
    bus.write(base + gpu::kRegIrqClear, 4,
              static_cast<uint32_t>(status));
    uint64_t js = 0;
    bus.read(base + gpu::kRegJsStatus, 4, js);

    return sys_.gpu().lastJob();
}

gpu::JobResult
Session::submitFullSystem(uint32_t desc_va)
{
    mailboxCommand(guestos::kCmdSubmit, desc_va);
    return sys_.gpu().lastJob();
}

gpu::JobResult
Session::enqueue(const KernelHandle &kernel, NDRange global,
                 NDRange local, const std::vector<Arg> &args)
{
    uint64_t t0 = trcBuf_ ? trace::nowNs() : 0;
    PhysMem &m = sys_.mem();

    // Argument table.
    if (args.size() > gpu::kMaxArgWords)
        simError("too many kernel arguments");
    for (size_t i = 0; i < gpu::kMaxArgWords; ++i) {
        uint32_t v = i < args.size() ? args[i].value : 0;
        m.write<uint32_t>(argsPa_ + i * 4, v);
    }

    // Local-memory arena: the driver allocates one slot per guest
    // shader core (paper §III-B3); the simulator's virtual cores use
    // host-side storage beyond that.
    uint32_t local_bytes = kernel.info.localBytes;
    if (local_bytes > 0) {
        uint32_t need = local_bytes * sys_.gpu().config().numCores;
        if (need > localArenaSize_) {
            localArena_ = alloc(need);
            localArenaSize_ = need;
        }
    }

    // Job descriptor.
    gpu::JobDescriptor d;
    d.jobType = gpu::JobDescriptor::kTypeCompute;
    d.next = 0;
    d.grid[0] = global.x;
    d.grid[1] = global.y;
    d.grid[2] = global.z;
    d.wg[0] = local.x;
    d.wg[1] = local.y;
    d.wg[2] = local.z;
    d.binaryVa = kernel.binaryVa;
    d.argsVa = argsVa_;
    d.localSize = local_bytes;
    d.localBase = localArena_.gpuVa;
    uint8_t raw[gpu::JobDescriptor::kSizeBytes];
    d.writeTo(raw);
    m.writeBlock(descPa_, raw, sizeof(raw));

    lastResult_ = mode_ == Mode::Direct ? submitDirect(descVa_)
                                        : submitFullSystem(descVa_);
    if (trcBuf_)
        trcBuf_->span("enqueue", "driver", t0, "faulted",
                      lastResult_.faulted ? 1 : 0);
    return lastResult_;
}

bool
Session::runUserProgram(Addr entry_va, uint32_t satp, uint64_t max_insts)
{
    if (!osBooted_)
        bootOs();
    PhysMem &m = sys_.mem();
    Addr mb = layout_.mailbox;
    m.write<uint32_t>(mb + guestos::kMbDescVa,
                      static_cast<uint32_t>(entry_va));
    m.write<uint32_t>(mb + guestos::kMbMapList, satp);
    m.write<uint32_t>(mb + guestos::kMbStatus, 0);
    m.write<uint32_t>(mb + guestos::kMbCmd, guestos::kCmdEnterUser);
    return sys_.runUntilHalt(max_insts);
}

} // namespace bifsim::rt
