#ifndef BIFSIM_COMMON_BITS_H
#define BIFSIM_COMMON_BITS_H

/**
 * @file
 * Bit-manipulation helpers used by the instruction encoders/decoders.
 */

#include <cstdint>

namespace bifsim {

/** Extracts bits [hi:lo] (inclusive) of @p val, right-aligned. */
constexpr uint64_t
bits(uint64_t val, unsigned hi, unsigned lo)
{
    unsigned nbits = hi - lo + 1;
    if (nbits >= 64)
        return val >> lo;
    return (val >> lo) & ((uint64_t{1} << nbits) - 1);
}

/** Extracts a single bit of @p val. */
constexpr uint64_t
bit(uint64_t val, unsigned pos)
{
    return (val >> pos) & 1;
}

/** Returns @p val with bits [hi:lo] replaced by the low bits of @p field. */
constexpr uint64_t
insertBits(uint64_t val, unsigned hi, unsigned lo, uint64_t field)
{
    unsigned nbits = hi - lo + 1;
    uint64_t mask = nbits >= 64 ? ~uint64_t{0} : ((uint64_t{1} << nbits) - 1);
    return (val & ~(mask << lo)) | ((field & mask) << lo);
}

/** Sign-extends the low @p nbits bits of @p val to 64 bits. */
constexpr int64_t
sext(uint64_t val, unsigned nbits)
{
    if (nbits == 0 || nbits >= 64)
        return static_cast<int64_t>(val);
    uint64_t sign = uint64_t{1} << (nbits - 1);
    uint64_t mask = (uint64_t{1} << nbits) - 1;
    val &= mask;
    return static_cast<int64_t>((val ^ sign) - sign);
}

/** Sign-extends the low @p nbits bits of @p val to 32 bits. */
constexpr int32_t
sext32(uint32_t val, unsigned nbits)
{
    return static_cast<int32_t>(sext(val, nbits));
}

/** Returns true if @p val fits in a signed @p nbits-bit field. */
constexpr bool
fitsSigned(int64_t val, unsigned nbits)
{
    int64_t lo = -(int64_t{1} << (nbits - 1));
    int64_t hi = (int64_t{1} << (nbits - 1)) - 1;
    return val >= lo && val <= hi;
}

/** Returns true if @p val fits in an unsigned @p nbits-bit field. */
constexpr bool
fitsUnsigned(uint64_t val, unsigned nbits)
{
    if (nbits >= 64)
        return true;
    return val < (uint64_t{1} << nbits);
}

/** Returns true if @p addr is aligned to @p align (a power of two). */
constexpr bool
isAligned(uint64_t addr, uint64_t align)
{
    return (addr & (align - 1)) == 0;
}

/** Rounds @p val up to the next multiple of @p align (a power of two). */
constexpr uint64_t
roundUp(uint64_t val, uint64_t align)
{
    return (val + align - 1) & ~(align - 1);
}

/** Rounds @p val down to a multiple of @p align (a power of two). */
constexpr uint64_t
roundDown(uint64_t val, uint64_t align)
{
    return val & ~(align - 1);
}

} // namespace bifsim

#endif // BIFSIM_COMMON_BITS_H
