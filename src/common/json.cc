#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/logging.h"

namespace bifsim::json {

namespace {

/** Hostile-input backstop: deeper nesting than any bench file needs
 *  is a malformed document, not a reason to exhaust the stack. */
constexpr int kMaxDepth = 64;

struct Parser
{
    const std::string &text;
    const std::string &where;
    size_t pos = 0;
    int line = 1;

    [[noreturn]] void
    fail(const std::string &msg) const
    {
        simError("%s:%d: %s", where.c_str(), line, msg.c_str());
    }

    void
    skipWs()
    {
        while (pos < text.size()) {
            char c = text[pos];
            if (c == '\n')
                ++line;
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos;
        }
    }

    char
    peek()
    {
        if (pos >= text.size())
            fail("unexpected end of input");
        return text[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(strfmt("expected '%c', got '%c'", c, text[pos]));
        ++pos;
    }

    bool
    consumeWord(const char *w)
    {
        size_t n = std::strlen(w);
        if (text.compare(pos, n, w) != 0)
            return false;
        pos += n;
        return true;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos >= text.size())
                fail("unterminated string");
            char c = text[pos++];
            if (c == '"')
                return out;
            if (c == '\n')
                fail("raw newline in string");
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos >= text.size())
                fail("unterminated escape");
            char e = text[pos++];
            switch (e) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'n': out.push_back('\n'); break;
              case 't': out.push_back('\t'); break;
              case 'r': out.push_back('\r'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'u': {
                // Enough unicode for our own files: decode the four
                // hex digits and emit the code point as UTF-8 (no
                // surrogate-pair handling — the writer never emits
                // them).
                if (pos + 4 > text.size())
                    fail("truncated \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text[pos++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad hex digit in \\u escape");
                }
                if (cp < 0x80) {
                    out.push_back(static_cast<char>(cp));
                } else if (cp < 0x800) {
                    out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
                    out.push_back(
                        static_cast<char>(0x80 | (cp & 0x3f)));
                } else {
                    out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
                    out.push_back(
                        static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
                    out.push_back(
                        static_cast<char>(0x80 | (cp & 0x3f)));
                }
                break;
              }
              default:
                fail(strfmt("unknown escape '\\%c'", e));
            }
        }
    }

    Value
    parseNumber()
    {
        size_t start = pos;
        if (peek() == '-')
            ++pos;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '.' || text[pos] == 'e' ||
                text[pos] == 'E' || text[pos] == '+' ||
                text[pos] == '-'))
            ++pos;
        std::string tok = text.substr(start, pos - start);
        char *end = nullptr;
        double d = std::strtod(tok.c_str(), &end);
        if (end != tok.c_str() + tok.size() || tok.empty())
            fail("malformed number \"" + tok + "\"");
        return Value(d);
    }

    Value
    parseValue(int depth)
    {
        if (depth > kMaxDepth)
            fail("nesting deeper than the document cap");
        skipWs();
        char c = peek();
        if (c == '{') {
            ++pos;
            Value v = Value::object();
            skipWs();
            if (peek() == '}') {
                ++pos;
                return v;
            }
            while (true) {
                skipWs();
                std::string key = parseString();
                skipWs();
                expect(':');
                v.set(key, parseValue(depth + 1));
                skipWs();
                if (peek() == ',') {
                    ++pos;
                    continue;
                }
                expect('}');
                return v;
            }
        }
        if (c == '[') {
            ++pos;
            Value v = Value::array();
            skipWs();
            if (peek() == ']') {
                ++pos;
                return v;
            }
            while (true) {
                v.push(parseValue(depth + 1));
                skipWs();
                if (peek() == ',') {
                    ++pos;
                    continue;
                }
                expect(']');
                return v;
            }
        }
        if (c == '"')
            return Value(parseString());
        if (c == 't') {
            if (!consumeWord("true"))
                fail("bad literal");
            return Value(true);
        }
        if (c == 'f') {
            if (!consumeWord("false"))
                fail("bad literal");
            return Value(false);
        }
        if (c == 'n') {
            if (!consumeWord("null"))
                fail("bad literal");
            return Value();
        }
        if (c == '-' || std::isdigit(static_cast<unsigned char>(c)))
            return parseNumber();
        fail(strfmt("unexpected character '%c'", c));
    }
};

void
writeEscaped(std::string &out, const std::string &s)
{
    out.push_back('"');
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strfmt("\\u%04x", c);
            else
                out.push_back(c);
        }
    }
    out.push_back('"');
}

void
writeNumber(std::string &out, double d, bool whole_hint)
{
    if (std::isnan(d) || std::isinf(d)) {
        out += "null";   // JSON has no NaN/Inf; absent beats invalid.
        return;
    }
    double r = std::floor(d);
    if (r == d && std::fabs(d) < 1e15) {
        out += strfmt("%lld", static_cast<long long>(d));
        return;
    }
    (void)whole_hint;
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", d);
    out += buf;
}

} // namespace

Value
Value::object()
{
    Value v;
    v.kind_ = Kind::Obj;
    return v;
}

Value
Value::array()
{
    Value v;
    v.kind_ = Kind::Arr;
    return v;
}

bool
Value::boolean() const
{
    if (kind_ != Kind::Bool)
        simError("json: boolean() on a non-bool value");
    return bool_;
}

double
Value::num() const
{
    if (kind_ != Kind::Num)
        simError("json: num() on a non-number value");
    return num_;
}

const std::string &
Value::str() const
{
    if (kind_ != Kind::Str)
        simError("json: str() on a non-string value");
    return str_;
}

const std::vector<Value> &
Value::arr() const
{
    if (kind_ != Kind::Arr)
        simError("json: arr() on a non-array value");
    return arr_;
}

const Members &
Value::obj() const
{
    if (kind_ != Kind::Obj)
        simError("json: obj() on a non-object value");
    return obj_;
}

const Value *
Value::find(const std::string &key) const
{
    if (kind_ != Kind::Obj)
        return nullptr;
    for (const auto &[k, v] : obj_) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

void
Value::set(const std::string &key, Value v)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Obj;
    if (kind_ != Kind::Obj)
        simError("json: set() on a non-object value");
    for (auto &[k, existing] : obj_) {
        if (k == key) {
            existing = std::move(v);
            return;
        }
    }
    obj_.emplace_back(key, std::move(v));
}

void
Value::push(Value v)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Arr;
    if (kind_ != Kind::Arr)
        simError("json: push() on a non-array value");
    arr_.push_back(std::move(v));
}

void
Value::write(std::string &out, int indent) const
{
    std::string pad(static_cast<size_t>(indent) * 2, ' ');
    std::string inner(static_cast<size_t>(indent + 1) * 2, ' ');
    switch (kind_) {
      case Kind::Null: out += "null"; break;
      case Kind::Bool: out += bool_ ? "true" : "false"; break;
      case Kind::Num: writeNumber(out, num_, wholeHint_); break;
      case Kind::Str: writeEscaped(out, str_); break;
      case Kind::Arr: {
        if (arr_.empty()) {
            out += "[]";
            break;
        }
        // Scalar-only arrays print on one line (the thread-scaling
        // series read better that way); nested ones go multi-line.
        bool scalar = true;
        for (const Value &v : arr_)
            if (v.isArr() || v.isObj())
                scalar = false;
        if (scalar) {
            out += "[";
            for (size_t i = 0; i < arr_.size(); ++i) {
                if (i)
                    out += ", ";
                arr_[i].write(out, indent);
            }
            out += "]";
            break;
        }
        out += "[\n";
        for (size_t i = 0; i < arr_.size(); ++i) {
            out += inner;
            arr_[i].write(out, indent + 1);
            if (i + 1 < arr_.size())
                out += ",";
            out += "\n";
        }
        out += pad + "]";
        break;
      }
      case Kind::Obj: {
        if (obj_.empty()) {
            out += "{}";
            break;
        }
        out += "{\n";
        for (size_t i = 0; i < obj_.size(); ++i) {
            out += inner;
            writeEscaped(out, obj_[i].first);
            out += ": ";
            obj_[i].second.write(out, indent + 1);
            if (i + 1 < obj_.size())
                out += ",";
            out += "\n";
        }
        out += pad + "}";
        break;
      }
    }
}

std::string
Value::dump() const
{
    std::string out;
    write(out, 0);
    out += "\n";
    return out;
}

Value
Value::parse(const std::string &text, const std::string &where)
{
    Parser p{text, where};
    Value v = p.parseValue(0);
    p.skipWs();
    if (p.pos != text.size())
        p.fail("trailing garbage after the document");
    return v;
}

Value
Value::parseFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        simError("json: cannot open %s", path.c_str());
    std::ostringstream ss;
    ss << in.rdbuf();
    return parse(ss.str(), path);
}

} // namespace bifsim::json
