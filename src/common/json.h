#ifndef BIFSIM_COMMON_JSON_H
#define BIFSIM_COMMON_JSON_H

/**
 * @file
 * A minimal JSON value: ordered-object document model, recursive
 * descent parser, pretty-printing writer.
 *
 * The simulator's own serialisation stays TLV (snapshot/, fleet
 * proto); JSON exists at the edges where humans and CI diff tools
 * live — the BENCH_*.json family every bench emits through
 * bench_util.h and the baseline-diffing sweep harness
 * (metrics/sweep.h) that reads those files back.  The parser accepts
 * exactly what the writer produces plus ordinary hand-edited JSON
 * (nested objects/arrays, doubles, bools, null, strings with the
 * common escapes); it rejects everything else with a located
 * SimError, depth-capped so a hostile file cannot recurse the stack
 * away.
 *
 * Objects preserve insertion order so regenerated bench files diff
 * cleanly against committed baselines line by line, not just
 * structurally.
 */

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace bifsim::json {

class Value;

/** Object member list; insertion-ordered, names unique by convention
 *  (set() replaces, the parser keeps the last duplicate). */
using Members = std::vector<std::pair<std::string, Value>>;

class Value
{
  public:
    enum class Kind : uint8_t { Null, Bool, Num, Str, Arr, Obj };

    Value() = default;
    Value(bool b) : kind_(Kind::Bool), bool_(b) {}
    Value(double d) : kind_(Kind::Num), num_(d) {}
    Value(int v) : kind_(Kind::Num), num_(v), wholeHint_(true) {}
    Value(int64_t v)
        : kind_(Kind::Num), num_(static_cast<double>(v)),
          wholeHint_(true)
    {
    }
    Value(uint64_t v)
        : kind_(Kind::Num), num_(static_cast<double>(v)),
          wholeHint_(true)
    {
    }
    Value(const char *s) : kind_(Kind::Str), str_(s) {}
    Value(std::string s) : kind_(Kind::Str), str_(std::move(s)) {}

    /** Fresh empty containers. */
    static Value object();
    static Value array();

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNum() const { return kind_ == Kind::Num; }
    bool isStr() const { return kind_ == Kind::Str; }
    bool isArr() const { return kind_ == Kind::Arr; }
    bool isObj() const { return kind_ == Kind::Obj; }

    /** Typed accessors; wrong-kind access throws SimError (the sweep
     *  harness reads files users regenerate by hand). */
    bool boolean() const;
    double num() const;
    const std::string &str() const;
    const std::vector<Value> &arr() const;
    const Members &obj() const;

    /** Object lookup; nullptr when absent or not an object. */
    const Value *find(const std::string &key) const;

    /** Object insert-or-replace (makes this an object if Null). */
    void set(const std::string &key, Value v);

    /** Array append (makes this an array if Null). */
    void push(Value v);

    /** Serialises with two-space indentation and a trailing newline
     *  at top level.  Whole-valued numbers print without a decimal
     *  point so counters survive a parse/dump round trip textually. */
    std::string dump() const;

    /** Parses @p text; @p where names the source in error messages.
     *  @throws SimError on any syntax violation. */
    static Value parse(const std::string &text,
                       const std::string &where = "<json>");

    /** Reads and parses @p path.  @throws SimError (also on I/O). */
    static Value parseFile(const std::string &path);

  private:
    void write(std::string &out, int indent) const;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double num_ = 0;
    bool wholeHint_ = false;   ///< Constructed from an integer.
    std::string str_;
    std::vector<Value> arr_;
    Members obj_;
};

} // namespace bifsim::json

#endif // BIFSIM_COMMON_JSON_H
