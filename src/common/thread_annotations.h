#ifndef BIFSIM_COMMON_THREAD_ANNOTATIONS_H
#define BIFSIM_COMMON_THREAD_ANNOTATIONS_H

/**
 * @file
 * Compile-time concurrency contracts (DESIGN.md §5i).
 *
 * Clang Thread Safety Analysis attribute macros plus annotated
 * `sim::Mutex` / `sim::LockGuard` / `sim::UniqueLock` / `sim::CondVar`
 * wrappers.  Under clang with `-Wthread-safety` (CI builds it with
 * `-Werror=thread-safety`), the prose threading contracts that used to
 * live only in doc comments become compiler-enforced:
 *
 *  - every piece of data a lock guards is declared `GUARDED_BY(lock_)`
 *    and any unlocked access fails the build;
 *  - `REQUIRES(lock_)` on a function means "caller must hold lock_";
 *  - `EXCLUDES(lock_)` means "caller must NOT hold lock_" (deadlock
 *    guard for functions that acquire it themselves);
 *  - `ACQUIRED_BEFORE` declares lock ordering, checked under
 *    `-Wthread-safety-beta`.
 *
 * Under GCC (and any compiler without the attributes) every macro
 * expands to nothing and the wrappers compile down to the plain
 * `std::` types with zero overhead, so the annotations cost nothing
 * outside the clang static-analysis build.
 *
 * Repo rule (enforced by `examples/simlint`): no `std::mutex`,
 * `std::condition_variable` or `std::shared_mutex` data member may be
 * declared anywhere in `src/` outside this header — components use the
 * `sim::` wrappers so the analysis sees every lock — and every
 * `sim::Mutex` member must be referenced by at least one annotation
 * (`GUARDED_BY` / `REQUIRES` / `ACQUIRE` / `EXCLUDES` / ...) in its
 * file.  Lock-free structures (`SliceDeque`, `ShaderCacheL2` buckets,
 * the GMMU epoch protocol, per-thread `GpuTlb`/`ShaderCacheL1`) are
 * exempt by design; the why is documented per structure and in §5i.
 */

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define BIFSIM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define BIFSIM_THREAD_ANNOTATION(x)   // no-op outside clang
#endif

#define CAPABILITY(x) BIFSIM_THREAD_ANNOTATION(capability(x))

#define SCOPED_CAPABILITY BIFSIM_THREAD_ANNOTATION(scoped_lockable)

#define GUARDED_BY(x) BIFSIM_THREAD_ANNOTATION(guarded_by(x))

#define PT_GUARDED_BY(x) BIFSIM_THREAD_ANNOTATION(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) \
    BIFSIM_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

#define ACQUIRED_AFTER(...) \
    BIFSIM_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

#define REQUIRES(...) \
    BIFSIM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

#define REQUIRES_SHARED(...) \
    BIFSIM_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

#define ACQUIRE(...) \
    BIFSIM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) \
    BIFSIM_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

#define RELEASE(...) \
    BIFSIM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) \
    BIFSIM_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) \
    BIFSIM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

#define EXCLUDES(...) BIFSIM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

#define ASSERT_CAPABILITY(x) \
    BIFSIM_THREAD_ANNOTATION(assert_capability(x))

#define RETURN_CAPABILITY(x) BIFSIM_THREAD_ANNOTATION(lock_returned(x))

#define NO_THREAD_SAFETY_ANALYSIS \
    BIFSIM_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace bifsim::sim {

/**
 * An annotated mutex capability.  Drop-in for the `std::mutex` members
 * it replaces; `native()` exposes the underlying `std::mutex` for
 * `sim::CondVar` (never lock it directly — that would hide the
 * acquisition from the analysis).
 */
class CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() ACQUIRE() { m_.lock(); }
    void unlock() RELEASE() { m_.unlock(); }
    bool try_lock() TRY_ACQUIRE(true) { return m_.try_lock(); }

    std::mutex &native() { return m_; }

  private:
    std::mutex m_;
};

/** RAII scope holding a sim::Mutex for its whole lifetime
 *  (`std::lock_guard` equivalent). */
class SCOPED_CAPABILITY LockGuard
{
  public:
    explicit LockGuard(Mutex &m) ACQUIRE(m) : m_(m) { m_.lock(); }
    ~LockGuard() RELEASE() { m_.unlock(); }

    LockGuard(const LockGuard &) = delete;
    LockGuard &operator=(const LockGuard &) = delete;

  private:
    Mutex &m_;
};

/**
 * Relockable RAII scope (`std::unique_lock` equivalent): supports the
 * unlock-work-relock pattern and condition-variable waits.  The
 * analysis tracks the lock/unlock calls, so guarded accesses between
 * unlock() and lock() are flagged exactly as they should be.
 */
class SCOPED_CAPABILITY UniqueLock
{
  public:
    explicit UniqueLock(Mutex &m) ACQUIRE(m) : ul_(m.native()) {}
    ~UniqueLock() RELEASE() = default;

    UniqueLock(const UniqueLock &) = delete;
    UniqueLock &operator=(const UniqueLock &) = delete;

    void lock() ACQUIRE() { ul_.lock(); }
    void unlock() RELEASE() { ul_.unlock(); }

    std::unique_lock<std::mutex> &native() { return ul_; }

  private:
    std::unique_lock<std::mutex> ul_;
};

/**
 * Condition variable paired with sim::Mutex through sim::UniqueLock.
 *
 * wait() atomically releases and reacquires the lock, so the
 * capability state is unchanged across the call — the analysis needs
 * no annotation here.  Call sites should prefer explicit
 * `while (!cond) cv.wait(l);` loops over predicate lambdas: the
 * condition read then sits in the function the analysis is checking,
 * with the capability visibly held, instead of inside a lambda it
 * treats as an unrelated unlocked function.
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    void notify_one() noexcept { cv_.notify_one(); }
    void notify_all() noexcept { cv_.notify_all(); }

    void wait(UniqueLock &l) { cv_.wait(l.native()); }

    template <class Rep, class Period>
    std::cv_status
    wait_for(UniqueLock &l,
             const std::chrono::duration<Rep, Period> &dur)
    {
        return cv_.wait_for(l.native(), dur);
    }

  private:
    std::condition_variable cv_;
};

} // namespace bifsim::sim

#endif // BIFSIM_COMMON_THREAD_ANNOTATIONS_H
