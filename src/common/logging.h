#ifndef BIFSIM_COMMON_LOGGING_H
#define BIFSIM_COMMON_LOGGING_H

/**
 * @file
 * Status-message and error-reporting helpers, following the gem5
 * panic/fatal/warn/inform convention:
 *
 *  - panic():  an internal simulator bug.  Never the user's fault.
 *              Prints a message and aborts (core dump friendly).
 *  - fatal():  the simulation cannot continue because of a user error
 *              (bad configuration, invalid input).  Exits with code 1.
 *  - warn():   something is modelled approximately but probably works.
 *  - inform(): a normal operating message.
 *
 * Messages use printf-style formatting.
 */

#include <cstdarg>
#include <cstdint>
#include <string>

namespace bifsim {

/** Formats a printf-style message into a std::string. */
std::string vstrfmt(const char *fmt, va_list ap);

/** Formats a printf-style message into a std::string. */
std::string strfmt(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Reports an internal simulator bug and aborts. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Reports an unrecoverable user error and exits with status 1. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Reports a condition that is modelled imprecisely but non-fatally. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Reports a normal status message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Globally enables/disables inform() output (benches silence it). */
void setInformEnabled(bool enabled);

/** Returns whether inform() output is currently enabled. */
bool informEnabled();

/**
 * Exception carrying a user-facing simulation error.
 *
 * Library code that may run inside tests throws SimError instead of
 * calling fatal() directly so callers can recover; fatal() remains for
 * command-line tools.
 */
class SimError : public std::exception
{
  public:
    explicit SimError(std::string message) : message_(std::move(message)) {}

    const char *what() const noexcept override { return message_.c_str(); }

  private:
    std::string message_;
};

/** Throws SimError with a printf-style formatted message. */
[[noreturn]] void simError(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace bifsim

#endif // BIFSIM_COMMON_LOGGING_H
