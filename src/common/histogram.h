#ifndef BIFSIM_COMMON_HISTOGRAM_H
#define BIFSIM_COMMON_HISTOGRAM_H

/**
 * @file
 * A fixed-bucket histogram used by the instrumentation layer
 * (e.g.\ the clause-size distribution of Fig. 13).
 */

#include <cstdint>
#include <string>
#include <vector>

namespace bifsim {

/**
 * Histogram over integer bucket indices [0, numBuckets).
 *
 * Samples outside the range are clamped into the first/last bucket.
 */
class Histogram
{
  public:
    /** Creates a histogram with @p num_buckets buckets. */
    explicit Histogram(size_t num_buckets = 0) : counts_(num_buckets, 0) {}

    /** Adds @p weight samples to the bucket of @p value (clamped). */
    void
    sample(int64_t value, uint64_t weight = 1)
    {
        if (counts_.empty())
            return;
        if (value < 0)
            value = 0;
        size_t idx = static_cast<size_t>(value);
        if (idx >= counts_.size())
            idx = counts_.size() - 1;
        counts_[idx] += weight;
    }

    /** Number of buckets. */
    size_t size() const { return counts_.size(); }

    /** Raw count in bucket @p idx. */
    uint64_t count(size_t idx) const { return counts_.at(idx); }

    /** Total sample weight across all buckets. */
    uint64_t
    total() const
    {
        uint64_t t = 0;
        for (uint64_t c : counts_)
            t += c;
        return t;
    }

    /** Fraction of total weight in bucket @p idx (0 if empty). */
    double
    fraction(size_t idx) const
    {
        uint64_t t = total();
        return t == 0 ? 0.0 : static_cast<double>(counts_.at(idx)) / t;
    }

    /** Weighted mean of bucket indices (0 if empty). */
    double
    mean() const
    {
        uint64_t t = total();
        if (t == 0)
            return 0.0;
        double sum = 0.0;
        for (size_t i = 0; i < counts_.size(); ++i)
            sum += static_cast<double>(i) * static_cast<double>(counts_[i]);
        return sum / static_cast<double>(t);
    }

    /** Merges another histogram of the same shape into this one. */
    void
    merge(const Histogram &other)
    {
        if (counts_.size() < other.counts_.size())
            counts_.resize(other.counts_.size(), 0);
        for (size_t i = 0; i < other.counts_.size(); ++i)
            counts_[i] += other.counts_[i];
    }

    /** Subtracts a previously merged baseline of the same shape
     *  (counts are monotone, so @p other must be bucket-wise <=). */
    void
    subtract(const Histogram &other)
    {
        for (size_t i = 0; i < other.counts_.size() && i < counts_.size();
             ++i)
            counts_[i] -= other.counts_[i];
    }

    /** Resets all buckets to zero. */
    void
    reset()
    {
        for (uint64_t &c : counts_)
            c = 0;
    }

  private:
    std::vector<uint64_t> counts_;
};

} // namespace bifsim

#endif // BIFSIM_COMMON_HISTOGRAM_H
