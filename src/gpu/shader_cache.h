#ifndef BIFSIM_GPU_SHADER_CACHE_H
#define BIFSIM_GPU_SHADER_CACHE_H

/**
 * @file
 * Sharded shader decode cache (paper §III-B2: each binary is decoded
 * exactly once, then reused by every job that references it).
 *
 * The original cache was a single unordered_map guarded by the GPU's
 * MMIO lock, so every per-job lookup contended with control-register
 * traffic and IRQ delivery.  This version splits it into two levels:
 *
 *  - **L2** (`ShaderCacheL2`, one per GpuDevice): a fixed-bucket hash
 *    with *lock-free reads*.  Each bucket is an atomic head pointer
 *    to a singly-linked list of immutable nodes; lookups traverse
 *    with acquire loads and never take a lock.  Inserts are
 *    serialised by a writer mutex and publish with a release store.
 *  - **L1** (`ShaderCacheL1`, one per consumer thread): a small
 *    direct-mapped array of (va -> shader) entries.  A hit touches
 *    no shared memory at all — not even the L2 bucket heads or the
 *    shader's shared_ptr refcount.
 *
 * Invalidation is epoch-based, the same protocol the worker TLBs use
 * (see gmmu.h): GPU_CMD cache-flush, a real AS_TRANSTAB root change
 * and snapshot restore bump the L2 epoch.  Nodes carry the epoch at
 * which decoding *started*, so a flush that lands while a decode is
 * in flight stales the resulting node before it is ever served — the
 * next lookup re-decodes.  L1s compare their recorded epoch against
 * the L2 epoch on every lookup and self-clear when stale.
 *
 * Reclamation: stale L2 nodes are unreachable to lookups (epoch
 * mismatch) but are only *freed* by purge(), which requires
 * quiescence (no concurrent lookups) — reset, restore and
 * destruction.  This keeps the read path free of hazard pointers;
 * the retained memory is bounded by the number of distinct shader
 * binaries decoded since the last quiescent point.
 *
 * Threading contract:
 *  - lookup()            any thread, lock-free.
 *  - insert()            any thread (serialised internally).
 *  - invalidate()        any thread (single atomic bump).
 *  - epoch()             any thread.
 *  - purge()             only while no other thread can be inside
 *                        lookup()/insert() (device quiescent).
 *  - ShaderCacheL1       owned by exactly one thread; never shared.
 */

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/thread_annotations.h"

namespace bifsim::gpu {

struct DecodedShader;

/** Shared decode-cache level: lock-free reads, mutex-serialised
 *  inserts, epoch invalidation, quiescent reclamation. */
class ShaderCacheL2
{
  public:
    ShaderCacheL2() = default;
    ~ShaderCacheL2();

    ShaderCacheL2(const ShaderCacheL2 &) = delete;
    ShaderCacheL2 &operator=(const ShaderCacheL2 &) = delete;

    /**
     * Lock-free lookup of the shader decoded from GPU VA @p va.
     * Returns null on miss or when every matching node is stale.
     * Any thread.
     */
    std::shared_ptr<DecodedShader> lookup(uint32_t va) const;

    /**
     * Publishes @p shader for @p va, stamped with @p decode_epoch —
     * the epoch() observed *before* the decode began, so an
     * invalidate() racing the decode stales the node immediately.
     * Any thread; inserts are serialised internally.
     */
    void insert(uint32_t va, std::shared_ptr<DecodedShader> shader,
                uint64_t decode_epoch) EXCLUDES(writeLock_);

    /** Makes every current node stale (single atomic bump; nodes are
     *  reclaimed later by purge()).  Any thread. */
    void invalidate() { epoch_.fetch_add(1, std::memory_order_release); }

    /** Current invalidation epoch.  Any thread. */
    uint64_t
    epoch() const
    {
        return epoch_.load(std::memory_order_acquire);
    }

    /**
     * Frees every node (live and stale) and bumps the epoch.
     * QUIESCENT ONLY: no concurrent lookup()/insert() may be running
     * — callers are GpuDevice::reset()/restoreState()/~GpuDevice(),
     * all of which hold the no-active-chain invariant.
     */
    void purge();

    /** Live (current-epoch) entries; approximate under concurrency. */
    size_t liveCount() const;

  private:
    static constexpr size_t kBuckets = 64;

    struct Node
    {
        uint32_t va;
        uint64_t epoch;
        std::shared_ptr<DecodedShader> shader;
        Node *next;
    };

    static size_t
    bucketOf(uint32_t va)
    {
        return (va * 2654435761u) >> 26 & (kBuckets - 1);
    }

    // The bucket heads and epoch are deliberately NOT guarded by
    // writeLock_: the read path is lock-free by design (acquire loads
    // pairing with insert()'s release publish; §5i lock-free exemption).
    // writeLock_ only serialises concurrent inserts against each other.
    std::atomic<Node *> buckets_[kBuckets] = {};
    std::atomic<uint64_t> epoch_{1};
    sim::Mutex writeLock_;   ///< Serialises insert(); purge() needs
                             ///< quiescence instead (see above).
};

/**
 * Per-thread decode-cache level.  Direct-mapped; entries hold their
 * own shared_ptr so a hit performs zero shared-memory traffic.
 * Strictly thread-local: each consumer (the submit path, each pool
 * worker) owns one and no other thread may touch it.
 */
class ShaderCacheL1
{
  public:
    static constexpr size_t kEntries = 8;

    /**
     * Looks up @p va, falling back to @p l2 on miss (and caching the
     * result).  Self-clears when the L2 epoch has moved.  Returns
     * null when neither level has a current-epoch entry.
     */
    std::shared_ptr<DecodedShader> get(const ShaderCacheL2 &l2,
                                       uint32_t va);

    /** Drops all entries (e.g. when the owner goes idle). */
    void
    clear()
    {
        for (Entry &e : entries_)
            e = Entry{};
    }

    /** @name Thread-local hit counters (owner thread reads/resets). */
    ///@{
    uint64_t hits = 0;     ///< Served from this L1.
    uint64_t l2Fills = 0;  ///< Misses that hit the shared L2.
    ///@}

  private:
    struct Entry
    {
        uint32_t va = 0;
        std::shared_ptr<DecodedShader> shader;   ///< Null = empty.
    };

    static size_t
    slotOf(uint32_t va)
    {
        return (va * 2654435761u) >> 28 & (kEntries - 1);
    }

    Entry entries_[kEntries];
    uint64_t epoch_ = 0;   ///< L2 epoch the entries were filled under.
};

} // namespace bifsim::gpu

#endif // BIFSIM_GPU_SHADER_CACHE_H
