#ifndef BIFSIM_GPU_REF_REF_INTERP_H
#define BIFSIM_GPU_REF_REF_INTERP_H

/**
 * @file
 * An independent reference interpreter for the BIF ISA.
 *
 * The paper validates its GPU model against Arm's proprietary
 * stand-alone simulator using instruction tracing and fuzzing (§V-A2).
 * This module is the open equivalent: a deliberately simple,
 * obviously-correct scalar interpreter, written independently of the
 * optimised shader-core executor, used as the differential-testing
 * oracle.  It executes one thread at a time (no warps, no clause
 * batching) against a flat memory, so any divergence between the two
 * implementations indicates a bug in one of them.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "gpu/isa/bif.h"

namespace bifsim::gpu::ref {

/** The execution context for a single reference thread. */
struct RefContext
{
    uint32_t localId[3] = {0, 0, 0};
    uint32_t groupId[3] = {0, 0, 0};
    uint32_t localSize[3] = {1, 1, 1};
    uint32_t gridSize[3] = {1, 1, 1};
    uint32_t numGroups[3] = {1, 1, 1};
    uint32_t laneId = 0;

    std::vector<uint32_t> args;       ///< Argument table words.
    std::vector<uint8_t> *globalMem = nullptr;  ///< Flat global memory.
    std::vector<uint8_t> *localMem = nullptr;   ///< Flat local memory.
};

/** Result of a reference run. */
struct RefResult
{
    bool ok = true;
    std::string error;
    uint32_t grf[bif::kNumGrfRegs] = {};   ///< Final register file.
    uint64_t executedInstrs = 0;
    std::vector<std::string> trace;        ///< Optional instr trace.
};

/**
 * Executes @p mod for one thread until Ret / falling off the end.
 *
 * @param mod     The shader module (must validate).
 * @param ctx     Thread context (ids, args, memories).
 * @param trace   If true, record a disassembly trace of executed
 *                instructions (the paper's instruction-tracing mode).
 * @param max_instrs  Abort with an error beyond this budget.
 *
 * Barriers are treated as no-ops (single-thread semantics); kernels
 * under differential test against the warp executor must be
 * barrier-free or data-race-free per thread.
 */
RefResult runThread(const bif::Module &mod, const RefContext &ctx,
                    bool trace = false, uint64_t max_instrs = 1u << 22);

} // namespace bifsim::gpu::ref

#endif // BIFSIM_GPU_REF_REF_INTERP_H
