#include "gpu/ref/ref_interp.h"

#include <bit>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/logging.h"

namespace bifsim::gpu::ref {

namespace {

using bif::Op;

struct Machine
{
    const bif::Module &mod;
    const RefContext &ctx;
    uint32_t grf[bif::kNumGrfRegs] = {};
    uint32_t temp[bif::kNumTempRegs] = {};
    uint32_t pc = 0;          ///< Clause index.
    bool done = false;
    std::string error;

    explicit Machine(const bif::Module &m, const RefContext &c)
        : mod(m), ctx(c)
    {
    }

    uint32_t
    readOp(uint8_t o) const
    {
        using namespace bif;
        if (isGrf(o))
            return grf[o];
        if (isTemp(o))
            return temp[o - kOperandTemp0];
        switch (o) {
          case kSrLaneId: return ctx.laneId;
          case kSrLocalIdX: return ctx.localId[0];
          case kSrLocalIdY: return ctx.localId[1];
          case kSrLocalIdZ: return ctx.localId[2];
          case kSrGroupIdX: return ctx.groupId[0];
          case kSrGroupIdY: return ctx.groupId[1];
          case kSrGroupIdZ: return ctx.groupId[2];
          case kSrLocalSizeX: return ctx.localSize[0];
          case kSrLocalSizeY: return ctx.localSize[1];
          case kSrLocalSizeZ: return ctx.localSize[2];
          case kSrGridSizeX: return ctx.gridSize[0];
          case kSrGridSizeY: return ctx.gridSize[1];
          case kSrGridSizeZ: return ctx.gridSize[2];
          case kSrNumGroupsX: return ctx.numGroups[0];
          case kSrNumGroupsY: return ctx.numGroups[1];
          case kSrNumGroupsZ: return ctx.numGroups[2];
          case kSrZero: return 0;
          default: return 0;
        }
    }

    void
    writeOp(uint8_t o, uint32_t v)
    {
        if (bif::isGrf(o))
            grf[o] = v;
        else if (bif::isTemp(o))
            temp[o - bif::kOperandTemp0] = v;
    }

    bool
    mem(std::vector<uint8_t> *m, uint32_t addr, unsigned size,
        bool write, uint32_t &val, const char *what)
    {
        if (!m || addr % size != 0 ||
            static_cast<uint64_t>(addr) + size > m->size()) {
            error = strfmt("%s access out of range at 0x%x", what, addr);
            return false;
        }
        if (write) {
            std::memcpy(m->data() + addr, &val, size);
        } else {
            val = 0;
            std::memcpy(&val, m->data() + addr, size);
        }
        return true;
    }
};

float
asF(uint32_t u)
{
    return std::bit_cast<float>(u);
}

uint32_t
asU(float f)
{
    return std::bit_cast<uint32_t>(f);
}

bool
cmpResult(bif::CmpMode m, bool unordered, int q)
{
    if (unordered)
        return m == bif::CmpMode::Ne;
    switch (m) {
      case bif::CmpMode::Eq: return q == 0;
      case bif::CmpMode::Ne: return q != 0;
      case bif::CmpMode::Lt: return q < 0;
      case bif::CmpMode::Le: return q <= 0;
      case bif::CmpMode::Gt: return q > 0;
      case bif::CmpMode::Ge: return q >= 0;
    }
    return false;
}

} // namespace

RefResult
runThread(const bif::Module &mod, const RefContext &ctx, bool trace,
          uint64_t max_instrs)
{
    RefResult res;
    std::string verr = bif::validate(mod);
    if (!verr.empty()) {
        res.ok = false;
        res.error = "invalid module: " + verr;
        return res;
    }

    Machine m(mod, ctx);
    while (!m.done) {
        if (m.pc >= mod.clauses.size())
            break;   // Fell off the end: thread terminates.
        const bif::Clause &cl = mod.clauses[m.pc];
        uint32_t next = m.pc + 1;

        for (const bif::Tuple &tp : cl.tuples) {
            for (const bif::Instr &in : tp.slot) {
                if (in.op == Op::Nop)
                    continue;
                if (++res.executedInstrs > max_instrs) {
                    res.ok = false;
                    res.error = "instruction budget exceeded";
                    return res;
                }
                if (trace)
                    res.trace.push_back(bif::disassemble(in));

                uint32_t a = m.readOp(in.src0);
                uint32_t b = m.readOp(in.src1);
                uint32_t c = m.readOp(in.src2);
                uint32_t r = 0;
                bool wrote = true;

                switch (in.op) {
                  case Op::FAdd: r = asU(asF(a) + asF(b)); break;
                  case Op::FSub: r = asU(asF(a) - asF(b)); break;
                  case Op::FMul: r = asU(asF(a) * asF(b)); break;
                  case Op::FFma: r = asU(asF(a) * asF(b) + asF(c)); break;
                  case Op::FMin: r = asU(std::fmin(asF(a), asF(b))); break;
                  case Op::FMax: r = asU(std::fmax(asF(a), asF(b))); break;
                  case Op::FAbs: r = asU(std::fabs(asF(a))); break;
                  case Op::FNeg: r = asU(-asF(a)); break;
                  case Op::FFloor: r = asU(std::floor(asF(a))); break;
                  case Op::IAdd: r = a + b; break;
                  case Op::ISub: r = a - b; break;
                  case Op::IMul: r = a * b; break;
                  case Op::IAnd: r = a & b; break;
                  case Op::IOr: r = a | b; break;
                  case Op::IXor: r = a ^ b; break;
                  case Op::INot: r = ~a; break;
                  case Op::IShl: r = a << (b & 31); break;
                  case Op::IShr: r = a >> (b & 31); break;
                  case Op::IAsr:
                    r = static_cast<uint32_t>(static_cast<int32_t>(a) >>
                                              (b & 31));
                    break;
                  case Op::IMin:
                    r = static_cast<int32_t>(a) < static_cast<int32_t>(b)
                            ? a : b;
                    break;
                  case Op::IMax:
                    r = static_cast<int32_t>(a) > static_cast<int32_t>(b)
                            ? a : b;
                    break;
                  case Op::UMin: r = std::min(a, b); break;
                  case Op::UMax: r = std::max(a, b); break;
                  case Op::FCmp: {
                    float fa = asF(a), fb = asF(b);
                    bool un = std::isnan(fa) || std::isnan(fb);
                    int q = un ? 0 : fa < fb ? -1 : fa > fb ? 1 : 0;
                    r = cmpResult(static_cast<bif::CmpMode>(in.imm & 7),
                                  un, q);
                    break;
                  }
                  case Op::ICmp: {
                    int32_t sa = static_cast<int32_t>(a);
                    int32_t sb = static_cast<int32_t>(b);
                    r = cmpResult(static_cast<bif::CmpMode>(in.imm & 7),
                                  false, sa < sb ? -1 : sa > sb ? 1 : 0);
                    break;
                  }
                  case Op::UCmp:
                    r = cmpResult(static_cast<bif::CmpMode>(in.imm & 7),
                                  false, a < b ? -1 : a > b ? 1 : 0);
                    break;
                  case Op::CSel: r = a != 0 ? b : c; break;
                  case Op::Mov: r = a; break;
                  case Op::MovImm:
                    r = static_cast<uint32_t>(in.imm);
                    break;
                  case Op::F2I: {
                    float f = asF(a);
                    if (std::isnan(f))
                        r = 0;
                    else if (f >= 2147483647.0f)
                        r = 0x7fffffffu;
                    else if (f <= -2147483648.0f)
                        r = 0x80000000u;
                    else
                        r = static_cast<uint32_t>(
                            static_cast<int32_t>(f));
                    break;
                  }
                  case Op::F2U: {
                    float f = asF(a);
                    if (std::isnan(f) || f <= 0.0f)
                        r = 0;
                    else if (f >= 4294967295.0f)
                        r = 0xffffffffu;
                    else
                        r = static_cast<uint32_t>(f);
                    break;
                  }
                  case Op::I2F:
                    r = asU(static_cast<float>(static_cast<int32_t>(a)));
                    break;
                  case Op::U2F: r = asU(static_cast<float>(a)); break;
                  case Op::FRcp: r = asU(1.0f / asF(a)); break;
                  case Op::FRsqrt:
                    r = asU(1.0f / std::sqrt(asF(a)));
                    break;
                  case Op::FSqrt: r = asU(std::sqrt(asF(a))); break;
                  case Op::FExp2: r = asU(std::exp2(asF(a))); break;
                  case Op::FLog2: r = asU(std::log2(asF(a))); break;
                  case Op::FSin: r = asU(std::sin(asF(a))); break;
                  case Op::FCos: r = asU(std::cos(asF(a))); break;
                  case Op::IDiv: {
                    int32_t sa = static_cast<int32_t>(a);
                    int32_t sb = static_cast<int32_t>(b);
                    if (sb == 0)
                        r = 0;
                    else if (sa == std::numeric_limits<int32_t>::min() &&
                             sb == -1)
                        r = a;
                    else
                        r = static_cast<uint32_t>(sa / sb);
                    break;
                  }
                  case Op::IRem: {
                    int32_t sa = static_cast<int32_t>(a);
                    int32_t sb = static_cast<int32_t>(b);
                    if (sb == 0 ||
                        (sa == std::numeric_limits<int32_t>::min() &&
                         sb == -1))
                        r = 0;
                    else
                        r = static_cast<uint32_t>(sa % sb);
                    break;
                  }
                  case Op::UDiv: r = b ? a / b : 0; break;
                  case Op::URem: r = b ? a % b : 0; break;
                  case Op::LdRom:
                    r = static_cast<size_t>(in.imm) < mod.rom.size()
                            ? mod.rom[in.imm] : 0;
                    break;
                  case Op::LdArg:
                    r = static_cast<size_t>(in.imm) < m.ctx.args.size()
                            ? m.ctx.args[in.imm] : 0;
                    break;
                  case Op::LdGlobal:
                    if (!m.mem(ctx.globalMem, a + in.imm, 4, false, r,
                               "global")) {
                        goto fault;
                    }
                    break;
                  case Op::LdGlobalU8: {
                    uint32_t tmp = 0;
                    if (!m.mem(ctx.globalMem, a + in.imm, 1, false, tmp,
                               "global")) {
                        goto fault;
                    }
                    r = tmp & 0xff;
                    break;
                  }
                  case Op::StGlobal:
                    if (!m.mem(ctx.globalMem, a + in.imm, 4, true, b,
                               "global")) {
                        goto fault;
                    }
                    wrote = false;
                    break;
                  case Op::StGlobalU8: {
                    uint32_t tmp = b & 0xff;
                    if (!m.mem(ctx.globalMem, a + in.imm, 1, true, tmp,
                               "global")) {
                        goto fault;
                    }
                    wrote = false;
                    break;
                  }
                  case Op::LdLocal:
                    if (!m.mem(ctx.localMem, a + in.imm, 4, false, r,
                               "local")) {
                        goto fault;
                    }
                    break;
                  case Op::StLocal:
                    if (!m.mem(ctx.localMem, a + in.imm, 4, true, b,
                               "local")) {
                        goto fault;
                    }
                    wrote = false;
                    break;
                  case Op::AtomAddG: {
                    uint32_t old = 0;
                    if (!m.mem(ctx.globalMem, a + in.imm, 4, false, old,
                               "global")) {
                        goto fault;
                    }
                    uint32_t nv = old + b;
                    if (!m.mem(ctx.globalMem, a + in.imm, 4, true, nv,
                               "global")) {
                        goto fault;
                    }
                    r = old;
                    break;
                  }
                  case Op::AtomAddL: {
                    uint32_t old = 0;
                    if (!m.mem(ctx.localMem, a + in.imm, 4, false, old,
                               "local")) {
                        goto fault;
                    }
                    uint32_t nv = old + b;
                    if (!m.mem(ctx.localMem, a + in.imm, 4, true, nv,
                               "local")) {
                        goto fault;
                    }
                    r = old;
                    break;
                  }
                  case Op::Branch:
                    next = static_cast<uint32_t>(in.imm);
                    wrote = false;
                    break;
                  case Op::BranchZ:
                    if (a == 0)
                        next = static_cast<uint32_t>(in.imm);
                    wrote = false;
                    break;
                  case Op::BranchNZ:
                    if (a != 0)
                        next = static_cast<uint32_t>(in.imm);
                    wrote = false;
                    break;
                  case Op::Barrier:
                    wrote = false;   // Single-thread: no-op.
                    break;
                  case Op::Ret:
                    m.done = true;
                    wrote = false;
                    break;
                  default:
                    wrote = false;
                    break;
                }
                if (wrote && in.dst != bif::kOperandNone)
                    m.writeOp(in.dst, r);
            }
        }
        m.pc = next;
    }

    std::memcpy(res.grf, m.grf, sizeof(res.grf));
    return res;

fault:
    res.ok = false;
    res.error = m.error;
    std::memcpy(res.grf, m.grf, sizeof(res.grf));
    return res;
}

} // namespace bifsim::gpu::ref
