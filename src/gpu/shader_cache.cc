#include "gpu/shader_cache.h"

#include "gpu/shader_core.h"

namespace bifsim::gpu {

ShaderCacheL2::~ShaderCacheL2()
{
    purge();
}

std::shared_ptr<DecodedShader>
ShaderCacheL2::lookup(uint32_t va) const
{
    uint64_t cur = epoch_.load(std::memory_order_acquire);
    for (const Node *n =
             buckets_[bucketOf(va)].load(std::memory_order_acquire);
         n != nullptr; n = n->next) {
        if (n->va == va && n->epoch == cur)
            return n->shader;
    }
    return nullptr;
}

void
ShaderCacheL2::insert(uint32_t va, std::shared_ptr<DecodedShader> shader,
                      uint64_t decode_epoch)
{
    sim::LockGuard g(writeLock_);
    std::atomic<Node *> &head = buckets_[bucketOf(va)];
    Node *n = new Node{va, decode_epoch, std::move(shader),
                       head.load(std::memory_order_relaxed)};
    // Publish: a concurrent lock-free lookup that wins this release /
    // its acquire pair sees a fully-constructed node.
    head.store(n, std::memory_order_release);
}

void
ShaderCacheL2::purge()
{
    // Quiescent by contract: no lookup() may be traversing.  Bump the
    // epoch anyway so any L1 still holding entries self-clears on its
    // next get().
    epoch_.fetch_add(1, std::memory_order_release);
    for (std::atomic<Node *> &head : buckets_) {
        Node *n = head.exchange(nullptr, std::memory_order_relaxed);
        while (n) {
            Node *next = n->next;
            delete n;
            n = next;
        }
    }
}

size_t
ShaderCacheL2::liveCount() const
{
    uint64_t cur = epoch_.load(std::memory_order_acquire);
    size_t live = 0;
    for (const std::atomic<Node *> &head : buckets_) {
        for (const Node *n = head.load(std::memory_order_acquire);
             n != nullptr; n = n->next) {
            if (n->epoch == cur)
                live++;
        }
    }
    return live;
}

std::shared_ptr<DecodedShader>
ShaderCacheL1::get(const ShaderCacheL2 &l2, uint32_t va)
{
    uint64_t cur = l2.epoch();
    if (epoch_ != cur) {
        clear();
        epoch_ = cur;
    }
    Entry &e = entries_[slotOf(va)];
    if (e.shader && e.va == va) {
        hits++;
        return e.shader;
    }
    std::shared_ptr<DecodedShader> s = l2.lookup(va);
    if (s) {
        // Re-check the epoch: if an invalidate landed between our
        // epoch read and the L2 lookup, the entry must not be cached
        // under the old stamp (it would survive the next self-clear).
        if (l2.epoch() == cur) {
            e.va = va;
            e.shader = s;
        }
        l2Fills++;
    }
    return s;
}

} // namespace bifsim::gpu
