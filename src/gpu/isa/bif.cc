#include "gpu/isa/bif.h"

#include <cstring>

#include "common/bits.h"
#include "common/logging.h"

namespace bifsim::bif {

Category
category(Op op)
{
    switch (op) {
      case Op::Nop:
        return Category::Nop;
      case Op::LdGlobal: case Op::LdGlobalU8: case Op::StGlobal:
      case Op::StGlobalU8: case Op::LdLocal: case Op::StLocal:
      case Op::AtomAddG: case Op::AtomAddL:
        return Category::LoadStore;
      case Op::Branch: case Op::BranchZ: case Op::BranchNZ:
      case Op::Barrier: case Op::Ret:
        return Category::ControlFlow;
      default:
        return Category::Arith;
    }
}

bool
legalInSlot0(Op op)
{
    Category c = category(op);
    return c == Category::Arith || c == Category::LoadStore ||
           c == Category::Nop;
}

bool
legalInSlot1(Op op)
{
    Category c = category(op);
    return c == Category::Arith || c == Category::ControlFlow ||
           c == Category::Nop;
}

bool
isMemoryOp(Op op)
{
    return category(op) == Category::LoadStore;
}

unsigned
srcUseMask(Op op)
{
    switch (op) {
      // No sources: constants, control transfers, synchronisation.
      case Op::Nop: case Op::MovImm: case Op::LdRom: case Op::LdArg:
      case Op::Branch: case Op::Barrier: case Op::Ret:
        return 0;
      // Unary: src0 only.
      case Op::FAbs: case Op::FNeg: case Op::FFloor: case Op::INot:
      case Op::Mov: case Op::F2I: case Op::F2U: case Op::I2F:
      case Op::U2F: case Op::FRcp: case Op::FRsqrt: case Op::FSqrt:
      case Op::FExp2: case Op::FLog2: case Op::FSin: case Op::FCos:
      case Op::LdGlobal: case Op::LdGlobalU8: case Op::LdLocal:
      case Op::BranchZ: case Op::BranchNZ:
        return 0b001;
      // Three sources.
      case Op::FFma: case Op::CSel:
        return 0b111;
      // Everything else is binary over src0/src1 (stores read the
      // address from src0 and the value from src1).
      default:
        return 0b011;
    }
}

bool
writesDest(Op op)
{
    switch (op) {
      case Op::Nop: case Op::StGlobal: case Op::StGlobalU8:
      case Op::StLocal: case Op::Branch: case Op::BranchZ:
      case Op::BranchNZ: case Op::Barrier: case Op::Ret:
        return false;
      default:
        return true;
    }
}

const char *
opName(Op op)
{
    static const char *names[] = {
        "nop",
        "fadd", "fsub", "fmul", "ffma", "fmin", "fmax", "fabs", "fneg",
        "ffloor",
        "iadd", "isub", "imul", "iand", "ior", "ixor", "inot", "ishl",
        "ishr", "iasr", "imin", "imax", "umin", "umax",
        "fcmp", "icmp", "ucmp",
        "csel", "mov", "movimm",
        "f2i", "f2u", "i2f", "u2f",
        "frcp", "frsqrt", "fsqrt", "fexp2", "flog2", "fsin", "fcos",
        "idiv", "irem", "udiv", "urem",
        "ldrom", "ldarg",
        "ldg", "ldg.u8", "stg", "stg.u8", "ldl", "stl",
        "atomadd.g", "atomadd.l",
        "br", "brz", "brnz", "barrier", "ret",
    };
    auto idx = static_cast<size_t>(op);
    return idx < std::size(names) ? names[idx] : "<bad>";
}

uint64_t
Instr::encode() const
{
    uint64_t w = 0;
    w = insertBits(w, 7, 0, static_cast<uint64_t>(op));
    w = insertBits(w, 15, 8, dst);
    w = insertBits(w, 23, 16, src0);
    w = insertBits(w, 31, 24, src1);
    w = insertBits(w, 39, 32, src2);
    w = insertBits(w, 63, 40, static_cast<uint32_t>(imm) & 0xffffff);
    return w;
}

Instr
Instr::decode(uint64_t w)
{
    Instr i;
    uint64_t opv = bits(w, 7, 0);
    i.op = opv < static_cast<uint64_t>(Op::NumOps_)
               ? static_cast<Op>(opv) : Op::Nop;
    i.dst = static_cast<uint8_t>(bits(w, 15, 8));
    i.src0 = static_cast<uint8_t>(bits(w, 23, 16));
    i.src1 = static_cast<uint8_t>(bits(w, 31, 24));
    i.src2 = static_cast<uint8_t>(bits(w, 39, 32));
    i.imm = static_cast<int32_t>(sext(bits(w, 63, 40), 24));
    return i;
}

namespace {

bool
isControlFlow(Op op)
{
    return category(op) == Category::ControlFlow;
}

/** Checks structural rules; returns "" when OK. */
std::string
validateClause(const Clause &cl, size_t clause_idx, size_t num_clauses,
               uint32_t reg_count)
{
    if (cl.tuples.empty() || cl.tuples.size() > kMaxTuplesPerClause) {
        return strfmt("clause %zu: %zu tuples (must be 1..%u)",
                      clause_idx, cl.tuples.size(), kMaxTuplesPerClause);
    }
    bool temp_written[kNumTempRegs] = {};
    for (size_t t = 0; t < cl.tuples.size(); ++t) {
        for (int s = 0; s < 2; ++s) {
            const Instr &in = cl.tuples[t].slot[s];
            if (in.op == Op::Nop)
                continue;
            if (s == 0 && !legalInSlot0(in.op)) {
                return strfmt("clause %zu tuple %zu: %s illegal in slot 0",
                              clause_idx, t, opName(in.op));
            }
            if (s == 1 && !legalInSlot1(in.op)) {
                return strfmt("clause %zu tuple %zu: %s illegal in slot 1",
                              clause_idx, t, opName(in.op));
            }
            bool is_cf = isControlFlow(in.op);
            if (is_cf && t != cl.tuples.size() - 1) {
                return strfmt(
                    "clause %zu: control flow not in final tuple",
                    clause_idx);
            }
            if (in.op == Op::Barrier &&
                (cl.tuples.size() != 1 ||
                 cl.tuples[0].slot[0].op != Op::Nop)) {
                return strfmt("clause %zu: barrier must be alone",
                              clause_idx);
            }
            if (in.op == Op::Branch || in.op == Op::BranchZ ||
                in.op == Op::BranchNZ) {
                if (in.imm < 0 ||
                    static_cast<size_t>(in.imm) >= num_clauses) {
                    return strfmt(
                        "clause %zu: branch target %d out of range",
                        clause_idx, in.imm);
                }
            }
            // Temp-register scoping: reads must follow a write in this
            // clause; this is what confines temp values to a clause.
            // GRF references must stay below the module's declared
            // register count (semantically-used operands only — dead
            // encoding space carries arbitrary bytes).
            unsigned use = srcUseMask(in.op);
            const uint8_t srcs[3] = {in.src0, in.src1, in.src2};
            for (int k = 0; k < 3; ++k) {
                if (!(use & (1u << k)))
                    continue;
                uint8_t src = srcs[k];
                if (isTemp(src) && !temp_written[src - kOperandTemp0]) {
                    return strfmt(
                        "clause %zu tuple %zu: t%u read before write",
                        clause_idx, t, src - kOperandTemp0);
                }
                if (isGrf(src) && src >= reg_count) {
                    return strfmt(
                        "clause %zu tuple %zu: r%u read but regCount is "
                        "%u", clause_idx, t, src, reg_count);
                }
            }
            if (writesDest(in.op)) {
                if (isGrf(in.dst) && in.dst >= reg_count) {
                    return strfmt(
                        "clause %zu tuple %zu: r%u written but regCount "
                        "is %u", clause_idx, t, in.dst, reg_count);
                }
                if (isTemp(in.dst))
                    temp_written[in.dst - kOperandTemp0] = true;
            }
        }
    }
    return "";
}

} // namespace

std::string
validate(const Module &mod)
{
    if (mod.clauses.empty())
        return "module has no clauses";
    for (size_t c = 0; c < mod.clauses.size(); ++c) {
        std::string e = validateClause(mod.clauses[c], c,
                                       mod.clauses.size(), mod.regCount);
        if (!e.empty())
            return e;
    }
    return "";
}

std::vector<uint8_t>
encode(const Module &mod)
{
    std::string err = validate(mod);
    if (!err.empty())
        simError("BIF encode: %s", err.c_str());

    std::vector<uint8_t> out;
    auto put32 = [&](uint32_t v) {
        out.push_back(v & 0xff);
        out.push_back((v >> 8) & 0xff);
        out.push_back((v >> 16) & 0xff);
        out.push_back((v >> 24) & 0xff);
    };
    auto put64 = [&](uint64_t v) {
        put32(static_cast<uint32_t>(v));
        put32(static_cast<uint32_t>(v >> 32));
    };

    size_t clause_bytes = 0;
    for (const Clause &cl : mod.clauses)
        clause_bytes += 4 + cl.tuples.size() * 16;
    uint32_t clause_off = 32;
    uint32_t rom_off =
        static_cast<uint32_t>(clause_off + clause_bytes);

    put32(kBinaryMagic);
    put32(static_cast<uint32_t>(mod.clauses.size()));
    put32(clause_off);
    put32(rom_off);
    put32(static_cast<uint32_t>(mod.rom.size()));
    put32(mod.regCount);
    put32(mod.localBytes);
    put32(mod.usesBarrier ? kFlagUsesBarrier : 0);

    for (const Clause &cl : mod.clauses) {
        bool has_branch = false;
        for (const Tuple &t : cl.tuples) {
            for (const Instr &in : t.slot)
                has_branch |= isControlFlow(in.op);
        }
        uint32_t hdr = static_cast<uint32_t>(cl.tuples.size() - 1) & 7;
        if (has_branch)
            hdr |= 1u << 3;
        put32(hdr);
        for (const Tuple &t : cl.tuples) {
            put64(t.slot[0].encode());
            put64(t.slot[1].encode());
        }
    }
    for (uint32_t w : mod.rom)
        put32(w);
    return out;
}

bool
decode(const uint8_t *data, size_t size, Module &out, std::string &error)
{
    auto fail = [&](std::string msg) {
        error = std::move(msg);
        return false;
    };
    auto get32 = [&](size_t off) {
        uint32_t v;
        std::memcpy(&v, data + off, 4);
        return v;
    };
    auto get64 = [&](size_t off) {
        uint64_t v;
        std::memcpy(&v, data + off, 8);
        return v;
    };

    if (size < 32)
        return fail("binary too small for header");
    if (get32(0) != kBinaryMagic)
        return fail("bad magic");
    uint32_t num_clauses = get32(4);
    uint32_t clause_off = get32(8);
    uint32_t rom_off = get32(12);
    uint32_t rom_words = get32(16);

    out = Module{};
    out.regCount = get32(20);
    out.localBytes = get32(24);
    out.usesBarrier = (get32(28) & kFlagUsesBarrier) != 0;

    if (num_clauses == 0 || num_clauses > 1u << 20)
        return fail("implausible clause count");
    size_t off = clause_off;
    for (uint32_t c = 0; c < num_clauses; ++c) {
        if (off + 4 > size)
            return fail("truncated clause header");
        uint32_t hdr = get32(off);
        off += 4;
        unsigned tuples = (hdr & 7) + 1;
        Clause cl;
        bool has_cf = false;
        for (unsigned t = 0; t < tuples; ++t) {
            if (off + 16 > size)
                return fail("truncated clause body");
            Tuple tu;
            tu.slot[0] = Instr::decode(get64(off));
            tu.slot[1] = Instr::decode(get64(off + 8));
            off += 16;
            has_cf |= isControlFlow(tu.slot[0].op) ||
                      isControlFlow(tu.slot[1].op);
            cl.tuples.push_back(tu);
        }
        // The has_branch header bit must agree with the clause body: a
        // mismatched bit means the image was not produced by encode()
        // (or was corrupted), and trusting either side would let the
        // clause take a control transfer the header hides (or vice
        // versa).
        if (((hdr >> 3) & 1) != (has_cf ? 1u : 0u)) {
            return fail(strfmt("clause %u: has_branch header bit %u "
                               "disagrees with clause body", c,
                               (hdr >> 3) & 1));
        }
        out.clauses.push_back(std::move(cl));
    }
    if (rom_off + static_cast<size_t>(rom_words) * 4 > size)
        return fail("truncated ROM");
    for (uint32_t i = 0; i < rom_words; ++i)
        out.rom.push_back(get32(rom_off + i * 4));

    std::string verr = validate(out);
    if (!verr.empty())
        return fail("invalid module: " + verr);
    return true;
}

std::string
disassemble(const Instr &in)
{
    auto operand = [](uint8_t o) -> std::string {
        if (o == kOperandNone)
            return "-";
        if (isGrf(o))
            return strfmt("r%u", o);
        if (isTemp(o))
            return strfmt("t%u", o - kOperandTemp0);
        static const char *specials[] = {
            "lane_id", "lid.x", "lid.y", "lid.z", "gid.x", "gid.y",
            "gid.z", "lsz.x", "lsz.y", "lsz.z", "gsz.x", "gsz.y",
            "gsz.z", "ngrp.x", "ngrp.y", "ngrp.z", "zero",
        };
        if (o >= kSrLaneId && o <= kSrZero)
            return specials[o - kSrLaneId];
        return strfmt("?%u", o);
    };
    std::string s = opName(in.op);
    if (in.op == Op::Nop)
        return s;
    s += " " + operand(in.dst);
    for (uint8_t src : {in.src0, in.src1, in.src2}) {
        if (src != kOperandNone)
            s += ", " + operand(src);
    }
    switch (in.op) {
      case Op::MovImm: case Op::LdRom: case Op::LdArg:
      case Op::Branch: case Op::BranchZ: case Op::BranchNZ:
      case Op::LdGlobal: case Op::LdGlobalU8: case Op::StGlobal:
      case Op::StGlobalU8: case Op::LdLocal: case Op::StLocal:
      case Op::AtomAddG: case Op::AtomAddL:
        s += strfmt(", %d", in.imm);
        break;
      case Op::FCmp: case Op::ICmp: case Op::UCmp: {
        static const char *modes[] = {"eq", "ne", "lt", "le", "gt", "ge"};
        unsigned m = static_cast<unsigned>(in.imm) & 7;
        s += strfmt(".%s", m < 6 ? modes[m] : "??");
        break;
      }
      default:
        break;
    }
    return s;
}

std::string
disassemble(const Module &mod)
{
    std::string s;
    for (size_t c = 0; c < mod.clauses.size(); ++c) {
        s += strfmt("clause %zu:\n", c);
        for (const Tuple &t : mod.clauses[c].tuples) {
            s += "    { " + disassemble(t.slot[0]) + " ; " +
                 disassemble(t.slot[1]) + " }\n";
        }
    }
    if (!mod.rom.empty()) {
        s += "rom:";
        for (uint32_t w : mod.rom)
            s += strfmt(" 0x%08x", w);
        s += "\n";
    }
    return s;
}

} // namespace bifsim::bif
