#ifndef BIFSIM_GPU_ISA_BIF_H
#define BIFSIM_GPU_ISA_BIF_H

/**
 * @file
 * The BIF shader instruction set — this project's open stand-in for the
 * Arm Bifrost (Mali-G71) native GPU ISA.
 *
 * Structure mirrors the Bifrost execution model the paper describes:
 *
 *  - Instructions are bundled into **clauses** of up to 8 tuples.
 *  - Each tuple has two issue slots: slot 0 feeds the FMA pipe (and the
 *    load/store unit), slot 1 feeds the ADD/SF pipe (and control flow).
 *    An unused slot is an *empty slot* (Fig. 11's NOP category).
 *  - **Temporary registers** t0..t7 are live only within a clause and
 *    relieve pressure on the 64-entry global register file (Fig. 4b).
 *  - Control flow happens only on clause boundaries; threads are grouped
 *    into quads ("warps") of 4 executing in lockstep, with divergence
 *    tracked per clause boundary (§IV-C).
 *
 * Binary layout (little-endian, in guest memory):
 *
 *   header: 8 x u32
 *     [0] magic 'BIF1'   [1] num_clauses  [2] clause_offset (bytes)
 *     [3] rom_offset     [4] rom_words    [5] reg_count
 *     [6] local_bytes    [7] flags (bit0: uses barrier)
 *   clause stream: per clause a u32 header
 *     bits[2:0] tuple_count-1, bit[3] has_branch
 *     followed by tuple_count x 2 u64 slot words
 *   rom: rom_words x u32 embedded constants
 *
 * Slot word (u64):
 *   [7:0] opcode  [15:8] dst  [23:16] src0  [31:24] src1  [39:32] src2
 *   [63:40] imm24 (signed; also cmp mode, const index, branch target)
 */

#include <cstdint>
#include <string>
#include <vector>

namespace bifsim::bif {

/** Architectural limits of the modelled GPU. */
constexpr unsigned kWarpWidth = 4;        ///< Threads per quad/warp.
constexpr unsigned kNumGrfRegs = 64;      ///< Global register file size.
constexpr unsigned kNumTempRegs = 8;      ///< Clause-temporary registers.
constexpr unsigned kMaxTuplesPerClause = 8;
constexpr uint32_t kBinaryMagic = 0x31464942u;   // "BIF1"

/** Shader binary flags. */
enum BinaryFlags : uint32_t
{
    kFlagUsesBarrier = 1u << 0,
};

/** Shader opcodes. */
enum class Op : uint8_t
{
    Nop = 0,
    // Arithmetic (FMA pipe).
    FAdd, FSub, FMul, FFma, FMin, FMax, FAbs, FNeg, FFloor,
    IAdd, ISub, IMul, IAnd, IOr, IXor, INot, IShl, IShr, IAsr,
    IMin, IMax, UMin, UMax,
    FCmp, ICmp, UCmp,
    CSel, Mov, MovImm,
    // Conversions and special functions (ADD/SF pipe class but legal in
    // either slot).
    F2I, F2U, I2F, U2F,
    FRcp, FRsqrt, FSqrt, FExp2, FLog2, FSin, FCos,
    IDiv, IRem, UDiv, URem,
    // Constant access (uniform ports).
    LdRom,     ///< dst = rom[imm24]           (ROM read)
    LdArg,     ///< dst = argument word imm24  (constant read)
    // Memory (load/store unit; slot 0 only).
    LdGlobal,   ///< dst = *(u32*)(src0 + imm24)
    LdGlobalU8, ///< dst = zext(*(u8*)(src0 + imm24))
    StGlobal,   ///< *(u32*)(src0 + imm24) = src1
    StGlobalU8, ///< *(u8*)(src0 + imm24) = src1 & 0xff
    LdLocal,    ///< dst = local[src0 + imm24]
    StLocal,    ///< local[src0 + imm24] = src1
    AtomAddG,   ///< dst = atomic_fetch_add((i32*)(src0+imm24), src1)
    AtomAddL,   ///< same on local memory
    // Control flow (clause-terminating; slot 1 only).
    Branch,     ///< goto clause imm24
    BranchZ,    ///< if (src0 == 0) goto clause imm24
    BranchNZ,   ///< if (src0 != 0) goto clause imm24
    Barrier,    ///< workgroup barrier (alone in its clause)
    Ret,        ///< thread terminates
    NumOps_,
};

/** Comparison modes carried in imm24 for FCmp/ICmp/UCmp. */
enum class CmpMode : uint8_t { Eq = 0, Ne, Lt, Le, Gt, Ge };

/** Operand encodings. */
enum Operand : uint8_t
{
    kOperandGrf0 = 0,       ///< 0..63  : GRF r0..r63
    kOperandTemp0 = 64,     ///< 64..71 : temp t0..t7
    kSrLaneId = 72,
    kSrLocalIdX = 73, kSrLocalIdY = 74, kSrLocalIdZ = 75,
    kSrGroupIdX = 76, kSrGroupIdY = 77, kSrGroupIdZ = 78,
    kSrLocalSizeX = 79, kSrLocalSizeY = 80, kSrLocalSizeZ = 81,
    kSrGridSizeX = 82, kSrGridSizeY = 83, kSrGridSizeZ = 84,
    kSrNumGroupsX = 85, kSrNumGroupsY = 86, kSrNumGroupsZ = 87,
    kSrZero = 88,
    kOperandNone = 255,
};

/**
 * Unified register-file layout used by the interpreter fast path: the
 * operand encodings above double as indices into one flat per-thread
 * array (0..63 GRF, 64..71 temps, 72..88 specials preloaded at warp
 * init), plus a write-discard sink so every micro-op can commit its
 * result with an unconditional indexed store.  kSrZero serves as the
 * always-zero source for absent operands.
 */
constexpr unsigned kUnifiedSink = kSrZero + 1;         // 89
constexpr unsigned kNumUnifiedRegs = kUnifiedSink + 1; // 90

/** Returns true for operands naming a GRF register. */
constexpr bool isGrf(uint8_t op) { return op < kNumGrfRegs; }

/** Returns true for operands naming a clause-temporary register. */
constexpr bool
isTemp(uint8_t op)
{
    return op >= kOperandTemp0 && op < kOperandTemp0 + kNumTempRegs;
}

/** Returns true for special read-only operands. */
constexpr bool
isSpecial(uint8_t op)
{
    return op >= kSrLaneId && op <= kSrZero;
}

/** Instruction category for the Fig. 11 mix. */
enum class Category : uint8_t { Arith, LoadStore, ControlFlow, Nop };

/** Returns the category of @p op. */
Category category(Op op);

/** Returns true if @p op may occupy tuple slot 0 (FMA / LS pipe). */
bool legalInSlot0(Op op);

/** Returns true if @p op may occupy tuple slot 1 (ADD / CF pipe). */
bool legalInSlot1(Op op);

/** Returns true if @p op reads a memory address from src0. */
bool isMemoryOp(Op op);

/**
 * Which source operands @p op semantically reads, as a bitmask
 * (bit0 = src0, bit1 = src1, bit2 = src2).  Operand fields outside the
 * mask are dead encoding space: the interpreters never read them, so
 * validation and static analysis ignore their contents.
 */
unsigned srcUseMask(Op op);

/** Returns true if @p op commits a result to its dst operand. */
bool writesDest(Op op);

/** Returns the canonical mnemonic. */
const char *opName(Op op);

/** One instruction slot. */
struct Instr
{
    Op op = Op::Nop;
    uint8_t dst = kOperandNone;
    uint8_t src0 = kOperandNone;
    uint8_t src1 = kOperandNone;
    uint8_t src2 = kOperandNone;
    int32_t imm = 0;

    /** Packs this instruction into a 64-bit slot word. */
    uint64_t encode() const;

    /** Unpacks a 64-bit slot word. */
    static Instr decode(uint64_t word);

    bool operator==(const Instr &) const = default;
};

/** One tuple: two issue slots. */
struct Tuple
{
    Instr slot[2];

    bool operator==(const Tuple &) const = default;
};

/** One clause: up to kMaxTuplesPerClause tuples. */
struct Clause
{
    std::vector<Tuple> tuples;

    bool operator==(const Clause &) const = default;
};

/** An un-encoded shader module (the compiler's output form). */
struct Module
{
    std::vector<Clause> clauses;
    std::vector<uint32_t> rom;      ///< Embedded 32-bit constants.
    uint32_t regCount = 0;          ///< GRF registers used.
    uint32_t localBytes = 0;        ///< Static local memory per group.
    bool usesBarrier = false;

    bool operator==(const Module &) const = default;
};

/**
 * Serialises a module to the binary format above.
 * @throws SimError if the module violates a structural rule (clause
 *         size, slot legality, branch placement, temp-register scope).
 */
std::vector<uint8_t> encode(const Module &mod);

/**
 * Parses a shader binary.  Returns false (and sets @p error) on a
 * malformed image; structural validation matches encode().
 */
bool decode(const uint8_t *data, size_t size, Module &out,
            std::string &error);

/**
 * Validates structural rules on a module.  Returns an empty string when
 * valid, else a description of the first violation.  Rules:
 *  - 1..8 tuples per clause;
 *  - slot legality (LS ops in slot 0, CF ops in slot 1);
 *  - CF ops only in the final tuple of a clause, with Barrier alone;
 *  - branch targets within the module;
 *  - temps read only after being written in the same clause;
 *  - semantically-used GRF operands below the module's regCount.
 */
std::string validate(const Module &mod);

/** Renders one instruction as text. */
std::string disassemble(const Instr &inst);

/** Renders the whole module as text (clause per block). */
std::string disassemble(const Module &mod);

} // namespace bifsim::bif

#endif // BIFSIM_GPU_ISA_BIF_H
