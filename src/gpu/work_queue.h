#ifndef BIFSIM_GPU_WORK_QUEUE_H
#define BIFSIM_GPU_WORK_QUEUE_H

/**
 * @file
 * Work-stealing workgroup scheduler for the virtual-core pool
 * (paper §III-B3/4).
 *
 * The original pool handed out workgroups one at a time from a single
 * shared atomic counter — every group claim was a contended
 * fetch-add on one cache line, which flattens the Fig. 10 scaling
 * curve well before physical core count.  This header replaces it
 * with the classic Chase-Lev scheme:
 *
 *  - At job start the Job Manager splits the grid into contiguous
 *    *slices* of workgroups and deals them into per-worker deques
 *    (each worker gets a contiguous block of the grid for locality).
 *  - A worker pops slices from the *bottom* of its own deque (LIFO,
 *    cache-warm end) with no synchronisation in the common case.
 *  - An idle worker steals a slice from the *top* (FIFO, oldest end)
 *    of a victim's deque with one CAS.
 *
 * Because slices are only ever pushed while the pool is parked (the
 * Job Manager owns the deques between jobs), the deques never grow:
 * capacity is fixed per job and the push path needs no resize logic.
 *
 * Threading contract:
 *  - reset()/push() — Job Manager thread only, while no worker is
 *    running (publication to the workers happens via the pool mutex
 *    that wakes them).
 *  - pop()          — owning worker thread only.
 *  - steal()        — any other worker thread, concurrently with the
 *    owner's pop() and other thieves' steal().
 *
 * Memory ordering follows Lê, Pop, Cohen & Zappa Nardelli, "Correct
 * and Efficient Work-Stealing for Weak Memory Models" (PPoPP'13);
 * this is the TSan-clean formulation of the Chase-Lev deque.
 *
 * Static-contract note (DESIGN.md §5i): this structure is lock-free by
 * design and therefore exempt from the sim::Mutex/GUARDED_BY rule —
 * its invariants are the atomics' memory orderings above, which the
 * thread-safety analysis cannot express.  TSan remains the checker.
 */

#include <atomic>
#include <cassert>
#include <cstdint>
#include <vector>

namespace bifsim::gpu {

/** A contiguous range of linear workgroup indices [begin, end). */
struct GroupSlice
{
    uint32_t begin = 0;
    uint32_t end = 0;

    uint32_t size() const { return end - begin; }

    /** Packs into the deque's atomically-copyable cell encoding. */
    uint64_t
    pack() const
    {
        return (static_cast<uint64_t>(begin) << 32) | end;
    }

    static GroupSlice
    unpack(uint64_t v)
    {
        return GroupSlice{static_cast<uint32_t>(v >> 32),
                          static_cast<uint32_t>(v)};
    }
};

/**
 * Fixed-capacity Chase-Lev deque of GroupSlices.
 *
 * Cells are std::atomic<uint64_t> (a packed GroupSlice) because a
 * thief may read a cell concurrently with the owner overwriting it;
 * the algorithm tolerates the torn *logical* value (the CAS on top_
 * rejects the thief) but the *load* itself must be race-free.
 */
class SliceDeque
{
  public:
    /** Result of a steal attempt. */
    enum class Steal
    {
        Got,    ///< A slice was stolen.
        Empty,  ///< Deque observed empty.
        Lost,   ///< Raced with the owner or another thief; retry.
    };

    /**
     * Empties the deque and guarantees room for @p capacity slices.
     * Job Manager thread only, with all workers parked.
     */
    void
    reset(size_t capacity)
    {
        if (ring_.size() < capacity) {
            size_t n = 16;
            while (n < capacity)
                n <<= 1;
            ring_ = std::vector<std::atomic<uint64_t>>(n);
            mask_ = n - 1;
        }
        top_.store(0, std::memory_order_relaxed);
        bottom_.store(0, std::memory_order_relaxed);
    }

    /** Appends a slice at the bottom.  Owner/JM only; reset() must
     *  have guaranteed capacity (the deque never grows). */
    void
    push(GroupSlice s)
    {
        int64_t b = bottom_.load(std::memory_order_relaxed);
        int64_t t = top_.load(std::memory_order_acquire);
        assert(b - t < static_cast<int64_t>(ring_.size()));
        ring_[static_cast<size_t>(b) & mask_].store(
            s.pack(), std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_release);
        bottom_.store(b + 1, std::memory_order_relaxed);
    }

    /** Takes the newest slice.  Owning worker thread only.
     *  @return false when the deque is empty (or the last slice was
     *  lost to a thief). */
    bool
    pop(GroupSlice &out)
    {
        int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
        bottom_.store(b, std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        int64_t t = top_.load(std::memory_order_relaxed);
        if (t <= b) {
            uint64_t v = ring_[static_cast<size_t>(b) & mask_].load(
                std::memory_order_relaxed);
            if (t == b) {
                // Last element: race against thieves for it.
                if (!top_.compare_exchange_strong(
                        t, t + 1, std::memory_order_seq_cst,
                        std::memory_order_relaxed)) {
                    bottom_.store(b + 1, std::memory_order_relaxed);
                    return false;
                }
                bottom_.store(b + 1, std::memory_order_relaxed);
            }
            out = GroupSlice::unpack(v);
            return true;
        }
        bottom_.store(b + 1, std::memory_order_relaxed);
        return false;
    }

    /** Tries to take the oldest slice.  Any thief thread. */
    Steal
    steal(GroupSlice &out)
    {
        int64_t t = top_.load(std::memory_order_acquire);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        int64_t b = bottom_.load(std::memory_order_acquire);
        if (t >= b)
            return Steal::Empty;
        uint64_t v = ring_[static_cast<size_t>(t) & mask_].load(
            std::memory_order_relaxed);
        if (!top_.compare_exchange_strong(t, t + 1,
                                          std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
            return Steal::Lost;
        }
        out = GroupSlice::unpack(v);
        return Steal::Got;
    }

    /** Approximate occupancy (exact when the pool is parked). */
    size_t
    sizeApprox() const
    {
        int64_t b = bottom_.load(std::memory_order_relaxed);
        int64_t t = top_.load(std::memory_order_relaxed);
        return b > t ? static_cast<size_t>(b - t) : 0;
    }

  private:
    std::atomic<int64_t> top_{0};
    std::atomic<int64_t> bottom_{0};
    std::vector<std::atomic<uint64_t>> ring_{
        std::vector<std::atomic<uint64_t>>(16)};
    size_t mask_ = 15;
};

} // namespace bifsim::gpu

#endif // BIFSIM_GPU_WORK_QUEUE_H
