#include "gpu/shader_core.h"

#include <bit>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/bits.h"
#include "common/logging.h"
#include "trace/trace.h"

namespace bifsim::gpu {

using bif::Op;

/** CFG node id used for thread exit (Ret). */
constexpr uint32_t kCfgExitNode = 0xffffffffu;

namespace {

/** Maps an instruction destination to its unified-register index: only
 *  GRF/temp destinations of value-producing ops commit; everything else
 *  lands in the write sink. */
uint8_t
mapDst(const bif::Instr &in)
{
    if (bif::category(in.op) == bif::Category::ControlFlow ||
        in.op == Op::StGlobal || in.op == Op::StGlobalU8 ||
        in.op == Op::StLocal) {
        return bif::kUnifiedSink;
    }
    if (bif::isGrf(in.dst) || bif::isTemp(in.dst))
        return in.dst;
    return bif::kUnifiedSink;
}

/** Maps a source operand to its unified-register index; anything that
 *  is not a register or special reads the always-zero slot. */
uint8_t
mapSrc(uint8_t op)
{
    return op <= bif::kSrZero ? op : static_cast<uint8_t>(bif::kSrZero);
}

} // namespace

DecodedShader
DecodedShader::build(bif::Module m)
{
    DecodedShader s;
    s.mod = std::move(m);
    s.info = analyzeClauses(s.mod);
    size_t nc = s.mod.clauses.size();
    s.isBarrier.resize(nc, 0);
    s.hasCf.resize(nc, 0);
    s.uopStart.reserve(nc + 1);

    for (size_t c = 0; c < nc; ++c) {
        s.uopStart.push_back(static_cast<uint32_t>(s.uops.size()));
        for (const bif::Tuple &t : s.mod.clauses[c].tuples) {
            for (const bif::Instr &in : t.slot) {
                if (in.op == Op::Nop)
                    continue;
                if (in.op == Op::Barrier)
                    s.isBarrier[c] = 1;
                if (bif::category(in.op) == bif::Category::ControlFlow)
                    s.hasCf[c] = 1;

                MicroOp u;
                u.op = in.op;
                u.dst = mapDst(in);
                u.src0 = mapSrc(in.src0);
                u.src1 = mapSrc(in.src1);
                u.src2 = mapSrc(in.src2);
                u.imm = in.imm;
                // Pre-resolve table indices so the execute loop needs no
                // range checks.
                if (in.op == Op::LdRom) {
                    if (static_cast<size_t>(in.imm) >= s.mod.rom.size()) {
                        u.op = Op::MovImm;   // Out-of-range ROM reads 0.
                        u.imm = 0;
                    }
                } else if (in.op == Op::LdArg) {
                    u.imm = static_cast<int32_t>(
                        static_cast<uint32_t>(in.imm) % kMaxArgWords);
                }
                s.uops.push_back(u);
            }
        }
    }
    s.uopStart.push_back(static_cast<uint32_t>(s.uops.size()));
    for (uint8_t b : s.isBarrier)
        s.anyBarrier |= b != 0;
    return s;
}

void
JobDescriptor::writeTo(uint8_t *dst) const
{
    uint32_t words[12] = {
        jobType, next, grid[0], grid[1], grid[2], wg[0], wg[1], wg[2],
        binaryVa, argsVa, localSize, localBase,
    };
    std::memcpy(dst, words, sizeof(words));
}

JobDescriptor
JobDescriptor::readFrom(const uint8_t *src)
{
    uint32_t words[12];
    std::memcpy(words, src, sizeof(words));
    JobDescriptor d;
    d.jobType = words[0];
    d.next = words[1];
    d.grid[0] = words[2]; d.grid[1] = words[3]; d.grid[2] = words[4];
    d.wg[0] = words[5]; d.wg[1] = words[6]; d.wg[2] = words[7];
    d.binaryVa = words[8];
    d.argsVa = words[9];
    d.localSize = words[10];
    d.localBase = words[11];
    return d;
}

void
JobContext::raiseFault(uint32_t group, JobFaultKind kind, uint32_t va,
                       const std::string &detail)
{
    sim::LockGuard g(faultLock);
    // Lowest-group-wins, not first-to-arrive: with several workers the
    // arrival order of faults from different groups is a race, but the
    // lowest faulting group is a pure function of the guest inputs.
    // (Within one group, execution is sequential on one worker, so the
    // first latch for that group is also its sequentially-first fault.)
    if (fault.kind == JobFaultKind::None || group < faultGroup) {
        faultGroup = group;
        fault.kind = kind;
        fault.va = va;
        fault.detail = detail;
    }
    faulted.store(true, std::memory_order_release);
}

namespace {

inline float
asF(uint32_t u)
{
    return std::bit_cast<float>(u);
}

inline uint32_t
asU(float f)
{
    return std::bit_cast<uint32_t>(f);
}

inline uint32_t
saturatingF2I(float f)
{
    if (std::isnan(f))
        return 0;
    if (f >= 2147483647.0f)
        return 0x7fffffffu;
    if (f <= -2147483648.0f)
        return 0x80000000u;
    return static_cast<uint32_t>(static_cast<int32_t>(f));
}

inline uint32_t
saturatingF2U(float f)
{
    if (std::isnan(f) || f <= 0.0f)
        return 0;
    if (f >= 4294967295.0f)
        return 0xffffffffu;
    return static_cast<uint32_t>(f);
}

inline bool
compare(bif::CmpMode m, int cmp)
{
    switch (m) {
      case bif::CmpMode::Eq: return cmp == 0;
      case bif::CmpMode::Ne: return cmp != 0;
      case bif::CmpMode::Lt: return cmp < 0;
      case bif::CmpMode::Le: return cmp <= 0;
      case bif::CmpMode::Gt: return cmp > 0;
      case bif::CmpMode::Ge: return cmp >= 0;
    }
    return false;
}

inline int
cmp3(float a, float b)
{
    // NaN compares unordered: all relations false except Ne.
    if (std::isnan(a) || std::isnan(b))
        return 2;   // Neither <0, ==0 nor >0-compatible: see compare use.
    return a < b ? -1 : a > b ? 1 : 0;
}

} // namespace

uint32_t
WorkgroupExecutor::readOperand(const Thread &t, uint8_t op) const
{
    using namespace bif;
    if (isGrf(op) || isTemp(op))
        return t.reg[op];
    switch (op) {
      case kSrLaneId:
        return (t.reg[kSrLocalIdX] + t.reg[kSrLocalIdY] * job_->desc.wg[0] +
                t.reg[kSrLocalIdZ] * job_->desc.wg[0] * job_->desc.wg[1]) %
               kWarpWidth;
      case kSrLocalIdX: return t.reg[kSrLocalIdX];
      case kSrLocalIdY: return t.reg[kSrLocalIdY];
      case kSrLocalIdZ: return t.reg[kSrLocalIdZ];
      case kSrGroupIdX: return groupId_[0];
      case kSrGroupIdY: return groupId_[1];
      case kSrGroupIdZ: return groupId_[2];
      case kSrLocalSizeX: return job_->desc.wg[0];
      case kSrLocalSizeY: return job_->desc.wg[1];
      case kSrLocalSizeZ: return job_->desc.wg[2];
      case kSrGridSizeX: return job_->desc.grid[0];
      case kSrGridSizeY: return job_->desc.grid[1];
      case kSrGridSizeZ: return job_->desc.grid[2];
      case kSrNumGroupsX: return job_->groups[0];
      case kSrNumGroupsY: return job_->groups[1];
      case kSrNumGroupsZ: return job_->groups[2];
      case kSrZero: return 0;
      default: return 0;
    }
}

void
WorkgroupExecutor::writeOperand(Thread &t, uint8_t op, uint32_t value)
{
    if (bif::isGrf(op) || bif::isTemp(op))
        t.reg[op] = value;
    // Special and None destinations are rejected by the validator;
    // silently ignore for safety.
}

void
WorkgroupExecutor::notePage(uint32_t vpn)
{
    // Streams of accesses hit the same page; dedupe against the last
    // insert so the hash-set update leaves the per-access path.
    if (vpn != lastPageIns_) {
        coll_.pages.insert(vpn);
        lastPageIns_ = vpn;
    }
}

void
WorkgroupExecutor::raiseFault(JobFaultKind kind, uint32_t va,
                              const std::string &detail)
{
    groupFault_ = true;
    job_->raiseFault(curGroup_, kind, va, detail);
}

bool
WorkgroupExecutor::memAccess(uint32_t va, unsigned size, bool write,
                             uint32_t &val)
{
    if (va & (size - 1)) [[unlikely]] {
        raiseFault(JobFaultKind::BadAccess, va,
                         "misaligned global access");
        return false;
    }
    uint32_t vpn = va >> kGpuPageShift;
    const GpuTlb::Entry *e = tlb_.last;
    if (e && e->vpn == vpn && (!write || e->writable)) [[likely]] {
        tlb_.lastPageHits++;
    } else {
        e = job_->mmu->lookup(va, write, tlb_);
        if (!e) [[unlikely]] {
            if (traceBuf_)
                traceBuf_->instant("mmu_fault", "fault", "va", va,
                                   "write", write ? 1 : 0);
            raiseFault(JobFaultKind::MmuFault, va,
                             write ? "store translation fault"
                                   : "load translation fault");
            return false;
        }
    }
    if (job_->collect)
        notePage(vpn);
    if (uint8_t *host = e->host) [[likely]] {
        host += va & (kGpuPageBytes - 1);
        if (write) {
            if (size == 1)
                *host = static_cast<uint8_t>(val);
            else
                std::memcpy(host, &val, 4);
        } else {
            if (size == 1)
                val = *host;
            else
                std::memcpy(&val, host, 4);
        }
        return true;
    }
    // Frame not fully RAM-backed: physical-address slow path with the
    // per-access bounds check.
    Addr pa = (static_cast<Addr>(e->ppn) << kGpuPageShift) |
              (va & (kGpuPageBytes - 1));
    if (!job_->mem->contains(pa, size)) {
        raiseFault(JobFaultKind::BadAccess, va,
                         "physical address outside RAM");
        return false;
    }
    if (write) {
        if (size == 1)
            job_->mem->write<uint8_t>(pa, static_cast<uint8_t>(val));
        else
            job_->mem->write<uint32_t>(pa, val);
    } else {
        val = size == 1 ? job_->mem->read<uint8_t>(pa)
                        : job_->mem->read<uint32_t>(pa);
    }
    return true;
}

bool
WorkgroupExecutor::memAccessLegacy(uint32_t va, unsigned size, bool write,
                                   uint32_t &val)
{
    if (!isAligned(va, size)) {
        raiseFault(JobFaultKind::BadAccess, va,
                         "misaligned global access");
        return false;
    }
    Addr pa = 0;
    if (!job_->mmu->translate(va, write, tlb_, pa)) {
        raiseFault(JobFaultKind::MmuFault, va,
                         write ? "store translation fault"
                               : "load translation fault");
        return false;
    }
    if (job_->collect)
        coll_.pages.insert(va >> 12);
    if (!job_->mem->contains(pa, size)) {
        raiseFault(JobFaultKind::BadAccess, va,
                         "physical address outside RAM");
        return false;
    }
    if (write) {
        if (size == 1)
            job_->mem->write<uint8_t>(pa, static_cast<uint8_t>(val));
        else
            job_->mem->write<uint32_t>(pa, val);
    } else {
        val = size == 1 ? job_->mem->read<uint8_t>(pa)
                        : job_->mem->read<uint32_t>(pa);
    }
    return true;
}

uint32_t *
WorkgroupExecutor::atomicHostPtr(uint32_t va, bool fast)
{
    if (va & 3u) {
        raiseFault(JobFaultKind::BadAccess, va, "misaligned atomic");
        return nullptr;
    }
    if (fast) {
        uint32_t vpn = va >> kGpuPageShift;
        const GpuTlb::Entry *e = tlb_.last;
        if (e && e->vpn == vpn && e->writable) {
            tlb_.lastPageHits++;
        } else {
            e = job_->mmu->lookup(va, true, tlb_);
            if (!e) {
                raiseFault(JobFaultKind::MmuFault, va,
                                 "atomic translation fault");
                return nullptr;
            }
        }
        if (job_->collect)
            notePage(vpn);
        if (e->host)
            return reinterpret_cast<uint32_t *>(
                e->host + (va & (kGpuPageBytes - 1)));
        Addr pa = (static_cast<Addr>(e->ppn) << kGpuPageShift) |
                  (va & (kGpuPageBytes - 1));
        if (!job_->mem->contains(pa, 4)) {
            raiseFault(JobFaultKind::MmuFault, va,
                             "atomic translation fault");
            return nullptr;
        }
        return reinterpret_cast<uint32_t *>(job_->mem->hostPtr(pa));
    }
    Addr pa = 0;
    if (!job_->mmu->translate(va, true, tlb_, pa) ||
        !job_->mem->contains(pa, 4)) {
        raiseFault(JobFaultKind::MmuFault, va,
                         "atomic translation fault");
        return nullptr;
    }
    if (job_->collect)
        coll_.pages.insert(va >> 12);
    return reinterpret_cast<uint32_t *>(job_->mem->hostPtr(pa));
}

bool
WorkgroupExecutor::localAccess(uint32_t offset, bool write, uint32_t &val)
{
    // Overflow-safe bound: `offset + 4 > size` wraps for offsets near
    // UINT32_MAX and would pass a hostile offset straight into the
    // buffer arithmetic below.
    if (!isAligned(offset, 4) || local_.size() < 4 ||
        offset > local_.size() - 4) {
        if (traceBuf_)
            traceBuf_->instant("bad_access", "fault", "offset", offset);
        raiseFault(JobFaultKind::BadAccess, offset,
                         "local access out of range");
        return false;
    }
    if (write)
        std::memcpy(local_.data() + offset, &val, 4);
    else
        std::memcpy(&val, local_.data() + offset, 4);
    return true;
}

bool
WorkgroupExecutor::commitClause(Warp &warp, uint32_t c, uint32_t mask,
                                bool has_cf, const uint32_t *next_pc,
                                const bool *exits)
{
    // Commit thread PCs and record divergence (paper §IV-C: PCs are
    // tracked on clause boundaries).
    unsigned active = 0;
    uint32_t first_next = 0;
    bool divergent = false;
    bool first = true;
    for (unsigned t = 0; t < warp.numThreads; ++t) {
        if (!(mask & (1u << t)))
            continue;
        active++;
        Thread &th = warp.threads[t];
        uint32_t nxt = exits[t] ? kCfgExitNode : next_pc[t];
        if (first) {
            first_next = nxt;
            first = false;
        } else if (nxt != first_next) {
            divergent = true;
        }
        if (exits[t])
            th.done = true;
        else
            th.pc = next_pc[t];
        if (job_->collect && has_cf)
            coll_.kernel.cfgEdges[cfgEdgeKey(c, nxt)]++;
    }
    if (job_->collect) {
        groupExec_[c] += active;
        if (divergent)
            coll_.kernel.divergentBranches++;
    }
    return true;
}

bool
WorkgroupExecutor::execClause(Warp &warp, uint32_t c, uint32_t mask)
{
    const DecodedShader &sh = *job_->shader;
    const MicroOp *u = sh.uops.data() + sh.uopStart[c];
    const MicroOp *uend = sh.uops.data() + sh.uopStart[c + 1];
    const uint32_t *rom = sh.mod.rom.data();
    const uint32_t *args = job_->args;

    uint32_t next_pc[bif::kWarpWidth];
    bool exits[bif::kWarpWidth] = {};
    for (unsigned t = 0; t < warp.numThreads; ++t)
        next_pc[t] = c + 1;

    for (; u != uend; ++u) {
        for (unsigned t = 0; t < warp.numThreads; ++t) {
            if (!(mask & (1u << t)))
                continue;
            Thread &th = warp.threads[t];
            uint32_t a = th.reg[u->src0];
            uint32_t b = th.reg[u->src1];
            uint32_t cc = th.reg[u->src2];
            uint32_t r = 0;
            switch (u->op) {
              case Op::FAdd: r = asU(asF(a) + asF(b)); break;
              case Op::FSub: r = asU(asF(a) - asF(b)); break;
              case Op::FMul: r = asU(asF(a) * asF(b)); break;
              case Op::FFma:
                r = asU(asF(a) * asF(b) + asF(cc));
                break;
              case Op::FMin: r = asU(std::fmin(asF(a), asF(b))); break;
              case Op::FMax: r = asU(std::fmax(asF(a), asF(b))); break;
              case Op::FAbs: r = asU(std::fabs(asF(a))); break;
              case Op::FNeg: r = asU(-asF(a)); break;
              case Op::FFloor: r = asU(std::floor(asF(a))); break;
              case Op::IAdd: r = a + b; break;
              case Op::ISub: r = a - b; break;
              case Op::IMul: r = a * b; break;
              case Op::IAnd: r = a & b; break;
              case Op::IOr:  r = a | b; break;
              case Op::IXor: r = a ^ b; break;
              case Op::INot: r = ~a; break;
              case Op::IShl: r = a << (b & 31); break;
              case Op::IShr: r = a >> (b & 31); break;
              case Op::IAsr:
                r = static_cast<uint32_t>(
                    static_cast<int32_t>(a) >> (b & 31));
                break;
              case Op::IMin:
                r = static_cast<int32_t>(a) < static_cast<int32_t>(b)
                        ? a : b;
                break;
              case Op::IMax:
                r = static_cast<int32_t>(a) > static_cast<int32_t>(b)
                        ? a : b;
                break;
              case Op::UMin: r = a < b ? a : b; break;
              case Op::UMax: r = a > b ? a : b; break;
              case Op::FCmp: {
                int q = cmp3(asF(a), asF(b));
                bif::CmpMode m = static_cast<bif::CmpMode>(u->imm & 7);
                bool res = q == 2 ? m == bif::CmpMode::Ne
                                  : compare(m, q);
                r = res ? 1 : 0;
                break;
              }
              case Op::ICmp: {
                int32_t sa = static_cast<int32_t>(a);
                int32_t sb = static_cast<int32_t>(b);
                int q = sa < sb ? -1 : sa > sb ? 1 : 0;
                r = compare(static_cast<bif::CmpMode>(u->imm & 7), q);
                break;
              }
              case Op::UCmp: {
                int q = a < b ? -1 : a > b ? 1 : 0;
                r = compare(static_cast<bif::CmpMode>(u->imm & 7), q);
                break;
              }
              case Op::CSel: r = a != 0 ? b : cc; break;
              case Op::Mov: r = a; break;
              case Op::MovImm: r = static_cast<uint32_t>(u->imm); break;
              case Op::F2I: r = saturatingF2I(asF(a)); break;
              case Op::F2U: r = saturatingF2U(asF(a)); break;
              case Op::I2F:
                r = asU(static_cast<float>(static_cast<int32_t>(a)));
                break;
              case Op::U2F: r = asU(static_cast<float>(a)); break;
              case Op::FRcp: r = asU(1.0f / asF(a)); break;
              case Op::FRsqrt:
                r = asU(1.0f / std::sqrt(asF(a)));
                break;
              case Op::FSqrt: r = asU(std::sqrt(asF(a))); break;
              case Op::FExp2: r = asU(std::exp2(asF(a))); break;
              case Op::FLog2: r = asU(std::log2(asF(a))); break;
              case Op::FSin: r = asU(std::sin(asF(a))); break;
              case Op::FCos: r = asU(std::cos(asF(a))); break;
              case Op::IDiv: {
                int32_t sa = static_cast<int32_t>(a);
                int32_t sb = static_cast<int32_t>(b);
                if (sb == 0)
                    r = 0;
                else if (sa == std::numeric_limits<int32_t>::min() &&
                         sb == -1)
                    r = a;
                else
                    r = static_cast<uint32_t>(sa / sb);
                break;
              }
              case Op::IRem: {
                int32_t sa = static_cast<int32_t>(a);
                int32_t sb = static_cast<int32_t>(b);
                if (sb == 0)
                    r = 0;
                else if (sa == std::numeric_limits<int32_t>::min() &&
                         sb == -1)
                    r = 0;
                else
                    r = static_cast<uint32_t>(sa % sb);
                break;
              }
              case Op::UDiv: r = b ? a / b : 0; break;
              case Op::URem: r = b ? a % b : 0; break;
              case Op::LdRom:
                r = rom[u->imm];   // Pre-range-checked at decode.
                break;
              case Op::LdArg:
                r = args[u->imm];  // Pre-wrapped at decode.
                break;
              case Op::LdGlobal:
                if (!memAccess(a + u->imm, 4, false, r)) [[unlikely]]
                    return false;
                break;
              case Op::LdGlobalU8:
                if (!memAccess(a + u->imm, 1, false, r)) [[unlikely]]
                    return false;
                break;
              case Op::StGlobal:
                if (!memAccess(a + u->imm, 4, true, b)) [[unlikely]]
                    return false;
                break;
              case Op::StGlobalU8:
                if (!memAccess(a + u->imm, 1, true, b)) [[unlikely]]
                    return false;
                break;
              case Op::LdLocal:
                if (!localAccess(a + u->imm, false, r)) [[unlikely]]
                    return false;
                break;
              case Op::StLocal:
                if (!localAccess(a + u->imm, true, b)) [[unlikely]]
                    return false;
                break;
              case Op::AtomAddG: {
                uint32_t *p = atomicHostPtr(a + u->imm, true);
                if (!p) [[unlikely]]
                    return false;
                r = __atomic_fetch_add(p, b, __ATOMIC_SEQ_CST);
                break;
              }
              case Op::AtomAddL: {
                uint32_t off = a + u->imm;
                uint32_t old = 0;
                if (!localAccess(off, false, old))
                    return false;
                uint32_t nv = old + b;
                if (!localAccess(off, true, nv))
                    return false;
                r = old;
                break;
              }
              case Op::Branch:
                next_pc[t] = static_cast<uint32_t>(u->imm);
                break;
              case Op::BranchZ:
                if (a == 0)
                    next_pc[t] = static_cast<uint32_t>(u->imm);
                break;
              case Op::BranchNZ:
                if (a != 0)
                    next_pc[t] = static_cast<uint32_t>(u->imm);
                break;
              case Op::Ret:
                exits[t] = true;
                break;
              case Op::Barrier:
                // Handled at warp level (barrier clauses are alone).
                break;
              default:
                break;
            }
            // Destinations are pre-resolved: non-writing ops target the
            // sink slot, so the commit is a branch-free indexed store.
            th.reg[u->dst] = r;
        }
    }

    return commitClause(warp, c, mask, sh.hasCf[c] != 0, next_pc, exits);
}

bool
WorkgroupExecutor::execClauseLegacy(Warp &warp, uint32_t c, uint32_t mask)
{
    const bif::Clause &cl = job_->shader->mod.clauses[c];
    const std::vector<uint32_t> &rom = job_->shader->mod.rom;

    uint32_t next_pc[bif::kWarpWidth];
    bool exits[bif::kWarpWidth] = {};
    for (unsigned t = 0; t < warp.numThreads; ++t)
        next_pc[t] = c + 1;
    bool has_cf = false;

    for (const bif::Tuple &tuple : cl.tuples) {
        for (const bif::Instr &in : tuple.slot) {
            if (in.op == Op::Nop)
                continue;
            if (bif::category(in.op) == bif::Category::ControlFlow)
                has_cf = true;
            for (unsigned t = 0; t < warp.numThreads; ++t) {
                if (!(mask & (1u << t)))
                    continue;
                Thread &th = warp.threads[t];
                uint32_t a = readOperand(th, in.src0);
                uint32_t b = readOperand(th, in.src1);
                uint32_t cc = readOperand(th, in.src2);
                uint32_t r = 0;
                switch (in.op) {
                  case Op::FAdd: r = asU(asF(a) + asF(b)); break;
                  case Op::FSub: r = asU(asF(a) - asF(b)); break;
                  case Op::FMul: r = asU(asF(a) * asF(b)); break;
                  case Op::FFma:
                    r = asU(asF(a) * asF(b) + asF(cc));
                    break;
                  case Op::FMin: r = asU(std::fmin(asF(a), asF(b))); break;
                  case Op::FMax: r = asU(std::fmax(asF(a), asF(b))); break;
                  case Op::FAbs: r = asU(std::fabs(asF(a))); break;
                  case Op::FNeg: r = asU(-asF(a)); break;
                  case Op::FFloor: r = asU(std::floor(asF(a))); break;
                  case Op::IAdd: r = a + b; break;
                  case Op::ISub: r = a - b; break;
                  case Op::IMul: r = a * b; break;
                  case Op::IAnd: r = a & b; break;
                  case Op::IOr:  r = a | b; break;
                  case Op::IXor: r = a ^ b; break;
                  case Op::INot: r = ~a; break;
                  case Op::IShl: r = a << (b & 31); break;
                  case Op::IShr: r = a >> (b & 31); break;
                  case Op::IAsr:
                    r = static_cast<uint32_t>(
                        static_cast<int32_t>(a) >> (b & 31));
                    break;
                  case Op::IMin:
                    r = static_cast<int32_t>(a) < static_cast<int32_t>(b)
                            ? a : b;
                    break;
                  case Op::IMax:
                    r = static_cast<int32_t>(a) > static_cast<int32_t>(b)
                            ? a : b;
                    break;
                  case Op::UMin: r = a < b ? a : b; break;
                  case Op::UMax: r = a > b ? a : b; break;
                  case Op::FCmp: {
                    int q = cmp3(asF(a), asF(b));
                    bif::CmpMode m =
                        static_cast<bif::CmpMode>(in.imm & 7);
                    bool res = q == 2
                        ? m == bif::CmpMode::Ne
                        : compare(m, q);
                    r = res ? 1 : 0;
                    break;
                  }
                  case Op::ICmp: {
                    int32_t sa = static_cast<int32_t>(a);
                    int32_t sb = static_cast<int32_t>(b);
                    int q = sa < sb ? -1 : sa > sb ? 1 : 0;
                    r = compare(static_cast<bif::CmpMode>(in.imm & 7), q);
                    break;
                  }
                  case Op::UCmp: {
                    int q = a < b ? -1 : a > b ? 1 : 0;
                    r = compare(static_cast<bif::CmpMode>(in.imm & 7), q);
                    break;
                  }
                  case Op::CSel: r = a != 0 ? b : cc; break;
                  case Op::Mov: r = a; break;
                  case Op::MovImm: r = static_cast<uint32_t>(in.imm); break;
                  case Op::F2I: r = saturatingF2I(asF(a)); break;
                  case Op::F2U: r = saturatingF2U(asF(a)); break;
                  case Op::I2F:
                    r = asU(static_cast<float>(static_cast<int32_t>(a)));
                    break;
                  case Op::U2F: r = asU(static_cast<float>(a)); break;
                  case Op::FRcp: r = asU(1.0f / asF(a)); break;
                  case Op::FRsqrt:
                    r = asU(1.0f / std::sqrt(asF(a)));
                    break;
                  case Op::FSqrt: r = asU(std::sqrt(asF(a))); break;
                  case Op::FExp2: r = asU(std::exp2(asF(a))); break;
                  case Op::FLog2: r = asU(std::log2(asF(a))); break;
                  case Op::FSin: r = asU(std::sin(asF(a))); break;
                  case Op::FCos: r = asU(std::cos(asF(a))); break;
                  case Op::IDiv: {
                    int32_t sa = static_cast<int32_t>(a);
                    int32_t sb = static_cast<int32_t>(b);
                    if (sb == 0)
                        r = 0;
                    else if (sa == std::numeric_limits<int32_t>::min() &&
                             sb == -1)
                        r = a;
                    else
                        r = static_cast<uint32_t>(sa / sb);
                    break;
                  }
                  case Op::IRem: {
                    int32_t sa = static_cast<int32_t>(a);
                    int32_t sb = static_cast<int32_t>(b);
                    if (sb == 0)
                        r = 0;
                    else if (sa == std::numeric_limits<int32_t>::min() &&
                             sb == -1)
                        r = 0;
                    else
                        r = static_cast<uint32_t>(sa % sb);
                    break;
                  }
                  case Op::UDiv: r = b ? a / b : 0; break;
                  case Op::URem: r = b ? a % b : 0; break;
                  case Op::LdRom:
                    r = static_cast<size_t>(in.imm) < rom.size()
                            ? rom[in.imm] : 0;
                    break;
                  case Op::LdArg:
                    r = job_->args[static_cast<uint32_t>(in.imm) %
                                   kMaxArgWords];
                    break;
                  case Op::LdGlobal:
                    if (!memAccessLegacy(a + in.imm, 4, false, r))
                        return false;
                    break;
                  case Op::LdGlobalU8:
                    if (!memAccessLegacy(a + in.imm, 1, false, r))
                        return false;
                    break;
                  case Op::StGlobal:
                    if (!memAccessLegacy(a + in.imm, 4, true, b))
                        return false;
                    break;
                  case Op::StGlobalU8:
                    if (!memAccessLegacy(a + in.imm, 1, true, b))
                        return false;
                    break;
                  case Op::LdLocal:
                    if (!localAccess(a + in.imm, false, r))
                        return false;
                    break;
                  case Op::StLocal:
                    if (!localAccess(a + in.imm, true, b))
                        return false;
                    break;
                  case Op::AtomAddG: {
                    uint32_t *p = atomicHostPtr(a + in.imm, false);
                    if (!p)
                        return false;
                    r = __atomic_fetch_add(p, b, __ATOMIC_SEQ_CST);
                    break;
                  }
                  case Op::AtomAddL: {
                    uint32_t off = a + in.imm;
                    uint32_t old = 0;
                    if (!localAccess(off, false, old))
                        return false;
                    uint32_t nv = old + b;
                    if (!localAccess(off, true, nv))
                        return false;
                    r = old;
                    break;
                  }
                  case Op::Branch:
                    next_pc[t] = static_cast<uint32_t>(in.imm);
                    break;
                  case Op::BranchZ:
                    if (a == 0)
                        next_pc[t] = static_cast<uint32_t>(in.imm);
                    break;
                  case Op::BranchNZ:
                    if (a != 0)
                        next_pc[t] = static_cast<uint32_t>(in.imm);
                    break;
                  case Op::Ret:
                    exits[t] = true;
                    break;
                  case Op::Barrier:
                    // Handled at warp level (barrier clauses are alone).
                    break;
                  default:
                    break;
                }
                if (in.dst != bif::kOperandNone &&
                    bif::category(in.op) != bif::Category::ControlFlow &&
                    in.op != Op::StGlobal && in.op != Op::StGlobalU8 &&
                    in.op != Op::StLocal) {
                    writeOperand(th, in.dst, r);
                }
            }
        }
    }

    return commitClause(warp, c, mask, has_cf, next_pc, exits);
}

WorkgroupExecutor::WarpStop
WorkgroupExecutor::runWarp(Warp &warp)
{
    const bool fast = job_->fastPath;
    for (;;) {
        // Stop only for *this group's* fault.  Aborting on any other
        // group's fault would make this group's side effects (stores,
        // statistics) depend on cross-worker timing — the determinism
        // bug record/replay bring-up flushed out.
        if (groupFault_) [[unlikely]]
            return WarpStop::Fault;
        // Lazy TLB shootdown (epoch compare at clause boundaries).
        tlb_.syncEpoch(*job_->mmu);

        uint32_t minpc = kCfgExitNode;
        unsigned alive = 0;
        for (unsigned t = 0; t < warp.numThreads; ++t) {
            const Thread &th = warp.threads[t];
            if (th.done)
                continue;
            alive++;
            if (th.pc < minpc)
                minpc = th.pc;
        }
        if (alive == 0)
            return WarpStop::Done;
        if (minpc >= job_->shader->mod.clauses.size()) {
            // Fell off the end of the shader: threads terminate.
            for (unsigned t = 0; t < warp.numThreads; ++t)
                warp.threads[t].done = true;
            return WarpStop::Done;
        }

        if (job_->shader->isBarrier[minpc]) {
            // All live threads must arrive together.
            for (unsigned t = 0; t < warp.numThreads; ++t) {
                const Thread &th = warp.threads[t];
                if (!th.done && th.pc != minpc) {
                    raiseFault(JobFaultKind::DivergentBarrier,
                                     minpc, "divergent barrier");
                    return WarpStop::Fault;
                }
            }
            for (unsigned t = 0; t < warp.numThreads; ++t) {
                if (!warp.threads[t].done)
                    warp.threads[t].pc = minpc + 1;
            }
            if (job_->collect) {
                groupExec_[minpc] += alive;
            }
            warp.atBarrier = true;
            return WarpStop::Barrier;
        }

        uint32_t mask = 0;
        for (unsigned t = 0; t < warp.numThreads; ++t) {
            const Thread &th = warp.threads[t];
            if (!th.done && th.pc == minpc)
                mask |= 1u << t;
        }
        bool ok = fast ? execClause(warp, minpc, mask)
                       : execClauseLegacy(warp, minpc, mask);
        if (!ok)
            return WarpStop::Fault;
    }
}

void
WorkgroupExecutor::setTrace(trace::TraceBuffer *buf)
{
    traceBuf_ = buf;
    tlb_.traceBuf = buf;
}

void
WorkgroupExecutor::beginJob(JobContext *job, unsigned worker_index)
{
    job_ = job;
    index_ = worker_index;
    if (traceBuf_) {
        jobStartTs_ = trace::nowNs();
        groupsRun_ = 0;
    }
    // Epoch-based shootdown: the device bumps the MMU epoch at job
    // boundaries (and on AS_COMMAND); stale worker TLBs flush here.
    tlb_.syncEpoch(*job->mmu);
    tlb_.lastPageHits = 0;
    tlb_.arrayHits = 0;
    tlb_.walks = 0;
    lastPageIns_ = 0xffffffffu;
    sched_ = SchedStats{};
    // Resolve the shader through the worker's private L1 so steady-state
    // jobs touch no shared cache line (not even a refcount).  The pin
    // keeps the image alive even if the L2 is invalidated mid-job.
    shaderRef_.reset();
    if (job->shaderCache) {
        uint64_t fills_before = shaderL1_.l2Fills;
        shaderRef_ = shaderL1_.get(*job->shaderCache, job->desc.binaryVa);
        if (shaderRef_) {
            if (shaderL1_.l2Fills != fills_before)
                sched_.shaderL2Fills++;
            else
                sched_.shaderL1Hits++;
        }
    }
    if (shaderRef_.get() != job->shader)
        shaderRef_ = job->shaderRef;   // Cache raced an invalidation;
                                       // the context's pin is canonical.
    size_t num_clauses = job->shader->mod.clauses.size();
    coll_.reset(num_clauses);
    groupExec_.assign(num_clauses, 0);
    uint32_t local_bytes =
        std::max(job->desc.localSize, job->shader->mod.localBytes);
    local_.assign(local_bytes, 0);
}

void
WorkgroupExecutor::initWarp(Warp &w, uint32_t warp_idx,
                            uint32_t group_threads)
{
    using namespace bif;
    const JobDescriptor &d = job_->desc;
    uint32_t base_tid = warp_idx * kWarpWidth;
    w.numThreads =
        std::min<uint32_t>(kWarpWidth, group_threads - base_tid);
    w.atBarrier = false;
    for (unsigned t = 0; t < w.numThreads; ++t) {
        Thread &th = w.threads[t];
        std::memset(th.reg, 0, sizeof(th.reg));
        uint32_t tid = base_tid + t;
        // Specials live in the unified register file, preloaded once per
        // warp so the execute loop reads them like any register.
        th.reg[kSrLaneId] = tid % kWarpWidth;
        th.reg[kSrLocalIdX] = tid % d.wg[0];
        th.reg[kSrLocalIdY] = (tid / d.wg[0]) % d.wg[1];
        th.reg[kSrLocalIdZ] = tid / (d.wg[0] * d.wg[1]);
        th.reg[kSrGroupIdX] = groupId_[0];
        th.reg[kSrGroupIdY] = groupId_[1];
        th.reg[kSrGroupIdZ] = groupId_[2];
        th.reg[kSrLocalSizeX] = d.wg[0];
        th.reg[kSrLocalSizeY] = d.wg[1];
        th.reg[kSrLocalSizeZ] = d.wg[2];
        th.reg[kSrGridSizeX] = d.grid[0];
        th.reg[kSrGridSizeY] = d.grid[1];
        th.reg[kSrGridSizeZ] = d.grid[2];
        th.reg[kSrNumGroupsX] = job_->groups[0];
        th.reg[kSrNumGroupsY] = job_->groups[1];
        th.reg[kSrNumGroupsZ] = job_->groups[2];
        th.pc = 0;
        th.done = false;
    }
}

void
WorkgroupExecutor::foldGroupExec()
{
    // Lazy instrumentation fold (paper §IV-A): once per workgroup, not
    // per clause.
    for (size_t c = 0; c < groupExec_.size(); ++c) {
        if (groupExec_[c]) {
            coll_.clauseExec[c] += groupExec_[c];
            groupExec_[c] = 0;
        }
    }
}

void
WorkgroupExecutor::runGroup(uint32_t linear_group)
{
    const JobDescriptor &d = job_->desc;
    curGroup_ = linear_group;
    groupFault_ = false;
    groupId_[0] = linear_group % job_->groups[0];
    groupId_[1] = (linear_group / job_->groups[0]) % job_->groups[1];
    groupId_[2] = linear_group / (job_->groups[0] * job_->groups[1]);

    if (!local_.empty())
        std::fill(local_.begin(), local_.end(), 0);

    uint32_t group_threads = d.wg[0] * d.wg[1] * d.wg[2];
    uint32_t num_warps =
        (group_threads + bif::kWarpWidth - 1) / bif::kWarpWidth;

    coll_.kernel.workgroups++;
    coll_.kernel.warpsLaunched += num_warps;
    coll_.kernel.threadsLaunched += group_threads;

    if (!job_->shader->anyBarrier) {
        Warp w;
        for (uint32_t wi = 0; wi < num_warps; ++wi) {
            initWarp(w, wi, group_threads);
            if (runWarp(w) == WarpStop::Fault) {
                foldGroupExec();
                return;
            }
        }
        foldGroupExec();
        return;
    }

    // Barrier path: all warps of the group live simultaneously.
    std::vector<Warp> warps(num_warps);
    for (uint32_t wi = 0; wi < num_warps; ++wi)
        initWarp(warps[wi], wi, group_threads);

    for (;;) {
        bool all_done = true;
        bool any_barrier = false;
        for (Warp &w : warps) {
            bool done = true;
            for (unsigned t = 0; t < w.numThreads; ++t)
                done &= w.threads[t].done;
            if (done)
                continue;
            all_done = false;
            if (w.atBarrier) {
                any_barrier = true;
                continue;
            }
            WarpStop s = runWarp(w);
            if (s == WarpStop::Fault) {
                foldGroupExec();
                return;
            }
            if (s == WarpStop::Barrier)
                any_barrier = true;
        }
        if (all_done)
            break;
        if (any_barrier) {
            // Every non-done warp has reached the barrier: release.
            for (Warp &w : warps)
                w.atBarrier = false;
        }
    }
    foldGroupExec();
}

void
WorkgroupExecutor::runSlice(const GroupSlice &s)
{
    sched_.slicesRun++;
    // No early-out on job_->faulted: every group always runs, so RAM
    // contents, pagesAccessed and merged kernel statistics are the
    // same whether a fault in another group landed early or late.
    for (uint32_t g = s.begin; g < s.end; ++g) {
        if (traceBuf_) [[unlikely]] {
            uint64_t t0 = trace::nowNs();
            runGroup(g);
            groupsRun_++;
            traceBuf_->span("workgroup", "exec", t0, "group", g);
        } else {
            runGroup(g);
        }
        sched_.groupsRun++;
    }
}

void
WorkgroupExecutor::runUntilDone()
{
    SliceDeque *deques = job_->deques;
    const unsigned n = job_->numWorkers;
    GroupSlice s;
    for (;;) {
        // Drain our own deque first (LIFO pop: best locality).
        if (deques[index_].pop(s)) {
            runSlice(s);
            continue;
        }
        // Own deque empty: scan the other workers' deques for a steal
        // (FIFO from the top — the slices their owner will reach last).
        bool lost_race = false;
        bool got = false;
        for (unsigned i = 1; i < n && !got; ++i) {
            unsigned victim = (index_ + i) % n;
            sched_.stealAttempts++;
            switch (deques[victim].steal(s)) {
              case SliceDeque::Steal::Got:
                got = true;
                break;
              case SliceDeque::Steal::Lost:
                lost_race = true;
                break;
              case SliceDeque::Steal::Empty:
                break;
            }
        }
        if (got) {
            sched_.steals++;
            if (traceBuf_) [[unlikely]]
                traceBuf_->instant("steal", "sched", "groups",
                                   s.end - s.begin);
            runSlice(s);
            continue;
        }
        // A clean scan (every deque Empty, no lost races) proves no
        // unclaimed work remains: in-flight slices are finished by
        // whoever claimed them, and nobody pushes after job start.
        if (!lost_race)
            return;
    }
}

void
WorkgroupExecutor::finalize()
{
    if (traceBuf_ && job_)
        traceBuf_->span("worker_exec", "exec", jobStartTs_, "groups",
                        groupsRun_);
    if (!job_ || !job_->collect)
        return;
    const std::vector<ClauseStaticInfo> &info = job_->shader->info;
    KernelStats &k = coll_.kernel;
    for (size_t c = 0; c < coll_.clauseExec.size(); ++c) {
        uint64_t n = coll_.clauseExec[c];
        if (!n)
            continue;
        const ClauseStaticInfo &ci = info[c];
        k.arithInstrs += ci.arith * n;
        k.lsInstrs += ci.ls * n;
        k.cfInstrs += ci.cf * n;
        k.nopSlots += ci.nop * n;
        k.grfReads += ci.grfReads * n;
        k.grfWrites += ci.grfWrites * n;
        k.tempAccesses += (ci.tempReads + ci.tempWrites) * n;
        k.constReads += ci.constReads * n;
        k.romReads += ci.romReads * n;
        k.globalLdSt += (ci.globalLd + ci.globalSt) * n;
        k.localLdSt += (ci.localLd + ci.localSt) * n;
        k.clausesExecuted += n;
        k.clauseSizes.sample(ci.sizeTuples, n);
    }
}

} // namespace bifsim::gpu
