#ifndef BIFSIM_GPU_GMMU_H
#define BIFSIM_GPU_GMMU_H

/**
 * @file
 * The GPU's memory management unit (paper §III-B5).
 *
 * The driver running on the simulated CPU builds page tables in guest
 * memory and hands the root pointer to the GPU through the AS_TRANSTAB
 * register; every shader memory access is translated through these
 * tables.  Faults are reported back through AS_FAULTSTATUS /
 * AS_FAULTADDRESS and an interrupt, exactly like the modelled hardware.
 *
 * GPU page-table format (distinct from the CPU's, as on the real SoC):
 * two levels of 1024 32-bit entries, 4 KiB pages.
 *
 *   PTE: bit0 VALID, bit1 WRITE; PPN in bits [29:10]
 *   level-1 entries are always pointers (no huge pages).
 */

#include <atomic>
#include <cstdint>

#include "mem/phys_mem.h"

namespace bifsim::gpu {

/** GPU PTE bits. */
enum GpuPteBits : uint32_t
{
    kGpuPteValid = 1u << 0,
    kGpuPteWrite = 1u << 1,
};

/** A small per-worker TLB; workers own one each so no locking is needed
 *  on the translation fast path. */
struct GpuTlb
{
    static constexpr size_t kEntries = 64;

    struct Entry
    {
        bool valid = false;
        uint32_t vpn = 0;
        uint32_t ppn = 0;
        bool writable = false;
    };

    Entry entries[kEntries];

    void
    flush()
    {
        for (Entry &e : entries)
            e.valid = false;
    }
};

/**
 * Stateless page-table walker for the GPU address space.  The root
 * pointer is atomic so the job-manager thread and MMIO writes from the
 * CPU thread can exchange it safely.
 */
class GpuMmu
{
  public:
    explicit GpuMmu(PhysMem &mem) : mem_(mem) {}

    /** Sets the page-table root physical address (AS_TRANSTAB). */
    void setRoot(Addr root_pa) { root_.store(root_pa); }

    /** Current page-table root. */
    Addr root() const { return root_.load(); }

    /**
     * Translates GPU virtual address @p va.
     * @param write  Whether the access is a store.
     * @param tlb    The calling worker's TLB.
     * @param pa_out Receives the physical address.
     * @return false on translation fault.
     */
    bool translate(uint32_t va, bool write, GpuTlb &tlb, Addr &pa_out);

    /** Translation statistics (monotonic, approximate under threads). */
    uint64_t walkCount() const { return walks_.load(); }

  private:
    PhysMem &mem_;
    std::atomic<Addr> root_{0};
    std::atomic<uint64_t> walks_{0};
};

} // namespace bifsim::gpu

#endif // BIFSIM_GPU_GMMU_H
