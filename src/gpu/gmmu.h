#ifndef BIFSIM_GPU_GMMU_H
#define BIFSIM_GPU_GMMU_H

/**
 * @file
 * The GPU's memory management unit (paper §III-B5).
 *
 * The driver running on the simulated CPU builds page tables in guest
 * memory and hands the root pointer to the GPU through the AS_TRANSTAB
 * register; every shader memory access is translated through these
 * tables.  Faults are reported back through AS_FAULTSTATUS /
 * AS_FAULTADDRESS and an interrupt, exactly like the modelled hardware.
 *
 * GPU page-table format (distinct from the CPU's, as on the real SoC):
 * two levels of 1024 32-bit entries, 4 KiB pages.
 *
 *   PTE: bit0 VALID, bit1 WRITE; PPN in bits [29:10]
 *   level-1 entries are always pointers (no huge pages).
 *
 * Fast path: successful walks cache the *host* pointer to the frame in
 * the worker's TLB entry, so a hit turns a shader load/store into a
 * direct memcpy with no physical-address recomposition and no per-access
 * RAM bounds check.  Invalidation is epoch-based: AS_COMMAND, root
 * changes and job boundaries bump a global epoch counter; workers
 * compare their TLB's epoch lazily at clause boundaries and flush only
 * when stale, so there is no cross-thread flush coordination.
 */

#include <atomic>
#include <cstdint>

#include "mem/phys_mem.h"

namespace bifsim::trace {
class TraceBuffer;
}

namespace bifsim::gpu {

class GpuMmu;

/** GPU PTE bits. */
enum GpuPteBits : uint32_t
{
    kGpuPteValid = 1u << 0,
    kGpuPteWrite = 1u << 1,
};

/** GPU page geometry. */
constexpr uint32_t kGpuPageShift = 12;
constexpr uint32_t kGpuPageBytes = 1u << kGpuPageShift;

/** A small per-worker TLB; workers own one each so no locking is needed
 *  on the translation fast path. */
struct GpuTlb
{
    static constexpr size_t kEntries = 64;

    /** Sentinel VPN: 32-bit GPU VAs have 20-bit VPNs, so this never
     *  matches a real page and doubles as the invalid marker. */
    static constexpr uint32_t kInvalidVpn = 0xffffffffu;

    struct Entry
    {
        uint32_t vpn = kInvalidVpn;
        uint32_t ppn = 0;
        uint8_t *host = nullptr;  ///< Host pointer to the frame base, or
                                  ///< null if the frame is not entirely
                                  ///< inside RAM (slow path per access).
        bool writable = false;
    };

    Entry entries[kEntries];

    /** One-entry last-page cache in front of the set-indexed array. */
    const Entry *last = nullptr;

    /** Epoch observed at the last flush (see GpuMmu::epoch()). */
    uint64_t epoch = 0;

    // Per-worker translation counters (no atomics; folded into the job
    // result at completion).
    uint64_t lastPageHits = 0;
    uint64_t arrayHits = 0;

    /** Owning thread's trace buffer (null = tracing off); walks record
     *  an mmu_walk instant into it. */
    trace::TraceBuffer *traceBuf = nullptr;

    void
    flush()
    {
        for (Entry &e : entries)
            e.vpn = kInvalidVpn;
        last = nullptr;
    }

    /** Lazily flushes if the MMU epoch moved (clause-boundary check).
     *  @return true if a flush happened. */
    inline bool syncEpoch(const GpuMmu &mmu);
};

/**
 * Stateless page-table walker for the GPU address space.  The root
 * pointer is atomic so the job-manager thread and MMIO writes from the
 * CPU thread can exchange it safely.
 */
class GpuMmu
{
  public:
    explicit GpuMmu(PhysMem &mem) : mem_(mem) {}

    /** Sets the page-table root physical address (AS_TRANSTAB).
     *  Bumps the epoch: cached translations become stale. */
    void
    setRoot(Addr root_pa)
    {
        root_.store(root_pa);
        bumpEpoch();
    }

    /** Current page-table root. */
    Addr root() const { return root_.load(); }

    /**
     * Translates GPU virtual address @p va.
     * @param write  Whether the access is a store.
     * @param tlb    The calling worker's TLB.
     * @param pa_out Receives the physical address.
     * @return false on translation fault.
     */
    bool translate(uint32_t va, bool write, GpuTlb &tlb, Addr &pa_out);

    /**
     * Fast-path lookup: returns the TLB entry covering @p va (filling it
     * by a walk on miss), or null on a translation/permission fault.
     * On success the entry is also installed as @p tlb's last-page
     * cache.  The entry's host pointer is null when the frame is not
     * entirely inside RAM; callers must then fall back to physical
     * addressing.
     */
    const GpuTlb::Entry *lookup(uint32_t va, bool write, GpuTlb &tlb);

    /** Translation statistics (monotonic, approximate under threads). */
    uint64_t walkCount() const { return walks_.load(); }

    /** Global TLB-invalidation epoch (bumped by AS_COMMAND, root
     *  changes and job boundaries). */
    uint64_t
    epoch() const
    {
        return epoch_.load(std::memory_order_acquire);
    }

    /** Invalidates all worker TLBs lazily: workers notice the new epoch
     *  at their next clause boundary and flush locally. */
    void bumpEpoch() { epoch_.fetch_add(1, std::memory_order_release); }

  private:
    /** Cold path: walks the page table and fills @p e. */
    const GpuTlb::Entry *walkFill(uint32_t va, bool write, GpuTlb &tlb);

    PhysMem &mem_;
    std::atomic<Addr> root_{0};
    std::atomic<uint64_t> walks_{0};
    std::atomic<uint64_t> epoch_{1};
};

inline bool
GpuTlb::syncEpoch(const GpuMmu &mmu)
{
    uint64_t cur = mmu.epoch();
    if (epoch == cur)
        return false;
    flush();
    epoch = cur;
    return true;
}

} // namespace bifsim::gpu

#endif // BIFSIM_GPU_GMMU_H
