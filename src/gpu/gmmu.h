#ifndef BIFSIM_GPU_GMMU_H
#define BIFSIM_GPU_GMMU_H

/**
 * @file
 * The GPU's memory management unit (paper §III-B5).
 *
 * The driver running on the simulated CPU builds page tables in guest
 * memory and hands the root pointer to the GPU through the AS_TRANSTAB
 * register; every shader memory access is translated through these
 * tables.  Faults are reported back through AS_FAULTSTATUS /
 * AS_FAULTADDRESS and an interrupt, exactly like the modelled hardware.
 *
 * GPU page-table format (distinct from the CPU's, as on the real SoC):
 * two levels of 1024 32-bit entries, 4 KiB pages.
 *
 *   PTE: bit0 VALID, bit1 WRITE; PPN in bits [29:10]
 *   level-1 entries are always pointers (no huge pages).
 *
 * Fast path: successful walks cache the *host* pointer to the frame in
 * the worker's TLB entry, so a hit turns a shader load/store into a
 * direct memcpy with no physical-address recomposition and no per-access
 * RAM bounds check.  Invalidation is epoch-based: AS_COMMAND, root
 * changes and job boundaries bump a global epoch counter; workers
 * compare their TLB's epoch lazily at clause boundaries and flush only
 * when stale, so there is no cross-thread flush coordination.
 *
 * Concurrency model (DESIGN.md §5f): GpuMmu itself is a *stateless*
 * walker over guest memory plus two atomics (root, epoch) — it is safe
 * to call translate()/lookup() from any number of threads as long as
 * each call site passes its *own* GpuTlb.  All mutable per-thread
 * translation state, including the walk/hit counters, lives in the
 * GpuTlb, which must never be shared between threads.  Counters are
 * folded into the job result once at job completion, so the
 * translation fast path performs no shared-memory writes at all.
 *
 * Static-contract note (§5i): atomics-only — no sim::Mutex here, so
 * nothing carries GUARDED_BY; the epoch protocol is the contract and
 * TSan/the replay differ are its checkers.
 */

#include <atomic>
#include <cstdint>

#include "mem/phys_mem.h"

namespace bifsim::trace {
class TraceBuffer;
}

namespace bifsim::gpu {

class GpuMmu;

/** GPU PTE bits. */
enum GpuPteBits : uint32_t
{
    kGpuPteValid = 1u << 0,
    kGpuPteWrite = 1u << 1,
};

/** GPU page geometry. */
constexpr uint32_t kGpuPageShift = 12;
constexpr uint32_t kGpuPageBytes = 1u << kGpuPageShift;

/** A small per-worker TLB; workers own one each so no locking is
 *  needed on the translation fast path.  Strictly thread-local: the
 *  owning thread is the only one that may pass it to
 *  GpuMmu::translate()/lookup() or read its counters. */
struct GpuTlb
{
    static constexpr size_t kEntries = 64;

    /** Sentinel VPN: 32-bit GPU VAs have 20-bit VPNs, so this never
     *  matches a real page and doubles as the invalid marker. */
    static constexpr uint32_t kInvalidVpn = 0xffffffffu;

    struct Entry
    {
        uint32_t vpn = kInvalidVpn;
        uint32_t ppn = 0;
        uint8_t *host = nullptr;  ///< Host pointer to the frame base, or
                                  ///< null if the frame is not entirely
                                  ///< inside RAM (slow path per access).
        bool writable = false;
    };

    Entry entries[kEntries];

    /** One-entry last-page cache in front of the set-indexed array. */
    const Entry *last = nullptr;

    /** Epoch observed at the last flush (see GpuMmu::epoch()). */
    uint64_t epoch = 0;

    // Per-worker translation counters (no atomics; folded into the job
    // result at completion, so adding host threads adds no shared
    // counter traffic).
    uint64_t lastPageHits = 0;
    uint64_t arrayHits = 0;
    uint64_t walks = 0;        ///< Full page-table walks through this TLB.

    /** Owning thread's trace buffer (null = tracing off); walks record
     *  an mmu_walk instant into it. */
    trace::TraceBuffer *traceBuf = nullptr;

    void
    flush()
    {
        for (Entry &e : entries)
            e.vpn = kInvalidVpn;
        last = nullptr;
    }

    /** Lazily flushes if the MMU epoch moved (clause-boundary check).
     *  @return true if a flush happened. */
    inline bool syncEpoch(const GpuMmu &mmu);
};

/**
 * Stateless page-table walker for the GPU address space.  The root
 * pointer is atomic so the job-manager thread and MMIO writes from the
 * CPU thread can exchange it safely.
 *
 * Walk counts accumulate in the caller's GpuTlb (thread-local, no
 * atomics); the walker itself carries no mutable statistics, so any
 * number of workers can translate concurrently without touching a
 * shared cache line.
 */
class GpuMmu
{
  public:
    explicit GpuMmu(PhysMem &mem) : mem_(mem) {}

    /** Sets the page-table root physical address (AS_TRANSTAB).
     *  Bumps the epoch: cached translations become stale.
     *  Threading: any thread (typically the MMIO/submit path). */
    void
    setRoot(Addr root_pa)
    {
        root_.store(root_pa);
        bumpEpoch();
    }

    /** Current page-table root.  Threading: any thread. */
    Addr root() const { return root_.load(); }

    /**
     * Translates GPU virtual address @p va.
     * @param write  Whether the access is a store.
     * @param tlb    The calling thread's own TLB (never shared).
     * @param pa_out Receives the physical address.
     * @return false on translation fault.
     * Threading: any thread, concurrently; may race with setRoot()/
     * bumpEpoch() — a stale translation is served until the caller's
     * next GpuTlb::syncEpoch() (the lazy-shootdown contract).
     */
    bool translate(uint32_t va, bool write, GpuTlb &tlb, Addr &pa_out);

    /**
     * Fast-path lookup: returns the TLB entry covering @p va (filling it
     * by a walk on miss), or null on a translation/permission fault.
     * On success the entry is also installed as @p tlb's last-page
     * cache.  The entry's host pointer is null when the frame is not
     * entirely inside RAM; callers must then fall back to physical
     * addressing.
     * Threading: as translate().
     */
    const GpuTlb::Entry *lookup(uint32_t va, bool write, GpuTlb &tlb);

    /** Global TLB-invalidation epoch (bumped by AS_COMMAND, root
     *  changes and job boundaries).  Threading: any thread. */
    uint64_t
    epoch() const
    {
        return epoch_.load(std::memory_order_acquire);
    }

    /** Invalidates all worker TLBs lazily: workers notice the new epoch
     *  at their next clause boundary and flush locally.  Threading:
     *  any thread; O(1), no cross-thread coordination. */
    void bumpEpoch() { epoch_.fetch_add(1, std::memory_order_release); }

  private:
    /** Cold path: walks the page table and fills @p e. */
    const GpuTlb::Entry *walkFill(uint32_t va, bool write, GpuTlb &tlb);

    PhysMem &mem_;
    std::atomic<Addr> root_{0};
    std::atomic<uint64_t> epoch_{1};
};

inline bool
GpuTlb::syncEpoch(const GpuMmu &mmu)
{
    uint64_t cur = mmu.epoch();
    if (epoch == cur)
        return false;
    flush();
    epoch = cur;
    return true;
}

} // namespace bifsim::gpu

#endif // BIFSIM_GPU_GMMU_H
