#ifndef BIFSIM_GPU_SHADER_CORE_H
#define BIFSIM_GPU_SHADER_CORE_H

/**
 * @file
 * Shader-core execution (paper §III-B2/3).
 *
 * The interpretive execution model is split into two phases: shader
 * binaries are decoded exactly once into a DecodedShader (with all
 * static instrumentation precomputed), then a dispatcher iterates over
 * the job dimensions creating warps of four threads ("quads") that
 * execute clauses in lockstep.  Thread-groups (OpenCL workgroups) are
 * distributed as contiguous slices into per-worker Chase-Lev deques at
 * job start; idle workers steal slices from victims (work_queue.h) —
 * the "virtual cores" optimisation: more host threads than guest
 * shader cores, with simulator-private local memory per host thread
 * and no shared-counter traffic on the claim path.
 *
 * Execute fast path: at decode time each clause's tuples are lowered
 * into a dense pre-resolved micro-op array (opcode, unified-register
 * operand indices, immediate), so the per-warp execute loop iterates a
 * flat array instead of re-walking tuple/slot structures and re-testing
 * operand kinds.  Because every shader is decoded exactly once
 * (§III-B2), the lowering cost amortises to zero.  The original
 * tuple-walking interpreter is retained as the "legacy" dispatch path
 * (GpuConfig::fastPath = false) for differential testing and for the
 * before/after hot-path benchmark.
 */

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

#include "gpu/gmmu.h"
#include "gpu/isa/bif.h"
#include "gpu/shader_cache.h"
#include "gpu/work_queue.h"
#include "instrument/stats.h"
#include "mem/phys_mem.h"

namespace bifsim::gpu {

/**
 * One pre-resolved instruction of the flattened dispatch stream.
 *
 * Operands are unified register-file indices (see bif.h): absent
 * sources read the always-zero kSrZero slot and non-writing or invalid
 * destinations target the kUnifiedSink slot, so the execute loop needs
 * no per-instruction operand-kind or writeback tests.
 */
struct MicroOp
{
    bif::Op op = bif::Op::Nop;
    uint8_t dst = bif::kUnifiedSink;
    uint8_t src0 = bif::kSrZero;
    uint8_t src1 = bif::kSrZero;
    uint8_t src2 = bif::kSrZero;
    int32_t imm = 0;
};

/** A decoded shader with precomputed static instrumentation. */
struct DecodedShader
{
    bif::Module mod;
    std::vector<ClauseStaticInfo> info;
    std::vector<uint8_t> isBarrier;   ///< Per clause: barrier clause?

    // Flattened micro-op dispatch stream (paper §III-B2: built exactly
    // once per shader at decode time).
    std::vector<MicroOp> uops;        ///< All clauses, Nop slots elided.
    std::vector<uint32_t> uopStart;   ///< Per clause, size clauses+1.
    std::vector<uint8_t> hasCf;       ///< Per clause: any control flow?
    bool anyBarrier = false;          ///< Any barrier clause at all?

    /** Builds the derived tables from @p m. */
    static DecodedShader build(bif::Module m);
};

/** The in-memory job descriptor format (12 little-endian u32 words). */
struct JobDescriptor
{
    static constexpr uint32_t kSizeBytes = 48;
    static constexpr uint32_t kTypeNull = 0;
    static constexpr uint32_t kTypeCompute = 1;

    uint32_t jobType = kTypeCompute;
    uint32_t next = 0;          ///< GPU VA of next job in chain (0=end).
    uint32_t grid[3] = {1, 1, 1};  ///< Global size in work-items.
    uint32_t wg[3] = {1, 1, 1};    ///< Workgroup size.
    uint32_t binaryVa = 0;      ///< GPU VA of the shader binary.
    uint32_t argsVa = 0;        ///< GPU VA of the argument table.
    uint32_t localSize = 0;     ///< Local memory bytes per group.
    uint32_t localBase = 0;     ///< GPU VA of driver-allocated local
                                ///< arena (informational; see below).

    /** Serialises to the guest format. */
    void writeTo(uint8_t *dst) const;

    /** Parses from the guest format. */
    static JobDescriptor readFrom(const uint8_t *src);
};

/** Why a job failed. */
enum class JobFaultKind : uint8_t
{
    None = 0,
    BadDescriptor,     ///< Descriptor unreadable or bad job type.
    BadDimensions,     ///< Grid not a multiple of workgroup size, etc.
    BadBinary,         ///< Shader binary unreadable or malformed.
    MmuFault,          ///< Translation fault on a data access.
    BadAccess,         ///< Misaligned or out-of-range (local) access.
    DivergentBarrier,  ///< Barrier reached with divergent threads.
    ShaderVerify,      ///< Decode-time static verifier rejected the
                       ///< image (see GpuConfig::verify).
};

/** Fault details (reflected into AS_FAULTSTATUS/AS_FAULTADDRESS). */
struct JobFault
{
    JobFaultKind kind = JobFaultKind::None;
    uint32_t va = 0;
    std::string detail;
};

/** Maximum argument-table words preloaded per job. */
constexpr uint32_t kMaxArgWords = 64;

/**
 * Everything shared by the workers executing one job.  Immutable while
 * the job runs except for the fault latch; published to the parked
 * workers through the pool mutex (see DESIGN.md §5f).
 */
struct JobContext
{
    const DecodedShader *shader = nullptr;   ///< Authoritative image.
    std::shared_ptr<DecodedShader> shaderRef;   ///< Pins @c shader for
                                                ///< the job's duration.
    JobDescriptor desc;
    GpuMmu *mmu = nullptr;
    PhysMem *mem = nullptr;
    const ShaderCacheL2 *shaderCache = nullptr;  ///< Worker L1 backing.
    SliceDeque *deques = nullptr;       ///< Per-worker slice deques
                                        ///< (numWorkers of them).
    unsigned numWorkers = 1;
    uint32_t args[kMaxArgWords] = {};
    uint32_t groups[3] = {1, 1, 1};
    uint32_t totalGroups = 1;
    bool collect = true;                ///< Instrumentation enabled.
    bool fastPath = true;               ///< Micro-op dispatch + host-ptr
                                        ///< TLB (false = legacy loop).

    std::atomic<bool> faulted{false};

    /** Fault latch lock.  Never held together with the GPU device lock
     *  (runJob copies the fault out under faultLock, releases it, then
     *  reports under lock_). */
    sim::Mutex faultLock;
    JobFault fault GUARDED_BY(faultLock);
    uint32_t faultGroup GUARDED_BY(faultLock) = 0xffffffffu;
                                         ///< Lowest faulting group.

    /**
     * Records a fault raised by workgroup @p group (thread-safe; any
     * worker).  The lowest-numbered faulting workgroup wins, not the
     * first to arrive: every group always executes (a fault stops only
     * its own group), so the reported fault — and every guest-visible
     * side effect of the job — is independent of worker count and
     * steal timing.
     */
    void raiseFault(uint32_t group, JobFaultKind kind, uint32_t va,
                    const std::string &detail);
};

/**
 * Executes workgroups on behalf of one host worker thread.
 *
 * Owns the worker's TLB, the simulator-private local-memory buffer (the
 * paper's §III-B3 mechanism for running more thread-groups in parallel
 * than the guest has shader cores), the worker's shader-cache L1 and
 * the instrumentation collectors.
 *
 * Threading: every method runs on the owning worker thread only.  The
 * accessors (collector(), tlb(), sched()) are read by the dispatching
 * thread *after* the job-completion barrier, never concurrently with
 * execution.
 */
class WorkgroupExecutor
{
  public:
    WorkgroupExecutor() = default;

    /** Prepares for a new job: syncs the TLB epoch, resets the
     *  collectors and resolves the shader through the worker's L1.
     *  @param worker_index  This worker's slot in JobContext::deques. */
    void beginJob(JobContext *job, unsigned worker_index);

    /** Runs slices from the worker's own deque, then steals from the
     *  other workers' deques until a full scan finds them all empty. */
    void runUntilDone();

    /** Folds per-clause execution counts into the kernel totals
     *  (called once per worker at job completion, paper §IV-A). */
    void finalize();

    /** The worker's merged statistics (valid after finalize()). */
    const WorkerCollector &collector() const { return coll_; }

    /** The worker's TLB (counters folded into the job result). */
    const GpuTlb &tlb() const { return tlb_; }

    /** The worker's scheduler counters for the current job. */
    const SchedStats &sched() const { return sched_; }

    /** Attaches the owning worker thread's trace buffer (null = off).
     *  Called once from the worker thread before any job runs. */
    void setTrace(trace::TraceBuffer *buf);

  private:
    /** Per-thread state within a warp: one unified register file (GRF,
     *  clause temporaries, warp-init-preloaded specials, write sink)
     *  plus the clause-granular PC. */
    struct Thread
    {
        uint32_t reg[bif::kNumUnifiedRegs];
        uint32_t pc;           ///< Clause index.
        bool done;
    };

    /** A warp of kWarpWidth threads executing in lockstep. */
    struct Warp
    {
        Thread threads[bif::kWarpWidth];
        unsigned numThreads = 0;   ///< Live threads (tail warps < width).
        bool atBarrier = false;
    };

    enum class WarpStop { Done, Barrier, Fault };

    JobContext *job_ = nullptr;
    GpuTlb tlb_;
    std::vector<uint8_t> local_;
    WorkerCollector coll_;
    SchedStats sched_;
    unsigned index_ = 0;           ///< Slot in JobContext::deques.
    ShaderCacheL1 shaderL1_;       ///< Worker-private decode cache.
    std::shared_ptr<DecodedShader> shaderRef_;  ///< Job-duration pin.
    uint32_t groupId_[3] = {0, 0, 0};
    uint32_t curGroup_ = 0;        ///< Linear index of running group.
    bool groupFault_ = false;      ///< Current group raised a fault.

    trace::TraceBuffer *traceBuf_ = nullptr;   ///< Null = tracing off.
    uint64_t jobStartTs_ = 0;      ///< beginJob timestamp (trace only).
    uint64_t groupsRun_ = 0;       ///< Groups claimed this job (trace).

    // Lazy instrumentation (§IV-A): clause execution counts accumulate
    // into this scratch array while a workgroup runs and fold into the
    // collector once per group, off the per-clause path.
    std::vector<uint64_t> groupExec_;
    uint32_t lastPageIns_ = 0xffffffffu;  ///< Last page-set insert.

    void runSlice(const GroupSlice &s);
    void runGroup(uint32_t linear_group);
    WarpStop runWarp(Warp &warp);
    void initWarp(Warp &w, uint32_t warp_idx, uint32_t group_threads);
    void foldGroupExec();

    /** Executes clause @p c for the @p mask threads of @p warp over the
     *  flattened micro-op stream.  Returns false on fault. */
    bool execClause(Warp &warp, uint32_t c, uint32_t mask);

    /** The pre-overhaul tuple-walking interpreter, kept verbatim as the
     *  before/after baseline and differential-test subject. */
    bool execClauseLegacy(Warp &warp, uint32_t c, uint32_t mask);

    /** Commits per-thread next-PCs and divergence bookkeeping shared by
     *  both dispatch paths. */
    bool commitClause(Warp &warp, uint32_t c, uint32_t mask, bool has_cf,
                      const uint32_t *next_pc, const bool *exits);

    uint32_t readOperand(const Thread &t, uint8_t op) const;
    void writeOperand(Thread &t, uint8_t op, uint32_t value);

    /** Raises @p kind against the current workgroup: latches it into
     *  the job (lowest group wins) and stops this group's warps. */
    void raiseFault(JobFaultKind kind, uint32_t va,
                    const std::string &detail);

    bool memAccess(uint32_t va, unsigned size, bool write, uint32_t &val);
    bool memAccessLegacy(uint32_t va, unsigned size, bool write,
                         uint32_t &val);
    bool localAccess(uint32_t offset, bool write, uint32_t &val);
    uint32_t *atomicHostPtr(uint32_t va, bool fast);
    void notePage(uint32_t vpn);
};

} // namespace bifsim::gpu

#endif // BIFSIM_GPU_SHADER_CORE_H
