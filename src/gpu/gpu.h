#ifndef BIFSIM_GPU_GPU_H
#define BIFSIM_GPU_GPU_H

/**
 * @file
 * The GPU device model: memory-mapped registers, the Job Manager (which
 * runs in its own host simulation thread, paper §III-B4), the shader
 * decode cache, and the worker pool implementing the virtual-core
 * optimisation (§III-B3).
 *
 * The CPU interacts with the GPU exactly as the paper describes
 * (§III-B1): the driver writes job descriptors and page tables into
 * shared memory, pokes control registers, and receives completion
 * through interrupt lines.
 *
 * Register map (byte offsets from the device base):
 *
 *   0x000 GPU_ID          (ro)  0x4731'0000 | shader-core count
 *   0x004 GPU_IRQ_RAWSTAT (ro)  bit0 JOB_DONE, bit1 JOB_FAULT,
 *                               bit2 MMU_FAULT
 *   0x008 GPU_IRQ_CLEAR   (wo)  write-1-to-clear
 *   0x00C GPU_IRQ_MASK    (rw)
 *   0x010 GPU_IRQ_STATUS  (ro)  RAWSTAT & MASK
 *   0x014 GPU_CMD         (wo)  1 = flush shader decode cache
 *   0x020 JS_SUBMIT       (wo)  GPU VA of first descriptor in a chain
 *   0x024 JS_STATUS       (ro)  0 idle / 1 running / 2 done / 3 fault
 *   0x028 JS_JOBCOUNT     (ro)  completed jobs (cumulative)
 *   0x030 AS_TRANSTAB     (rw)  physical addr of GPU page-table root
 *   0x034 AS_COMMAND      (wo)  1 = broadcast TLB flush to workers
 *   0x038 AS_FAULTSTATUS  (ro)  JobFaultKind of last fault
 *   0x03C AS_FAULTADDRESS (ro)  faulting GPU VA
 *   0x040 SC_COUNT        (ro)  guest shader cores
 *   0x044 SC_THREADS      (ro)  runtime-effective host worker threads
 *                               (simulator detail; reflects auto
 *                               detection, not the configured value)
 *
 * Threading (full model in DESIGN.md §5f, static contract §5i): MMIO
 * handlers run on the CPU/caller thread under lock_; the Job Manager
 * chain loop runs on its own thread (or inline on the submitting
 * thread under GpuConfig::syncSubmit); workgroups execute on the
 * worker pool, which parks on poolLock_ between jobs.  lock_ and
 * poolLock_ are never held together (the job dispatch in runJob takes
 * poolLock_ strictly after the chain walk released lock_); neither is
 * ever held while executing guest shader code.
 */

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

#include "analysis/analysis.h"
#include "gpu/gmmu.h"
#include "gpu/shader_cache.h"
#include "gpu/shader_core.h"
#include "gpu/work_queue.h"
#include "instrument/stats.h"
#include "mem/device.h"
#include "mem/phys_mem.h"
#include "trace/trace.h"

namespace bifsim::replay {
class Recorder;
}

namespace bifsim::gpu {

/** GPU model configuration. */
struct GpuConfig
{
    unsigned numCores = 8;     ///< Guest-visible shader cores (Mali-G71
                               ///< MP8 as on the HiKey960).

    /**
     * Host worker threads ("virtual cores").  0 = auto-detect: the
     * BIFSIM_HOST_THREADS environment variable if set, else the host's
     * hardware concurrency (min 1).  The resolved value is visible in
     * GpuDevice::config() and the SC_THREADS register.
     */
    unsigned hostThreads = 8;

    /**
     * Debug knob: deal every workgroup slice to worker 0's deque so
     * all other workers must steal.  Exists to make the stealing path
     * deterministically reachable from stress tests; never enable for
     * performance runs.
     */
    bool skewSlices = false;

    bool instrument = true;    ///< Collect execution statistics.
    bool fastPath = true;      ///< Micro-op dispatch + host-pointer TLB;
                               ///< false selects the legacy interpreter
                               ///< (A/B baseline, differential tests).
    bool trace = false;        ///< Job-lifecycle tracing (src/trace/);
                               ///< off costs one branch per event site.
    size_t traceBufferEvents = 1u << 14;   ///< Ring capacity per thread.

    /**
     * Deterministic co-simulation: a JS_SUBMIT write runs the whole
     * chain inline on the submitting (CPU) thread instead of waking the
     * Job Manager thread.  The completion IRQ is then pending before
     * the guest driver reaches its wait loop, so the interleaving of
     * CPU instructions and GPU completions — and with it every
     * guest-visible artefact (mailbox IRQ counters, trap save areas,
     * idle timer ticks) — is a pure function of the guest state.
     * Required for bit-identical snapshot/resume in FullSystem mode.
     */
    bool syncSubmit = false;

    /**
     * Decode-time shader verifier strictness.  The Job Manager runs the
     * static analyzer (src/analysis/) on every freshly decoded image:
     *
     *  - kOff:    execute anything that structurally decodes (the
     *             pre-verifier behaviour).
     *  - kUnsafe: reject images whose execution is architecturally
     *             undefined — out-of-bounds ROM/argument indices, GRF
     *             references past regCount, temp-scope violations, bad
     *             branch targets.  The default.
     *  - kStrict: additionally reject any error-severity lint finding
     *             (e.g. a definitely-uninitialised GRF read).
     *
     * A rejected shader fails the job with JobFaultKind::ShaderVerify
     * and raises kIrqJobFault; the diagnostics land in the trace stream
     * as instants when tracing is on.
     */
    analysis::Strictness verify = analysis::Strictness::kUnsafe;
};

/** Merged results for the most recent job. */
struct JobResult
{
    KernelStats kernel;
    TlbStats tlb;              ///< Translation fast-path counters.
    uint64_t pagesAccessed = 0;
    bool faulted = false;
    JobFault fault;
};

/** Shader decode-cache statistics. */
struct ShaderCacheStats
{
    uint64_t decodes = 0;
    uint64_t hits = 0;
};

/** Serialises a JobResult (stats + fault details) into @p w. */
void saveJobResult(snapshot::ChunkWriter &w, const JobResult &r);

/** Restores a JobResult from @p r (parse-then-commit). */
void restoreJobResult(snapshot::ChunkReader &r, JobResult &out);

/** GPU register offsets. */
enum GpuReg : Addr
{
    kRegGpuId = 0x000,
    kRegIrqRawStat = 0x004,
    kRegIrqClear = 0x008,
    kRegIrqMask = 0x00c,
    kRegIrqStatus = 0x010,
    kRegGpuCmd = 0x014,
    kRegJsSubmit = 0x020,
    kRegJsStatus = 0x024,
    kRegJsJobCount = 0x028,
    kRegAsTranstab = 0x030,
    kRegAsCommand = 0x034,
    kRegAsFaultStatus = 0x038,
    kRegAsFaultAddress = 0x03c,
    kRegScCount = 0x040,
    kRegScThreads = 0x044,
};

/** GPU_IRQ bits. */
enum GpuIrqBits : uint32_t
{
    kIrqJobDone = 1u << 0,
    kIrqJobFault = 1u << 1,
    kIrqMmuFault = 1u << 2,
};

/** JS_STATUS values. */
enum JsStatus : uint32_t
{
    kJsIdle = 0,
    kJsRunning = 1,
    kJsDone = 2,
    kJsFault = 3,
};

/**
 * The simulated Mali-like GPU.
 *
 * Construction spawns the Job Manager thread and the worker pool; both
 * are joined at destruction.  All MMIO accesses are counted into the
 * system statistics (Table III's control-register traffic).
 */
class GpuDevice : public Device
{
  public:
    using IrqFn = std::function<void(bool level)>;

    /**
     * @param mem  Guest physical memory (shared with the CPU).
     * @param cfg  Model configuration.
     * @param irq  Interrupt output (wired to the platform INTC).
     */
    GpuDevice(PhysMem &mem, GpuConfig cfg, IrqFn irq);
    ~GpuDevice() override;

    GpuDevice(const GpuDevice &) = delete;
    GpuDevice &operator=(const GpuDevice &) = delete;

    /** Threading: any thread (normally the simulated CPU's); serialised
     *  internally by the device lock. */
    uint32_t mmioRead(Addr offset) override EXCLUDES(lock_);

    /** Threading: any thread.  Under GpuConfig::syncSubmit a JS_SUBMIT
     *  write runs the whole chain inline before returning; otherwise it
     *  only enqueues for the Job Manager thread. */
    void mmioWrite(Addr offset, uint32_t value) override
        EXCLUDES(lock_, poolLock_);

    std::string name() const override { return "gpu"; }

    /** Blocks the calling host thread until all submitted chains have
     *  completed (host-side convenience for the direct runtime mode).
     *  Threading: any thread except the Job Manager itself. */
    void waitIdle() EXCLUDES(lock_);

    /** True if no chain is queued or running (snapshot quiescence).
     *  Threading: any thread; instantaneous unless externally fenced. */
    bool idle() const EXCLUDES(lock_);

    /** Returns the device to its power-on state (must be idle).
     *  Threading: any single thread, with no concurrent MMIO. */
    void reset() override EXCLUDES(lock_);

    /**
     * Serialises JM registers, AS/TRANSTAB configuration, job-slot
     * state and statistics into @p w.  The GPU must be quiescent
     * (idle()); throws snapshot::SnapshotError otherwise — job-slot
     * state mid-chain is not capturable.
     * Threading: any single thread, no concurrent MMIO/submits.
     */
    void saveState(snapshot::ChunkWriter &w) const EXCLUDES(lock_);

    /**
     * Restores from @p r.  Purges the shader decode cache and installs
     * the saved translation root through GpuMmu::setRoot(), whose epoch
     * bump invalidates every worker's host-pointer TLB, so no stale
     * translation or decoded shader can be served after a restore.
     * Threading: any single thread, no concurrent MMIO/submits (the
     * cache purge requires the device to stay quiescent throughout).
     */
    void restoreState(snapshot::ChunkReader &r) EXCLUDES(lock_);

    /** Results of the most recently completed job.
     *  Threading: any thread (returns a copy taken under the lock). */
    JobResult lastJob() const EXCLUDES(lock_);

    /** Kernel statistics accumulated over all jobs.
     *  Threading: any thread. */
    KernelStats totalKernelStats() const EXCLUDES(lock_);

    /** System-level statistics (Table III).  Threading: any thread. */
    SystemStats systemStats() const EXCLUDES(lock_);

    /** Shader decode-cache statistics.  Threading: any thread. */
    ShaderCacheStats shaderCacheStats() const EXCLUDES(lock_);

    /** Work-stealing scheduler statistics accumulated over all jobs
     *  (host-side diagnostic; not snapshotted).
     *  Threading: any thread. */
    SchedStats schedulerStats() const EXCLUDES(lock_);

    /** Clears all statistics (not the decode cache).
     *  Threading: any thread. */
    void resetStats() EXCLUDES(lock_);

    /** The GPU MMU (used by host-side direct setup paths and tests).
     *  Threading: the returned reference is itself thread-safe per the
     *  GpuMmu contract (gmmu.h). */
    GpuMmu &mmu() { return mmu_; }

    /** The model configuration, with auto-detected fields resolved
     *  (hostThreads is never 0 here).  Threading: any thread;
     *  immutable after construction. */
    const GpuConfig &config() const { return cfg_; }

    /** The job-lifecycle tracer (no-op unless GpuConfig::trace).
     *  Threading: per the trace::Tracer contract (trace.h). */
    trace::Tracer &tracer() { return tracer_; }

    /** Raw guest-visible register state for replay fingerprints.
     *  Unlike mmioRead() this does not count into SystemStats — a
     *  recorder probe must not perturb the guest-visible
     *  control-register counters.
     *  Threading: any thread (copied under the device lock). */
    struct RegState
    {
        uint32_t irqRaw;
        uint32_t jsStatus;
        uint32_t jobCount;
        uint32_t faultStatus;
        uint32_t faultAddress;
    };
    RegState regState() const EXCLUDES(lock_);

    /**
     * Attaches (or, with nullptr, detaches) a CPU<->GPU boundary
     * recorder (src/replay/).  Attaching requires GpuConfig::syncSubmit
     * — the chain then runs inline on the submitting thread, so every
     * hook fires in causal order on one thread — and an idle device;
     * throws SimError otherwise.
     * Threading: simulation thread only, no concurrent MMIO.
     */
    void setRecorder(replay::Recorder *rec) EXCLUDES(lock_);

  private:
    PhysMem &mem_;
    GpuConfig cfg_;
    IrqFn irq_;
    GpuMmu mmu_;
    trace::Tracer tracer_;
    trace::TraceBuffer *devBuf_ = nullptr;   ///< MMIO/IRQ events; the
                                             ///< pointer is immutable
                                             ///< after construction,
                                             ///< all event writes
                                             ///< happen under lock_.
    trace::TraceBuffer *jmBuf_ = nullptr;    ///< Job Manager thread.
    replay::Recorder *recorder_ GUARDED_BY(lock_) = nullptr;
                                             ///< Boundary capture hooks
                                             ///< (null = not recording).

    /** Device lock: MMIO register file, IRQ lines, submit queue, and
     *  the guest-visible statistics.  Never held together with
     *  poolLock_ and never while guest shader code executes. */
    mutable sim::Mutex lock_;
    sim::CondVar cv_;                   ///< JM wakeup / waitIdle.
    std::deque<uint32_t> submitQueue_ GUARDED_BY(lock_);
    std::atomic<bool> shutdown_{false};
    bool chainActive_ GUARDED_BY(lock_) = false;

    uint32_t irqRaw_ GUARDED_BY(lock_) = 0;
    uint32_t irqMask_ GUARDED_BY(lock_) = 0;
    uint32_t jsStatus_ GUARDED_BY(lock_) = kJsIdle;
    uint32_t jobCount_ GUARDED_BY(lock_) = 0;
    uint32_t faultStatus_ GUARDED_BY(lock_) = 0;
    uint32_t faultAddress_ GUARDED_BY(lock_) = 0;
    bool irqLevel_ GUARDED_BY(lock_) = false;

    SystemStats sys_ GUARDED_BY(lock_);
    /** sys_ as of the last metrics publish (§5k): sys_ counters also
     *  grow outside runJob (MMIO, IRQs), so the always-on registry
     *  gets the delta against this baseline at each job completion. */
    SystemStats sysPublished_ GUARDED_BY(lock_);
    KernelStats total_ GUARDED_BY(lock_);
    JobResult lastJob_ GUARDED_BY(lock_);
    SchedStats sched_ GUARDED_BY(lock_);   ///< Accumulated over jobs.

    ShaderCacheL2 shaderCache_;    ///< Shared decode cache (own sync).
    ShaderCacheL1 jmL1_;           ///< Submit-path L1.  Serialised by
                                   ///< the one-chain-at-a-time rule,
                                   ///< like jmTlb_.
    GpuTlb jmTlb_;                 ///< Chain-walk TLB (readVaRange).
    ShaderCacheStats cacheStats_ GUARDED_BY(lock_);   ///< Guest-visible.

    // Worker pool.  Parked workers wait on poolCv_; a job is published
    // by setting activeJob_ and bumping jobSeq_ under poolLock_, and
    // completion is the workersDone_ == workers barrier on poolDoneCv_.
    // The slice deques are (re)filled only while the pool is parked.
    sim::Mutex poolLock_;
    sim::CondVar poolCv_;
    sim::CondVar poolDoneCv_;
    JobContext *activeJob_ GUARDED_BY(poolLock_) = nullptr;
    uint64_t jobSeq_ GUARDED_BY(poolLock_) = 0;
    unsigned workersDone_ GUARDED_BY(poolLock_) = 0;
    std::vector<WorkgroupExecutor> executors_;
    std::unique_ptr<SliceDeque[]> deques_;   ///< One per worker.
    std::vector<std::thread> workers_;
    std::thread jmThread_;

    void jmMain() EXCLUDES(lock_, poolLock_);
    void workerMain(unsigned idx) EXCLUDES(lock_, poolLock_);

    /** Executes one chain of jobs starting at @p desc_va. */
    void runChain(uint32_t desc_va) EXCLUDES(lock_, poolLock_);

    /** Executes one job; returns false on fault (chain stops). */
    bool runJob(const JobDescriptor &desc) EXCLUDES(lock_, poolLock_);

    /** Deals the grid into per-worker slice deques (pool parked). */
    void distributeSlices(uint32_t total_groups);

    /** Reads @p len bytes at GPU VA @p va through the MMU. */
    bool readVaRange(uint32_t va, size_t len, std::vector<uint8_t> &out);

    /** Decodes (or fetches from cache) and statically verifies the
     *  shader at @p binary_va.  On failure returns nullptr with @p kind
     *  set to the fault class to report. */
    std::shared_ptr<DecodedShader> getShader(uint32_t binary_va,
                                             std::string &error,
                                             JobFaultKind &kind);

    /** Latches @p bits into IRQ_RAWSTAT and refreshes the output line.
     *  Note the irq_ callback fires synchronously under lock_; the INTC
     *  sink must therefore never call back into GPU MMIO (it doesn't —
     *  it only latches its own pending bits; DESIGN.md §5f). */
    void raiseIrqLocked(uint32_t bits) REQUIRES(lock_);
    void updateIrqOutput() REQUIRES(lock_);
};

} // namespace bifsim::gpu

#endif // BIFSIM_GPU_GPU_H
