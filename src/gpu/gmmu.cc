#include "gpu/gmmu.h"

#include "common/bits.h"

namespace bifsim::gpu {

bool
GpuMmu::translate(uint32_t va, bool write, GpuTlb &tlb, Addr &pa_out)
{
    uint32_t vpn = va >> 12;
    GpuTlb::Entry &e = tlb.entries[vpn % GpuTlb::kEntries];
    if (e.valid && e.vpn == vpn) {
        if (write && !e.writable)
            return false;
        pa_out = (static_cast<Addr>(e.ppn) << 12) | (va & 0xfff);
        return true;
    }

    Addr root = root_.load(std::memory_order_acquire);
    if (root == 0)
        return false;
    walks_.fetch_add(1, std::memory_order_relaxed);

    uint32_t vpn1 = bits(va, 31, 22);
    uint32_t vpn0 = bits(va, 21, 12);

    Addr l1_addr = root + vpn1 * 4;
    if (!mem_.contains(l1_addr, 4))
        return false;
    uint32_t pte1 = mem_.read<uint32_t>(l1_addr);
    if (!(pte1 & kGpuPteValid))
        return false;

    Addr l0 = static_cast<Addr>((pte1 >> 10) & 0xfffffu) << 12;
    Addr l0_addr = l0 + vpn0 * 4;
    if (!mem_.contains(l0_addr, 4))
        return false;
    uint32_t pte0 = mem_.read<uint32_t>(l0_addr);
    if (!(pte0 & kGpuPteValid))
        return false;

    e.valid = true;
    e.vpn = vpn;
    e.ppn = (pte0 >> 10) & 0xfffffu;
    e.writable = (pte0 & kGpuPteWrite) != 0;

    if (write && !e.writable)
        return false;
    pa_out = (static_cast<Addr>(e.ppn) << 12) | (va & 0xfff);
    return true;
}

} // namespace bifsim::gpu
