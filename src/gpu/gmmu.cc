#include "gpu/gmmu.h"

#include "common/bits.h"
#include "trace/trace.h"

namespace bifsim::gpu {

const GpuTlb::Entry *
GpuMmu::lookup(uint32_t va, bool write, GpuTlb &tlb)
{
    uint32_t vpn = va >> kGpuPageShift;
    GpuTlb::Entry &e = tlb.entries[vpn % GpuTlb::kEntries];
    if (e.vpn == vpn) [[likely]] {
        if (write && !e.writable) [[unlikely]]
            return nullptr;
        tlb.arrayHits++;
        tlb.last = &e;
        return &e;
    }
    return walkFill(va, write, tlb);
}

const GpuTlb::Entry *
GpuMmu::walkFill(uint32_t va, bool write, GpuTlb &tlb)
{
    Addr root = root_.load(std::memory_order_acquire);
    if (root == 0)
        return nullptr;
    tlb.walks++;   // Thread-local: the TLB belongs to the caller.
    if (tlb.traceBuf) [[unlikely]]
        tlb.traceBuf->instant("mmu_walk", "mmu", "va", va);

    uint32_t vpn1 = bits(va, 31, 22);
    uint32_t vpn0 = bits(va, 21, 12);

    Addr l1_addr = root + vpn1 * 4;
    if (!mem_.contains(l1_addr, 4))
        return nullptr;
    uint32_t pte1 = mem_.read<uint32_t>(l1_addr);
    if (!(pte1 & kGpuPteValid))
        return nullptr;

    Addr l0 = static_cast<Addr>((pte1 >> 10) & 0xfffffu) << kGpuPageShift;
    Addr l0_addr = l0 + vpn0 * 4;
    if (!mem_.contains(l0_addr, 4))
        return nullptr;
    uint32_t pte0 = mem_.read<uint32_t>(l0_addr);
    if (!(pte0 & kGpuPteValid))
        return nullptr;

    uint32_t vpn = va >> kGpuPageShift;
    GpuTlb::Entry &e = tlb.entries[vpn % GpuTlb::kEntries];
    e.vpn = vpn;
    e.ppn = (pte0 >> 10) & 0xfffffu;
    e.writable = (pte0 & kGpuPteWrite) != 0;
    // Cache the host pointer only when the whole frame is RAM-backed;
    // otherwise accesses through this entry take the physical-address
    // slow path with its per-access bounds check.
    Addr frame = static_cast<Addr>(e.ppn) << kGpuPageShift;
    e.host = mem_.contains(frame, kGpuPageBytes) ? mem_.hostPtr(frame)
                                                 : nullptr;

    if (write && !e.writable)
        return nullptr;
    tlb.last = &e;
    return &e;
}

bool
GpuMmu::translate(uint32_t va, bool write, GpuTlb &tlb, Addr &pa_out)
{
    const GpuTlb::Entry *e = lookup(va, write, tlb);
    if (!e)
        return false;
    pa_out = (static_cast<Addr>(e->ppn) << kGpuPageShift) |
             (va & (kGpuPageBytes - 1));
    return true;
}

} // namespace bifsim::gpu
