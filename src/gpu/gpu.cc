#include "gpu/gpu.h"

#include <cstdlib>
#include <cstring>
#include <unordered_set>

#include "common/logging.h"
#include "metrics/metrics.h"
#include "replay/replay.h"

namespace bifsim::gpu {

namespace {

constexpr uint32_t kMaxGroupThreads = 1024;

/** Descriptor-chain walk bound: a chain longer than this is treated as
 *  malformed (one guest store can otherwise link a cycle and park the
 *  JM thread forever). */
constexpr size_t kMaxChainDescriptors = 65536;

/** Worker-pool size ceiling (sanity bound for auto-detection and the
 *  BIFSIM_HOST_THREADS override). */
constexpr unsigned kMaxHostThreads = 256;

/** Slices dealt per worker at job start.  >1 so late-finishing workers
 *  leave stealable tail work; small so slices stay coarse enough that
 *  the per-slice deque traffic is negligible. */
constexpr uint32_t kSlicesPerWorker = 4;

/** Resolves GpuConfig::hostThreads (0 = auto, see gpu.h). */
unsigned
resolveHostThreads(unsigned configured)
{
    unsigned t = configured;
    if (t == 0) {
        if (const char *env = std::getenv("BIFSIM_HOST_THREADS"))
            t = static_cast<unsigned>(std::strtoul(env, nullptr, 10));
    }
    if (t == 0)
        t = std::thread::hardware_concurrency();
    if (t == 0)
        t = 1;
    return std::min(t, kMaxHostThreads);
}

} // namespace

GpuDevice::GpuDevice(PhysMem &mem, GpuConfig cfg, IrqFn irq)
    : mem_(mem), cfg_(cfg), irq_(std::move(irq)), mmu_(mem),
      tracer_(cfg.trace, cfg.traceBufferEvents)
{
    cfg_.hostThreads = resolveHostThreads(cfg_.hostThreads);
    devBuf_ = tracer_.registerThread("gpu-device");
    jmBuf_ = tracer_.registerThread("gpu-jm");
    executors_.resize(cfg_.hostThreads);
    deques_ = std::make_unique<SliceDeque[]>(cfg_.hostThreads);
    workers_.reserve(cfg_.hostThreads);
    for (unsigned i = 0; i < cfg_.hostThreads; ++i)
        workers_.emplace_back([this, i] { workerMain(i); });
    jmThread_ = std::thread([this] { jmMain(); });
}

GpuDevice::~GpuDevice()
{
    {
        sim::LockGuard g(lock_);
        shutdown_ = true;
        cv_.notify_all();
    }
    {
        sim::LockGuard g(poolLock_);
        poolCv_.notify_all();
    }
    jmThread_.join();
    for (std::thread &w : workers_)
        w.join();
}

void
GpuDevice::updateIrqOutput()
{
    bool level = (irqRaw_ & irqMask_) != 0;
    if (level != irqLevel_) {
        irqLevel_ = level;
        if (irq_)
            irq_(level);
    }
}

void
GpuDevice::raiseIrqLocked(uint32_t bits)
{
    irqRaw_ |= bits;
    sys_.irqsAsserted++;
    if (devBuf_)
        devBuf_->instant("irq_raise", "irq", "bits", bits);
    if (recorder_)
        recorder_->onIrqRaise(bits, irqRaw_);
    updateIrqOutput();
}

uint32_t
GpuDevice::mmioRead(Addr offset)
{
    sim::LockGuard g(lock_);
    sys_.ctrlRegReads++;
    switch (offset) {
      case kRegGpuId:          return 0x47310000u | cfg_.numCores;
      case kRegIrqRawStat:     return irqRaw_;
      case kRegIrqMask:        return irqMask_;
      case kRegIrqStatus:      return irqRaw_ & irqMask_;
      case kRegJsStatus:       return jsStatus_;
      case kRegJsJobCount:     return jobCount_;
      case kRegAsTranstab:
        return static_cast<uint32_t>(mmu_.root());
      case kRegAsFaultStatus:  return faultStatus_;
      case kRegAsFaultAddress: return faultAddress_;
      case kRegScCount:        return cfg_.numCores;
      case kRegScThreads:
        // Runtime-effective pool size: the threads that actually exist,
        // which reflects auto-detection (hostThreads = 0), not the
        // value the configuration was constructed with.
        return static_cast<uint32_t>(workers_.size());
      default:                 return 0;
    }
}

void
GpuDevice::mmioWrite(Addr offset, uint32_t value)
{
    sim::UniqueLock g(lock_);
    sys_.ctrlRegWrites++;
    // JS_SUBMIT is captured by onSubmit() below, after the pre-chain
    // RAM delta, so the log preserves the delta -> submit ordering.
    if (recorder_ && offset != kRegJsSubmit)
        recorder_->onMmioWrite(static_cast<uint32_t>(offset), value);
    switch (offset) {
      case kRegIrqClear:
        irqRaw_ &= ~value;
        updateIrqOutput();
        break;
      case kRegIrqMask:
        irqMask_ = value;
        updateIrqOutput();
        break;
      case kRegGpuCmd:
        // Decode-cache flush: epoch bump only — stale nodes become
        // unreachable immediately (even to a decode already in flight;
        // see shader_cache.h) and are reclaimed at the next quiescent
        // purge.  Safe while workers hold L1 pins.
        if (value == 1)
            shaderCache_.invalidate();
        break;
      case kRegJsSubmit:
        jsStatus_ = kJsRunning;
        if (devBuf_)
            devBuf_->instant("js_submit", "mmio", "chain_va", value);
        if (cfg_.syncSubmit) {
            // Deterministic co-simulation: execute the chain inline on
            // the submitting thread.  The completion IRQ is pending by
            // the time this MMIO write retires.
            chainActive_ = true;
            replay::Recorder *rec = recorder_;
            g.unlock();
            if (rec)
                rec->onSubmit(value);
            runChain(value);
            if (rec)
                rec->onChainComplete();
            g.lock();
            chainActive_ = false;
            cv_.notify_all();
        } else {
            submitQueue_.push_back(value);
            cv_.notify_all();
        }
        break;
      case kRegAsTranstab:
        // The decode cache is keyed by guest VA; a new translation root
        // can map the same VA to different bytes, so cached shaders are
        // stale the moment the root changes.  (Re-writing the current
        // root, as drivers do on every submit, keeps the cache.)
        if (static_cast<Addr>(value) != mmu_.root()) {
            shaderCache_.invalidate();
            if (devBuf_)
                devBuf_->instant("as_root_switch", "mmio", "root",
                                 value);
        }
        mmu_.setRoot(value);
        break;
      case kRegAsCommand:
        // TLB flush: bump the global epoch; workers notice at their
        // next clause boundary and flush locally (no broadcast, no
        // cross-thread coordination).
        if (value == 1) {
            mmu_.bumpEpoch();
            if (devBuf_)
                devBuf_->instant("as_tlb_flush", "mmio");
        }
        break;
      default:
        break;
    }
}

void
GpuDevice::waitIdle()
{
    sim::UniqueLock l(lock_);
    while (!submitQueue_.empty() || chainActive_)
        cv_.wait(l);
}

bool
GpuDevice::idle() const
{
    sim::LockGuard g(lock_);
    return submitQueue_.empty() && !chainActive_;
}

void
GpuDevice::reset()
{
    waitIdle();
    sim::LockGuard g(lock_);
    irqRaw_ = 0;
    irqMask_ = 0;
    jsStatus_ = kJsIdle;
    jobCount_ = 0;
    faultStatus_ = 0;
    faultAddress_ = 0;
    sys_ = SystemStats{};
    sysPublished_ = sys_;   // Rebaseline: deltas must not wrap.
    total_ = KernelStats{};
    lastJob_ = JobResult{};
    sched_ = SchedStats{};
    cacheStats_ = ShaderCacheStats{};
    shaderCache_.purge();   // Quiescent: waitIdle() above, lock_ held.
    jmL1_.clear();
    jmTlb_.flush();
    mmu_.setRoot(0);
    updateIrqOutput();
}

namespace {

void
saveJobFault(snapshot::ChunkWriter &w, const JobFault &f)
{
    w.u8(static_cast<uint8_t>(f.kind));
    w.u32(f.va);
    w.str(f.detail);
}

void
restoreJobFault(snapshot::ChunkReader &r, JobFault &f)
{
    uint8_t kind = r.u8();
    if (kind > static_cast<uint8_t>(JobFaultKind::ShaderVerify))
        r.fail(strfmt("invalid job-fault kind %u", kind));
    f.kind = static_cast<JobFaultKind>(kind);
    f.va = r.u32();
    f.detail = r.str();
}

} // namespace

void
saveJobResult(snapshot::ChunkWriter &w, const JobResult &r)
{
    saveStats(w, r.kernel);
    saveStats(w, r.tlb);
    w.u64(r.pagesAccessed);
    w.u8(r.faulted ? 1 : 0);
    saveJobFault(w, r.fault);
}

void
restoreJobResult(snapshot::ChunkReader &r, JobResult &out)
{
    JobResult v;
    restoreStats(r, v.kernel);
    restoreStats(r, v.tlb);
    v.pagesAccessed = r.u64();
    v.faulted = r.u8() != 0;
    restoreJobFault(r, v.fault);
    out = std::move(v);
}

void
GpuDevice::saveState(snapshot::ChunkWriter &w) const
{
    sim::LockGuard g(lock_);
    // Quiescence rule: job-slot state mid-chain lives on the JM thread
    // stack and in worker executors; it is not capturable.  Callers
    // must waitIdle() first.
    if (!submitQueue_.empty() || chainActive_)
        snapshot::snapshotError("GPU is not quiescent (chain %s); "
                                "snapshot only at waitIdle()",
                                chainActive_ ? "active" : "queued");
    w.u32(irqRaw_);
    w.u32(irqMask_);
    w.u32(jsStatus_);
    w.u32(jobCount_);
    w.u32(faultStatus_);
    w.u32(faultAddress_);
    w.u64(mmu_.root());
    saveStats(w, sys_);
    saveStats(w, total_);
    saveJobResult(w, lastJob_);
    w.u64(cacheStats_.decodes);
    w.u64(cacheStats_.hits);
}

void
GpuDevice::restoreState(snapshot::ChunkReader &r)
{
    // Parse-then-commit: decode the full chunk before touching any
    // device state.
    uint32_t irq_raw = r.u32();
    uint32_t irq_mask = r.u32();
    uint32_t js_status = r.u32();
    if (js_status == kJsRunning || js_status > kJsFault)
        r.fail(strfmt("JS_STATUS %u is not a quiescent state",
                      js_status));
    uint32_t job_count = r.u32();
    uint32_t fault_status = r.u32();
    uint32_t fault_address = r.u32();
    uint64_t root = r.u64();
    SystemStats sys;
    restoreStats(r, sys);
    KernelStats total;
    restoreStats(r, total);
    JobResult last;
    restoreJobResult(r, last);
    ShaderCacheStats cache_stats;
    cache_stats.decodes = r.u64();
    cache_stats.hits = r.u64();
    r.expectEnd();

    sim::LockGuard g(lock_);
    if (!submitQueue_.empty() || chainActive_)
        snapshot::snapshotError("cannot restore into a non-quiescent GPU");
    irqRaw_ = irq_raw;
    irqMask_ = irq_mask;
    jsStatus_ = js_status;
    jobCount_ = job_count;
    faultStatus_ = fault_status;
    faultAddress_ = fault_address;
    sys_ = sys;
    sysPublished_ = sys_;   // Rebaseline: deltas must not wrap.
    total_ = std::move(total);
    lastJob_ = std::move(last);
    cacheStats_ = cache_stats;
    // Decoded shaders were compiled against the old address space;
    // setRoot()'s epoch bump makes every worker drop its host-pointer
    // TLB at the next clause boundary.  The purge is legal here: the
    // quiescence check above plus the restore contract (no concurrent
    // submits) guarantee no lookup is in flight.
    shaderCache_.purge();
    jmL1_.clear();
    jmTlb_.flush();
    mmu_.setRoot(root);
    updateIrqOutput();
}

JobResult
GpuDevice::lastJob() const
{
    sim::LockGuard g(lock_);
    return lastJob_;
}

GpuDevice::RegState
GpuDevice::regState() const
{
    sim::LockGuard g(lock_);
    return RegState{irqRaw_, jsStatus_, jobCount_, faultStatus_,
                    faultAddress_};
}

void
GpuDevice::setRecorder(replay::Recorder *rec)
{
    if (rec) {
        if (!cfg_.syncSubmit)
            simError("recording requires GpuConfig::syncSubmit "
                     "(deterministic inline chains)");
        if (!idle())
            simError("cannot attach a recorder while the GPU is busy");
    }
    sim::LockGuard g(lock_);
    if (rec && irqRaw_ != 0)
        simError("cannot attach a recorder with unacknowledged IRQs "
                 "(raw 0x%x): clear them first so replayed IRQ state "
                 "is a pure function of the recorded inputs",
                 irqRaw_);
    recorder_ = rec;
}

KernelStats
GpuDevice::totalKernelStats() const
{
    sim::LockGuard g(lock_);
    return total_;
}

SystemStats
GpuDevice::systemStats() const
{
    sim::LockGuard g(lock_);
    return sys_;
}

ShaderCacheStats
GpuDevice::shaderCacheStats() const
{
    sim::LockGuard g(lock_);
    return cacheStats_;
}

SchedStats
GpuDevice::schedulerStats() const
{
    sim::LockGuard g(lock_);
    return sched_;
}

void
GpuDevice::resetStats()
{
    sim::LockGuard g(lock_);
    sys_ = SystemStats{};
    sysPublished_ = sys_;   // Rebaseline: deltas must not wrap.
    total_ = KernelStats{};
    lastJob_ = JobResult{};
    sched_ = SchedStats{};
    cacheStats_ = ShaderCacheStats{};
}

bool
GpuDevice::readVaRange(uint32_t va, size_t len, std::vector<uint8_t> &out)
{
    out.resize(len);
    // jmTlb_ is private to the chain-execution thread (JM, or the
    // submitting thread under syncSubmit — never both at once), so
    // descriptor/shader/argument fetches keep their translations warm
    // across a chain.  The epoch check drops them when the root moves.
    jmTlb_.syncEpoch(mmu_);
    GpuTlb &tlb = jmTlb_;
    size_t done = 0;
    while (done < len) {
        uint32_t cur = va + static_cast<uint32_t>(done);
        size_t in_page = 4096 - (cur & 0xfff);
        size_t chunk = std::min(in_page, len - done);
        Addr pa = 0;
        if (!mmu_.translate(cur, false, tlb, pa) ||
            !mem_.contains(pa, chunk)) {
            return false;
        }
        mem_.readBlock(pa, out.data() + done, chunk);
        done += chunk;
    }
    return true;
}

std::shared_ptr<DecodedShader>
GpuDevice::getShader(uint32_t binary_va, std::string &error,
                     JobFaultKind &kind)
{
    kind = JobFaultKind::BadBinary;
    uint64_t t0 = jmBuf_ ? trace::nowNs() : 0;
    // Submit-path L1 in front of the shared L2 — a hit takes no lock at
    // all (jmL1_ is private to the chain-execution thread; the L2 read
    // path is lock-free).  Only the guest-visible hit counter still
    // takes the device lock, once per job rather than per access.
    if (std::shared_ptr<DecodedShader> s =
            jmL1_.get(shaderCache_, binary_va)) {
        sim::LockGuard g(lock_);
        cacheStats_.hits++;
        if (jmBuf_)
            jmBuf_->span("decode", "shader", t0, "hit", 1, "va",
                         binary_va);
        return s;
    }

    // Stamp the node with the epoch observed *before* the guest bytes
    // are read: if a flush lands while we decode, the insert below is
    // already stale and the next job re-decodes (see shader_cache.h).
    uint64_t decode_epoch = shaderCache_.epoch();

    // Decode phase (paper §III-B2): executed exactly once per shader.
    std::vector<uint8_t> header;
    if (!readVaRange(binary_va, 32, header)) {
        error = "shader header unreadable";
        return nullptr;
    }
    uint32_t num_clauses, clause_off, rom_off, rom_words;
    std::memcpy(&num_clauses, header.data() + 4, 4);
    std::memcpy(&clause_off, header.data() + 8, 4);
    std::memcpy(&rom_off, header.data() + 12, 4);
    std::memcpy(&rom_words, header.data() + 16, 4);
    (void)num_clauses;
    (void)clause_off;
    // Widen before multiplying: rom_words * 4 in uint32_t wraps for
    // rom_words >= 0x4000'0000 and would sail under the size guard.
    uint64_t total64 = static_cast<uint64_t>(rom_off) +
                       static_cast<uint64_t>(rom_words) * 4;
    if (total64 < 32 || total64 > (64u << 20)) {
        error = "implausible shader size";
        return nullptr;
    }
    size_t total = static_cast<size_t>(total64);
    std::vector<uint8_t> bytes;
    if (!readVaRange(binary_va, total, bytes)) {
        error = "shader body unreadable";
        return nullptr;
    }
    bif::Module mod;
    if (!bif::decode(bytes.data(), bytes.size(), mod, error))
        return nullptr;

    // Static verification (decode-time gate; see GpuConfig::verify).
    if (cfg_.verify != analysis::Strictness::kOff) {
        uint64_t v0 = jmBuf_ ? trace::nowNs() : 0;
        analysis::Options opts;
        opts.maxArgWords = kMaxArgWords;
        opts.deadWrites = false;   // Lint-only class; skip the pass.
        analysis::Result res = analysis::analyze(mod, opts);
        if (jmBuf_) {
            for (const analysis::Diag &d : res.diags) {
                jmBuf_->instant(analysis::checkName(d.check), "verify",
                                "clause", d.clause, "tuple", d.tuple);
            }
            jmBuf_->span("verify", "shader", v0, "diags",
                         res.diags.size(), "va", binary_va);
        }
        if (const analysis::Diag *d =
                analysis::firstRejected(res, cfg_.verify)) {
            error = "shader verify: " + analysis::renderDiag(*d);
            kind = JobFaultKind::ShaderVerify;
            return nullptr;
        }
    }

    auto shader =
        std::make_shared<DecodedShader>(DecodedShader::build(std::move(mod)));
    shaderCache_.insert(binary_va, shader, decode_epoch);
    sim::LockGuard g(lock_);
    cacheStats_.decodes++;
    if (jmBuf_)
        jmBuf_->span("decode", "shader", t0, "hit", 0, "va", binary_va);
    return shader;
}

bool
GpuDevice::runJob(const JobDescriptor &desc)
{
    auto fail = [&](JobFaultKind kind, uint32_t va, std::string detail) {
        sim::LockGuard g(lock_);
        lastJob_ = JobResult{};
        lastJob_.faulted = true;
        lastJob_.fault = JobFault{kind, va, std::move(detail)};
        faultStatus_ = static_cast<uint32_t>(kind);
        faultAddress_ = va;
        raiseIrqLocked(kind == JobFaultKind::MmuFault ? kIrqMmuFault
                                                      : kIrqJobFault);
        return false;
    };

    if (desc.jobType != JobDescriptor::kTypeCompute) {
        return fail(JobFaultKind::BadDescriptor, 0,
                    strfmt("unsupported job type %u", desc.jobType));
    }
    for (int d = 0; d < 3; ++d) {
        if (desc.wg[d] == 0 || desc.grid[d] == 0 ||
            desc.grid[d] % desc.wg[d] != 0) {
            return fail(JobFaultKind::BadDimensions, 0,
                        "grid not a multiple of workgroup size");
        }
    }
    uint32_t group_threads = desc.wg[0] * desc.wg[1] * desc.wg[2];
    if (group_threads == 0 || group_threads > kMaxGroupThreads) {
        return fail(JobFaultKind::BadDimensions, 0,
                    "workgroup too large");
    }

    std::string err;
    JobFaultKind binKind = JobFaultKind::BadBinary;
    std::shared_ptr<DecodedShader> shader =
        getShader(desc.binaryVa, err, binKind);
    if (!shader)
        return fail(binKind, desc.binaryVa, err);

    JobContext ctx;
    ctx.shader = shader.get();
    ctx.shaderRef = shader;
    ctx.desc = desc;
    ctx.mmu = &mmu_;
    ctx.mem = &mem_;
    ctx.shaderCache = &shaderCache_;
    ctx.deques = deques_.get();
    ctx.numWorkers = static_cast<unsigned>(workers_.size());
    ctx.collect = cfg_.instrument;
    ctx.fastPath = cfg_.fastPath;
    for (int d = 0; d < 3; ++d)
        ctx.groups[d] = desc.grid[d] / desc.wg[d];
    ctx.totalGroups = ctx.groups[0] * ctx.groups[1] * ctx.groups[2];

    if (desc.argsVa != 0) {
        std::vector<uint8_t> argbytes;
        if (!readVaRange(desc.argsVa, kMaxArgWords * 4, argbytes)) {
            return fail(JobFaultKind::BadDescriptor, desc.argsVa,
                        "argument table unreadable");
        }
        std::memcpy(ctx.args, argbytes.data(), sizeof(ctx.args));
    }

    // Job boundary: stale translations from the previous job must not
    // survive.  Workers pick up the new epoch in beginJob.
    mmu_.bumpEpoch();

    // Deal the grid into the per-worker deques while the pool is still
    // parked — after the publication below, the deques belong to the
    // workers until the completion barrier.
    distributeSlices(ctx.totalGroups);

    // Dispatch to the worker pool.
    {
        sim::UniqueLock l(poolLock_);
        activeJob_ = &ctx;
        workersDone_ = 0;
        jobSeq_++;
        poolCv_.notify_all();
        while (workersDone_ != workers_.size())
            poolDoneCv_.wait(l);
        activeJob_ = nullptr;
    }

    // Merge per-worker collectors (paper §IV-A: totalled at job
    // completion, no hot-path synchronisation).  All merges are sums
    // and set unions, so the result is independent of which worker ran
    // (or stole) which workgroup — the determinism the multi-worker
    // snapshot tests rely on.
    JobResult result;
    SchedStats jobSched;
    std::unordered_set<uint32_t> pages;
    for (WorkgroupExecutor &ex : executors_) {
        result.kernel.merge(ex.collector().kernel);
        pages.insert(ex.collector().pages.begin(),
                     ex.collector().pages.end());
        result.tlb.lastPageHits += ex.tlb().lastPageHits;
        result.tlb.arrayHits += ex.tlb().arrayHits;
        result.tlb.walks += ex.tlb().walks;
        jobSched.merge(ex.sched());
    }
    result.pagesAccessed = pages.size();

    if (ctx.faulted.load()) {
        // Copy the winning fault out under its own lock, then release it
        // before fail() takes the device lock — faultLock and lock_ are
        // never held together.  (The completion barrier already ordered
        // the write, but the contract is per-lock, not per-barrier.)
        JobFault f;
        {
            sim::LockGuard g(ctx.faultLock);
            f = ctx.fault;
        }
        return fail(f.kind, f.va, std::move(f.detail));
    }

    sim::LockGuard g(lock_);
    lastJob_ = result;
    total_.merge(result.kernel);
    sched_.merge(jobSched);
    sys_.pagesAccessed += result.pagesAccessed;
    sys_.computeJobs++;
    jobCount_++;
    if (jmBuf_) {
        std::vector<NamedCounter> counters;
        appendCounters(counters, result.kernel);
        appendCounters(counters, result.tlb);
        appendCounters(counters, sys_);
        appendCounters(counters, jobSched);
        for (const NamedCounter &c : counters)
            jmBuf_->counter(c.name, c.value);
    }
    // Always-on metrics (§5k): job completion is the natural merge
    // point, so the per-job kernel/TLB/sched deltas publish as one
    // batch.  sys_ counters accumulate outside runJob too (MMIO,
    // IRQs), so their delta is taken against the last published
    // baseline; a faulted job's sys increments fold into the next
    // successful publish.
    if (metrics::registry().enabled()) {
        std::vector<NamedCounter> deltas;
        appendCounters(deltas, result.kernel);
        appendCounters(deltas, result.tlb);
        appendCounters(deltas, jobSched);
        SystemStats sysDelta = sys_;
        sysDelta.pagesAccessed -= sysPublished_.pagesAccessed;
        sysDelta.ctrlRegReads -= sysPublished_.ctrlRegReads;
        sysDelta.ctrlRegWrites -= sysPublished_.ctrlRegWrites;
        sysDelta.irqsAsserted -= sysPublished_.irqsAsserted;
        sysDelta.computeJobs -= sysPublished_.computeJobs;
        sysPublished_ = sys_;
        appendCounters(deltas, sysDelta);
        metrics::registry().publish(deltas);
    }
    raiseIrqLocked(kIrqJobDone);
    return true;
}

void
GpuDevice::distributeSlices(uint32_t total_groups)
{
    const unsigned nw = static_cast<unsigned>(workers_.size());
    // Upper bound on slices any single deque can receive: every slice
    // in the job lands on worker 0 under skewSlices.
    const uint32_t max_slices = nw * kSlicesPerWorker;
    for (unsigned w = 0; w < nw; ++w)
        deques_[w].reset(cfg_.skewSlices ? max_slices : kSlicesPerWorker);

    // Each worker owns one contiguous block of the grid (locality of
    // guest data between neighbouring groups), split into a few slices
    // so finished workers find stealable tail work in slow workers'
    // deques instead of idling at the barrier.
    uint32_t next = 0;
    for (unsigned w = 0; w < nw && next < total_groups; ++w) {
        uint32_t block =
            (total_groups - next + (nw - w) - 1) / (nw - w);
        uint32_t dealt = 0;
        for (uint32_t s = 0; s < kSlicesPerWorker && dealt < block; ++s) {
            uint32_t n = (block - dealt + (kSlicesPerWorker - s) - 1) /
                         (kSlicesPerWorker - s);
            GroupSlice slice{next + dealt, next + dealt + n};
            deques_[cfg_.skewSlices ? 0 : w].push(slice);
            dealt += n;
        }
        next += block;
    }
}

void
GpuDevice::runChain(uint32_t desc_va)
{
    uint64_t chain_t0 = jmBuf_ ? trace::nowNs() : 0;
    uint32_t va = desc_va;
    bool ok = true;
    uint64_t jobs_run = 0;
    // A descriptor chain lives in guest-writable memory, so it can be
    // self-linked or cyclic; an unbounded walk would park the JM thread
    // forever and waitIdle() would never return.
    std::unordered_set<uint32_t> visited;
    size_t walked = 0;
    while (va != 0) {
        if (!visited.insert(va).second ||
            ++walked > kMaxChainDescriptors) {
            sim::LockGuard g(lock_);
            faultStatus_ =
                static_cast<uint32_t>(JobFaultKind::BadDescriptor);
            faultAddress_ = va;
            raiseIrqLocked(kIrqJobFault);
            ok = false;
            break;
        }
        std::vector<uint8_t> raw;
        if (!readVaRange(va, JobDescriptor::kSizeBytes, raw)) {
            sim::LockGuard g(lock_);
            faultStatus_ =
                static_cast<uint32_t>(JobFaultKind::BadDescriptor);
            faultAddress_ = va;
            raiseIrqLocked(kIrqJobFault);
            ok = false;
            break;
        }
        if (jmBuf_)
            jmBuf_->instant("desc_fetch", "jm", "va", va);
        JobDescriptor desc = JobDescriptor::readFrom(raw.data());
        if (desc.jobType == JobDescriptor::kTypeNull) {
            va = desc.next;
            continue;
        }
        uint64_t job_t0 = jmBuf_ ? trace::nowNs() : 0;
        bool jok = runJob(desc);
        jobs_run++;
        if (jmBuf_)
            jmBuf_->span("job", "jm", job_t0, "ok", jok ? 1 : 0, "va",
                         va);
        if (!jok) {
            ok = false;
            break;
        }
        va = desc.next;
    }
    if (jmBuf_)
        jmBuf_->span("chain", "jm", chain_t0, "jobs", jobs_run, "ok",
                     ok ? 1 : 0);
    sim::LockGuard g(lock_);
    jsStatus_ = ok ? kJsDone : kJsFault;
    // Chain-complete interrupt: raised *after* the status update so a
    // driver woken by the last per-job IRQ can never observe a stale
    // "running" status and sleep through completion.
    raiseIrqLocked(ok ? kIrqJobDone : kIrqJobFault);
}

void
GpuDevice::jmMain()
{
    for (;;) {
        uint32_t va = 0;
        {
            sim::UniqueLock l(lock_);
            while (!shutdown_ && submitQueue_.empty())
                cv_.wait(l);
            if (shutdown_)
                return;
            va = submitQueue_.front();
            submitQueue_.pop_front();
            chainActive_ = true;
            jsStatus_ = kJsRunning;
        }
        runChain(va);
        {
            sim::LockGuard g(lock_);
            chainActive_ = false;
            cv_.notify_all();
        }
    }
}

void
GpuDevice::workerMain(unsigned idx)
{
    if (tracer_.enabled()) {
        executors_[idx].setTrace(
            tracer_.registerThread(strfmt("gpu-worker-%u", idx)));
    }
    uint64_t my_seq = 0;
    sim::UniqueLock l(poolLock_);
    for (;;) {
        while (!shutdown_ && (activeJob_ == nullptr || jobSeq_ == my_seq))
            poolCv_.wait(l);
        if (shutdown_)
            return;
        my_seq = jobSeq_;
        JobContext *job = activeJob_;
        l.unlock();

        executors_[idx].beginJob(job, idx);
        executors_[idx].runUntilDone();
        executors_[idx].finalize();

        l.lock();
        workersDone_++;
        if (workersDone_ == workers_.size())
            poolDoneCv_.notify_all();
    }
}

} // namespace bifsim::gpu
