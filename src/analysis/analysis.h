#ifndef BIFSIM_ANALYSIS_ANALYSIS_H
#define BIFSIM_ANALYSIS_ANALYSIS_H

/**
 * @file
 * Clause-granular static analysis over decoded BIF shader modules.
 *
 * The paper's defining property is that the *unmodified* GPU binary
 * runs inside the simulator, which means a malformed or hostile shader
 * image must be rejected with an architectural fault rather than
 * undefined simulator behaviour.  This framework provides that gate
 * twice over:
 *
 *  - as a **verifier** the Job Manager runs at shader decode time
 *    (GpuDevice::getShader, strictness per GpuConfig::verify), failing
 *    the job with a ShaderVerify fault + kIrqJobFault instead of
 *    executing a bad image; and
 *  - as a **lint** gate on kclc's own output (post schedule/regalloc,
 *    at every optimisation level) plus the standalone `biflint` tool,
 *    catching miscompiles such as temp-register scope violations, dead
 *    stores and uninitialised reads.
 *
 * Structure: a clause-level control-flow graph (successors from
 * fall-through plus Branch/BranchZ/BranchNZ targets) feeds iterative
 * dataflow passes —
 *
 *  - GRF definite assignment: may-/must-assigned register sets per
 *    clause (forward, union/intersection over predecessors).  A read
 *    with no reaching definition on *any* path is an error
 *    (uninit-read); a read unassigned on *some* path is a warning
 *    (maybe-uninit-read).  Semantically-used operands referencing a
 *    GRF index at or above the module's regCount are errors.
 *  - Temp-register scope: t0..t7 must be written before read within
 *    each clause, even after the scheduler reorders tuples.
 *  - Dead-write detection: GRF liveness (backward); a write whose
 *    value no path ever reads is a warning.
 *  - Static bounds: LdRom indices against rom.size(), LdArg indices
 *    against the runtime argument-table size, branch targets against
 *    the clause count.
 *
 * Every finding carries a severity, a clause/tuple/slot location and a
 * disassembled excerpt, renders as text, and is emitted into the trace
 * subsystem as instants by the GPU-side verifier.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "gpu/isa/bif.h"
#include "instrument/cfg.h"

namespace bifsim::analysis {

/** Diagnostic severity. */
enum class Severity : uint8_t { Note = 0, Warning, Error };

/** Diagnostic class. */
enum class Check : uint8_t
{
    GrfBounds = 0,    ///< GRF operand index >= module regCount.
    UninitRead,       ///< GRF read with no reaching write on any path.
    MaybeUninitRead,  ///< GRF read unassigned on some path.
    TempScope,        ///< Temp read before write within its clause.
    DeadWrite,        ///< GRF write never read on any path to exit.
    RomBounds,        ///< LdRom index outside the embedded ROM.
    ArgBounds,        ///< LdArg index outside the argument table.
    BadBranch,        ///< Branch target outside the module.
    Unreachable,      ///< Clause unreachable from the entry clause.
};

/** Canonical kebab-case name of a check ("uninit-read", ...). */
const char *checkName(Check c);

/** Severity name ("note" / "warning" / "error"). */
const char *severityName(Severity s);

/**
 * True for checks whose violation makes *executing* the image
 * architecturally undefined (the classes the decode-time verifier
 * rejects at default strictness).  Pure lint classes — uninitialised
 * reads (architecturally read as zero), dead writes, unreachable
 * clauses — are excluded.
 */
bool isUnsafe(Check c);

/** One finding, anchored to an instruction slot. */
struct Diag
{
    Check check = Check::UninitRead;
    Severity sev = Severity::Error;
    uint32_t clause = 0;
    uint32_t tuple = 0;
    uint8_t slot = 0;
    uint8_t reg = 0xff;       ///< GRF/temp index involved (0xff: n/a).
    std::string message;      ///< Human-readable description.
    std::string excerpt;      ///< Disassembly of the anchor instruction.
};

/** Renders one diagnostic as a two-line text block. */
std::string renderDiag(const Diag &d);

/**
 * The clause-granular control-flow graph.  Node i is clause i;
 * successors are clause indices or kExit for thread termination (Ret,
 * or falling off the end of the module).
 */
struct ClauseCfg
{
    static constexpr uint32_t kExit = 0xffffffffu;

    struct Node
    {
        std::vector<uint32_t> succs;   ///< Ordered, deduplicated.
        std::vector<uint32_t> preds;   ///< Clause indices only.
        bool reachable = false;        ///< BFS from clause 0.
    };

    std::vector<Node> nodes;

    /** Builds the graph (out-of-range branch targets get no edge; the
     *  analyzer reports them separately). */
    static ClauseCfg build(const bif::Module &mod);

    /** Converts to the instrumentation CFG type (thread counts zero,
     *  static multi-successor nodes flagged divergent) so the existing
     *  Fig. 6 DOT renderer applies to static graphs. */
    instrument::Cfg toInstrumentCfg() const;
};

/** Analysis knobs. */
struct Options
{
    /** Runtime argument-table size in words (gpu::kMaxArgWords). */
    uint32_t maxArgWords = 64;
    /** Run the backward liveness / dead-write pass. */
    bool deadWrites = true;
};

/** The full analysis result. */
struct Result
{
    std::vector<Diag> diags;   ///< Sorted by location.
    ClauseCfg cfg;

    /** Number of diagnostics at exactly @p s. */
    size_t count(Severity s) const;

    /** Any error-severity diagnostic? */
    bool hasErrors() const;

    /** Any diagnostic of an unsafe class (see isUnsafe)? */
    bool hasUnsafe() const;

    /** All diagnostics rendered as text ("" when clean). */
    std::string render() const;
};

/**
 * Decode-time verifier strictness (GpuConfig::verify).
 *
 *  - kOff:    execute anything that structurally decodes.
 *  - kUnsafe: reject images with unsafe-class findings (OOB ROM/arg
 *             indices, GRF bounds, temp scope, bad branches) — the
 *             default: lint-class findings still execute, as real
 *             hardware would.
 *  - kStrict: additionally reject any error-severity finding
 *             (e.g. definitely-uninitialised GRF reads).
 */
enum class Strictness : uint8_t { kOff = 0, kUnsafe, kStrict };

/** First diagnostic @p level rejects, or nullptr when the image may
 *  execute. */
const Diag *firstRejected(const Result &r, Strictness level);

/** Runs every pass over @p mod. */
Result analyze(const bif::Module &mod, const Options &opts = Options());

} // namespace bifsim::analysis

#endif // BIFSIM_ANALYSIS_ANALYSIS_H
