#include "analysis/analysis.h"

#include <algorithm>
#include <deque>

#include "common/logging.h"

namespace bifsim::analysis {

using bif::Instr;
using bif::Op;

const char *
checkName(Check c)
{
    switch (c) {
      case Check::GrfBounds:       return "grf-bounds";
      case Check::UninitRead:      return "uninit-read";
      case Check::MaybeUninitRead: return "maybe-uninit-read";
      case Check::TempScope:       return "temp-scope";
      case Check::DeadWrite:       return "dead-write";
      case Check::RomBounds:       return "rom-bounds";
      case Check::ArgBounds:       return "arg-bounds";
      case Check::BadBranch:       return "bad-branch";
      case Check::Unreachable:     return "unreachable";
    }
    return "?";
}

const char *
severityName(Severity s)
{
    switch (s) {
      case Severity::Note:    return "note";
      case Severity::Warning: return "warning";
      case Severity::Error:   return "error";
    }
    return "?";
}

bool
isUnsafe(Check c)
{
    switch (c) {
      case Check::GrfBounds: case Check::TempScope:
      case Check::RomBounds: case Check::ArgBounds:
      case Check::BadBranch:
        return true;
      default:
        return false;
    }
}

std::string
renderDiag(const Diag &d)
{
    std::string s = strfmt("%s: clause %u tuple %u slot %u: ",
                           severityName(d.sev), d.clause, d.tuple,
                           d.slot);
    s += d.message;
    s += strfmt("  [%s]", checkName(d.check));
    if (!d.excerpt.empty())
        s += "\n    " + d.excerpt;
    return s;
}

namespace {

bool
isBranch(Op op)
{
    return op == Op::Branch || op == Op::BranchZ || op == Op::BranchNZ;
}

/** Visits each non-Nop instruction of @p cl in execution order
 *  (tuples in sequence, slot 0 before slot 1). */
template <typename Fn>
void
forEachInstr(const bif::Clause &cl, Fn &&fn)
{
    for (size_t t = 0; t < cl.tuples.size(); ++t) {
        for (int s = 0; s < 2; ++s) {
            const Instr &in = cl.tuples[t].slot[s];
            if (in.op != Op::Nop)
                fn(in, static_cast<uint32_t>(t), static_cast<uint8_t>(s));
        }
    }
}

} // namespace

ClauseCfg
ClauseCfg::build(const bif::Module &mod)
{
    ClauseCfg cfg;
    size_t nc = mod.clauses.size();
    cfg.nodes.resize(nc);

    for (size_t c = 0; c < nc; ++c) {
        Node &n = cfg.nodes[c];
        bool fallthrough = true;
        forEachInstr(mod.clauses[c], [&](const Instr &in, uint32_t,
                                         uint8_t) {
            if (in.op == Op::Ret) {
                n.succs.push_back(kExit);
                fallthrough = false;
            } else if (isBranch(in.op)) {
                if (in.imm >= 0 && static_cast<size_t>(in.imm) < nc)
                    n.succs.push_back(static_cast<uint32_t>(in.imm));
                // Unconditional branches replace the fall-through;
                // conditional ones keep it.
                if (in.op == Op::Branch)
                    fallthrough = false;
            }
        });
        if (fallthrough) {
            n.succs.push_back(c + 1 < nc ? static_cast<uint32_t>(c + 1)
                                         : kExit);
        }
        std::sort(n.succs.begin(), n.succs.end());
        n.succs.erase(std::unique(n.succs.begin(), n.succs.end()),
                      n.succs.end());
    }
    for (size_t c = 0; c < nc; ++c) {
        for (uint32_t s : cfg.nodes[c].succs) {
            if (s != kExit)
                cfg.nodes[s].preds.push_back(static_cast<uint32_t>(c));
        }
    }

    if (nc > 0) {
        std::deque<uint32_t> work{0};
        cfg.nodes[0].reachable = true;
        while (!work.empty()) {
            uint32_t c = work.front();
            work.pop_front();
            for (uint32_t s : cfg.nodes[c].succs) {
                if (s != kExit && !cfg.nodes[s].reachable) {
                    cfg.nodes[s].reachable = true;
                    work.push_back(s);
                }
            }
        }
    }
    return cfg;
}

instrument::Cfg
ClauseCfg::toInstrumentCfg() const
{
    instrument::Cfg out;
    for (size_t c = 0; c < nodes.size(); ++c) {
        const Node &n = nodes[c];
        instrument::CfgNode node;
        node.clause = static_cast<uint32_t>(c);
        node.outThreads = 0;
        node.divergent = n.succs.size() > 1;
        out.nodes.push_back(node);
        for (uint32_t s : n.succs) {
            instrument::CfgEdge e;
            e.from = static_cast<uint32_t>(c);
            e.to = s == kExit ? instrument::kCfgExit : s;
            e.threads = 0;
            e.fraction = n.succs.empty()
                             ? 0.0
                             : 1.0 / static_cast<double>(n.succs.size());
            out.edges.push_back(e);
        }
    }
    return out;
}

namespace {

/** Register-set representation: one bit per GRF register. */
using RegSet = uint64_t;

constexpr RegSet kAllRegs = ~static_cast<RegSet>(0);

inline RegSet
bit(uint8_t r)
{
    return static_cast<RegSet>(1) << r;
}

/** Shared pass state. */
struct Analyzer
{
    const bif::Module &mod;
    const Options &opts;
    const ClauseCfg &cfg;
    std::vector<Diag> diags;

    Analyzer(const bif::Module &m, const Options &o, const ClauseCfg &g)
        : mod(m), opts(o), cfg(g)
    {
    }

    void
    emit(Check check, Severity sev, uint32_t clause, uint32_t tuple,
         uint8_t slot, const Instr &in, uint8_t reg, std::string msg)
    {
        Diag d;
        d.check = check;
        d.sev = sev;
        d.clause = clause;
        d.tuple = tuple;
        d.slot = slot;
        d.reg = reg;
        d.message = std::move(msg);
        d.excerpt = bif::disassemble(in);
        diags.push_back(std::move(d));
    }

    /**
     * Forward transfer of one clause over the may-/must-assigned GRF
     * sets.  With @p report set, converged entry states are in hand and
     * read-before-write plus GRF-bounds findings are emitted.
     */
    void
    assignTransfer(uint32_t c, RegSet &may, RegSet &must, bool report)
    {
        forEachInstr(mod.clauses[c], [&](const Instr &in, uint32_t t,
                                         uint8_t s) {
            unsigned use = bif::srcUseMask(in.op);
            const uint8_t srcs[3] = {in.src0, in.src1, in.src2};
            // One diagnostic per (instruction, register): a duplicated
            // source operand (e.g. iadd r9, r7, r7) is a single fault.
            RegSet reported = 0;
            for (int k = 0; k < 3 && report; ++k) {
                if (!(use & (1u << k)) || !bif::isGrf(srcs[k]))
                    continue;
                uint8_t r = srcs[k];
                if (reported & bit(r))
                    continue;
                reported |= bit(r);
                if (r >= mod.regCount) {
                    emit(Check::GrfBounds, Severity::Error, c, t, s, in,
                         r,
                         strfmt("r%u read but module regCount is %u", r,
                                mod.regCount));
                } else if (!(may & bit(r))) {
                    emit(Check::UninitRead, Severity::Error, c, t, s, in,
                         r,
                         strfmt("r%u read but never written on any path "
                                "from entry", r));
                } else if (!(must & bit(r))) {
                    emit(Check::MaybeUninitRead, Severity::Warning, c, t,
                         s, in, r,
                         strfmt("r%u may be read before initialisation "
                                "(unwritten on some path from entry)",
                                r));
                }
            }
            if (bif::writesDest(in.op) && bif::isGrf(in.dst)) {
                if (report && in.dst >= mod.regCount) {
                    emit(Check::GrfBounds, Severity::Error, c, t, s, in,
                         in.dst,
                         strfmt("r%u written but module regCount is %u",
                                in.dst, mod.regCount));
                }
                may |= bit(in.dst);
                must |= bit(in.dst);
            }
        });
    }

    /** GRF definite-assignment: forward fixpoint, then a reporting
     *  sweep over reachable clauses. */
    void
    definiteAssignment()
    {
        size_t nc = mod.clauses.size();
        std::vector<RegSet> mayIn(nc, 0), mustIn(nc, kAllRegs);
        if (nc > 0)
            mustIn[0] = 0;   // Entry: nothing assigned yet.

        bool changed = true;
        while (changed) {
            changed = false;
            for (size_t c = 0; c < nc; ++c) {
                if (!cfg.nodes[c].reachable)
                    continue;
                RegSet may = mayIn[c], must = mustIn[c];
                assignTransfer(static_cast<uint32_t>(c), may, must,
                               false);
                for (uint32_t s : cfg.nodes[c].succs) {
                    if (s == ClauseCfg::kExit)
                        continue;
                    RegSet nmay = mayIn[s] | may;
                    // Entry keeps its boundary state: execution can
                    // always arrive at clause 0 with nothing assigned.
                    RegSet nmust = s == 0 ? 0 : mustIn[s] & must;
                    if (nmay != mayIn[s] || nmust != mustIn[s]) {
                        mayIn[s] = nmay;
                        mustIn[s] = nmust;
                        changed = true;
                    }
                }
            }
        }

        for (size_t c = 0; c < nc; ++c) {
            if (!cfg.nodes[c].reachable)
                continue;
            RegSet may = mayIn[c], must = mustIn[c];
            assignTransfer(static_cast<uint32_t>(c), may, must, true);
        }
    }

    /** Temp-register scope: def-before-use within each clause. */
    void
    tempScope()
    {
        for (size_t c = 0; c < mod.clauses.size(); ++c) {
            uint8_t written = 0;   // Bit per t0..t7.
            forEachInstr(mod.clauses[c], [&](const Instr &in, uint32_t t,
                                             uint8_t s) {
                unsigned use = bif::srcUseMask(in.op);
                const uint8_t srcs[3] = {in.src0, in.src1, in.src2};
                for (int k = 0; k < 3; ++k) {
                    if (!(use & (1u << k)) || !bif::isTemp(srcs[k]))
                        continue;
                    uint8_t tr = srcs[k] - bif::kOperandTemp0;
                    if (!(written & (1u << tr))) {
                        emit(Check::TempScope, Severity::Error,
                             static_cast<uint32_t>(c), t, s, in, tr,
                             strfmt("t%u read before any write in this "
                                    "clause (temps do not survive "
                                    "clause boundaries)", tr));
                    }
                }
                if (bif::writesDest(in.op) && bif::isTemp(in.dst))
                    written |= 1u << (in.dst - bif::kOperandTemp0);
            });
        }
    }

    /** Backward transfer of one clause over the live GRF set; reports
     *  dead writes when @p report is set. */
    void
    liveTransfer(uint32_t c, RegSet &live, bool report)
    {
        const bif::Clause &cl = mod.clauses[c];
        for (size_t t = cl.tuples.size(); t-- > 0;) {
            for (int s = 2; s-- > 0;) {
                const Instr &in = cl.tuples[t].slot[s];
                if (in.op == Op::Nop)
                    continue;
                if (bif::writesDest(in.op) && bif::isGrf(in.dst)) {
                    if (report && !(live & bit(in.dst)) &&
                        cfg.nodes[c].reachable) {
                        emit(Check::DeadWrite, Severity::Warning, c,
                             static_cast<uint32_t>(t),
                             static_cast<uint8_t>(s), in, in.dst,
                             strfmt("r%u written but the value is never "
                                    "read on any path to exit",
                                    in.dst));
                    }
                    live &= ~bit(in.dst);
                }
                unsigned use = bif::srcUseMask(in.op);
                const uint8_t srcs[3] = {in.src0, in.src1, in.src2};
                for (int k = 0; k < 3; ++k) {
                    if ((use & (1u << k)) && bif::isGrf(srcs[k]))
                        live |= bit(srcs[k]);
                }
            }
        }
    }

    /** Dead-write detection: backward liveness fixpoint plus a
     *  reporting sweep.  Nothing is live at thread exit. */
    void
    deadWrites()
    {
        size_t nc = mod.clauses.size();
        std::vector<RegSet> liveIn(nc, 0);
        bool changed = true;
        while (changed) {
            changed = false;
            for (size_t c = nc; c-- > 0;) {
                RegSet live = 0;
                for (uint32_t s : cfg.nodes[c].succs) {
                    if (s != ClauseCfg::kExit)
                        live |= liveIn[s];
                }
                liveTransfer(static_cast<uint32_t>(c), live, false);
                if (live != liveIn[c]) {
                    liveIn[c] = live;
                    changed = true;
                }
            }
        }
        for (size_t c = 0; c < nc; ++c) {
            RegSet live = 0;
            for (uint32_t s : cfg.nodes[c].succs) {
                if (s != ClauseCfg::kExit)
                    live |= liveIn[s];
            }
            liveTransfer(static_cast<uint32_t>(c), live, true);
        }
    }

    /** Static bounds: ROM and argument-table indices, branch targets. */
    void
    staticBounds()
    {
        size_t nc = mod.clauses.size();
        for (size_t c = 0; c < nc; ++c) {
            forEachInstr(mod.clauses[c], [&](const Instr &in, uint32_t t,
                                             uint8_t s) {
                if (in.op == Op::LdRom &&
                    (in.imm < 0 ||
                     static_cast<size_t>(in.imm) >= mod.rom.size())) {
                    emit(Check::RomBounds, Severity::Error,
                         static_cast<uint32_t>(c), t, s, in, 0xff,
                         strfmt("ROM index %d out of range (rom has %zu "
                                "words)", in.imm, mod.rom.size()));
                }
                if (in.op == Op::LdArg &&
                    (in.imm < 0 ||
                     static_cast<uint32_t>(in.imm) >= opts.maxArgWords)) {
                    emit(Check::ArgBounds, Severity::Error,
                         static_cast<uint32_t>(c), t, s, in, 0xff,
                         strfmt("argument index %d out of range "
                                "(table has %u words)", in.imm,
                                opts.maxArgWords));
                }
                if (isBranch(in.op) &&
                    (in.imm < 0 || static_cast<size_t>(in.imm) >= nc)) {
                    emit(Check::BadBranch, Severity::Error,
                         static_cast<uint32_t>(c), t, s, in, 0xff,
                         strfmt("branch target %d outside the module "
                                "(%zu clauses)", in.imm, nc));
                }
            });
        }
    }

    /** Unreachable-clause notes. */
    void
    unreachable()
    {
        for (size_t c = 0; c < cfg.nodes.size(); ++c) {
            if (cfg.nodes[c].reachable)
                continue;
            Diag d;
            d.check = Check::Unreachable;
            d.sev = Severity::Note;
            d.clause = static_cast<uint32_t>(c);
            d.message = strfmt("clause %zu unreachable from entry", c);
            diags.push_back(std::move(d));
        }
    }
};

} // namespace

size_t
Result::count(Severity s) const
{
    size_t n = 0;
    for (const Diag &d : diags)
        n += d.sev == s ? 1 : 0;
    return n;
}

bool
Result::hasErrors() const
{
    return count(Severity::Error) > 0;
}

bool
Result::hasUnsafe() const
{
    for (const Diag &d : diags) {
        if (isUnsafe(d.check))
            return true;
    }
    return false;
}

std::string
Result::render() const
{
    std::string s;
    for (const Diag &d : diags)
        s += renderDiag(d) + "\n";
    return s;
}

const Diag *
firstRejected(const Result &r, Strictness level)
{
    if (level == Strictness::kOff)
        return nullptr;
    for (const Diag &d : r.diags) {
        if (isUnsafe(d.check))
            return &d;
        if (level == Strictness::kStrict && d.sev == Severity::Error)
            return &d;
    }
    return nullptr;
}

Result
analyze(const bif::Module &mod, const Options &opts)
{
    Result res;
    res.cfg = ClauseCfg::build(mod);

    Analyzer a(mod, opts, res.cfg);
    a.staticBounds();
    a.tempScope();
    a.definiteAssignment();
    if (opts.deadWrites)
        a.deadWrites();
    a.unreachable();

    std::sort(a.diags.begin(), a.diags.end(),
              [](const Diag &x, const Diag &y) {
                  if (x.clause != y.clause)
                      return x.clause < y.clause;
                  if (x.tuple != y.tuple)
                      return x.tuple < y.tuple;
                  if (x.slot != y.slot)
                      return x.slot < y.slot;
                  return static_cast<uint8_t>(x.check) <
                         static_cast<uint8_t>(y.check);
              });
    res.diags = std::move(a.diags);
    return res;
}

} // namespace bifsim::analysis
